// Cross-process warm start through the persistent tier: a fresh DiskCache
// handle over a directory another handle populated must answer the whole
// solve — zero analysis recomputes, zero verifier runs — with a
// byte-identical fingerprint; the whole-solve Solution cache must
// short-circuit the entire pipeline on a key hit; and injected entry
// corruption must degrade to a cold (but correct) solve, never a failure.
// The in-process fresh-handle construction is exactly what a process
// restart or a CI actions/cache restore produces; examples/warm_start.cpp
// runs the same checks across real processes.
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "casestudy/apps.h"
#include "core/dimensioning.h"
#include "engine/cache/disk_cache.h"
#include "engine/cache/solution_cache.h"
#include "engine/fingerprint.h"
#include "gtest/gtest.h"

namespace ttdim {
namespace {

namespace fs = std::filesystem;

class WarmStartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("ttdim-warm-start-test-" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
    const std::vector<casestudy::App> pool = casestudy::all_apps();
    for (std::size_t i = 0; i < 3; ++i)
      specs_.push_back({pool[i].name, pool[i].plant, pool[i].kt, pool[i].ke,
                        pool[i].min_interarrival,
                        pool[i].settling_requirement});
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// The bounded-verifier configuration keeps this suite in tier-1 time.
  core::SolveOptions base_options() const {
    core::SolveOptions o;
    o.max_disturbances_per_app = 1;
    return o;
  }

  std::string dir_;
  std::vector<core::AppSpec> specs_;
};

TEST_F(WarmStartTest, FreshHandleOverWarmDirectorySolvesWithoutRecompute) {
  const core::Solution reference = core::solve(specs_, base_options());
  const std::string fp = engine::fingerprint(reference);

  // Cold pass: first handle populates the directory.
  core::SolveOptions cold = base_options();
  cold.disk_cache = std::make_shared<engine::cache::DiskCache>(dir_);
  const core::Solution first = core::solve(specs_, cold);
  EXPECT_EQ(engine::fingerprint(first), fp);
  EXPECT_GT(first.stats.analysis_misses, 0);
  EXPECT_GT(first.stats.disk_writes, 0);

  // Warm pass: a *fresh* handle (fresh memory caches, fresh stats) over
  // the same directory — the process-restart shape. Everything must come
  // from disk: no analysis recompute, no verifier run.
  core::SolveOptions warm = base_options();
  warm.disk_cache = std::make_shared<engine::cache::DiskCache>(dir_);
  const core::Solution second = core::solve(specs_, warm);
  EXPECT_EQ(engine::fingerprint(second), fp);
  EXPECT_EQ(second.stats.analysis_misses, 0);
  EXPECT_EQ(second.stats.cache_misses, 0);
  EXPECT_EQ(second.stats.verifier_states, 0);
  EXPECT_GT(second.stats.disk_hits, 0);
  EXPECT_EQ(second.stats.analysis_hits, first.stats.analysis_misses);
  // The oracle-tier identity holds with the disk tier on.
  EXPECT_EQ(second.stats.oracle_calls,
            second.stats.cache_hits + second.stats.subsumption_hits +
                second.stats.subsumption_cuts + second.stats.cache_misses);
}

TEST_F(WarmStartTest, SolutionCacheShortCircuitsTheWholePipeline) {
  const std::string fp =
      engine::fingerprint(core::solve(specs_, base_options()));

  core::SolveOptions store = base_options();
  store.disk_cache = std::make_shared<engine::cache::DiskCache>(dir_);
  store.solution_cache = std::make_shared<engine::cache::SolutionCache>();
  const core::Solution first = core::solve(specs_, store);
  EXPECT_EQ(engine::fingerprint(first), fp);
  EXPECT_EQ(first.stats.solution_hits, 0);
  EXPECT_EQ(first.stats.solution_misses, 1);

  // Memory hit: same SolutionCache, second solve of the same specs.
  const core::Solution memory_hit = core::solve(specs_, store);
  EXPECT_EQ(engine::fingerprint(memory_hit), fp);
  EXPECT_EQ(memory_hit.stats.solution_hits, 1);
  EXPECT_EQ(memory_hit.stats.oracle_calls, 0);
  EXPECT_EQ(memory_hit.stats.analysis_hits, 0);

  // Disk hit: fresh memory SolutionCache, fresh DiskCache handle — only
  // the directory carries the result across, and no pipeline phase runs.
  core::SolveOptions restart = base_options();
  restart.disk_cache = std::make_shared<engine::cache::DiskCache>(dir_);
  restart.solution_cache = std::make_shared<engine::cache::SolutionCache>();
  const core::Solution disk_hit = core::solve(specs_, restart);
  EXPECT_EQ(engine::fingerprint(disk_hit), fp);
  EXPECT_EQ(disk_hit.stats.solution_hits, 1);
  EXPECT_EQ(disk_hit.stats.oracle_calls, 0);
  EXPECT_EQ(disk_hit.stats.analysis_hits, 0);
  EXPECT_EQ(disk_hit.stats.analysis_misses, 0);
  EXPECT_GT(disk_hit.stats.disk_hits, 0);
}

TEST_F(WarmStartTest, CorruptionDegradesToColdMissNeverFailure) {
  core::SolveOptions cold = base_options();
  cold.disk_cache = std::make_shared<engine::cache::DiskCache>(dir_);
  cold.solution_cache = std::make_shared<engine::cache::SolutionCache>();
  const core::Solution first = core::solve(specs_, cold);
  const std::string fp = engine::fingerprint(first);

  // Flip one byte in the middle of every entry file.
  int flipped = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir_)) {
    if (!e.is_regular_file() || e.path().extension() != ".entry") continue;
    std::fstream f(e.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(e.path()) / 2));
    f.put(static_cast<char>('~'));
    ++flipped;
  }
  ASSERT_GT(flipped, 0);

  // A fresh process over the vandalized directory: everything reads as a
  // miss, the solve recomputes cold, and the result is still identical.
  core::SolveOptions warm = base_options();
  warm.disk_cache = std::make_shared<engine::cache::DiskCache>(dir_);
  warm.solution_cache = std::make_shared<engine::cache::SolutionCache>();
  const core::Solution second = core::solve(specs_, warm);
  EXPECT_EQ(engine::fingerprint(second), fp);
  EXPECT_EQ(second.stats.solution_hits, 0);
  EXPECT_GT(second.stats.analysis_misses, 0);
  EXPECT_GT(warm.disk_cache->stats().corrupt, 0);

  // The corrupt entries were self-healed on read and rewritten by the
  // cold solve: a third fresh handle is fully warm again.
  core::SolveOptions healed = base_options();
  healed.disk_cache = std::make_shared<engine::cache::DiskCache>(dir_);
  const core::Solution third = core::solve(specs_, healed);
  EXPECT_EQ(engine::fingerprint(third), fp);
  EXPECT_EQ(third.stats.analysis_misses, 0);
  EXPECT_EQ(third.stats.cache_misses, 0);
}

TEST_F(WarmStartTest, SolveKeyCoversResultAffectingInputsOnly) {
  const core::SolveOptions base = base_options();
  const core::SolveKey reference = core::SolveKey::of(specs_, base);

  // Result-affecting changes move the key...
  {
    std::vector<core::AppSpec> looser = specs_;
    looser[0].settling_requirement += 1;
    EXPECT_NE(core::SolveKey::of(looser, base), reference);
  }
  {
    core::SolveOptions o = base;
    o.policy = verify::SlotPolicy::kSlackAware;
    EXPECT_NE(core::SolveKey::of(specs_, o), reference);
  }
  {
    core::SolveOptions o = base;
    o.max_disturbances_per_app = -1;
    EXPECT_NE(core::SolveKey::of(specs_, o), reference);
  }
  {
    core::SolveOptions o = base;
    o.require_switching_stability = false;
    EXPECT_NE(core::SolveKey::of(specs_, o), reference);
  }

  // ...cache/thread toggles do not (pinned byte-identical by the
  // fingerprint-equality suites), so warm and cold configurations share
  // solve-result entries.
  {
    core::SolveOptions o = base;
    o.memoize_admission = false;
    o.incremental_admission = false;
    o.subsumption_admission = false;
    o.memoize_analysis = false;
    o.analysis_threads = 0;
    o.disk_cache = std::make_shared<engine::cache::DiskCache>(dir_);
    EXPECT_EQ(core::SolveKey::of(specs_, o), reference);
  }
}

}  // namespace
}  // namespace ttdim
