// The memoized admission-oracle layer: canonical keys (permutation- and
// name-independent), VerdictCache accounting and eviction, and — the
// soundness property everything rests on — cached verdicts being
// indistinguishable from fresh DiscreteVerifier runs across generated
// slot configurations.
#include <algorithm>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "engine/oracle/admission_oracle.h"
#include "engine/oracle/dwell_search.h"
#include "engine/oracle/slot_config_key.h"
#include "engine/oracle/verdict_cache.h"
#include "gtest/gtest.h"
#include "verify/app_timing.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {
namespace {

using verify::AppTiming;
using verify::DiscreteVerifier;
using verify::SlotVerdict;

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

/// Seeded generator of small valid slot configurations (1-3 apps). Kept
/// tiny so a full fresh-vs-cached verification sweep stays fast.
std::vector<AppTiming> random_config(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> napps_dist(1, 3);
  std::uniform_int_distribution<int> t_star_dist(2, 5);
  std::uniform_int_distribution<int> dwell_dist(1, 3);
  std::uniform_int_distribution<int> slack_dist(0, 2);
  const int napps = napps_dist(rng);
  std::vector<AppTiming> apps;
  for (int i = 0; i < napps; ++i) {
    const int t_star = t_star_dist(rng);
    const int t_minus = dwell_dist(rng);
    const int t_plus = t_minus + slack_dist(rng);
    // r must exceed both T*w and the longest TT episode (validate()).
    const int r = t_star + t_plus + 1 + slack_dist(rng);
    apps.push_back(uniform_app("g" + std::to_string(i), t_star, t_minus,
                               t_plus, r));
  }
  return apps;
}

// --------------------------------------------------------- SlotConfigKey --

TEST(SlotConfigKey, PermutedAppOrderYieldsSameKey) {
  std::vector<AppTiming> apps{uniform_app("A", 3, 2, 4, 10),
                              uniform_app("B", 5, 1, 2, 9),
                              uniform_app("C", 4, 2, 2, 8)};
  const DiscreteVerifier::Options options;
  const SlotConfigKey reference = SlotConfigKey::of(apps, options);
  std::sort(apps.begin(), apps.end(),
            [](const AppTiming& a, const AppTiming& b) {
              return a.name > b.name;
            });
  EXPECT_EQ(SlotConfigKey::of(apps, options), reference);
  std::next_permutation(
      apps.begin(), apps.end(),
      [](const AppTiming& a, const AppTiming& b) { return a.name < b.name; });
  EXPECT_EQ(SlotConfigKey::of(apps, options), reference);
}

TEST(SlotConfigKey, NamesDoNotInfluenceTheKey) {
  // The verdict is a function of the timing parameters only.
  const std::vector<AppTiming> a{uniform_app("alpha", 3, 2, 4, 10)};
  const std::vector<AppTiming> b{uniform_app("beta", 3, 2, 4, 10)};
  EXPECT_EQ(SlotConfigKey::of(a, {}), SlotConfigKey::of(b, {}));
}

TEST(SlotConfigKey, TimingAndOptionDifferencesChangeTheKey) {
  const std::vector<AppTiming> base{uniform_app("A", 3, 2, 4, 10)};
  const SlotConfigKey reference = SlotConfigKey::of(base, {});

  EXPECT_NE(SlotConfigKey::of({uniform_app("A", 3, 2, 4, 11)}, {}), reference);
  EXPECT_NE(SlotConfigKey::of({uniform_app("A", 4, 2, 4, 10)}, {}), reference);
  EXPECT_NE(SlotConfigKey::of({uniform_app("A", 3, 2, 5, 10)}, {}), reference);

  DiscreteVerifier::Options bounded;
  bounded.max_disturbances_per_app = 2;
  EXPECT_NE(SlotConfigKey::of(base, bounded), reference);
  DiscreteVerifier::Options slack;
  slack.policy = verify::SlotPolicy::kSlackAware;
  EXPECT_NE(SlotConfigKey::of(base, slack), reference);
  DiscreteVerifier::Options budget;
  budget.max_states = 10'000;
  EXPECT_NE(SlotConfigKey::of(base, budget), reference);
}

TEST(SlotConfigKey, DuplicatedAppsAreCounted) {
  // {A} vs {A, A} must differ: multiplicity matters for admission.
  const AppTiming a = uniform_app("A", 3, 2, 4, 10);
  EXPECT_NE(SlotConfigKey::of({a}, {}), SlotConfigKey::of({a, a}, {}));
}

// ---------------------------------------------------------- VerdictCache --

TEST(VerdictCache, HitAndMissAccounting) {
  VerdictCache cache(8);
  const SlotConfigKey key =
      SlotConfigKey::of({uniform_app("A", 3, 2, 4, 10)}, {});
  EXPECT_FALSE(cache.lookup(key).has_value());
  SlotVerdict verdict;
  verdict.safe = true;
  verdict.states_explored = 42;
  cache.insert(key, verdict);
  const auto cached = cache.lookup(key);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, verdict);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 8u);
}

TEST(VerdictCache, EvictsLeastRecentlyUsedAtCapacity) {
  VerdictCache cache(2);
  const SlotConfigKey k1 = SlotConfigKey::of({uniform_app("A", 2, 1, 1, 6)}, {});
  const SlotConfigKey k2 = SlotConfigKey::of({uniform_app("A", 3, 1, 1, 6)}, {});
  const SlotConfigKey k3 = SlotConfigKey::of({uniform_app("A", 4, 1, 1, 7)}, {});
  cache.insert(k1, {});
  cache.insert(k2, {});
  ASSERT_TRUE(cache.lookup(k1).has_value());  // k1 now most recent
  cache.insert(k3, {});                       // evicts k2
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(VerdictCache, ClearResetsContentAndCounters) {
  VerdictCache cache(4);
  const SlotConfigKey key =
      SlotConfigKey::of({uniform_app("A", 3, 2, 4, 10)}, {});
  cache.insert(key, {});
  ASSERT_TRUE(cache.lookup(key).has_value());
  cache.clear();
  EXPECT_FALSE(cache.lookup(key).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.capacity, 4u);
}

TEST(VerdictCache, ConcurrentLookupsInsertsAndStatsAreCoherent) {
  // Batch jobs share one cache and aggregate SolveStats while siblings
  // are still hitting it: lookups, inserts and stats() snapshots must be
  // data-race-free (the TSan CI job runs this suite) and the counters
  // must add up once the threads join.
  VerdictCache cache(64);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::vector<SlotConfigKey> keys;
  for (int k = 0; k < 32; ++k)
    keys.push_back(
        SlotConfigKey::of({uniform_app("A", 2 + k % 4, 1, 1, 8 + k)}, {}));
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&cache, &keys, w] {
      SlotVerdict verdict;
      verdict.safe = true;
      for (int op = 0; op < kOpsPerThread; ++op) {
        const SlotConfigKey& key =
            keys[static_cast<size_t>((op * 7 + w) % 32)];
        if (!cache.lookup(key).has_value()) cache.insert(key, verdict);
        // Concurrent snapshot: each counter is individually tear-free and
        // never runs backwards past zero.
        const CacheStats stats = cache.stats();
        EXPECT_GE(stats.hits, 0);
        EXPECT_GE(stats.misses, 0);
        EXPECT_GE(stats.insertions, stats.evictions);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const CacheStats stats = cache.stats();
  // Every lookup was counted exactly once...
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  // ...every distinct key was inserted at least once and at most once per
  // concurrent missing thread.
  EXPECT_GE(stats.insertions, 32);
  EXPECT_LE(stats.insertions, static_cast<long>(keys.size()) * kThreads);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.size, 32u);
}

// ------------------------------------------------- MemoizedAdmissionOracle --

TEST(MemoizedAdmissionOracle, CachedVerdictEqualsFreshOnGeneratedConfigs) {
  std::mt19937_64 rng(20260726);
  const auto cache = std::make_shared<VerdictCache>();
  const MemoizedAdmissionOracle memoized({}, cache);
  const MemoizedAdmissionOracle fresh({}, nullptr);
  std::vector<SlotConfigKey> seen;
  int safe_seen = 0;
  int unsafe_seen = 0;
  for (int round = 0; round < 40; ++round) {
    const std::vector<AppTiming> config = random_config(rng);
    // Skip canonical repeats: a repeat's first memoized query would hit
    // the cache of an earlier round (correct, but it would skew the
    // hit/miss bookkeeping this test pins down).
    const SlotConfigKey key = SlotConfigKey::of(config, {});
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);
    const SlotVerdict reference = fresh.verify(config);
    // First query: a miss that proves (and, when safe, caches); second:
    // served from the cache for safe verdicts, re-proved for unsafe ones.
    // Both must be structurally identical to the fresh verdict.
    EXPECT_EQ(memoized.verify(config), reference);
    EXPECT_EQ(memoized.verify(config), reference);
    (reference.safe ? safe_seen : unsafe_seen) += 1;
  }
  // The generator must exercise both verdicts or the test proves little.
  EXPECT_GT(safe_seen, 0);
  EXPECT_GT(unsafe_seen, 0);
  // Safe configs hit on the repeat; unsafe configs miss both times (only
  // exhaustive safe proofs are cached — their fields are order-invariant).
  EXPECT_EQ(memoized.hits(), safe_seen);
  EXPECT_EQ(memoized.misses(), safe_seen + 2 * unsafe_seen);
}

TEST(MemoizedAdmissionOracle, PermutedQueryHitsTheCache) {
  const auto cache = std::make_shared<VerdictCache>();
  const MemoizedAdmissionOracle oracle({}, cache);
  std::vector<AppTiming> config{uniform_app("A", 3, 2, 4, 10),
                                uniform_app("B", 5, 1, 2, 9)};
  const SlotVerdict first = oracle.verify(config);
  ASSERT_TRUE(first.safe);  // only safe verdicts are cached
  std::swap(config[0], config[1]);
  EXPECT_EQ(oracle.verify(config), first);
  EXPECT_EQ(oracle.hits(), 1);
  EXPECT_EQ(oracle.misses(), 1);
}

TEST(MemoizedAdmissionOracle, UnsafeVerdictsAreNotCached) {
  const auto cache = std::make_shared<VerdictCache>();
  const MemoizedAdmissionOracle oracle({}, cache);
  // Same unsafe triple as the witness test below.
  const std::vector<AppTiming> config{uniform_app("A", 2, 2, 2, 7),
                                      uniform_app("B", 2, 2, 2, 7),
                                      uniform_app("C", 2, 2, 2, 7)};
  const SlotVerdict v1 = oracle.verify(config);
  ASSERT_FALSE(v1.safe);
  // An unsafe violator indexes the query order, which the canonical key
  // erases — so the verdict must be re-proved, not served from the cache.
  EXPECT_EQ(oracle.verify(config), v1);
  EXPECT_EQ(oracle.hits(), 0);
  EXPECT_EQ(oracle.misses(), 2);
  EXPECT_EQ(cache->stats().insertions, 0);
}

TEST(MemoizedAdmissionOracle, CountsCallsAndStates) {
  const MemoizedAdmissionOracle oracle({}, std::make_shared<VerdictCache>());
  const std::vector<AppTiming> config{uniform_app("A", 3, 2, 4, 10)};
  const SlotVerdict verdict = oracle.verify(config);
  EXPECT_TRUE(oracle.admit(config));
  EXPECT_TRUE(oracle.slot_oracle()(config));
  EXPECT_EQ(oracle.calls(), 3);
  EXPECT_EQ(oracle.hits(), 2);
  EXPECT_EQ(oracle.misses(), 1);
  EXPECT_EQ(oracle.states_explored(), verdict.states_explored);
}

TEST(MemoizedAdmissionOracle, WitnessQueriesBypassTheCache) {
  DiscreteVerifier::Options want;
  want.want_witness = true;
  const auto cache = std::make_shared<VerdictCache>();
  const MemoizedAdmissionOracle oracle(want, cache);
  // Unsafe triple: all three disturbed together, the slot serves two
  // back-to-back TT episodes (2 samples each) before the third app's
  // clock passes T*w = 2.
  const std::vector<AppTiming> config{uniform_app("A", 2, 2, 2, 7),
                                      uniform_app("B", 2, 2, 2, 7),
                                      uniform_app("C", 2, 2, 2, 7)};
  const SlotVerdict v1 = oracle.verify(config);
  EXPECT_FALSE(v1.safe);
  EXPECT_FALSE(v1.witness.empty());
  EXPECT_EQ(oracle.verify(config), v1);  // deterministic fresh re-proof
  EXPECT_EQ(oracle.hits(), 0);
  EXPECT_EQ(cache->stats().insertions, 0);
}

// ------------------------------------------------------------ NoCacheMode --

TEST(MemoizedAdmissionOracle, NullCacheVerifiesFreshEveryTime) {
  const MemoizedAdmissionOracle oracle({}, nullptr);
  const std::vector<AppTiming> config{uniform_app("A", 3, 2, 4, 10)};
  const SlotVerdict v1 = oracle.verify(config);
  const SlotVerdict v2 = oracle.verify(config);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(oracle.hits(), 0);
  EXPECT_EQ(oracle.misses(), 2);
  EXPECT_EQ(oracle.states_explored(), 2 * v1.states_explored);
}

}  // namespace
}  // namespace ttdim::engine::oracle
