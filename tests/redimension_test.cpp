// Edge-case suite for DimensioningSession::redimension (core/session.h)
// and the solve() façade equivalence (ISSUE 10 satellite):
//  - the façade and a session pass produce byte-identical fingerprints,
//    serial and parallel;
//  - an empty delta is the identity (byte-identical standing solution);
//  - removal-only deltas are proof-free and keep every remaining slot
//    byte-identical at the application level;
//  - remove-then-re-add round trips;
//  - a re-rate that no longer fits its slot falls back to first-fit
//    re-placement, an addition that fits nowhere opens a new slot;
//  - every redimensioned assignment passes fresh admission proofs run
//    by a from-scratch DiscreteVerifier (no session caches involved);
//  - delta validation and the no-standing-solution precondition throw.
//
// All solves use the bounded verifier (max_disturbances_per_app = 1)
// to stay inside the tier-1 budget; the conflict scenarios below were
// chosen because they are conflicts *under that bound* (the 4-app case
// study first-fit already splits C3 into its own slot).
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "casestudy/apps.h"
#include "core/dimensioning.h"
#include "core/session.h"
#include "engine/fingerprint.h"
#include "verify/discrete.h"

namespace ttdim {
namespace {

core::AppSpec spec_of(const casestudy::App& app) {
  return {app.name, app.plant, app.kt,
          app.ke,   app.min_interarrival, app.settling_requirement};
}

/// First `count` case-study applications (paper order C1..C6).
std::vector<core::AppSpec> case_specs(int count) {
  const std::vector<casestudy::App> pool = casestudy::all_apps();
  std::vector<core::AppSpec> specs;
  for (int i = 0; i < count; ++i)
    specs.push_back(spec_of(pool[static_cast<std::size_t>(i)]));
  return specs;
}

/// Bounded verification keeps each admission proof inside the tier-1
/// budget (the warm-start suites use the same bound).
core::SolveOptions base_options() {
  core::SolveOptions options;
  options.max_disturbances_per_app = 1;
  return options;
}

/// Slot memberships by application name, in slot/member order — the
/// index-free view that survives the removal renumbering.
std::vector<std::vector<std::string>> slot_names(
    const core::Solution& solution) {
  std::vector<std::vector<std::string>> names;
  for (const std::vector<int>& slot : solution.proposed.slots) {
    std::vector<std::string> members;
    for (int m : slot)
      members.push_back(solution.apps[static_cast<std::size_t>(m)].spec.name);
    names.push_back(std::move(members));
  }
  return names;
}

/// Re-prove every proposed slot with a from-scratch DiscreteVerifier
/// (same options, none of the session's caches): the redimension
/// contract is that the standing assignment always passes the proofs a
/// cold verifier would run.
void expect_fresh_proofs_pass(const core::Solution& solution,
                              const core::SolveOptions& options) {
  verify::DiscreteVerifier::Options vopt;
  vopt.max_disturbances_per_app = options.max_disturbances_per_app;
  vopt.policy = options.policy;
  for (std::size_t s = 0; s < solution.proposed.slots.size(); ++s) {
    std::vector<verify::AppTiming> population;
    for (int m : solution.proposed.slots[s])
      population.push_back(
          solution.apps[static_cast<std::size_t>(m)].timing);
    verify::DiscreteVerifier verifier(population);
    EXPECT_TRUE(verifier.verify(vopt).safe) << "slot " << s;
  }
}

const core::AppSolution& app_named(const core::Solution& solution,
                                   const std::string& name) {
  for (const core::AppSolution& app : solution.apps)
    if (app.spec.name == name) return app;
  throw std::logic_error("test: no app named " + name);
}

TEST(RedimensionTest, SessionSolveMatchesFacadeFingerprint) {
  const std::vector<core::AppSpec> specs = case_specs(3);
  const core::SolveOptions options = base_options();
  const core::Solution via_facade = core::solve(specs, options);
  core::DimensioningSession session(options);
  const core::Solution via_session = session.solve(specs);
  EXPECT_EQ(engine::fingerprint(via_facade), engine::fingerprint(via_session));
  EXPECT_TRUE(session.has_solution());
  EXPECT_EQ(engine::fingerprint(session.solution()),
            engine::fingerprint(via_facade));
}

TEST(RedimensionTest, ParallelSessionFingerprintMatchesSerial) {
  const std::vector<core::AppSpec> specs = case_specs(3);
  core::DimensioningSession serial(base_options());
  core::SolveOptions parallel_options = base_options();
  parallel_options.analysis_threads = 0;
  parallel_options.proof_threads = 0;
  core::DimensioningSession parallel(parallel_options);
  const std::string serial_fp = engine::fingerprint(serial.solve(specs));
  EXPECT_EQ(serial_fp, engine::fingerprint(parallel.solve(specs)));

  // Redimension results are thread-count independent too: same delta on
  // both sessions, same fingerprint.
  core::Delta delta;
  delta.remove.push_back("C2");
  delta.add.push_back(case_specs(4)[3]);
  EXPECT_EQ(engine::fingerprint(serial.redimension(delta)),
            engine::fingerprint(parallel.redimension(delta)));
}

TEST(RedimensionTest, EmptyDeltaIsByteIdenticalIdentity) {
  core::DimensioningSession session(base_options());
  const core::Solution solved = session.solve(case_specs(3));
  const core::Solution unchanged = session.redimension({});
  EXPECT_EQ(engine::fingerprint(unchanged), engine::fingerprint(solved));
  EXPECT_EQ(unchanged.stats.redimension_events, 0);
  EXPECT_EQ(unchanged.stats.redimension_removals, 0);
  EXPECT_EQ(unchanged.stats.redimension_refits, 0);
  EXPECT_EQ(unchanged.stats.redimension_conflicts, 0);
  EXPECT_EQ(unchanged.stats.redimension_new_slots, 0);
  EXPECT_EQ(unchanged.stats.oracle_calls, 0);
  // The standing solution is untouched.
  EXPECT_EQ(engine::fingerprint(session.solution()),
            engine::fingerprint(solved));
}

TEST(RedimensionTest, RemovalIsProofFreeAndKeepsRemainingSlotsIdentical) {
  core::DimensioningSession session(base_options());
  const core::Solution base = session.solve(case_specs(3));
  core::Delta delta;
  delta.remove.push_back("C2");
  const core::Solution after = session.redimension(delta);

  // Proof-free: antitone admission needs no oracle traffic at all.
  EXPECT_EQ(after.stats.oracle_calls, 0);
  EXPECT_EQ(after.stats.verifier_states, 0);
  EXPECT_EQ(after.stats.redimension_events, 1);
  EXPECT_EQ(after.stats.redimension_removals, 1);
  EXPECT_EQ(after.stats.redimension_refits, 0);
  EXPECT_EQ(after.stats.redimension_conflicts, 0);
  EXPECT_EQ(after.stats.redimension_new_slots, 0);

  // Remaining slots are the original ones with C2 dropped (emptied slots
  // removed), in the original member order…
  std::vector<std::vector<std::string>> expected = slot_names(base);
  for (std::vector<std::string>& slot : expected)
    slot.erase(std::remove(slot.begin(), slot.end(), "C2"), slot.end());
  expected.erase(
      std::remove_if(expected.begin(), expected.end(),
                     [](const std::vector<std::string>& slot) {
                       return slot.empty();
                     }),
      expected.end());
  EXPECT_EQ(slot_names(after), expected);

  // …and each surviving application's artefacts are byte-identical to
  // the standing ones (the removal rewrote indices, nothing else).
  for (const core::AppSolution& survivor : after.apps) {
    const core::AppSolution& original = app_named(base, survivor.spec.name);
    EXPECT_EQ(survivor.timing.t_star_w, original.timing.t_star_w);
    EXPECT_EQ(survivor.timing.t_minus, original.timing.t_minus);
    EXPECT_EQ(survivor.timing.t_plus, original.timing.t_plus);
    EXPECT_EQ(survivor.timing.min_interarrival,
              original.timing.min_interarrival);
  }
  expect_fresh_proofs_pass(after, session.options());
}

TEST(RedimensionTest, RemoveThenReAddRoundTrips) {
  const std::vector<core::AppSpec> specs = case_specs(3);
  core::DimensioningSession session(base_options());
  (void)session.solve(specs);

  core::Delta remove_c2;
  remove_c2.remove.push_back("C2");
  (void)session.redimension(remove_c2);

  core::Delta re_add;
  re_add.add.push_back(specs[1]);
  const core::Solution after = session.redimension(re_add);

  EXPECT_EQ(after.apps.size(), 3u);
  const core::AppSolution& restored = app_named(after, "C2");
  EXPECT_EQ(restored.spec.min_interarrival, specs[1].min_interarrival);
  // One remove + one add also works as a single atomic delta (removals
  // apply first, so the name never collides).
  core::Delta swap;
  swap.remove.push_back("C2");
  swap.add.push_back(specs[1]);
  const core::Solution swapped = session.redimension(swap);
  EXPECT_EQ(swapped.stats.redimension_events, 2);
  EXPECT_EQ(swapped.stats.redimension_removals, 1);
  EXPECT_EQ(swapped.apps.size(), 3u);
  expect_fresh_proofs_pass(swapped, session.options());
}

TEST(RedimensionTest, AdditionOpensNewSlotOnlyOnConflict) {
  // Under the bounded verifier the 4-app case study splits: C3 does not
  // fit next to {C1, C4, C2} (the cold 4-app solve pins this), so adding
  // C3 to the standing 3-app population must open a dedicated slot.
  const std::vector<casestudy::App> pool = casestudy::all_apps();
  core::DimensioningSession session(base_options());
  (void)session.solve(
      {spec_of(pool[0]), spec_of(pool[3]), spec_of(pool[1])});

  core::Delta delta;
  delta.add.push_back(spec_of(pool[2]));
  const core::Solution after = session.redimension(delta);
  EXPECT_EQ(after.stats.redimension_events, 1);
  EXPECT_EQ(after.stats.redimension_refits, 0);
  EXPECT_EQ(after.stats.redimension_new_slots, 1);
  EXPECT_EQ(slot_names(after),
            (std::vector<std::vector<std::string>>{{"C1", "C4", "C2"},
                                                   {"C3"}}));
  expect_fresh_proofs_pass(after, session.options());
}

TEST(RedimensionTest, RerateConflictFallsBackToFirstFit) {
  // Re-rating C5 to C2's plant/gains/rate makes its standing slot
  // {C1, C5, C4, C3} carry the timing multiset {C1, C2, C4, C3} — which
  // the bounded verifier rejects (same population the 4-app solve
  // refuses to co-locate). The session must record the conflict and
  // first-fit C5 elsewhere; under the 5-app case study it lands next to
  // the real C2.
  const std::vector<casestudy::App> pool = casestudy::all_apps();
  core::DimensioningSession session(base_options());
  const core::Solution base = session.solve(case_specs(5));
  ASSERT_EQ(slot_names(base),
            (std::vector<std::vector<std::string>>{{"C1", "C5", "C4", "C3"},
                                                   {"C2"}}));

  core::AppSpec c5_as_c2 = spec_of(pool[1]);
  c5_as_c2.name = "C5";
  core::Delta delta;
  delta.rerate.push_back(c5_as_c2);
  const core::Solution after = session.redimension(delta);

  EXPECT_EQ(after.stats.redimension_events, 1);
  EXPECT_EQ(after.stats.redimension_conflicts, 1);
  EXPECT_EQ(after.stats.redimension_refits, 1);
  EXPECT_EQ(after.stats.redimension_new_slots, 0);
  EXPECT_EQ(slot_names(after),
            (std::vector<std::vector<std::string>>{{"C1", "C4", "C3"},
                                                   {"C2", "C5"}}));
  EXPECT_EQ(app_named(after, "C5").timing.min_interarrival,
            pool[1].min_interarrival);
  expect_fresh_proofs_pass(after, session.options());
}

TEST(RedimensionTest, InPlaceRerateKeepsSlotWhenStillAdmitted) {
  // Re-rating C2 to a slightly smaller (still admitted) rate keeps it in
  // its slot: one refit, no conflict, no membership change.
  const std::vector<core::AppSpec> specs = case_specs(3);
  core::DimensioningSession session(base_options());
  const core::Solution base = session.solve(specs);

  core::AppSpec slower = specs[1];
  slower.min_interarrival += 10;
  core::Delta delta;
  delta.rerate.push_back(slower);
  const core::Solution after = session.redimension(delta);

  EXPECT_EQ(after.stats.redimension_events, 1);
  EXPECT_EQ(after.stats.redimension_refits, 1);
  EXPECT_EQ(after.stats.redimension_conflicts, 0);
  EXPECT_EQ(after.stats.redimension_new_slots, 0);
  EXPECT_EQ(slot_names(after), slot_names(base));
  EXPECT_EQ(app_named(after, "C2").timing.min_interarrival,
            specs[1].min_interarrival + 10);
  expect_fresh_proofs_pass(after, session.options());
}

TEST(RedimensionTest, MixedDeltaCountersBalanceAndProofsPass) {
  const std::vector<casestudy::App> pool = casestudy::all_apps();
  core::DimensioningSession session(base_options());
  (void)session.solve(case_specs(3));

  core::AppSpec slower_c3 = spec_of(pool[2]);
  slower_c3.min_interarrival += 5;
  core::Delta delta;
  delta.remove.push_back("C1");
  delta.rerate.push_back(slower_c3);
  delta.add.push_back(spec_of(pool[3]));
  const core::Solution after = session.redimension(delta);

  EXPECT_EQ(after.stats.redimension_events, 3);
  // Invariant: every event is accounted for exactly once.
  EXPECT_EQ(after.stats.redimension_removals + after.stats.redimension_refits +
                after.stats.redimension_new_slots,
            after.stats.redimension_events);
  EXPECT_EQ(after.apps.size(), 3u);
  (void)app_named(after, "C2");
  (void)app_named(after, "C3");
  (void)app_named(after, "C4");
  expect_fresh_proofs_pass(after, session.options());
  // The session's standing solution is the returned one.
  EXPECT_EQ(engine::fingerprint(session.solution()),
            engine::fingerprint(after));
}

TEST(RedimensionTest, RedimensionBeforeSolveThrows) {
  core::DimensioningSession session(base_options());
  EXPECT_FALSE(session.has_solution());
  EXPECT_THROW((void)session.redimension({}), std::logic_error);
  EXPECT_THROW((void)session.solution(), std::logic_error);
  EXPECT_THROW((void)session.specs(), std::logic_error);
}

TEST(RedimensionTest, DeltaValidationRejectsMalformedDeltas) {
  const std::vector<core::AppSpec> specs = case_specs(3);
  core::DimensioningSession session(base_options());
  const core::Solution base = session.solve(specs);

  const auto expect_rejected = [&](const core::Delta& delta) {
    EXPECT_THROW((void)session.redimension(delta), std::invalid_argument);
    // A rejected delta leaves the standing solution untouched.
    EXPECT_EQ(engine::fingerprint(session.solution()),
              engine::fingerprint(base));
  };

  core::Delta unknown_removal;
  unknown_removal.remove.push_back("C9");
  expect_rejected(unknown_removal);

  core::Delta duplicate_removal;
  duplicate_removal.remove = {"C2", "C2"};
  expect_rejected(duplicate_removal);

  core::Delta unknown_rerate;
  unknown_rerate.rerate.push_back(specs[1]);
  unknown_rerate.rerate.back().name = "C9";
  expect_rejected(unknown_rerate);

  core::Delta removed_and_rerated;
  removed_and_rerated.remove.push_back("C2");
  removed_and_rerated.rerate.push_back(specs[1]);
  expect_rejected(removed_and_rerated);

  core::Delta colliding_addition;
  colliding_addition.add.push_back(specs[1]);
  expect_rejected(colliding_addition);

  core::Delta emptying;
  emptying.remove = {"C1", "C2", "C3"};
  expect_rejected(emptying);
}

}  // namespace
}  // namespace ttdim
