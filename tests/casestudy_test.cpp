// Data-integrity tests for the case-study module: shapes, Table 1
// requirement columns, controllability and the documented C6 correction.
#include "casestudy/apps.h"
#include "control/design.h"
#include "gtest/gtest.h"
#include "linalg/eig.h"

namespace ttdim::casestudy {
namespace {

TEST(CaseStudyData, SixApplicationsInPaperOrder) {
  const std::vector<App> apps = all_apps();
  ASSERT_EQ(apps.size(), 6u);
  const char* names[] = {"C1", "C2", "C3", "C4", "C5", "C6"};
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(apps[i].name, names[i]);
}

TEST(CaseStudyData, Table1RequirementColumns) {
  const std::vector<App> apps = all_apps();
  const int r[] = {25, 100, 50, 40, 25, 100};
  const int j_star[] = {18, 25, 20, 19, 18, 20};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(apps[i].min_interarrival, r[i]) << apps[i].name;
    EXPECT_EQ(apps[i].settling_requirement, j_star[i]) << apps[i].name;
  }
}

TEST(CaseStudyData, GainShapesMatchPlants) {
  for (const App& app : all_apps()) {
    EXPECT_EQ(app.kt.rows(), 1) << app.name;
    EXPECT_EQ(app.kt.cols(), app.plant.n_states()) << app.name;
    EXPECT_EQ(app.ke.rows(), 1) << app.name;
    EXPECT_EQ(app.ke.cols(), app.plant.n_states() + 1) << app.name;
    EXPECT_DOUBLE_EQ(app.plant.h(), kSamplingPeriod) << app.name;
    EXPECT_EQ(app.plant.n_inputs(), 1) << app.name;
  }
}

TEST(CaseStudyData, StateDimensionsMatchTable1) {
  const std::vector<App> apps = all_apps();
  const linalg::Index dims[] = {3, 3, 2, 2, 2, 1};
  for (size_t i = 0; i < 6; ++i)
    EXPECT_EQ(apps[i].plant.n_states(), dims[i]) << apps[i].name;
}

TEST(CaseStudyData, AllPlantsControllable) {
  for (const App& app : all_apps())
    EXPECT_TRUE(control::is_controllable(app.plant)) << app.name;
}

TEST(CaseStudyData, C6SignCorrectionProducesStableLoop) {
  // The documented correction (EXPERIMENTS.md): phi = +0.999 gives the
  // stable closed loop 0.6991 that settles in the paper's JT = 11
  // samples; the printed -0.999 would be unstable.
  const App app = c6();
  EXPECT_GT(app.plant.phi()(0, 0), 0.0);
  const control::Matrix acl = control::closed_loop(app.plant, app.kt);
  EXPECT_NEAR(acl(0, 0), 0.6991, 5e-4);
  EXPECT_TRUE(linalg::is_schur_stable(acl));
}

TEST(CaseStudyData, MotivationalGainsDistinct) {
  EXPECT_TRUE(ke_stable().approx_equal(c1().ke, 0.0));
  EXPECT_FALSE(ke_stable().approx_equal(ke_unstable(), 1e-3));
  EXPECT_EQ(ke_unstable().cols(), 4);
}

TEST(CaseStudyData, Eq6PlantMatchesC1) {
  EXPECT_TRUE(
      dc_motor_position_plant().phi().approx_equal(c1().plant.phi(), 0.0));
}

}  // namespace
}  // namespace ttdim::casestudy
