// Corpus replay gate: every checked-in artifact under tests/corpus/ is
// re-verified (fresh DiscreteVerifier proof of the recorded claim) and
// re-simulated (recorded scenario against the runtime scheduler, expected
// outcome included). A soundness regression anywhere in the
// verifier/oracle/scheduler stack turns a corpus entry red — which is the
// whole point: every counterexample the fuzzer ever shrank stays fatal
// forever. Regenerate the seed entries with
// `ttdim_fuzz --mint-corpus tests/corpus` after intentional semantics
// changes.
#include <set>
#include <string>
#include <vector>

#include "engine/fuzz/artifact.h"
#include "engine/fuzz/soundness_fuzzer.h"
#include "gtest/gtest.h"

#ifndef TTDIM_CORPUS_DIR
#error "TTDIM_CORPUS_DIR must point at the checked-in corpus directory"
#endif

namespace ttdim {
namespace {

using engine::fuzz::Artifact;
using engine::fuzz::ReplayResult;

std::vector<std::string> corpus_paths() {
  return engine::fuzz::list_artifacts(TTDIM_CORPUS_DIR);
}

TEST(FuzzCorpusTest, CorpusIsPresent) {
  // An empty corpus would silently turn the replay gate into a no-op.
  EXPECT_GE(corpus_paths().size(), 9u)
      << "expected the seed corpus under " << TTDIM_CORPUS_DIR;
}

TEST(FuzzCorpusTest, EveryArtifactParsesAndRoundTrips) {
  for (const std::string& path : corpus_paths()) {
    SCOPED_TRACE(path);
    const Artifact artifact = engine::fuzz::load_artifact(path);
    EXPECT_FALSE(artifact.description.empty());
    EXPECT_EQ(Artifact::parse(artifact.serialize()).serialize(),
              artifact.serialize());
  }
}

TEST(FuzzCorpusTest, EveryArtifactReplaysGreen) {
  for (const std::string& path : corpus_paths()) {
    SCOPED_TRACE(path);
    const ReplayResult verdict =
        engine::fuzz::replay(engine::fuzz::load_artifact(path));
    EXPECT_TRUE(verdict.ok) << verdict.message;
  }
}

TEST(FuzzCorpusTest, SeedCorpusSpansBothVerdictsAndManyScenarioKinds) {
  std::set<std::string> kinds;
  bool saw_safe = false;
  bool saw_unsafe = false;
  for (const std::string& path : corpus_paths()) {
    const Artifact artifact = engine::fuzz::load_artifact(path);
    kinds.insert(artifact.scenario_kind);
    (artifact.claimed_safe ? saw_safe : saw_unsafe) = true;
  }
  EXPECT_TRUE(saw_safe);
  EXPECT_TRUE(saw_unsafe);
  // burst, coincidence, witness, staggered, random, correlated,
  // system_adversarial, churn, hyperperiod.
  EXPECT_GE(kinds.size(), 9u);
}

}  // namespace
}  // namespace ttdim
