// The parallel dwell search must be unobservable in the result: tables
// computed with any thread count are byte-identical to the serial
// switching::compute_dwell_tables, including the early stop at the first
// infeasible wait and the thrown exceptions.
#include <stdexcept>

#include "casestudy/apps.h"
#include "engine/oracle/dwell_search.h"
#include "gtest/gtest.h"
#include "switching/dwell.h"

namespace ttdim::engine::oracle {
namespace {

using switching::DwellAnalysisSpec;
using switching::DwellTables;

DwellAnalysisSpec spec_of(const casestudy::App& app) {
  DwellAnalysisSpec spec;
  spec.settling_requirement = app.settling_requirement;
  spec.settling = control::SettlingSpec{casestudy::kSettlingTol, 3000};
  return spec;
}

void expect_identical(const DwellTables& a, const DwellTables& b) {
  EXPECT_EQ(a.t_star_w, b.t_star_w);
  EXPECT_EQ(a.t_minus, b.t_minus);
  EXPECT_EQ(a.t_plus, b.t_plus);
  EXPECT_EQ(a.settling_at_minus, b.settling_at_minus);
  EXPECT_EQ(a.settling_at_plus, b.settling_at_plus);
  EXPECT_EQ(a.settling_tt, b.settling_tt);
  EXPECT_EQ(a.settling_et, b.settling_et);
  EXPECT_EQ(a.tw_granularity, b.tw_granularity);
}

TEST(ParallelDwellSearch, MatchesSerialForAllCaseStudyApps) {
  for (const casestudy::App& app : casestudy::all_apps()) {
    const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
    const DwellAnalysisSpec spec = spec_of(app);
    const DwellTables serial = switching::compute_dwell_tables(loop, spec);
    for (int threads : {2, 4, 7}) {
      const DwellTables parallel =
          compute_dwell_tables_parallel(loop, spec, threads);
      expect_identical(serial, parallel);
    }
  }
}

TEST(ParallelDwellSearch, SingleThreadDelegatesToSerial) {
  const casestudy::App app = casestudy::c6();
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  const DwellAnalysisSpec spec = spec_of(app);
  expect_identical(switching::compute_dwell_tables(loop, spec),
                   compute_dwell_tables_parallel(loop, spec, 1));
}

TEST(ParallelDwellSearch, CoarseGranularityMatchesSerial) {
  const casestudy::App app = casestudy::c2();
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  DwellAnalysisSpec spec = spec_of(app);
  spec.tw_granularity = 3;
  expect_identical(switching::compute_dwell_tables(loop, spec),
                   compute_dwell_tables_parallel(loop, spec, 4));
}

TEST(ParallelDwellSearch, ThrowsLikeSerialOnUnmeetableRequirement) {
  const casestudy::App app = casestudy::c6();
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  DwellAnalysisSpec spec = spec_of(app);
  spec.settling_requirement = 1;  // J* < JT
  EXPECT_THROW(static_cast<void>(switching::compute_dwell_tables(loop, spec)),
               std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(compute_dwell_tables_parallel(loop, spec, 4)),
      std::invalid_argument);
}

TEST(DwellRow, AgreesWithAssembledTables) {
  const casestudy::App app = casestudy::c1();
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  const DwellAnalysisSpec spec = spec_of(app);
  const DwellTables tables = switching::compute_dwell_tables(loop, spec);
  ASSERT_TRUE(tables.feasible());
  for (int wait = 0; wait <= tables.t_star_w; ++wait) {
    const auto row = switching::compute_dwell_row(loop, wait, spec);
    ASSERT_TRUE(row.has_value()) << "wait " << wait;
    EXPECT_EQ(row->t_minus, tables.t_minus[static_cast<size_t>(wait)]);
    EXPECT_EQ(row->t_plus, tables.t_plus[static_cast<size_t>(wait)]);
  }
  EXPECT_FALSE(
      switching::compute_dwell_row(loop, tables.t_star_w + 1, spec)
          .has_value());
}

}  // namespace
}  // namespace ttdim::engine::oracle
