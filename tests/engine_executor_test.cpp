// The persistent work-stealing Executor: exactly-once index execution,
// real overlap from a lazily-grown pool, deterministic lowest-index
// exception rethrow, nested submission without deadlock or thread
// multiplication, and safe concurrent use from many submitting threads
// (the TSan job runs this suite).
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "engine/parallel_for.h"
#include "gtest/gtest.h"

namespace ttdim::engine {
namespace {

TEST(Executor, EveryIndexRunsExactlyOnce) {
  Executor executor;
  std::vector<std::atomic<int>> hits(101);
  for (auto& h : hits) h = 0;
  executor.run(8, 101, [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, OverlapsSleepBoundWork) {
  // 8 x 100 ms on 8 attached threads must finish far below the 800 ms
  // serial time, regardless of core count; 600 ms leaves room for
  // scheduler noise on loaded CI machines.
  Executor executor;
  const auto t0 = std::chrono::steady_clock::now();
  executor.run(8, 8, [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
  EXPECT_LT(elapsed_ms, 600.0);
}

TEST(Executor, PoolGrowsLazilyAndStaysBounded) {
  Executor executor;
  EXPECT_EQ(executor.worker_count(), 0);  // nothing spawned yet
  executor.run(6, 32, [](int) {});
  const int after_first = executor.worker_count();
  EXPECT_LE(after_first, 5);  // at most parallelism - 1 helpers
  // Repeat runs reuse the pool instead of spawning per call.
  for (int round = 0; round < 10; ++round) executor.run(6, 32, [](int) {});
  EXPECT_EQ(executor.worker_count(), after_first);
}

TEST(Executor, CapZeroStillCompletesOnTheCaller) {
  Executor executor(0);  // pool may never spawn a thread
  std::atomic<int> sum{0};
  executor.run(8, 100, [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
  EXPECT_EQ(executor.worker_count(), 0);
}

TEST(Executor, LowestIndexExceptionRethrownDeterministically) {
  Executor executor;
  // Two failures; whichever thread hits which first, index 3 must win.
  std::atomic<int> executed{0};
  try {
    executor.run(4, 50, [&](int i) {
      ++executed;
      if (i == 17 || i == 3) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "3");
  }
  // All indices still ran: a failure never abandons sibling work.
  EXPECT_EQ(executed.load(), 50);
}

TEST(Executor, SerialPathFailsFast) {
  Executor executor;
  int executed = 0;
  EXPECT_THROW(executor.run(1, 50,
                            [&](int i) {
                              ++executed;
                              if (i == 5) throw std::runtime_error("stop");
                            }),
               std::runtime_error);
  EXPECT_EQ(executed, 6);  // indices 0..5, nothing after the throw
}

TEST(Executor, NestedRunsShareOnePoolWithoutDeadlock) {
  // Each outer index submits its own inner job to the same executor —
  // the oversubscription scenario the persistent pool exists to fix.
  // The submitting worker drains its own inner job, so this completes
  // even when every pool thread is busy with outer work.
  Executor executor;
  std::atomic<int> inner_total{0};
  executor.run(4, 4, [&](int) {
    executor.run(4, 25, [&](int) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 100);
  // The pool never multiplied threads for the nested layer: 3 helpers
  // for the outer job, nested jobs rode the same workers.
  EXPECT_LE(executor.worker_count(), 3);
}

TEST(Executor, ConcurrentSubmittersShareThePool) {
  Executor executor;
  constexpr int kSubmitters = 4;
  std::vector<std::atomic<int>> sums(kSubmitters);
  for (auto& s : sums) s = 0;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&executor, &sums, t] {
      executor.run(3, 200, [&sums, t](int i) { sums[static_cast<size_t>(t)] += i; });
    });
  }
  for (std::thread& t : submitters) t.join();
  for (const auto& s : sums) EXPECT_EQ(s.load(), 19900);
}

TEST(ParallelFor, RunsOnTheGlobalPoolWithTheOldContract) {
  // parallel_for_index is now a façade over Executor::global(): same
  // exactly-once coverage, same thread-count independence, lowest-index
  // rethrow instead of the old first-to-fail.
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  parallel_for_index(8, 64, [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  try {
    parallel_for_index(4, 20, [](int i) {
      if (i >= 2) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "2");
  }

  EXPECT_THROW(parallel_for_index(-1, 4, [](int) {}), std::logic_error);
}

}  // namespace
}  // namespace ttdim::engine
