// Tests for the DBM library and the zone-graph reachability checker.
#include <stdexcept>

#include "gtest/gtest.h"
#include "ta/dbm.h"
#include "ta/network.h"

namespace ttdim::ta {
namespace {

// ------------------------------------------------------------------- Dbm --

TEST(DbmBounds, EncodingRoundTrip) {
  EXPECT_EQ(bound_value(bound_weak(5)), 5);
  EXPECT_TRUE(bound_is_weak(bound_weak(5)));
  EXPECT_EQ(bound_value(bound_strict(-3)), -3);
  EXPECT_FALSE(bound_is_weak(bound_strict(-3)));
  // Strict is tighter than weak at the same constant.
  EXPECT_LT(bound_strict(4), bound_weak(4));
  EXPECT_LT(bound_weak(3), bound_strict(4));
}

TEST(DbmBounds, SaturatingAdd) {
  EXPECT_EQ(bound_add(bound_weak(2), bound_weak(3)), bound_weak(5));
  EXPECT_EQ(bound_add(bound_weak(2), bound_strict(3)), bound_strict(5));
  EXPECT_EQ(bound_add(kInfinity, bound_weak(1)), kInfinity);
}

TEST(Dbm, FreshZoneIsOrigin) {
  const Dbm z(2);
  EXPECT_FALSE(z.empty());
  EXPECT_TRUE(z.contains_point({0, 0}));
  EXPECT_FALSE(z.contains_point({1, 0}));
}

TEST(Dbm, UpOpensFuture) {
  Dbm z(2);
  z.up();
  // Delay keeps clocks synchronised: both advance together.
  EXPECT_TRUE(z.contains_point({5, 5}));
  EXPECT_FALSE(z.contains_point({5, 4}));
}

TEST(Dbm, ConstrainWindow) {
  Dbm z(1);
  z.up();
  EXPECT_TRUE(z.constrain(1, 0, bound_weak(10)));   // x <= 10
  EXPECT_TRUE(z.constrain(0, 1, bound_weak(-3)));   // x >= 3
  EXPECT_TRUE(z.contains_point({3}));
  EXPECT_TRUE(z.contains_point({10}));
  EXPECT_FALSE(z.contains_point({2}));
  EXPECT_FALSE(z.contains_point({11}));
}

TEST(Dbm, ContradictionEmpties) {
  Dbm z(1);
  z.up();
  EXPECT_TRUE(z.constrain(1, 0, bound_weak(5)));     // x <= 5
  EXPECT_FALSE(z.constrain(0, 1, bound_strict(-5))); // x > 5 -> empty
  EXPECT_TRUE(z.empty());
}

TEST(Dbm, StrictVersusWeakBoundary) {
  Dbm z(1);
  z.up();
  EXPECT_TRUE(z.constrain(1, 0, bound_strict(5)));  // x < 5
  // x >= 5 contradicts x < 5 even at the shared constant.
  EXPECT_FALSE(z.constrain(0, 1, bound_weak(-5)));
  EXPECT_TRUE(z.empty());
}

TEST(Dbm, ResetPinsClock) {
  Dbm z(2);
  z.up();
  z.constrain(1, 0, bound_weak(7));
  z.constrain(0, 1, bound_weak(-7));  // x1 == 7
  z.reset(2, 0);                      // x2 := 0 while x1 == 7
  EXPECT_TRUE(z.contains_point({7, 0}));
  EXPECT_FALSE(z.contains_point({7, 7}));
  // Difference is remembered through later delay.
  z.up();
  EXPECT_TRUE(z.contains_point({9, 2}));
  EXPECT_FALSE(z.contains_point({9, 3}));
}

TEST(Dbm, ResetToValue) {
  Dbm z(1);
  z.up();
  z.reset(1, 4);
  EXPECT_TRUE(z.contains_point({4}));
  EXPECT_FALSE(z.contains_point({0}));
}

TEST(Dbm, AssignClockCopiesValuation) {
  Dbm z(2);
  z.up();
  z.constrain(1, 0, bound_weak(3));
  z.constrain(0, 1, bound_weak(-3));  // x1 == 3
  z.assign_clock(2, 1);               // x2 := x1
  EXPECT_TRUE(z.contains_point({3, 3}));
  EXPECT_FALSE(z.contains_point({3, 0}));
}

TEST(Dbm, InclusionReflexiveAndStrict) {
  Dbm small(1);
  small.up();
  small.constrain(1, 0, bound_weak(5));
  Dbm big(1);
  big.up();
  EXPECT_TRUE(small.included_in(small));
  EXPECT_TRUE(small.included_in(big));
  EXPECT_FALSE(big.included_in(small));
}

TEST(Dbm, ExtrapolationAbstractsLargeBounds) {
  Dbm z(1);
  z.up();
  z.constrain(0, 1, bound_weak(-50));  // x >= 50
  z.constrain(1, 0, bound_weak(60));   // x <= 60
  z.extrapolate({0, 10});              // max constant for x is 10
  // Above the ceiling the zone must look like "x > 10 ... unbounded".
  EXPECT_TRUE(z.contains_point({100}));
  EXPECT_TRUE(z.contains_point({11}));
  EXPECT_FALSE(z.contains_point({10}));
}

TEST(Dbm, HashDiscriminates) {
  Dbm a(1);
  Dbm b(1);
  EXPECT_EQ(a.hash(), b.hash());
  b.up();
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_FALSE(a == b);
}

// --------------------------------------------------------------- Network --

/// One automaton, one clock: location A (inv x <= 2) --[x >= 1]--> B.
Network simple_net() {
  Network net;
  const int x = net.add_clock("x", 3);
  Automaton a;
  a.name = "proc";
  a.locations.push_back({"A", LocKind::Normal, {{x, Rel::Le, 2, nullptr}}});
  a.locations.push_back({"B", LocKind::Normal, {}});
  Edge e;
  e.from = 0;
  e.to = 1;
  e.clock_guards.push_back({x, Rel::Ge, 1, nullptr});
  e.label = "go";
  a.edges.push_back(e);
  net.add_automaton(std::move(a));
  return net;
}

TEST(Zone, SimpleReachability) {
  const Network net = simple_net();
  const ZoneChecker checker(net);
  const ReachResult hit = checker.reachable(
      [](const std::vector<int>& locs, const VarStore&) {
        return locs[0] == 1;
      });
  EXPECT_TRUE(hit.reachable);
  ASSERT_GE(hit.trace.size(), 2u);
  EXPECT_EQ(hit.trace.back().action, "go");
}

TEST(Zone, GuardBlocksUnreachable) {
  Network net;
  const int x = net.add_clock("x", 5);
  Automaton a;
  a.name = "proc";
  // Invariant x <= 2 but edge needs x >= 4: never enabled.
  a.locations.push_back({"A", LocKind::Normal, {{x, Rel::Le, 2, nullptr}}});
  a.locations.push_back({"B", LocKind::Normal, {}});
  Edge e;
  e.from = 0;
  e.to = 1;
  e.clock_guards.push_back({x, Rel::Ge, 4, nullptr});
  a.edges.push_back(e);
  net.add_automaton(std::move(a));
  const ReachResult r = ZoneChecker(net).reachable(
      [](const std::vector<int>& locs, const VarStore&) {
        return locs[0] == 1;
      });
  EXPECT_FALSE(r.reachable);
}

TEST(Zone, VariableGuardAndUpdate) {
  Network net;
  net.add_clock("x", 1);
  const int v = net.add_var("v", 0);
  Automaton a;
  a.name = "counter";
  a.locations.push_back({"L", LocKind::Normal, {}});
  Edge inc;
  inc.from = 0;
  inc.to = 0;
  inc.data_guard = [v](const VarStore& vars) { return vars[v] < 3; };
  inc.update = [v](VarStore& vars) { ++vars[v]; };
  inc.label = "inc";
  a.edges.push_back(inc);
  net.add_automaton(std::move(a));
  const ReachResult r3 = ZoneChecker(net).reachable(
      [v](const std::vector<int>&, const VarStore& vars) {
        return vars[v] == 3;
      });
  EXPECT_TRUE(r3.reachable);
  const ReachResult r4 = ZoneChecker(net).reachable(
      [v](const std::vector<int>&, const VarStore& vars) {
        return vars[v] == 4;
      });
  EXPECT_FALSE(r4.reachable);
}

TEST(Zone, BinarySynchronisation) {
  Network net;
  net.add_clock("x", 1);
  const int c = net.add_channel("go");
  const int flag = net.add_var("flag", 0);

  Automaton sender;
  sender.name = "sender";
  sender.locations.push_back({"S0", LocKind::Normal, {}});
  sender.locations.push_back({"S1", LocKind::Normal, {}});
  Edge se;
  se.from = 0;
  se.to = 1;
  se.sync = {c, true};
  se.update = [flag](VarStore& vars) { vars[flag] += 1; };  // sender first
  se.label = "snd";
  sender.edges.push_back(se);

  Automaton receiver;
  receiver.name = "receiver";
  receiver.locations.push_back({"R0", LocKind::Normal, {}});
  receiver.locations.push_back({"R1", LocKind::Normal, {}});
  Edge re;
  re.from = 0;
  re.to = 1;
  re.sync = {c, false};
  re.update = [flag](VarStore& vars) { vars[flag] *= 10; };  // then receiver
  re.label = "rcv";
  receiver.edges.push_back(re);

  net.add_automaton(std::move(sender));
  net.add_automaton(std::move(receiver));

  // Both must move together, and the update order is sender-then-receiver:
  // flag = (0+1)*10 = 10.
  const ReachResult r = ZoneChecker(net).reachable(
      [flag](const std::vector<int>& locs, const VarStore& vars) {
        return locs[0] == 1 && locs[1] == 1 && vars[flag] == 10;
      });
  EXPECT_TRUE(r.reachable);
  // Sender cannot advance alone.
  const ReachResult lone = ZoneChecker(net).reachable(
      [](const std::vector<int>& locs, const VarStore&) {
        return locs[0] == 1 && locs[1] == 0;
      });
  EXPECT_FALSE(lone.reachable);
}

TEST(Zone, CommittedLocationsAreAtomic) {
  // P: A -> (committed C) -> B with variable writes in both hops; Q can
  // tick freely. Q must not observe the intermediate committed state.
  Network net;
  net.add_clock("x", 1);
  const int v = net.add_var("v", 0);
  const int seen = net.add_var("seen", 0);

  Automaton p;
  p.name = "P";
  p.locations.push_back({"A", LocKind::Normal, {}});
  p.locations.push_back({"C", LocKind::Committed, {}});
  p.locations.push_back({"B", LocKind::Normal, {}});
  Edge a_to_c;
  a_to_c.from = 0;
  a_to_c.to = 1;
  a_to_c.update = [v](VarStore& vars) { vars[v] = 1; };
  Edge c_to_b;
  c_to_b.from = 1;
  c_to_b.to = 2;
  c_to_b.update = [v](VarStore& vars) { vars[v] = 2; };
  p.edges.push_back(a_to_c);
  p.edges.push_back(c_to_b);

  Automaton q;
  q.name = "Q";
  q.locations.push_back({"L", LocKind::Normal, {}});
  Edge observe;
  observe.from = 0;
  observe.to = 0;
  observe.data_guard = [v](const VarStore& vars) { return vars[v] == 1; };
  observe.update = [seen](VarStore& vars) { vars[seen] = 1; };
  q.edges.push_back(observe);

  net.add_automaton(std::move(p));
  net.add_automaton(std::move(q));

  const ReachResult r = ZoneChecker(net).reachable(
      [seen](const std::vector<int>&, const VarStore& vars) {
        return vars[seen] == 1;
      });
  EXPECT_FALSE(r.reachable);
}

TEST(Zone, UrgentLocationBlocksDelay) {
  // A -(x >= 1)-> U(urgent) -> B with guard x >= 2 out of U: stuck.
  Network net;
  const int x = net.add_clock("x", 3);
  Automaton a;
  a.name = "proc";
  a.locations.push_back({"A", LocKind::Normal, {}});
  a.locations.push_back({"U", LocKind::Urgent, {}});
  a.locations.push_back({"B", LocKind::Normal, {}});
  Edge e1;
  e1.from = 0;
  e1.to = 1;
  e1.clock_guards.push_back({x, Rel::Eq, 1, nullptr});
  Edge e2;
  e2.from = 1;
  e2.to = 2;
  e2.clock_guards.push_back({x, Rel::Ge, 2, nullptr});
  a.edges.push_back(e1);
  a.edges.push_back(e2);
  net.add_automaton(std::move(a));
  const ReachResult r = ZoneChecker(net).reachable(
      [](const std::vector<int>& locs, const VarStore&) {
        return locs[0] == 2;
      });
  EXPECT_FALSE(r.reachable);
}

TEST(Zone, VariableDependentClockBound) {
  // Guard x >= v where v is raised by a discrete self-loop. With v = 2 the
  // goal location is reachable only after 2 time units; verify the bound
  // function is consulted.
  Network net;
  const int x = net.add_clock("x", 4);
  const int v = net.add_var("v", 2);
  Automaton a;
  a.name = "proc";
  a.locations.push_back({"A", LocKind::Normal,
                         {{x, Rel::Le, 0, [v](const VarStore& vars) {
                             return vars[v];
                           }}}});
  a.locations.push_back({"B", LocKind::Normal, {}});
  Edge e;
  e.from = 0;
  e.to = 1;
  e.clock_guards.push_back({x, Rel::Ge, 0, [v](const VarStore& vars) {
                              return vars[v];
                            }});
  a.edges.push_back(e);
  net.add_automaton(std::move(a));
  const ReachResult r = ZoneChecker(net).reachable(
      [](const std::vector<int>& locs, const VarStore&) {
        return locs[0] == 1;
      });
  EXPECT_TRUE(r.reachable);
}

TEST(Zone, PeriodicTickTerminatesViaExtrapolation) {
  // A single periodic ticker (x <= 1, tick at x == 1, reset) with an
  // unbounded tick counter would blow up without extrapolation of the
  // clock; bound the counter modulo 4 and check all phases are reached in
  // finitely many stored states.
  Network net;
  const int x = net.add_clock("x", 1);
  const int n = net.add_var("n", 0);
  Automaton t;
  t.name = "ticker";
  t.locations.push_back({"L", LocKind::Normal, {{x, Rel::Le, 1, nullptr}}});
  Edge tick;
  tick.from = 0;
  tick.to = 0;
  tick.clock_guards.push_back({x, Rel::Eq, 1, nullptr});
  tick.clock_resets.push_back(x);
  tick.update = [n](VarStore& vars) { vars[n] = (vars[n] + 1) % 4; };
  t.edges.push_back(tick);
  net.add_automaton(std::move(t));

  ZoneChecker::Options opt;
  opt.max_states = 1000;  // must terminate well under this
  const ReachResult r = ZoneChecker(net).reachable(
      [n](const std::vector<int>&, const VarStore& vars) {
        return vars[n] == 3;
      },
      opt);
  EXPECT_TRUE(r.reachable);
  const ReachResult all = ZoneChecker(net).reachable(
      [](const std::vector<int>&, const VarStore&) { return false; }, opt);
  EXPECT_FALSE(all.reachable);
  EXPECT_LT(all.states_stored, 20);
}

TEST(Zone, StateBudgetEnforced) {
  Network net;
  net.add_clock("x", 1);
  const int n = net.add_var("n", 0);
  Automaton a;
  a.name = "count";
  a.locations.push_back({"L", LocKind::Normal, {}});
  Edge inc;
  inc.from = 0;
  inc.to = 0;
  inc.update = [n](VarStore& vars) { ++vars[n]; };  // unbounded
  a.edges.push_back(inc);
  net.add_automaton(std::move(a));
  ZoneChecker::Options opt;
  opt.max_states = 100;
  EXPECT_THROW(ZoneChecker(net).reachable(
                   [](const std::vector<int>&, const VarStore&) {
                     return false;
                   },
                   opt),
               std::runtime_error);
}

TEST(Zone, MalformedAutomatonRejected) {
  Network net;
  net.add_clock("x", 1);
  Automaton a;
  a.name = "bad";
  a.locations.push_back({"L", LocKind::Normal, {}});
  Edge e;
  e.from = 0;
  e.to = 7;  // dangling target
  a.edges.push_back(e);
  EXPECT_THROW(net.add_automaton(std::move(a)), std::logic_error);
}

TEST(Zone, TraceReconstructionOrdersActions) {
  Network net;
  net.add_clock("x", 1);
  const int v = net.add_var("v", 0);
  Automaton a;
  a.name = "seq";
  a.locations.push_back({"L0", LocKind::Normal, {}});
  a.locations.push_back({"L1", LocKind::Normal, {}});
  a.locations.push_back({"L2", LocKind::Normal, {}});
  Edge e1;
  e1.from = 0;
  e1.to = 1;
  e1.label = "first";
  e1.update = [v](VarStore& vars) { vars[v] = 1; };
  Edge e2;
  e2.from = 1;
  e2.to = 2;
  e2.label = "second";
  a.edges.push_back(e1);
  a.edges.push_back(e2);
  net.add_automaton(std::move(a));
  const ReachResult r = ZoneChecker(net).reachable(
      [](const std::vector<int>& locs, const VarStore&) {
        return locs[0] == 2;
      });
  ASSERT_TRUE(r.reachable);
  ASSERT_EQ(r.trace.size(), 3u);
  EXPECT_EQ(r.trace[0].action, "init");
  EXPECT_EQ(r.trace[1].action, "first");
  EXPECT_EQ(r.trace[2].action, "second");
}

}  // namespace
}  // namespace ttdim::ta
