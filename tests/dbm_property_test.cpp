// Property tests for the DBM: a zone built by a random sequence of
// operations must agree, point for point, with a brute-force model that
// tracks the same constraints over a sampled integer grid. This pins the
// canonicalisation, constrain, up and reset algebra far beyond the
// hand-written cases in ta_test.cpp.
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "ta/dbm.h"

namespace ttdim::ta {
namespace {

constexpr int kClocks = 3;
constexpr int kGridMax = 6;  // sample valuations in [0, 6]^3

/// Reference model: a list of (i, j, bound) constraints; a point satisfies
/// the zone iff it satisfies all constraints and the implicit history of
/// ups/resets, which we encode by replaying operations over the point set.
struct PointSet {
  std::vector<std::vector<int32_t>> points;

  static PointSet origin() {
    PointSet s;
    s.points.push_back({0, 0, 0});
    return s;
  }

  /// Delay bounded to the grid: both models cap every clock at kGridMax
  /// right after the delay, so no point ever leaves the tracked window
  /// (an unbounded `up` would park points outside the grid whose later
  /// resets the finite reference could not reproduce).
  void bounded_up() {
    std::vector<std::vector<int32_t>> next;
    for (const auto& p : points) {
      for (int32_t d = 0;; ++d) {
        const std::vector<int32_t> q{p[0] + d, p[1] + d, p[2] + d};
        if (q[0] > kGridMax || q[1] > kGridMax || q[2] > kGridMax) break;
        next.push_back(q);
      }
    }
    points = std::move(next);
    dedup();
  }

  void reset(int clock, int32_t value) {
    for (auto& p : points) p[static_cast<size_t>(clock - 1)] = value;
    dedup();
  }

  void constrain(int i, int j, Bound b) {
    std::vector<std::vector<int32_t>> next;
    for (const auto& p : points) {
      const int32_t vi = i == 0 ? 0 : p[static_cast<size_t>(i - 1)];
      const int32_t vj = j == 0 ? 0 : p[static_cast<size_t>(j - 1)];
      const int32_t diff = vi - vj;
      const bool ok = bound_is_weak(b) ? diff <= bound_value(b)
                                       : diff < bound_value(b);
      if (ok) next.push_back(p);
    }
    points = std::move(next);
  }

  void dedup() {
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());
    // Clip to the sampled grid (points beyond it are not compared).
    std::vector<std::vector<int32_t>> kept;
    for (const auto& p : points) {
      bool in = true;
      for (int32_t v : p) in &= v <= kGridMax;
      if (in) kept.push_back(p);
    }
    points = std::move(kept);
  }
};

class DbmAgainstPoints : public ::testing::TestWithParam<unsigned> {};

TEST_P(DbmAgainstPoints, RandomOperationSequencesAgree) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    Dbm dbm(kClocks);
    PointSet ref = PointSet::origin();
    const int ops = 1 + static_cast<int>(rng() % 8);
    for (int op = 0; op < ops; ++op) {
      switch (rng() % 3) {
        case 0: {
          dbm.up();
          for (int clock = 1; clock <= kClocks; ++clock)
            dbm.constrain(clock, 0, bound_weak(kGridMax));
          ref.bounded_up();
          break;
        }
        case 1: {
          const int clock = 1 + static_cast<int>(rng() % kClocks);
          const int32_t value = static_cast<int32_t>(rng() % 4);
          dbm.reset(clock, value);
          ref.reset(clock, value);
          break;
        }
        case 2: {
          int i = static_cast<int>(rng() % (kClocks + 1));
          int j = static_cast<int>(rng() % (kClocks + 1));
          if (i == j) j = (j + 1) % (kClocks + 1);
          const int32_t c =
              static_cast<int32_t>(rng() % (kGridMax + 2)) - 1;
          // Weak bounds only: with strict bounds an integer point can be
          // reachable through fractional delays only, which the integer
          // reference model cannot track (strict-bound behaviour is pinned
          // by the deterministic cases in ta_test.cpp).
          const Bound b = bound_weak(c);
          dbm.constrain(i, j, b);
          ref.constrain(i, j, b);
          break;
        }
      }
    }
    // Compare over the whole sampled grid.
    for (int32_t x = 0; x <= kGridMax; ++x) {
      for (int32_t y = 0; y <= kGridMax; ++y) {
        for (int32_t z = 0; z <= kGridMax; ++z) {
          const std::vector<int32_t> p{x, y, z};
          const bool in_ref =
              std::find(ref.points.begin(), ref.points.end(), p) !=
              ref.points.end();
          const bool in_dbm = dbm.contains_point(p);
          ASSERT_EQ(in_dbm, in_ref)
              << "seed " << GetParam() << " trial " << trial << " point ("
              << x << "," << y << "," << z << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbmAgainstPoints,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(DbmAlgebra, InclusionIsPreservedByCommonOperations) {
  std::mt19937 rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    Dbm a(2);
    a.up();
    Dbm b = a;
    // Tighten a twice as hard as b: a must stay included in b.
    const int32_t c = static_cast<int32_t>(rng() % 8);
    a.constrain(1, 0, bound_weak(c));
    b.constrain(1, 0, bound_weak(c + static_cast<int32_t>(rng() % 4)));
    ASSERT_TRUE(a.empty() || a.included_in(b)) << "trial " << trial;
    // Same reset applied to both preserves inclusion.
    a.reset(2, 1);
    b.reset(2, 1);
    ASSERT_TRUE(a.empty() || a.included_in(b)) << "trial " << trial;
    // Delay preserves inclusion.
    a.up();
    b.up();
    ASSERT_TRUE(a.empty() || a.included_in(b)) << "trial " << trial;
  }
}

TEST(DbmAlgebra, ExtrapolationOnlyEverGrowsTheZone) {
  std::mt19937 rng(88);
  const std::vector<int32_t> ceilings{0, 3, 3};
  for (int trial = 0; trial < 60; ++trial) {
    Dbm z(2);
    z.up();
    z.constrain(1, 0, bound_weak(static_cast<int32_t>(rng() % 10)));
    z.constrain(0, 2, bound_weak(-static_cast<int32_t>(rng() % 6)));
    Dbm extrapolated = z;
    extrapolated.extrapolate(ceilings);
    ASSERT_TRUE(z.empty() || z.included_in(extrapolated)) << trial;
  }
}

}  // namespace
}  // namespace ttdim::ta
