// Round-trip and robustness tests for the ECU timing-table interchange
// format.
#include <sstream>

#include "casestudy/apps.h"
#include "gtest/gtest.h"
#include "switching/dwell.h"
#include "verify/discrete.h"
#include "verify/table_io.h"

namespace ttdim::verify {
namespace {

AppTiming sample_timing() {
  AppTiming t;
  t.name = "C1";
  t.t_star_w = 11;
  t.t_minus = {3, 4, 3, 3, 3, 3, 3, 3, 3, 4, 4, 5};
  t.t_plus = {6, 6, 5, 5, 5, 6, 5, 5, 4, 4, 5, 5};
  t.min_interarrival = 25;
  return t;
}

AppTiming case_study_timing(const casestudy::App& app) {
  switching::DwellAnalysisSpec spec;
  spec.settling_requirement = app.settling_requirement;
  spec.settling = control::SettlingSpec{casestudy::kSettlingTol, 3000};
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  return make_app_timing(app.name, switching::compute_dwell_tables(loop, spec),
                         app.min_interarrival);
}

TEST(TableIo, RoundTripSingle) {
  const AppTiming original = sample_timing();
  const AppTiming parsed = timing_from_string(timing_to_string(original));
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.t_star_w, original.t_star_w);
  EXPECT_EQ(parsed.min_interarrival, original.min_interarrival);
  EXPECT_EQ(parsed.t_minus, original.t_minus);
  EXPECT_EQ(parsed.t_plus, original.t_plus);
}

TEST(TableIo, RoundTripAllCaseStudyApps) {
  std::vector<AppTiming> originals;
  for (const casestudy::App& app : casestudy::all_apps())
    originals.push_back(case_study_timing(app));
  std::ostringstream os;
  write_timings(os, originals);
  std::istringstream is(os.str());
  const std::vector<AppTiming> parsed = read_timings(is);
  ASSERT_EQ(parsed.size(), originals.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].name, originals[i].name);
    EXPECT_EQ(parsed[i].t_minus, originals[i].t_minus);
    EXPECT_EQ(parsed[i].t_plus, originals[i].t_plus);
  }
}

TEST(TableIo, FormatIsRunLengthEncoded) {
  // C3's T-dw is nearly constant: the serialised form must be much
  // shorter than one word per entry.
  AppTiming t = sample_timing();
  t.t_minus.assign(12, 4);
  t.t_plus.assign(12, 6);
  const std::string text = timing_to_string(t);
  EXPECT_NE(text.find("tminus 12 4"), std::string::npos);
  EXPECT_NE(text.find("tplus 12 6"), std::string::npos);
}

TEST(TableIo, MalformedInputsRejected) {
  EXPECT_THROW(static_cast<void>(timing_from_string("")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(timing_from_string("nonsense 1\n")),
               std::invalid_argument);
  // Dangling run length.
  EXPECT_THROW(static_cast<void>(timing_from_string(
                   "app A\nr 9\ntstar 1\ntminus 2\ntplus 2 1\nend\n")),
               std::invalid_argument);
  // Truncated block.
  EXPECT_THROW(static_cast<void>(timing_from_string(
                   "app A\nr 9\ntstar 1\ntminus 2 1\n")),
               std::invalid_argument);
  // Tables inconsistent with tstar (validate() fires).
  EXPECT_THROW(static_cast<void>(timing_from_string(
                   "app A\nr 9\ntstar 3\ntminus 2 1\ntplus 2 1\nend\n")),
               std::invalid_argument);
  // Non-positive run length.
  EXPECT_THROW(static_cast<void>(timing_from_string(
                   "app A\nr 9\ntstar 1\ntminus 0 1\ntplus 2 1\nend\n")),
               std::invalid_argument);
}

TEST(TableIo, ParsedTablesDriveTheVerifier) {
  // End-to-end: serialise the S2 pair, parse it back, verify safety.
  std::ostringstream os;
  write_timing(os, case_study_timing(casestudy::c6()));
  write_timing(os, case_study_timing(casestudy::c2()));
  std::istringstream is(os.str());
  const std::vector<AppTiming> parsed = read_timings(is);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_TRUE(DiscreteVerifier(parsed).verify().safe);
}

}  // namespace
}  // namespace ttdim::verify
