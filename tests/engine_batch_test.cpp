// BatchRunner: deterministic parallel dimensioning. The load-bearing
// property is that thread count is unobservable in the results — N jobs
// on 1 thread and on 8 threads produce byte-identical fingerprints, with
// per-job failures isolated into their own outcome slot.
#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "casestudy/apps.h"
#include "engine/analysis/analysis_cache.h"
#include "engine/batch_runner.h"
#include "engine/fingerprint.h"
#include "engine/oracle/verdict_cache.h"
#include "gtest/gtest.h"

namespace ttdim::engine {
namespace {

core::AppSpec spec_of(const casestudy::App& app) {
  return {app.name, app.plant, app.kt, app.ke, app.min_interarrival,
          app.settling_requirement};
}

// Small heterogeneous batch: single-app systems derived from the paper's
// 1-state cruise controller, distinct per job so a mixed-up result order
// would be caught by the fingerprint comparison.
std::vector<BatchJob> small_batch() {
  std::vector<BatchJob> jobs;
  const int interarrivals[] = {60, 80, 100, 120};
  for (int r : interarrivals) {
    BatchJob job;
    core::AppSpec spec = spec_of(casestudy::c6());
    spec.min_interarrival = r;
    job.specs = {spec};
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(BatchRunner, ForEachIndexCoversEveryIndexOnce) {
  BatchRunner runner(8);
  std::vector<std::atomic<int>> hits(101);
  for (auto& h : hits) h = 0;
  runner.for_each_index(101, [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(BatchRunner, ForEachIndexOverlapsWork) {
  // Sleep-bound tasks overlap regardless of core count: 8 x 100 ms on 8
  // threads must finish far below the 800 ms serial time. The 600 ms
  // bound leaves room for scheduler noise on loaded CI machines.
  BatchRunner runner(8);
  const auto t0 = std::chrono::steady_clock::now();
  runner.for_each_index(8, [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  EXPECT_LT(elapsed_ms, 600.0);
}

TEST(BatchRunner, ForEachIndexPropagatesExceptions) {
  BatchRunner runner(4);
  EXPECT_THROW(runner.for_each_index(
                   50, [](int i) { if (i == 17) throw std::runtime_error("x"); }),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(BatchRunner(-1)), std::logic_error);
}

TEST(BatchRunner, ThreadCountDefaultsAndOverrides) {
  EXPECT_GE(BatchRunner(0).thread_count(), 1);
  EXPECT_EQ(BatchRunner(1).thread_count(), 1);
  EXPECT_EQ(BatchRunner(8).thread_count(), 8);
}

TEST(BatchRunner, OneThreadAndEightThreadsByteIdentical) {
  const std::vector<BatchJob> jobs = small_batch();
  const std::vector<BatchOutcome> serial = BatchRunner(1).solve_all(jobs);
  const std::vector<BatchOutcome> parallel = BatchRunner(8).solve_all(jobs);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());
  std::set<std::string> distinct;
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok()) << parallel[i].error;
    const std::string a = fingerprint(*serial[i].solution);
    EXPECT_EQ(a, fingerprint(*parallel[i].solution)) << "job " << i;
    distinct.insert(a);
  }
  // The jobs really are distinct, so slot-order mix-ups cannot cancel out.
  EXPECT_EQ(distinct.size(), jobs.size());
}

TEST(BatchRunner, FailingJobIsolatedFromTheBatch) {
  std::vector<BatchJob> jobs = small_batch();
  // J* below JT is unmeetable even with a dedicated slot: solve throws,
  // and the batch must convert that into a per-job error.
  jobs[1].specs[0].settling_requirement = 1;
  const std::vector<BatchOutcome> outcomes = BatchRunner(8).solve_all(jobs);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_FALSE(outcomes[1].error.empty());
  EXPECT_TRUE(outcomes[2].ok());
  EXPECT_TRUE(outcomes[3].ok());
}

TEST(BatchRunner, EmptyBatch) {
  EXPECT_TRUE(BatchRunner(4).solve_all({}).empty());
}

TEST(BatchRunner, ReportCountsEveryFailedJob) {
  // Two unmeetable requirements in one batch: the report must surface
  // both failures, not just the first (the old outcome-only API left
  // multi-failure batches silently under-reported unless the caller
  // scanned every slot).
  std::vector<BatchJob> jobs = small_batch();
  jobs[1].specs[0].settling_requirement = 1;
  jobs[3].specs[0].settling_requirement = 1;
  const BatchReport report = BatchRunner(4).run(jobs);
  EXPECT_EQ(report.failed, 2);
  ASSERT_EQ(report.outcomes.size(), jobs.size());
  EXPECT_TRUE(report.outcomes[0].ok());
  EXPECT_FALSE(report.outcomes[1].ok());
  EXPECT_TRUE(report.outcomes[2].ok());
  EXPECT_FALSE(report.outcomes[3].ok());
  // Aggregate stats cover the successful jobs; the summary line carries
  // both the failure count and the SolveStats counters.
  EXPECT_GT(report.stats.oracle_calls, 0);
  const std::string line = report.summary();
  EXPECT_NE(line.find("2 failed"), std::string::npos);
  EXPECT_NE(line.find("analysis cache"), std::string::npos);
}

TEST(BatchRunner, SharedAnalysisCacheReusesAnalysesAcrossJobs) {
  // The four jobs differ only in min_interarrival — not an analysis
  // input — so with a shared cache the whole batch pays the stability +
  // dwell cost exactly once.
  std::vector<BatchJob> jobs = small_batch();
  const auto cache = std::make_shared<analysis::AnalysisCache>();
  for (BatchJob& job : jobs) job.options.analysis_cache = cache;
  const BatchReport report = BatchRunner(1).run(jobs);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.stats.analysis_misses, 1);
  EXPECT_EQ(report.stats.analysis_hits,
            static_cast<long>(jobs.size()) - 1);
  EXPECT_EQ(cache->stats().insertions, 1);
  EXPECT_EQ(cache->stats().evictions, 0);

  // Shared-cache outcomes are byte-identical to fully private solves.
  const std::vector<BatchOutcome> reference =
      BatchRunner(1).solve_all(small_batch());
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(report.outcomes[i].ok()) << report.outcomes[i].error;
    ASSERT_TRUE(reference[i].ok()) << reference[i].error;
    EXPECT_EQ(fingerprint(*report.outcomes[i].solution),
              fingerprint(*reference[i].solution))
        << "job " << i;
  }
}

TEST(BatchRunner, MemoizedAndUncachedSolvesFingerprintIdentically) {
  std::vector<BatchJob> cached_jobs = small_batch();
  std::vector<BatchJob> uncached_jobs = small_batch();
  for (BatchJob& job : uncached_jobs) {
    // The true reference path: both oracle tiers off, one fresh
    // DiscreteVerifier run per probe.
    job.options.memoize_admission = false;
    job.options.incremental_admission = false;
  }
  const std::vector<BatchOutcome> cached = BatchRunner(2).solve_all(cached_jobs);
  const std::vector<BatchOutcome> uncached =
      BatchRunner(2).solve_all(uncached_jobs);
  for (size_t i = 0; i < cached.size(); ++i) {
    ASSERT_TRUE(cached[i].ok()) << cached[i].error;
    ASSERT_TRUE(uncached[i].ok()) << uncached[i].error;
    EXPECT_EQ(fingerprint(*cached[i].solution),
              fingerprint(*uncached[i].solution))
        << "job " << i;
    // The memoized path really went through the oracle layer...
    EXPECT_GT(cached[i].solution->stats.oracle_calls, 0);
    // ...and the uncached path proved every query fresh.
    EXPECT_EQ(uncached[i].solution->stats.cache_hits, 0);
  }
}

TEST(BatchRunner, SharedVerdictCacheReusesProofsAcrossJobs) {
  // All four jobs differ only in min_interarrival of one app; their
  // admission queries differ, so cross-job hits require duplicating jobs.
  std::vector<BatchJob> jobs = small_batch();
  const std::vector<BatchJob> copy = small_batch();
  jobs.insert(jobs.end(), copy.begin(), copy.end());
  const auto cache = std::make_shared<oracle::VerdictCache>();
  for (BatchJob& job : jobs) job.options.verdict_cache = cache;

  const std::vector<BatchOutcome> outcomes = BatchRunner(1).solve_all(jobs);
  long hits = 0;
  for (const BatchOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    hits += outcome.solution->stats.cache_hits;
  }
  // The second half of the batch repeats the first half's queries
  // verbatim: every one of its oracle calls must be a cache hit.
  long second_half_calls = 0;
  for (size_t i = copy.size(); i < jobs.size(); ++i)
    second_half_calls += outcomes[i].solution->stats.oracle_calls;
  EXPECT_EQ(hits, second_half_calls);
  EXPECT_EQ(cache->stats().evictions, 0);

  // Identical inputs, identical outputs — warm cache included.
  for (size_t i = 0; i < copy.size(); ++i)
    EXPECT_EQ(fingerprint(*outcomes[i].solution),
              fingerprint(*outcomes[i + copy.size()].solution));
}

}  // namespace
}  // namespace ttdim::engine
