// Unit and property tests for the linalg substrate.
#include <cmath>
#include <complex>
#include <random>
#include <stdexcept>

#include "gtest/gtest.h"
#include "linalg/eig.h"
#include "linalg/lyap.h"
#include "linalg/matrix.h"
#include "linalg/solve.h"

namespace ttdim::linalg {
namespace {

Matrix random_matrix(Index rows, Index cols, unsigned seed, double scale = 1.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-scale, scale);
  Matrix m(rows, cols);
  for (Index r = 0; r < rows; ++r)
    for (Index c = 0; c < cols; ++c) m(r, c) = dist(rng);
  return m;
}

/// Random matrix with spectral radius scaled below `rho`.
Matrix random_stable(Index n, unsigned seed, double rho = 0.9) {
  Matrix m = random_matrix(n, n, seed);
  const double sr = spectral_radius(m);
  if (sr > 0.0) m *= rho / sr;
  return m;
}

// ---------------------------------------------------------------- Matrix --

TEST(Matrix, ConstructionAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  m(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 7.0);
}

TEST(Matrix, RaggedInitializerRejected) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::logic_error);
}

TEST(Matrix, OutOfRangeAccessRejected) {
  const Matrix m(2, 2);
  EXPECT_THROW(static_cast<void>(m(2, 0)), std::logic_error);
  EXPECT_THROW(static_cast<void>(m(0, -1)), std::logic_error);
}

TEST(Matrix, IdentityAndZero) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  EXPECT_TRUE(Matrix::zero(2, 3).approx_equal(Matrix(2, 3), 0.0));
}

TEST(Matrix, VectorAccessors) {
  const Matrix v = Matrix::column({1.0, 2.0, 3.0});
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v.cols(), 1);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  const Matrix r = Matrix::row({4.0, 5.0});
  EXPECT_EQ(r.rows(), 1);
  EXPECT_DOUBLE_EQ(r[1], 5.0);
  EXPECT_THROW(static_cast<void>(Matrix(2, 2)[0]),
               std::logic_error);  // not a vector
}

TEST(Matrix, Arithmetic) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_TRUE((a + b).approx_equal(Matrix{{6.0, 8.0}, {10.0, 12.0}}, 1e-15));
  EXPECT_TRUE((b - a).approx_equal(Matrix{{4.0, 4.0}, {4.0, 4.0}}, 1e-15));
  EXPECT_TRUE((a * 2.0).approx_equal(Matrix{{2.0, 4.0}, {6.0, 8.0}}, 1e-15));
  EXPECT_TRUE((2.0 * a).approx_equal(a * 2.0, 1e-15));
  EXPECT_TRUE((a / 2.0).approx_equal(Matrix{{0.5, 1.0}, {1.5, 2.0}}, 1e-15));
  EXPECT_TRUE((-a).approx_equal(a * -1.0, 1e-15));
}

TEST(Matrix, Product) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_TRUE((a * b).approx_equal(Matrix{{19.0, 22.0}, {43.0, 50.0}}, 1e-12));
  const Matrix v = Matrix::column({1.0, 1.0});
  EXPECT_TRUE((a * v).approx_equal(Matrix::column({3.0, 7.0}), 1e-12));
}

TEST(Matrix, ProductShapeMismatchRejected) {
  EXPECT_THROW(Matrix(2, 3) * Matrix(2, 3), std::logic_error);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a = random_matrix(3, 5, 1);
  EXPECT_TRUE(a.transpose().transpose().approx_equal(a, 0.0));
}

TEST(Matrix, BlockAndSetBlock) {
  Matrix a(3, 3);
  a.set_block(1, 1, Matrix{{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(2, 2), 4.0);
  EXPECT_TRUE(a.block(1, 1, 2, 2).approx_equal(Matrix{{1.0, 2.0}, {3.0, 4.0}},
                                               0.0));
  EXPECT_THROW(a.block(2, 2, 2, 2), std::logic_error);
}

TEST(Matrix, StackingRoundTrip) {
  const Matrix a = random_matrix(2, 3, 2);
  const Matrix b = random_matrix(2, 3, 3);
  const Matrix v = a.vstack(b);
  EXPECT_EQ(v.rows(), 4);
  EXPECT_TRUE(v.block(2, 0, 2, 3).approx_equal(b, 0.0));
  const Matrix h = a.hstack(b);
  EXPECT_EQ(h.cols(), 6);
  EXPECT_TRUE(h.block(0, 3, 2, 3).approx_equal(b, 0.0));
}

TEST(Matrix, NormTraceDot) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.trace(), 7.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(
      Matrix::column({1.0, 2.0}).dot(Matrix::column({3.0, 4.0})), 11.0);
}

TEST(Matrix, SymmetryHelpers) {
  Matrix a{{1.0, 2.0}, {4.0, 3.0}};
  EXPECT_FALSE(a.is_symmetric());
  a.symmetrize();
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
}

TEST(Matrix, KronSizesAndValues) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{0.0, 3.0}, {4.0, 5.0}};
  const Matrix k = kron(a, b);
  EXPECT_EQ(k.rows(), 2);
  EXPECT_EQ(k.cols(), 4);
  EXPECT_DOUBLE_EQ(k(1, 3), 2.0 * 5.0);
}

TEST(Matrix, VecUnvecRoundTrip) {
  const Matrix a = random_matrix(3, 4, 4);
  EXPECT_TRUE(unvec(vec(a), 3, 4).approx_equal(a, 0.0));
}

TEST(Matrix, KronVecIdentity) {
  // vec(A X B) == (B' (x) A) vec(X) — the identity dlyap relies on.
  const Matrix a = random_matrix(3, 3, 5);
  const Matrix x = random_matrix(3, 3, 6);
  const Matrix b = random_matrix(3, 3, 7);
  const Matrix lhs = vec(a * x * b);
  const Matrix rhs = kron(b.transpose(), a) * vec(x);
  EXPECT_TRUE(lhs.approx_equal(rhs, 1e-10));
}

// -------------------------------------------------------------------- Lu --

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Matrix b = Matrix::column({3.0, 5.0});
  const Matrix x = solve(a, b);
  EXPECT_TRUE((a * x).approx_equal(b, 1e-12));
}

TEST(Lu, InverseTimesSelfIsIdentity) {
  for (unsigned seed : {10u, 11u, 12u, 13u}) {
    const Matrix a = random_matrix(4, 4, seed) + Matrix::identity(4) * 5.0;
    EXPECT_TRUE((a * inverse(a)).approx_equal(Matrix::identity(4), 1e-9))
        << "seed " << seed;
  }
}

TEST(Lu, SingularDetected) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const Lu f(a);
  EXPECT_TRUE(f.singular());
  EXPECT_THROW(f.solve(Matrix::column({1.0, 1.0})), std::domain_error);
  EXPECT_DOUBLE_EQ(determinant(a), 0.0);
}

TEST(Lu, DeterminantMatchesClosedForm) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_NEAR(determinant(a), -2.0, 1e-12);
  const Matrix p{{0.0, 1.0}, {1.0, 0.0}};  // permutation, det -1
  EXPECT_NEAR(determinant(p), -1.0, 1e-12);
}

TEST(Lu, MultiColumnRhs) {
  const Matrix a = random_matrix(3, 3, 20) + Matrix::identity(3) * 4.0;
  const Matrix b = random_matrix(3, 2, 21);
  EXPECT_TRUE((a * solve(a, b)).approx_equal(b, 1e-10));
}

// -------------------------------------------------------------------- Qr --

TEST(Qr, Reconstructs) {
  const Matrix a = random_matrix(5, 3, 30);
  const Qr f = qr(a);
  EXPECT_TRUE((f.q * f.r).approx_equal(a, 1e-10));
  EXPECT_TRUE((f.q.transpose() * f.q).approx_equal(Matrix::identity(5), 1e-10));
}

TEST(Qr, UpperTriangular) {
  const Matrix a = random_matrix(4, 4, 31);
  const Qr f = qr(a);
  for (Index r = 1; r < 4; ++r)
    for (Index c = 0; c < r; ++c) EXPECT_DOUBLE_EQ(f.r(r, c), 0.0);
}

TEST(Qr, RankDetectsDeficiency) {
  Matrix a(3, 3);
  a.set_block(0, 0, Matrix{{1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}, {1.0, 0.0, 1.0}});
  EXPECT_EQ(rank(a), 2);
  EXPECT_EQ(rank(Matrix::identity(3)), 3);
  EXPECT_EQ(rank(Matrix(3, 3)), 0);
}

TEST(Qr, RankOfWideMatrix) {
  const Matrix a{{1.0, 0.0, 2.0, 0.0}, {0.0, 1.0, 0.0, 3.0}};
  EXPECT_EQ(rank(a), 2);
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  const Matrix a = random_matrix(6, 3, 32);
  const Matrix b = random_matrix(6, 1, 33);
  const Matrix x = lstsq(a, b);
  const Matrix xn = solve(a.transpose() * a, a.transpose() * b);
  EXPECT_TRUE(x.approx_equal(xn, 1e-8));
}

// ------------------------------------------------------------------- Eig --

TEST(Eig, DiagonalMatrix) {
  const Matrix a{{2.0, 0.0}, {0.0, -3.0}};
  auto ev = eigenvalues(a);
  std::sort(ev.begin(), ev.end(),
            [](auto l, auto r) { return l.real() < r.real(); });
  EXPECT_NEAR(ev[0].real(), -3.0, 1e-10);
  EXPECT_NEAR(ev[1].real(), 2.0, 1e-10);
}

TEST(Eig, ComplexPair) {
  // Rotation-scaling: eigenvalues 0.5 +- 0.5i.
  const Matrix a{{0.5, -0.5}, {0.5, 0.5}};
  auto ev = eigenvalues(a);
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_NEAR(std::abs(ev[0]), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(ev[0].real(), 0.5, 1e-10);
  EXPECT_NEAR(std::abs(ev[0].imag()), 0.5, 1e-10);
}

TEST(Eig, TraceAndDeterminantConsistency) {
  for (unsigned seed : {40u, 41u, 42u, 43u, 44u}) {
    const Matrix a = random_matrix(4, 4, seed);
    const auto ev = eigenvalues(a);
    std::complex<double> sum{0.0, 0.0};
    std::complex<double> prod{1.0, 0.0};
    for (const auto& l : ev) {
      sum += l;
      prod *= l;
    }
    EXPECT_NEAR(sum.real(), a.trace(), 1e-8) << "seed " << seed;
    EXPECT_NEAR(sum.imag(), 0.0, 1e-8) << "seed " << seed;
    EXPECT_NEAR(prod.real(), determinant(a), 1e-8) << "seed " << seed;
  }
}

TEST(Eig, DefectiveJordanBlock) {
  const Matrix a{{1.0, 1.0}, {0.0, 1.0}};
  const auto ev = eigenvalues(a);
  for (const auto& l : ev) EXPECT_NEAR(std::abs(l - 1.0), 0.0, 1e-6);
}

TEST(Eig, SpectralRadiusAndStability) {
  const Matrix stable{{0.5, 0.2}, {0.0, 0.3}};
  EXPECT_NEAR(spectral_radius(stable), 0.5, 1e-10);
  EXPECT_TRUE(is_schur_stable(stable));
  const Matrix unstable{{1.1, 0.0}, {0.0, 0.2}};
  EXPECT_FALSE(is_schur_stable(unstable));
  EXPECT_FALSE(is_schur_stable(stable, 0.6));  // margin too demanding
}

TEST(Eig, PaperPlantC1OpenLoopPoles) {
  // Open-loop DC-motor plant of Eq. (6): one pole at exactly 1 (integrator).
  const Matrix phi{{1.0, 0.0182, 0.0068},
                   {0.0, 0.7664, 0.5186},
                   {0.0, -0.3260, 0.1011}};
  const auto ev = eigenvalues(phi);
  double closest_to_one = 1e9;
  for (const auto& l : ev)
    closest_to_one = std::min(closest_to_one, std::abs(l - 1.0));
  EXPECT_NEAR(closest_to_one, 0.0, 1e-9);
}

TEST(Eig, PolyFromRootsExpandsCorrectly) {
  // (s-1)(s-2) = s^2 - 3 s + 2
  const auto c = poly_from_roots({{1.0, 0.0}, {2.0, 0.0}});
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], -3.0, 1e-12);
  EXPECT_NEAR(c[1], 2.0, 1e-12);
}

TEST(Eig, PolyFromConjugateRoots) {
  // (s-(1+i))(s-(1-i)) = s^2 - 2 s + 2
  const auto c = poly_from_roots({{1.0, 1.0}, {1.0, -1.0}});
  EXPECT_NEAR(c[0], -2.0, 1e-12);
  EXPECT_NEAR(c[1], 2.0, 1e-12);
}

TEST(Eig, PolyFromUnbalancedComplexRootsRejected) {
  EXPECT_THROW(poly_from_roots({{1.0, 1.0}}), std::domain_error);
}

TEST(Eig, CayleyHamilton) {
  // p(A) = 0 when p is A's characteristic polynomial.
  const Matrix a = random_matrix(3, 3, 50);
  const auto coeffs = poly_from_roots(eigenvalues(a));
  EXPECT_LT(polyvalm(coeffs, a).max_abs(), 1e-7);
}

// ------------------------------------------------------------------ Lyap --

TEST(Lyap, SolvesResidualToZero) {
  for (unsigned seed : {60u, 61u, 62u}) {
    const Matrix a = random_stable(3, seed);
    const Matrix q = Matrix::identity(3);
    const Matrix p = dlyap(a, q);
    const Matrix residual = a.transpose() * p * a - p + q;
    EXPECT_LT(residual.max_abs(), 1e-9) << "seed " << seed;
    EXPECT_TRUE(is_positive_definite(p)) << "seed " << seed;
  }
}

TEST(Lyap, RejectsSingularOperator) {
  // a with eigenvalue 1 makes A'(x)A' - I singular.
  const Matrix a = Matrix::identity(2);
  EXPECT_THROW(dlyap(a, Matrix::identity(2)), std::domain_error);
}

TEST(Lyap, PositiveDefiniteChecks) {
  EXPECT_TRUE(is_positive_definite(Matrix{{2.0, 0.0}, {0.0, 1.0}}));
  EXPECT_FALSE(is_positive_definite(Matrix{{1.0, 0.0}, {0.0, -1.0}}));
  EXPECT_FALSE(is_positive_definite(Matrix{{0.0, 0.0}, {0.0, 0.0}}));
  EXPECT_FALSE(is_positive_definite(Matrix{{1.0, 5.0}, {-5.0, 1.0}}));
}

TEST(Lyap, CommonLyapunovForCommutingStablePair) {
  // Two stable diagonal matrices always share a CQLF.
  const Matrix a1{{0.5, 0.0}, {0.0, 0.2}};
  const Matrix a2{{0.1, 0.0}, {0.0, 0.8}};
  const CommonLyapunov res = find_common_lyapunov(a1, a2);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(certifies_decrease(a1, res.p));
  EXPECT_TRUE(certifies_decrease(a2, res.p));
}

TEST(Lyap, CommonLyapunovRejectsUnstableMember) {
  const Matrix a1{{0.5, 0.0}, {0.0, 0.2}};
  const Matrix a2{{1.2, 0.0}, {0.0, 0.5}};
  EXPECT_FALSE(find_common_lyapunov(a1, a2).found);
}

class LyapProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(LyapProperty, DlyapSolutionIsPsdAndCertifies) {
  const Matrix a = random_stable(4, GetParam(), 0.85);
  const Matrix p = dlyap(a, Matrix::identity(4));
  EXPECT_TRUE(is_positive_definite(p));
  EXPECT_TRUE(certifies_decrease(a, p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LyapProperty,
                         ::testing::Values(100u, 101u, 102u, 103u, 104u, 105u,
                                           106u, 107u));

class EigProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(EigProperty, SimilarityPreservesSpectrum) {
  const unsigned seed = GetParam();
  const Matrix a = random_matrix(4, 4, seed);
  const Matrix t = random_matrix(4, 4, seed + 1000) + Matrix::identity(4) * 3.0;
  const Matrix b = solve(t, a * t);  // T^{-1} A T
  auto ea = eigenvalues(a);
  auto eb = eigenvalues(b);
  // Greedy nearest matching (sorting complex conjugate pairs by (re, im)
  // is unstable when real parts agree only to machine precision).
  ASSERT_EQ(ea.size(), eb.size());
  for (const auto& la : ea) {
    double best = 1e18;
    size_t best_i = 0;
    for (size_t i = 0; i < eb.size(); ++i) {
      if (std::abs(la - eb[i]) < best) {
        best = std::abs(la - eb[i]);
        best_i = i;
      }
    }
    EXPECT_LT(best, 1e-6) << "seed " << seed;
    eb.erase(eb.begin() + static_cast<std::ptrdiff_t>(best_i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigProperty,
                         ::testing::Values(200u, 201u, 202u, 203u, 204u, 205u));

}  // namespace
}  // namespace ttdim::linalg
