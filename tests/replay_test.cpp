// Soundness bridge between the verifier and the runtime scheduler:
//  - every counterexample found by the DiscreteVerifier, replayed on the
//    runtime scheduler (same disturbances, same grant tie-breaks), must
//    reproduce the deadline violation;
//  - for configurations the verifier proves safe, randomized sporadic
//    scenarios must never violate a deadline.
// Together these pin the verifier and the scheduler to the same semantics.
#include <random>

#include "gtest/gtest.h"
#include "sched/slot_scheduler.h"
#include "verify/bounds.h"
#include "verify/discrete.h"
#include "verify/ta_model.h"

namespace ttdim {
namespace {

using sched::Scenario;
using verify::AppTiming;
using verify::DiscreteVerifier;
using verify::SlotVerdict;

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

/// Translate a structured witness into a runtime scenario with forced
/// grants.
Scenario scenario_from_witness(const SlotVerdict& verdict, size_t napps) {
  Scenario sc;
  sc.horizon = static_cast<int>(verdict.witness_ticks.size()) + 2;
  sc.disturbances.assign(napps, {});
  sc.forced_grants.assign(static_cast<size_t>(sc.horizon), -1);
  for (size_t t = 0; t < verdict.witness_ticks.size(); ++t) {
    const verify::WitnessTick& tick = verdict.witness_ticks[t];
    for (int app : tick.disturbed)
      sc.disturbances[static_cast<size_t>(app)].push_back(static_cast<int>(t));
    sc.forced_grants[t] = tick.granted;
  }
  return sc;
}

/// Generate a random (possibly unsafe) set of uniform applications.
std::vector<AppTiming> random_apps(std::mt19937& rng) {
  const int n = 2 + static_cast<int>(rng() % 2);  // 2..3 apps
  std::vector<AppTiming> apps;
  for (int i = 0; i < n; ++i) {
    const int t_star = static_cast<int>(rng() % 4);            // 0..3
    const int t_minus = 1 + static_cast<int>(rng() % 3);       // 1..3
    const int t_plus = t_minus + static_cast<int>(rng() % 3);  // +0..2
    // The sporadic model requires the TT episode (wait + dwell) to finish
    // before the next disturbance: r > t_star + t_plus.
    const int r = t_star + t_plus + 1 + static_cast<int>(rng() % 8);
    apps.push_back(uniform_app("A" + std::to_string(i), t_star, t_minus,
                               t_plus, r));
  }
  return apps;
}

class ReplayProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReplayProperty, WitnessReplaysToViolationAndSafeMeansSafe) {
  std::mt19937 rng(GetParam());
  int unsafe_seen = 0;
  int safe_seen = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<AppTiming> apps = random_apps(rng);
    const DiscreteVerifier verifier(apps);
    DiscreteVerifier::Options opt;
    opt.want_witness = true;
    const SlotVerdict verdict = verifier.verify(opt);
    if (!verdict.safe) {
      ++unsafe_seen;
      ASSERT_FALSE(verdict.witness_ticks.empty());
      const Scenario sc = scenario_from_witness(verdict, apps.size());
      const sched::ScheduleResult run = sched::simulate_slot(apps, sc);
      EXPECT_TRUE(run.deadline_violated)
          << "witness failed to replay (seed " << GetParam() << " trial "
          << trial << ")";
      if (run.deadline_violated && verdict.violator >= 0)
        EXPECT_EQ(run.violator, verdict.violator);
    } else {
      ++safe_seen;
      // Randomized sporadic fuzzing must not find a violation.
      for (int fuzz = 0; fuzz < 5; ++fuzz) {
        Scenario sc;
        sc.horizon = 80;
        for (const AppTiming& app : apps) {
          std::vector<int> d;
          int t = static_cast<int>(rng() % 6);
          while (t < sc.horizon) {
            d.push_back(t);
            t += app.min_interarrival + static_cast<int>(rng() % 5);
          }
          sc.disturbances.push_back(std::move(d));
        }
        const sched::ScheduleResult run = sched::simulate_slot(apps, sc);
        EXPECT_FALSE(run.deadline_violated)
            << "safe verdict contradicted (seed " << GetParam() << " trial "
            << trial << ")";
      }
    }
  }
  // The generator straddles the safety boundary; both outcomes must occur
  // over 30 trials or the property test is vacuous.
  EXPECT_GT(unsafe_seen, 0);
  EXPECT_GT(safe_seen, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

class EngineCrossCheck : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineCrossCheck, ZoneAgreesOnRandomSystems) {
  // Random small systems: the zone-based TA model and the exact discrete
  // engine must return identical verdicts (beyond the fixed cases in
  // verify_test this sweeps the protocol's corner behaviours).
  std::mt19937 rng(GetParam() + 1000);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<AppTiming> apps = random_apps(rng);
    if (apps.size() > 2) apps.resize(2);  // keep the zone engine fast
    const bool safe_discrete = DiscreteVerifier(apps).verify().safe;
    const bool safe_zone = verify::ZoneVerifier(apps).verify().safe;
    EXPECT_EQ(safe_discrete, safe_zone)
        << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineCrossCheck,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------- Bounds --

TEST(Bounds, CoincidenceCountsAreSane) {
  const AppTiming victim = uniform_app("V", 10, 2, 5, 30);
  const AppTiming frequent = uniform_app("F", 2, 1, 2, 8);
  const AppTiming rare = uniform_app("R", 2, 1, 2, 200);
  // Window = 10 + 5 = 15: two instances of F (period 8) can land in it,
  // plus the pending one.
  EXPECT_EQ(verify::max_coinciding_instances(victim, frequent), 3);
  EXPECT_EQ(verify::max_coinciding_instances(victim, rare), 2);
}

TEST(Bounds, SuggestedBudgetCoversAllPairs) {
  const std::vector<AppTiming> apps{uniform_app("A", 10, 2, 5, 30),
                                    uniform_app("B", 2, 1, 2, 8),
                                    uniform_app("C", 1, 1, 1, 50)};
  const int budget = verify::suggested_instance_budget(apps);
  for (const AppTiming& v : apps)
    for (const AppTiming& o : apps) {
      if (&v == &o) continue;
      EXPECT_GE(budget, verify::max_coinciding_instances(v, o));
    }
}

TEST(Bounds, BudgetedVerdictMatchesUnboundedOnRandomSystems) {
  // With the suggested budget the bounded model must agree with the
  // unbounded one (the paper's acceleration is sound for the deadline
  // property).
  std::mt19937 rng(99);
  for (int trial = 0; trial < 15; ++trial) {
    const std::vector<AppTiming> apps = random_apps(rng);
    const DiscreteVerifier verifier(apps);
    DiscreteVerifier::Options bounded;
    bounded.max_disturbances_per_app =
        std::min(verify::suggested_instance_budget(apps), 10);
    EXPECT_EQ(verifier.verify().safe, verifier.verify(bounded).safe)
        << "trial " << trial;
  }
}

// ----------------------------------------------------------- ForcedGrant --

TEST(ForcedGrant, OverridesTieBreak) {
  const std::vector<AppTiming> apps{uniform_app("A", 3, 1, 2, 12),
                                    uniform_app("B", 3, 1, 2, 12)};
  Scenario sc;
  sc.horizon = 20;
  sc.disturbances = {{0}, {0}};
  sc.forced_grants.assign(20, -1);
  sc.forced_grants[0] = 1;  // hand the tie to B instead of the default A
  const sched::ScheduleResult run = sched::simulate_slot(apps, sc);
  EXPECT_EQ(run.events[0].app, 1);
  EXPECT_FALSE(run.deadline_violated);
}

TEST(ForcedGrant, NonWaitingAppRejected) {
  const std::vector<AppTiming> apps{uniform_app("A", 3, 1, 2, 12),
                                    uniform_app("B", 3, 1, 2, 12)};
  Scenario sc;
  sc.horizon = 20;
  sc.disturbances = {{0}, {}};
  sc.forced_grants.assign(20, -1);
  sc.forced_grants[0] = 1;  // B never disturbed
  EXPECT_THROW(static_cast<void>(sched::simulate_slot(apps, sc)),
               std::invalid_argument);
}

TEST(ForcedGrant, OccupiedSlotRejected) {
  const std::vector<AppTiming> apps{uniform_app("A", 3, 2, 4, 12),
                                    uniform_app("B", 3, 2, 4, 12)};
  Scenario sc;
  sc.horizon = 20;
  sc.disturbances = {{0}, {1}};
  sc.forced_grants.assign(20, -1);
  sc.forced_grants[0] = 0;
  sc.forced_grants[1] = 1;  // A is non-preemptable until 2: slot occupied
  EXPECT_THROW(static_cast<void>(sched::simulate_slot(apps, sc)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ttdim
