// Property tests for engine::ScenarioGenerator: seed determinism,
// well-formedness (the slot simulator's own scenario validation must
// accept every generated scenario), and the adversarial guarantee that
// the coincidence mode attains verify::max_coinciding_instances.
#include <iterator>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/scenario_generator.h"
#include "gtest/gtest.h"
#include "sched/slot_scheduler.h"
#include "verify/bounds.h"

namespace ttdim::engine {
namespace {

using verify::AppTiming;

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

std::vector<AppTiming> mixed_apps() {
  // Each app satisfies the sporadic-model constraint w + T+dw < r.
  return {uniform_app("A", 3, 2, 4, 9), uniform_app("B", 5, 1, 2, 14),
          uniform_app("C", 2, 3, 5, 8)};
}

std::vector<AppTiming> skewed_apps() {
  // A slow victim (long critical window) next to a fast disturber (small
  // r): several disturber instances fit into the victim's window, so the
  // coincidence bound is > 2 and the adversarial pattern is non-trivial.
  return {uniform_app("V", 12, 2, 8, 25), uniform_app("O", 1, 1, 2, 5)};
}

// The shared list covers every kind — tests sweep it so a future kind is
// automatically under the well-formedness/determinism/overflow properties.
constexpr auto& kAllKinds = kAllScenarioKinds;
static_assert(std::size(kAllScenarioKinds) == 7,
              "update the kind-specific tests when adding a scenario kind");

void expect_well_formed(const sched::Scenario& s,
                        const std::vector<AppTiming>& apps) {
  ASSERT_EQ(s.disturbances.size(), apps.size());
  ASSERT_GT(s.horizon, 0);
  for (size_t i = 0; i < apps.size(); ++i) {
    const std::vector<int>& d = s.disturbances[i];
    for (size_t k = 0; k < d.size(); ++k) {
      EXPECT_GE(d[k], 0) << apps[i].name;
      EXPECT_LT(d[k], s.horizon) << apps[i].name;
      if (k > 0)
        EXPECT_GE(d[k] - d[k - 1], apps[i].min_interarrival)
            << apps[i].name << " instance " << k;
    }
  }
}

TEST(ScenarioGenerator, SameSeedSameScenarios) {
  ScenarioGenerator g1(mixed_apps(), 42);
  ScenarioGenerator g2(mixed_apps(), 42);
  for (int round = 0; round < 5; ++round)
    for (ScenarioKind kind : kAllKinds) {
      const sched::Scenario a = g1.make(kind, 3);
      const sched::Scenario b = g2.make(kind, 3);
      EXPECT_EQ(a.disturbances, b.disturbances);
      EXPECT_EQ(a.horizon, b.horizon);
    }
}

TEST(ScenarioGenerator, DifferentSeedsDifferentRandomScenarios) {
  ScenarioGenerator g1(mixed_apps(), 1);
  ScenarioGenerator g2(mixed_apps(), 2);
  // With 3 apps x 4 instances x jitter the collision probability is
  // negligible; a deterministic kind must still agree.
  EXPECT_NE(g1.random(4, 10).disturbances, g2.random(4, 10).disturbances);
  EXPECT_EQ(g1.burst(2).disturbances, g2.burst(2).disturbances);
}

TEST(ScenarioGenerator, AllKindsRespectMinInterarrival) {
  const std::vector<AppTiming> apps = mixed_apps();
  ScenarioGenerator gen(apps, 7);
  for (int round = 0; round < 20; ++round)
    for (ScenarioKind kind : kAllKinds)
      expect_well_formed(gen.make(kind, 4), apps);
}

TEST(ScenarioGenerator, SimulatorAcceptsGeneratedScenarios) {
  // End to end: every generated scenario must pass simulate_slot's own
  // validation (sorted, spaced >= r, inside horizon). Generous dwell
  // tolerances keep the overloaded cases from mattering here; only
  // scenario admission is under test.
  const std::vector<AppTiming> apps = {uniform_app("A", 20, 1, 1, 30),
                                       uniform_app("B", 20, 1, 1, 40)};
  ScenarioGenerator gen(apps, 11);
  for (ScenarioKind kind : kAllKinds) {
    const sched::Scenario s = gen.make(kind, 2);
    EXPECT_NO_THROW(static_cast<void>(sched::simulate_slot(apps, s)))
        << static_cast<int>(kind);
  }
}

TEST(ScenarioGenerator, BurstDisturbsEveryoneTogether) {
  ScenarioGenerator gen(mixed_apps(), 3);
  const sched::Scenario s = gen.burst(2);
  for (const std::vector<int>& d : s.disturbances) {
    ASSERT_EQ(d.size(), 2u);
    EXPECT_EQ(d[0], 0);
    EXPECT_EQ(d[1], 14);  // repeat after the largest r so all apps align
  }
}

TEST(ScenarioGenerator, StaggeredOffsetsFirstArrivals) {
  ScenarioGenerator gen(mixed_apps(), 3);
  const sched::Scenario s = gen.staggered(5, 1);
  EXPECT_EQ(s.disturbances[0], std::vector<int>{0});
  EXPECT_EQ(s.disturbances[1], std::vector<int>{5});
  EXPECT_EQ(s.disturbances[2], std::vector<int>{10});
}

void expect_coincidence_attained(const std::vector<AppTiming>& apps) {
  for (int victim = 0; victim < static_cast<int>(apps.size()); ++victim) {
    ScenarioGenerator gen(apps, 5);
    const sched::Scenario s = gen.worst_case_coincidence(victim);
    expect_well_formed(s, apps);
    const size_t v = static_cast<size_t>(victim);
    ASSERT_EQ(s.disturbances[v].size(), 1u);
    const int d0 = s.disturbances[v][0];
    const int window = apps[v].t_star_w + verify::max_dwell(apps[v]);
    for (size_t j = 0; j < apps.size(); ++j) {
      if (j == v) continue;
      // Instances that can interfere with the victim: one pending at d0
      // (arrived within the last r_j ticks) plus arrivals in the critical
      // window (d0, d0 + window].
      int coinciding = 0;
      for (int t : s.disturbances[j])
        if (t > d0 - apps[j].min_interarrival && t <= d0 + window)
          ++coinciding;
      EXPECT_EQ(coinciding,
                verify::max_coinciding_instances(apps[v], apps[j]))
          << "victim " << victim << " other " << j;
    }
  }
}

TEST(ScenarioGenerator, CoincidenceModeAttainsTheBound) {
  expect_coincidence_attained(mixed_apps());
}

TEST(ScenarioGenerator, CoincidenceModeAttainsTheBoundForSkewedWindows) {
  // Sanity-check the fixture really requires > 2 coinciding instances.
  const std::vector<AppTiming> apps = skewed_apps();
  ASSERT_GE(verify::max_coinciding_instances(apps[0], apps[1]), 4);
  expect_coincidence_attained(apps);
}

void expect_windows_fit(const sched::Scenario& s,
                        const std::vector<AppTiming>& apps) {
  ASSERT_EQ(s.disturbances.size(), apps.size());
  for (size_t i = 0; i < apps.size(); ++i) {
    const int window = apps[i].t_star_w + verify::max_dwell(apps[i]);
    for (int t : s.disturbances[i])
      // The episode occupies [t, t + window]; its last tick must be
      // simulated, so it has to lie strictly inside [0, horizon).
      EXPECT_LT(t + window, s.horizon)
          << apps[i].name << " instance at " << t;
  }
}

TEST(ScenarioGenerator, EveryInstanceWindowFitsInsideTheHorizon) {
  // The property the horizon arithmetic owes the simulator: no generated
  // instance may have its wait + dwell episode truncated by the horizon —
  // in particular not a final instance pushed late by kRandom jitter.
  for (const auto& apps : {mixed_apps(), skewed_apps()}) {
    ScenarioGenerator gen(apps, 99);
    for (int round = 0; round < 10; ++round) {
      for (ScenarioKind kind : kAllKinds)
        expect_windows_fit(gen.make(kind, 3), apps);
      // Random with jitter far beyond every r: the final arrivals land
      // much later than any fixed tail estimate keyed to r would cover.
      expect_windows_fit(gen.random(4, 200), apps);
    }
  }
}

TEST(ScenarioGenerator, RejectsBadArguments) {
  ScenarioGenerator gen(mixed_apps(), 0);
  EXPECT_THROW(static_cast<void>(gen.burst(0)), std::logic_error);
  EXPECT_THROW(static_cast<void>(gen.staggered(-1)), std::logic_error);
  EXPECT_THROW(static_cast<void>(gen.worst_case_coincidence(3)),
               std::logic_error);
  EXPECT_THROW(static_cast<void>(gen.random(1, -1)), std::logic_error);
  EXPECT_THROW(ScenarioGenerator({}, 0), std::logic_error);
}

TEST(ScenarioGenerator, KindNamesAreStableAndUnique) {
  std::set<std::string> names;
  for (ScenarioKind kind : kAllKinds) {
    const std::string name = scenario_kind_name(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name << " duplicated";
  }
  // Reports and corpus artifacts key on these strings; renames break
  // replayability, so pin the full mapping.
  EXPECT_STREQ(scenario_kind_name(ScenarioKind::kBurst), "burst");
  EXPECT_STREQ(scenario_kind_name(ScenarioKind::kCorrelated), "correlated");
  EXPECT_STREQ(scenario_kind_name(ScenarioKind::kSystemAdversarial),
               "system_adversarial");
  EXPECT_STREQ(scenario_kind_name(ScenarioKind::kChurn), "churn");
}

TEST(ScenarioGenerator, SystemAdversarialAttainsPerSlotBoundsSimultaneously) {
  // Two slots: the skewed victim/disturber pair (bound > 2, so the
  // pattern is non-trivial) next to a singleton slot. Explicit victims
  // keep the construction PRNG-free.
  std::vector<AppTiming> apps = skewed_apps();
  apps.push_back(uniform_app("W", 4, 1, 3, 11));
  ScenarioGenerator gen(apps, 17);
  const std::vector<std::vector<int>> slots = {{0, 1}, {2}};
  const sched::Scenario s = gen.system_adversarial(slots, {0, 2});
  expect_well_formed(s, apps);
  // Victims coincide on one common d0 with a single arrival each.
  ASSERT_EQ(s.disturbances[0].size(), 1u);
  ASSERT_EQ(s.disturbances[2].size(), 1u);
  const int d0 = s.disturbances[0][0];
  EXPECT_EQ(s.disturbances[2][0], d0);
  // The non-victim attains the pairwise coincidence bound against its
  // slot's victim, exactly like the single-slot adversarial kind.
  const int window = apps[0].t_star_w + verify::max_dwell(apps[0]);
  int coinciding = 0;
  for (int t : s.disturbances[1])
    if (t > d0 - apps[1].min_interarrival && t <= d0 + window) ++coinciding;
  EXPECT_EQ(coinciding, verify::max_coinciding_instances(apps[0], apps[1]));
  EXPECT_GE(coinciding, 4);
}

TEST(ScenarioGenerator, SystemAdversarialLeavesUnmentionedAppsQuiet) {
  const std::vector<AppTiming> apps = mixed_apps();
  ScenarioGenerator gen(apps, 17);
  const sched::Scenario s = gen.system_adversarial({{1}}, {1});
  EXPECT_TRUE(s.disturbances[0].empty());
  EXPECT_EQ(s.disturbances[1].size(), 1u);
  EXPECT_TRUE(s.disturbances[2].empty());
}

TEST(ScenarioGenerator, SystemAdversarialRejectsMalformedSlots) {
  ScenarioGenerator gen(mixed_apps(), 17);
  // Overlapping slots, out-of-range indices, victim outside its slot,
  // arity mismatch: all library-misuse, all loud.
  EXPECT_THROW(static_cast<void>(gen.system_adversarial({{0, 1}, {1}})),
               std::logic_error);
  EXPECT_THROW(static_cast<void>(gen.system_adversarial({{0, 3}})),
               std::logic_error);
  EXPECT_THROW(static_cast<void>(gen.system_adversarial({{0, 1}}, {2})),
               std::logic_error);
  EXPECT_THROW(static_cast<void>(gen.system_adversarial({{0}}, {0, 1})),
               std::logic_error);
  EXPECT_THROW(static_cast<void>(gen.system_adversarial({})),
               std::logic_error);
}

TEST(ScenarioGenerator, ChurnEmitsEpisodesSeparatedByDeparturePauses) {
  const std::vector<AppTiming> apps = mixed_apps();
  ScenarioGenerator gen(apps, 23);
  const int episodes = 3, per_episode = 2;
  const sched::Scenario s = gen.churn(episodes, per_episode);
  expect_well_formed(s, apps);
  for (size_t i = 0; i < apps.size(); ++i) {
    const std::vector<int>& d = s.disturbances[i];
    const int r = apps[i].min_interarrival;
    ASSERT_EQ(d.size(), static_cast<size_t>(episodes * per_episode));
    for (size_t k = 1; k < d.size(); ++k) {
      const int gap = d[k] - d[k - 1];
      if (k % static_cast<size_t>(per_episode) == 0) {
        // Inter-episode: trailing active gap [r, 2r] + pause [2r, 6r].
        EXPECT_GE(gap, 3 * r) << apps[i].name << " boundary " << k;
        EXPECT_LE(gap, 8 * r) << apps[i].name << " boundary " << k;
      } else {
        EXPECT_LE(gap, 2 * r) << apps[i].name << " within-episode " << k;
      }
    }
  }
}

TEST(ScenarioGenerator, CorrelatedAnchorsEveryEpoch) {
  // With spread 0 every participant of an epoch arrives exactly at the
  // epoch tick, so epochs are recoverable from the union of arrivals and
  // the anchor rule ("someone joins every epoch") is observable: the
  // number of distinct arrival ticks must equal the number of epochs
  // whose candidates survived the spacing rule — at least one, and with
  // mixed_apps' smallest r = 8 and epoch gaps >= 1 not every epoch
  // survives, so only the lower bound is asserted.
  const std::vector<AppTiming> apps = mixed_apps();
  ScenarioGenerator gen(apps, 31);
  const sched::Scenario s = gen.correlated(6, 0);
  expect_well_formed(s, apps);
  std::set<int> epochs;
  size_t arrivals = 0;
  for (const std::vector<int>& d : s.disturbances) {
    for (int t : d) epochs.insert(t);
    arrivals += d.size();
  }
  EXPECT_GE(epochs.size(), 1u);
  EXPECT_LE(epochs.size(), 6u);
  // Correlation: strictly fewer distinct ticks than arrivals would hold
  // only probabilistically, but at least one epoch must host the anchor
  // plus any coin-joiner sharing the tick — assert arrivals cover epochs.
  EXPECT_GE(arrivals, epochs.size());
}

TEST(ScenarioGenerator, MakeUsesDocumentedJitterAndOffsetChoices) {
  // The header documents make(kRandom) as random(n, largest r) and
  // make(kStaggered) as staggered(smallest r, n); this pins doc and
  // implementation together (PR-5 audit: they agree — mixed_apps' rates
  // are 9/14/8, so largest = 14, smallest = 8). Both generators start
  // from the same seed; equality requires identical PRNG consumption too.
  ScenarioGenerator via_make(mixed_apps(), 7);
  ScenarioGenerator direct(mixed_apps(), 7);
  const sched::Scenario a = via_make.make(ScenarioKind::kRandom, 3);
  const sched::Scenario b = direct.random(3, 14);
  EXPECT_EQ(a.disturbances, b.disturbances);
  EXPECT_EQ(a.horizon, b.horizon);
  const sched::Scenario c = via_make.make(ScenarioKind::kStaggered, 2);
  const sched::Scenario d = direct.staggered(8, 2);
  EXPECT_EQ(c.disturbances, d.disturbances);
  EXPECT_EQ(c.horizon, d.horizon);
  // The new kinds document their make() parameters the same way:
  // kCorrelated = correlated(n, smallest r - 1), kChurn = churn(n, 2).
  const sched::Scenario e = via_make.make(ScenarioKind::kCorrelated, 4);
  const sched::Scenario f = direct.correlated(4, 7);
  EXPECT_EQ(e.disturbances, f.disturbances);
  EXPECT_EQ(e.horizon, f.horizon);
  const sched::Scenario g = via_make.make(ScenarioKind::kChurn, 3);
  const sched::Scenario h = direct.churn(3, 2);
  EXPECT_EQ(g.disturbances, h.disturbances);
  EXPECT_EQ(g.horizon, h.horizon);
}

TEST(ScenarioGenerator, ExtremeTimingValuesNeverWrapIntoUndefinedBehaviour) {
  // PR-5 audit: random()'s gap interval [r, r + jitter] overflowed int
  // for large inter-arrival rates (UB inside uniform_int_distribution),
  // and accumulated arrivals / the horizon could wrap. The property now
  // is: for extreme AppTiming values every generator either returns a
  // well-formed scenario or throws std::invalid_argument — it never
  // wraps (the ASan/UBSan CI job would flag the old arithmetic on this
  // very test).
  const int huge = std::numeric_limits<int>::max() - 8;
  const std::vector<AppTiming> apps = {uniform_app("H", 3, 2, 4, huge),
                                       uniform_app("S", 3, 2, 4, 9)};
  for (const int jitter : {0, 1, huge, std::numeric_limits<int>::max()}) {
    for (const int instances : {1, 2, 3}) {
      ScenarioGenerator gen(apps, 42);
      try {
        const sched::Scenario s = gen.random(instances, jitter);
        expect_well_formed(s, apps);
      } catch (const std::invalid_argument&) {
        // Unrepresentable tick or horizon rejected loudly — acceptable,
        // silent wrap-around is not.
      }
    }
  }
  for (const ScenarioKind kind : kAllKinds) {
    for (const int instances : {1, 2}) {
      ScenarioGenerator gen(apps, 42);
      try {
        expect_well_formed(gen.make(kind, instances), apps);
      } catch (const std::invalid_argument&) {
      }
    }
  }
  // Huge explicit offsets walk the same guarded path.
  ScenarioGenerator gen(apps, 42);
  try {
    expect_well_formed(gen.staggered(huge, 2), apps);
  } catch (const std::invalid_argument&) {
  }
}

TEST(ScenarioGenerator, CoincidenceRejectsOverflowingWindowBeforeAllocating) {
  // A victim whose critical window (T*w + max dwell) overflows the tick
  // range next to a fast disturber: the per-started-period loop would
  // materialize ~window / r arrivals (billions) before any per-tick
  // check could fire, so the window bound must be rejected up front.
  // Victim: window = T*w + max T+dw = INT_MAX - 8; r satisfies the
  // sporadic constraint w + T+dw < r without overflowing validate().
  const int t_plus = std::numeric_limits<int>::max() - 10;
  const std::vector<AppTiming> apps = {
      uniform_app("V", 2, 1, t_plus, std::numeric_limits<int>::max() - 7),
      uniform_app("O", 1, 1, 2, 5)};
  ScenarioGenerator gen(apps, 42);
  EXPECT_THROW(static_cast<void>(gen.worst_case_coincidence(0)),
               std::invalid_argument);
}

TEST(ScenarioGenerator, ModerateJitterClampStaysExact) {
  // Just below the overflow regime the clamp must not engage: gaps stay
  // within [r, r + jitter] and scenarios are well-formed.
  const std::vector<AppTiming> apps = mixed_apps();
  ScenarioGenerator gen(apps, 11);
  const int jitter = std::numeric_limits<int>::max() - 20;
  const sched::Scenario s = gen.random(2, jitter);
  expect_well_formed(s, apps);
  for (size_t i = 0; i < apps.size(); ++i) {
    ASSERT_EQ(s.disturbances[i].size(), 2u);
    const long long gap = static_cast<long long>(s.disturbances[i][1]) -
                          s.disturbances[i][0];
    EXPECT_GE(gap, apps[i].min_interarrival);
    EXPECT_LE(gap, static_cast<long long>(apps[i].min_interarrival) + jitter);
  }
}

// ---- ChurnTrace: the replayable registration-level event stream that
// drives redimension benches and fuzz campaigns. ---------------------------

int rate_floor(const AppTiming& app) {
  int floor_r = app.t_star_w + 1;
  for (size_t w = 0; w < app.t_plus.size(); ++w)
    floor_r = std::max(floor_r, static_cast<int>(w) + app.t_plus[w] + 1);
  return floor_r;
}

TEST(ScenarioGenerator, ChurnTraceIsDeterministicUnderSeed) {
  const std::vector<AppTiming> apps = mixed_apps();
  const ChurnTrace a = ScenarioGenerator(apps, 17).churn_trace(5);
  const ChurnTrace b = ScenarioGenerator(apps, 17).churn_trace(5);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].tick, b.events[i].tick);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].app, b.events[i].app);
    EXPECT_EQ(a.events[i].min_interarrival, b.events[i].min_interarrival);
  }
  // A different seed must reshuffle at least one event (overwhelmingly
  // likely with 5 episodes x 3 apps of random spans).
  const ChurnTrace c = ScenarioGenerator(apps, 18).churn_trace(5);
  bool differs = c.events.size() != a.events.size();
  for (size_t i = 0; !differs && i < a.events.size(); ++i)
    differs = a.events[i].tick != c.events[i].tick ||
              a.events[i].kind != c.events[i].kind ||
              a.events[i].app != c.events[i].app ||
              a.events[i].min_interarrival != c.events[i].min_interarrival;
  EXPECT_TRUE(differs);
}

TEST(ScenarioGenerator, ChurnTraceEventsAreSortedAndPerAppStrictlyIncreasing) {
  const std::vector<AppTiming> apps = mixed_apps();
  const ChurnTrace trace = ScenarioGenerator(apps, 41).churn_trace(6);
  std::vector<int> last_tick(apps.size(), -1);
  for (size_t i = 0; i < trace.events.size(); ++i) {
    const ChurnEvent& e = trace.events[i];
    ASSERT_GE(e.app, 0);
    ASSERT_LT(e.app, static_cast<int>(apps.size()));
    EXPECT_GE(e.tick, 0);
    if (i > 0) {
      const ChurnEvent& prev = trace.events[i - 1];
      EXPECT_TRUE(prev.tick < e.tick ||
                  (prev.tick == e.tick && prev.app < e.app))
          << "events " << i - 1 << "/" << i << " out of (tick, app) order";
    }
    EXPECT_GT(e.tick, last_tick[static_cast<size_t>(e.app)])
        << "app " << e.app << " emitted two events without advancing time";
    last_tick[static_cast<size_t>(e.app)] = e.tick;
  }
}

TEST(ScenarioGenerator, ChurnTraceLifecyclesAreWellFormed) {
  const std::vector<AppTiming> apps = mixed_apps();
  const ChurnTrace trace = ScenarioGenerator(apps, 7).churn_trace(8);
  std::vector<char> seen(apps.size(), 0);
  std::vector<char> present(apps.size(), 0);
  std::vector<int> rate(apps.size(), 0);
  for (const ChurnEvent& e : trace.events) {
    const size_t i = static_cast<size_t>(e.app);
    switch (e.kind) {
      case ChurnEventKind::kAdd:
        EXPECT_FALSE(present[i]) << "add while registered, app " << e.app;
        if (!seen[i]) {
          // The first registration carries the app's original rate.
          EXPECT_EQ(e.min_interarrival, apps[i].min_interarrival);
        } else {
          // A return after a departure re-registers at the departing rate.
          EXPECT_EQ(e.min_interarrival, rate[i]);
        }
        present[i] = 1;
        seen[i] = 1;
        rate[i] = e.min_interarrival;
        break;
      case ChurnEventKind::kRemove:
        EXPECT_TRUE(present[i]) << "remove while absent, app " << e.app;
        EXPECT_EQ(e.min_interarrival, 0);
        present[i] = 0;
        break;
      case ChurnEventKind::kRerate:
        EXPECT_TRUE(present[i]) << "re-rate while absent, app " << e.app;
        present[i] = 1;
        rate[i] = e.min_interarrival;
        break;
    }
  }
  for (size_t i = 0; i < apps.size(); ++i)
    EXPECT_TRUE(seen[i]) << "app " << i << " never registered";
}

TEST(ScenarioGenerator, ChurnTraceRatesKeepTimingsValid) {
  const std::vector<AppTiming> apps = mixed_apps();
  const ChurnTrace trace = ScenarioGenerator(apps, 99).churn_trace(10);
  for (const ChurnEvent& e : trace.events) {
    if (e.kind == ChurnEventKind::kRemove) continue;
    const AppTiming& app = apps[static_cast<size_t>(e.app)];
    EXPECT_GE(e.min_interarrival, rate_floor(app));
    EXPECT_LE(e.min_interarrival,
              std::max(rate_floor(app), 2 * app.min_interarrival));
    // The documented contract: substituting the event's rate into the
    // app's timing must still pass validate().
    AppTiming rerated = app;
    rerated.min_interarrival = e.min_interarrival;
    EXPECT_NO_THROW(rerated.validate()) << app.name;
  }
}

TEST(ScenarioGenerator, ChurnTraceSingleEpisodeIsOneAddPerApp) {
  const std::vector<AppTiming> apps = mixed_apps();
  const ChurnTrace trace = ScenarioGenerator(apps, 3).churn_trace(1);
  ASSERT_EQ(trace.events.size(), apps.size());
  std::set<int> apps_seen;
  for (const ChurnEvent& e : trace.events) {
    EXPECT_EQ(e.kind, ChurnEventKind::kAdd);
    EXPECT_LT(e.tick,
              apps[static_cast<size_t>(e.app)].min_interarrival);
    apps_seen.insert(e.app);
  }
  EXPECT_EQ(apps_seen.size(), apps.size());
}

TEST(ScenarioGenerator, ChurnTraceRejectsBadArgumentsAndNamesKinds) {
  ScenarioGenerator gen(mixed_apps(), 0);
  EXPECT_THROW(static_cast<void>(gen.churn_trace(0)), std::logic_error);
  std::set<std::string> names;
  for (ChurnEventKind kind : {ChurnEventKind::kAdd, ChurnEventKind::kRemove,
                              ChurnEventKind::kRerate}) {
    const std::string name = churn_event_kind_name(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name << " duplicated";
  }
}

}  // namespace
}  // namespace ttdim::engine
