// Tests for the slack-aware preemption-postponement extension (the
// paper's Sec. 6 future-work idea): safety must be preserved, and the
// occupant's settling performance must improve whenever postponement
// actually kicks in.
#include <random>

#include "casestudy/apps.h"
#include "gtest/gtest.h"
#include "sched/slot_scheduler.h"
#include "switching/dwell.h"
#include "verify/discrete.h"
#include "verify/policy.h"

namespace ttdim {
namespace {

using sched::Scenario;
using verify::AppTiming;
using verify::DiscreteVerifier;
using verify::SlotPolicy;
using verify::WaiterView;

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

AppTiming case_study_timing(const casestudy::App& app) {
  switching::DwellAnalysisSpec spec;
  spec.settling_requirement = app.settling_requirement;
  spec.settling = control::SettlingSpec{casestudy::kSettlingTol, 3000};
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  return verify::make_app_timing(
      app.name, switching::compute_dwell_tables(loop, spec),
      app.min_interarrival);
}

// ------------------------------------------------------------ Unit level --

TEST(PostponementTest, NoWaitersAlwaysPostponable) {
  const std::vector<AppTiming> apps{uniform_app("A", 3, 1, 2, 10)};
  EXPECT_TRUE(verify::preemption_postponable(apps, {}, 0));
}

TEST(PostponementTest, TightWaiterForbidsPostponement) {
  const std::vector<AppTiming> apps{uniform_app("A", 3, 1, 2, 10),
                                    uniform_app("B", 3, 1, 2, 10)};
  // B already waited its full budget: one more sample breaks it.
  EXPECT_FALSE(verify::preemption_postponable(apps, {WaiterView{1, 3}}, 0));
  // With two samples of slack, postponement is fine.
  EXPECT_TRUE(verify::preemption_postponable(apps, {WaiterView{1, 1}}, 0));
}

TEST(PostponementTest, QueueingDelayAccumulates) {
  // Two waiters behind occupant A: the later one must absorb the earlier
  // one's minimum dwell.
  const std::vector<AppTiming> apps{uniform_app("A", 6, 3, 4, 16),
                                    uniform_app("B", 6, 3, 4, 16),
                                    uniform_app("C", 6, 3, 4, 16)};
  // B waited 2, C waited 2: projections 3 and 3 + 3 = 6, both within 6.
  EXPECT_TRUE(verify::preemption_postponable(
      apps, {WaiterView{1, 2}, WaiterView{2, 2}}, 0));
  // Both at 3: the second projection is 3 + 1 + 3 = 7 > 6.
  EXPECT_FALSE(verify::preemption_postponable(
      apps, {WaiterView{1, 3}, WaiterView{2, 3}}, 0));
}

TEST(PostponementTest, PotentialArrivalsAreBudgeted) {
  // D is idle but could request next sample with a tight T*w = 2 and a
  // heavy minimum dwell, jumping the EDF queue ahead of B: without the
  // potential-arrival budget the postponement would be unsound.
  const std::vector<AppTiming> relaxed{uniform_app("O", 6, 3, 4, 16),
                                       uniform_app("B", 6, 3, 4, 16)};
  EXPECT_TRUE(verify::preemption_postponable(relaxed, {WaiterView{1, 2}}, 0));
  const std::vector<AppTiming> with_d{uniform_app("O", 6, 3, 4, 16),
                                      uniform_app("B", 6, 3, 4, 16),
                                      uniform_app("D", 2, 5, 6, 16)};
  EXPECT_FALSE(verify::preemption_postponable(with_d, {WaiterView{1, 2}}, 0));
  // The occupant itself is never counted as a potential arrival.
  EXPECT_TRUE(verify::preemption_postponable(with_d, {WaiterView{1, 2}}, 2));
}

// ------------------------------------------------------- Verified safety --

TEST(SlackAwarePolicy, CaseStudyPartitionsRemainSafe) {
  const std::vector<AppTiming> s1{
      case_study_timing(casestudy::c1()), case_study_timing(casestudy::c5()),
      case_study_timing(casestudy::c4()), case_study_timing(casestudy::c3())};
  const std::vector<AppTiming> s2{case_study_timing(casestudy::c6()),
                                  case_study_timing(casestudy::c2())};
  DiscreteVerifier::Options opt;
  opt.policy = SlotPolicy::kSlackAware;
  EXPECT_TRUE(DiscreteVerifier(s1).verify(opt).safe);
  EXPECT_TRUE(DiscreteVerifier(s2).verify(opt).safe);
}

TEST(SlackAwarePolicy, RandomSystemsNeverLessSafeThanPaperPolicy) {
  // The postponement test is conservative: whenever the paper policy is
  // verified safe, the slack-aware policy must also be safe.
  std::mt19937 rng(321);
  int compared = 0;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<AppTiming> apps;
    const int n = 2 + static_cast<int>(rng() % 2);
    for (int i = 0; i < n; ++i) {
      const int t_star = static_cast<int>(rng() % 4);
      const int t_minus = 1 + static_cast<int>(rng() % 3);
      const int t_plus = t_minus + static_cast<int>(rng() % 3);
      const int r = t_star + t_plus + 1 + static_cast<int>(rng() % 8);
      apps.push_back(uniform_app("A" + std::to_string(i), t_star, t_minus,
                                 t_plus, r));
    }
    const DiscreteVerifier verifier(apps);
    if (!verifier.verify().safe) continue;
    ++compared;
    DiscreteVerifier::Options slack;
    slack.policy = SlotPolicy::kSlackAware;
    EXPECT_TRUE(verifier.verify(slack).safe) << "trial " << trial;
  }
  EXPECT_GT(compared, 1);
}

// ------------------------------------------------- Performance advantage --

TEST(SlackAwarePolicy, OccupantDwellsLongerWhenSlackAllows) {
  // A is granted first; B arrives early but with plenty of slack. Paper
  // policy preempts A at T-dw = 2; the slack-aware policy lets A run
  // further towards T+dw = 6.
  const std::vector<AppTiming> apps{uniform_app("A", 8, 2, 6, 20),
                                    uniform_app("B", 8, 2, 6, 20)};
  Scenario sc;
  sc.horizon = 40;
  sc.disturbances = {{0}, {1}};
  const sched::ScheduleResult paper =
      sched::simulate_slot(apps, sc, SlotPolicy::kPaper);
  const sched::ScheduleResult slack =
      sched::simulate_slot(apps, sc, SlotPolicy::kSlackAware);
  EXPECT_FALSE(paper.deadline_violated);
  EXPECT_FALSE(slack.deadline_violated);
  int paper_a = 0;
  int slack_a = 0;
  for (int t = 0; t < sc.horizon; ++t) {
    paper_a += paper.tt_mask[0][static_cast<size_t>(t)] ? 1 : 0;
    slack_a += slack.tt_mask[0][static_cast<size_t>(t)] ? 1 : 0;
  }
  EXPECT_GT(slack_a, paper_a);   // A kept the slot longer
  EXPECT_LE(slack_a, 6);         // but never beyond T+dw
}

TEST(SlackAwarePolicy, SettlingImprovesOnCaseStudyScenario) {
  // C1 granted at Tw = 0 with C5 disturbed 2 samples later: under the
  // paper policy C1 leaves at T-dw(0) = 3; slack-aware lets it reach a
  // longer dwell, and a longer dwell never worsens settling (Fig. 4).
  const std::vector<AppTiming> apps{case_study_timing(casestudy::c1()),
                                    case_study_timing(casestudy::c5())};
  Scenario sc;
  sc.horizon = 60;
  sc.disturbances = {{0}, {2}};
  const sched::ScheduleResult paper =
      sched::simulate_slot(apps, sc, SlotPolicy::kPaper);
  const sched::ScheduleResult slack =
      sched::simulate_slot(apps, sc, SlotPolicy::kSlackAware);
  EXPECT_FALSE(paper.deadline_violated);
  EXPECT_FALSE(slack.deadline_violated);
  int paper_c1 = 0;
  int slack_c1 = 0;
  for (int t = 0; t < sc.horizon; ++t) {
    paper_c1 += paper.tt_mask[0][static_cast<size_t>(t)] ? 1 : 0;
    slack_c1 += slack.tt_mask[0][static_cast<size_t>(t)] ? 1 : 0;
  }
  EXPECT_GE(slack_c1, paper_c1);
}

}  // namespace
}  // namespace ttdim
