// Negative half of the thread-safety compile checks
// (cmake/TtdimThreadSafetyCheck.cmake): this file MUST NOT compile under
// clang with -Wthread-safety -Werror. It reads a GUARDED_BY field
// without holding its mutex and calls a REQUIRES helper lock-free — the
// two violations the annotation layer exists to reject. If this file
// ever compiles under the analysis, the contract layer is dead (macros
// silently expanding to nothing under clang, a broken wrapper) and the
// configure step fails loudly. Compiled standalone via try_compile; NOT
// part of the tests/*.cpp glob. Under g++ the macros are no-ops and the
// file compiles — which is exactly why the negative check only runs on
// the clang lane.
#include "support/thread_annotations.h"

namespace {

class Counter {
 public:
  // Violation 1: GUARDED_BY read without the lock.
  [[nodiscard]] int racy_read() { return value_; }

  // Violation 2: calling a REQUIRES helper without holding the mutex.
  void racy_bump() { bump_locked(); }

 private:
  void bump_locked() REQUIRES(mu_) { ++value_; }

  ttdim::support::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.racy_bump();
  return counter.racy_read();
}
