// Negative probe for the parallel verifier's striped visited set
// (cmake/TtdimThreadSafetyCheck.cmake): this file MUST NOT compile under
// clang with -Wthread-safety -Werror. It calls the REQUIRES-annotated
// batched-flush helpers of verify::detail::StripedVisitedSet without
// holding the stripe's mutex — exactly the unguarded access the parallel
// BFS driver's per-chunk flush protocol must never perform. If this ever
// compiles under the analysis, the GUARDED_BY/REQUIRES contracts on the
// striped set are dead and the parallel driver's dedup is unproven.
// Compiled standalone via try_compile; NOT part of the tests/*.cpp glob.
// Under g++ the macros are no-ops and the file compiles — the negative
// check only runs on the clang lane.
#include "verify/visited_set.h"

int main() {
  using Key = ttdim::verify::detail::SmallKey<16>;
  ttdim::verify::detail::StripedVisitedSet<Key> visited;
  Key key;
  key.len = 3;
  const std::size_t hash =
      ttdim::verify::detail::VisitedSet<Key>::hash_of(key);
  auto& stripe = visited.stripe_of(hash);
  // Violation: the batched-flush helpers demand the stripe lock.
  visited.reserve_in_stripe(stripe, 1);
  return visited.insert_in_stripe(stripe, hash, key) ? 0 : 1;
}
