// Positive half of the thread-safety compile checks
// (cmake/TtdimThreadSafetyCheck.cmake): a correctly locked GUARDED_BY
// access must compile under every compiler — under clang with
// -Wthread-safety -Werror (the analysis is satisfied), and under g++
// where the annotation macros expand to nothing. Compiled standalone via
// try_compile at configure time; NOT part of the tests/*.cpp glob.
#include "support/thread_annotations.h"

namespace {

class Counter {
 public:
  void bump() {
    ttdim::support::MutexLock lock(mu_);
    ++value_;
  }

  [[nodiscard]] int read() {
    ttdim::support::MutexLock lock(mu_);
    return value_;
  }

 private:
  ttdim::support::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return counter.read() == 1 ? 0 : 1;
}
