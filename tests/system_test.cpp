// Tests for the system-level scheduler (all slots of an assignment) and
// the mapping ablation machinery (best-fit, sort orders, oracle counting).
#include <random>

#include "gtest/gtest.h"
#include "mapping/first_fit.h"
#include "sched/system_scheduler.h"

namespace ttdim {
namespace {

using mapping::SlotAssignment;
using verify::AppTiming;

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

std::vector<AppTiming> four_apps() {
  return {uniform_app("A", 1, 1, 1, 8), uniform_app("B", 1, 1, 1, 8),
          uniform_app("C", 1, 1, 1, 8), uniform_app("D", 1, 1, 1, 8)};
}

// ---------------------------------------------------------------- System --

TEST(SystemScheduler, IndependentSlotsRunInParallel) {
  const std::vector<AppTiming> apps = four_apps();
  SlotAssignment assignment;
  assignment.slots = {{0, 1}, {2, 3}};
  sched::Scenario sc;
  sc.horizon = 24;
  sc.disturbances = {{0}, {0}, {0}, {0}};  // everything at once
  const sched::SystemScheduleResult r =
      sched::simulate_system(apps, assignment, sc);
  EXPECT_FALSE(r.deadline_violated);
  EXPECT_EQ(r.slot_count(), 2);
  // Both slots granted someone at tick 0.
  EXPECT_EQ(r.per_slot[0].occupant[0] >= 0, true);
  EXPECT_EQ(r.per_slot[1].occupant[0] >= 0, true);
}

TEST(SystemScheduler, OverloadedSlotViolates) {
  const std::vector<AppTiming> apps = four_apps();
  SlotAssignment assignment;
  assignment.slots = {{0, 1, 2}, {3}};  // three zero-tolerance-ish apps
  sched::Scenario sc;
  sc.horizon = 24;
  sc.disturbances = {{0}, {0}, {0}, {0}};
  const sched::SystemScheduleResult r =
      sched::simulate_system(apps, assignment, sc);
  EXPECT_TRUE(r.deadline_violated);
  EXPECT_FALSE(r.per_slot[1].deadline_violated);  // the singleton is fine
}

TEST(SystemScheduler, RejectsIncompleteAssignment) {
  const std::vector<AppTiming> apps = four_apps();
  SlotAssignment missing;
  missing.slots = {{0, 1}, {2}};  // D unmapped
  sched::Scenario sc;
  sc.horizon = 10;
  sc.disturbances = {{}, {}, {}, {}};
  EXPECT_THROW(
      static_cast<void>(sched::simulate_system(apps, missing, sc)),
      std::logic_error);
  SlotAssignment duplicated;
  duplicated.slots = {{0, 1}, {1, 2, 3}};  // B twice
  EXPECT_THROW(
      static_cast<void>(sched::simulate_system(apps, duplicated, sc)),
      std::logic_error);
}

TEST(SystemScheduler, ForcedGrantsRejectedAtSystemLevel) {
  const std::vector<AppTiming> apps = four_apps();
  SlotAssignment assignment;
  assignment.slots = {{0, 1}, {2, 3}};
  sched::Scenario sc;
  sc.horizon = 10;
  sc.disturbances = {{}, {}, {}, {}};
  sc.forced_grants.assign(10, -1);
  EXPECT_THROW(
      static_cast<void>(sched::simulate_system(apps, assignment, sc)),
      std::invalid_argument);
}

// --------------------------------------------------------------- Mapping --

TEST(MappingVariants, BestFitPrefersDensestSlot) {
  // Oracle: a slot admits at most 3 members. After first-fit placed {A,B}
  // and {C}, best-fit should put D into the denser {A,B}.
  const mapping::SlotOracle cap3 =
      [](const std::vector<AppTiming>& slot) { return slot.size() <= 3; };
  std::vector<AppTiming> apps = four_apps();
  // Force the walk: A, B into slot 0; C rejected from slot 0 by a custom
  // oracle keyed on names.
  const mapping::SlotOracle tricky =
      [](const std::vector<AppTiming>& slot) {
        if (slot.size() > 3) return false;
        // C tolerates only a singleton slot.
        bool has_c = false;
        for (const AppTiming& a : slot) has_c |= a.name == "C";
        return !has_c || slot.size() == 1;
      };
  const std::vector<int> order{0, 1, 2, 3};
  const SlotAssignment ff = mapping::first_fit(apps, order, tricky);
  const SlotAssignment bf = mapping::best_fit(apps, order, tricky);
  ASSERT_EQ(ff.slot_count(), 2);
  ASSERT_EQ(bf.slot_count(), 2);
  EXPECT_EQ(bf.slots[0], (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(bf.slots[1], (std::vector<int>{2}));
  (void)cap3;
}

TEST(MappingVariants, SortOrders) {
  std::vector<AppTiming> apps{uniform_app("A", 5, 1, 1, 12),
                              uniform_app("B", 2, 1, 1, 12),
                              uniform_app("C", 9, 1, 1, 15)};
  EXPECT_EQ(mapping::sort_order(apps, mapping::SortOrder::kInput),
            (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(mapping::sort_order(apps, mapping::SortOrder::kPaper),
            (std::vector<int>{1, 0, 2}));
  EXPECT_EQ(mapping::sort_order(apps, mapping::SortOrder::kTstarDescending),
            (std::vector<int>{2, 0, 1}));
}

TEST(MappingVariants, CountingOracleCounts) {
  mapping::CountingOracle counter(
      [](const std::vector<AppTiming>& slot) { return slot.size() <= 2; });
  const std::vector<AppTiming> apps = four_apps();
  const SlotAssignment a =
      mapping::first_fit(apps, {0, 1, 2, 3}, counter.oracle());
  EXPECT_EQ(a.slot_count(), 2);
  // A:0 consults (new slot check), B:1, C:1 fail + new check, D:2.
  EXPECT_GT(counter.calls(), 4);
}

TEST(MappingVariants, FirstFitNeverBeatenByMoreSlotsThanApps) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<AppTiming> apps;
    const int n = 2 + static_cast<int>(rng() % 4);
    for (int i = 0; i < n; ++i)
      apps.push_back(uniform_app("X" + std::to_string(i),
                                 static_cast<int>(rng() % 4) + 1, 1, 2,
                                 12 + static_cast<int>(rng() % 8)));
    const mapping::SlotOracle random_cap =
        [&](const std::vector<AppTiming>& slot) {
          return slot.size() <= 1 + (trial % 3);
        };
    const SlotAssignment a = mapping::first_fit(
        apps, mapping::sort_order(apps, mapping::SortOrder::kPaper),
        random_cap);
    EXPECT_LE(a.slot_count(), n);
    EXPECT_GE(a.slot_count(), (n + trial % 3) / (1 + trial % 3));
  }
}

}  // namespace
}  // namespace ttdim
