// DiscreteVerifier beyond the packed cap and across state backends: >16
// applications must solve (heap fallback) instead of throwing, the packed
// and unpacked encodings must be observably identical, and the
// prefix-extension entry point must reproduce from-scratch results
// byte-for-byte on safe configurations — the invariant the incremental
// admission oracle rests on.
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "verify/app_timing.h"
#include "verify/discrete.h"

namespace ttdim::verify {
namespace {

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

std::vector<AppTiming> clones(int n, int t_star, int t_minus, int t_plus,
                              int r) {
  std::vector<AppTiming> apps;
  for (int i = 0; i < n; ++i)
    apps.push_back(
        uniform_app("L" + std::to_string(i), t_star, t_minus, t_plus, r));
  return apps;
}

// ------------------------------------------------- beyond the packed cap --

TEST(DiscreteLarge, SeventeenAppsVerifyInsteadOfThrowing) {
  // One more app than the packed representation holds. A slot shared by
  // 17 tight-deadline apps is hopeless, and the depth-first dive finds
  // the violation without enumerating the full breadth of 2^17
  // disturbance subsets per level. Distinct T*w values keep the EDF grant
  // unambiguous, so the all-disturbed branch stays narrow.
  std::vector<AppTiming> apps;
  for (int i = 0; i < 17; ++i)
    apps.push_back(
        uniform_app("L" + std::to_string(i), 1 + (i % 4), 1, 1, 8));
  const DiscreteVerifier verifier(apps);
  DiscreteVerifier::Options options;
  options.depth_first = true;
  const SlotVerdict verdict = verifier.verify(options);
  EXPECT_FALSE(verdict.safe);
  EXPECT_GE(verdict.violator, 0);
}

TEST(DiscreteLarge, SeventeenAppsSafeUnderZeroDisturbanceBudget) {
  // Degenerate but exercises the full heap search path to a safe verdict:
  // with no disturbances allowed the reachable set is the initial state.
  const std::vector<AppTiming> apps = clones(17, 1, 1, 1, 3);
  const DiscreteVerifier verifier(apps);
  DiscreteVerifier::Options options;
  options.max_disturbances_per_app = 0;
  const SlotVerdict verdict = verifier.verify(options);
  EXPECT_TRUE(verdict.safe);
  EXPECT_EQ(verdict.states_explored, 1);
}

TEST(DiscreteLarge, AbsoluteCapStillRefuses) {
  EXPECT_THROW(DiscreteVerifier(clones(
                   static_cast<int>(DiscreteVerifier::kMaxAppsUnpacked) + 1, 1,
                   1, 1, 3)),
               std::invalid_argument);
}

// ----------------------------------------------------- backend equality --

TEST(DiscreteLarge, UnpackedBackendMatchesPackedVerdicts) {
  // Same configurations through the packed tiers and the forced heap
  // fallback: verdicts (including witnesses) must be indistinguishable.
  const std::vector<std::vector<AppTiming>> configs = {
      {uniform_app("A", 3, 2, 4, 10)},
      {uniform_app("A", 3, 2, 4, 10), uniform_app("B", 5, 1, 2, 9)},
      // Unsafe triple (same as the oracle tests): two back-to-back TT
      // episodes outlast the third app's T*w.
      {uniform_app("A", 2, 2, 2, 7), uniform_app("B", 2, 2, 2, 7),
       uniform_app("C", 2, 2, 2, 7)},
      // Six apps lands in the wide packed tier; bounded to stay quick.
      clones(6, 2, 1, 2, 6),
  };
  for (size_t c = 0; c < configs.size(); ++c) {
    const DiscreteVerifier verifier(configs[c]);
    for (const bool witness : {false, true}) {
      DiscreteVerifier::Options packed;
      packed.want_witness = witness;
      if (configs[c].size() >= 6) packed.max_disturbances_per_app = 1;
      DiscreteVerifier::Options unpacked = packed;
      unpacked.backend = DiscreteVerifier::StateBackend::kUnpacked;
      EXPECT_EQ(verifier.verify(packed), verifier.verify(unpacked))
          << "config " << c << " witness " << witness;
    }
  }
}

// ------------------------------------------------------ prefix extension --

TEST(DiscreteLarge, ExtensionFromCapturedPrefixIsByteIdentical) {
  // Grow a slot one app at a time, as a first-fit walk does. At every
  // step, the verdict of the seeded extension must equal the from-scratch
  // verdict byte-for-byte (safe proofs count exactly the reachable set
  // regardless of seeding), and the captured snapshot must chain.
  const std::vector<AppTiming> all = {uniform_app("A", 3, 2, 4, 10),
                                      uniform_app("B", 5, 1, 2, 9),
                                      uniform_app("C", 4, 2, 2, 8)};
  const DiscreteVerifier::Options options;
  ExplorationState prev;
  for (size_t n = 1; n <= all.size(); ++n) {
    const std::vector<AppTiming> apps(all.begin(),
                                      all.begin() + static_cast<long>(n));
    const DiscreteVerifier verifier(apps);
    const SlotVerdict scratch = verifier.verify(options);
    ASSERT_TRUE(scratch.safe) << n;

    ExplorationState captured;
    const SlotVerdict extended = verifier.verify(
        options, n == 1 ? nullptr : &prev, &captured);
    EXPECT_EQ(extended, scratch) << n;
    EXPECT_EQ(captured.napps, n);
    EXPECT_EQ(captured.state_count(),
              static_cast<size_t>(scratch.states_explored));
    // First record is the all-steady initial state — the invariant the
    // next extension asserts before seeding.
    for (size_t b = 0; b < 3 * n; ++b) EXPECT_EQ(captured.packed[b], 0) << b;
    prev = std::move(captured);
  }
}

TEST(DiscreteLarge, ExtensionAgreesOnUnsafeConfigs) {
  // Unsafe extensions agree on the admission answer; the violation found
  // may differ (documented — unsafe verdicts are never cached).
  const std::vector<AppTiming> pair = {uniform_app("A", 2, 2, 2, 7),
                                       uniform_app("B", 2, 2, 2, 7)};
  const std::vector<AppTiming> triple = {uniform_app("A", 2, 2, 2, 7),
                                         uniform_app("B", 2, 2, 2, 7),
                                         uniform_app("C", 2, 2, 2, 7)};
  const DiscreteVerifier::Options options;
  ExplorationState snapshot;
  const SlotVerdict safe_pair =
      DiscreteVerifier(pair).verify(options, nullptr, &snapshot);
  ASSERT_TRUE(safe_pair.safe);
  const DiscreteVerifier verifier(triple);
  EXPECT_FALSE(verifier.verify(options).safe);
  EXPECT_FALSE(verifier.verify(options, &snapshot, nullptr).safe);
}

TEST(DiscreteLarge, ExtensionRejectsWitnessAndDepthFirst) {
  const std::vector<AppTiming> pair = {uniform_app("A", 3, 2, 4, 10),
                                       uniform_app("B", 5, 1, 2, 9)};
  ExplorationState snapshot;
  const DiscreteVerifier::Options options;
  ASSERT_TRUE(DiscreteVerifier({pair[0]})
                  .verify(options, nullptr, &snapshot)
                  .safe);
  const DiscreteVerifier verifier(pair);
  DiscreteVerifier::Options witness;
  witness.want_witness = true;
  EXPECT_THROW(static_cast<void>(verifier.verify(witness, &snapshot, nullptr)),
               std::logic_error);
  DiscreteVerifier::Options dfs;
  dfs.depth_first = true;
  EXPECT_THROW(static_cast<void>(verifier.verify(dfs, &snapshot, nullptr)),
               std::logic_error);
  ExplorationState capture;
  EXPECT_THROW(static_cast<void>(verifier.verify(dfs, nullptr, &capture)),
               std::logic_error);
}

}  // namespace
}  // namespace ttdim::verify
