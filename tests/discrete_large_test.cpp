// DiscreteVerifier beyond the packed cap and across state backends: >16
// applications must solve (heap fallback) instead of throwing, the packed
// and unpacked encodings must be observably identical, and the
// prefix-extension entry point must reproduce from-scratch results
// byte-for-byte on safe configurations — the invariant the incremental
// admission oracle rests on.
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "verify/app_timing.h"
#include "verify/discrete.h"

namespace ttdim::verify {
namespace {

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

std::vector<AppTiming> clones(int n, int t_star, int t_minus, int t_plus,
                              int r) {
  std::vector<AppTiming> apps;
  for (int i = 0; i < n; ++i)
    apps.push_back(
        uniform_app("L" + std::to_string(i), t_star, t_minus, t_plus, r));
  return apps;
}

// ------------------------------------------------- beyond the packed cap --

TEST(DiscreteLarge, SeventeenAppsVerifyInsteadOfThrowing) {
  // One more app than the packed representation holds. A slot shared by
  // 17 tight-deadline apps is hopeless, and the depth-first dive finds
  // the violation without enumerating the full breadth of 2^17
  // disturbance subsets per level. Distinct T*w values keep the EDF grant
  // unambiguous, so the all-disturbed branch stays narrow.
  std::vector<AppTiming> apps;
  for (int i = 0; i < 17; ++i)
    apps.push_back(
        uniform_app("L" + std::to_string(i), 1 + (i % 4), 1, 1, 8));
  const DiscreteVerifier verifier(apps);
  DiscreteVerifier::Options options;
  options.depth_first = true;
  const SlotVerdict verdict = verifier.verify(options);
  EXPECT_FALSE(verdict.safe);
  EXPECT_GE(verdict.violator, 0);
}

TEST(DiscreteLarge, SeventeenAppsSafeUnderZeroDisturbanceBudget) {
  // Degenerate but exercises the full heap search path to a safe verdict:
  // with no disturbances allowed the reachable set is the initial state.
  const std::vector<AppTiming> apps = clones(17, 1, 1, 1, 3);
  const DiscreteVerifier verifier(apps);
  DiscreteVerifier::Options options;
  options.max_disturbances_per_app = 0;
  const SlotVerdict verdict = verifier.verify(options);
  EXPECT_TRUE(verdict.safe);
  EXPECT_EQ(verdict.states_explored, 1);
}

TEST(DiscreteLarge, AbsoluteCapStillRefuses) {
  EXPECT_THROW(DiscreteVerifier(clones(
                   static_cast<int>(DiscreteVerifier::kMaxAppsUnpacked) + 1, 1,
                   1, 1, 3)),
               std::invalid_argument);
}

// ----------------------------------------------------- backend equality --

TEST(DiscreteLarge, UnpackedBackendMatchesPackedVerdicts) {
  // Same configurations through the packed tiers and the forced heap
  // fallback: verdicts (including witnesses) must be indistinguishable.
  const std::vector<std::vector<AppTiming>> configs = {
      {uniform_app("A", 3, 2, 4, 10)},
      {uniform_app("A", 3, 2, 4, 10), uniform_app("B", 5, 1, 2, 9)},
      // Unsafe triple (same as the oracle tests): two back-to-back TT
      // episodes outlast the third app's T*w.
      {uniform_app("A", 2, 2, 2, 7), uniform_app("B", 2, 2, 2, 7),
       uniform_app("C", 2, 2, 2, 7)},
      // Six apps lands in the wide packed tier; bounded to stay quick.
      clones(6, 2, 1, 2, 6),
  };
  for (size_t c = 0; c < configs.size(); ++c) {
    const DiscreteVerifier verifier(configs[c]);
    for (const bool witness : {false, true}) {
      DiscreteVerifier::Options packed;
      packed.want_witness = witness;
      if (configs[c].size() >= 6) packed.max_disturbances_per_app = 1;
      DiscreteVerifier::Options unpacked = packed;
      unpacked.backend = DiscreteVerifier::StateBackend::kUnpacked;
      EXPECT_EQ(verifier.verify(packed), verifier.verify(unpacked))
          << "config " << c << " witness " << witness;
    }
  }
}

// ------------------------------------------------------ prefix extension --

TEST(DiscreteLarge, ExtensionFromCapturedPrefixIsByteIdentical) {
  // Grow a slot one app at a time, as a first-fit walk does. At every
  // step, the verdict of the seeded extension must equal the from-scratch
  // verdict byte-for-byte (safe proofs count exactly the reachable set
  // regardless of seeding), and the captured snapshot must chain.
  const std::vector<AppTiming> all = {uniform_app("A", 3, 2, 4, 10),
                                      uniform_app("B", 5, 1, 2, 9),
                                      uniform_app("C", 4, 2, 2, 8)};
  const DiscreteVerifier::Options options;
  ExplorationState prev;
  for (size_t n = 1; n <= all.size(); ++n) {
    const std::vector<AppTiming> apps(all.begin(),
                                      all.begin() + static_cast<long>(n));
    const DiscreteVerifier verifier(apps);
    const SlotVerdict scratch = verifier.verify(options);
    ASSERT_TRUE(scratch.safe) << n;

    ExplorationState captured;
    const SlotVerdict extended = verifier.verify(
        options, n == 1 ? nullptr : &prev, &captured);
    EXPECT_EQ(extended, scratch) << n;
    EXPECT_EQ(captured.napps, n);
    EXPECT_EQ(captured.state_count(),
              static_cast<size_t>(scratch.states_explored));
    // First record is the all-steady initial state — the invariant the
    // next extension asserts before seeding.
    for (size_t b = 0; b < 3 * n; ++b) EXPECT_EQ(captured.packed[b], 0) << b;
    prev = std::move(captured);
  }
}

TEST(DiscreteLarge, ExtensionAgreesOnUnsafeConfigs) {
  // Unsafe extensions agree on the admission answer; the violation found
  // may differ (documented — unsafe verdicts are never cached).
  const std::vector<AppTiming> pair = {uniform_app("A", 2, 2, 2, 7),
                                       uniform_app("B", 2, 2, 2, 7)};
  const std::vector<AppTiming> triple = {uniform_app("A", 2, 2, 2, 7),
                                         uniform_app("B", 2, 2, 2, 7),
                                         uniform_app("C", 2, 2, 2, 7)};
  const DiscreteVerifier::Options options;
  ExplorationState snapshot;
  const SlotVerdict safe_pair =
      DiscreteVerifier(pair).verify(options, nullptr, &snapshot);
  ASSERT_TRUE(safe_pair.safe);
  const DiscreteVerifier verifier(triple);
  EXPECT_FALSE(verifier.verify(options).safe);
  EXPECT_FALSE(verifier.verify(options, &snapshot, nullptr).safe);
}

TEST(DiscreteLarge, ExtensionRejectsWitnessAndDepthFirst) {
  const std::vector<AppTiming> pair = {uniform_app("A", 3, 2, 4, 10),
                                       uniform_app("B", 5, 1, 2, 9)};
  ExplorationState snapshot;
  const DiscreteVerifier::Options options;
  ASSERT_TRUE(DiscreteVerifier({pair[0]})
                  .verify(options, nullptr, &snapshot)
                  .safe);
  const DiscreteVerifier verifier(pair);
  DiscreteVerifier::Options witness;
  witness.want_witness = true;
  EXPECT_THROW(static_cast<void>(verifier.verify(witness, &snapshot, nullptr)),
               std::logic_error);
  DiscreteVerifier::Options dfs;
  dfs.depth_first = true;
  EXPECT_THROW(static_cast<void>(verifier.verify(dfs, &snapshot, nullptr)),
               std::logic_error);
  ExplorationState capture;
  EXPECT_THROW(static_cast<void>(verifier.verify(dfs, nullptr, &capture)),
               std::logic_error);
}

// -------------------------------------------------------- parallel proofs --

TEST(DiscreteLarge, ParallelMatchesSerialOnSafeConfigs) {
  // Completed safe proofs: the parallel driver promises full structural
  // verdict equality with serial at any thread count — same safe flag and
  // the same states_explored, because level-synchronous exact dedup makes
  // the count the (order-independent) reachable-set size. Checked across
  // both packed tiers and the forced heap fallback, at 2 and 8 threads
  // (8 on a small box exercises chunk counts far above the worker count).
  struct Config {
    std::vector<AppTiming> apps;
    int bound;
  };
  const std::vector<Config> configs = {
      {clones(3, 4, 1, 1, 9), 2},  // SmallKey<16> tier
      {clones(4, 4, 1, 1, 8), 2},  // SmallKey<16> tier, ~150k states
      {clones(5, 4, 1, 1, 8), 1},  // SmallKey<48> tier, ~123k states
  };
  for (size_t c = 0; c < configs.size(); ++c) {
    const DiscreteVerifier verifier(configs[c].apps);
    DiscreteVerifier::Options serial;
    serial.max_disturbances_per_app = configs[c].bound;
    const SlotVerdict reference = verifier.verify(serial);
    ASSERT_TRUE(reference.safe) << c;
    for (const int threads : {2, 8}) {
      for (const bool unpacked : {false, true}) {
        DiscreteVerifier::Options parallel = serial;
        parallel.proof_threads = threads;
        if (unpacked)
          parallel.backend = DiscreteVerifier::StateBackend::kUnpacked;
        EXPECT_EQ(verifier.verify(parallel), reference)
            << "config " << c << " threads " << threads << " unpacked "
            << unpacked;
      }
    }
  }
}

TEST(DiscreteLarge, ParallelAgreesOnUnsafeConfigs) {
  // Unsafe verdicts agree on `safe` and report a real violator; the
  // violation found (and the states charged on the way) may differ —
  // exactly like depth-first vs breadth-first, and documented as such.
  const std::vector<AppTiming> apps = clones(5, 3, 1, 1, 8);
  const DiscreteVerifier verifier(apps);
  DiscreteVerifier::Options serial;
  serial.max_disturbances_per_app = 1;
  ASSERT_FALSE(verifier.verify(serial).safe);
  for (const int threads : {2, 8}) {
    DiscreteVerifier::Options parallel = serial;
    parallel.proof_threads = threads;
    const SlotVerdict verdict = verifier.verify(parallel);
    EXPECT_FALSE(verdict.safe) << threads;
    EXPECT_GE(verdict.violator, 0) << threads;
    EXPECT_LT(verdict.violator, static_cast<int>(apps.size())) << threads;
  }
}

TEST(DiscreteLarge, ParallelBudgetExhaustionParity) {
  // max_states runs through a shared atomic budget with the serial
  // charging rule (one unit per expanded state), so for a safe proof the
  // throw fires at exactly the same budget serial fires it: the full
  // reachable set fits, one state fewer throws — at every thread count.
  const std::vector<AppTiming> apps = clones(4, 4, 1, 1, 8);
  const DiscreteVerifier verifier(apps);
  DiscreteVerifier::Options exact;
  exact.max_disturbances_per_app = 1;
  const SlotVerdict reference = verifier.verify(exact);
  ASSERT_TRUE(reference.safe);
  exact.max_states = reference.states_explored;
  DiscreteVerifier::Options starved = exact;
  starved.max_states = reference.states_explored - 1;
  for (const int threads : {1, 2, 8}) {
    exact.proof_threads = threads;
    starved.proof_threads = threads;
    EXPECT_EQ(verifier.verify(exact), reference) << threads;
    EXPECT_THROW(static_cast<void>(verifier.verify(starved)),
                 std::runtime_error)
        << threads;
  }
}

TEST(DiscreteLarge, ParallelHeapFallbackMatchesSerial) {
  // Past the packed cap the parallel driver runs the same heap-backed
  // shape as serial; a zero disturbance budget keeps the 17-app space to
  // its single initial state while still driving the full level loop.
  std::vector<AppTiming> apps;
  for (int i = 0; i < 17; ++i)
    apps.push_back(uniform_app("L" + std::to_string(i), 1 + (i % 4), 1, 1, 8));
  const DiscreteVerifier verifier(apps);
  DiscreteVerifier::Options options;
  options.max_disturbances_per_app = 0;
  const SlotVerdict reference = verifier.verify(options);
  ASSERT_TRUE(reference.safe);
  options.proof_threads = 8;
  EXPECT_EQ(verifier.verify(options), reference);
}

TEST(DiscreteLarge, ParallelRejectsSerialOnlyFeatures) {
  // Witnesses, depth-first traversal, prefix seeding and snapshot capture
  // all depend on the serial driver's discovery order; requesting them
  // with a thread budget is a precondition failure, never a silent
  // serial fallback the caller can't see.
  const std::vector<AppTiming> pair = {uniform_app("A", 3, 2, 4, 10),
                                       uniform_app("B", 5, 1, 2, 9)};
  ExplorationState snapshot;
  const DiscreteVerifier::Options base;
  ASSERT_TRUE(DiscreteVerifier({pair[0]})
                  .verify(base, nullptr, &snapshot)
                  .safe);
  const DiscreteVerifier verifier(pair);
  DiscreteVerifier::Options witness;
  witness.proof_threads = 2;
  witness.want_witness = true;
  EXPECT_THROW(static_cast<void>(verifier.verify(witness)), std::logic_error);
  DiscreteVerifier::Options dfs;
  dfs.proof_threads = 2;
  dfs.depth_first = true;
  EXPECT_THROW(static_cast<void>(verifier.verify(dfs)), std::logic_error);
  DiscreteVerifier::Options parallel;
  parallel.proof_threads = 2;
  EXPECT_THROW(
      static_cast<void>(verifier.verify(parallel, &snapshot, nullptr)),
      std::logic_error);
  ExplorationState capture;
  EXPECT_THROW(
      static_cast<void>(verifier.verify(parallel, nullptr, &capture)),
      std::logic_error);
}

}  // namespace
}  // namespace ttdim::verify
