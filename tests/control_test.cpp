// Tests for the control substrate: LTI models, simulation, settling-time
// measurement, pole placement, LQR and switching stability — anchored on
// the paper's numbers wherever the paper states them.
#include <cmath>
#include <stdexcept>

#include "casestudy/apps.h"
#include "control/design.h"
#include "control/lti.h"
#include "control/sim.h"
#include "gtest/gtest.h"
#include "linalg/eig.h"

namespace ttdim::control {
namespace {

using casestudy::kSamplingPeriod;
using casestudy::kSettlingTol;

DiscreteLti double_integrator() {
  // x+ = [1 h; 0 1] x + [h^2/2; h] u, y = x1, h = 0.1
  return DiscreteLti(Matrix{{1.0, 0.1}, {0.0, 1.0}},
                     Matrix{{0.005}, {0.1}}, Matrix{{1.0, 0.0}}, 0.1);
}

// ------------------------------------------------------------------- Lti --

TEST(Lti, ShapeValidation) {
  EXPECT_THROW(DiscreteLti(Matrix(2, 3), Matrix(2, 1), Matrix(1, 2), 0.01),
               std::logic_error);
  EXPECT_THROW(DiscreteLti(Matrix::identity(2), Matrix(3, 1), Matrix(1, 2),
                           0.01),
               std::logic_error);
  EXPECT_THROW(DiscreteLti(Matrix::identity(2), Matrix(2, 1), Matrix(1, 3),
                           0.01),
               std::logic_error);
  EXPECT_THROW(DiscreteLti(Matrix::identity(2), Matrix(2, 1), Matrix(1, 2),
                           0.0),
               std::logic_error);
}

TEST(Lti, AugmentedDelayModelShape) {
  const DiscreteLti aug = double_integrator().augmented_delay_model();
  EXPECT_EQ(aug.n_states(), 3);
  EXPECT_EQ(aug.n_inputs(), 1);
  // z+ = [phi gamma; 0 0] z + [0; 1] u
  EXPECT_DOUBLE_EQ(aug.phi()(0, 2), 0.005);
  EXPECT_DOUBLE_EQ(aug.phi()(1, 2), 0.1);
  EXPECT_DOUBLE_EQ(aug.phi()(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(aug.gamma()(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(aug.gamma()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(aug.c()(0, 2), 0.0);
}

TEST(Lti, UnitOutputState) {
  const DiscreteLti plant = casestudy::dc_motor_position_plant();
  const Matrix x0 = plant.unit_output_state();
  EXPECT_NEAR((plant.c() * x0)(0, 0), 1.0, 1e-12);
  // For c = [1 0 0] the minimum-norm solution is e1 — the paper's
  // disturbed state of Sec. 3.1.
  EXPECT_NEAR(x0(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x0(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(x0(2, 0), 0.0, 1e-12);
}

TEST(Lti, ClosedLoopMatchesHandComputation) {
  const DiscreteLti p = double_integrator();
  const Matrix k{{2.0, 3.0}};
  const Matrix acl = closed_loop(p, k);
  EXPECT_NEAR(acl(0, 0), 1.0 - 0.005 * 2.0, 1e-15);
  EXPECT_NEAR(acl(0, 1), 0.1 - 0.005 * 3.0, 1e-15);
  EXPECT_NEAR(acl(1, 0), -0.1 * 2.0, 1e-15);
  EXPECT_NEAR(acl(1, 1), 1.0 - 0.1 * 3.0, 1e-15);
}

TEST(Lti, SwitchedModesAgreeWithStepFunctions) {
  // Iterating the augmented mode matrices must reproduce step_tt/step_et.
  const casestudy::App app = casestudy::c1();
  const SwitchedModes modes = switched_modes(app.plant, app.kt, app.ke);
  const SwitchedLoop loop(app.plant, app.kt, app.ke);

  LoopState s = loop.disturbed_state();
  Matrix z = s.x.vstack(Matrix{{s.u_prev}});
  for (int k = 0; k < 5; ++k) {
    loop.step_et(s);
    z = modes.a_et * z;
  }
  for (int k = 0; k < 5; ++k) {
    loop.step_tt(s);
    z = modes.a_tt * z;
  }
  for (int k = 0; k < 5; ++k) {
    loop.step_et(s);
    z = modes.a_et * z;
  }
  EXPECT_TRUE(s.x.approx_equal(z.block(0, 0, 3, 1), 1e-9));
  EXPECT_NEAR(s.u_prev, z(3, 0), 1e-9);
}

// ------------------------------------------------------------- Settling --

TEST(Settling, EmptyAndConstantTraces) {
  EXPECT_FALSE(settling_samples({}, 0.02).has_value());  // nothing to certify
  Trace flat(10, Sample{0.0, 0.0, 0.0});
  EXPECT_EQ(settling_samples(flat, 0.02).value_or(-1), 0);
}

TEST(Settling, LastViolationDetermines) {
  Trace t(10, Sample{0.0, 0.0, 0.0});
  t[3].y = 0.5;
  EXPECT_EQ(settling_samples(t, 0.02).value_or(-1), 4);
  t[9].y = 0.5;  // violation at horizon => cannot certify
  EXPECT_FALSE(settling_samples(t, 0.02).has_value());
}

TEST(Settling, DivergentTraceRejected) {
  Trace t(5, Sample{0.0, 0.0, 0.0});
  t[2].y = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(settling_samples(t, 0.02).has_value());
}

// ------------------------------------------------ Paper anchored numbers --

TEST(PaperNumbers, SettlingTimeOfKtIsAbout018s) {
  // Paper Sec. 3.1: settling time for KT is 0.18 s (9 samples).
  const casestudy::App app = casestudy::c1();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  const SettlingSpec spec{kSettlingTol, 2000};
  // Pure-TT response: wait 0, dwell "forever".
  const auto j = loop.settling_of_pattern(0, spec.horizon, spec);
  ASSERT_TRUE(j.has_value());
  EXPECT_NEAR(*j * kSamplingPeriod, 0.18, 0.03);
}

TEST(PaperNumbers, SettlingTimeOfKsEIsAbout068s) {
  // Paper Sec. 3.1: settling time for KsE (pure ET) is 0.68 s.
  const casestudy::App app = casestudy::c1();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  const SettlingSpec spec{kSettlingTol, 2000};
  const auto j = loop.settling_of_pattern(0, 0, spec);  // never enter MT
  ASSERT_TRUE(j.has_value());
  EXPECT_NEAR(*j * kSamplingPeriod, 0.68, 0.06);
}

TEST(PaperNumbers, StablePairBeatsUnstablePairOn4Plus4Pattern) {
  // Paper Sec. 3.1 / Fig. 2: 4 ME samples, 4 MT samples, then ME. The
  // switching-stable pair settles near 0.28 s, the unstable pair near
  // 0.58 s.
  const DiscreteLti plant = casestudy::dc_motor_position_plant();
  const Matrix kt = casestudy::c1().kt;
  const SettlingSpec spec{kSettlingTol, 2000};

  const SwitchedLoop stable(plant, kt, casestudy::ke_stable());
  const SwitchedLoop unstable(plant, kt, casestudy::ke_unstable());
  const auto j_s = stable.settling_of_pattern(4, 4, spec);
  const auto j_u = unstable.settling_of_pattern(4, 4, spec);
  ASSERT_TRUE(j_s.has_value());
  ASSERT_TRUE(j_u.has_value());
  EXPECT_LT(*j_s, *j_u);
  EXPECT_NEAR(*j_s * kSamplingPeriod, 0.28, 0.08);
  EXPECT_NEAR(*j_u * kSamplingPeriod, 0.58, 0.12);
}

TEST(PaperNumbers, AllCaseStudyModePairsAreIndividuallyStable) {
  for (const casestudy::App& app : casestudy::all_apps()) {
    const SwitchedModes m = switched_modes(app.plant, app.kt, app.ke);
    EXPECT_TRUE(linalg::is_schur_stable(closed_loop(app.plant, app.kt)))
        << app.name << " MT";
    EXPECT_TRUE(linalg::is_schur_stable(m.a_et)) << app.name << " ME";
  }
}

TEST(PaperNumbers, KsEIsSwitchingStableWithKT) {
  const DiscreteLti plant = casestudy::dc_motor_position_plant();
  const SwitchingStability s =
      check_switching_stability(plant, casestudy::c1().kt,
                                casestudy::ke_stable());
  EXPECT_TRUE(s.tt_stable);
  EXPECT_TRUE(s.et_stable);
  EXPECT_TRUE(s.switching_stable());
}

TEST(PaperNumbers, KuEIsNotCertifiedSwitchingStableWithKT) {
  const DiscreteLti plant = casestudy::dc_motor_position_plant();
  const SwitchingStability s =
      check_switching_stability(plant, casestudy::c1().kt,
                                casestudy::ke_unstable());
  // Both modes are stable on their own ...
  EXPECT_TRUE(s.tt_stable);
  EXPECT_TRUE(s.et_stable);
  // ... but no common Lyapunov certificate exists for the pair.
  EXPECT_FALSE(s.switching_stable());
}

// ---------------------------------------------------------------- Design --

TEST(Design, ControllabilityOfCaseStudyPlants) {
  for (const casestudy::App& app : casestudy::all_apps())
    EXPECT_TRUE(is_controllable(app.plant)) << app.name;
}

TEST(Design, UncontrollablePlantDetected) {
  // Second state unreachable.
  const DiscreteLti p(Matrix{{0.5, 0.0}, {0.0, 0.7}}, Matrix{{1.0}, {0.0}},
                      Matrix{{1.0, 0.0}}, 0.01);
  EXPECT_FALSE(is_controllable(p));
  EXPECT_THROW(ackermann(p, {{0.1, 0.0}, {0.2, 0.0}}), std::domain_error);
}

TEST(Design, AckermannPlacesRealPoles) {
  const DiscreteLti p = double_integrator();
  const std::vector<std::complex<double>> poles{{0.5, 0.0}, {0.6, 0.0}};
  const Matrix k = ackermann(p, poles);
  const auto ev = linalg::eigenvalues(closed_loop(p, k));
  double e = 1e9;
  for (const auto& l : ev)
    e = std::min(e, std::abs(l - std::complex<double>{0.5, 0.0}));
  EXPECT_LT(e, 1e-8);
  EXPECT_NEAR(linalg::spectral_radius(closed_loop(p, k)), 0.6, 1e-8);
}

TEST(Design, AckermannPlacesComplexPairOnPaperPlant) {
  const DiscreteLti p = casestudy::dc_motor_position_plant();
  const std::vector<std::complex<double>> poles{
      {0.6, 0.2}, {0.6, -0.2}, {0.3, 0.0}};
  const Matrix k = ackermann(p, poles);
  auto ev = linalg::eigenvalues(closed_loop(p, k));
  // All desired poles matched.
  for (const auto& want : poles) {
    double best = 1e9;
    for (const auto& got : ev) best = std::min(best, std::abs(got - want));
    EXPECT_LT(best, 1e-7);
  }
}

TEST(Design, AckermannArityChecked) {
  EXPECT_THROW(ackermann(double_integrator(), {{0.5, 0.0}}),
               std::domain_error);
}

TEST(Design, DlqrStabilizesAndIsOptimalish) {
  const DiscreteLti p = double_integrator();
  const LqrWeights w{Matrix::identity(2), Matrix{{1.0}}};
  const Matrix k = dlqr(p, w);
  EXPECT_TRUE(linalg::is_schur_stable(closed_loop(p, k)));
  // LQR of a double integrator has positive position and velocity gains.
  EXPECT_GT(k(0, 0), 0.0);
  EXPECT_GT(k(0, 1), 0.0);
}

TEST(Design, DlqrOnCaseStudyPlantsStabilizes) {
  for (const casestudy::App& app : casestudy::all_apps()) {
    const Index n = app.plant.n_states();
    const LqrWeights w{Matrix::identity(n), Matrix{{1.0}}};
    const Matrix k = dlqr(app.plant, w);
    EXPECT_TRUE(linalg::is_schur_stable(closed_loop(app.plant, k)))
        << app.name;
  }
}

TEST(Design, ObservabilityOfCaseStudyPlants) {
  for (const casestudy::App& app : casestudy::all_apps())
    EXPECT_TRUE(is_observable(app.plant)) << app.name;
}

TEST(Design, UnobservablePlantDetected) {
  // Second state invisible and decoupled from the output.
  const DiscreteLti p(Matrix{{0.5, 0.0}, {0.0, 0.7}}, Matrix{{1.0}, {1.0}},
                      Matrix{{1.0, 0.0}}, 0.01);
  EXPECT_FALSE(is_observable(p));
  EXPECT_THROW(static_cast<void>(luenberger(p, {{0.1, 0.0}, {0.2, 0.0}})),
               std::domain_error);
}

TEST(Design, LuenbergerPlacesObserverPoles) {
  const DiscreteLti p = double_integrator();
  const std::vector<std::complex<double>> poles{{0.2, 0.0}, {0.3, 0.0}};
  const Matrix l = luenberger(p, poles);
  ASSERT_EQ(l.rows(), 2);
  ASSERT_EQ(l.cols(), 1);
  const Matrix a_obs = p.phi() - l * p.c();
  EXPECT_NEAR(linalg::spectral_radius(a_obs), 0.3, 1e-8);
}

TEST(Design, ObserverConvergesInSimulation) {
  // Estimation error e[k+1] = (phi - l c) e[k] must die out quickly with
  // deadbeat-ish observer poles.
  const casestudy::App app = casestudy::c5();
  const Matrix l = luenberger(app.plant, {{0.05, 0.0}, {0.1, 0.0}});
  Matrix e = Matrix::column({1.0, -1.0});
  const Matrix a_obs = app.plant.phi() - l * app.plant.c();
  for (int k = 0; k < 12; ++k) e = a_obs * e;
  EXPECT_LT(e.max_abs(), 1e-6);
}

// ------------------------------------------------------------ Simulation --

TEST(Simulation, TtModeMatchesClosedLoopIteration) {
  const casestudy::App app = casestudy::c5();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  const Matrix acl = closed_loop(app.plant, app.kt);
  const Trace direct = simulate_autonomous(
      acl, app.plant.c(), app.plant.unit_output_state(), app.plant.h(), 50);
  const Trace via_loop = loop.simulate_pattern(0, 50, SettlingSpec{0.02, 50});
  ASSERT_EQ(direct.size(), via_loop.size());
  for (size_t k = 0; k < direct.size(); ++k)
    EXPECT_NEAR(direct[k].y, via_loop[k].y, 1e-10) << "k=" << k;
}

TEST(Simulation, EtModeHoldsInputOneSample) {
  // First applied ET input must be the pre-disturbance held value (0), so
  // x[1] = phi x[0] exactly.
  const casestudy::App app = casestudy::c1();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  LoopState s = loop.disturbed_state();
  const Matrix x0 = s.x;
  const double applied = loop.step_et(s);
  EXPECT_DOUBLE_EQ(applied, 0.0);
  EXPECT_TRUE(s.x.approx_equal(app.plant.phi() * x0, 1e-14));
}

TEST(Simulation, ScheduleEquivalentToPattern) {
  const casestudy::App app = casestudy::c3();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  std::vector<bool> modes(10, false);
  for (int k = 4; k < 8; ++k) modes[static_cast<size_t>(k)] = true;
  const Trace a = loop.simulate_schedule(modes, 300);
  const Trace b = loop.simulate_pattern(4, 4, SettlingSpec{0.02, 300});
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) EXPECT_NEAR(a[k].y, b[k].y, 1e-12);
}

TEST(Simulation, FastSettlingPathBitIdenticalToTraceScan) {
  // settling_of_pattern runs on flattened dynamics; it must agree exactly
  // (not approximately) with scanning the materialized Trace, for every
  // app and a grid of patterns including the degenerate ones.
  for (const casestudy::App& app : casestudy::all_apps()) {
    const SwitchedLoop loop(app.plant, app.kt, app.ke);
    const SettlingSpec spec{kSettlingTol, 600};
    for (int wait : {0, 1, 3, 7, 20}) {
      for (int dwell : {0, 1, 2, 5, 11}) {
        const auto via_trace = settling_samples(
            loop.simulate_pattern(wait, dwell, spec), spec.abs_tol);
        const auto fast = loop.settling_of_pattern(wait, dwell, spec);
        EXPECT_EQ(fast, via_trace)
            << app.name << " wait=" << wait << " dwell=" << dwell;
      }
    }
    // Full-horizon TT pattern (wait + dwell == horizon boundary).
    const SettlingSpec tight{kSettlingTol, 64};
    EXPECT_EQ(loop.settling_of_pattern(0, 64, tight),
              settling_samples(loop.simulate_pattern(0, 64, tight),
                               tight.abs_tol));
  }
}

TEST(Simulation, MoreDwellNeverWorseForStablePair) {
  // With a switching-stable pair, growing the TT dwell cannot increase the
  // settling time by more than jitter; specifically the minimum over all
  // dwell values is attained and the pure-TT response is the floor.
  const casestudy::App app = casestudy::c1();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  const SettlingSpec spec{kSettlingTol, 1500};
  const int j_floor = loop.settling_of_pattern(0, 1500, spec).value();
  for (int dwell : {2, 4, 6, 8, 12}) {
    const auto j = loop.settling_of_pattern(0, dwell, spec);
    ASSERT_TRUE(j.has_value()) << "dwell " << dwell;
    EXPECT_GE(*j, j_floor) << "dwell " << dwell;
  }
}

class AllAppsSim : public ::testing::TestWithParam<int> {};

TEST_P(AllAppsSim, PureTtMeetsRequirementPureEtDoesNot) {
  // Table 1 reports JT < J* < JE for every application; that ordering is
  // the reason the switching strategy exists.
  const casestudy::App app =
      casestudy::all_apps()[static_cast<size_t>(GetParam())];
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  const SettlingSpec spec{kSettlingTol, 3000};
  const auto jt = loop.settling_of_pattern(0, 3000, spec);
  const auto je = loop.settling_of_pattern(0, 0, spec);
  ASSERT_TRUE(jt.has_value()) << app.name;
  ASSERT_TRUE(je.has_value()) << app.name;
  EXPECT_LE(*jt, app.settling_requirement) << app.name;
  EXPECT_GT(*je, app.settling_requirement) << app.name;
  EXPECT_LT(*jt, *je) << app.name;
}

INSTANTIATE_TEST_SUITE_P(CaseStudy, AllAppsSim, ::testing::Range(0, 6));

}  // namespace
}  // namespace ttdim::control
