// Golden regression for the end-to-end case-study pipeline: pins the
// Table-1-style dimensioning of the six paper applications (per-app
// settling and dwell summary, all three slot assignments, the headline
// 50 % saving) so a refactor of any layer underneath core::solve cannot
// silently change the reproduced result.
#include <algorithm>

#include "casestudy/apps.h"
#include "core/dimensioning.h"
#include "gtest/gtest.h"

namespace ttdim {
namespace {

const core::Solution& golden_solution() {
  // Solved once: the full pipeline takes seconds and every test below
  // reads the same immutable result.
  static const core::Solution solution = [] {
    std::vector<core::AppSpec> specs;
    for (const casestudy::App& app : casestudy::all_apps())
      specs.push_back({app.name, app.plant, app.kt, app.ke,
                       app.min_interarrival, app.settling_requirement});
    return core::solve(specs);
  }();
  return solution;
}

int max_t_plus(const switching::DwellTables& t) {
  int m = 0;
  for (int v : t.t_plus) m = std::max(m, v);
  return m;
}

TEST(CaseStudyGolden, PerApplicationTimingTable) {
  const core::Solution& s = golden_solution();
  ASSERT_EQ(s.apps.size(), 6u);
  const int jt[] = {9, 15, 11, 10, 10, 11};
  const int je[] = {35, 50, 29, 31, 25, 41};
  const int t_star_w[] = {11, 13, 15, 12, 12, 12};
  const int max_minus[] = {5, 8, 5, 6, 4, 8};
  const int max_plus[] = {6, 10, 9, 9, 9, 11};
  for (size_t i = 0; i < 6; ++i) {
    const core::AppSolution& a = s.apps[i];
    EXPECT_EQ(a.tables.settling_tt, jt[i]) << a.spec.name;
    EXPECT_EQ(a.tables.settling_et, je[i]) << a.spec.name;
    EXPECT_EQ(a.tables.t_star_w, t_star_w[i]) << a.spec.name;
    EXPECT_EQ(a.tables.max_t_minus(), max_minus[i]) << a.spec.name;
    EXPECT_EQ(max_t_plus(a.tables), max_plus[i]) << a.spec.name;
    EXPECT_TRUE(a.stability.switching_stable()) << a.spec.name;
  }
}

TEST(CaseStudyGolden, ProposedMappingTwoSlots) {
  const core::Solution& s = golden_solution();
  const std::vector<std::vector<int>> expected = {{0, 4, 3, 2}, {5, 1}};
  EXPECT_EQ(s.proposed.slots, expected);
}

TEST(CaseStudyGolden, BaselineMappingsFourSlots) {
  const core::Solution& s = golden_solution();
  const std::vector<std::vector<int>> expected = {{0, 4}, {3, 5}, {1}, {2}};
  EXPECT_EQ(s.baseline_np.slots, expected);
  EXPECT_EQ(s.baseline_delayed.slots, expected);
}

TEST(CaseStudyGolden, FiftyPercentSlotSaving) {
  EXPECT_DOUBLE_EQ(golden_solution().saving_vs_baseline(), 0.5);
}

}  // namespace
}  // namespace ttdim
