// Behavioral tests for support/thread_annotations.h: the annotated
// Mutex/MutexLock/CondVar wrappers must be drop-in equivalents of
// std::mutex / std::lock_guard / std::condition_variable. The clang
// -Wthread-safety lane proves the *static* contracts; this suite proves
// the wrappers actually lock (multi-thread hammers, run under the TSan
// CI lane), that TryLock really contends, that MutexLock's relock cycle
// (Unlock/Lock) round-trips, and that CondVar wakeups observe state
// written under the mutex.
#include "support/thread_annotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ttdim::support {
namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 5000;

// A guarded counter in the exact shape every annotated type in
// src/engine uses: Mutex + GUARDED_BY field + REQUIRES helper.
class Counter {
 public:
  void bump() {
    MutexLock lock(mu_);
    bump_locked();
  }

  bool try_bump() {
    if (!mu_.TryLock()) return false;
    bump_locked();
    mu_.Unlock();
    return true;
  }

  [[nodiscard]] long read() {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  void bump_locked() REQUIRES(mu_) { ++value_; }

  Mutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotationsTest, MutexExcludesConcurrentWriters) {
  Counter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kItersPerThread; ++i) counter.bump();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.read(), static_cast<long>(kThreads) * kItersPerThread);
}

TEST(ThreadAnnotationsTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(ThreadAnnotationsTest, TryBumpAlwaysEventuallySucceeds) {
  Counter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kItersPerThread; ++i) {
        while (!counter.try_bump()) std::this_thread::yield();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.read(), static_cast<long>(kThreads) * kItersPerThread);
}

TEST(ThreadAnnotationsTest, MutexLockRelockCycleKeepsExclusion) {
  // The executor's worker loop drops the pool lock to drain a job and
  // re-acquires it to update bookkeeping; this hammers that exact
  // Unlock()/Lock() cycle on MutexLock.
  Mutex mu;
  long guarded = 0;
  std::atomic<long> unguarded{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        MutexLock lock(mu);
        ++guarded;
        lock.Unlock();
        unguarded.fetch_add(1, std::memory_order_relaxed);
        lock.Lock();
        ++guarded;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(guarded, 2L * kThreads * kItersPerThread);
  EXPECT_EQ(unguarded.load(), static_cast<long>(kThreads) * kItersPerThread);
}

TEST(ThreadAnnotationsTest, CondVarPredicateWaitSeesGuardedWrites) {
  // Ping-pong handshake: consumer waits for each value with the
  // predicate overload, producer publishes under the mutex. Lost-wakeup
  // or a Wait that failed to re-lock would hang (test TIMEOUT) or trip
  // TSan.
  Mutex mu;
  CondVar cv;
  int published = 0;  // GUARDED_BY(mu) in spirit; local, so unannotated
  constexpr int kRounds = 2000;

  std::thread consumer([&] {
    for (int expect = 1; expect <= kRounds; ++expect) {
      MutexLock lock(mu);
      cv.Wait(mu, [&] { return published >= expect; });
      EXPECT_GE(published, expect);
    }
  });
  for (int round = 1; round <= kRounds; ++round) {
    {
      MutexLock lock(mu);
      published = round;
    }
    cv.NotifyOne();
  }
  consumer.join();
}

TEST(ThreadAnnotationsTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> awake{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      cv.Wait(mu, [&] { return go; });
      awake.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& waiter : waiters) waiter.join();
  EXPECT_EQ(awake.load(), kThreads);
}

}  // namespace
}  // namespace ttdim::support
