// Tests for the first-fit mapper and the end-to-end dimensioning façade —
// including the paper's headline result: the proposed strategy packs the
// six-application case study into 2 TT slots while the baseline [9]
// analyses need 4 (a 50 % saving).
#include <random>
#include <set>
#include <stdexcept>

#include "casestudy/apps.h"
#include "core/dimensioning.h"
#include "gtest/gtest.h"
#include "mapping/first_fit.h"

namespace ttdim {
namespace {

using core::AppSpec;
using core::Solution;
using verify::AppTiming;

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

AppSpec to_spec(const casestudy::App& app) {
  return {app.name,          app.plant,
          app.kt,            app.ke,
          app.min_interarrival, app.settling_requirement};
}

std::vector<AppSpec> case_study_specs() {
  std::vector<AppSpec> specs;
  for (const casestudy::App& app : casestudy::all_apps())
    specs.push_back(to_spec(app));
  return specs;
}

/// Solve once and share across tests (the dwell analyses + model checking
/// take a few seconds).
const Solution& case_study_solution() {
  static const Solution solution = core::solve(case_study_specs());
  return solution;
}

// ------------------------------------------------------------- First fit --

TEST(FirstFit, PaperSortOrderMatchesSection5) {
  std::vector<AppTiming> timings;
  for (const core::AppSolution& a : case_study_solution().apps)
    timings.push_back(a.timing);
  const std::vector<int> order = mapping::paper_sort_order(timings);
  // Paper Sec. 5: sorted as {C1, C5, C4, C6, C2, C3}.
  std::vector<std::string> names;
  for (int i : order)
    names.push_back(timings[static_cast<size_t>(i)].name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"C1", "C5", "C4", "C6", "C2", "C3"}));
}

TEST(FirstFit, GreedyOracleBehaviour) {
  // Oracle admitting at most two apps per slot.
  const mapping::SlotOracle pairs_only =
      [](const std::vector<AppTiming>& slot_apps) {
        return slot_apps.size() <= 2;
      };
  const std::vector<AppTiming> apps{
      uniform_app("A", 1, 1, 1, 9), uniform_app("B", 1, 1, 1, 9),
      uniform_app("C", 1, 1, 1, 9), uniform_app("D", 1, 1, 1, 9),
      uniform_app("E", 1, 1, 1, 9)};
  const std::vector<int> order{0, 1, 2, 3, 4};
  const mapping::SlotAssignment a = mapping::first_fit(apps, order, pairs_only);
  EXPECT_EQ(a.slot_count(), 3);
  EXPECT_EQ(a.slots[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(a.slots[1], (std::vector<int>{2, 3}));
  EXPECT_EQ(a.slots[2], (std::vector<int>{4}));
}

TEST(FirstFit, SingletonMustAlwaysBeAdmitted) {
  const mapping::SlotOracle impossible =
      [](const std::vector<AppTiming>&) { return false; };
  const std::vector<AppTiming> apps{uniform_app("A", 1, 1, 1, 9)};
  EXPECT_THROW(
      static_cast<void>(mapping::first_fit(apps, {0}, impossible)),
      std::logic_error);
}

TEST(FirstFit, OrderArityChecked) {
  const std::vector<AppTiming> apps{uniform_app("A", 1, 1, 1, 9)};
  EXPECT_THROW(static_cast<void>(mapping::first_fit(
                   apps, {0, 1},
                   [](const std::vector<AppTiming>&) { return true; })),
               std::logic_error);
}

// ------------------------------------------------------ Headline results --

TEST(CaseStudyMapping, ProposedNeedsTwoSlots) {
  const Solution& s = case_study_solution();
  ASSERT_EQ(s.proposed.slot_count(), 2);
  // Paper Sec. 5: S1 = {C1, C5, C4, C3}, S2 = {C6, C2}.
  std::set<std::string> s1;
  std::set<std::string> s2;
  for (int i : s.proposed.slots[0])
    s1.insert(s.apps[static_cast<size_t>(i)].spec.name);
  for (int i : s.proposed.slots[1])
    s2.insert(s.apps[static_cast<size_t>(i)].spec.name);
  EXPECT_EQ(s1, (std::set<std::string>{"C1", "C5", "C4", "C3"}));
  EXPECT_EQ(s2, (std::set<std::string>{"C6", "C2"}));
}

TEST(CaseStudyMapping, BaselinesNeedFourSlots) {
  const Solution& s = case_study_solution();
  EXPECT_EQ(s.baseline_np.slot_count(), 4);
  EXPECT_EQ(s.baseline_delayed.slot_count(), 4);
  // 50 % saving, the paper's headline.
  EXPECT_NEAR(s.saving_vs_baseline(), 0.5, 1e-9);
}

TEST(CaseStudyMapping, EveryAppMappedExactlyOnce) {
  const Solution& s = case_study_solution();
  for (const mapping::SlotAssignment* a :
       {&s.proposed, &s.baseline_np, &s.baseline_delayed}) {
    std::set<int> seen;
    for (const std::vector<int>& slot : a->slots)
      for (int i : slot) EXPECT_TRUE(seen.insert(i).second);
    EXPECT_EQ(seen.size(), s.apps.size());
  }
}

// ------------------------------------------------------------ Validation --

TEST(Solve, RejectsSwitchingUnstablePair) {
  std::vector<AppSpec> specs{to_spec(casestudy::c1())};
  specs[0].ke = casestudy::ke_unstable();
  EXPECT_THROW(static_cast<void>(core::solve(specs)), std::invalid_argument);
  // Explicit override lets the user study the unstable pair anyway.
  core::SolveOptions opt;
  opt.require_switching_stability = false;
  EXPECT_NO_THROW(static_cast<void>(core::solve(specs, opt)));
}

TEST(Solve, RejectsUnmeetableRequirement) {
  std::vector<AppSpec> specs{to_spec(casestudy::c1())};
  specs[0].settling_requirement = 3;  // below JT = 9
  EXPECT_THROW(static_cast<void>(core::solve(specs)), std::invalid_argument);
}

TEST(Solve, SlackAwarePolicyYieldsSamePartitionOnCaseStudy) {
  // The slack-aware extension keeps the case-study dimensioning at two
  // slots (EXPERIMENTS.md A2): the postponement heuristic never admits
  // less than the paper policy here.
  core::SolveOptions opt;
  opt.policy = verify::SlotPolicy::kSlackAware;
  const Solution s = core::solve(case_study_specs(), opt);
  EXPECT_EQ(s.proposed.slot_count(), 2);
}

TEST(Solve, StabilityCertificatesRecorded) {
  const Solution& s = case_study_solution();
  for (const core::AppSolution& a : s.apps) {
    EXPECT_TRUE(a.stability.switching_stable()) << a.spec.name;
    EXPECT_TRUE(a.tables.feasible()) << a.spec.name;
  }
}

// ------------------------------------------------------------------ CoSim --

TEST(CoSim, Figure8ScenarioMeetsAllRequirements) {
  // Fig. 8: simultaneous disturbances at C1, C3, C4, C5 sharing slot S1.
  const Solution& s = case_study_solution();
  std::vector<core::AppSolution> slot_apps;
  for (int i : s.proposed.slots[0])
    slot_apps.push_back(s.apps[static_cast<size_t>(i)]);
  sched::Scenario scenario;
  scenario.horizon = 120;
  scenario.disturbances.assign(slot_apps.size(), {0});
  const core::CoSimResult r =
      core::cosimulate(slot_apps, scenario, casestudy::kSettlingTol);
  EXPECT_FALSE(r.schedule.deadline_violated);
  for (size_t i = 0; i < slot_apps.size(); ++i) {
    ASSERT_TRUE(r.settling[i].has_value()) << slot_apps[i].spec.name;
    EXPECT_LE(*r.settling[i], slot_apps[i].spec.settling_requirement)
        << slot_apps[i].spec.name;
  }
}

TEST(CoSim, Figure9ScenarioMeetsAllRequirements) {
  // Fig. 9: C6 disturbed 10 samples after C2, sharing slot S2.
  const Solution& s = case_study_solution();
  std::vector<core::AppSolution> slot_apps;
  for (int i : s.proposed.slots[1])
    slot_apps.push_back(s.apps[static_cast<size_t>(i)]);
  ASSERT_EQ(slot_apps.size(), 2u);
  // slot order is {C6, C2} by mapping order; C2 at 0, C6 at 10.
  sched::Scenario scenario;
  scenario.horizon = 160;
  for (const core::AppSolution& a : slot_apps)
    scenario.disturbances.push_back(a.spec.name == "C2"
                                        ? std::vector<int>{0}
                                        : std::vector<int>{10});
  const core::CoSimResult r =
      core::cosimulate(slot_apps, scenario, casestudy::kSettlingTol);
  EXPECT_FALSE(r.schedule.deadline_violated);
  for (size_t i = 0; i < slot_apps.size(); ++i) {
    ASSERT_TRUE(r.settling[i].has_value()) << slot_apps[i].spec.name;
    EXPECT_LE(*r.settling[i], slot_apps[i].spec.settling_requirement)
        << slot_apps[i].spec.name;
  }
}

TEST(CoSim, VerifierVerdictMatchesRandomizedCoSimulation) {
  // Safety fuzzing: random legal sporadic scenarios against a verified-safe
  // partition must never violate a deadline (verifier soundness witness).
  const Solution& s = case_study_solution();
  std::vector<core::AppSolution> slot_apps;
  for (int i : s.proposed.slots[0])
    slot_apps.push_back(s.apps[static_cast<size_t>(i)]);
  std::mt19937 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    sched::Scenario scenario;
    scenario.horizon = 400;
    for (const core::AppSolution& a : slot_apps) {
      std::vector<int> d;
      int t = static_cast<int>(rng() % 40);
      while (t < scenario.horizon) {
        d.push_back(t);
        t += a.timing.min_interarrival + static_cast<int>(rng() % 30);
      }
      scenario.disturbances.push_back(std::move(d));
    }
    const core::CoSimResult r =
        core::cosimulate(slot_apps, scenario, casestudy::kSettlingTol);
    EXPECT_FALSE(r.schedule.deadline_violated) << "trial " << trial;
  }
}

TEST(CoSim, EmptyDisturbanceListYieldsEmptyTrace) {
  const Solution& s = case_study_solution();
  std::vector<core::AppSolution> slot_apps{s.apps[0], s.apps[1]};
  sched::Scenario scenario;
  scenario.horizon = 60;
  scenario.disturbances = {{0}, {}};
  const core::CoSimResult r =
      core::cosimulate(slot_apps, scenario, casestudy::kSettlingTol);
  EXPECT_FALSE(r.traces[0].empty());
  EXPECT_TRUE(r.traces[1].empty());
  EXPECT_FALSE(r.settling[1].has_value());
}

}  // namespace
}  // namespace ttdim
