// The unified LRU core (engine/cache/lru_cache.h): budget semantics in
// both modes (entry count and byte cost), recency behaviour, the
// eviction hook contract that secondary indexes rely on, and — the
// accounting regression the cache audit asked for — counters that match
// the real map under concurrent same-key misses, TSan-clean:
// insertions - evictions == entries at every quiet point, duplicates
// counted zero times.
#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/cache/lru_cache.h"
#include "gtest/gtest.h"

namespace ttdim::engine::cache {
namespace {

using IntCache = LruCache<int, std::string>;

std::size_t value_size(const int& key, const std::string& value) {
  (void)key;
  return value.size();
}

TEST(LruCache, CountBudgetEvictsLeastRecentlyUsed) {
  IntCache cache(2);
  EXPECT_TRUE(cache.insert(1, "one"));
  EXPECT_TRUE(cache.insert(2, "two"));
  ASSERT_NE(cache.lookup(1), nullptr);  // 1 now most recent
  EXPECT_TRUE(cache.insert(3, "three"));  // evicts 2
  EXPECT_EQ(cache.lookup(2), nullptr);
  ASSERT_NE(cache.lookup(1), nullptr);
  ASSERT_NE(cache.lookup(3), nullptr);
  const LruStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.cost, 2u);  // each entry charged 1 in count mode
}

TEST(LruCache, ByteBudgetChargesTheCostHook) {
  LruCache<int, std::string> cache(10, &value_size);
  EXPECT_TRUE(cache.insert(1, "aaaa"));   // 4
  EXPECT_TRUE(cache.insert(2, "bbbb"));   // 8
  EXPECT_TRUE(cache.insert(3, "cc"));     // 10, fits
  EXPECT_EQ(cache.stats().cost, 10u);
  EXPECT_TRUE(cache.insert(4, "ddd"));    // 13 -> evicts oldest (1)
  EXPECT_EQ(cache.lookup(1), nullptr);
  ASSERT_NE(cache.lookup(2), nullptr);
  ASSERT_NE(cache.lookup(3), nullptr);
  ASSERT_NE(cache.lookup(4), nullptr);
  const LruStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.cost, 9u);
  EXPECT_LE(stats.cost, stats.budget);
}

TEST(LruCache, OversizedEntryIsDroppedNotInserted) {
  LruCache<int, std::string> cache(4, &value_size);
  EXPECT_FALSE(cache.insert(1, "way too large"));
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(LruCache, DuplicateInsertIsANoOpCountedZeroTimes) {
  IntCache cache(4);
  EXPECT_TRUE(cache.insert(1, "first"));
  EXPECT_FALSE(cache.insert(1, "second"));
  EXPECT_EQ(*cache.lookup(1), "first");  // original value survives
  const LruStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.entries,
            static_cast<std::size_t>(stats.insertions - stats.evictions));
}

TEST(LruCache, TouchRefreshesRecencyWithoutCountingHitsOrMisses) {
  IntCache cache(2);
  cache.insert(1, "one");
  cache.insert(2, "two");
  cache.touch(1);      // 1 most recent now
  cache.touch(99);     // absent: no-op
  const LruStats before = cache.stats();
  EXPECT_EQ(before.hits, 0);
  EXPECT_EQ(before.misses, 0);
  cache.insert(3, "three");  // evicts 2, the least recently touched
  EXPECT_EQ(cache.lookup(2), nullptr);
  ASSERT_NE(cache.lookup(1), nullptr);
  ASSERT_NE(cache.lookup(3), nullptr);
}

TEST(LruCache, EvictionNeverInvalidatesAHandedOutValue) {
  IntCache cache(1);
  cache.insert(1, "held");
  const std::shared_ptr<const std::string> held = cache.lookup(1);
  ASSERT_NE(held, nullptr);
  cache.insert(2, "usurper");  // evicts 1
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(*held, "held");
  cache.clear();
  EXPECT_EQ(*held, "held");
}

TEST(LruCache, EvictHookSeesEveryDepartureExactlyOnce) {
  std::vector<std::pair<int, std::string>> departed;
  LruCache<int, std::string> cache(
      2, nullptr, [&departed](const int& key, const std::string& value) {
        departed.emplace_back(key, value);
      });
  cache.insert(1, "one");
  cache.insert(2, "two");
  cache.insert(3, "three");  // evicts 1
  ASSERT_EQ(departed.size(), 1u);
  EXPECT_EQ(departed[0], (std::pair<int, std::string>{1, "one"}));
  cache.clear();  // fires for the two residents, does not count evictions
  ASSERT_EQ(departed.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 0);  // clear() reset the counters
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(LruCache, ClearResetsAllCounters) {
  IntCache cache(2);
  cache.insert(1, "one");
  (void)cache.lookup(1);
  (void)cache.lookup(9);
  cache.clear();
  const LruStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.insertions, 0);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.cost, 0u);
}

// The accounting regression test of the cache audit: concurrent misses
// of the same key all race to insert; the contract is that the key is
// counted ONCE and the counters can never drift from the real map —
// insertions - evictions == entries once the threads join. Run under
// TSan in CI (the lru_cache suite is in the TSan job filter).
TEST(LruCache, ConcurrentSameKeyMissesKeepCountersConsistent) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  constexpr int kRounds = 200;
  LruCache<int, std::string> cache(16);  // small: force steady eviction
  std::atomic<int> start{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&cache, &start] {
      start.fetch_add(1);
      while (start.load() < kThreads) {
      }  // spin: maximize same-key overlap
      for (int round = 0; round < kRounds; ++round) {
        for (int key = 0; key < kKeys; ++key) {
          if (cache.lookup(key) == nullptr) {
            // Every thread computes the same interchangeable value and
            // races to insert it — at most one may be counted.
            cache.insert(key, "v" + std::to_string(key));
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const LruStats stats = cache.stats();
  EXPECT_EQ(stats.entries,
            static_cast<std::size_t>(stats.insertions - stats.evictions));
  EXPECT_LE(stats.entries, 16u);
  EXPECT_EQ(stats.cost, stats.entries);  // count mode: cost == entries
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<long>(kThreads) * kRounds * kKeys);
  // Every resident key still resolves to its interchangeable value.
  int resident = 0;
  for (int key = 0; key < kKeys; ++key) {
    const std::shared_ptr<const std::string> value = cache.lookup(key);
    if (value == nullptr) continue;
    EXPECT_EQ(*value, "v" + std::to_string(key));
    ++resident;
  }
  EXPECT_EQ(static_cast<std::size_t>(resident), stats.entries);
}

}  // namespace
}  // namespace ttdim::engine::cache
