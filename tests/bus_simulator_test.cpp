// Tests for the integrated bus simulator: TT/ET mode switching through the
// middleware, per-cycle deliveries, and the latency abstraction the control
// layer builds on.
#include <stdexcept>

#include "flexray/simulator.h"
#include "gtest/gtest.h"

namespace ttdim::flexray {
namespace {

BusConfig paper_config() {
  BusConfig c;
  c.static_slot_us = 50.0;
  c.static_slots = 60;
  c.minislot_us = 5.0;
  c.minislots = 3300;
  c.nit_us = 500.0;
  return c;
}

std::vector<BusSimulator::AppConfig> two_apps() {
  return {{"C1", {1, "C1", 4}}, {"C5", {2, "C5", 4}}};
}

TEST(BusSimulator, EtDeliveryWithinOneCycle) {
  BusSimulator bus(paper_config(), {0}, two_apps());
  const auto d = bus.step_cycle();
  ASSERT_EQ(d.size(), 2u);
  for (const Delivery& x : d) {
    EXPECT_FALSE(x.via_static);
    EXPECT_LT(x.latency_us, paper_config().cycle_us());
    // ET messages go out after the static segment.
    EXPECT_GT(x.latency_us, paper_config().static_slot_us * 60);
  }
}

TEST(BusSimulator, GrantMovesAppToStaticSlotNextCycle) {
  BusSimulator bus(paper_config(), {0}, two_apps());
  bus.grant_slot(0, "C1");
  const auto d = bus.step_cycle();  // handover applies at this boundary
  EXPECT_TRUE(d[0].via_static);
  // Slot 0 ends at 50 us: deterministic, near-zero delay.
  EXPECT_NEAR(d[0].latency_us, 50.0, 1e-9);
  EXPECT_FALSE(d[1].via_static);
}

TEST(BusSimulator, ReleaseReturnsAppToDynamicSegment) {
  BusSimulator bus(paper_config(), {0}, two_apps());
  bus.grant_slot(0, "C1");
  (void)bus.step_cycle();
  bus.release_slot(0);
  const auto d = bus.step_cycle();
  EXPECT_FALSE(d[0].via_static);
}

TEST(BusSimulator, SlotHandoverBetweenApps) {
  // The protocol's preempt-then-grant maps to release + grant: the slot
  // changes hands at the next cycle boundary.
  BusSimulator bus(paper_config(), {0}, two_apps());
  bus.grant_slot(0, "C1");
  (void)bus.step_cycle();
  bus.release_slot(0);
  bus.grant_slot(0, "C5");
  const auto d = bus.step_cycle();
  EXPECT_FALSE(d[0].via_static);
  EXPECT_TRUE(d[1].via_static);
}

TEST(BusSimulator, DoubleGrantRejected) {
  BusSimulator bus(paper_config(), {0}, two_apps());
  bus.grant_slot(0, "C1");
  (void)bus.step_cycle();
  EXPECT_THROW(bus.grant_slot(0, "C5"), std::logic_error);
}

TEST(BusSimulator, WorstCaseEtLatencyJustifiesOneSampleModel) {
  BusSimulator bus(paper_config(), {0}, two_apps());
  const auto wc = bus.worst_case_et_latency_us();
  ASSERT_TRUE(wc.has_value());
  EXPECT_LT(*wc, paper_config().cycle_us());
}

TEST(BusSimulator, OverloadedDynamicSegmentReported) {
  BusConfig tiny = paper_config();
  tiny.minislots = 5;
  BusSimulator bus(tiny, {0},
                   {{"A", {1, "A", 4}}, {"B", {2, "B", 4}}});
  EXPECT_FALSE(bus.worst_case_et_latency_us().has_value());
  EXPECT_THROW(static_cast<void>(bus.step_cycle()), std::runtime_error);
}

TEST(BusSimulator, DuplicateOrUnknownAppsRejected) {
  EXPECT_THROW(BusSimulator(paper_config(), {0},
                            {{"A", {1, "A", 1}}, {"A", {2, "A2", 1}}}),
               std::invalid_argument);
  BusSimulator bus(paper_config(), {0}, two_apps());
  EXPECT_THROW(bus.grant_slot(0, "nope"), std::invalid_argument);
}

}  // namespace
}  // namespace ttdim::flexray
