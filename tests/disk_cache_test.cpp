// The persistent cache tier (engine/cache/disk_cache.h) and the binary
// value codecs under it (support/codec.h): round trips for every cached
// value type, hostile-input behaviour (every strict prefix of a valid
// encoding must fail cleanly, never throw), and the on-disk contract —
// crash-left temp files are invisible, corruption and version skew read
// as misses, the trim respects the byte budget in mtime order, and two
// handles sharing one directory stay consistent.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "control/design.h"
#include "control/lti.h"
#include "engine/analysis/analysis_cache.h"
#include "engine/cache/disk_cache.h"
#include "gtest/gtest.h"
#include "linalg/lyap.h"
#include "linalg/matrix.h"
#include "support/codec.h"
#include "switching/dwell.h"
#include "verify/app_timing.h"
#include "verify/discrete.h"

namespace ttdim::engine::cache {
namespace {

namespace fs = std::filesystem;
using support::codec::Decoder;
using support::codec::Encoder;

// ---------------------------------------------------------------------------
// Codec round trips. The invariant under test: decode(encode(v)) succeeds,
// consumes every byte, and re-encodes to the identical byte string (the
// codec is deterministic, so byte equality IS value equality).

template <typename T, typename EncodeFn, typename DecodeFn>
void expect_round_trip(const T& value, EncodeFn encode_fn,
                       DecodeFn decode_fn) {
  std::string bytes;
  Encoder enc(bytes);
  encode_fn(enc, value);

  Decoder dec(bytes);
  T back{};
  ASSERT_TRUE(decode_fn(dec, back));
  EXPECT_TRUE(dec.done());

  std::string again;
  Encoder enc2(again);
  encode_fn(enc2, back);
  EXPECT_EQ(bytes, again);

  // Hostility: every strict prefix must fail cleanly (false or trailing
  // bytes unconsumed), never throw and never succeed as done().
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Decoder partial(std::string_view(bytes.data(), cut));
    T scratch{};
    const bool decoded = decode_fn(partial, scratch);
    EXPECT_FALSE(decoded && partial.done())
        << "prefix of " << cut << "/" << bytes.size()
        << " bytes decoded as complete";
  }
}

linalg::Matrix test_matrix() {
  linalg::Matrix m(2, 3);
  m(0, 0) = 1.5;
  m(0, 1) = -0.0;  // signed zero: the bit pattern must survive
  m(0, 2) = 3.25e-7;
  m(1, 0) = -12.0;
  m(1, 1) = 0.1;
  m(1, 2) = 9e99;
  return m;
}

TEST(Codec, MatrixRoundTrip) {
  expect_round_trip(
      test_matrix(),
      [](Encoder& e, const linalg::Matrix& m) { linalg::encode(e, m); },
      [](Decoder& d, linalg::Matrix& m) { return linalg::decode(d, m); });
}

TEST(Codec, MatrixRejectsAbsurdDimensions) {
  // A corrupt length prefix must read as failure, not as an allocation.
  std::string bytes;
  Encoder enc(bytes);
  enc.u32(0xFFFFFFFFu);
  enc.u32(0xFFFFFFFFu);
  Decoder dec(bytes);
  linalg::Matrix m;
  EXPECT_FALSE(linalg::decode(dec, m));
}

TEST(Codec, CommonLyapunovRoundTrip) {
  linalg::CommonLyapunov cqlf;
  cqlf.found = true;
  cqlf.p = test_matrix();
  expect_round_trip(
      cqlf,
      [](Encoder& e, const linalg::CommonLyapunov& v) {
        linalg::encode(e, v);
      },
      [](Decoder& d, linalg::CommonLyapunov& v) {
        return linalg::decode(d, v);
      });
}

TEST(Codec, DwellTablesRoundTrip) {
  switching::DwellTables tables;
  tables.t_star_w = 3;
  tables.t_minus = {2, 2, 3, 3};
  tables.t_plus = {4, 4, 5, 6};
  tables.settling_at_minus = {10, 11, 12, 13};
  tables.settling_at_plus = {9, 9, 10, 11};
  tables.settling_tt = 8;
  tables.settling_et = 15;
  tables.tw_granularity = 1;
  expect_round_trip(
      tables,
      [](Encoder& e, const switching::DwellTables& v) {
        switching::encode(e, v);
      },
      [](Decoder& d, switching::DwellTables& v) {
        return switching::decode(d, v);
      });
}

TEST(Codec, SwitchingStabilityRoundTrip) {
  control::SwitchingStability st;
  st.tt_stable = true;
  st.et_stable = true;
  st.common_lyapunov = true;
  st.degradation_free = false;
  st.settling_et = 42;
  st.worst_settling = 57;
  st.p = test_matrix();
  expect_round_trip(
      st,
      [](Encoder& e, const control::SwitchingStability& v) {
        control::encode(e, v);
      },
      [](Decoder& d, control::SwitchingStability& v) {
        return control::decode(d, v);
      });
}

TEST(Codec, AppTimingRoundTrip) {
  verify::AppTiming timing;
  timing.name = "engine-ctl";
  timing.t_star_w = 2;
  timing.t_minus = {1, 1, 2};
  timing.t_plus = {2, 3, 3};
  timing.min_interarrival = 9;
  expect_round_trip(
      timing,
      [](Encoder& e, const verify::AppTiming& v) { verify::encode(e, v); },
      [](Decoder& d, verify::AppTiming& v) { return verify::decode(d, v); });
}

TEST(Codec, SlotVerdictRoundTrip) {
  verify::SlotVerdict verdict;
  verdict.safe = false;
  verdict.states_explored = 123456789L;
  verdict.witness = {"tick 0: A disturbed", "tick 1: grant -> B"};
  verdict.witness_ticks = {{{0, 2}, 1}, {{1}, 0}, {{}, -1}};
  verdict.violator = 2;
  expect_round_trip(
      verdict,
      [](Encoder& e, const verify::SlotVerdict& v) { verify::encode(e, v); },
      [](Decoder& d, verify::SlotVerdict& v) {
        return verify::decode(d, v);
      });
}

TEST(Codec, AppAnalysisResultRoundTrip) {
  analysis::AppAnalysisResult result;
  result.stability.tt_stable = true;
  result.stability.et_stable = true;
  result.stability.common_lyapunov = true;
  result.stability.settling_et = 20;
  result.stability.worst_settling = 31;
  result.stability.p = test_matrix();
  result.tables.t_star_w = 1;
  result.tables.t_minus = {2, 2};
  result.tables.t_plus = {3, 3};
  result.tables.settling_at_minus = {12, 13};
  result.tables.settling_at_plus = {11, 12};
  result.tables.settling_tt = 10;
  result.tables.settling_et = 20;
  result.tables_computed = true;
  expect_round_trip(
      result,
      [](Encoder& e, const analysis::AppAnalysisResult& v) {
        analysis::encode(e, v);
      },
      [](Decoder& d, analysis::AppAnalysisResult& v) {
        return analysis::decode(d, v);
      });
}

TEST(Codec, DiscreteLtiDecodePrevalidates) {
  const control::DiscreteLti plant(
      linalg::Matrix{{1.0, 0.1}, {0.0, 0.9}},
      linalg::Matrix{{0.0}, {0.1}}, linalg::Matrix{{1.0, 0.0}}, 0.01);
  std::string bytes;
  Encoder enc(bytes);
  control::encode(enc, plant);
  {
    Decoder dec(bytes);
    const std::optional<control::DiscreteLti> back = control::decode_lti(dec);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(dec.done());
    std::string again;
    Encoder enc2(again);
    control::encode(enc2, *back);
    EXPECT_EQ(bytes, again);
  }
  // A decode that violates the constructor preconditions (h <= 0 here)
  // must return nullopt instead of reaching a throwing contract check.
  std::string bad = bytes;
  for (int i = 0; i < 8; ++i) bad[bad.size() - 8 + static_cast<std::size_t>(i)] = 0;
  Decoder dec(bad);
  EXPECT_FALSE(control::decode_lti(dec).has_value());
}

// ---------------------------------------------------------------------------
// DiskCache on-disk contract.

class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("ttdim-disk-cache-test-" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// The single *.entry file under dir_ (most tests store exactly one).
  fs::path only_entry() const {
    fs::path found;
    int count = 0;
    for (const auto& e : fs::recursive_directory_iterator(dir_))
      if (e.is_regular_file() && e.path().extension() == ".entry") {
        found = e.path();
        ++count;
      }
    EXPECT_EQ(count, 1);
    return found;
  }

  std::string dir_;
};

TEST_F(DiskCacheTest, PutGetRoundTripAndAbsentMiss) {
  DiskCache cache(dir_);
  EXPECT_FALSE(cache.get("analysis", "key-a").has_value());
  cache.put("analysis", "key-a", "value-a");
  const auto hit = cache.get("analysis", "key-a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "value-a");
  // Spaces are disjoint namespaces.
  EXPECT_FALSE(cache.get("verdict", "key-a").has_value());
  const DiskCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.writes, 1);
  EXPECT_EQ(s.corrupt, 0);
}

TEST_F(DiskCacheTest, DuplicatePutIsANoOp) {
  DiskCache cache(dir_);
  cache.put("analysis", "k", "first");
  cache.put("analysis", "k", "second");  // content-addressed: kept as-is
  EXPECT_EQ(cache.stats().writes, 1);
  EXPECT_EQ(*cache.get("analysis", "k"), "first");
}

TEST_F(DiskCacheTest, OversizedValueIsSkipped) {
  DiskCache cache(dir_, 64);
  cache.put("analysis", "k", std::string(1024, 'x'));
  EXPECT_EQ(cache.stats().writes, 0);
  EXPECT_FALSE(cache.get("analysis", "k").has_value());
}

TEST_F(DiskCacheTest, EmptyValueRoundTrips) {
  DiskCache cache(dir_);
  cache.put("verdict", "k", "");
  const auto hit = cache.get("verdict", "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->empty());
}

TEST_F(DiskCacheTest, CorruptedEntryIsAMissAndSelfHeals) {
  DiskCache cache(dir_);
  cache.put("analysis", "k", "precious");
  const fs::path entry = only_entry();
  {
    // Flip one payload byte: the checksum must catch it.
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.put(static_cast<char>('~'));
  }
  EXPECT_FALSE(cache.get("analysis", "k").has_value());
  EXPECT_EQ(cache.stats().corrupt, 1);
  // Self-heal: the broken file is gone, so a fresh result can re-enter
  // and the next read hits again.
  EXPECT_FALSE(fs::exists(entry));
  cache.put("analysis", "k", "precious");
  EXPECT_EQ(*cache.get("analysis", "k"), "precious");
}

TEST_F(DiskCacheTest, TruncatedEntryIsAMiss) {
  DiskCache cache(dir_);
  cache.put("analysis", "k", "0123456789");
  const fs::path entry = only_entry();
  fs::resize_file(entry, fs::file_size(entry) / 2);
  EXPECT_FALSE(cache.get("analysis", "k").has_value());
  EXPECT_GE(cache.stats().corrupt, 1);
}

TEST_F(DiskCacheTest, WrongVersionIsAMissButKept) {
  DiskCache cache(dir_);
  cache.put("analysis", "k", "v");
  const fs::path entry = only_entry();
  {
    // Bump the format version field (offset 4, little-endian u32).
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    f.put(static_cast<char>(DiskCache::kFormatVersion + 1));
  }
  EXPECT_FALSE(cache.get("analysis", "k").has_value());
  EXPECT_EQ(cache.stats().corrupt, 1);
  // A well-formed entry from another format era is not deleted on read;
  // it ages out through the trim instead.
  EXPECT_TRUE(fs::exists(entry));
}

TEST_F(DiskCacheTest, WrongMagicIsAMiss) {
  DiskCache cache(dir_);
  cache.put("analysis", "k", "v");
  const fs::path entry = only_entry();
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.put('X');
  }
  EXPECT_FALSE(cache.get("analysis", "k").has_value());
  EXPECT_EQ(cache.stats().corrupt, 1);
}

TEST_F(DiskCacheTest, AbandonedTempFileIsInvisibleAndSwept) {
  DiskCache cache(dir_);
  cache.put("analysis", "k", "v");
  // A writer that crashed mid-write leaves a tmp_ file behind; it must
  // never be read as an entry.
  const fs::path tmp = fs::path(dir_) / "analysis" / "tmp_dead_1_1";
  {
    std::ofstream out(tmp, std::ios::binary);
    out << "half-written garbage";
  }
  EXPECT_EQ(*cache.get("analysis", "k"), "v");
  // Fresh temp files survive the trim (a live writer may own them)...
  cache.trim();
  EXPECT_TRUE(fs::exists(tmp));
  // ...stale ones are swept.
  fs::last_write_time(tmp, fs::file_time_type::clock::now() -
                               std::chrono::hours(1));
  cache.trim();
  EXPECT_FALSE(fs::exists(tmp));
  EXPECT_EQ(*cache.get("analysis", "k"), "v");
}

TEST_F(DiskCacheTest, TrimEvictsOldestFirstAndRespectsBudget) {
  // Populate with a generous budget, then re-open with a tight one: the
  // constructor scan plus an explicit trim must delete in mtime order
  // until the directory fits.
  const std::string payload(100, 'p');
  {
    DiskCache cache(dir_);
    cache.put("analysis", "old", payload);
    cache.put("analysis", "mid", payload);
    cache.put("analysis", "new", payload);
  }
  // Pin a deterministic age order: entry files are hash-named, so sort
  // them by name and age them oldest-to-newest in that order.
  const auto now = fs::file_time_type::clock::now();
  std::vector<fs::path> entries;
  for (const auto& e : fs::recursive_directory_iterator(dir_))
    if (e.is_regular_file() && e.path().extension() == ".entry")
      entries.push_back(e.path());
  ASSERT_EQ(entries.size(), 3u);
  std::sort(entries.begin(), entries.end());
  for (std::size_t i = 0; i < entries.size(); ++i)
    fs::last_write_time(entries[i],
                        now - std::chrono::hours(24 * (3 - static_cast<int>(i))));

  const std::size_t entry_size =
      static_cast<std::size_t>(fs::file_size(entries[0]));
  // Budget for exactly two entries: the oldest (entries[0]) must go.
  DiskCache tight(dir_, 2 * entry_size + entry_size / 2);
  tight.trim();
  EXPECT_FALSE(fs::exists(entries[0]));
  EXPECT_TRUE(fs::exists(entries[1]));
  EXPECT_TRUE(fs::exists(entries[2]));
  const DiskCacheStats s = tight.stats();
  EXPECT_EQ(s.trims, 1);
  EXPECT_LE(s.bytes, s.byte_budget);
}

TEST_F(DiskCacheTest, TwoHandlesShareOneDirectory) {
  DiskCache a(dir_);
  DiskCache b(dir_);
  a.put("verdict", "from-a", "A");
  b.put("verdict", "from-b", "B");
  EXPECT_EQ(*a.get("verdict", "from-b"), "B");
  EXPECT_EQ(*b.get("verdict", "from-a"), "A");
  // Same key from both handles: one file, one winner, consistent reads.
  a.put("verdict", "shared", "same-bytes");
  b.put("verdict", "shared", "same-bytes");
  EXPECT_EQ(*a.get("verdict", "shared"), *b.get("verdict", "shared"));
}

TEST_F(DiskCacheTest, ConcurrentWritersAndReadersStayConsistent) {
  DiskCache cache(dir_);
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&cache, t] {
      for (int k = 0; k < kKeys; ++k) {
        const std::string key = "key-" + std::to_string(k);
        const std::string value = "value-" + std::to_string(k);
        if ((t + k) % 2 == 0) cache.put("analysis", key, value);
        const auto hit = cache.get("analysis", key);
        if (hit.has_value()) EXPECT_EQ(*hit, value);
      }
    });
  for (std::thread& t : threads) t.join();
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "key-" + std::to_string(k);
    const auto hit = cache.get("analysis", key);
    ASSERT_TRUE(hit.has_value()) << key;
    EXPECT_EQ(*hit, "value-" + std::to_string(k));
  }
  EXPECT_EQ(cache.stats().corrupt, 0);
}

}  // namespace
}  // namespace ttdim::engine::cache
