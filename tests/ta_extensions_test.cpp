// Tests for the TA engine extensions: broadcast channels and deadlock
// detection.
#include "gtest/gtest.h"
#include "ta/network.h"

namespace ttdim::ta {
namespace {

TEST(Broadcast, SenderNeverBlocks) {
  // No enabled receiver: the send still fires (unlike binary sync).
  Network net;
  net.add_clock("x", 1);
  const int c = net.add_broadcast_channel("shout");
  Automaton s;
  s.name = "S";
  s.locations.push_back({"A", LocKind::Normal, {}});
  s.locations.push_back({"B", LocKind::Normal, {}});
  Edge e;
  e.from = 0;
  e.to = 1;
  e.sync = {c, true};
  s.edges.push_back(e);
  net.add_automaton(std::move(s));
  const ReachResult r = ZoneChecker(net).reachable(
      [](const std::vector<int>& locs, const VarStore&) {
        return locs[0] == 1;
      });
  EXPECT_TRUE(r.reachable);
}

TEST(Broadcast, AllEnabledReceiversMove) {
  Network net;
  net.add_clock("x", 1);
  const int c = net.add_broadcast_channel("shout");
  const int armed = net.add_var("armed", 1);

  Automaton sender;
  sender.name = "S";
  sender.locations.push_back({"A", LocKind::Normal, {}});
  sender.locations.push_back({"B", LocKind::Normal, {}});
  Edge se;
  se.from = 0;
  se.to = 1;
  se.sync = {c, true};
  sender.edges.push_back(se);
  net.add_automaton(std::move(sender));

  // Receiver 1: always enabled. Receiver 2: gated by `armed`.
  for (int k = 0; k < 2; ++k) {
    Automaton recv;
    recv.name = "R" + std::to_string(k);
    recv.locations.push_back({"W", LocKind::Normal, {}});
    recv.locations.push_back({"D", LocKind::Normal, {}});
    Edge re;
    re.from = 0;
    re.to = 1;
    re.sync = {c, false};
    if (k == 1)
      re.data_guard = [armed](const VarStore& vars) {
        return vars[armed] == 1;
      };
    recv.edges.push_back(re);
    net.add_automaton(std::move(recv));
  }

  // Both receivers move together with the sender.
  const ReachResult all = ZoneChecker(net).reachable(
      [](const std::vector<int>& locs, const VarStore&) {
        return locs[0] == 1 && locs[1] == 1 && locs[2] == 1;
      });
  EXPECT_TRUE(all.reachable);
  // No state where the sender moved and an enabled receiver stayed.
  const ReachResult partial = ZoneChecker(net).reachable(
      [](const std::vector<int>& locs, const VarStore&) {
        return locs[0] == 1 && (locs[1] == 0 || locs[2] == 0);
      });
  EXPECT_FALSE(partial.reachable);
}

TEST(Broadcast, DisabledReceiverStaysPut) {
  Network net;
  net.add_clock("x", 1);
  const int c = net.add_broadcast_channel("shout");
  const int armed = net.add_var("armed", 0);  // receiver gate closed

  Automaton sender;
  sender.name = "S";
  sender.locations.push_back({"A", LocKind::Normal, {}});
  sender.locations.push_back({"B", LocKind::Normal, {}});
  Edge se;
  se.from = 0;
  se.to = 1;
  se.sync = {c, true};
  sender.edges.push_back(se);
  net.add_automaton(std::move(sender));

  Automaton recv;
  recv.name = "R";
  recv.locations.push_back({"W", LocKind::Normal, {}});
  recv.locations.push_back({"D", LocKind::Normal, {}});
  Edge re;
  re.from = 0;
  re.to = 1;
  re.sync = {c, false};
  re.data_guard = [armed](const VarStore& vars) { return vars[armed] == 1; };
  recv.edges.push_back(re);
  net.add_automaton(std::move(recv));

  const ReachResult r = ZoneChecker(net).reachable(
      [](const std::vector<int>& locs, const VarStore&) {
        return locs[0] == 1 && locs[1] == 0;
      });
  EXPECT_TRUE(r.reachable);
  const ReachResult moved = ZoneChecker(net).reachable(
      [](const std::vector<int>& locs, const VarStore&) {
        return locs[1] == 1;
      });
  EXPECT_FALSE(moved.reachable);
}

TEST(Broadcast, UpdateOrderSenderThenReceivers) {
  Network net;
  net.add_clock("x", 1);
  const int c = net.add_broadcast_channel("shout");
  const int v = net.add_var("v", 0);

  Automaton sender;
  sender.name = "S";
  sender.locations.push_back({"A", LocKind::Normal, {}});
  sender.locations.push_back({"B", LocKind::Normal, {}});
  Edge se;
  se.from = 0;
  se.to = 1;
  se.sync = {c, true};
  se.update = [v](VarStore& vars) { vars[v] = 7; };
  sender.edges.push_back(se);
  net.add_automaton(std::move(sender));

  Automaton recv;
  recv.name = "R";
  recv.locations.push_back({"W", LocKind::Normal, {}});
  recv.locations.push_back({"D", LocKind::Normal, {}});
  Edge re;
  re.from = 0;
  re.to = 1;
  re.sync = {c, false};
  re.update = [v](VarStore& vars) { vars[v] *= 3; };  // sees sender's write
  recv.edges.push_back(re);
  net.add_automaton(std::move(recv));

  const ReachResult r = ZoneChecker(net).reachable(
      [v](const std::vector<int>&, const VarStore& vars) {
        return vars[v] == 21;
      });
  EXPECT_TRUE(r.reachable);
}

TEST(Broadcast, ReceiverClockGuardRejected) {
  Network net;
  const int x = net.add_clock("x", 1);
  const int c = net.add_broadcast_channel("shout");
  Automaton recv;
  recv.name = "R";
  recv.locations.push_back({"W", LocKind::Normal, {}});
  Edge re;
  re.from = 0;
  re.to = 0;
  re.sync = {c, false};
  re.clock_guards.push_back({x, Rel::Ge, 1, nullptr});
  recv.edges.push_back(re);
  EXPECT_THROW(net.add_automaton(std::move(recv)), std::logic_error);
}

// -------------------------------------------------------------- Deadlock --

TEST(Deadlock, UrgentTrapDetected) {
  // A -> U (urgent) with no way out of U: deadlock.
  Network net;
  const int x = net.add_clock("x", 2);
  Automaton a;
  a.name = "P";
  a.locations.push_back({"A", LocKind::Normal, {}});
  a.locations.push_back({"U", LocKind::Urgent, {}});
  Edge e;
  e.from = 0;
  e.to = 1;
  e.clock_guards.push_back({x, Rel::Ge, 1, nullptr});
  a.edges.push_back(e);
  net.add_automaton(std::move(a));
  const ReachResult r = ZoneChecker(net).find_deadlock();
  EXPECT_TRUE(r.reachable);
}

TEST(Deadlock, InvariantTrapDetected) {
  // Invariant x <= 2 with the only edge requiring x >= 5: time is walled
  // in and nothing can fire.
  Network net;
  const int x = net.add_clock("x", 5);
  Automaton a;
  a.name = "P";
  a.locations.push_back({"A", LocKind::Normal, {{x, Rel::Le, 2, nullptr}}});
  a.locations.push_back({"B", LocKind::Normal, {}});
  Edge e;
  e.from = 0;
  e.to = 1;
  e.clock_guards.push_back({x, Rel::Ge, 5, nullptr});
  a.edges.push_back(e);
  net.add_automaton(std::move(a));
  EXPECT_TRUE(ZoneChecker(net).find_deadlock().reachable);
}

TEST(Deadlock, IdlingIsNotDeadlock) {
  // A plain location without invariant can let time diverge: no deadlock.
  Network net;
  net.add_clock("x", 1);
  Automaton a;
  a.name = "P";
  a.locations.push_back({"A", LocKind::Normal, {}});
  net.add_automaton(std::move(a));
  EXPECT_FALSE(ZoneChecker(net).find_deadlock().reachable);
}

TEST(Deadlock, LiveTickerIsDeadlockFree) {
  Network net;
  const int x = net.add_clock("x", 1);
  Automaton t;
  t.name = "ticker";
  t.locations.push_back({"L", LocKind::Normal, {{x, Rel::Le, 1, nullptr}}});
  Edge tick;
  tick.from = 0;
  tick.to = 0;
  tick.clock_guards.push_back({x, Rel::Eq, 1, nullptr});
  tick.clock_resets.push_back(x);
  t.edges.push_back(tick);
  net.add_automaton(std::move(t));
  EXPECT_FALSE(ZoneChecker(net).find_deadlock().reachable);
}

TEST(Deadlock, SlotSystemModelIsDeadlockFree) {
  // The paper's scheduler chain must never wedge: its committed sequence
  // always completes and the sample loop always restarts. (Uses the
  // verify-layer builder through its public header.)
  // Built inline to avoid a dependency cycle in the test targets: a tiny
  // two-location handshake that is trivially live.
  Network net;
  const int x = net.add_clock("x", 1);
  const int c = net.add_channel("go");
  Automaton p;
  p.name = "P";
  p.locations.push_back({"A", LocKind::Normal, {{x, Rel::Le, 1, nullptr}}});
  p.locations.push_back({"B", LocKind::Committed, {}});
  Edge up;
  up.from = 0;
  up.to = 1;
  up.clock_guards.push_back({x, Rel::Eq, 1, nullptr});
  up.sync = {c, true};
  Edge down;
  down.from = 1;
  down.to = 0;
  down.clock_resets.push_back(x);
  p.edges.push_back(up);
  p.edges.push_back(down);
  net.add_automaton(std::move(p));
  Automaton q;
  q.name = "Q";
  q.locations.push_back({"W", LocKind::Normal, {}});
  Edge listen;
  listen.from = 0;
  listen.to = 0;
  listen.sync = {c, false};
  q.edges.push_back(listen);
  net.add_automaton(std::move(q));
  EXPECT_FALSE(ZoneChecker(net).find_deadlock().reachable);
}

}  // namespace
}  // namespace ttdim::ta
