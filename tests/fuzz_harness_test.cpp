// The soundness fuzzer's own acceptance tests: artifact round-trip and
// strict parsing, witness/hyperperiod scenario construction, report
// determinism, full tier + scenario-kind coverage of a clean campaign,
// and — the harness's reason to exist — an injected unsound admission
// verdict being caught, shrunk to a minimal population and emitted as an
// artifact that replays red.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/fuzz/artifact.h"
#include "engine/fuzz/soundness_fuzzer.h"
#include "gtest/gtest.h"
#include "sched/slot_scheduler.h"
#include "verify/discrete.h"

namespace ttdim {
namespace {

using engine::fuzz::Artifact;
using engine::fuzz::FuzzConfig;
using engine::fuzz::FuzzReport;
using engine::fuzz::ReplayResult;
using verify::AppTiming;

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

Artifact sample_artifact() {
  Artifact a;
  a.description = "round-trip sample";
  a.seed = 42;
  a.iteration = 7;
  a.scenario_kind = "burst";
  a.policy = verify::SlotPolicy::kSlackAware;
  a.max_disturbances_per_app = 2;
  a.max_states = 123456;
  a.claimed_safe = true;
  a.apps = {uniform_app("A", 2, 1, 2, 9), uniform_app("B", 1, 1, 1, 6)};
  a.scenario.disturbances = {{0, 9, 18}, {1, 7}};
  a.scenario.horizon = 25;
  a.expect_violator = -1;
  a.expect_violation_tick = -1;
  return a;
}

TEST(FuzzArtifactTest, SerializeParseRoundTripsByteExactly) {
  const Artifact a = sample_artifact();
  const std::string bytes = a.serialize();
  const Artifact back = Artifact::parse(bytes);
  EXPECT_EQ(back.serialize(), bytes);
  EXPECT_EQ(back.description, a.description);
  EXPECT_EQ(back.policy, a.policy);
  EXPECT_EQ(back.claimed_safe, a.claimed_safe);
  EXPECT_EQ(back.apps.size(), a.apps.size());
  EXPECT_EQ(back.scenario.disturbances, a.scenario.disturbances);
}

TEST(FuzzArtifactTest, RoundTripsForcedGrantsAndViolationExpectation) {
  Artifact a = sample_artifact();
  a.scenario_kind = "witness";
  a.claimed_safe = false;
  a.scenario.horizon = 4;
  a.scenario.disturbances = {{0}, {0}};
  a.scenario.forced_grants = {0, 1, -1, -1};
  a.expect_violator = 1;
  a.expect_violation_tick = 2;
  const std::string bytes = a.serialize();
  const Artifact back = Artifact::parse(bytes);
  EXPECT_EQ(back.serialize(), bytes);
  EXPECT_EQ(back.scenario.forced_grants, a.scenario.forced_grants);
  EXPECT_EQ(back.expect_violator, 1);
  EXPECT_EQ(back.expect_violation_tick, 2);
}

TEST(FuzzArtifactTest, ParserRejectsMalformedInput) {
  const std::string good = sample_artifact().serialize();
  // Wrong header magic.
  EXPECT_THROW(Artifact::parse("ttdim-nope v1\n"), std::invalid_argument);
  // Unsupported version.
  std::string bad = good;
  bad.replace(bad.find(" v1"), 3, " v9");
  EXPECT_THROW(Artifact::parse(bad), std::invalid_argument);
  // Truncation loses the trailing "end" sentinel.
  EXPECT_THROW(Artifact::parse(good.substr(0, good.size() / 2)),
               std::invalid_argument);
  // A timing table violating AppTiming::validate (t_minus of 0).
  bad = good;
  bad.replace(bad.find("tminus 1"), 8, "tminus 0");
  EXPECT_THROW(Artifact::parse(bad), std::invalid_argument);
  EXPECT_THROW(Artifact::parse(""), std::invalid_argument);
}

TEST(FuzzScenarioTest, WitnessScenarioReplaysTheViolation) {
  // Two zero-wait-tolerance applications colliding: provably unsafe, and
  // the witness must drive the runtime scheduler into the same miss.
  const std::vector<AppTiming> apps{uniform_app("U0", 0, 2, 2, 4),
                                    uniform_app("U1", 0, 2, 2, 4)};
  verify::DiscreteVerifier::Options opt;
  opt.want_witness = true;
  const verify::SlotVerdict verdict =
      verify::DiscreteVerifier(apps).verify(opt);
  ASSERT_FALSE(verdict.safe);
  const sched::Scenario sc =
      engine::fuzz::witness_scenario(verdict, apps.size());
  const sched::ScheduleResult out = sched::simulate_slot(apps, sc);
  EXPECT_TRUE(out.deadline_violated);
  EXPECT_EQ(out.violator, verdict.violator);
}

TEST(FuzzScenarioTest, HyperperiodScenarioIsMaxRateAndWellFormed) {
  const std::vector<AppTiming> apps{uniform_app("A", 2, 1, 2, 6),
                                    uniform_app("B", 1, 1, 1, 4)};
  const sched::Scenario sc = engine::fuzz::hyperperiod_scenario(apps);
  // lcm(6, 4) = 12 arrivals at exact rate from tick 0.
  EXPECT_EQ(sc.disturbances[0], (std::vector<int>{0, 6}));
  EXPECT_EQ(sc.disturbances[1], (std::vector<int>{0, 4, 8}));
  EXPECT_GT(sc.horizon, 8);
  // Safe population + well-formed stream: must simulate cleanly.
  const sched::ScheduleResult out = sched::simulate_slot(apps, sc);
  EXPECT_FALSE(out.deadline_violated);
}

FuzzConfig small_config(std::uint64_t seed) {
  FuzzConfig config;
  config.seed = seed;
  config.iterations = 8;
  config.max_apps = 4;
  return config;
}

TEST(SoundnessFuzzerTest, SameSeedYieldsByteIdenticalReports) {
  const FuzzReport first =
      engine::fuzz::run_soundness_fuzz(small_config(11));
  const FuzzReport second =
      engine::fuzz::run_soundness_fuzz(small_config(11));
  EXPECT_EQ(first.to_string(), second.to_string());
  const FuzzReport other =
      engine::fuzz::run_soundness_fuzz(small_config(12));
  EXPECT_NE(first.to_string(), other.to_string());
}

TEST(SoundnessFuzzerTest, CleanCampaignAgreesEverywhereAndCoversEverything) {
  FuzzConfig config;
  config.seed = 1;
  config.iterations = 20;
  config.solve_every = 10;
  const FuzzReport report = engine::fuzz::run_soundness_fuzz(config);
  EXPECT_EQ(report.disagreements, 0)
      << report.to_string();
  EXPECT_EQ(report.solve_checks, 2);
  // Every oracle tier and every scenario kind must have been exercised —
  // the same gate `ttdim_fuzz --require-full-coverage` enforces.
  EXPECT_TRUE(report.missing_coverage().empty()) << report.to_string();
  EXPECT_GE(report.scenario_kind_counts.size(), 8u);
}

TEST(SoundnessFuzzerTest, InjectedUnsoundVerdictIsCaughtShrunkAndReplaysRed) {
  FuzzConfig config;
  config.seed = 5;
  config.iterations = 10;
  config.inject_unsound = true;
  config.artifacts_dir =
      ::testing::TempDir() + "/ttdim_fuzz_injected_artifacts";
  const FuzzReport report = engine::fuzz::run_soundness_fuzz(config);
  ASSERT_GT(report.disagreements, 0) << report.to_string();
  ASSERT_GT(report.artifacts_written, 0) << report.to_string();
  bool saw_red = false;
  std::size_t smallest = 1000;
  for (const std::string& path : report.artifact_paths) {
    const Artifact artifact = engine::fuzz::load_artifact(path);
    smallest = std::min(smallest, artifact.apps.size());
    const ReplayResult verdict = engine::fuzz::replay(artifact);
    if (!verdict.ok) saw_red = true;
  }
  // The shrinker must reach the minimal failing shape: the injection only
  // flips populations of >= 2 applications, so a fully shrunk
  // counterexample has exactly 2.
  EXPECT_EQ(smallest, 2u);
  // A counterexample of a live (injected) bug replays red — that is what
  // makes the corpus a regression net once the artifact is checked in.
  EXPECT_TRUE(saw_red);
}

TEST(SoundnessFuzzerTest, MintedSeedCorpusSelfValidates) {
  const std::string dir = ::testing::TempDir() + "/ttdim_fuzz_minted_corpus";
  const std::vector<std::string> written =
      engine::fuzz::mint_seed_corpus(dir);
  EXPECT_GE(written.size(), 8u);
  const std::vector<std::string> listed = engine::fuzz::list_artifacts(dir);
  EXPECT_EQ(listed.size(), written.size());
  for (const std::string& path : listed) {
    const ReplayResult verdict =
        engine::fuzz::replay(engine::fuzz::load_artifact(path));
    EXPECT_TRUE(verdict.ok) << path << ": " << verdict.message;
  }
  for (const std::string& path : written) std::remove(path.c_str());
}

TEST(SoundnessFuzzerTest, WallBudgetTruncatesButNeverAltersTheTrajectory) {
  // A zero-ish budget stops after the first between-iteration check; the
  // work that did run must match the unbudgeted campaign's prefix.
  FuzzConfig budgeted = small_config(3);
  budgeted.max_seconds = 1e-9;
  const FuzzReport short_run = engine::fuzz::run_soundness_fuzz(budgeted);
  EXPECT_LT(short_run.iterations, budgeted.iterations);
  FuzzConfig exact = small_config(3);
  exact.iterations = short_run.iterations;
  const FuzzReport replayed = engine::fuzz::run_soundness_fuzz(exact);
  EXPECT_EQ(short_run.to_string(), replayed.to_string());
}

}  // namespace
}  // namespace ttdim
