// Tests for the FlexRay substrate: config validation, dynamic-segment
// arbitration, worst-case response times, and the reconfigurable
// middleware. The key property for the paper is that with a sanely sized
// dynamic segment every control message has WCRT <= 1 cycle == 1 sample,
// which is the one-sample-delay assumption behind mode ME (Eq. (4)).
#include <stdexcept>

#include "flexray/bus.h"
#include "flexray/middleware.h"
#include "gtest/gtest.h"

namespace ttdim::flexray {
namespace {

/// A config in the spirit of FlexRay 2.1 at 10 Mbit/s with a 20 ms cycle
/// matching the paper's h = 0.02 s sampling period.
BusConfig paper_config() {
  BusConfig c;
  c.static_slot_us = 50.0;
  c.static_slots = 60;     // 3 ms static segment
  c.minislot_us = 5.0;
  c.minislots = 3300;      // 16.5 ms dynamic segment
  c.nit_us = 500.0;
  return c;
}

std::vector<DynamicFrame> six_messages() {
  return {{1, "C1", 4}, {2, "C2", 4}, {3, "C3", 4},
          {4, "C4", 4}, {5, "C5", 4}, {6, "C6", 4}};
}

// ---------------------------------------------------------------- Config --

TEST(BusConfigTest, PaperConfigIsValidAndCycleMatchesSamplingPeriod) {
  const BusConfig c = paper_config();
  EXPECT_NO_THROW(c.validate());
  EXPECT_NEAR(c.cycle_us(), 20'000.0, 1e-9);  // h = 0.02 s
}

TEST(BusConfigTest, RejectsMalformedSegments) {
  BusConfig c = paper_config();
  c.static_slots = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = paper_config();
  c.minislot_us = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = paper_config();
  c.minislot_us = c.static_slot_us;  // psi must be << Psi
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = paper_config();
  c.nit_us = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

// ------------------------------------------------------------------ WCRT --

TEST(Wcrt, AllPaperMessagesFitInOneCycle) {
  const auto wcrt = dynamic_wcrt_cycles(paper_config(), six_messages());
  ASSERT_EQ(wcrt.size(), 6u);
  for (const auto& w : wcrt) {
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(*w, 1);  // the ME one-sample-delay abstraction is justified
  }
}

TEST(Wcrt, TightSegmentPushesLowPriorityToNextCycle) {
  BusConfig c = paper_config();
  c.minislots = 10;
  const std::vector<DynamicFrame> frames{{1, "hp", 6}, {2, "lp", 6}};
  const auto wcrt = dynamic_wcrt_cycles(c, frames);
  ASSERT_TRUE(wcrt[0].has_value());
  EXPECT_EQ(*wcrt[0], 1);
  ASSERT_TRUE(wcrt[1].has_value());
  EXPECT_EQ(*wcrt[1], 2);
}

TEST(Wcrt, OversizedFrameIsStarved) {
  BusConfig c = paper_config();
  c.minislots = 4;
  const auto wcrt = dynamic_wcrt_cycles(c, {{1, "huge", 5}});
  EXPECT_FALSE(wcrt[0].has_value());
}

TEST(Wcrt, DuplicateFrameIdsRejected) {
  EXPECT_THROW(
      dynamic_wcrt_cycles(paper_config(), {{1, "a", 1}, {1, "b", 1}}),
      std::invalid_argument);
}

// ------------------------------------------------------------- Simulator --

TEST(DynamicSim, PriorityOrderWithinCycle) {
  DynamicSegmentSimulator sim(paper_config(), six_messages());
  sim.make_ready("C3");
  sim.make_ready("C1");
  const auto sent = sim.step_cycle();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[0].message, "C1");  // frame id 1 wins arbitration
  EXPECT_EQ(sent[1].message, "C3");
  EXPECT_LT(sent[0].end_us, sent[1].start_us + 1e-9);
  EXPECT_FALSE(sim.is_pending("C1"));
}

TEST(DynamicSim, TransmissionTimingAccountsForIdleMinislots) {
  DynamicSegmentSimulator sim(paper_config(), six_messages());
  sim.make_ready("C2");
  const auto sent = sim.step_cycle();
  ASSERT_EQ(sent.size(), 1u);
  // Frame id 1 is silent: one idle mini-slot elapses before C2.
  const double dynamic_start = 50.0 * 60;
  EXPECT_NEAR(sent[0].start_us, dynamic_start + 1 * 5.0, 1e-9);
  EXPECT_NEAR(sent[0].end_us, dynamic_start + (1 + 4) * 5.0, 1e-9);
}

TEST(DynamicSim, DeferredFrameTransmitsNextCycle) {
  BusConfig c = paper_config();
  c.minislots = 10;
  DynamicSegmentSimulator sim(c, {{1, "hp", 6}, {2, "lp", 6}});
  sim.make_ready("hp");
  sim.make_ready("lp");
  const auto first = sim.step_cycle();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].message, "hp");
  EXPECT_TRUE(sim.is_pending("lp"));
  const auto second = sim.step_cycle();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].message, "lp");
  EXPECT_EQ(second[0].cycle, 1);
}

TEST(DynamicSim, UnknownFrameRejected) {
  DynamicSegmentSimulator sim(paper_config(), six_messages());
  EXPECT_THROW(sim.make_ready("nope"), std::invalid_argument);
}

// ------------------------------------------------------------ Middleware --

TEST(MiddlewareTest, HandoverTakesEffectNextCycle) {
  Middleware mw(paper_config(), {0, 1});
  mw.grant(0, "C1");
  EXPECT_FALSE(mw.owner_in_cycle(0, 0).has_value());  // not yet
  mw.advance_cycle();
  ASSERT_TRUE(mw.owner_in_cycle(0, 1).has_value());
  EXPECT_EQ(*mw.owner_in_cycle(0, 1), "C1");
}

TEST(MiddlewareTest, DoubleGrantWithoutReleaseRejected) {
  Middleware mw(paper_config(), {0});
  mw.grant(0, "C1");
  mw.advance_cycle();
  EXPECT_THROW(mw.grant(0, "C2"), std::logic_error);
  mw.release(0);
  EXPECT_NO_THROW(mw.grant(0, "C2"));  // release + grant in the same window
  mw.advance_cycle();
  EXPECT_EQ(*mw.owner_in_cycle(0, 2), "C2");
}

TEST(MiddlewareTest, HistoryIsPerCycleAccurate) {
  Middleware mw(paper_config(), {3});
  mw.grant(3, "C5");
  mw.advance_cycle();  // cycle 1: C5
  mw.release(3);
  mw.advance_cycle();  // cycle 2: idle
  mw.grant(3, "C4");
  mw.advance_cycle();  // cycle 3: C4
  EXPECT_FALSE(mw.owner_in_cycle(3, 0).has_value());
  EXPECT_EQ(*mw.owner_in_cycle(3, 1), "C5");
  EXPECT_FALSE(mw.owner_in_cycle(3, 2).has_value());
  EXPECT_EQ(*mw.owner_in_cycle(3, 3), "C4");
}

TEST(MiddlewareTest, UnmanagedSlotRejected) {
  Middleware mw(paper_config(), {0});
  EXPECT_THROW(mw.grant(5, "C1"), std::invalid_argument);
  EXPECT_THROW(Middleware(paper_config(), {0, 0}), std::invalid_argument);
  EXPECT_THROW(Middleware(paper_config(), {99}), std::logic_error);
}

TEST(MiddlewareTest, StaticSlotOffsetIsDeterministic) {
  const Middleware mw(paper_config(), {0, 7});
  EXPECT_NEAR(mw.static_slot_offset_us(7), 7 * 50.0, 1e-12);
  EXPECT_NEAR(mw.static_slot_offset_us(0), 0.0, 1e-12);
}

}  // namespace
}  // namespace ttdim::flexray
