// The cross-config subsumption tier: the SlotConfigKey token API, the
// SubsumptionIndex inclusion semantics (multiset subset/superset under
// byte-identical options only), consistency with the unified verdict
// store under LRU eviction, and the property the tier rests on —
// antitonicity — cross-checked against fresh DiscreteVerifier BFS
// verdicts over randomized populations. Runs in the TSan CI job.
#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "casestudy/apps.h"
#include "core/dimensioning.h"
#include "engine/analysis/analysis_cache.h"
#include "engine/batch_runner.h"
#include "engine/fingerprint.h"
#include "engine/oracle/incremental_oracle.h"
#include "engine/oracle/slot_config_key.h"
#include "engine/oracle/snapshot_cache.h"
#include "engine/oracle/subsumption_index.h"
#include "engine/oracle/verdict_cache.h"
#include "gtest/gtest.h"
#include "verify/app_timing.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {
namespace {

using verify::AppTiming;
using verify::SlotVerdict;

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

std::vector<AppTiming> random_population(std::mt19937_64& rng, int napps) {
  std::uniform_int_distribution<int> t_star_dist(2, 5);
  std::uniform_int_distribution<int> dwell_dist(1, 3);
  std::uniform_int_distribution<int> slack_dist(0, 2);
  std::vector<AppTiming> apps;
  for (int i = 0; i < napps; ++i) {
    const int t_star = t_star_dist(rng);
    const int t_minus = dwell_dist(rng);
    const int t_plus = t_minus + slack_dist(rng);
    const int r = t_star + t_plus + 1 + slack_dist(rng);
    apps.push_back(
        uniform_app("p" + std::to_string(i), t_star, t_minus, t_plus, r));
  }
  return apps;
}

// ------------------------------------------------------------- token API --

TEST(SlotPopulationTokens, DecompositionReassemblesByteIdentically) {
  const std::vector<AppTiming> apps = {uniform_app("B", 5, 1, 2, 9),
                                       uniform_app("A", 3, 2, 4, 10),
                                       uniform_app("C", 4, 2, 2, 8)};
  verify::DiscreteVerifier::Options options;
  options.max_states = 12345;
  const SlotPopulationTokens tokens = SlotConfigKey::tokens_of(apps, options);
  EXPECT_EQ(tokens.apps.size(), 3u);
  EXPECT_TRUE(std::is_sorted(tokens.apps.begin(), tokens.apps.end()));
  const SlotConfigKey direct = SlotConfigKey::of(apps, options);
  const SlotConfigKey reassembled = SlotConfigKey::of(tokens);
  EXPECT_EQ(direct.canonical, reassembled.canonical);
  EXPECT_EQ(direct.hash, reassembled.hash);
  EXPECT_EQ(direct.options_suffix(), tokens.options);
  EXPECT_EQ(tokens.options, "p=0;d=-1;s=12345");
}

TEST(SlotPopulationTokens, TokensAreOrderAndNameIndependent) {
  std::vector<AppTiming> apps = {uniform_app("A", 3, 2, 4, 10),
                                 uniform_app("B", 5, 1, 2, 9)};
  const SlotPopulationTokens forward = SlotConfigKey::tokens_of(apps, {});
  std::swap(apps[0], apps[1]);
  apps[0].name = "renamed0";
  apps[1].name = "renamed1";
  const SlotPopulationTokens backward = SlotConfigKey::tokens_of(apps, {});
  EXPECT_EQ(forward.apps, backward.apps);
  EXPECT_EQ(forward.options, backward.options);
}

// ------------------------------------------------------ index semantics --

SlotPopulationTokens tokens_for(const std::vector<AppTiming>& apps,
                                const verify::DiscreteVerifier::Options& o = {}) {
  return SlotConfigKey::tokens_of(apps, o);
}

/// The admission boolean of an inclusion answer (nullopt on no answer) —
/// the tests below mostly don't care which population matched.
std::optional<bool> answer_of(const SubsumptionIndex& index,
                              const SlotPopulationTokens& tokens) {
  const std::optional<SubsumptionIndex::ProbeAnswer> answer =
      index.probe(tokens);
  if (!answer.has_value()) return std::nullopt;
  return answer->safe;
}

TEST(SubsumptionIndex, AnswersSubsetOfSafeAndSupersetOfUnsafe) {
  SubsumptionIndex index;
  const std::vector<AppTiming> big = {uniform_app("A", 3, 2, 4, 10),
                                      uniform_app("B", 5, 1, 2, 9),
                                      uniform_app("C", 4, 2, 2, 8)};
  const std::vector<AppTiming> bad = {uniform_app("X", 2, 2, 2, 7),
                                      uniform_app("Y", 2, 2, 2, 7)};
  index.note_safe(SlotConfigKey::of(big, {}), tokens_for(big));
  index.note_unsafe(SlotConfigKey::of(bad, {}), tokens_for(bad));

  // Strict sub-multiset of the safe population (any member order).
  const std::vector<AppTiming> sub = {big[2], big[0]};
  EXPECT_EQ(answer_of(index, tokens_for(sub)), std::optional<bool>(true));
  // Equality counts as inclusion on both sides.
  EXPECT_EQ(answer_of(index, tokens_for(big)), std::optional<bool>(true));
  EXPECT_EQ(answer_of(index, tokens_for(bad)), std::optional<bool>(false));
  // Strict super-multiset of the unsafe population.
  std::vector<AppTiming> super = {bad[1], uniform_app("Z", 6, 1, 1, 12),
                                  bad[0]};
  EXPECT_EQ(answer_of(index, tokens_for(super)), std::optional<bool>(false));
  // Unrelated population: no answer.
  const std::vector<AppTiming> other = {uniform_app("Q", 6, 3, 3, 13)};
  EXPECT_EQ(answer_of(index, tokens_for(other)), std::nullopt);
  // A superset of a SAFE population tells nothing (antitonicity points
  // the other way), nor does a subset of an UNSAFE one.
  std::vector<AppTiming> safe_super = big;
  safe_super.push_back(uniform_app("Z", 6, 1, 1, 12));
  EXPECT_EQ(answer_of(index, tokens_for(safe_super)), std::nullopt);
  const std::vector<AppTiming> bad_sub = {bad[0]};
  EXPECT_EQ(answer_of(index, tokens_for(bad_sub)), std::nullopt);

  const SubsumptionStats stats = index.stats();
  EXPECT_EQ(stats.safe_entries, 1u);
  EXPECT_EQ(stats.unsafe_entries, 1u);
  EXPECT_EQ(stats.safe_hits, 2);
  EXPECT_EQ(stats.unsafe_hits, 2);
  EXPECT_EQ(stats.probes, 7);
}

TEST(SubsumptionIndex, InclusionIsMultisetAware) {
  SubsumptionIndex index;
  const AppTiming twin = uniform_app("T", 3, 2, 4, 10);
  // Safe population holds ONE copy of the twin token.
  const std::vector<AppTiming> one{twin};
  index.note_safe(SlotConfigKey::of(one, {}), tokens_for(one));
  // Two copies are NOT included in one copy: multiset, not set.
  const std::vector<AppTiming> two{twin, twin};
  EXPECT_EQ(answer_of(index, tokens_for(two)), std::nullopt);
  EXPECT_EQ(answer_of(index, tokens_for(one)), std::optional<bool>(true));
}

TEST(SubsumptionIndex, NeverMatchesAcrossDifferentVerifierOptions) {
  SubsumptionIndex index;
  const std::vector<AppTiming> pop = {uniform_app("A", 3, 2, 4, 10),
                                      uniform_app("B", 5, 1, 2, 9)};
  verify::DiscreteVerifier::Options base;
  index.note_safe(SlotConfigKey::of(pop, base), tokens_for(pop, base));

  // Identical population, but any divergence in the verdict-affecting
  // options — state budget, disturbance bound, policy — must make the
  // probe invisible to the recorded proof (the soundness guard).
  verify::DiscreteVerifier::Options budget = base;
  budget.max_states = 1000;
  EXPECT_EQ(answer_of(index, tokens_for(pop, budget)), std::nullopt);
  verify::DiscreteVerifier::Options disturb = base;
  disturb.max_disturbances_per_app = 2;
  EXPECT_EQ(answer_of(index, tokens_for(pop, disturb)), std::nullopt);
  verify::DiscreteVerifier::Options policy = base;
  policy.policy = verify::SlotPolicy::kSlackAware;
  EXPECT_EQ(answer_of(index, tokens_for(pop, policy)), std::nullopt);
  // The identical options still answer.
  EXPECT_EQ(answer_of(index, tokens_for(pop, base)), std::optional<bool>(true));
}

TEST(SubsumptionIndex, NoteRejectsOrderedPrefixKeys) {
  SubsumptionIndex index;
  const std::vector<AppTiming> pop = {uniform_app("A", 3, 2, 4, 10)};
  const SlotConfigKey ordered = SlotConfigKey::prefix_of(pop, 1, {});
  EXPECT_THROW(index.note_safe(ordered, tokens_for(pop)), std::logic_error);
  // ...and a mismatched options suffix (tokens from another group).
  verify::DiscreteVerifier::Options other;
  other.max_states = 7;
  EXPECT_THROW(
      index.note_safe(SlotConfigKey::of(pop, {}), tokens_for(pop, other)),
      std::logic_error);
}

// ------------------------------------------- consistency under eviction --

TEST(SubsumptionIndex, VerdictCacheEvictionPrunesTheSafeSide) {
  // Capacity-2 store: inserting a third verdict evicts the oldest, and
  // the eviction hook must erase its population from the index.
  VerdictCache store(2);
  SlotVerdict safe;
  safe.safe = true;
  std::vector<std::vector<AppTiming>> pops;
  for (int i = 0; i < 3; ++i)
    pops.push_back({uniform_app("E" + std::to_string(i), 3 + i, 2, 4, 20)});
  for (const std::vector<AppTiming>& pop : pops) {
    const SlotConfigKey key = SlotConfigKey::of(pop, {});
    store.subsumption().note_safe(key, tokens_for(pop));  // note-then-insert
    store.insert(key, safe);
  }
  EXPECT_EQ(store.stats().evictions, 1);
  EXPECT_EQ(store.subsumption().stats().safe_entries, 2u);
  // The evicted population (pops[0]) no longer answers; the residents do.
  EXPECT_EQ(answer_of(store.subsumption(), tokens_for(pops[0])), std::nullopt);
  EXPECT_EQ(answer_of(store.subsumption(), tokens_for(pops[1])),
            std::optional<bool>(true));
  EXPECT_EQ(answer_of(store.subsumption(), tokens_for(pops[2])),
            std::optional<bool>(true));
  // clear() drops verdicts and the whole index.
  store.clear();
  EXPECT_EQ(store.subsumption().stats().safe_entries, 0u);
  EXPECT_EQ(answer_of(store.subsumption(), tokens_for(pops[1])), std::nullopt);
}

TEST(SubsumptionIndex, UnsafeSideIsBoundedByItsOwnLru) {
  SubsumptionIndex index(2);  // unsafe capacity 2
  std::vector<std::vector<AppTiming>> pops;
  for (int i = 0; i < 3; ++i)
    pops.push_back({uniform_app("U" + std::to_string(i), 2 + i, 2, 2, 20),
                    uniform_app("V" + std::to_string(i), 2 + i, 2, 2, 20)});
  for (int i = 0; i < 2; ++i)
    index.note_unsafe(SlotConfigKey::of(pops[static_cast<size_t>(i)], {}),
                      tokens_for(pops[static_cast<size_t>(i)]));
  // Matching pops[0] refreshes its recency, so noting a third evicts
  // pops[1] — the least recently matched — not pops[0].
  EXPECT_EQ(answer_of(index, tokens_for(pops[0])), std::optional<bool>(false));
  index.note_unsafe(SlotConfigKey::of(pops[2], {}), tokens_for(pops[2]));
  EXPECT_EQ(index.stats().unsafe_entries, 2u);
  EXPECT_EQ(index.stats().unsafe_evictions, 1);
  EXPECT_EQ(answer_of(index, tokens_for(pops[1])), std::nullopt);
  EXPECT_EQ(answer_of(index, tokens_for(pops[0])), std::optional<bool>(false));
  EXPECT_EQ(answer_of(index, tokens_for(pops[2])), std::optional<bool>(false));
}

// ------------------------------------- soundness vs fresh BFS (randomized)

TEST(SubsumptionSoundness, RandomizedInclusionsAgreeWithFreshBfs) {
  // The antitonicity cross-check: whenever the tier answers a probe by
  // inclusion, a fresh from-scratch BFS of that probe must return the
  // same admission answer. Populations are generated, proved fresh and
  // noted; then random sub- and super-populations are probed.
  std::mt19937_64 rng(20260727);
  const IncrementalAdmissionOracle fresh({}, nullptr, nullptr);
  int checked = 0;
  int safe_answers = 0;
  int unsafe_answers = 0;
  for (int round = 0; round < 30; ++round) {
    SubsumptionIndex index;
    std::vector<AppTiming> base = random_population(rng, 3);
    const SlotVerdict verdict = fresh.verify(base);
    const SlotConfigKey key = SlotConfigKey::of(base, {});
    if (verdict.safe)
      index.note_safe(key, tokens_for(base));
    else
      index.note_unsafe(key, tokens_for(base));

    // Sub-populations: drop one member (every choice).
    for (size_t drop = 0; drop < base.size(); ++drop) {
      std::vector<AppTiming> sub = base;
      sub.erase(sub.begin() + static_cast<long>(drop));
      const std::optional<bool> answer = answer_of(index, tokens_for(sub));
      if (!answer.has_value()) continue;
      EXPECT_TRUE(*answer) << "only safe-side entries can cover a subset";
      EXPECT_EQ(fresh.verify(sub).safe, *answer) << "round " << round;
      ++checked;
      ++safe_answers;
    }
    // Super-populations: append a random extra member.
    std::vector<AppTiming> super = base;
    super.push_back(random_population(rng, 1).front());
    const std::optional<bool> answer = answer_of(index, tokens_for(super));
    if (answer.has_value()) {
      EXPECT_FALSE(*answer) << "only unsafe-side entries can be covered";
      EXPECT_EQ(fresh.verify(super).safe, *answer) << "round " << round;
      ++checked;
      ++unsafe_answers;
    }
  }
  // The sweep must actually exercise both directions of antitonicity.
  EXPECT_GT(checked, 10);
  EXPECT_GT(safe_answers, 0);
  EXPECT_GT(unsafe_answers, 0);
}

// ----------------------------------------------------- oracle tier order --

TEST(SubsumptionOracle, AnswersCrossConfigProbesWithoutVerifierRuns) {
  const auto store = std::make_shared<VerdictCache>();
  const IncrementalAdmissionOracle oracle({}, store, nullptr);
  const std::vector<AppTiming> chain = {uniform_app("A", 3, 2, 4, 10),
                                        uniform_app("B", 5, 1, 2, 9),
                                        uniform_app("C", 4, 2, 2, 8)};
  ASSERT_TRUE(oracle.admit(chain));  // fresh proof, noted safe
  EXPECT_EQ(oracle.misses(), 1);
  // {A, C} was never probed — no exact verdict, but it is included in
  // the proven population: answered by the tier, no verifier run.
  const std::vector<AppTiming> sub = {chain[0], chain[2]};
  ASSERT_TRUE(oracle.admit(sub));
  EXPECT_EQ(oracle.subsumption_hits(), 1);
  EXPECT_EQ(oracle.misses(), 1);  // unchanged: tier 2 answered
  // An exact repeat prefers tier 1.
  ASSERT_TRUE(oracle.admit(chain));
  EXPECT_EQ(oracle.exact_hits(), 1);
  EXPECT_EQ(oracle.subsumption_hits(), 1);

  // An unsafe population refutes its supersets through the index
  // (three tight apps: the population the witness tests pin as unsafe).
  const std::vector<AppTiming> bad = {uniform_app("X", 2, 2, 2, 7),
                                      uniform_app("Y", 2, 2, 2, 7),
                                      uniform_app("W", 2, 2, 2, 7)};
  ASSERT_FALSE(oracle.admit(bad));
  std::vector<AppTiming> bad_super = bad;
  bad_super.push_back(uniform_app("Z", 6, 1, 1, 12));
  ASSERT_FALSE(oracle.admit(bad_super));
  EXPECT_EQ(oracle.subsumption_cuts(), 1);
  // And the unsafe exact repeat is a cut too (equality is inclusion) —
  // unsafe verdicts never enter the verdict cache, so this repeat
  // previously re-proved fresh every time.
  ASSERT_FALSE(oracle.admit(bad));
  EXPECT_EQ(oracle.subsumption_cuts(), 2);
}

TEST(SubsumptionOracle, SafeHitsRefreshTheBackingVerdictsRecency) {
  // A safe population that answers tier-2 probes is never looked up
  // under its own key, so without an explicit refresh it would age to
  // the verdict store's LRU tail and be evicted first — taking its
  // index entry with it (the eviction hook) while cold exact-hit
  // entries survive. The oracle therefore touches the matched verdict
  // after every safe inclusion answer; this pins it under eviction
  // pressure in a capacity-2 store.
  const auto store = std::make_shared<VerdictCache>(2);
  const IncrementalAdmissionOracle oracle({}, store, nullptr);
  const std::vector<AppTiming> chain = {uniform_app("A", 3, 2, 4, 10),
                                        uniform_app("B", 5, 1, 2, 9),
                                        uniform_app("C", 4, 2, 2, 8)};
  ASSERT_TRUE(oracle.admit(chain));  // proved + cached + noted
  const std::vector<AppTiming> filler1 = {uniform_app("F1", 6, 1, 1, 12)};
  ASSERT_TRUE(oracle.admit(filler1));  // store now {filler1, chain}
  // The inclusion hit must move `chain` ahead of filler1 in recency...
  const std::vector<AppTiming> sub = {chain[0], chain[2]};
  ASSERT_TRUE(oracle.admit(sub));
  EXPECT_EQ(oracle.subsumption_hits(), 1);
  // ...so the next insert evicts filler1, not the hot safe population.
  const std::vector<AppTiming> filler2 = {uniform_app("F2", 7, 1, 2, 14)};
  ASSERT_TRUE(oracle.admit(filler2));
  EXPECT_EQ(store->stats().evictions, 1);
  ASSERT_TRUE(oracle.admit(sub));  // still answered by inclusion
  EXPECT_EQ(oracle.subsumption_hits(), 2);
  EXPECT_EQ(oracle.misses(), 3);  // chain, filler1, filler2 — nothing else
  EXPECT_EQ(store->subsumption().stats().safe_entries, 2u);
}

TEST(SubsumptionOracle, DisabledTierNeverTouchesTheIndex) {
  const auto store = std::make_shared<VerdictCache>();
  const IncrementalAdmissionOracle oracle({}, store, nullptr,
                                          /*subsumption=*/false);
  const std::vector<AppTiming> chain = {uniform_app("A", 3, 2, 4, 10),
                                        uniform_app("B", 5, 1, 2, 9)};
  ASSERT_TRUE(oracle.admit(chain));
  const std::vector<AppTiming> sub = {chain[0]};
  ASSERT_TRUE(oracle.admit(sub));
  EXPECT_EQ(oracle.subsumption_hits(), 0);
  EXPECT_EQ(oracle.subsumption_cuts(), 0);
  EXPECT_EQ(store->subsumption().stats().safe_entries, 0u);
  EXPECT_EQ(store->subsumption().stats().probes, 0);
  EXPECT_EQ(oracle.misses(), 2);  // both proved
}

// ------------------------------------------------- solve-level wiring --

core::AppSpec spec_of(const casestudy::App& app, int min_interarrival) {
  return core::AppSpec{app.name + "_r" + std::to_string(min_interarrival),
                       app.plant,
                       app.kt,
                       app.ke,
                       min_interarrival,
                       app.settling_requirement};
}

std::vector<core::AppSpec> case_study_specs() {
  std::vector<core::AppSpec> specs;
  for (const casestudy::App& app : casestudy::all_apps())
    specs.push_back({app.name, app.plant, app.kt, app.ke,
                     app.min_interarrival, app.settling_requirement});
  return specs;
}

TEST(SubsumptionSolve, OnOffSerialParallelFingerprintIdentically) {
  // The tentpole acceptance property: byte-identical solve fingerprints
  // with the subsumption tier on and off, serial and parallel — even
  // with a shared verdict store, where tier-2 answers depend on batch
  // interleaving (every answer is sound, so the result never does).
  // The job list is built to exercise the tier: a repeat (its unsafe
  // probe becomes a cut), and a superset of the proven-unsafe triple.
  const casestudy::App app = casestudy::c6();
  const std::vector<core::AppSpec> triple = {spec_of(app, 60), spec_of(app, 80),
                                             spec_of(app, 100)};
  std::vector<core::AppSpec> quad = triple;
  quad.push_back(spec_of(app, 40));
  std::vector<std::string> prints;
  for (const bool subsumption : {true, false}) {
    for (const int threads : {1, 4}) {
      const auto verdicts = std::make_shared<VerdictCache>();
      std::vector<BatchJob> jobs;
      for (const std::vector<core::AppSpec>& specs : {triple, triple, quad}) {
        BatchJob job;
        job.specs = specs;
        job.options.verdict_cache = verdicts;
        job.options.subsumption_admission = subsumption;
        jobs.push_back(std::move(job));
      }
      const std::vector<BatchOutcome> outcomes =
          BatchRunner(threads).solve_all(jobs);
      std::string print;
      SolveStats total;
      for (const BatchOutcome& outcome : outcomes) {
        ASSERT_TRUE(outcome.ok()) << outcome.error;
        print += fingerprint(*outcome.solution);
        total = total + outcome.solution->stats;
      }
      if (!subsumption) {
        EXPECT_EQ(total.subsumption_hits + total.subsumption_cuts, 0)
            << "disabled tier must never answer";
      } else if (threads == 1) {
        // Serial, shared store: the repeated triple's unsafe probe and
        // the quad's superset probe are both answered by inclusion.
        EXPECT_GE(total.subsumption_cuts, 2);
      }
      prints.push_back(std::move(print));
    }
  }
  for (size_t i = 1; i < prints.size(); ++i) EXPECT_EQ(prints[0], prints[i]);
}

TEST(SubsumptionSolve, WarmSharedCacheAnswersNeverSeenConfigs) {
  // The cross-config payoff on the real case study: solve the six-app
  // system once into shared caches, then solve the five-app variant
  // without C6. Its first-fit walk poses populations that were never
  // probed exactly, yet every one is included in (or includes) a proven
  // population — the whole mapping phase needs ZERO verifier runs. With
  // the tier disabled the same warm solve must prove the never-seen
  // probes fresh; that delta is the "fewer fresh-BFS probes" acceptance
  // criterion, counted by the new SolveStats counters.
  const std::vector<core::AppSpec> specs = case_study_specs();
  std::vector<core::AppSpec> five = specs;
  five.pop_back();  // drop C6

  core::SolveOptions shared;
  shared.verdict_cache = std::make_shared<VerdictCache>();
  shared.snapshot_cache = std::make_shared<SnapshotCache>();
  shared.analysis_cache = std::make_shared<engine::analysis::AnalysisCache>();
  const core::Solution warm6 = core::solve(specs, shared);
  ASSERT_GT(warm6.stats.cache_misses, 0);  // the cold solve proved things

  const core::Solution on = core::solve(five, shared);
  EXPECT_GT(on.stats.subsumption_hits, 0);
  EXPECT_GT(on.stats.subsumption_cuts, 0);
  EXPECT_EQ(on.stats.cache_misses, 0) << "no verifier run at all";
  EXPECT_EQ(on.stats.oracle_calls,
            on.stats.cache_hits + on.stats.subsumption_hits +
                on.stats.subsumption_cuts + on.stats.cache_misses);

  // Tier off, same warm caches (the tier-on solve mutated nothing: its
  // inclusion answers are never cached or noted): the never-seen probes
  // now cost fresh verifier runs.
  core::SolveOptions off = shared;
  off.subsumption_admission = false;
  const core::Solution reference = core::solve(five, off);
  EXPECT_EQ(reference.stats.subsumption_hits, 0);
  EXPECT_GT(reference.stats.cache_misses, on.stats.cache_misses);

  // And the result is the same dimensioning either way — also against a
  // cold solve that never saw the shared caches (private verdict/
  // snapshot caches; the analysis cache is shared to keep the test
  // fast, it cannot affect the result).
  core::SolveOptions cold;
  cold.analysis_cache = shared.analysis_cache;
  const core::Solution independent = core::solve(five, cold);
  EXPECT_EQ(fingerprint(on), fingerprint(reference));
  EXPECT_EQ(fingerprint(on), fingerprint(independent));
}

// -------------------------------------------------- concurrency (TSan) --

TEST(SubsumptionConcurrency, SharedStoreHammeredFromManyThreads) {
  // Oracles sharing one small verdict store: concurrent notes, probes,
  // inserts and hook-driven erasures must be race-free (run under TSan
  // in CI). Small capacity keeps the eviction hook hot.
  const auto store = std::make_shared<VerdictCache>(8);
  constexpr int kThreads = 4;
  std::atomic<int> start{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&store, &start, w] {
      const IncrementalAdmissionOracle oracle({}, store, nullptr);
      std::mt19937_64 rng(1000 + w);
      start.fetch_add(1);
      while (start.load() < kThreads) {
      }
      for (int round = 0; round < 12; ++round) {
        std::vector<AppTiming> pop = random_population(rng, 3);
        for (size_t n = 1; n <= pop.size(); ++n) {
          const std::vector<AppTiming> probe(pop.begin(),
                                             pop.begin() + static_cast<long>(n));
          (void)oracle.admit(probe);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  // Index and store stayed mutually consistent: every safe entry the
  // index holds groups under the one options suffix used here, and the
  // safe side never exceeds what the store has ever admitted.
  const SubsumptionStats stats = store->subsumption().stats();
  EXPECT_LE(stats.safe_entries,
            static_cast<std::size_t>(store->stats().insertions));
  EXPECT_LE(store->stats().size, 8u);
}

}  // namespace
}  // namespace ttdim::engine::oracle
