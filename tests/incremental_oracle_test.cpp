// The incremental admission oracle: exact-hit / prefix-extension /
// fresh-proof behaviour (the subsumption tier between the first two has
// its own suite, tests/subsumption_test.cpp — first-fit chains grow
// supersets of safe populations, which inclusion cannot answer, so the
// counters here are unchanged by it), snapshot-cache accounting, and the
// property everything rests on — incremental and from-scratch admission
// being observably identical, from single probes up to whole solves
// (verdicts, dwell tables, solve fingerprints; serial and parallel).
#include <memory>
#include <random>
#include <vector>

#include "casestudy/apps.h"
#include "engine/batch_runner.h"
#include "engine/fingerprint.h"
#include "engine/oracle/incremental_oracle.h"
#include "engine/oracle/snapshot_cache.h"
#include "engine/oracle/verdict_cache.h"
#include "gtest/gtest.h"
#include "verify/app_timing.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {
namespace {

using verify::AppTiming;
using verify::SlotVerdict;

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

/// Seeded generator of small valid app populations (kept tiny so a full
/// incremental-vs-fresh sweep stays fast).
std::vector<AppTiming> random_chain(std::mt19937_64& rng, int napps) {
  std::uniform_int_distribution<int> t_star_dist(2, 5);
  std::uniform_int_distribution<int> dwell_dist(1, 3);
  std::uniform_int_distribution<int> slack_dist(0, 2);
  std::vector<AppTiming> apps;
  for (int i = 0; i < napps; ++i) {
    const int t_star = t_star_dist(rng);
    const int t_minus = dwell_dist(rng);
    const int t_plus = t_minus + slack_dist(rng);
    // r must exceed both T*w and the longest TT episode (validate()).
    const int r = t_star + t_plus + 1 + slack_dist(rng);
    apps.push_back(
        uniform_app("g" + std::to_string(i), t_star, t_minus, t_plus, r));
  }
  return apps;
}

IncrementalAdmissionOracle make_oracle() {
  return IncrementalAdmissionOracle({}, std::make_shared<VerdictCache>(),
                                    std::make_shared<SnapshotCache>());
}

// ------------------------------------------------------------ the tiers --

TEST(IncrementalOracle, ProbeChainUsesExactPrefixAndFreshTiers) {
  const IncrementalAdmissionOracle oracle = make_oracle();
  const std::vector<AppTiming> chain = {uniform_app("A", 3, 2, 4, 10),
                                        uniform_app("B", 5, 1, 2, 9),
                                        uniform_app("C", 4, 2, 2, 8)};
  // First-fit style growth: {A}, {A,B}, {A,B,C}.
  for (size_t n = 1; n <= chain.size(); ++n) {
    const std::vector<AppTiming> probe(chain.begin(),
                                       chain.begin() + static_cast<long>(n));
    ASSERT_TRUE(oracle.admit(probe)) << n;
  }
  EXPECT_EQ(oracle.calls(), 3);
  EXPECT_EQ(oracle.exact_hits(), 0);
  EXPECT_EQ(oracle.misses(), 3);
  // {A} proves fresh (tier 4); {A,B} and {A,B,C} extend the previous
  // probe's snapshot (tier 3).
  EXPECT_EQ(oracle.prefix_hits(), 2);
  EXPECT_GT(oracle.states_reused(), 0);
  EXPECT_GT(oracle.states_extended(), 0);

  // Exact repeats — any member order — are tier-1 hits.
  std::vector<AppTiming> permuted = {chain[2], chain[0], chain[1]};
  EXPECT_TRUE(oracle.admit(permuted));
  EXPECT_EQ(oracle.exact_hits(), 1);
  EXPECT_EQ(oracle.snapshot_cache()->stats().insertions, 3);
}

TEST(IncrementalOracle, VerdictsMatchFreshAcrossGeneratedChains) {
  std::mt19937_64 rng(20260727);
  const IncrementalAdmissionOracle fresh({}, nullptr, nullptr);
  int safe_seen = 0;
  int unsafe_seen = 0;
  for (int round = 0; round < 25; ++round) {
    const IncrementalAdmissionOracle oracle = make_oracle();
    const std::vector<AppTiming> chain = random_chain(rng, 3);
    for (size_t n = 1; n <= chain.size(); ++n) {
      const std::vector<AppTiming> probe(chain.begin(),
                                         chain.begin() + static_cast<long>(n));
      const SlotVerdict reference = fresh.verify(probe);
      const SlotVerdict incremental = oracle.verify(probe);
      if (reference.safe) {
        // Safe proofs are exhaustive: seeded or not, they count exactly
        // the reachable set — byte-identical verdicts.
        EXPECT_EQ(incremental, reference) << "round " << round << " n " << n;
        ++safe_seen;
      } else {
        // Unsafe searches stop at the first violation found; only the
        // admission answer is pinned.
        EXPECT_FALSE(incremental.safe) << "round " << round << " n " << n;
        ++unsafe_seen;
      }
    }
  }
  // The generator must exercise both verdicts or the sweep proves little.
  EXPECT_GT(safe_seen, 0);
  EXPECT_GT(unsafe_seen, 0);
}

TEST(IncrementalOracle, WitnessQueriesBypassBothCaches) {
  verify::DiscreteVerifier::Options want;
  want.want_witness = true;
  const auto verdicts = std::make_shared<VerdictCache>();
  const auto snapshots = std::make_shared<SnapshotCache>();
  const IncrementalAdmissionOracle oracle(want, verdicts, snapshots);
  const std::vector<AppTiming> config{uniform_app("A", 2, 2, 2, 7),
                                      uniform_app("B", 2, 2, 2, 7),
                                      uniform_app("C", 2, 2, 2, 7)};
  const SlotVerdict v1 = oracle.verify(config);
  EXPECT_FALSE(v1.safe);
  EXPECT_FALSE(v1.witness.empty());
  EXPECT_EQ(oracle.verify(config), v1);  // deterministic fresh re-proof
  EXPECT_EQ(oracle.exact_hits(), 0);
  EXPECT_EQ(verdicts->stats().insertions, 0);
  EXPECT_EQ(snapshots->stats().insertions, 0);
}

TEST(IncrementalOracle, NullCachesVerifyFreshEveryTime) {
  const IncrementalAdmissionOracle oracle({}, nullptr, nullptr);
  const std::vector<AppTiming> config{uniform_app("A", 3, 2, 4, 10)};
  const SlotVerdict v1 = oracle.verify(config);
  EXPECT_EQ(oracle.verify(config), v1);
  EXPECT_EQ(oracle.exact_hits(), 0);
  EXPECT_EQ(oracle.prefix_hits(), 0);
  EXPECT_EQ(oracle.misses(), 2);
  EXPECT_EQ(oracle.states_explored(), 2 * v1.states_explored);
}

// -------------------------------------------------------- SnapshotCache --

verify::ExplorationState snapshot_of(size_t napps, size_t states) {
  verify::ExplorationState s;
  s.napps = napps;
  s.packed.assign(3 * napps * states, 0);
  return s;
}

TEST(SnapshotCache, EvictsLeastRecentlyUsedPastByteBudget) {
  SnapshotCache cache(4096);
  const verify::DiscreteVerifier::Options options;
  const std::vector<AppTiming> apps{uniform_app("A", 3, 2, 4, 10),
                                    uniform_app("B", 5, 1, 2, 9),
                                    uniform_app("C", 4, 2, 2, 8)};
  const SlotConfigKey k1 = SlotConfigKey::prefix_of(apps, 1, options);
  const SlotConfigKey k2 = SlotConfigKey::prefix_of(apps, 2, options);
  const SlotConfigKey k3 = SlotConfigKey::prefix_of(apps, 3, options);
  cache.insert(k1, snapshot_of(1, 500));   // ~1.6 KB
  cache.insert(k2, snapshot_of(2, 250));   // ~1.6 KB
  ASSERT_NE(cache.lookup(k1), nullptr);    // k1 now most recent
  cache.insert(k3, snapshot_of(3, 200));   // ~1.9 KB -> evicts k2
  EXPECT_EQ(cache.lookup(k2), nullptr);
  EXPECT_NE(cache.lookup(k1), nullptr);
  EXPECT_NE(cache.lookup(k3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_LE(cache.stats().bytes, cache.stats().byte_budget);
}

TEST(SnapshotCache, OversizedSnapshotIsDroppedNotInserted) {
  SnapshotCache cache(1024);
  const std::vector<AppTiming> apps{uniform_app("A", 3, 2, 4, 10)};
  const SlotConfigKey key = SlotConfigKey::prefix_of(apps, 1, {});
  cache.insert(key, snapshot_of(1, 10'000));  // 30 KB >> budget
  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SnapshotCache, EvictionNeverInvalidatesAHandedOutSnapshot) {
  SnapshotCache cache(4096);
  const std::vector<AppTiming> apps{uniform_app("A", 3, 2, 4, 10),
                                    uniform_app("B", 5, 1, 2, 9)};
  const SlotConfigKey k1 = SlotConfigKey::prefix_of(apps, 1, {});
  cache.insert(k1, snapshot_of(1, 500));
  const std::shared_ptr<const verify::ExplorationState> held =
      cache.lookup(k1);
  ASSERT_NE(held, nullptr);
  cache.insert(SlotConfigKey::prefix_of(apps, 2, {}),
               snapshot_of(2, 600));  // evicts k1
  EXPECT_EQ(cache.lookup(k1), nullptr);
  EXPECT_EQ(held->state_count(), 500u);  // still alive for the holder
  cache.clear();
  EXPECT_EQ(held->state_count(), 500u);
}

// ------------------------------------- solve-level equivalence (end-to-end)

core::AppSpec spec_of(const casestudy::App& app, int min_interarrival) {
  core::AppSpec spec{app.name + "_r" + std::to_string(min_interarrival),
                     app.plant,
                     app.kt,
                     app.ke,
                     min_interarrival,
                     app.settling_requirement};
  return spec;
}

/// Two three-app systems sharing slots: cheap to analyse (one-state
/// cruise-controller plant) yet with a non-trivial first-fit walk.
std::vector<BatchJob> multi_app_jobs() {
  std::vector<BatchJob> jobs;
  for (const int base : {60, 90}) {
    BatchJob job;
    const casestudy::App& app = casestudy::c6();
    job.specs = {spec_of(app, base), spec_of(app, base + 20),
                 spec_of(app, base + 40)};
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(IncrementalSolve, OnOffSerialParallelFingerprintIdentically) {
  // The satellite acceptance property: identical verdicts (slot
  // assignments), dwell tables and solve fingerprints with
  // incremental_admission on and off, serial and parallel.
  std::vector<BatchJob> on = multi_app_jobs();
  std::vector<BatchJob> off = multi_app_jobs();
  for (BatchJob& job : off) job.options.incremental_admission = false;
  const std::vector<BatchOutcome> on_serial = BatchRunner(1).solve_all(on);
  const std::vector<BatchOutcome> on_parallel = BatchRunner(4).solve_all(on);
  const std::vector<BatchOutcome> off_serial = BatchRunner(1).solve_all(off);
  const std::vector<BatchOutcome> off_parallel = BatchRunner(4).solve_all(off);
  for (size_t i = 0; i < on.size(); ++i) {
    ASSERT_TRUE(on_serial[i].ok()) << on_serial[i].error;
    ASSERT_TRUE(off_serial[i].ok()) << off_serial[i].error;
    const core::Solution& a = *on_serial[i].solution;
    const core::Solution& b = *off_serial[i].solution;
    for (size_t k = 0; k < a.apps.size(); ++k) {
      EXPECT_EQ(a.apps[k].timing.t_minus, b.apps[k].timing.t_minus);
      EXPECT_EQ(a.apps[k].timing.t_plus, b.apps[k].timing.t_plus);
    }
    EXPECT_EQ(a.proposed.slots, b.proposed.slots);
    const std::string print = fingerprint(a);
    EXPECT_EQ(print, fingerprint(b)) << "job " << i;
    EXPECT_EQ(print, fingerprint(*on_parallel[i].solution)) << "job " << i;
    EXPECT_EQ(print, fingerprint(*off_parallel[i].solution)) << "job " << i;
    // The incremental runs really exercised the prefix tier...
    EXPECT_GT(a.stats.prefix_hits + a.stats.cache_hits, 0) << "job " << i;
    // ...and the disabled runs never touched it.
    EXPECT_EQ(b.stats.prefix_hits, 0) << "job " << i;
    EXPECT_EQ(b.stats.states_reused, 0) << "job " << i;
  }
}

TEST(IncrementalSolve, SharedSnapshotCacheReusesPrefixesAcrossSolves) {
  const auto snapshots = std::make_shared<SnapshotCache>();
  std::vector<BatchJob> jobs = multi_app_jobs();
  for (BatchJob& job : jobs) job.options.snapshot_cache = snapshots;
  // Each job twice: the second pass re-proves nothing it can extend —
  // verdict caches are per-solve here, so reuse comes from the shared
  // snapshot tier alone.
  const std::vector<BatchJob> copy = jobs;
  jobs.insert(jobs.end(), copy.begin(), copy.end());
  const std::vector<BatchOutcome> outcomes = BatchRunner(1).solve_all(jobs);
  for (const BatchOutcome& outcome : outcomes)
    ASSERT_TRUE(outcome.ok()) << outcome.error;
  for (size_t i = 0; i < copy.size(); ++i) {
    const core::Solution& first = *outcomes[i].solution;
    const core::Solution& second = *outcomes[i + copy.size()].solution;
    EXPECT_EQ(fingerprint(first), fingerprint(second));
    // Repeated safe probes are answered from their full-length ordered
    // snapshots without a search — exact hits despite the per-solve
    // verdict caches — so the repeat explores strictly fewer states.
    EXPECT_GT(second.stats.cache_hits, 0);
    EXPECT_LT(second.stats.verifier_states, first.stats.verifier_states);
  }
  EXPECT_GT(snapshots->stats().hits, 0);
}

}  // namespace
}  // namespace ttdim::engine::oracle
