// Tests for the runtime slot scheduler and the baseline [9] analysis.
#include <stdexcept>

#include "gtest/gtest.h"
#include "sched/baseline.h"
#include "sched/slot_scheduler.h"

namespace ttdim::sched {
namespace {

AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

// ------------------------------------------------------------- Scheduler --

TEST(SlotScheduler, SingleAppGetsSlotImmediately) {
  const std::vector<AppTiming> apps{uniform_app("A", 2, 2, 4, 10)};
  const ScheduleResult r = simulate_slot(apps, {{{3}}, 20});
  EXPECT_FALSE(r.deadline_violated);
  ASSERT_GE(r.events.size(), 2u);
  EXPECT_EQ(r.events[0].kind, SlotEvent::Kind::Grant);
  EXPECT_EQ(r.events[0].tick, 3);
  EXPECT_EQ(r.events[0].wait, 0);
  // Alone, the app holds until T+dw = 4 and is evicted.
  EXPECT_EQ(r.events[1].kind, SlotEvent::Kind::Evict);
  EXPECT_EQ(r.events[1].tick, 3 + 4);
  // Occupancy: ticks 3..6 inclusive.
  for (int t = 3; t < 7; ++t) EXPECT_EQ(r.occupant[static_cast<size_t>(t)], 0);
  EXPECT_EQ(r.occupant[7], -1);
}

TEST(SlotScheduler, SimultaneousDisturbanceEdfTieBreaksByIndex) {
  const std::vector<AppTiming> apps{uniform_app("A", 3, 1, 2, 12),
                                    uniform_app("B", 3, 1, 2, 12)};
  const ScheduleResult r = simulate_slot(apps, {{{0}, {0}}, 24});
  EXPECT_FALSE(r.deadline_violated);
  // A (index 0) wins the tie; B is served after A's minimum dwell.
  EXPECT_EQ(r.events[0].kind, SlotEvent::Kind::Grant);
  EXPECT_EQ(r.events[0].app, 0);
  // A is preempted exactly at T-dw = 1 because B is waiting.
  EXPECT_EQ(r.events[1].kind, SlotEvent::Kind::Preempt);
  EXPECT_EQ(r.events[1].tick, 1);
  EXPECT_EQ(r.events[2].kind, SlotEvent::Kind::Grant);
  EXPECT_EQ(r.events[2].app, 1);
  EXPECT_EQ(r.events[2].wait, 1);
}

TEST(SlotScheduler, EarlierDeadlineWinsOverIndex) {
  // B has the tighter budget, so B goes first despite the higher index.
  const std::vector<AppTiming> apps{uniform_app("A", 5, 1, 2, 14),
                                    uniform_app("B", 1, 1, 2, 14)};
  const ScheduleResult r = simulate_slot(apps, {{{0}, {0}}, 28});
  EXPECT_FALSE(r.deadline_violated);
  EXPECT_EQ(r.events[0].app, 1);
}

TEST(SlotScheduler, UnpreemptedOccupantRunsToTplus) {
  const std::vector<AppTiming> apps{uniform_app("A", 2, 1, 5, 10),
                                    uniform_app("B", 8, 1, 5, 20)};
  // B arrives long after A finished: no preemption pressure.
  const ScheduleResult r = simulate_slot(apps, {{{0}, {9}}, 20});
  EXPECT_FALSE(r.deadline_violated);
  EXPECT_EQ(r.events[1].kind, SlotEvent::Kind::Evict);
  EXPECT_EQ(r.events[1].tick, 5);  // held T+dw = 5
}

TEST(SlotScheduler, DeadlineViolationDetected) {
  // B (tighter budget) wins the grant and is non-preemptable for 3
  // samples, so A (budget 2) starves.
  const std::vector<AppTiming> apps{uniform_app("A", 2, 3, 4, 12),
                                    uniform_app("B", 1, 3, 4, 12)};
  const ScheduleResult r = simulate_slot(apps, {{{0}, {0}}, 24});
  EXPECT_TRUE(r.deadline_violated);
  EXPECT_EQ(r.events[0].app, 1);  // B granted first
  EXPECT_EQ(r.violator, 0);       // A starves behind B's minimum dwell
  EXPECT_EQ(r.violation_tick, 3);
}

TEST(SlotScheduler, TtMaskMatchesOccupancy) {
  const std::vector<AppTiming> apps{uniform_app("A", 3, 1, 2, 12),
                                    uniform_app("B", 3, 1, 2, 12)};
  const ScheduleResult r = simulate_slot(apps, {{{0}, {0}}, 24});
  for (int t = 0; t < 24; ++t) {
    const int occ = r.occupant[static_cast<size_t>(t)];
    for (size_t i = 0; i < apps.size(); ++i)
      EXPECT_EQ(r.tt_mask[i][static_cast<size_t>(t)],
                occ == static_cast<int>(i))
          << "t=" << t;
  }
}

TEST(SlotScheduler, ScenarioValidation) {
  const std::vector<AppTiming> apps{uniform_app("A", 2, 2, 4, 10)};
  EXPECT_THROW(static_cast<void>(simulate_slot(apps, {{{-1}}, 20})),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(simulate_slot(apps, {{{25}}, 20})),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(simulate_slot(apps, {{{0, 5}}, 20})),
               std::invalid_argument);  // closer than r = 10
  EXPECT_THROW(static_cast<void>(simulate_slot(apps, {{{0}, {0}}, 20})),
               std::logic_error);  // scenario arity mismatch
}

TEST(SlotScheduler, SporadicRepetitionIsHandled) {
  const std::vector<AppTiming> apps{uniform_app("A", 2, 2, 4, 10)};
  const ScheduleResult r = simulate_slot(apps, {{{0, 10, 20}}, 40});
  EXPECT_FALSE(r.deadline_violated);
  int grants = 0;
  for (const SlotEvent& e : r.events)
    if (e.kind == SlotEvent::Kind::Grant) ++grants;
  EXPECT_EQ(grants, 3);
}

TEST(SlotScheduler, DescribeEventsMentionsAppNames) {
  const std::vector<AppTiming> apps{uniform_app("Alpha", 2, 2, 4, 10)};
  const ScheduleResult r = simulate_slot(apps, {{{0}}, 12});
  const std::string text = r.describe_events(apps);
  EXPECT_NE(text.find("grant Alpha"), std::string::npos);
  EXPECT_NE(text.find("evict Alpha"), std::string::npos);
}

// -------------------------------------------------------------- Baseline --

TEST(Baseline, SingleAppAlwaysSchedulable) {
  const std::vector<BaselineApp> apps{{"A", 9, 11, 25}};
  for (auto strategy : {BaselineStrategy::kNonPreemptiveDm,
                        BaselineStrategy::kDelayedRequests}) {
    const BaselineAnalysis r = analyze_baseline_slot(apps, strategy);
    EXPECT_TRUE(r.schedulable);
    EXPECT_EQ(r.worst_wait[0], 0);
  }
}

TEST(Baseline, BlockingCountsLowerPriorityHold) {
  // hp (budget 11) is blocked by the lp hold of 10 samples.
  const std::vector<BaselineApp> apps{{"hp", 9, 11, 25}, {"lp", 10, 12, 25}};
  const BaselineAnalysis np =
      analyze_baseline_slot(apps, BaselineStrategy::kNonPreemptiveDm);
  EXPECT_TRUE(np.schedulable);
  EXPECT_EQ(np.worst_wait[0], 10);  // B = H_lp
  EXPECT_EQ(np.worst_wait[1], 9);   // interference of one hp hold
}

TEST(Baseline, DelayedRequestsShrinkBlocking) {
  const std::vector<BaselineApp> apps{{"hp", 9, 10, 25}, {"lp", 10, 12, 25}};
  const BaselineAnalysis np =
      analyze_baseline_slot(apps, BaselineStrategy::kNonPreemptiveDm);
  const BaselineAnalysis delayed =
      analyze_baseline_slot(apps, BaselineStrategy::kDelayedRequests);
  // Under strategy 1 hp misses its budget (10 > 10 - 1); strategy 2
  // rescues it.
  EXPECT_FALSE(np.schedulable);
  EXPECT_TRUE(delayed.schedulable);
  EXPECT_EQ(delayed.worst_wait[0], 1);
}

TEST(Baseline, InterferenceAndBlockingInteract) {
  // lp waits out one hp hold (the recurrence converges at 5 because a
  // second hp instance cannot arrive within the 6-sample window); hp
  // itself is unschedulable because lp's non-preemptive 5-sample hold
  // exceeds hp's 4-sample budget.
  const std::vector<BaselineApp> apps{{"hp", 5, 4, 6}, {"lp", 5, 20, 30}};
  const BaselineAnalysis np =
      analyze_baseline_slot(apps, BaselineStrategy::kNonPreemptiveDm);
  EXPECT_FALSE(np.schedulable);
  EXPECT_EQ(np.worst_wait[0], 5);  // B = H_lp > D_hp - 1
  EXPECT_EQ(np.worst_wait[1], 5);  // one hp hold
  // Delayed requests remove the blocking and make the pair schedulable.
  const BaselineAnalysis delayed =
      analyze_baseline_slot(apps, BaselineStrategy::kDelayedRequests);
  EXPECT_TRUE(delayed.schedulable);
  EXPECT_EQ(delayed.worst_wait[0], 1);
}

TEST(Baseline, UnschedulableDivergenceHandled) {
  // hp consumes the slot entirely: lp can never be admitted.
  const std::vector<BaselineApp> apps{{"hp", 6, 4, 6}, {"lp", 2, 50, 60}};
  const BaselineAnalysis r =
      analyze_baseline_slot(apps, BaselineStrategy::kNonPreemptiveDm);
  EXPECT_FALSE(r.schedulable);
}

TEST(Baseline, MakeBaselineAppUsesJtAndTstar) {
  AppTiming t;
  t.name = "X";
  t.t_star_w = 3;
  t.t_minus = {1, 1, 1, 1};
  t.t_plus = {2, 2, 2, 2};
  t.min_interarrival = 20;
  const BaselineApp b = make_baseline_app(t, 9);
  EXPECT_EQ(b.hold, 9);
  EXPECT_EQ(b.wait_budget, 3);
  EXPECT_EQ(b.min_interarrival, 20);
  EXPECT_THROW(make_baseline_app(t, 0), std::logic_error);
}

}  // namespace
}  // namespace ttdim::sched
