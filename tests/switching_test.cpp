// Tests for the dwell-time analysis, anchored on the paper's Table 1 and
// Fig. 4 where the paper states concrete values.
#include <stdexcept>

#include "casestudy/apps.h"
#include "gtest/gtest.h"
#include "switching/dwell.h"

namespace ttdim::switching {
namespace {

using casestudy::App;
using casestudy::kSettlingTol;

DwellAnalysisSpec spec_for(const App& app) {
  DwellAnalysisSpec spec;
  spec.settling_requirement = app.settling_requirement;
  spec.settling = control::SettlingSpec{kSettlingTol, 3000};
  return spec;
}

DwellTables tables_for(const App& app) {
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  return compute_dwell_tables(loop, spec_for(app));
}

// ------------------------------------------------------------ Validation --

TEST(DwellSpec, RejectsNonPositiveRequirement) {
  const App app = casestudy::c1();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  DwellAnalysisSpec spec = spec_for(app);
  spec.settling_requirement = 0;
  EXPECT_THROW(compute_dwell_tables(loop, spec), std::invalid_argument);
}

TEST(DwellSpec, RejectsBadGranularity) {
  const App app = casestudy::c1();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  DwellAnalysisSpec spec = spec_for(app);
  spec.tw_granularity = 0;
  EXPECT_THROW(compute_dwell_tables(loop, spec), std::invalid_argument);
}

TEST(DwellSpec, RejectsShortHorizon) {
  const App app = casestudy::c1();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  DwellAnalysisSpec spec = spec_for(app);
  spec.settling.horizon = 20;
  EXPECT_THROW(compute_dwell_tables(loop, spec), std::invalid_argument);
}

TEST(DwellSpec, RejectsRequirementBelowJT) {
  // J* below the dedicated-slot settling time can never be met.
  const App app = casestudy::c1();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  DwellAnalysisSpec spec = spec_for(app);
  spec.settling_requirement = 2;
  EXPECT_THROW(compute_dwell_tables(loop, spec), std::invalid_argument);
}

// ----------------------------------------------------- Table 1 anchoring --

TEST(Table1, C1TimingValues) {
  // Paper Table 1 for C1: JT = 9, JE = 35, T*w = 11.
  const DwellTables t = tables_for(casestudy::c1());
  ASSERT_TRUE(t.feasible());
  EXPECT_NEAR(t.settling_tt, 9, 1);
  EXPECT_NEAR(t.settling_et, 35, 2);
  EXPECT_NEAR(t.t_star_w, 11, 1);
  EXPECT_EQ(t.entries(), t.t_star_w + 1);
}

TEST(Table1, C1DwellRangesMatchFig4Scale) {
  // Fig. 4: T-dw within [3, 5], T+dw within [4, 6] over all waits.
  const DwellTables t = tables_for(casestudy::c1());
  ASSERT_TRUE(t.feasible());
  for (int i = 0; i < t.entries(); ++i) {
    EXPECT_GE(t.t_minus[static_cast<size_t>(i)], 2) << "Tw=" << i;
    EXPECT_LE(t.t_minus[static_cast<size_t>(i)], 6) << "Tw=" << i;
    EXPECT_GE(t.t_plus[static_cast<size_t>(i)], 3) << "Tw=" << i;
    EXPECT_LE(t.t_plus[static_cast<size_t>(i)], 7) << "Tw=" << i;
  }
}

TEST(Table1, C1ZeroWaitFullPerformance) {
  // Fig. 4 / Sec. 3.1: at Tw = 0 a dwell of ~6 samples already achieves the
  // dedicated-slot settling time JT — staying longer is pure waste.
  const DwellTables t = tables_for(casestudy::c1());
  ASSERT_TRUE(t.feasible());
  EXPECT_EQ(t.settling_at_plus[0], t.settling_tt);
  EXPECT_LE(t.t_plus[0], 7);
}

struct Expected {
  int index;          // into casestudy::all_apps()
  int jt, je, t_star; // Table 1 values (samples)
};

class Table1All : public ::testing::TestWithParam<Expected> {};

TEST_P(Table1All, TimingColumnsReproduce) {
  const Expected e = GetParam();
  const App app = casestudy::all_apps()[static_cast<size_t>(e.index)];
  const DwellTables t = tables_for(app);
  ASSERT_TRUE(t.feasible()) << app.name;
  // Shapes must reproduce; exact sample counts may differ by simulation
  // bookkeeping, so allow small windows around the printed numbers.
  EXPECT_NEAR(t.settling_tt, e.jt, 2) << app.name;
  EXPECT_NEAR(t.settling_et, e.je, 6) << app.name;
  EXPECT_NEAR(t.t_star_w, e.t_star, 3) << app.name;
  // Requirement sanity: JT <= J* < JE.
  EXPECT_LE(t.settling_tt, app.settling_requirement) << app.name;
  EXPECT_GT(t.settling_et, app.settling_requirement) << app.name;
}

INSTANTIATE_TEST_SUITE_P(
    CaseStudy, Table1All,
    ::testing::Values(Expected{0, 9, 35, 11}, Expected{1, 15, 50, 13},
                      Expected{2, 10, 31, 15}, Expected{3, 10, 31, 12},
                      Expected{4, 10, 25, 12}, Expected{5, 11, 41, 12}),
    [](const ::testing::TestParamInfo<Expected>& info) {
      return "C" + std::to_string(info.param.index + 1);
    });

// ------------------------------------------------------------ Invariants --

class DwellInvariants : public ::testing::TestWithParam<int> {};

TEST_P(DwellInvariants, TablesWellFormed) {
  const App app = casestudy::all_apps()[static_cast<size_t>(GetParam())];
  const DwellTables t = tables_for(app);
  ASSERT_TRUE(t.feasible()) << app.name;
  for (int i = 0; i < t.entries(); ++i) {
    // T-dw <= T+dw by construction (the best settling is at least as good
    // as the barely-passing one).
    EXPECT_LE(t.t_minus[static_cast<size_t>(i)],
              t.t_plus[static_cast<size_t>(i)])
        << app.name << " Tw=" << i;
    // Both must meet the requirement.
    EXPECT_LE(t.settling_at_minus[static_cast<size_t>(i)],
              app.settling_requirement)
        << app.name << " Tw=" << i;
    EXPECT_LE(t.settling_at_plus[static_cast<size_t>(i)],
              t.settling_at_minus[static_cast<size_t>(i)])
        << app.name << " Tw=" << i;
  }
  // Paper Fig. 4 observation: the best achievable settling time is
  // non-decreasing in the wait time.
  for (int i = 1; i < t.entries(); ++i)
    EXPECT_GE(t.settling_at_plus[static_cast<size_t>(i)],
              t.settling_at_plus[static_cast<size_t>(i - 1)])
        << app.name << " Tw=" << i;
  // Waiting longer than T*w by definition breaks the requirement: the
  // dwell analysis stopped because no dwell at T*w + 1 settles in time.
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  const auto j = loop.settling_of_pattern(t.t_star_w + 1, 64,
                                          spec_for(app).settling);
  if (j.has_value())
    EXPECT_GT(*j, app.settling_requirement) << app.name;
}

INSTANTIATE_TEST_SUITE_P(CaseStudy, DwellInvariants, ::testing::Range(0, 6));

TEST(DwellLookup, GranularityRoundsUp) {
  const App app = casestudy::c1();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  DwellAnalysisSpec spec = spec_for(app);
  spec.tw_granularity = 2;
  const DwellTables coarse = compute_dwell_tables(loop, spec);
  ASSERT_TRUE(coarse.feasible());
  EXPECT_EQ(coarse.tw_granularity, 2);
  // Lookup at an odd wait uses the next (more pessimistic) entry.
  if (coarse.t_star_w >= 3) {
    EXPECT_EQ(coarse.t_minus_at(3), coarse.t_minus[2]);
    EXPECT_EQ(coarse.t_minus_at(4), coarse.t_minus[2]);
  }
  // Granular tables are at most as long.
  const DwellTables fine = tables_for(app);
  EXPECT_LE(coarse.entries(), fine.entries());
}

TEST(DwellLookup, OutOfRangeRejected) {
  const DwellTables t = tables_for(casestudy::c1());
  EXPECT_THROW(static_cast<void>(t.t_minus_at(t.t_star_w + 1)),
               std::logic_error);
  EXPECT_THROW(static_cast<void>(t.t_minus_at(-1)), std::logic_error);
}

// ---------------------------------------------------------- Settling map --

TEST(SettlingMapTest, MatchesDirectSimulation) {
  const App app = casestudy::c1();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  const control::SettlingSpec settling{kSettlingTol, 1500};
  const SettlingMap map = compute_settling_map(loop, 6, 8, settling);
  EXPECT_EQ(map.wait_count, 6);
  EXPECT_EQ(map.dwell_count, 8);
  for (int w = 0; w < 6; ++w)
    for (int d = 0; d < 8; ++d)
      EXPECT_EQ(map.at(w, d), loop.settling_of_pattern(w, d, settling))
          << w << "," << d;
}

TEST(SettlingMapTest, StablePairDominatesUnstablePair) {
  // Fig. 3: the switching-stable pair's settling surface sits at or below
  // the unstable pair's (resource efficiency of switching stability).
  const App app = casestudy::c1();
  const SwitchedLoop stable(app.plant, app.kt, casestudy::ke_stable());
  const SwitchedLoop unstable(app.plant, app.kt, casestudy::ke_unstable());
  const control::SettlingSpec settling{kSettlingTol, 1500};
  const SettlingMap ms = compute_settling_map(stable, 8, 8, settling);
  const SettlingMap mu = compute_settling_map(unstable, 8, 8, settling);
  int stable_wins = 0;
  int unstable_wins = 0;
  for (int w = 0; w < 8; ++w) {
    for (int d = 0; d < 8; ++d) {
      const auto& js = ms.at(w, d);
      const auto& ju = mu.at(w, d);
      if (!js.has_value() || !ju.has_value()) continue;
      if (*js < *ju) ++stable_wins;
      if (*ju < *js) ++unstable_wins;
    }
  }
  EXPECT_GT(stable_wins, 10 * std::max(unstable_wins, 1));
}

TEST(SettlingMapTest, BoundsChecked) {
  const App app = casestudy::c5();
  const SwitchedLoop loop(app.plant, app.kt, app.ke);
  const SettlingMap map =
      compute_settling_map(loop, 2, 2, control::SettlingSpec{0.02, 500});
  EXPECT_THROW(static_cast<void>(map.at(2, 0)), std::logic_error);
  EXPECT_THROW(static_cast<void>(map.at(0, 2)), std::logic_error);
  EXPECT_THROW(static_cast<void>(map.at(-1, 0)), std::logic_error);
}

// ------------------------------------------------------------ Run-length --

TEST(RunLength, RoundTrip) {
  const std::vector<int> v{3, 3, 3, 4, 4, 5, 3, 3};
  const RunLengthTable t = RunLengthTable::encode(v);
  EXPECT_EQ(t.decode(), v);
  EXPECT_EQ(t.decoded_length(), 8);
  EXPECT_EQ(t.runs.size(), 4u);
  EXPECT_EQ(t.encoded_words(), 8);
}

TEST(RunLength, EmptyAndSingleton) {
  EXPECT_TRUE(RunLengthTable::encode({}).decode().empty());
  const RunLengthTable t = RunLengthTable::encode({7});
  EXPECT_EQ(t.decode(), std::vector<int>{7});
}

TEST(RunLength, CompressesCaseStudyTables) {
  // The paper stores T-dw / T+dw run-length encoded because they take few
  // distinct values; verify the encoding round-trips on real tables.
  for (const App& app : casestudy::all_apps()) {
    const DwellTables t = tables_for(app);
    ASSERT_TRUE(t.feasible()) << app.name;
    const RunLengthTable enc_minus = RunLengthTable::encode(t.t_minus);
    const RunLengthTable enc_plus = RunLengthTable::encode(t.t_plus);
    EXPECT_EQ(enc_minus.decode(), t.t_minus) << app.name;
    EXPECT_EQ(enc_plus.decode(), t.t_plus) << app.name;
  }
}

}  // namespace
}  // namespace ttdim::switching
