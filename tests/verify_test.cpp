// Tests for the verification layer: the exact discrete verifier, the
// timed-automata model, and — crucially — their agreement, since the
// paper's central claim rests on this reachability analysis.
#include <stdexcept>

#include "casestudy/apps.h"
#include "gtest/gtest.h"
#include "switching/dwell.h"
#include "verify/app_timing.h"
#include "verify/discrete.h"
#include "verify/ta_model.h"

namespace ttdim::verify {
namespace {

/// Uniform synthetic application: constant dwell windows for all waits.
AppTiming uniform_app(const std::string& name, int t_star, int t_minus,
                      int t_plus, int r) {
  AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

AppTiming case_study_timing(const casestudy::App& app) {
  switching::DwellAnalysisSpec spec;
  spec.settling_requirement = app.settling_requirement;
  spec.settling = control::SettlingSpec{casestudy::kSettlingTol, 3000};
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  return make_app_timing(app.name, switching::compute_dwell_tables(loop, spec),
                         app.min_interarrival);
}

// ------------------------------------------------------------- AppTiming --

TEST(AppTimingTest, ValidationCatchesMalformedTables) {
  AppTiming a = uniform_app("A", 3, 2, 4, 10);
  EXPECT_NO_THROW(a.validate());
  a.t_minus.pop_back();
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = uniform_app("A", 3, 0, 4, 10);  // T-dw < 1
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = uniform_app("A", 3, 5, 4, 10);  // T-dw > T+dw
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = uniform_app("A", 3, 2, 4, 3);  // r <= T*w
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = uniform_app("A", 3, 2, 4, 7);  // TT episode (3 + 4) outlasts r
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = uniform_app("A", 3, 2, 4, 8);  // boundary: 3 + 4 < 8 is fine
  EXPECT_NO_THROW(a.validate());
}

TEST(AppTimingTest, FromDwellTablesMatchesCaseStudy) {
  const AppTiming t = case_study_timing(casestudy::c1());
  EXPECT_EQ(t.t_star_w, 11);
  EXPECT_EQ(t.min_interarrival, 25);
  EXPECT_EQ(t.t_minus.size(), 12u);
  // Values must match the granularity-1 tables exactly.
  EXPECT_EQ(t.t_minus[0], 3);
  EXPECT_EQ(t.t_plus[0], 6);
}

// ----------------------------------------------- DiscreteVerifier basics --

TEST(Discrete, SingleAppAlwaysSafe) {
  // Alone on the slot, every disturbance is granted with Tw = 0.
  const DiscreteVerifier v({uniform_app("A", 0, 2, 3, 10)});
  const SlotVerdict verdict = v.verify();
  EXPECT_TRUE(verdict.safe);
  EXPECT_GT(verdict.states_explored, 0);
}

TEST(Discrete, TwoZeroWaitAppsCollide) {
  // Both demand the slot immediately; a simultaneous disturbance forces one
  // of them beyond T*w = 0.
  const DiscreteVerifier v({uniform_app("A", 0, 1, 1, 6),
                            uniform_app("B", 0, 1, 1, 6)});
  DiscreteVerifier::Options opt;
  opt.want_witness = true;
  const SlotVerdict verdict = v.verify(opt);
  EXPECT_FALSE(verdict.safe);
  ASSERT_FALSE(verdict.witness.empty());
  EXPECT_NE(verdict.witness.back().find("exceeded T*w"), std::string::npos);
}

TEST(Discrete, TwoTolerantAppsShareSafely) {
  // T*w = 1 with unit dwells: the loser of a simultaneous disturbance is
  // served one sample later, exactly at its deadline.
  const DiscreteVerifier v({uniform_app("A", 1, 1, 1, 6),
                            uniform_app("B", 1, 1, 1, 6)});
  EXPECT_TRUE(v.verify().safe);
}

TEST(Discrete, LongMinDwellBlocksSecondApp) {
  // The occupant may not be preempted for 3 samples, beyond B's T*w = 2.
  const DiscreteVerifier v({uniform_app("A", 2, 3, 4, 12),
                            uniform_app("B", 2, 3, 4, 12)});
  EXPECT_FALSE(v.verify().safe);
}

TEST(Discrete, PreemptionWindowRescues) {
  // Same as above but the occupant is preemptable after 1 sample: B waits
  // at most 1 < T*w = 2.
  const DiscreteVerifier v({uniform_app("A", 2, 1, 4, 12),
                            uniform_app("B", 2, 1, 4, 12)});
  EXPECT_TRUE(v.verify().safe);
}

TEST(Discrete, ThreeAppsNeedLargerWaitBudget) {
  // Three identical apps with T*w = 1 cannot share: the third waits 2.
  const DiscreteVerifier tight(
      {uniform_app("A", 1, 1, 1, 8), uniform_app("B", 1, 1, 1, 8),
       uniform_app("C", 1, 1, 1, 8)});
  EXPECT_FALSE(tight.verify().safe);
  // T*w = 2 suffices.
  const DiscreteVerifier ok(
      {uniform_app("A", 2, 1, 1, 8), uniform_app("B", 2, 1, 1, 8),
       uniform_app("C", 2, 1, 1, 8)});
  EXPECT_TRUE(ok.verify().safe);
}

TEST(Discrete, BoundedDisturbancesNeverLessSafe) {
  // Bounding the disturbance instances explores a subset of behaviours, so
  // an unsafe bounded verdict implies an unsafe unbounded verdict and a
  // safe unbounded verdict implies safe bounded verdicts.
  const std::vector<AppTiming> apps{uniform_app("A", 1, 1, 2, 6),
                                    uniform_app("B", 1, 1, 2, 6)};
  const DiscreteVerifier v(apps);
  DiscreteVerifier::Options bounded;
  bounded.max_disturbances_per_app = 2;
  const bool safe_unbounded = v.verify().safe;
  const bool safe_bounded = v.verify(bounded).safe;
  EXPECT_TRUE(safe_unbounded);
  EXPECT_TRUE(safe_bounded);

  const std::vector<AppTiming> bad{uniform_app("A", 0, 1, 1, 6),
                                   uniform_app("B", 0, 1, 1, 6)};
  const DiscreteVerifier vb(bad);
  DiscreteVerifier::Options bounded1;
  bounded1.max_disturbances_per_app = 1;
  EXPECT_FALSE(vb.verify(bounded1).safe);  // one instance each already fails
}

TEST(Discrete, ZeroDisturbanceBudgetIsTriviallySafe) {
  const DiscreteVerifier v({uniform_app("A", 0, 1, 1, 6),
                            uniform_app("B", 0, 1, 1, 6)});
  DiscreteVerifier::Options opt;
  opt.max_disturbances_per_app = 0;
  const SlotVerdict verdict = v.verify(opt);
  EXPECT_TRUE(verdict.safe);
  EXPECT_EQ(verdict.states_explored, 1);  // only the all-steady state
}

TEST(Discrete, StateBudgetEnforced) {
  const DiscreteVerifier v({case_study_timing(casestudy::c1()),
                            case_study_timing(casestudy::c5())});
  DiscreteVerifier::Options opt;
  opt.max_states = 10;
  EXPECT_THROW(static_cast<void>(v.verify(opt)), std::runtime_error);
}

TEST(Discrete, RejectsOversizedCounters) {
  EXPECT_THROW(DiscreteVerifier({uniform_app("A", 3, 1, 2, 400)}),
               std::logic_error);
}

// ------------------------------------------------------ Zone vs Discrete --

struct CrossCase {
  std::string label;
  std::vector<AppTiming> apps;
};

class CrossCheck : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossCheck, ZoneAndDiscreteAgree) {
  const CrossCase& cc = GetParam();
  const DiscreteVerifier discrete(cc.apps);
  const ZoneVerifier zone(cc.apps);
  const bool safe_discrete = discrete.verify().safe;
  const bool safe_zone = zone.verify().safe;
  EXPECT_EQ(safe_discrete, safe_zone) << cc.label;
}

INSTANTIATE_TEST_SUITE_P(
    SmallSystems, CrossCheck,
    ::testing::Values(
        CrossCase{"single", {uniform_app("A", 0, 1, 2, 5)}},
        CrossCase{"collide0",
                  {uniform_app("A", 0, 1, 1, 5), uniform_app("B", 0, 1, 1, 5)}},
        CrossCase{"share1",
                  {uniform_app("A", 1, 1, 1, 5), uniform_app("B", 1, 1, 1, 5)}},
        CrossCase{"blocked",
                  {uniform_app("A", 2, 3, 4, 9), uniform_app("B", 2, 3, 4, 9)}},
        CrossCase{"window",
                  {uniform_app("A", 2, 1, 4, 9), uniform_app("B", 2, 1, 4, 9)}},
        CrossCase{"asymmetric",
                  {uniform_app("A", 0, 2, 2, 7), uniform_app("B", 3, 1, 2, 7)}},
        CrossCase{"three_tight",
                  {uniform_app("A", 1, 1, 1, 7), uniform_app("B", 1, 1, 1, 7),
                   uniform_app("C", 1, 1, 1, 7)}},
        CrossCase{"three_ok",
                  {uniform_app("A", 2, 1, 1, 7), uniform_app("B", 2, 1, 1, 7),
                   uniform_app("C", 2, 1, 1, 7)}}),
    [](const ::testing::TestParamInfo<CrossCase>& info) {
      return info.param.label;
    });

TEST(CrossCheckBounded, AgreeWithBudget) {
  const std::vector<AppTiming> apps{uniform_app("A", 1, 1, 2, 6),
                                    uniform_app("B", 1, 1, 2, 6)};
  DiscreteVerifier::Options dopt;
  dopt.max_disturbances_per_app = 1;
  ZoneVerifier::Options zopt;
  zopt.max_disturbances_per_app = 1;
  EXPECT_EQ(DiscreteVerifier(apps).verify(dopt).safe,
            ZoneVerifier(apps).verify(zopt).safe);
}

// ------------------------------------------------- Case study partitions --

TEST(CaseStudyPartitions, S2IsSafe) {
  // Paper Sec. 5: {C6, C2} share slot S2.
  const DiscreteVerifier v({case_study_timing(casestudy::c6()),
                            case_study_timing(casestudy::c2())});
  EXPECT_TRUE(v.verify().safe);
}

TEST(CaseStudyPartitions, S1IsSafe) {
  // Paper Sec. 5: {C1, C5, C4, C3} share slot S1 (the 5-hour UPPAAL case;
  // the discrete engine settles it in seconds).
  const DiscreteVerifier v(
      {case_study_timing(casestudy::c1()), case_study_timing(casestudy::c5()),
       case_study_timing(casestudy::c4()),
       case_study_timing(casestudy::c3())});
  EXPECT_TRUE(v.verify().safe);
}

TEST(CaseStudyPartitions, AllSixInOneSlotUnsafe) {
  std::vector<AppTiming> all;
  for (const casestudy::App& app : casestudy::all_apps())
    all.push_back(case_study_timing(app));
  const DiscreteVerifier v(all);
  DiscreteVerifier::Options opt;
  opt.want_witness = true;
  opt.depth_first = true;  // falsification: dive into the crowded branches
  const SlotVerdict verdict = v.verify(opt);
  EXPECT_FALSE(verdict.safe);
  EXPECT_FALSE(verdict.witness.empty());
}

TEST(CaseStudyPartitions, BoundedVerdictMatchesUnboundedOnS2) {
  // The acceleration of paper Sec. 5 must not change the verdict. (The
  // bench bench_verification covers the S1 partition with larger budgets.)
  const std::vector<AppTiming> s2{case_study_timing(casestudy::c6()),
                                  case_study_timing(casestudy::c2())};
  DiscreteVerifier::Options bounded;
  bounded.max_disturbances_per_app = 2;
  EXPECT_TRUE(DiscreteVerifier(s2).verify(bounded).safe);
  EXPECT_TRUE(DiscreteVerifier(s2).verify().safe);
}

}  // namespace
}  // namespace ttdim::verify
