// The content-addressed analysis layer (engine/analysis): key
// canonicalization (equal inputs collide, perturbed inputs never),
// byte-budgeted LRU eviction, concurrent access, and the property the
// whole layer rests on — cached analysis results being bit-identical to
// freshly computed ones, from single apps up to whole solve
// fingerprints (cache on/off, serial and parallel).
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "casestudy/apps.h"
#include "control/design.h"
#include "engine/analysis/analysis_cache.h"
#include "engine/analysis/app_analysis.h"
#include "engine/batch_runner.h"
#include "engine/fingerprint.h"
#include "gtest/gtest.h"

namespace ttdim::engine::analysis {
namespace {

AppAnalysisSpec spec_for(const casestudy::App& app) {
  AppAnalysisSpec spec;
  spec.dwell.settling_requirement = app.settling_requirement;
  spec.dwell.settling = control::SettlingSpec{casestudy::kSettlingTol, 3000};
  return spec;
}

AppAnalysisKey key_for(const casestudy::App& app) {
  return AppAnalysisKey::of(app.plant, app.kt, app.ke, spec_for(app));
}

// ------------------------------------------------------------------ keys --

TEST(AppAnalysisKey, EqualInputsCollideHoweverConstructed) {
  // Same dynamics assembled through different code paths (the factory vs
  // an entry-by-entry rebuild) must produce one key: the cache is
  // content-addressed, not identity-addressed.
  const casestudy::App app = casestudy::c6();
  const AppAnalysisKey original = key_for(app);

  control::Matrix phi(app.plant.phi().rows(), app.plant.phi().cols());
  for (linalg::Index r = 0; r < phi.rows(); ++r)
    for (linalg::Index c = 0; c < phi.cols(); ++c)
      phi(r, c) = app.plant.phi()(r, c);
  const control::DiscreteLti rebuilt(phi, app.plant.gamma(), app.plant.c(),
                                     app.plant.h());
  const AppAnalysisKey copy =
      AppAnalysisKey::of(rebuilt, app.kt, app.ke, spec_for(app));
  EXPECT_EQ(original, copy);
  EXPECT_EQ(original.hash, copy.hash);

  // Name and disturbance inter-arrival are not analysis inputs — they are
  // deliberately absent from the key, so re-rated apps share an entry.
  casestudy::App renamed = app;
  renamed.name = "another_name";
  renamed.min_interarrival += 17;
  EXPECT_EQ(original, key_for(renamed));
}

TEST(AppAnalysisKey, PerturbedInputsNeverCollide) {
  const casestudy::App app = casestudy::c6();
  const AppAnalysisKey original = key_for(app);

  {  // one-ulp plant perturbation
    control::Matrix phi = app.plant.phi();
    phi(0, 0) = std::nextafter(phi(0, 0), 2.0);
    const control::DiscreteLti perturbed(phi, app.plant.gamma(),
                                         app.plant.c(), app.plant.h());
    EXPECT_NE(original,
              AppAnalysisKey::of(perturbed, app.kt, app.ke, spec_for(app)));
  }
  {  // gain perturbation
    control::Matrix kt = app.kt;
    kt(0, 0) = std::nextafter(kt(0, 0), 1e9);
    EXPECT_NE(original,
              AppAnalysisKey::of(app.plant, kt, app.ke, spec_for(app)));
  }
  {  // every spec parameter is key-relevant
    AppAnalysisSpec spec = spec_for(app);
    spec.dwell.settling_requirement += 1;
    EXPECT_NE(original, AppAnalysisKey::of(app.plant, app.kt, app.ke, spec));
    spec = spec_for(app);
    spec.dwell.tw_granularity = 2;
    EXPECT_NE(original, AppAnalysisKey::of(app.plant, app.kt, app.ke, spec));
    spec = spec_for(app);
    spec.dwell.settling.horizon += 1;
    EXPECT_NE(original, AppAnalysisKey::of(app.plant, app.kt, app.ke, spec));
    spec = spec_for(app);
    spec.dwell.settling.abs_tol =
        std::nextafter(spec.dwell.settling.abs_tol, 1.0);
    EXPECT_NE(original, AppAnalysisKey::of(app.plant, app.kt, app.ke, spec));
    spec = spec_for(app);
    spec.stop_on_unstable = false;
    EXPECT_NE(original, AppAnalysisKey::of(app.plant, app.kt, app.ke, spec));
  }
}

// ----------------------------------------------------------------- cache --

AppAnalysisResult result_of(int entries) {
  AppAnalysisResult result;
  result.tables_computed = true;
  result.tables.t_star_w = entries - 1;
  result.tables.t_minus.assign(static_cast<size_t>(entries), 1);
  result.tables.t_plus.assign(static_cast<size_t>(entries), 2);
  result.tables.settling_at_minus.assign(static_cast<size_t>(entries), 3);
  result.tables.settling_at_plus.assign(static_cast<size_t>(entries), 4);
  return result;
}

AppAnalysisKey key_of_requirement(int settling_requirement) {
  const casestudy::App app = casestudy::c6();
  AppAnalysisSpec spec = spec_for(app);
  spec.dwell.settling_requirement = settling_requirement;
  return AppAnalysisKey::of(app.plant, app.kt, app.ke, spec);
}

TEST(AnalysisCache, EvictsLeastRecentlyUsedPastByteBudget) {
  AnalysisCache cache(4096);
  const AppAnalysisKey k1 = key_of_requirement(101);
  const AppAnalysisKey k2 = key_of_requirement(102);
  const AppAnalysisKey k3 = key_of_requirement(103);
  cache.insert(k1, result_of(90));  // ~1.4 KB + key/bookkeeping
  cache.insert(k2, result_of(90));
  ASSERT_NE(cache.lookup(k1), nullptr);  // k1 now most recent
  cache.insert(k3, result_of(90));       // past budget -> evicts k2
  EXPECT_EQ(cache.lookup(k2), nullptr);
  EXPECT_NE(cache.lookup(k1), nullptr);
  EXPECT_NE(cache.lookup(k3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_LE(cache.stats().bytes, cache.stats().byte_budget);
}

TEST(AnalysisCache, OversizedResultIsDroppedNotInserted) {
  AnalysisCache cache(1024);
  const AppAnalysisKey key = key_of_requirement(104);
  cache.insert(key, result_of(10'000));  // ~160 KB >> budget
  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(AnalysisCache, EvictionNeverInvalidatesAHandedOutResult) {
  AnalysisCache cache(4096);
  const AppAnalysisKey k1 = key_of_requirement(105);
  cache.insert(k1, result_of(90));
  const std::shared_ptr<const AppAnalysisResult> held = cache.lookup(k1);
  ASSERT_NE(held, nullptr);
  cache.insert(key_of_requirement(106), result_of(120));  // evicts k1
  EXPECT_EQ(cache.lookup(k1), nullptr);
  EXPECT_EQ(held->tables.entries(), 90);  // still alive for the holder
  cache.clear();
  EXPECT_EQ(held->tables.entries(), 90);
}

TEST(AnalysisCache, ConcurrentHitsMissesAndStatsAreClean) {
  // Hammered from several threads (the TSan job runs this suite): mixed
  // lookups, inserts into a budget small enough to force evictions, and
  // stats snapshots must all be race-free.
  AnalysisCache cache(16 * 1024);
  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int op = 0; op < kOps; ++op) {
        const AppAnalysisKey key = key_of_requirement(200 + (t + op) % 23);
        if (const auto hit = cache.lookup(key)) {
          ASSERT_TRUE(hit->tables_computed);
        } else {
          cache.insert(key, result_of(40 + (t + op) % 7));
        }
        if (op % 64 == 0) static_cast<void>(cache.stats());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const AnalysisCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<long>(kThreads) * kOps);
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.insertions, 0);
  EXPECT_LE(stats.bytes, stats.byte_budget);
}

// -------------------------------------------------- analyze_app (cached) --

TEST(AppAnalysis, CachedResultBitIdenticalToFresh) {
  const casestudy::App app = casestudy::c6();
  const AppAnalysisSpec spec = spec_for(app);
  const AppAnalysisOutcome fresh =
      analyze_app(app.plant, app.kt, app.ke, spec, nullptr);
  EXPECT_FALSE(fresh.cache_hit);
  ASSERT_TRUE(fresh.result->tables_computed);
  EXPECT_GT(fresh.stability_ms + fresh.dwell_ms, 0.0);

  AnalysisCache cache;
  const AppAnalysisOutcome miss =
      analyze_app(app.plant, app.kt, app.ke, spec, &cache);
  const AppAnalysisOutcome hit =
      analyze_app(app.plant, app.kt, app.ke, spec, &cache);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.stability_ms, 0.0);
  EXPECT_EQ(hit.dwell_ms, 0.0);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);

  // The layer's soundness: fresh, miss-computed and cache-served results
  // serialize to the same bytes — certificates included.
  std::string a, b, c;
  fresh.result->append_canonical(a);
  miss.result->append_canonical(b);
  hit.result->append_canonical(c);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_FALSE(a.empty());
}

TEST(AppAnalysis, StopOnUnstableCachesTheStabilityOnlyResult) {
  // The Sec. 3.1 unstable pair: under stop_on_unstable the analysis
  // never computes dwell tables, and that shape is what gets cached
  // (the flag is part of the key, so it cannot leak to callers that do
  // want tables).
  const casestudy::App c1 = casestudy::c1();
  AppAnalysisSpec spec = spec_for(c1);
  spec.stop_on_unstable = true;
  AnalysisCache cache;
  const AppAnalysisOutcome cold = analyze_app(
      casestudy::dc_motor_position_plant(), c1.kt, casestudy::ke_unstable(),
      spec, &cache);
  EXPECT_FALSE(cold.result->stability.switching_stable());
  EXPECT_FALSE(cold.result->tables_computed);
  EXPECT_EQ(cold.result->tables.entries(), 0);
  const AppAnalysisOutcome warm = analyze_app(
      casestudy::dc_motor_position_plant(), c1.kt, casestudy::ke_unstable(),
      spec, &cache);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_FALSE(warm.result->tables_computed);
}

// --------------------------------------------- solve-level (end-to-end) --

core::AppSpec spec_of(const casestudy::App& app, int min_interarrival) {
  return core::AppSpec{app.name + "_r" + std::to_string(min_interarrival),
                       app.plant,
                       app.kt,
                       app.ke,
                       min_interarrival,
                       app.settling_requirement};
}

/// Three same-plant apps differing only in inter-arrival: cheap to
/// analyse, non-trivial to map — and all three share one analysis key.
std::vector<core::AppSpec> three_app_system() {
  const casestudy::App app = casestudy::c6();
  return {spec_of(app, 60), spec_of(app, 80), spec_of(app, 100)};
}

TEST(AnalysisSolve, CacheOnOffSerialParallelFingerprintIdentically) {
  // The acceptance property: byte-identical fingerprints with
  // memoize_analysis on and off, serial and parallel (the parallel runs
  // also exercise the executor-backed analysis fan-out).
  const std::vector<core::AppSpec> specs = three_app_system();
  core::SolveOptions on;          // private analysis cache (default)
  core::SolveOptions off;
  off.memoize_analysis = false;
  core::SolveOptions on_parallel = on;
  on_parallel.analysis_threads = 4;
  core::SolveOptions off_parallel = off;
  off_parallel.analysis_threads = 4;

  const core::Solution a = core::solve(specs, on);
  const core::Solution b = core::solve(specs, off);
  const core::Solution c = core::solve(specs, on_parallel);
  const core::Solution d = core::solve(specs, off_parallel);
  const std::string print = fingerprint(a);
  EXPECT_EQ(print, fingerprint(b));
  EXPECT_EQ(print, fingerprint(c));
  EXPECT_EQ(print, fingerprint(d));

  // Within one solve the three same-plant apps share one entry: the
  // first analysis misses, the other two hit even with a private cache.
  EXPECT_EQ(a.stats.analysis_misses, 1);
  EXPECT_EQ(a.stats.analysis_hits, 2);
  // The disabled runs computed every app fresh.
  EXPECT_EQ(b.stats.analysis_hits, 0);
  EXPECT_EQ(b.stats.analysis_misses, 3);
}

TEST(AnalysisSolve, SharedCacheSkipsTheAnalysisPhaseAcrossSolves) {
  const std::vector<core::AppSpec> specs = three_app_system();
  const auto cache = std::make_shared<AnalysisCache>();
  core::SolveOptions options;
  options.analysis_cache = cache;
  const core::Solution cold = core::solve(specs, options);
  const core::Solution warm = core::solve(specs, options);
  EXPECT_EQ(fingerprint(cold), fingerprint(warm));

  // The warm solve answered every app from the shared cache: no cold
  // compute time at all, and a phase wall time far below the cold one.
  EXPECT_EQ(warm.stats.analysis_hits, 3);
  EXPECT_EQ(warm.stats.analysis_misses, 0);
  EXPECT_EQ(warm.stats.stability_ms, 0.0);
  EXPECT_EQ(warm.stats.dwell_ms, 0.0);
  EXPECT_GT(cold.stats.stability_ms + cold.stats.dwell_ms, 0.0);
  EXPECT_LT(warm.stats.analysis_ms, cold.stats.analysis_ms);
  EXPECT_EQ(cache->stats().insertions, 1);
}

}  // namespace
}  // namespace ttdim::engine::analysis
