// Tests for the continuous-to-discrete conversion (expm / c2d).
#include <cmath>

#include "control/c2d.h"
#include "gtest/gtest.h"
#include "linalg/eig.h"
#include "linalg/solve.h"

namespace ttdim::control {
namespace {

TEST(Expm, ZeroMatrixGivesIdentity) {
  EXPECT_TRUE(expm(Matrix(3, 3)).approx_equal(Matrix::identity(3), 1e-14));
}

TEST(Expm, DiagonalMatchesScalarExp) {
  const Matrix a{{1.0, 0.0}, {0.0, -2.0}};
  const Matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentClosedForm) {
  // exp([0 1; 0 0]) = [1 1; 0 1].
  const Matrix a{{0.0, 1.0}, {0.0, 0.0}};
  const Matrix e = expm(a);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-14);
}

TEST(Expm, RotationMatrix) {
  // exp([0 -w; w 0] t) is a rotation by w t.
  const double w = 3.0;
  const Matrix a{{0.0, -w}, {w, 0.0}};
  const Matrix e = expm(a);  // t = 1
  EXPECT_NEAR(e(0, 0), std::cos(w), 1e-11);
  EXPECT_NEAR(e(1, 0), std::sin(w), 1e-11);
}

TEST(Expm, GroupProperty) {
  // exp(A) exp(A) == exp(2A) — exercises the scaling-and-squaring path.
  const Matrix a{{0.3, 1.2, -0.5}, {0.0, -0.7, 0.4}, {0.2, 0.1, 0.9}};
  const Matrix lhs = expm(a) * expm(a);
  const Matrix rhs = expm(a * 2.0);
  EXPECT_TRUE(lhs.approx_equal(rhs, 1e-10));
}

TEST(C2d, FirstOrderLagClosedForm) {
  // dx/dt = -a x + b u: phi = e^{-a h}, gamma = b (1 - e^{-a h}) / a.
  const double a = 2.0;
  const double b = 3.0;
  const double h = 0.05;
  const DiscreteLti d =
      c2d({Matrix{{-a}}, Matrix{{b}}, Matrix{{1.0}}}, h);
  EXPECT_NEAR(d.phi()(0, 0), std::exp(-a * h), 1e-12);
  EXPECT_NEAR(d.gamma()(0, 0), b * (1.0 - std::exp(-a * h)) / a, 1e-12);
  EXPECT_DOUBLE_EQ(d.h(), h);
}

TEST(C2d, DoubleIntegratorClosedForm) {
  // phi = [1 h; 0 1], gamma = [h^2/2; h].
  const double h = 0.1;
  const ContinuousLti sys{Matrix{{0.0, 1.0}, {0.0, 0.0}},
                          Matrix{{0.0}, {1.0}}, Matrix{{1.0, 0.0}}};
  const DiscreteLti d = c2d(sys, h);
  EXPECT_NEAR(d.phi()(0, 1), h, 1e-13);
  EXPECT_NEAR(d.gamma()(0, 0), h * h / 2.0, 1e-13);
  EXPECT_NEAR(d.gamma()(1, 0), h, 1e-13);
}

TEST(C2d, EigenvalueMapping) {
  // Discretisation maps continuous eigenvalues s to e^{s h}.
  const Matrix a{{-1.0, 2.0}, {0.0, -3.0}};
  const double h = 0.02;
  const DiscreteLti d = c2d({a, Matrix{{1.0}, {1.0}}, Matrix{{1.0, 0.0}}}, h);
  auto ev = linalg::eigenvalues(d.phi());
  std::sort(ev.begin(), ev.end(),
            [](auto l, auto r) { return l.real() < r.real(); });
  EXPECT_NEAR(ev[0].real(), std::exp(-3.0 * h), 1e-10);
  EXPECT_NEAR(ev[1].real(), std::exp(-1.0 * h), 1e-10);
}

TEST(C2d, RejectsBadShapesAndPeriod) {
  const ContinuousLti sys{Matrix{{0.0}}, Matrix{{1.0}}, Matrix{{1.0}}};
  EXPECT_THROW(static_cast<void>(c2d(sys, 0.0)), std::logic_error);
  EXPECT_THROW(static_cast<void>(c2d({Matrix(2, 3), Matrix(2, 1),
                                      Matrix(1, 2)},
                                     0.01)),
               std::logic_error);
}

TEST(C2d, DcMotorSpeedLoopSanity) {
  // A plausible continuous DC-motor speed model discretised at the
  // paper's h = 0.02 s behaves like the case-study C5-class plants:
  // stable, controllable.
  const ContinuousLti motor{Matrix{{-10.0, 1.0}, {-0.02, -2.0}},
                            Matrix{{0.0}, {2.0}}, Matrix{{1.0, 0.0}}};
  const DiscreteLti d = c2d(motor, 0.02);
  EXPECT_TRUE(linalg::is_schur_stable(d.phi()));
  EXPECT_LT((d.phi() - Matrix::identity(2)).max_abs(), 1.0);
}

}  // namespace
}  // namespace ttdim::control
