// Quickstart: dimension the TT resource of a single control application.
//
// Takes the paper's DC-motor position loop (Sec. 3.1), checks that the
// fast/slow gain pair is switching stable, runs the dwell-time analysis
// and prints the tables that would be deployed on the ECU.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "casestudy/apps.h"
#include "control/design.h"
#include "switching/dwell.h"

int main() {
  using namespace ttdim;

  // 1. The plant and the two controllers (paper Eqs. (6)-(8)).
  const casestudy::App app = casestudy::c1();
  std::printf("Application %s: %lld states, h = %.0f ms, J* = %d samples\n",
              app.name.c_str(),
              static_cast<long long>(app.plant.n_states()),
              app.plant.h() * 1e3, app.settling_requirement);

  // 2. Switching stability of the (KT, KE) pair (paper Sec. 3).
  const control::SwitchingStability stability =
      control::check_switching_stability(app.plant, app.kt, app.ke);
  std::printf("switching stability: TT %s, ET %s, CQLF %s, "
              "degradation-free %s -> %s\n",
              stability.tt_stable ? "stable" : "UNSTABLE",
              stability.et_stable ? "stable" : "UNSTABLE",
              stability.common_lyapunov ? "found" : "not found",
              stability.degradation_free ? "yes" : "no",
              stability.switching_stable() ? "OK" : "REJECTED");

  // 3. Dwell-time analysis: how little TT time is actually needed?
  const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
  switching::DwellAnalysisSpec spec;
  spec.settling_requirement = app.settling_requirement;
  spec.settling = {casestudy::kSettlingTol, 3000};
  const switching::DwellTables tables =
      switching::compute_dwell_tables(loop, spec);

  std::printf("\nJT = %d samples (dedicated slot), JE = %d samples (ET only)"
              ", T*w = %d samples\n",
              tables.settling_tt, tables.settling_et, tables.t_star_w);
  std::printf("%6s %8s %8s %14s\n", "Tw", "T-dw", "T+dw", "J @ T+dw (s)");
  for (int tw = 0; tw <= tables.t_star_w; ++tw) {
    std::printf("%6d %8d %8d %14.2f\n", tw,
                tables.t_minus[static_cast<size_t>(tw)],
                tables.t_plus[static_cast<size_t>(tw)],
                tables.settling_at_plus[static_cast<size_t>(tw)] *
                    app.plant.h());
  }

  // 4. The run-length encoding deployed on the ECU (paper Sec. 5 note on
  //    memory-efficient storage).
  const auto rle = switching::RunLengthTable::encode(tables.t_minus);
  std::printf("\nT-dw stored as %d words instead of %d\n",
              rle.encoded_words(), rle.decoded_length());
  return 0;
}
