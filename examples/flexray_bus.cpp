// The communication substrate under the control abstraction: a FlexRay
// cycle sized for h = 20 ms, the dynamic-segment worst-case response
// times that justify the one-sample-delay model of mode ME, and the
// middleware slot handover that implements a TT grant at runtime.
//
// Build & run:   ./build/examples/flexray_bus
#include <cstdio>

#include "flexray/bus.h"
#include "flexray/middleware.h"

int main() {
  using namespace ttdim::flexray;

  BusConfig config;
  config.static_slot_us = 50.0;
  config.static_slots = 60;
  config.minislot_us = 5.0;
  config.minislots = 3300;
  config.nit_us = 500.0;
  config.validate();
  std::printf("cycle = %.1f ms (static %.1f ms, dynamic %.1f ms, NIT %.1f "
              "ms)\n",
              config.cycle_us() / 1e3,
              config.static_slot_us * config.static_slots / 1e3,
              config.minislot_us * config.minislots / 1e3,
              config.nit_us / 1e3);

  // The six control messages of the case study on the dynamic segment.
  const std::vector<DynamicFrame> frames{{1, "C1", 4}, {2, "C2", 4},
                                         {3, "C3", 4}, {4, "C4", 4},
                                         {5, "C5", 4}, {6, "C6", 4}};
  const auto wcrt = dynamic_wcrt_cycles(config, frames);
  std::printf("\ndynamic-segment worst-case response times:\n");
  for (size_t i = 0; i < frames.size(); ++i)
    std::printf("  %s: %s cycle(s)\n", frames[i].name.c_str(),
                wcrt[i].has_value() ? std::to_string(*wcrt[i]).c_str()
                                    : "unbounded");
  std::printf("=> every message within 1 cycle == 1 sample: the ME "
              "one-sample-delay model (Eq. 4) is justified.\n");

  // A burst: all six ready in the same cycle.
  DynamicSegmentSimulator sim(config, frames);
  for (const DynamicFrame& f : frames) sim.make_ready(f.name);
  const auto sent = sim.step_cycle();
  std::printf("\nburst cycle transmissions:\n");
  for (const Transmission& t : sent)
    std::printf("  %s at %.1f..%.1f us\n", t.message.c_str(), t.start_us,
                t.end_us);

  // Middleware handover: the scheduler grants slot 12 to C1, later
  // preempts it for C5 (the [8] substitution for FlexRay's static
  // configuration).
  Middleware mw(config, {12});
  mw.grant(12, "C1");
  mw.advance_cycle();
  std::printf("\ncycle %d: slot 12 owner = %s (offset %.0f us)\n",
              mw.current_cycle(), mw.owner_in_cycle(12, 1)->c_str(),
              mw.static_slot_offset_us(12));
  mw.release(12);
  mw.grant(12, "C5");
  mw.advance_cycle();
  std::printf("cycle %d: slot 12 owner = %s\n", mw.current_cycle(),
              mw.owner_in_cycle(12, 2)->c_str());
  return 0;
}
