// Cross-process warm start through the persistent disk cache
// (engine/cache/disk_cache.h). Solves the six-application case study
// three times — without any disk tier (the reference), with the disk
// tier, and with the whole-solve result cache layered on top — and
// requires byte-identical fingerprints throughout.
//
// CI runs this binary twice against a persisted directory:
//   pass 1 (cold):  ./build/warm_start --cache-dir DIR
//   pass 2 (warm):  ./build/warm_start --cache-dir DIR --expect-warm
// The second pass is a fresh process; --expect-warm asserts that the
// restored directory alone answers everything — zero analysis misses,
// zero verifier runs, and a whole-solve result hit.
//
// Exit codes: 0 ok, 1 fingerprint mismatch or warm assertion failure,
// 2 usage.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "casestudy/apps.h"
#include "core/dimensioning.h"
#include "engine/cache/disk_cache.h"
#include "engine/cache/solution_cache.h"
#include "engine/fingerprint.h"

namespace {

void print_stats(const char* label, const ttdim::core::Solution& solution) {
  std::printf("%s\n  %s\n", label, solution.stats.summary().c_str());
}

void print_disk(const ttdim::engine::cache::DiskCache& disk) {
  const ttdim::engine::cache::DiskCacheStats s = disk.stats();
  std::printf(
      "disk cache %s\n  %ld hits, %ld misses, %ld corrupt, %ld writes, "
      "%ld trims, %zu / %zu bytes\n",
      disk.directory().c_str(), s.hits, s.misses, s.corrupt, s.writes,
      s.trims, s.bytes, s.byte_budget);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ttdim;

  std::string cache_dir = engine::cache::DiskCache::kDefaultDirName;
  bool expect_warm = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--expect-warm") == 0) {
      expect_warm = true;
    } else {
      std::fprintf(stderr, "usage: %s [--cache-dir DIR] [--expect-warm]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<core::AppSpec> specs;
  for (const casestudy::App& app : casestudy::all_apps())
    specs.push_back({app.name, app.plant, app.kt, app.ke,
                     app.min_interarrival, app.settling_requirement});

  // Reference: no persistence anywhere. Everything below must match it
  // byte for byte (engine::fingerprint excludes measurement).
  std::printf("reference solve (no disk tier)...\n");
  const core::Solution reference = core::solve(specs);
  const std::string fp_reference = engine::fingerprint(reference);
  print_stats("reference", reference);

  int rc = 0;
  const auto require = [&rc](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      rc = 1;
    }
  };

  // Pass A: analysis + verdict spaces only. Cold on a fresh directory,
  // fully warm on a restored one (that is what --expect-warm asserts).
  std::printf("\nsolve with disk tier at %s...\n", cache_dir.c_str());
  const auto disk = std::make_shared<engine::cache::DiskCache>(cache_dir);
  core::SolveOptions with_disk;
  with_disk.disk_cache = disk;
  const core::Solution a = core::solve(specs, with_disk);
  print_stats("disk tier", a);
  require(engine::fingerprint(a) == fp_reference,
          "disk-tier fingerprint differs from the reference");

  // Pass B: a fresh DiskCache instance over the same directory (the
  // in-process analogue of a process restart) with the whole-solve
  // result cache on top. First pass stores the Solution; a restored
  // directory serves it without running any pipeline phase.
  std::printf("\nsolve with solution cache over a fresh handle...\n");
  core::SolveOptions with_solution;
  with_solution.disk_cache =
      std::make_shared<engine::cache::DiskCache>(cache_dir);
  with_solution.solution_cache =
      std::make_shared<engine::cache::SolutionCache>();
  const core::Solution b = core::solve(specs, with_solution);
  print_stats("solution cache", b);
  require(engine::fingerprint(b) == fp_reference,
          "solution-cache fingerprint differs from the reference");

  print_disk(*disk);
  print_disk(*with_solution.disk_cache);

  if (expect_warm) {
    require(a.stats.analysis_misses == 0,
            "--expect-warm: disk-tier solve recomputed an analysis");
    require(a.stats.cache_misses == 0,
            "--expect-warm: disk-tier solve ran the verifier");
    require(a.stats.disk_hits > 0,
            "--expect-warm: disk-tier solve never hit the directory");
    require(b.stats.solution_hits == 1,
            "--expect-warm: whole-solve result was not served from disk");
  }

  std::printf("\n%s\n", rc == 0 ? "OK" : "FAILED");
  return rc;
}
