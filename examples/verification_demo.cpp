// Verification walkthrough: the same slot-sharing question answered by the
// two engines — the exact discrete-time verifier and the UPPAAL-style
// zone-based model checker on the paper's network of timed automata — with
// a counterexample trace for an unsafe configuration.
//
// Build & run:   ./build/examples/verification_demo
#include <cstdio>

#include "verify/discrete.h"
#include "verify/ta_model.h"

namespace {

ttdim::verify::AppTiming uniform_app(const std::string& name, int t_star,
                                     int t_minus, int t_plus, int r) {
  ttdim::verify::AppTiming a;
  a.name = name;
  a.t_star_w = t_star;
  a.t_minus.assign(static_cast<size_t>(t_star) + 1, t_minus);
  a.t_plus.assign(static_cast<size_t>(t_star) + 1, t_plus);
  a.min_interarrival = r;
  return a;
}

void run_both(const char* label,
              const std::vector<ttdim::verify::AppTiming>& apps) {
  using namespace ttdim::verify;
  DiscreteVerifier discrete(apps);
  DiscreteVerifier::Options dopt;
  dopt.want_witness = true;
  const SlotVerdict d = discrete.verify(dopt);
  const SlotVerdict z = ZoneVerifier(apps).verify();
  std::printf("%s:\n  discrete: %s (%ld states)\n  zone:     %s (%ld "
              "states)\n",
              label, d.safe ? "SAFE" : "UNSAFE", d.states_explored,
              z.safe ? "SAFE" : "UNSAFE", z.states_explored);
  if (!d.safe) {
    std::printf("  counterexample:\n");
    for (const std::string& step : d.witness)
      std::printf("    %s\n", step.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Two tolerant applications: the loser of a simultaneous disturbance is
  // granted exactly at its deadline.
  run_both("two tolerant apps (T*w = 1)",
           {uniform_app("A", 1, 1, 1, 6), uniform_app("B", 1, 1, 1, 6)});

  // A long non-preemptive window starves the second application.
  run_both("long minimum dwell (T-dw = 3, T*w = 2)",
           {uniform_app("A", 2, 3, 4, 12), uniform_app("B", 2, 3, 4, 12)});

  // The preemption window rescues the same configuration.
  run_both("preemptable after 1 sample",
           {uniform_app("A", 2, 1, 4, 12), uniform_app("B", 2, 1, 4, 12)});
  return 0;
}
