// Designing your own switching controller pair from scratch.
//
// The paper ships finished gains; this example shows the full design
// workflow for a new plant: a discretised double-integrator servo, a fast
// MT gain by pole placement (Ackermann), a slow ME gain on the
// one-sample-delay augmented model — first a naive LQR attempt that the
// switching-stability gate rejects, then a pole-placement design that
// passes — followed by the dwell-time analysis.
//
// Build & run:   ./build/examples/custom_design
#include <cstdio>

#include "control/design.h"
#include "control/sim.h"
#include "switching/dwell.h"

int main() {
  using namespace ttdim;
  using control::DiscreteLti;
  using control::Matrix;

  // A discretised double integrator (e.g. a positioning stage), h = 10 ms.
  const double h = 0.01;
  const DiscreteLti plant(Matrix{{1.0, h}, {0.0, 1.0}},
                          Matrix{{h * h / 2.0}, {h}}, Matrix{{1.0, 0.0}}, h);
  const DiscreteLti augmented = plant.augmented_delay_model();

  // Fast controller for mode MT: poles at 0.70 +- 0.05i.
  const Matrix kt = control::ackermann(plant, {{0.70, 0.05}, {0.70, -0.05}});
  std::printf("KT = [%g, %g]\n", kt(0, 0), kt(0, 1));

  // Attempt 1: gentle LQR for mode ME. Dynamically fine on its own, but
  // far too sluggish next to KT — switching between the two degrades the
  // settling time, and the gate rejects the pair (the situation of the
  // paper's Fig. 3 "KuE" surface).
  const Matrix ke_lqr = control::dlqr(
      augmented, {Matrix::identity(3), Matrix{{5.0}}});
  const control::SwitchingStability naive =
      control::check_switching_stability(plant, kt, ke_lqr);
  std::printf("attempt 1 (LQR, R = 5): CQLF %s, degradation-free %s -> %s\n",
              naive.common_lyapunov ? "found" : "not found",
              naive.degradation_free ? "yes" : "no",
              naive.switching_stable() ? "ACCEPTED" : "REJECTED");

  // Attempt 2: place the augmented poles explicitly at {0.90, 0.85, 0.10}
  // — still clearly slower than MT (that is the point of the cheap ET
  // resource) but close enough for benign switching.
  const Matrix ke = control::ackermann(
      augmented, {{0.90, 0.0}, {0.85, 0.0}, {0.10, 0.0}});
  const control::SwitchingStability good =
      control::check_switching_stability(plant, kt, ke);
  std::printf("attempt 2 (poles 0.90/0.85/0.10): CQLF %s, degradation-free "
              "%s -> %s\n",
              good.common_lyapunov ? "found" : "not found",
              good.degradation_free ? "yes" : "no",
              good.switching_stable() ? "ACCEPTED" : "REJECTED");
  if (!good.switching_stable()) return 1;

  // Requirement: settle within 30 samples (0.3 s) after a unit disturbance.
  const control::SwitchedLoop loop(plant, kt, ke);
  switching::DwellAnalysisSpec spec;
  spec.settling_requirement = 30;
  spec.settling = {0.02, 4000};
  const switching::DwellTables tables =
      switching::compute_dwell_tables(loop, spec);
  if (!tables.feasible()) {
    std::printf("requirement infeasible for this pair\n");
    return 1;
  }
  std::printf("JT = %d, JE = %d, T*w = %d samples\n", tables.settling_tt,
              tables.settling_et, tables.t_star_w);
  std::printf("at Tw = 0 the slot is needed for only %d..%d samples "
              "(vs. %d with a dedicated-slot design)\n",
              tables.t_minus[0], tables.t_plus[0], tables.settling_tt);

  // Granularity trade-off (paper Sec. 3): a coarser Tw grid costs a bit of
  // conservativeness but shrinks the deployed table.
  switching::DwellAnalysisSpec coarse = spec;
  coarse.tw_granularity = 4;
  const switching::DwellTables coarse_tables =
      switching::compute_dwell_tables(loop, coarse);
  std::printf("granularity 4: %d entries instead of %d\n",
              coarse_tables.entries(), tables.entries());
  return 0;
}
