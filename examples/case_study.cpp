// Full case study of paper Sec. 5: six distributed control applications on
// one FlexRay bus. Runs the complete pipeline (dwell analysis, switching
// stability, model-checking admission, first-fit mapping, baseline [9]
// comparison) and prints the resulting slot dimensioning.
//
// Build & run:   ./build/examples/case_study
#include <cstdio>

#include "casestudy/apps.h"
#include "core/dimensioning.h"

int main() {
  using namespace ttdim;

  std::vector<core::AppSpec> specs;
  for (const casestudy::App& app : casestudy::all_apps())
    specs.push_back({app.name, app.plant, app.kt, app.ke,
                     app.min_interarrival, app.settling_requirement});

  std::printf("solving the 6-application case study...\n");
  const core::Solution solution = core::solve(specs);

  std::printf("\nper-application timing (samples):\n");
  std::printf("%4s %4s %4s %5s %6s %6s\n", "app", "JT", "JE", "T*w", "maxT-",
              "maxT+");
  for (const core::AppSolution& a : solution.apps) {
    int max_plus = 0;
    for (int v : a.tables.t_plus) max_plus = std::max(max_plus, v);
    std::printf("%4s %4d %4d %5d %6d %6d\n", a.spec.name.c_str(),
                a.tables.settling_tt, a.tables.settling_et,
                a.tables.t_star_w, a.tables.max_t_minus(), max_plus);
  }

  const auto print_assignment = [&](const char* label,
                                    const mapping::SlotAssignment& a) {
    std::printf("%s: %d slot(s)\n", label, a.slot_count());
    for (size_t s = 0; s < a.slots.size(); ++s) {
      std::printf("  S%zu = {", s + 1);
      for (size_t k = 0; k < a.slots[s].size(); ++k)
        std::printf("%s%s",
                    solution.apps[static_cast<size_t>(a.slots[s][k])]
                        .spec.name.c_str(),
                    k + 1 < a.slots[s].size() ? ", " : "");
      std::printf("}\n");
    }
  };

  std::printf("\n");
  print_assignment("proposed (model-checking admission)", solution.proposed);
  print_assignment("baseline [9] strategy 1 (NP-DM)", solution.baseline_np);
  print_assignment("baseline [9] strategy 2 (delayed requests)",
                   solution.baseline_delayed);
  std::printf("\nTT-slot saving vs best baseline: %.0f %%\n",
              100.0 * solution.saving_vs_baseline());

  // Replay the paper's Fig. 8 scenario on the verified partition.
  std::vector<core::AppSolution> s1;
  for (int i : solution.proposed.slots[0])
    s1.push_back(solution.apps[static_cast<size_t>(i)]);
  sched::Scenario scenario;
  scenario.horizon = 100;
  scenario.disturbances.assign(s1.size(), {0});
  const core::CoSimResult sim =
      core::cosimulate(s1, scenario, casestudy::kSettlingTol);
  std::printf("\nFig. 8 scenario (simultaneous disturbances on S1):\n");
  for (size_t i = 0; i < s1.size(); ++i)
    std::printf("  %s settles in %d samples (J* = %d)  %s\n",
                s1[i].spec.name.c_str(), sim.settling[i].value_or(-1),
                s1[i].spec.settling_requirement,
                sim.settling[i].value_or(INT32_MAX) <=
                        s1[i].spec.settling_requirement
                    ? "OK"
                    : "VIOLATED");
  return 0;
}
