// Full-stack integration: the verified slot schedule of Fig. 8 drives the
// FlexRay middleware, cycle by cycle, while the control loops run on top —
// the complete pipeline from model-checked admission to bus-accurate
// message delivery.
//
// Build & run:   ./build/examples/bus_in_the_loop
#include <cstdio>

#include "casestudy/apps.h"
#include "flexray/simulator.h"
#include "sched/slot_scheduler.h"
#include "switching/dwell.h"
#include "verify/app_timing.h"

int main() {
  using namespace ttdim;

  // The S1 population {C1, C5, C4, C3} with their dwell tables.
  const std::vector<casestudy::App> apps{casestudy::c1(), casestudy::c5(),
                                         casestudy::c4(), casestudy::c3()};
  std::vector<verify::AppTiming> timings;
  for (const casestudy::App& app : apps) {
    switching::DwellAnalysisSpec spec;
    spec.settling_requirement = app.settling_requirement;
    spec.settling = {casestudy::kSettlingTol, 3000};
    const control::SwitchedLoop loop(app.plant, app.kt, app.ke);
    timings.push_back(verify::make_app_timing(
        app.name, switching::compute_dwell_tables(loop, spec),
        app.min_interarrival));
  }

  // Fig. 8 scenario: everyone disturbed at tick 0.
  sched::Scenario scenario;
  scenario.horizon = 30;
  scenario.disturbances.assign(apps.size(), {0});
  const sched::ScheduleResult schedule =
      sched::simulate_slot(timings, scenario);
  std::printf("verified schedule:\n%s\n",
              schedule.describe_events(timings).c_str());

  // Bus: 20 ms cycle (= h), shared static slot 12, one dynamic frame per
  // application.
  flexray::BusConfig bus_config;
  bus_config.static_slot_us = 50.0;
  bus_config.static_slots = 60;
  bus_config.minislot_us = 5.0;
  bus_config.minislots = 3300;
  bus_config.nit_us = 500.0;
  std::vector<flexray::BusSimulator::AppConfig> bus_apps;
  for (size_t i = 0; i < apps.size(); ++i)
    bus_apps.push_back(
        {apps[i].name, {static_cast<int>(i) + 1, apps[i].name, 4}});
  flexray::BusSimulator bus(bus_config, {12}, bus_apps);

  // Drive the middleware from the schedule, cycle by cycle: the slot
  // occupant of tick k owns static slot 12 in cycle k+1 (the grant is
  // issued one cycle ahead, matching the middleware handover latency).
  std::printf("bus deliveries (TT = static slot 12 at 650 us, ET = dynamic "
              "segment):\n");
  int previous = -1;
  for (int tick = 0; tick < 20; ++tick) {
    const int occupant = schedule.occupant[static_cast<size_t>(tick)];
    if (occupant != previous) {
      if (previous >= 0) bus.release_slot(12);
      if (occupant >= 0)
        bus.grant_slot(12, apps[static_cast<size_t>(occupant)].name);
      previous = occupant;
    }
    const std::vector<flexray::Delivery> deliveries = bus.step_cycle();
    std::printf("  cycle %2d:", tick);
    for (size_t i = 0; i < deliveries.size(); ++i)
      std::printf(" %s=%s(%.0fus)", apps[i].name.c_str(),
                  deliveries[i].via_static ? "TT" : "ET",
                  deliveries[i].latency_us);
    std::printf("\n");
  }

  const auto worst_et = bus.worst_case_et_latency_us();
  std::printf("\nworst-case ET latency if all ride the dynamic segment: "
              "%.0f us (< cycle %.0f us: one-sample model holds)\n",
              worst_et.value_or(-1.0), bus_config.cycle_us());
  return 0;
}
