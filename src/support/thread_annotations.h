// Machine-checked concurrency contracts: Clang Thread Safety Analysis
// attribute macros plus the annotated synchronization primitives every
// mutex-holding type in the engine is built on.
//
// Under clang the macros expand to the capability attributes documented
// at https://clang.llvm.org/docs/ThreadSafetyAnalysis.html, and the CI
// lane building with `-Wthread-safety -Wthread-safety-beta` promoted to
// errors statically proves, on every path of every translation unit,
// that each GUARDED_BY field is only touched with its mutex held and
// that each REQUIRES obligation is met at every call site. This is
// strictly stronger than what the TSan lane observes: TSan checks the
// interleavings a test run happened to execute; the analysis checks all
// of them, at compile time. Under GCC (and any other compiler) every
// macro expands to nothing, so the g++ Release / ASan / TSan lanes
// compile byte-identical code with zero overhead.
//
// Contract vocabulary:
//   CAPABILITY("mutex")        class is a lockable capability
//   SCOPED_CAPABILITY          RAII class that acquires/releases one
//   GUARDED_BY(mu)             field may only be touched with mu held
//   PT_GUARDED_BY(mu)          pointee may only be touched with mu held
//   REQUIRES(mu)               caller must hold mu (the `_locked` suffix
//                              convention, now compiler-enforced)
//   ACQUIRE(mu) / RELEASE(mu)  function takes / drops mu
//   TRY_ACQUIRE(ok, mu)        conditional acquire, `ok` on success
//   EXCLUDES(mu)               caller must NOT hold mu (non-reentrancy)
//   ASSERT_CAPABILITY(mu)      tells the analysis mu is held here — for
//                              paths that provably run under a lock the
//                              analysis cannot see through (type-erased
//                              eviction hooks; see Mutex::AssertHeld)
//   NO_THREAD_SAFETY_ANALYSIS  opt a function body out (last resort)
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define TTDIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TTDIM_THREAD_ANNOTATION(x)  // no-op: GCC builds are unchanged
#endif

#define CAPABILITY(x) TTDIM_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY TTDIM_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) TTDIM_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) TTDIM_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) TTDIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) TTDIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) TTDIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  TTDIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) TTDIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  TTDIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) TTDIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  TTDIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  TTDIM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  TTDIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  TTDIM_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) TTDIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) TTDIM_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  TTDIM_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) TTDIM_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  TTDIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ttdim::support {

class CondVar;

/// std::mutex with a capability annotation: fields declared
/// GUARDED_BY(one of these) are compile-time-proven to be touched only
/// under the lock. Behaviorally identical to the std::mutex it wraps
/// (tests/thread_annotations_test.cpp pins that with the same concurrent
/// hammer the LRU core uses); the only additions are annotations.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// States — to the analysis only, a runtime no-op — that this mutex is
  /// held in the calling context. For the one place lock ownership
  /// provably flows through a type the analysis cannot see into: a
  /// type-erased eviction hook (std::function) invoked by a caller that
  /// holds the lock. Every such hook opens with AssertHeld(), turning
  /// the old "only called with mutex_ held" comments into a checked,
  /// greppable protocol; all plain call paths stay fully analyzed.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;  // Wait() needs the native handle to park on
  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex (the std::lock_guard of the
/// annotated world), with explicit Unlock()/Lock() so wait-and-work
/// loops that drop the lock around a drain (the executor's worker loop)
/// stay inside one analyzed scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (to run work that must not hold it).
  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }
  /// Re-take the lock after an Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to the annotated Mutex. Wait() REQUIRES the
/// mutex: the analysis checks every wait site holds the lock, and the
/// lock is (really) dropped while parked and re-held on return — the
/// capability is continuously held from the analysis' point of view,
/// which matches the guarded-data semantics: guarded state is only ever
/// read between the acquire and the wait, or between the wakeup and the
/// release.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu` and park; `mu` is re-acquired before
  /// returning. Spurious wakeups happen: callers loop on their
  /// predicate, or use the predicate overload.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held mutex for the duration of the park, then
    // release() the adoption (NOT the lock) so ownership flows back to
    // the caller's scope exactly as the annotation promises.
    std::unique_lock<std::mutex> park(mu.mu_, std::adopt_lock);
    cv_.wait(park);
    park.release();
  }

  /// Wait until `pred()` holds (checked under the lock).
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ttdim::support
