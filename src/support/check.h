// Precondition / invariant checking in the spirit of the GSL's Expects /
// Ensures (C++ Core Guidelines I.6, E.12). Violations throw std::logic_error
// so library misuse is loud in both library code and tests; they are never
// compiled out because every caller of this library is an offline design
// tool where correctness dominates speed.
#pragma once

#include <stdexcept>
#include <string>

namespace ttdim::support {

[[noreturn]] inline void fail(const char* kind, const char* cond,
                              const char* file, int line) {
  throw std::logic_error(std::string(kind) + " violated: " + cond + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace ttdim::support

#define TTDIM_EXPECTS(cond)                                          \
  do {                                                               \
    if (!(cond))                                                     \
      ::ttdim::support::fail("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define TTDIM_ENSURES(cond)                                           \
  do {                                                                \
    if (!(cond))                                                      \
      ::ttdim::support::fail("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define TTDIM_CHECK(cond)                                            \
  do {                                                               \
    if (!(cond))                                                     \
      ::ttdim::support::fail("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
