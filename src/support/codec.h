// Binary round-trip codec primitives for the persistent cache tier
// (engine/cache/disk_cache.h). The existing one-way append_canonical
// serializations are *keys* — identity strings that never need parsing.
// Disk-cached *values* must come back, so every cached value type grows
// an encode/decode pair built on these two helpers.
//
// Format: fixed-width little-endian integers, IEEE-754 bit-pattern
// doubles, u32-length-prefixed strings and vectors. Platform-stable for
// the same reason append_canonical_bits is (bit patterns, no locale, no
// text formatting), and byte-deterministic: equal values encode to equal
// bytes.
//
// The Decoder is built for hostile input — a truncated, corrupted or
// wrong-version cache entry must decode to "miss", never to a crash or a
// throw. Every read is bounds-checked, every length prefix is validated
// against the bytes actually remaining (so a corrupt length can never
// drive a huge allocation), and the first failure latches: once !ok(),
// every subsequent read fails and returns zero values. Callers check
// `ok() && done()` once at the end instead of per field.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace ttdim::support::codec {

class Encoder {
 public:
  explicit Encoder(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }

  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  void ints(const std::vector<int>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const int x : v) i32(x);
  }

 private:
  std::string& out_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view in)
      : p_(in.data()), end_(in.data() + in.size()) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// Every byte consumed — callers require this so trailing garbage
  /// (e.g. a corrupt length that "parsed") still reads as a miss.
  [[nodiscard]] bool done() const noexcept { return ok_ && p_ == end_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

  bool u8(std::uint8_t& v) {
    if (!take(1)) return fail(v);
    v = static_cast<std::uint8_t>(p_[-1]);
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (!take(4)) return fail(v);
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p_[i - 4]))
           << (8 * i);
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (!take(8)) return fail(v);
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[i - 8]))
           << (8 * i);
    return true;
  }

  bool i32(std::int32_t& v) {
    std::uint32_t u = 0;
    if (!u32(u)) return fail(v);
    v = static_cast<std::int32_t>(u);
    return true;
  }

  bool i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!u64(u)) return fail(v);
    v = static_cast<std::int64_t>(u);
    return true;
  }

  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return fail(v);
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }

  bool str(std::string& v) {
    std::uint32_t len = 0;
    if (!u32(len) || len > remaining()) {
      ok_ = false;
      v.clear();
      return false;
    }
    v.assign(p_, len);
    p_ += len;
    return true;
  }

  bool ints(std::vector<int>& v) {
    std::uint32_t len = 0;
    v.clear();
    if (!u32(len) || len > remaining() / 4) {
      ok_ = false;
      return false;
    }
    v.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) {
      std::int32_t x = 0;
      if (!i32(x)) return false;
      v.push_back(x);
    }
    return true;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    p_ += n;
    return true;
  }

  template <typename T>
  bool fail(T& v) {
    v = T{};
    return false;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace ttdim::support::codec
