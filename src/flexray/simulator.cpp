#include "flexray/simulator.h"

#include <algorithm>
#include <stdexcept>

#include "support/check.h"

namespace ttdim::flexray {

BusSimulator::BusSimulator(BusConfig config, std::vector<int> shared_slots,
                           std::vector<AppConfig> apps)
    : config_(config),
      middleware_(config, std::move(shared_slots)),
      apps_(std::move(apps)),
      tt_slot_of_app_(apps_.size(), -1) {
  config_.validate();
  TTDIM_EXPECTS(!apps_.empty());
  for (size_t i = 0; i + 1 < apps_.size(); ++i)
    for (size_t j = i + 1; j < apps_.size(); ++j)
      if (apps_[i].name == apps_[j].name)
        throw std::invalid_argument("BusSimulator: duplicate app " +
                                    apps_[i].name);
}

int BusSimulator::app_index(const std::string& name) const {
  for (size_t i = 0; i < apps_.size(); ++i)
    if (apps_[i].name == name) return static_cast<int>(i);
  throw std::invalid_argument("BusSimulator: unknown app " + name);
}

void BusSimulator::grant_slot(int slot, const std::string& app) {
  const int idx = app_index(app);
  middleware_.grant(slot, app);
  tt_slot_of_app_[static_cast<size_t>(idx)] = slot;
}

void BusSimulator::release_slot(int slot) {
  for (size_t i = 0; i < apps_.size(); ++i)
    if (tt_slot_of_app_[i] == slot) tt_slot_of_app_[i] = -1;
  middleware_.release(slot);
}

std::vector<Delivery> BusSimulator::step_cycle() {
  middleware_.advance_cycle();
  const int cycle = middleware_.current_cycle();

  // Everyone not owning a slot *in this cycle* rides the dynamic segment.
  std::vector<DynamicFrame> et_frames;
  std::vector<size_t> et_apps;
  std::vector<Delivery> out(apps_.size());
  for (size_t i = 0; i < apps_.size(); ++i) {
    const int slot = tt_slot_of_app_[i];
    const bool owns =
        slot >= 0 && middleware_.owner_in_cycle(slot, cycle).has_value() &&
        *middleware_.owner_in_cycle(slot, cycle) == apps_[i].name;
    if (owns) {
      out[i] = {cycle, true,
                middleware_.static_slot_offset_us(slot) +
                    config_.static_slot_us};
    } else {
      et_frames.push_back(apps_[i].et_frame);
      et_apps.push_back(i);
    }
  }
  DynamicSegmentSimulator dyn(config_, et_frames);
  for (size_t i : et_apps)
    dyn.make_ready(apps_[i].et_frame.name);
  const std::vector<Transmission> sent = dyn.step_cycle();
  for (size_t i : et_apps) {
    const auto it = std::find_if(sent.begin(), sent.end(),
                                 [&](const Transmission& t) {
                                   return t.message == apps_[i].et_frame.name;
                                 });
    if (it == sent.end())
      throw std::runtime_error(
          "BusSimulator: dynamic segment overloaded, message " +
          apps_[i].et_frame.name + " deferred past its sample");
    out[i] = {cycle, false, it->end_us};
  }
  ++cycle_;
  return out;
}

std::optional<double> BusSimulator::worst_case_et_latency_us() const {
  std::vector<DynamicFrame> frames;
  for (const AppConfig& a : apps_) frames.push_back(a.et_frame);
  const auto wcrt = dynamic_wcrt_cycles(config_, frames);
  // All must fit within one cycle for the one-sample model.
  for (const auto& w : wcrt)
    if (!w.has_value() || *w > 1) return std::nullopt;
  // Worst latency: the lowest-priority frame after all others transmitted.
  std::sort(frames.begin(), frames.end(),
            [](const DynamicFrame& a, const DynamicFrame& b) {
              return a.frame_id < b.frame_id;
            });
  int minislots = 0;
  for (const DynamicFrame& f : frames) minislots += f.minislots_needed;
  return config_.static_slot_us * config_.static_slots +
         minislots * config_.minislot_us;
}

}  // namespace ttdim::flexray
