#include "flexray/middleware.h"

#include <algorithm>
#include <stdexcept>

#include "support/check.h"

namespace ttdim::flexray {

Middleware::Middleware(BusConfig config, std::vector<int> shared_slots)
    : config_(std::move(config)), shared_slots_(std::move(shared_slots)) {
  config_.validate();
  TTDIM_EXPECTS(!shared_slots_.empty());
  for (int s : shared_slots_)
    TTDIM_EXPECTS(s >= 0 && s < config_.static_slots);
  std::sort(shared_slots_.begin(), shared_slots_.end());
  if (std::adjacent_find(shared_slots_.begin(), shared_slots_.end()) !=
      shared_slots_.end())
    throw std::invalid_argument("Middleware: duplicate shared slot");
  state_.resize(shared_slots_.size());
  for (SlotState& s : state_) s.history.push_back({0, std::nullopt});
}

int Middleware::slot_pos(int slot) const {
  const auto it =
      std::find(shared_slots_.begin(), shared_slots_.end(), slot);
  if (it == shared_slots_.end())
    throw std::invalid_argument("Middleware: slot " + std::to_string(slot) +
                                " is not middleware-managed");
  return static_cast<int>(it - shared_slots_.begin());
}

void Middleware::grant(int slot, const std::string& app) {
  SlotState& s = state_[static_cast<size_t>(slot_pos(slot))];
  const bool busy = s.owner.has_value() && !s.pending_release;
  if (busy && *s.owner != app)
    throw std::logic_error("Middleware: slot " + std::to_string(slot) +
                           " is owned by " + *s.owner +
                           "; release before granting to " + app);
  s.pending_owner = app;
}

void Middleware::release(int slot) {
  SlotState& s = state_[static_cast<size_t>(slot_pos(slot))];
  s.pending_release = true;
  s.pending_owner.reset();
}

std::optional<std::string> Middleware::owner_in_cycle(int slot,
                                                      int cycle) const {
  const SlotState& s = state_[static_cast<size_t>(slot_pos(slot))];
  std::optional<std::string> owner;
  for (const auto& [from_cycle, who] : s.history) {
    if (from_cycle > cycle) break;
    owner = who;
  }
  return owner;
}

void Middleware::advance_cycle() {
  ++cycle_;
  for (SlotState& s : state_) {
    bool changed = false;
    if (s.pending_release) {
      s.owner.reset();
      s.pending_release = false;
      changed = true;
    }
    if (s.pending_owner.has_value()) {
      s.owner = std::move(s.pending_owner);
      s.pending_owner.reset();
      changed = true;
    }
    if (changed) s.history.push_back({cycle_, s.owner});
  }
}

double Middleware::static_slot_offset_us(int slot) const {
  TTDIM_EXPECTS(slot >= 0 && slot < config_.static_slots);
  return slot * config_.static_slot_us;
}

}  // namespace ttdim::flexray
