// Cycle-accurate FlexRay bus simulator combining the static (TT) segment,
// the dynamic (ET) segment and the reconfigurable middleware — the full
// communication substrate under the paper's control-level abstraction.
// Each communication cycle equals one sampling period h; a control message
// in a static slot is delivered at a fixed offset (negligible delay), a
// dynamic-segment message is delivered with the arbitration-dependent
// delay the ME mode budgets one full sample for.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flexray/bus.h"
#include "flexray/middleware.h"

namespace ttdim::flexray {

/// Delivery record for one application's control message in one cycle.
struct Delivery {
  int cycle = 0;
  bool via_static = false;
  double latency_us = 0.0;  ///< offset from cycle start to transmission end
};

/// Whole-bus simulator: applications publish one control message per
/// cycle; the middleware decides which of them currently owns a shared
/// static slot (TT mode), everyone else rides the dynamic segment.
class BusSimulator {
 public:
  struct AppConfig {
    std::string name;
    DynamicFrame et_frame;  ///< frame used while in ET mode
  };

  BusSimulator(BusConfig config, std::vector<int> shared_slots,
               std::vector<AppConfig> apps);

  /// Switch `app` to TT mode on `slot` (takes effect next cycle, like the
  /// verified protocol's grant).
  void grant_slot(int slot, const std::string& app);
  /// Return `app`'s slot to the pool (next cycle).
  void release_slot(int slot);

  /// Simulate one cycle in which every application sends its control
  /// message; returns one delivery per application (same order as the
  /// AppConfig vector).
  std::vector<Delivery> step_cycle();

  [[nodiscard]] int cycles_elapsed() const noexcept { return cycle_; }
  [[nodiscard]] const Middleware& middleware() const noexcept {
    return middleware_;
  }

  /// Worst-case dynamic-segment latency (µs within the cycle) over all
  /// applications if all were in ET mode simultaneously; must stay below
  /// the cycle length for the one-sample-delay model to hold.
  [[nodiscard]] std::optional<double> worst_case_et_latency_us() const;

 private:
  [[nodiscard]] int app_index(const std::string& name) const;

  BusConfig config_;
  Middleware middleware_;
  std::vector<AppConfig> apps_;
  std::vector<int> tt_slot_of_app_;  ///< -1 when in ET mode
  int cycle_ = 0;
};

}  // namespace ttdim::flexray
