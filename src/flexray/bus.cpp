#include "flexray/bus.h"

#include <algorithm>
#include <stdexcept>

#include "support/check.h"

namespace ttdim::flexray {

void BusConfig::validate() const {
  if (static_slot_us <= 0.0 || static_slots <= 0)
    throw std::invalid_argument("BusConfig: static segment malformed");
  if (minislot_us <= 0.0 || minislots <= 0)
    throw std::invalid_argument("BusConfig: dynamic segment malformed");
  if (nit_us < 0.0)
    throw std::invalid_argument("BusConfig: negative network idle time");
  // The paper's premise psi << Psi (mini-slots much shorter than static
  // slots); we only require strict inequality.
  if (minislot_us >= static_slot_us)
    throw std::invalid_argument("BusConfig: mini-slots must be shorter than "
                                "static slots");
}

namespace {

std::vector<DynamicFrame> sorted_frames(std::vector<DynamicFrame> frames) {
  std::sort(frames.begin(), frames.end(),
            [](const DynamicFrame& a, const DynamicFrame& b) {
              return a.frame_id < b.frame_id;
            });
  for (size_t i = 0; i + 1 < frames.size(); ++i)
    if (frames[i].frame_id == frames[i + 1].frame_id)
      throw std::invalid_argument("dynamic frames: duplicate frame id " +
                                  std::to_string(frames[i].frame_id));
  for (const DynamicFrame& f : frames)
    if (f.minislots_needed < 1)
      throw std::invalid_argument("dynamic frame " + f.name +
                                  ": needs at least one mini-slot");
  return frames;
}

}  // namespace

std::vector<std::optional<int>> dynamic_wcrt_cycles(
    const BusConfig& config, const std::vector<DynamicFrame>& frames) {
  config.validate();
  const std::vector<DynamicFrame> sorted = sorted_frames(frames);
  std::vector<std::optional<int>> wcrt_by_input(frames.size());

  for (size_t target = 0; target < sorted.size(); ++target) {
    const DynamicFrame& f = sorted[target];
    if (f.minislots_needed > config.minislots) {
      // Never fits.
      continue;
    }
    // Worst case: every higher-priority frame becomes ready at the start
    // of every cycle. Within one cycle the mini-slot counter advances by
    // the transmission lengths of the higher-priority frames that fit; f
    // transmits in the first cycle where, after the higher-priority
    // transmissions, the remaining window still holds f.
    int counter = 0;
    for (size_t hp = 0; hp < target; ++hp) {
      // If the hp frame fits at the current counter it transmits,
      // consuming its mini-slots; otherwise it consumes one mini-slot
      // (the empty mini-slot of a frame that defers).
      if (counter + sorted[hp].minislots_needed <= config.minislots)
        counter += sorted[hp].minislots_needed;
      else
        counter += 1;
    }
    if (counter + f.minislots_needed <= config.minislots) {
      wcrt_by_input[target] = 1;  // transmits within the first cycle
    } else {
      // f defers; in the next cycle the same worst case can repeat, so a
      // frame pushed past the boundary once can be starved forever under
      // the sporadic worst case. With the paper's one-message-per-sample
      // traffic the adversary cannot refill, and the second cycle is
      // sufficient: report 2 when the frame fits an otherwise consumed-once
      // segment, starvation (nullopt) when even an empty segment preceded
      // by one deferral cannot hold it.
      wcrt_by_input[target] = 2;
    }
  }

  // Map back to the caller's order.
  std::vector<std::optional<int>> out(frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    const auto it = std::find_if(sorted.begin(), sorted.end(),
                                 [&](const DynamicFrame& f) {
                                   return f.frame_id == frames[i].frame_id;
                                 });
    out[i] = wcrt_by_input[static_cast<size_t>(it - sorted.begin())];
  }
  return out;
}

DynamicSegmentSimulator::DynamicSegmentSimulator(
    BusConfig config, std::vector<DynamicFrame> frames)
    : config_(std::move(config)), frames_(sorted_frames(std::move(frames))) {
  config_.validate();
  pending_.assign(frames_.size(), false);
}

int DynamicSegmentSimulator::frame_index(const std::string& name) const {
  for (size_t i = 0; i < frames_.size(); ++i)
    if (frames_[i].name == name) return static_cast<int>(i);
  throw std::invalid_argument("unknown dynamic frame: " + name);
}

void DynamicSegmentSimulator::make_ready(const std::string& frame_name) {
  pending_[static_cast<size_t>(frame_index(frame_name))] = true;
}

bool DynamicSegmentSimulator::is_pending(const std::string& frame_name) const {
  return pending_[static_cast<size_t>(frame_index(frame_name))];
}

std::vector<Transmission> DynamicSegmentSimulator::step_cycle() {
  std::vector<Transmission> sent;
  const double dynamic_start = config_.static_slot_us * config_.static_slots;
  int counter = 0;  // mini-slots consumed so far this cycle
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (counter >= config_.minislots) break;
    if (!pending_[i]) {
      // An idle mini-slot passes for a silent frame id.
      counter += 1;
      continue;
    }
    if (counter + frames_[i].minislots_needed <= config_.minislots) {
      const double start = dynamic_start + counter * config_.minislot_us;
      counter += frames_[i].minislots_needed;
      const double end = dynamic_start + counter * config_.minislot_us;
      sent.push_back({cycle_, frames_[i].name, start, end});
      pending_[i] = false;
    } else {
      // Does not fit before the segment end: defer to the next cycle (the
      // frame id's mini-slot still elapses).
      counter += 1;
    }
  }
  ++cycle_;
  return sent;
}

}  // namespace ttdim::flexray
