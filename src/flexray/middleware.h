// Runtime-reconfigurable slot ownership — the communication middleware of
// Majumdar et al. [8] that the paper relies on to switch applications
// between TT and ET communication at runtime (FlexRay itself is not
// runtime-configurable; the middleware multiplexes slot payloads).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flexray/bus.h"

namespace ttdim::flexray {

/// Ownership ledger of the shared static slots. Exactly one application
/// may own a slot in any cycle; handover takes effect at the next cycle
/// boundary (the middleware rewrites the slot payload between cycles).
class Middleware {
 public:
  /// `shared_slots`: indices of static slots managed by the middleware.
  Middleware(BusConfig config, std::vector<int> shared_slots);

  /// Request ownership of `slot` for `app` from the next cycle on.
  /// Throws std::logic_error if the slot is owned by someone else (the
  /// scheduler must release first — mirrors the verified protocol where a
  /// grant only follows an evict/preempt).
  void grant(int slot, const std::string& app);

  /// Release `slot` (no-op when idle).
  void release(int slot);

  /// Owner of `slot` effective in `cycle`; nullopt when idle. Ownership
  /// changes are visible from the cycle after the grant.
  [[nodiscard]] std::optional<std::string> owner_in_cycle(int slot,
                                                          int cycle) const;

  /// Advance to the next communication cycle (applies pending handovers).
  void advance_cycle();

  [[nodiscard]] int current_cycle() const noexcept { return cycle_; }
  [[nodiscard]] const std::vector<int>& shared_slots() const noexcept {
    return shared_slots_;
  }

  /// Sensing-to-actuation delay (µs within the cycle) of a message sent in
  /// the given static slot — the start offset of that slot. "Negligible"
  /// in the paper's terms because the slot position is fixed and known.
  [[nodiscard]] double static_slot_offset_us(int slot) const;

 private:
  struct SlotState {
    std::optional<std::string> owner;
    std::optional<std::string> pending_owner;
    bool pending_release = false;
    std::vector<std::pair<int, std::optional<std::string>>> history;
  };

  [[nodiscard]] int slot_pos(int slot) const;

  BusConfig config_;
  std::vector<int> shared_slots_;
  std::vector<SlotState> state_;
  int cycle_ = 0;
};

}  // namespace ttdim::flexray
