// FlexRay bus model (paper Sec. 2, "Heterogeneous communication
// resources"): a communication cycle with a static (TT) segment of
// equal-length slots and a dynamic (ET) segment of mini-slots with
// priority-based arbitration. This is the substrate that justifies the
// control-level abstraction "TT => negligible sensing-to-actuation delay,
// ET => bounded one-sample delay" — see flexray_test.cpp and the
// flexray_bus example.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace ttdim::flexray {

/// Static bus parameters. Times in microseconds.
struct BusConfig {
  double static_slot_us = 0.0;   ///< Psi: length of one static slot
  int static_slots = 0;          ///< static slots per cycle
  double minislot_us = 0.0;      ///< psi: length of one mini-slot
  int minislots = 0;             ///< mini-slots per cycle
  double nit_us = 0.0;           ///< network idle time at cycle end

  /// Total communication cycle length.
  [[nodiscard]] double cycle_us() const noexcept {
    return static_slot_us * static_slots + minislot_us * minislots + nit_us;
  }
  /// Throws std::invalid_argument on non-positive quantities or a dynamic
  /// segment shorter than one frame of one mini-slot.
  void validate() const;
};

/// A message on the dynamic (event-triggered) segment. Lower frame id ==
/// higher arbitration priority (FlexRay frame-id arbitration).
struct DynamicFrame {
  int frame_id = 0;
  std::string name;
  int minislots_needed = 1;  ///< transmission length in mini-slots
};

/// One transmission record produced by the simulator.
struct Transmission {
  int cycle = 0;
  std::string message;
  double start_us = 0.0;  ///< offset within the cycle
  double end_us = 0.0;
};

/// Worst-case response time (in cycles) of each dynamic frame, i.e. the
/// largest number of cycles from becoming ready to the end of transmission,
/// assuming every frame can be ready every cycle (sporadic worst case).
/// This follows the structure of Pop et al., "Timing Analysis of the
/// FlexRay Communication Protocol" (RTS 2008), restricted to
/// single-cycle-repetition frames: within a cycle, higher-priority ready
/// frames consume their mini-slots first; a frame transmits only if it
/// still fits before the dynamic segment ends, otherwise it waits a full
/// cycle.
///
/// Returns nullopt for a frame that can be starved indefinitely (does not
/// fit even in an otherwise empty dynamic segment).
[[nodiscard]] std::vector<std::optional<int>> dynamic_wcrt_cycles(
    const BusConfig& config, const std::vector<DynamicFrame>& frames);

/// Cycle-accurate simulator of the dynamic segment: queue frames, step
/// cycles, collect transmissions.
class DynamicSegmentSimulator {
 public:
  DynamicSegmentSimulator(BusConfig config, std::vector<DynamicFrame> frames);

  /// Mark a frame ready for transmission (idempotent until transmitted).
  void make_ready(const std::string& frame_name);
  [[nodiscard]] bool is_pending(const std::string& frame_name) const;

  /// Simulate one communication cycle; returns the transmissions that
  /// happened in it.
  std::vector<Transmission> step_cycle();

  [[nodiscard]] int cycles_elapsed() const noexcept { return cycle_; }

 private:
  [[nodiscard]] int frame_index(const std::string& name) const;

  BusConfig config_;
  std::vector<DynamicFrame> frames_;  ///< sorted by frame_id
  std::vector<bool> pending_;
  int cycle_ = 0;
};

}  // namespace ttdim::flexray
