// Network of timed automata + zone-graph reachability checker.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ta/automaton.h"
#include "ta/dbm.h"

namespace ttdim::ta {

/// A network of timed automata with shared integer variables, binary
/// channels and global clocks.
class Network {
 public:
  /// Declare a clock; `max_constant` is the largest constant it is compared
  /// against anywhere (used for extrapolation). Returns the clock id
  /// (>= 1; 0 is the reference clock).
  int add_clock(std::string name, int32_t max_constant);

  /// Declare an integer variable with its initial value. Returns its index
  /// in the VarStore.
  int add_var(std::string name, int32_t initial);

  /// Declare a binary synchronisation channel. Returns the channel id.
  int add_channel(std::string name);

  /// Declare a broadcast channel: a sender fires together with *every*
  /// automaton that has an enabled receiving edge (receivers are optional;
  /// the send never blocks). Returns the channel id.
  int add_broadcast_channel(std::string name);

  [[nodiscard]] bool is_broadcast(int channel) const;

  /// Add an automaton (moved in). Returns its index.
  int add_automaton(Automaton automaton);

  /// Number of real clocks (the implicit reference clock excluded).
  [[nodiscard]] int n_clocks() const noexcept {
    return static_cast<int>(clock_names_.size()) - 1;
  }
  [[nodiscard]] int n_automata() const noexcept {
    return static_cast<int>(automata_.size());
  }
  [[nodiscard]] const Automaton& automaton(int i) const;
  [[nodiscard]] const std::string& clock_name(int id) const;
  [[nodiscard]] const std::string& channel_name(int id) const;
  [[nodiscard]] const VarStore& initial_vars() const noexcept {
    return initial_vars_;
  }
  [[nodiscard]] const std::vector<int32_t>& max_constants() const noexcept {
    return max_constants_;
  }
  /// Overwrite the extrapolation ceiling of one clock (rarely needed; the
  /// checker asserts bounds stay within the declared ceiling).
  void set_max_constant(int clock, int32_t value);

 private:
  std::vector<std::string> clock_names_{"t0"};
  std::vector<int32_t> max_constants_{0};
  std::vector<std::string> var_names_;
  std::vector<std::string> channel_names_;
  std::vector<bool> channel_broadcast_;
  VarStore initial_vars_;
  std::vector<Automaton> automata_;
};

/// Symbolic state of the zone graph.
struct SymbolicState {
  std::vector<int> locations;  ///< one per automaton
  VarStore vars;
  Dbm zone{0};
};

/// One step of a symbolic trace: the edge labels fired (two labels for a
/// synchronisation) and the resulting state.
struct TraceStep {
  std::string action;
  SymbolicState state;
};

/// Verdict of a reachability query.
struct ReachResult {
  bool reachable = false;
  long states_explored = 0;
  long states_stored = 0;
  std::vector<TraceStep> trace;  ///< filled when reachable and requested
};

/// Zone-graph reachability: does some state satisfying `goal` exist?
class ZoneChecker {
 public:
  using Goal = std::function<bool(const std::vector<int>& locations,
                                  const VarStore& vars)>;

  struct Options {
    long max_states = 50'000'000;  ///< explosion guard; throws when hit
    bool want_trace = true;

    Options() {}
  };

  explicit ZoneChecker(const Network& network) : net_(network) {}

  [[nodiscard]] ReachResult reachable(const Goal& goal,
                                      const Options& options = {}) const;

  /// Search for a reachable deadlock: a state with no discrete successor
  /// whose locations forbid time divergence (an urgent/committed location,
  /// or an invariant bounding some clock from above). `reachable == true`
  /// means a deadlock exists and the trace leads to it.
  [[nodiscard]] ReachResult find_deadlock(const Options& options = {}) const;

 private:
  const Network& net_;
};

}  // namespace ttdim::ta
