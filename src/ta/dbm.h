// Difference Bound Matrices — the zone representation used by the
// UPPAAL-style reachability checker (paper Sec. 4 relies on UPPAAL; this
// repository ships its own engine, see DESIGN.md "Substitutions").
//
// A DBM over clocks x1..xk (x0 is the constant-zero reference clock) stores
// bounds d[i][j] meaning xi - xj < / <= c. Bounds are encoded in a single
// int: enc = (c << 1) | weak_bit, with +infinity = kInfinity. Smaller
// encoding == tighter bound; encoded bounds add like (c1+c2, weak1 && weak2).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ttdim::ta {

/// Encoded clock bound (see file comment).
using Bound = int32_t;

inline constexpr Bound kInfinity = std::numeric_limits<int32_t>::max();

/// Shift through uint32_t: left-shifting a negative value is undefined
/// before C++20, and bound constants are frequently negative (upper bounds
/// of differences). The wrap-around conversion back to int32_t produces
/// the intended two's-complement encoding.
[[nodiscard]] constexpr Bound shifted(int32_t c) {
  return static_cast<Bound>(static_cast<uint32_t>(c) << 1);
}

/// (c, <) for strict, (c, <=) for weak bounds.
[[nodiscard]] constexpr Bound bound_strict(int32_t c) { return shifted(c); }
[[nodiscard]] constexpr Bound bound_weak(int32_t c) { return shifted(c) | 1; }
/// The tightest possible bound encodes the empty zone marker on d[0][0].
[[nodiscard]] constexpr Bound bound_zero_weak() { return bound_weak(0); }

[[nodiscard]] constexpr int32_t bound_value(Bound b) { return b >> 1; }
[[nodiscard]] constexpr bool bound_is_weak(Bound b) { return (b & 1) != 0; }

/// Saturating bound addition.
[[nodiscard]] constexpr Bound bound_add(Bound a, Bound b) {
  if (a == kInfinity || b == kInfinity) return kInfinity;
  return shifted(bound_value(a) + bound_value(b)) | ((a & 1) & (b & 1));
}

/// Canonical-form difference bound matrix over `clocks` real clocks (plus
/// the implicit reference clock 0). Freshly constructed DBMs represent the
/// zone where all clocks equal zero.
class Dbm {
 public:
  explicit Dbm(int clocks);

  [[nodiscard]] int clocks() const noexcept { return clocks_; }
  [[nodiscard]] int dim() const noexcept { return clocks_ + 1; }

  [[nodiscard]] Bound at(int i, int j) const;
  void set(int i, int j, Bound b);

  /// True when the zone has no solutions. Canonical form required.
  [[nodiscard]] bool empty() const;

  /// Restore canonical (all-pairs shortest path) form; detects emptiness.
  void canonicalize();

  /// Constrain with xi - xj (rel) bound; keeps canonical form incrementally.
  /// Returns false (and marks empty) when the zone becomes empty.
  bool constrain(int i, int j, Bound b);

  /// Delay: remove all upper bounds (future closure). Canonical in, canonical
  /// out.
  void up();

  /// Reset clock x to integer value v. Canonical in, canonical out.
  void reset(int x, int32_t v);

  /// Copy the value bounds of clock y into clock x (x := y).
  void assign_clock(int x, int y);

  /// True when *this is included in `other` (entry-wise bound comparison;
  /// both canonical).
  [[nodiscard]] bool included_in(const Dbm& other) const;

  [[nodiscard]] bool operator==(const Dbm& other) const;

  /// Classic max-bounds extrapolation (ExtraM): bounds beyond max[i] are
  /// abstracted away so the zone graph is finite. `max_constants[i]` is the
  /// largest constant clock i is ever compared against (index 0 unused).
  void extrapolate(const std::vector<int32_t>& max_constants);

  /// True when the zone contains the single point where clock i == v[i].
  [[nodiscard]] bool contains_point(const std::vector<int32_t>& v) const;

  [[nodiscard]] size_t hash() const;

  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] int idx(int i, int j) const { return i * dim() + j; }

  int clocks_;
  std::vector<Bound> m_;
};

}  // namespace ttdim::ta
