#include "ta/network.h"

#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "support/check.h"

namespace ttdim::ta {

int Network::add_clock(std::string name, int32_t max_constant) {
  TTDIM_EXPECTS(max_constant >= 0);
  clock_names_.push_back(std::move(name));
  max_constants_.push_back(max_constant);
  return static_cast<int>(clock_names_.size()) - 1;
}

int Network::add_var(std::string name, int32_t initial) {
  var_names_.push_back(std::move(name));
  initial_vars_.push_back(initial);
  return static_cast<int>(var_names_.size()) - 1;
}

int Network::add_channel(std::string name) {
  channel_names_.push_back(std::move(name));
  channel_broadcast_.push_back(false);
  return static_cast<int>(channel_names_.size()) - 1;
}

int Network::add_broadcast_channel(std::string name) {
  channel_names_.push_back(std::move(name));
  channel_broadcast_.push_back(true);
  return static_cast<int>(channel_names_.size()) - 1;
}

bool Network::is_broadcast(int channel) const {
  TTDIM_EXPECTS(channel >= 0 &&
                channel < static_cast<int>(channel_broadcast_.size()));
  return channel_broadcast_[static_cast<size_t>(channel)];
}

int Network::add_automaton(Automaton automaton) {
  TTDIM_EXPECTS(!automaton.locations.empty());
  TTDIM_EXPECTS(automaton.initial >= 0 &&
                automaton.initial <
                    static_cast<int>(automaton.locations.size()));
  for (const Edge& e : automaton.edges) {
    TTDIM_EXPECTS(e.from >= 0 &&
                  e.from < static_cast<int>(automaton.locations.size()));
    TTDIM_EXPECTS(e.to >= 0 &&
                  e.to < static_cast<int>(automaton.locations.size()));
    TTDIM_EXPECTS(e.sync.channel < static_cast<int>(channel_names_.size()));
    for (int c : e.clock_resets) TTDIM_EXPECTS(c >= 1 && c <= n_clocks());
    for (const ClockCond& g : e.clock_guards)
      TTDIM_EXPECTS(g.clock >= 1 && g.clock <= n_clocks());
    // Broadcast receivers must not carry clock guards (their enabledness
    // must be decidable from the discrete state alone; same restriction
    // as classic UPPAAL).
    if (e.sync.channel >= 0 && !e.sync.send &&
        is_broadcast(e.sync.channel))
      TTDIM_EXPECTS(e.clock_guards.empty());
  }
  automata_.push_back(std::move(automaton));
  return static_cast<int>(automata_.size()) - 1;
}

const Automaton& Network::automaton(int i) const {
  TTDIM_EXPECTS(i >= 0 && i < n_automata());
  return automata_[static_cast<size_t>(i)];
}

const std::string& Network::clock_name(int id) const {
  TTDIM_EXPECTS(id >= 0 && id <= n_clocks());
  return clock_names_[static_cast<size_t>(id)];
}

const std::string& Network::channel_name(int id) const {
  TTDIM_EXPECTS(id >= 0 && id < static_cast<int>(channel_names_.size()));
  return channel_names_[static_cast<size_t>(id)];
}

void Network::set_max_constant(int clock, int32_t value) {
  TTDIM_EXPECTS(clock >= 1 && clock <= n_clocks());
  TTDIM_EXPECTS(value >= 0);
  max_constants_[static_cast<size_t>(clock)] = value;
}

namespace {

/// Applies one guard / invariant atom to a zone. Returns false when the
/// zone became empty.
bool apply_cond(Dbm& zone, const ClockCond& cond, const VarStore& vars) {
  const int32_t c = cond.bound(vars);
  const int x = cond.clock;
  switch (cond.rel) {
    case Rel::Lt:
      return zone.constrain(x, 0, bound_strict(c));
    case Rel::Le:
      return zone.constrain(x, 0, bound_weak(c));
    case Rel::Gt:
      return zone.constrain(0, x, bound_strict(-c));
    case Rel::Ge:
      return zone.constrain(0, x, bound_weak(-c));
    case Rel::Eq:
      return zone.constrain(x, 0, bound_weak(c)) &&
             zone.constrain(0, x, bound_weak(-c));
  }
  return false;
}

struct StoredState {
  SymbolicState sym;
  long parent = -1;
  std::string action;
};

struct DiscreteKey {
  std::vector<int> locations;
  VarStore vars;

  bool operator==(const DiscreteKey& o) const {
    return locations == o.locations && vars == o.vars;
  }
};

struct DiscreteKeyHash {
  size_t operator()(const DiscreteKey& k) const {
    size_t h = 1469598103934665603ull;
    for (int v : k.locations) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ull;
    }
    for (int32_t v : k.vars) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Exploration context shared by the reachability search.
class Explorer {
 public:
  Explorer(const Network& net, const ZoneChecker::Options& options)
      : net_(net), options_(options) {}

  ReachResult run(const ZoneChecker::Goal& goal) {
    ReachResult result;
    SymbolicState init = initial_state();
    if (init.zone.empty())
      throw std::logic_error("ZoneChecker: initial invariants unsatisfiable");
    add_state(std::move(init), -1, "init");

    for (size_t head = 0; head < queue_.size(); ++head) {
      const long index = queue_[head];
      ++result.states_explored;
      // Copy out what we need: states_ may reallocate while expanding.
      const std::vector<int> locations = states_[static_cast<size_t>(index)].sym.locations;
      const VarStore vars = states_[static_cast<size_t>(index)].sym.vars;

      if (goal(locations, vars)) {
        result.reachable = true;
        result.states_stored = static_cast<long>(states_.size());
        if (options_.want_trace) result.trace = build_trace(index);
        return result;
      }
      expand(index);
      if (static_cast<long>(states_.size()) > options_.max_states)
        throw std::runtime_error("ZoneChecker: state budget exhausted");
    }
    result.states_stored = static_cast<long>(states_.size());
    return result;
  }

  /// Deadlock search: a state without discrete successors that also cannot
  /// let time diverge (some location is urgent/committed or carries an
  /// upper-bounding invariant).
  ReachResult run_deadlock() {
    ReachResult result;
    SymbolicState init = initial_state();
    if (init.zone.empty())
      throw std::logic_error("ZoneChecker: initial invariants unsatisfiable");
    add_state(std::move(init), -1, "init");

    for (size_t head = 0; head < queue_.size(); ++head) {
      const long index = queue_[head];
      ++result.states_explored;
      const long produced = expand(index);
      if (produced == 0 && !time_can_diverge(index)) {
        result.reachable = true;
        result.states_stored = static_cast<long>(states_.size());
        if (options_.want_trace) result.trace = build_trace(index);
        return result;
      }
      if (static_cast<long>(states_.size()) > options_.max_states)
        throw std::runtime_error("ZoneChecker: state budget exhausted");
    }
    result.states_stored = static_cast<long>(states_.size());
    return result;
  }

 private:
  SymbolicState initial_state() {
    SymbolicState s;
    s.locations.resize(static_cast<size_t>(net_.n_automata()));
    for (int a = 0; a < net_.n_automata(); ++a)
      s.locations[static_cast<size_t>(a)] = net_.automaton(a).initial;
    s.vars = net_.initial_vars();
    s.zone = Dbm(net_.n_clocks());
    finalize(s);
    return s;
  }

  [[nodiscard]] bool any_committed(const std::vector<int>& locations) const {
    for (int a = 0; a < net_.n_automata(); ++a)
      if (kind_of(a, locations[static_cast<size_t>(a)]) == LocKind::Committed)
        return true;
    return false;
  }

  [[nodiscard]] bool any_no_delay(const std::vector<int>& locations) const {
    for (int a = 0; a < net_.n_automata(); ++a) {
      const LocKind k = kind_of(a, locations[static_cast<size_t>(a)]);
      if (k == LocKind::Committed || k == LocKind::Urgent) return true;
    }
    return false;
  }

  [[nodiscard]] LocKind kind_of(int automaton, int location) const {
    return net_.automaton(automaton)
        .locations[static_cast<size_t>(location)]
        .kind;
  }

  /// Apply all location invariants; false when the zone empties.
  bool apply_invariants(SymbolicState& s) const {
    for (int a = 0; a < net_.n_automata(); ++a) {
      const Location& loc =
          net_.automaton(a)
              .locations[static_cast<size_t>(s.locations[static_cast<size_t>(a)])];
      for (const ClockCond& inv : loc.invariant)
        if (!apply_cond(s.zone, inv, s.vars)) return false;
    }
    return true;
  }

  /// Delay (unless urgent/committed), re-apply invariants, extrapolate.
  /// Returns false when the state dies.
  bool finalize(SymbolicState& s) const {
    if (!apply_invariants(s)) return false;
    if (!any_no_delay(s.locations)) {
      s.zone.up();
      if (!apply_invariants(s)) return false;
    }
    s.zone.extrapolate(net_.max_constants());
    return !s.zone.empty();
  }

  void add_state(SymbolicState s, long parent, std::string action) {
    DiscreteKey key{s.locations, s.vars};
    auto& zone_list = seen_[key];
    for (long idx : zone_list) {
      if (s.zone.included_in(states_[static_cast<size_t>(idx)].sym.zone))
        return;  // already covered
    }
    states_.push_back({std::move(s), parent, std::move(action)});
    const long index = static_cast<long>(states_.size()) - 1;
    zone_list.push_back(index);
    queue_.push_back(index);
  }

  /// Returns the number of live successor states produced (before
  /// inclusion dedup) — zero means no discrete transition is enabled.
  long expand(long index) {
    const SymbolicState cur = states_[static_cast<size_t>(index)].sym;
    const bool committed_mode = any_committed(cur.locations);
    long produced = 0;

    // Internal edges.
    for (int a = 0; a < net_.n_automata(); ++a) {
      const Automaton& automaton = net_.automaton(a);
      const int loc = cur.locations[static_cast<size_t>(a)];
      if (committed_mode && kind_of(a, loc) != LocKind::Committed) continue;
      for (const Edge& e : automaton.edges) {
        if (e.from != loc || e.sync.channel >= 0) continue;
        if (try_fire(index, cur, a, e, nullptr, -1)) ++produced;
      }
    }

    // Synchronisations.
    for (int a = 0; a < net_.n_automata(); ++a) {
      const Automaton& sender_automaton = net_.automaton(a);
      const int loc_a = cur.locations[static_cast<size_t>(a)];
      for (const Edge& send : sender_automaton.edges) {
        if (send.from != loc_a || send.sync.channel < 0 || !send.sync.send)
          continue;
        if (net_.is_broadcast(send.sync.channel)) {
          produced += fire_broadcast(index, cur, a, send, committed_mode);
          continue;
        }
        for (int b = 0; b < net_.n_automata(); ++b) {
          if (b == a) continue;
          const Automaton& recv_automaton = net_.automaton(b);
          const int loc_b = cur.locations[static_cast<size_t>(b)];
          if (committed_mode && kind_of(a, loc_a) != LocKind::Committed &&
              kind_of(b, loc_b) != LocKind::Committed)
            continue;
          for (const Edge& recv : recv_automaton.edges) {
            if (recv.from != loc_b || recv.sync.channel != send.sync.channel ||
                recv.sync.send)
              continue;
            if (try_fire(index, cur, a, send, &recv, b)) ++produced;
          }
        }
      }
    }
    return produced;
  }

  /// Attempt to fire `edge` of automaton `a` (optionally synchronising with
  /// `recv` of automaton `b`); pushes the successor when enabled. Returns
  /// true when a live successor was produced.
  bool try_fire(long parent, const SymbolicState& cur, int a, const Edge& edge,
                const Edge* recv, int b) {
    // Data guards are evaluated on the pre-state variables.
    if (edge.data_guard && !edge.data_guard(cur.vars)) return false;
    if (recv && recv->data_guard && !recv->data_guard(cur.vars)) return false;

    SymbolicState next;
    next.locations = cur.locations;
    next.vars = cur.vars;
    next.zone = cur.zone;

    for (const ClockCond& g : edge.clock_guards)
      if (!apply_cond(next.zone, g, cur.vars)) return false;
    if (recv)
      for (const ClockCond& g : recv->clock_guards)
        if (!apply_cond(next.zone, g, cur.vars)) return false;

    // Updates: sender first, then receiver (UPPAAL order).
    if (edge.update) edge.update(next.vars);
    if (recv && recv->update) recv->update(next.vars);

    for (int c : edge.clock_resets) next.zone.reset(c, 0);
    if (recv)
      for (int c : recv->clock_resets) next.zone.reset(c, 0);

    next.locations[static_cast<size_t>(a)] = edge.to;
    if (recv) next.locations[static_cast<size_t>(b)] = recv->to;

    if (!finalize(next)) return false;

    std::string action = edge.label.empty()
                             ? net_.automaton(a).name + ".edge"
                             : edge.label;
    if (recv && !recv->label.empty()) action += " / " + recv->label;
    add_state(std::move(next), parent, std::move(action));
    return true;
  }

  /// Broadcast: the sender fires together with every automaton that has an
  /// enabled receiving edge; automata with several enabled receiving edges
  /// contribute one branch per edge (the UPPAAL product semantics).
  /// Receivers are data-guarded only (enforced at add_automaton).
  long fire_broadcast(long parent, const SymbolicState& cur, int a,
                      const Edge& send, bool committed_mode) {
    if (send.data_guard && !send.data_guard(cur.vars)) return 0;
    // Per automaton: the enabled receiving edges (possibly none).
    std::vector<std::pair<int, std::vector<const Edge*>>> participants;
    for (int b = 0; b < net_.n_automata(); ++b) {
      if (b == a) continue;
      const Automaton& automaton = net_.automaton(b);
      const int loc = cur.locations[static_cast<size_t>(b)];
      std::vector<const Edge*> enabled;
      for (const Edge& recv : automaton.edges) {
        if (recv.from != loc || recv.sync.channel != send.sync.channel ||
            recv.sync.send)
          continue;
        if (recv.data_guard && !recv.data_guard(cur.vars)) continue;
        enabled.push_back(&recv);
      }
      if (!enabled.empty()) participants.push_back({b, std::move(enabled)});
    }
    // Committed rule: some participant (sender or receiver) must be
    // committed when the state is in committed mode.
    if (committed_mode) {
      bool ok = kind_of(a, cur.locations[static_cast<size_t>(a)]) ==
                LocKind::Committed;
      for (const auto& [b, edges] : participants)
        ok = ok || kind_of(b, cur.locations[static_cast<size_t>(b)]) ==
                       LocKind::Committed;
      if (!ok) return 0;
    }
    // Walk the product of per-automaton edge choices.
    std::vector<const Edge*> choice(participants.size(), nullptr);
    long produced = 0;
    const std::function<void(size_t)> recurse = [&](size_t level) {
      if (level == participants.size()) {
        produced += fire_broadcast_instance(parent, cur, a, send,
                                            participants, choice)
                        ? 1
                        : 0;
        return;
      }
      for (const Edge* e : participants[level].second) {
        choice[level] = e;
        recurse(level + 1);
      }
    };
    recurse(0);
    return produced;
  }

  bool fire_broadcast_instance(
      long parent, const SymbolicState& cur, int a, const Edge& send,
      const std::vector<std::pair<int, std::vector<const Edge*>>>&
          participants,
      const std::vector<const Edge*>& choice) {
    SymbolicState next;
    next.locations = cur.locations;
    next.vars = cur.vars;
    next.zone = cur.zone;

    for (const ClockCond& g : send.clock_guards)
      if (!apply_cond(next.zone, g, cur.vars)) return false;

    if (send.update) send.update(next.vars);
    for (size_t i = 0; i < participants.size(); ++i)
      if (choice[i]->update) choice[i]->update(next.vars);

    for (int c : send.clock_resets) next.zone.reset(c, 0);
    for (size_t i = 0; i < participants.size(); ++i)
      for (int c : choice[i]->clock_resets) next.zone.reset(c, 0);

    next.locations[static_cast<size_t>(a)] = send.to;
    for (size_t i = 0; i < participants.size(); ++i)
      next.locations[static_cast<size_t>(participants[i].first)] =
          choice[i]->to;

    if (!finalize(next)) return false;

    std::string action = send.label.empty()
                             ? net_.automaton(a).name + ".broadcast"
                             : send.label;
    action += " ->" + std::to_string(participants.size()) + " receivers";
    add_state(std::move(next), parent, std::move(action));
    return true;
  }

  /// Time can diverge when no location is urgent/committed and no current
  /// invariant bounds a clock from above.
  [[nodiscard]] bool time_can_diverge(long index) const {
    const SymbolicState& s = states_[static_cast<size_t>(index)].sym;
    if (any_no_delay(s.locations)) return false;
    for (int a = 0; a < net_.n_automata(); ++a) {
      const Location& loc =
          net_.automaton(a)
              .locations[static_cast<size_t>(s.locations[static_cast<size_t>(a)])];
      for (const ClockCond& inv : loc.invariant)
        if (inv.rel == Rel::Le || inv.rel == Rel::Lt || inv.rel == Rel::Eq)
          return false;
    }
    return true;
  }

  std::vector<TraceStep> build_trace(long index) const {
    std::vector<TraceStep> trace;
    for (long i = index; i >= 0; i = states_[static_cast<size_t>(i)].parent)
      trace.push_back({states_[static_cast<size_t>(i)].action,
                       states_[static_cast<size_t>(i)].sym});
    std::reverse(trace.begin(), trace.end());
    return trace;
  }

  const Network& net_;
  const ZoneChecker::Options& options_;
  std::vector<StoredState> states_;
  std::vector<long> queue_;
  std::unordered_map<DiscreteKey, std::vector<long>, DiscreteKeyHash> seen_;
};

}  // namespace

ReachResult ZoneChecker::reachable(const Goal& goal,
                                   const Options& options) const {
  Explorer explorer(net_, options);
  return explorer.run(goal);
}

ReachResult ZoneChecker::find_deadlock(const Options& options) const {
  Explorer explorer(net_, options);
  return explorer.run_deadlock();
}

}  // namespace ttdim::ta
