#include "ta/dbm.h"

#include <sstream>

#include "support/check.h"

namespace ttdim::ta {

Dbm::Dbm(int clocks) : clocks_(clocks) {
  TTDIM_EXPECTS(clocks >= 0);
  const int d = dim();
  m_.assign(static_cast<size_t>(d * d), bound_zero_weak());
}

Bound Dbm::at(int i, int j) const {
  TTDIM_EXPECTS(i >= 0 && i < dim() && j >= 0 && j < dim());
  return m_[static_cast<size_t>(idx(i, j))];
}

void Dbm::set(int i, int j, Bound b) {
  TTDIM_EXPECTS(i >= 0 && i < dim() && j >= 0 && j < dim());
  m_[static_cast<size_t>(idx(i, j))] = b;
}

bool Dbm::empty() const { return at(0, 0) < bound_zero_weak(); }

void Dbm::canonicalize() {
  const int d = dim();
  for (int k = 0; k < d; ++k) {
    for (int i = 0; i < d; ++i) {
      const Bound ik = m_[static_cast<size_t>(idx(i, k))];
      if (ik == kInfinity) continue;
      for (int j = 0; j < d; ++j) {
        const Bound kj = m_[static_cast<size_t>(idx(k, j))];
        if (kj == kInfinity) continue;
        const Bound via = bound_add(ik, kj);
        Bound& cur = m_[static_cast<size_t>(idx(i, j))];
        if (via < cur) cur = via;
      }
    }
  }
  for (int i = 0; i < d; ++i) {
    if (m_[static_cast<size_t>(idx(i, i))] < bound_zero_weak()) {
      // Negative cycle: mark empty on d[0][0] and stop.
      m_[static_cast<size_t>(idx(0, 0))] = bound_strict(-1);
      return;
    }
  }
}

bool Dbm::constrain(int i, int j, Bound b) {
  TTDIM_EXPECTS(i >= 0 && i < dim() && j >= 0 && j < dim());
  if (empty()) return false;
  if (b >= at(i, j)) return true;  // no tightening
  // Emptiness: xi - xj <= b and xj - xi <= d[j][i] must compose to >= 0.
  if (bound_add(b, at(j, i)) < bound_zero_weak()) {
    set(0, 0, bound_strict(-1));
    return false;
  }
  set(i, j, b);
  // Incremental closure: tighten every pair through the new edge.
  const int d = dim();
  for (int a = 0; a < d; ++a) {
    const Bound ai = at(a, i);
    if (ai == kInfinity) continue;
    for (int c = 0; c < d; ++c) {
      const Bound jc = at(j, c);
      if (jc == kInfinity) continue;
      const Bound via = bound_add(bound_add(ai, b), jc);
      if (via < at(a, c)) set(a, c, via);
    }
  }
  return true;
}

void Dbm::up() {
  if (empty()) return;
  for (int i = 1; i < dim(); ++i) set(i, 0, kInfinity);
}

void Dbm::reset(int x, int32_t v) {
  TTDIM_EXPECTS(x >= 1 && x < dim());
  if (empty()) return;
  for (int j = 0; j < dim(); ++j) {
    if (j == x) continue;
    // x - j  <=  v + (0 - j)   and   j - x <= (j - 0) - v
    set(x, j, bound_add(bound_weak(v), at(0, j)));
    set(j, x, bound_add(at(j, 0), bound_weak(-v)));
  }
  set(x, x, bound_zero_weak());
}

void Dbm::assign_clock(int x, int y) {
  TTDIM_EXPECTS(x >= 1 && x < dim() && y >= 1 && y < dim());
  if (empty() || x == y) return;
  for (int j = 0; j < dim(); ++j) {
    if (j == x) continue;
    set(x, j, at(y, j));
    set(j, x, at(j, y));
  }
  set(x, y, bound_zero_weak());
  set(y, x, bound_zero_weak());
  set(x, x, bound_zero_weak());
}

bool Dbm::included_in(const Dbm& other) const {
  TTDIM_EXPECTS(clocks_ == other.clocks_);
  for (size_t i = 0; i < m_.size(); ++i)
    if (m_[i] > other.m_[i]) return false;
  return true;
}

bool Dbm::operator==(const Dbm& other) const {
  return clocks_ == other.clocks_ && m_ == other.m_;
}

void Dbm::extrapolate(const std::vector<int32_t>& max_constants) {
  TTDIM_EXPECTS(static_cast<int>(max_constants.size()) == dim());
  if (empty()) return;
  bool changed = false;
  const int d = dim();
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) {
      if (i == j) continue;
      Bound& b = m_[static_cast<size_t>(idx(i, j))];
      if (b == kInfinity) continue;
      if (i != 0 && b > bound_weak(max_constants[static_cast<size_t>(i)])) {
        b = kInfinity;
        changed = true;
      } else if (b < bound_strict(-max_constants[static_cast<size_t>(j)])) {
        b = bound_strict(-max_constants[static_cast<size_t>(j)]);
        changed = true;
      }
    }
  }
  if (changed) canonicalize();
}

bool Dbm::contains_point(const std::vector<int32_t>& v) const {
  TTDIM_EXPECTS(static_cast<int>(v.size()) == clocks_);
  if (empty()) return false;
  // Point containment: for every pair, vi - vj must satisfy d[i][j].
  auto value = [&](int i) -> int32_t {
    return i == 0 ? 0 : v[static_cast<size_t>(i - 1)];
  };
  for (int i = 0; i < dim(); ++i) {
    for (int j = 0; j < dim(); ++j) {
      const Bound b = at(i, j);
      if (b == kInfinity) continue;
      const int32_t diff = value(i) - value(j);
      if (bound_is_weak(b) ? diff > bound_value(b) : diff >= bound_value(b))
        return false;
    }
  }
  return true;
}

size_t Dbm::hash() const {
  size_t h = 1469598103934665603ull;
  for (Bound b : m_) {
    h ^= static_cast<size_t>(static_cast<uint32_t>(b));
    h *= 1099511628211ull;
  }
  return h;
}

std::string Dbm::to_string() const {
  std::ostringstream os;
  for (int i = 0; i < dim(); ++i) {
    for (int j = 0; j < dim(); ++j) {
      const Bound b = at(i, j);
      if (b == kInfinity) {
        os << "inf ";
      } else {
        os << bound_value(b) << (bound_is_weak(b) ? "<= " : "<  ");
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ttdim::ta
