// Timed-automaton description structures, UPPAAL-flavoured:
// locations (normal / urgent / committed), edges with clock guards, data
// guards over bounded integer variables, binary channel synchronisation,
// variable updates and clock resets. Clock-guard bounds may be computed
// from the variable store, which is how the paper's scheduler compares the
// dwell clock cT against the looked-up DT-[app] / DT+[app] (Sec. 4,
// challenge (ii)).
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace ttdim::ta {

/// Bounded-integer variable store shared by the whole network.
using VarStore = std::vector<int32_t>;

/// Relation of a clock guard / invariant atom.
enum class Rel { Lt, Le, Ge, Gt, Eq };

/// One atom `clock (rel) bound`. When `bound_fn` is set the bound is
/// evaluated against the current variable store at exploration time;
/// otherwise `constant` is used.
struct ClockCond {
  int clock = 0;
  Rel rel = Rel::Le;
  int32_t constant = 0;
  std::function<int32_t(const VarStore&)> bound_fn;

  [[nodiscard]] int32_t bound(const VarStore& vars) const {
    return bound_fn ? bound_fn(vars) : constant;
  }
};

/// Channel synchronisation action of an edge. channel < 0 means internal.
struct Sync {
  int channel = -1;
  bool send = false;  ///< true: chan!, false: chan?
};

/// Edge of one automaton.
struct Edge {
  int from = 0;
  int to = 0;
  Sync sync{};
  std::vector<ClockCond> clock_guards;
  /// Data guard over the variables; empty means true.
  std::function<bool(const VarStore&)> data_guard;
  /// Variable update, applied after the data guard (sender before receiver
  /// on synchronising edges, as in UPPAAL).
  std::function<void(VarStore&)> update;
  std::vector<int> clock_resets;
  std::string label;  ///< for traces
};

enum class LocKind { Normal, Urgent, Committed };

struct Location {
  std::string name;
  LocKind kind = LocKind::Normal;
  std::vector<ClockCond> invariant;
};

/// One timed automaton of the network.
struct Automaton {
  std::string name;
  std::vector<Location> locations;
  std::vector<Edge> edges;
  int initial = 0;
};

}  // namespace ttdim::ta
