#include "mapping/first_fit.h"

#include <algorithm>
#include <numeric>

#include "support/check.h"

namespace ttdim::mapping {

namespace {

int max_t_minus(const AppTiming& app) {
  int m = 0;
  for (int v : app.t_minus) m = std::max(m, v);
  return m;
}

}  // namespace

std::vector<int> paper_sort_order(const std::vector<AppTiming>& apps) {
  std::vector<int> order(apps.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const AppTiming& aa = apps[static_cast<size_t>(a)];
    const AppTiming& ab = apps[static_cast<size_t>(b)];
    if (aa.t_star_w != ab.t_star_w) return aa.t_star_w < ab.t_star_w;
    return max_t_minus(aa) < max_t_minus(ab);
  });
  return order;
}

namespace {

/// Shared walk for the fit heuristics: `pick` selects among the admitting
/// slot indices (or returns -1 for "open a new slot").
SlotAssignment fit_walk(const std::vector<AppTiming>& apps,
                        const std::vector<int>& order,
                        const SlotOracle& oracle, bool best_fit_mode) {
  TTDIM_EXPECTS(order.size() == apps.size());
  SlotAssignment assignment;
  // Scratch for the would-be slot population, reused across probes.
  std::vector<AppTiming> candidate;
  for (int idx : order) {
    TTDIM_EXPECTS(idx >= 0 && idx < static_cast<int>(apps.size()));
    int chosen = -1;
    size_t chosen_size = 0;
    if (!best_fit_mode) {
      chosen = first_fit_placement(apps, assignment, idx, oracle);
    } else {
      for (size_t s = 0; s < assignment.slots.size(); ++s) {
        std::vector<int>& slot = assignment.slots[s];
        candidate.clear();
        candidate.reserve(slot.size() + 1);
        for (int member : slot)
          candidate.push_back(apps[static_cast<size_t>(member)]);
        candidate.push_back(apps[static_cast<size_t>(idx)]);
        if (!oracle(candidate)) continue;
        if (chosen < 0 || slot.size() > chosen_size) {
          chosen = static_cast<int>(s);
          chosen_size = slot.size();
        }
      }
    }
    if (chosen >= 0) {
      assignment.slots[static_cast<size_t>(chosen)].push_back(idx);
    } else {
      // A new dedicated slot must always admit a single application.
      TTDIM_CHECK(oracle({apps[static_cast<size_t>(idx)]}));
      assignment.slots.push_back({idx});
    }
  }
  return assignment;
}

}  // namespace

SlotAssignment first_fit(const std::vector<AppTiming>& apps,
                         const std::vector<int>& order,
                         const SlotOracle& oracle) {
  return fit_walk(apps, order, oracle, /*best_fit_mode=*/false);
}

int first_fit_placement(const std::vector<AppTiming>& apps,
                        const SlotAssignment& assignment, int candidate,
                        const SlotOracle& oracle) {
  TTDIM_EXPECTS(candidate >= 0 && candidate < static_cast<int>(apps.size()));
  std::vector<AppTiming> probe;
  for (size_t s = 0; s < assignment.slots.size(); ++s) {
    const std::vector<int>& slot = assignment.slots[s];
    probe.clear();
    probe.reserve(slot.size() + 1);
    for (int member : slot) {
      TTDIM_EXPECTS(member >= 0 && member < static_cast<int>(apps.size()));
      probe.push_back(apps[static_cast<size_t>(member)]);
    }
    probe.push_back(apps[static_cast<size_t>(candidate)]);
    if (oracle(probe)) return static_cast<int>(s);
  }
  return -1;
}

SlotAssignment best_fit(const std::vector<AppTiming>& apps,
                        const std::vector<int>& order,
                        const SlotOracle& oracle) {
  return fit_walk(apps, order, oracle, /*best_fit_mode=*/true);
}

std::vector<int> sort_order(const std::vector<AppTiming>& apps,
                            SortOrder order) {
  switch (order) {
    case SortOrder::kPaper:
      return paper_sort_order(apps);
    case SortOrder::kInput: {
      std::vector<int> out(apps.size());
      std::iota(out.begin(), out.end(), 0);
      return out;
    }
    case SortOrder::kTstarDescending: {
      std::vector<int> out = paper_sort_order(apps);
      std::reverse(out.begin(), out.end());
      return out;
    }
  }
  return {};
}

}  // namespace ttdim::mapping
