// First-fit mapping of applications to TT slots (paper Sec. 5, "Resource
// mapping"), parameterised by the admission oracle so that the proposed
// model-checking admission and the baseline [9] analysis share the same
// heuristic.
#pragma once

#include <functional>
#include <vector>

#include "verify/app_timing.h"

namespace ttdim::mapping {

using verify::AppTiming;

/// Admission oracle: can this set of applications share one slot? When the
/// answer comes from the model checker, route it through
/// engine::oracle::IncrementalAdmissionOracle (core::solve does) so
/// repeated probes — across slots, walks and batch jobs — are proved once
/// and chained probes {slot}, {slot + candidate} extend the prefix's
/// cached reachable set instead of re-proving it. The walk below builds
/// every probe as "slot members in insertion order + candidate appended",
/// which is exactly the prefix stability that tier depends on
/// (SlotConfigKey::prefix_of).
using SlotOracle =
    std::function<bool(const std::vector<AppTiming>& slot_apps)>;

/// Result of a first-fit run.
struct SlotAssignment {
  /// slots[s] lists indices (into the *input* vector) mapped to slot s.
  std::vector<std::vector<int>> slots;

  [[nodiscard]] int slot_count() const noexcept {
    return static_cast<int>(slots.size());
  }
};

/// Sort order of paper Sec. 5: ascending T*w, ties broken by the smaller
/// maximum T-dw entry. Returns indices into `apps`.
[[nodiscard]] std::vector<int> paper_sort_order(
    const std::vector<AppTiming>& apps);

/// First-fit: walk the applications in `order`, try each existing slot in
/// creation order, open a new slot when no existing slot admits the app.
/// The oracle is consulted with the would-be slot population (existing
/// members + candidate).
[[nodiscard]] SlotAssignment first_fit(const std::vector<AppTiming>& apps,
                                       const std::vector<int>& order,
                                       const SlotOracle& oracle);

/// Probe-into-existing-assignment: the first-fit placement decision for
/// one candidate against a standing assignment, without rebuilding it.
/// Tries each slot of `assignment` in creation order with the probe
/// "slot members in insertion order + apps[candidate] appended" (the
/// same prefix-stable shape the walk above poses, so a warm oracle
/// answers from its caches) and returns the index of the first admitting
/// slot, or -1 when none admits (the caller opens a new slot — and owns
/// the dedicated-slot admission check the walk performs). Does not
/// modify `assignment`. This is the incremental building block of
/// core::DimensioningSession::redimension.
[[nodiscard]] int first_fit_placement(const std::vector<AppTiming>& apps,
                                      const SlotAssignment& assignment,
                                      int candidate,
                                      const SlotOracle& oracle);

/// Best-fit variant (mapping ablation): among the admitting slots pick the
/// one with the most members (densest packing first); new slot otherwise.
[[nodiscard]] SlotAssignment best_fit(const std::vector<AppTiming>& apps,
                                      const std::vector<int>& order,
                                      const SlotOracle& oracle);

/// Alternative sort orders for the mapping ablation.
enum class SortOrder {
  kPaper,         ///< ascending T*w, ties by smaller max T-dw (Sec. 5)
  kInput,         ///< as given
  kTstarDescending,
};
[[nodiscard]] std::vector<int> sort_order(const std::vector<AppTiming>& apps,
                                          SortOrder order);

/// Number of oracle consultations a mapping run performed — the admission
/// cost driver when the oracle is a model checker. Wraps an oracle and
/// counts.
class CountingOracle {
 public:
  explicit CountingOracle(SlotOracle inner) : inner_(std::move(inner)) {}

  [[nodiscard]] SlotOracle oracle() {
    return [this](const std::vector<AppTiming>& apps) {
      ++calls_;
      return inner_(apps);
    };
  }
  [[nodiscard]] int calls() const noexcept { return calls_; }

 private:
  SlotOracle inner_;
  int calls_ = 0;
};

}  // namespace ttdim::mapping
