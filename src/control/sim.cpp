#include "control/sim.h"

#include <cmath>

#include "support/check.h"

namespace ttdim::control {

std::optional<int> settling_samples(const Trace& trace, double abs_tol) {
  TTDIM_EXPECTS(abs_tol > 0.0);
  int last_violation = -1;
  for (int k = 0; k < static_cast<int>(trace.size()); ++k) {
    const double y = trace[static_cast<size_t>(k)].y;
    if (!std::isfinite(y)) return std::nullopt;
    if (std::abs(y) > abs_tol) last_violation = k;
  }
  // Never settled within the horizon (violation at the very end means we
  // cannot certify the tail).
  if (last_violation + 1 >= static_cast<int>(trace.size())) return std::nullopt;
  return last_violation + 1;
}

Trace simulate_autonomous(const Matrix& a, const Matrix& c, const Matrix& x0,
                          double h, int steps) {
  TTDIM_EXPECTS(a.is_square() && a.rows() == x0.rows() && x0.cols() == 1);
  TTDIM_EXPECTS(c.cols() == a.rows());
  TTDIM_EXPECTS(steps >= 0 && h > 0.0);
  Trace trace;
  trace.reserve(static_cast<size_t>(steps));
  Matrix x = x0;
  for (int k = 0; k < steps; ++k) {
    trace.push_back({k * h, (c * x)(0, 0), 0.0});
    x = a * x;
  }
  return trace;
}

SwitchedLoop::SwitchedLoop(DiscreteLti plant, Matrix kt, Matrix ke)
    : plant_(std::move(plant)), kt_(std::move(kt)), ke_(std::move(ke)) {
  TTDIM_EXPECTS(plant_.n_inputs() == 1);
  TTDIM_EXPECTS(kt_.rows() == 1 && kt_.cols() == plant_.n_states());
  TTDIM_EXPECTS(ke_.rows() == 1 && ke_.cols() == plant_.n_states() + 1);
}

LoopState SwitchedLoop::disturbed_state() const {
  return {plant_.unit_output_state(), 0.0};
}

double SwitchedLoop::step_tt(LoopState& s) const {
  // Negligible sensing-to-actuation delay: u[k] = -kt x[k] acts over
  // [k, k+1). The held-input memory is refreshed with the applied input so
  // a subsequent ME sample sees the true previous command.
  const double u = -(kt_ * s.x)(0, 0);
  s.x = plant_.phi() * s.x + plant_.gamma() * u;
  s.u_prev = u;
  return u;
}

double SwitchedLoop::step_et(LoopState& s) const {
  // One-sample delay (paper Eq. (4)-(5)): the input acting over [k, k+1)
  // is u[k-1]; the command computed now, u[k] = -ke [x; u_prev], is applied
  // from the next sample on.
  const double applied = s.u_prev;
  const double u_next = -(ke_ * s.x.vstack(Matrix{{s.u_prev}}))(0, 0);
  s.x = plant_.phi() * s.x + plant_.gamma() * applied;
  s.u_prev = u_next;
  return applied;
}

double SwitchedLoop::output(const LoopState& s) const {
  return (plant_.c() * s.x)(0, 0);
}

Trace SwitchedLoop::simulate_pattern(int wait, int dwell,
                                     const SettlingSpec& spec) const {
  TTDIM_EXPECTS(wait >= 0 && dwell >= 0);
  std::vector<bool> modes(static_cast<size_t>(wait + dwell), false);
  for (int k = wait; k < wait + dwell; ++k) modes[static_cast<size_t>(k)] = true;
  return simulate_schedule(modes, spec.horizon);
}

std::optional<int> SwitchedLoop::settling_of_pattern(
    int wait, int dwell, const SettlingSpec& spec) const {
  return settling_samples(simulate_pattern(wait, dwell, spec), spec.abs_tol);
}

Trace SwitchedLoop::simulate_schedule(const std::vector<bool>& modes,
                                      int total_samples) const {
  TTDIM_EXPECTS(total_samples >= static_cast<int>(modes.size()));
  Trace trace;
  trace.reserve(static_cast<size_t>(total_samples));
  LoopState s = disturbed_state();
  const double h = plant_.h();
  for (int k = 0; k < total_samples; ++k) {
    const bool tt = k < static_cast<int>(modes.size()) &&
                    modes[static_cast<size_t>(k)];
    const double y = output(s);
    const double u = tt ? step_tt(s) : step_et(s);
    trace.push_back({k * h, y, u});
  }
  return trace;
}

}  // namespace ttdim::control
