#include "control/sim.h"

#include <cmath>

#include "support/check.h"

namespace ttdim::control {

void append_canonical(std::string& out, const SettlingSpec& spec) {
  out += "tol=";
  linalg::append_canonical_bits(out, Matrix{{spec.abs_tol}});
  out += "hor=";
  out += std::to_string(spec.horizon);
  out += ';';
}

std::optional<int> settling_samples(const Trace& trace, double abs_tol) {
  TTDIM_EXPECTS(abs_tol > 0.0);
  int last_violation = -1;
  for (int k = 0; k < static_cast<int>(trace.size()); ++k) {
    const double y = trace[static_cast<size_t>(k)].y;
    if (!std::isfinite(y)) return std::nullopt;
    if (std::abs(y) > abs_tol) last_violation = k;
  }
  // Never settled within the horizon (violation at the very end means we
  // cannot certify the tail).
  if (last_violation + 1 >= static_cast<int>(trace.size())) return std::nullopt;
  return last_violation + 1;
}

Trace simulate_autonomous(const Matrix& a, const Matrix& c, const Matrix& x0,
                          double h, int steps) {
  TTDIM_EXPECTS(a.is_square() && a.rows() == x0.rows() && x0.cols() == 1);
  TTDIM_EXPECTS(c.cols() == a.rows());
  TTDIM_EXPECTS(steps >= 0 && h > 0.0);
  Trace trace;
  trace.reserve(static_cast<size_t>(steps));
  Matrix x = x0;
  for (int k = 0; k < steps; ++k) {
    trace.push_back({k * h, (c * x)(0, 0), 0.0});
    x = a * x;
  }
  return trace;
}

SwitchedLoop::SwitchedLoop(DiscreteLti plant, Matrix kt, Matrix ke)
    : plant_(std::move(plant)), kt_(std::move(kt)), ke_(std::move(ke)) {
  TTDIM_EXPECTS(plant_.n_inputs() == 1);
  TTDIM_EXPECTS(kt_.rows() == 1 && kt_.cols() == plant_.n_states());
  TTDIM_EXPECTS(ke_.rows() == 1 && ke_.cols() == plant_.n_states() + 1);
}

LoopState SwitchedLoop::disturbed_state() const {
  return {plant_.unit_output_state(), 0.0};
}

double SwitchedLoop::step_tt(LoopState& s) const {
  // Negligible sensing-to-actuation delay: u[k] = -kt x[k] acts over
  // [k, k+1). The held-input memory is refreshed with the applied input so
  // a subsequent ME sample sees the true previous command.
  const double u = -(kt_ * s.x)(0, 0);
  s.x = plant_.phi() * s.x + plant_.gamma() * u;
  s.u_prev = u;
  return u;
}

double SwitchedLoop::step_et(LoopState& s) const {
  // One-sample delay (paper Eq. (4)-(5)): the input acting over [k, k+1)
  // is u[k-1]; the command computed now, u[k] = -ke [x; u_prev], is applied
  // from the next sample on.
  const double applied = s.u_prev;
  const double u_next = -(ke_ * s.x.vstack(Matrix{{s.u_prev}}))(0, 0);
  s.x = plant_.phi() * s.x + plant_.gamma() * applied;
  s.u_prev = u_next;
  return applied;
}

double SwitchedLoop::output(const LoopState& s) const {
  return (plant_.c() * s.x)(0, 0);
}

Trace SwitchedLoop::simulate_pattern(int wait, int dwell,
                                     const SettlingSpec& spec) const {
  TTDIM_EXPECTS(wait >= 0 && dwell >= 0);
  std::vector<bool> modes(static_cast<size_t>(wait + dwell), false);
  for (int k = wait; k < wait + dwell; ++k) modes[static_cast<size_t>(k)] = true;
  return simulate_schedule(modes, spec.horizon);
}

namespace {

/// State-space cap of the flattened fast path; larger plants fall back to
/// the Trace-based evaluation (the paper's plants have <= 3 states).
constexpr Index kFlatMaxStates = 8;

}  // namespace

std::optional<int> SwitchedLoop::settling_of_pattern(
    int wait, int dwell, const SettlingSpec& spec) const {
  TTDIM_EXPECTS(wait >= 0 && dwell >= 0);
  const Index n = plant_.n_states();
  if (n > kFlatMaxStates)
    return settling_samples(simulate_pattern(wait, dwell, spec), spec.abs_tol);
  // simulate_pattern() requires the mode schedule to fit the horizon.
  TTDIM_EXPECTS(spec.horizon >= wait + dwell);

  // Flatten the loop matrices once. Every arithmetic step below mirrors the
  // Matrix operator chain of step_tt/step_et/output exactly — same term
  // order, same skip of exact-zero multiplier entries (Matrix operator*
  // skips them, Matrix-times-scalar does not) — so the settling verdict is
  // bit-identical to the Trace-based path.
  double phi[kFlatMaxStates][kFlatMaxStates];
  double gamma[kFlatMaxStates];
  double kt[kFlatMaxStates];
  double ke[kFlatMaxStates + 1];
  double c[kFlatMaxStates];
  for (Index r = 0; r < n; ++r) {
    for (Index j = 0; j < n; ++j) phi[r][j] = plant_.phi()(r, j);
    gamma[r] = plant_.gamma()(r, 0);
    kt[r] = kt_(0, r);
    ke[r] = ke_(0, r);
    c[r] = plant_.c()(0, r);
  }
  ke[n] = ke_(0, n);

  const LoopState init = disturbed_state();
  double x[kFlatMaxStates];
  double xn[kFlatMaxStates];
  for (Index r = 0; r < n; ++r) x[r] = init.x(r, 0);
  double u_prev = init.u_prev;

  int last_violation = -1;
  for (int k = 0; k < spec.horizon; ++k) {
    double y = 0.0;
    for (Index j = 0; j < n; ++j) {
      const double a = c[j];
      if (a == 0.0) continue;
      y += a * x[j];
    }
    if (!std::isfinite(y)) return std::nullopt;
    if (std::abs(y) > spec.abs_tol) last_violation = k;

    const bool tt = k >= wait && k < wait + dwell;
    double applied;  // input acting over [k, k+1)
    if (tt) {
      double t = 0.0;
      for (Index j = 0; j < n; ++j) {
        const double a = kt[j];
        if (a == 0.0) continue;
        t += a * x[j];
      }
      applied = -t;
      u_prev = applied;
    } else {
      applied = u_prev;
      double t = 0.0;
      for (Index j = 0; j < n; ++j) {
        const double a = ke[j];
        if (a == 0.0) continue;
        t += a * x[j];
      }
      if (ke[n] != 0.0) t += ke[n] * u_prev;
      u_prev = -t;
    }
    for (Index r = 0; r < n; ++r) {
      double acc = 0.0;
      for (Index j = 0; j < n; ++j) {
        const double a = phi[r][j];
        if (a == 0.0) continue;
        acc += a * x[j];
      }
      xn[r] = acc + gamma[r] * applied;
    }
    for (Index r = 0; r < n; ++r) x[r] = xn[r];
  }
  if (last_violation + 1 >= spec.horizon) return std::nullopt;
  return last_violation + 1;
}

Trace SwitchedLoop::simulate_schedule(const std::vector<bool>& modes,
                                      int total_samples) const {
  TTDIM_EXPECTS(total_samples >= static_cast<int>(modes.size()));
  Trace trace;
  trace.reserve(static_cast<size_t>(total_samples));
  LoopState s = disturbed_state();
  const double h = plant_.h();
  for (int k = 0; k < total_samples; ++k) {
    const bool tt = k < static_cast<int>(modes.size()) &&
                    modes[static_cast<size_t>(k)];
    const double y = output(s);
    const double u = tt ? step_tt(s) : step_et(s);
    trace.push_back({k * h, y, u});
  }
  return trace;
}

}  // namespace ttdim::control
