#include "control/design.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "linalg/eig.h"
#include "linalg/lyap.h"
#include "linalg/solve.h"
#include "support/check.h"

namespace ttdim::control {

Matrix controllability_matrix(const DiscreteLti& plant) {
  const Index n = plant.n_states();
  Matrix ctrb(n, n * plant.n_inputs());
  Matrix col = plant.gamma();
  for (Index k = 0; k < n; ++k) {
    ctrb.set_block(0, k * plant.n_inputs(), col);
    col = plant.phi() * col;
  }
  return ctrb;
}

bool is_controllable(const DiscreteLti& plant, double tol) {
  return linalg::rank(controllability_matrix(plant), tol) == plant.n_states();
}

Matrix ackermann(const DiscreteLti& plant,
                 const std::vector<std::complex<double>>& poles) {
  TTDIM_EXPECTS(plant.n_inputs() == 1);
  const Index n = plant.n_states();
  if (static_cast<Index>(poles.size()) != n)
    throw std::domain_error("ackermann: need exactly n desired poles");
  if (!is_controllable(plant))
    throw std::domain_error("ackermann: plant is not controllable");
  const Matrix ctrb = controllability_matrix(plant);
  const Matrix p_phi =
      linalg::polyvalm(linalg::poly_from_roots(poles), plant.phi());
  // k = e_n' * ctrb^{-1} * p(phi)
  Matrix en(n, 1);
  en(n - 1, 0) = 1.0;
  const Matrix row = linalg::solve(ctrb.transpose(), en).transpose();
  return row * p_phi;
}

Matrix dlqr(const DiscreteLti& plant, const LqrWeights& w, int max_iter,
            double tol) {
  const Matrix& b = plant.gamma();
  TTDIM_EXPECTS(w.q.rows() == plant.phi().rows() && w.q.is_symmetric(1e-9));
  TTDIM_EXPECTS(w.r.rows() == b.cols() && w.r.is_symmetric(1e-9));
  // Structure-preserving doubling algorithm for the DARE — quadratic
  // convergence even when the closed loop is barely inside the unit circle
  // (the plain fixed-point iteration needs ~1/(1-rho^2) steps, which is
  // prohibitive for plants like C6 with rho ~ 0.999).
  const Index n = plant.phi().rows();
  Matrix a = plant.phi();
  Matrix g = b * linalg::solve(w.r, b.transpose());
  Matrix h = w.q;
  for (int it = 0; it < max_iter; ++it) {
    const Matrix winv_a = linalg::solve(Matrix::identity(n) + g * h, a);
    const Matrix a_next = a * winv_a;
    Matrix g_next = g + a * linalg::solve(Matrix::identity(n) + g * h, g) *
                            a.transpose();
    Matrix h_next = h + a.transpose() * h * winv_a;
    g_next.symmetrize();
    h_next.symmetrize();
    const double delta = (h_next - h).max_abs();
    a = std::move(a_next);
    g = std::move(g_next);
    h = std::move(h_next);
    if (delta <= tol * std::max(1.0, h.max_abs())) {
      const Matrix btp = b.transpose() * h;
      return linalg::solve(w.r + btp * b, btp * plant.phi());
    }
  }
  throw std::runtime_error("dlqr: Riccati doubling did not converge");
}

Matrix observability_matrix(const DiscreteLti& plant) {
  const Index n = plant.n_states();
  Matrix obs(n * plant.n_outputs(), n);
  Matrix row = plant.c();
  for (Index k = 0; k < n; ++k) {
    obs.set_block(k * plant.n_outputs(), 0, row);
    row = row * plant.phi();
  }
  return obs;
}

bool is_observable(const DiscreteLti& plant, double tol) {
  return linalg::rank(observability_matrix(plant), tol) == plant.n_states();
}

Matrix luenberger(const DiscreteLti& plant,
                  const std::vector<std::complex<double>>& poles) {
  TTDIM_EXPECTS(plant.n_outputs() == 1);
  if (!is_observable(plant))
    throw std::domain_error("luenberger: plant is not observable");
  // Duality: the observer gain for (phi, c) is the transposed state
  // feedback gain for (phi', c').
  const DiscreteLti dual(plant.phi().transpose(), plant.c().transpose(),
                         plant.gamma().transpose(), plant.h());
  return ackermann(dual, poles).transpose();
}

SwitchingStability check_switching_stability(const DiscreteLti& plant,
                                             const Matrix& kt,
                                             const Matrix& ke,
                                             const SettlingSpec& settling) {
  SwitchingStability out;
  const SwitchedModes modes = switched_modes(plant, kt, ke);
  // In the augmented space mode MT has an extra structural eigenvalue at 0
  // (the input memory), so Schur stability there coincides with stability
  // of phi - gamma kt.
  out.tt_stable = linalg::is_schur_stable(closed_loop(plant, kt));
  out.et_stable = linalg::is_schur_stable(modes.a_et);
  if (!out.tt_stable || !out.et_stable) return out;

  const linalg::CommonLyapunov cqlf =
      linalg::find_common_lyapunov(modes.a_tt, modes.a_et);
  out.common_lyapunov = cqlf.found;
  if (cqlf.found) out.p = cqlf.p;

  // Degradation test over the switching-pattern grid of Fig. 3.
  const SwitchedLoop loop(plant, kt, ke);
  const std::optional<int> je = loop.settling_of_pattern(0, 0, settling);
  if (!je.has_value()) return out;  // ME alone never settles: leave false
  out.settling_et = *je;
  const int wait_max = *je + 5;
  const int dwell_max = 12;
  int worst = 0;
  for (int w = 0; w <= wait_max; ++w) {
    for (int d = 0; d <= dwell_max; ++d) {
      const std::optional<int> j = loop.settling_of_pattern(w, d, settling);
      worst = std::max(worst, j.value_or(settling.horizon));
      if (worst > *je) break;
    }
    if (worst > *je) break;
  }
  out.worst_settling = worst;
  out.degradation_free = worst <= *je;
  return out;
}

void append_canonical(std::string& out, const SwitchingStability& s) {
  out += "tt=";
  out += s.tt_stable ? '1' : '0';
  out += ";et=";
  out += s.et_stable ? '1' : '0';
  out += ";df=";
  out += s.degradation_free ? '1' : '0';
  out += ";je=";
  out += std::to_string(s.settling_et);
  out += ";jw=";
  out += std::to_string(s.worst_settling);
  out += ';';
  linalg::append_canonical(out, {s.common_lyapunov, s.p});
}

std::size_t byte_cost(const SwitchingStability& s) {
  return sizeof(SwitchingStability) - sizeof(Matrix) + linalg::byte_cost(s.p);
}

void encode(support::codec::Encoder& enc, const SwitchingStability& s) {
  enc.u8(s.tt_stable ? 1 : 0);
  enc.u8(s.et_stable ? 1 : 0);
  enc.u8(s.degradation_free ? 1 : 0);
  enc.i32(s.settling_et);
  enc.i32(s.worst_settling);
  linalg::encode(enc, linalg::CommonLyapunov{s.common_lyapunov, s.p});
}

bool decode(support::codec::Decoder& dec, SwitchingStability& s) {
  s = SwitchingStability{};
  std::uint8_t tt = 0;
  std::uint8_t et = 0;
  std::uint8_t df = 0;
  if (!dec.u8(tt) || !dec.u8(et) || !dec.u8(df) || tt > 1 || et > 1 || df > 1)
    return false;
  if (!dec.i32(s.settling_et) || !dec.i32(s.worst_settling)) return false;
  linalg::CommonLyapunov cqlf;
  if (!linalg::decode(dec, cqlf)) return false;
  s.tt_stable = tt != 0;
  s.et_stable = et != 0;
  s.degradation_free = df != 0;
  s.common_lyapunov = cqlf.found;
  s.p = std::move(cqlf.p);
  return true;
}

}  // namespace ttdim::control
