// Controller synthesis: pole placement (Ackermann) and discrete LQR.
//
// The paper ships concrete gains (Table 1); these routines let a user of
// the library design their own KT / KE pairs, and are used by the examples
// and by tests that re-derive gains with comparable closed-loop behaviour.
#pragma once

#include <complex>
#include <vector>

#include "control/lti.h"
#include "control/sim.h"

namespace ttdim::control {

/// Controllability matrix [gamma, phi gamma, ..., phi^{n-1} gamma].
[[nodiscard]] Matrix controllability_matrix(const DiscreteLti& plant);

/// True when (phi, gamma) is controllable (full-rank controllability
/// matrix).
[[nodiscard]] bool is_controllable(const DiscreteLti& plant,
                                   double tol = 1e-9);

/// Ackermann single-input pole placement: returns the 1 x n row gain k such
/// that eig(phi - gamma k) equals `poles`. Throws std::domain_error when
/// the plant is uncontrollable or `poles` has the wrong arity.
[[nodiscard]] Matrix ackermann(const DiscreteLti& plant,
                               const std::vector<std::complex<double>>& poles);

/// Infinite-horizon discrete LQR weights.
struct LqrWeights {
  Matrix q;  ///< n x n state cost, symmetric positive semidefinite
  Matrix r;  ///< m x m input cost, symmetric positive definite
};

/// Solve the discrete algebraic Riccati equation by fixed-point iteration
/// and return the optimal gain k (u = -k x). Throws std::runtime_error if
/// the iteration does not converge.
[[nodiscard]] Matrix dlqr(const DiscreteLti& plant, const LqrWeights& w,
                          int max_iter = 10000, double tol = 1e-12);

/// Observability matrix [c; c phi; ...; c phi^{n-1}].
[[nodiscard]] Matrix observability_matrix(const DiscreteLti& plant);

/// True when (phi, c) is observable.
[[nodiscard]] bool is_observable(const DiscreteLti& plant, double tol = 1e-9);

/// Luenberger observer gain l (n x 1 for single-output plants) placing the
/// eigenvalues of phi - l c at `poles`, via duality with Ackermann pole
/// placement on (phi', c'). The deployed estimator is
///   xhat[k+1] = phi xhat[k] + gamma u[k] + l (y[k] - c xhat[k]).
/// In the paper's distributed setting the observer runs on the sensor ECU
/// so the state-feedback gains KT / KE receive full state estimates.
[[nodiscard]] Matrix luenberger(const DiscreteLti& plant,
                                const std::vector<std::complex<double>>& poles);

/// Switching-stability verdict for a (kt, ke) pair on a plant (paper
/// Sec. 3, "Comments on switching stability").
///
/// Two pieces of evidence are gathered:
///  - a common quadratic Lyapunov function of the two closed loops in the
///    augmented space (sufficient certificate; the paper's recommended
///    design condition). The case-study pairs sit close to the boundary of
///    the CQLF cone, so the search may fail to certify a pair that is
///    nevertheless benign — which is why we also run
///  - the operative test behind the paper's Fig. 3: exhaustive simulation
///    of all switching patterns; the pair is degradation-free when no
///    (wait, dwell) pattern settles later than staying in ME outright
///    (for the paper's KuE pair the worst pattern settles 46 > JE = 35
///    samples; for all six case-study pairs the worst equals JE exactly).
struct SwitchingStability {
  bool tt_stable = false;
  bool et_stable = false;
  bool common_lyapunov = false;
  bool degradation_free = false;
  int settling_et = 0;       ///< JE, samples
  int worst_settling = 0;    ///< max J over the switching-pattern grid
  Matrix p;  ///< CQLF certificate when common_lyapunov is true
  [[nodiscard]] bool switching_stable() const noexcept {
    return tt_stable && et_stable && (common_lyapunov || degradation_free);
  }
};
[[nodiscard]] SwitchingStability check_switching_stability(
    const DiscreteLti& plant, const Matrix& kt, const Matrix& ke,
    const SettlingSpec& settling = {});

/// Append a canonical, byte-exact serialization of a stability verdict
/// (flags, settling numbers, CQLF certificate bits) to `out`, and the
/// verdict's resident byte size. check_switching_stability is a pure
/// function of (plant, kt, ke, settling), so the canonical form of those
/// inputs content-addresses the verdict — this pair is what lets the
/// engine::analysis cache store and equality-check certificates.
void append_canonical(std::string& out, const SwitchingStability& s);
[[nodiscard]] std::size_t byte_cost(const SwitchingStability& s);

/// Round-trip binary codec for disk-cached stability verdicts (the CQLF
/// certificate rides through the linalg::CommonLyapunov codec). decode
/// returns false on malformed input and never throws.
void encode(support::codec::Encoder& enc, const SwitchingStability& s);
[[nodiscard]] bool decode(support::codec::Decoder& dec,
                          SwitchingStability& s);

}  // namespace ttdim::control
