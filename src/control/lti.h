// Discrete-time LTI plant and closed-loop models (paper Sec. 2).
#pragma once

#include <optional>

#include "linalg/matrix.h"

namespace ttdim::control {

using linalg::Index;
using linalg::Matrix;

/// Discrete-time LTI plant  x[k+1] = phi x[k] + gamma u[k],  y[k] = c x[k]
/// sampled with period `h` seconds (paper Eq. (1)). Single-input,
/// single-output as in all the paper's applications, though `c` may expose
/// several outputs.
class DiscreteLti {
 public:
  DiscreteLti(Matrix phi, Matrix gamma, Matrix c, double h);

  [[nodiscard]] const Matrix& phi() const noexcept { return phi_; }
  [[nodiscard]] const Matrix& gamma() const noexcept { return gamma_; }
  [[nodiscard]] const Matrix& c() const noexcept { return c_; }
  [[nodiscard]] double h() const noexcept { return h_; }
  [[nodiscard]] Index n_states() const noexcept { return phi_.rows(); }
  [[nodiscard]] Index n_inputs() const noexcept { return gamma_.cols(); }
  [[nodiscard]] Index n_outputs() const noexcept { return c_.rows(); }

  /// The one-sample-delay augmented model of paper Eq. (4):
  /// z[k] = [x[k]; u[k-1]],
  /// z[k+1] = [phi, gamma; 0, 0] z[k] + [0; I] u[k],  y = [c, 0] z.
  [[nodiscard]] DiscreteLti augmented_delay_model() const;

  /// Default disturbed state: the minimum-norm x0 with c x0 = [1,..] (for
  /// the paper's c = [1 0 .. 0] this is e1, matching Sec. 3.1).
  [[nodiscard]] Matrix unit_output_state() const;

 private:
  Matrix phi_;
  Matrix gamma_;
  Matrix c_;
  double h_;
};

/// Append a canonical, byte-exact serialization of the discretized plant
/// (phi, gamma, c and the sampling period's bit pattern) to `out` — the
/// content-addressed identity of the dynamics, as consumed by
/// engine::analysis::AppAnalysisKey. Pure function of the plant data.
void append_canonical(std::string& out, const DiscreteLti& plant);

/// Round-trip binary codec for disk-cached solutions. DiscreteLti has a
/// validating constructor and no default state, so the decoder returns
/// nullopt on malformed input (checking the constructor's preconditions
/// up front — untrusted bytes must never reach a throwing TTDIM_EXPECTS).
void encode(support::codec::Encoder& enc, const DiscreteLti& plant);
[[nodiscard]] std::optional<DiscreteLti> decode_lti(
    support::codec::Decoder& dec);

/// Closed-loop matrix phi - gamma k for u = -k x (paper Eq. (3)). `k` is a
/// 1 x n row gain.
[[nodiscard]] Matrix closed_loop(const DiscreteLti& plant, const Matrix& k);

/// The two switched modes of the bi-modal strategy expressed in the common
/// augmented space z = [x; u_prev] (dimension n+1), so that a common
/// quadratic Lyapunov function can be sought for both:
///  - mode MT (fast gain kt, negligible delay):
///      x+ = (phi - gamma kt) x,  u_prev+ = -kt x
///  - mode ME (slow gain ke on z, one-sample delay):
///      x+ = phi x + gamma u_prev,  u_prev+ = -ke z
struct SwitchedModes {
  Matrix a_tt;  ///< (n+1)x(n+1) closed loop of mode MT in augmented space
  Matrix a_et;  ///< (n+1)x(n+1) closed loop of mode ME
};
[[nodiscard]] SwitchedModes switched_modes(const DiscreteLti& plant,
                                           const Matrix& kt, const Matrix& ke);

}  // namespace ttdim::control
