// Continuous-to-discrete conversion. The paper's plants are given directly
// in discrete time, but they originate from continuous-time models (DC
// motors, cruise dynamics) sampled at h = 0.02 s; this header lets library
// users start from the physical model.
#pragma once

#include "control/lti.h"

namespace ttdim::control {

/// Continuous-time LTI system  dx/dt = a x + b u,  y = c x.
struct ContinuousLti {
  Matrix a;
  Matrix b;
  Matrix c;
};

/// Matrix exponential e^(a) via scaling-and-squaring on the Taylor series
/// (adequate for the small, well-scaled matrices of control plants).
[[nodiscard]] Matrix expm(const Matrix& a);

/// Zero-order-hold discretisation with sampling period h:
///   phi = e^(A h),  gamma = (integral_0^h e^(A s) ds) B.
/// The integral is evaluated exactly via the augmented-exponential trick
/// exp([A B; 0 0] h) = [phi gamma; 0 I].
[[nodiscard]] DiscreteLti c2d(const ContinuousLti& sys, double h);

}  // namespace ttdim::control
