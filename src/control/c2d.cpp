#include "control/c2d.h"

#include <cmath>

#include "support/check.h"

namespace ttdim::control {

Matrix expm(const Matrix& a) {
  TTDIM_EXPECTS(a.is_square());
  const Index n = a.rows();
  // Scaling: halve until the norm is small, then square back.
  const double norm = a.max_abs() * n;
  int squarings = 0;
  double scale = 1.0;
  while (norm * scale > 0.5) {
    scale *= 0.5;
    ++squarings;
  }
  const Matrix as = a * scale;
  // Taylor series on the scaled matrix; converges fast for |as| <= 0.5.
  Matrix result = Matrix::identity(n);
  Matrix term = Matrix::identity(n);
  for (int k = 1; k <= 24; ++k) {
    term = term * as / static_cast<double>(k);
    result += term;
    if (term.max_abs() < 1e-18) break;
  }
  for (int s = 0; s < squarings; ++s) result = result * result;
  return result;
}

DiscreteLti c2d(const ContinuousLti& sys, double h) {
  TTDIM_EXPECTS(sys.a.is_square());
  TTDIM_EXPECTS(sys.b.rows() == sys.a.rows());
  TTDIM_EXPECTS(sys.c.cols() == sys.a.rows());
  TTDIM_EXPECTS(h > 0.0);
  const Index n = sys.a.rows();
  const Index m = sys.b.cols();
  // exp([A B; 0 0] h) = [phi gamma; 0 I].
  Matrix block(n + m, n + m);
  block.set_block(0, 0, sys.a * h);
  block.set_block(0, n, sys.b * h);
  const Matrix e = expm(block);
  return DiscreteLti(e.block(0, 0, n, n), e.block(0, n, n, m), sys.c, h);
}

}  // namespace ttdim::control
