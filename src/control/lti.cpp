#include "control/lti.h"

#include "linalg/solve.h"
#include "support/check.h"

namespace ttdim::control {

DiscreteLti::DiscreteLti(Matrix phi, Matrix gamma, Matrix c, double h)
    : phi_(std::move(phi)), gamma_(std::move(gamma)), c_(std::move(c)), h_(h) {
  TTDIM_EXPECTS(phi_.is_square());
  TTDIM_EXPECTS(gamma_.rows() == phi_.rows());
  TTDIM_EXPECTS(c_.cols() == phi_.rows());
  TTDIM_EXPECTS(h_ > 0.0);
  TTDIM_EXPECTS(phi_.all_finite() && gamma_.all_finite() && c_.all_finite());
}

DiscreteLti DiscreteLti::augmented_delay_model() const {
  const Index n = n_states();
  const Index m = n_inputs();
  Matrix phi_aug(n + m, n + m);
  phi_aug.set_block(0, 0, phi_);
  phi_aug.set_block(0, n, gamma_);
  Matrix gamma_aug(n + m, m);
  gamma_aug.set_block(n, 0, Matrix::identity(m));
  Matrix c_aug(c_.rows(), n + m);
  c_aug.set_block(0, 0, c_);
  return DiscreteLti(phi_aug, gamma_aug, c_aug, h_);
}

Matrix DiscreteLti::unit_output_state() const {
  // Minimum-norm solution of c x0 = 1 (first output): x0 = c' (c c')^{-1} e1.
  const Matrix ct = c_.transpose();
  const Matrix gram = c_ * ct;
  Matrix e1(c_.rows(), 1);
  e1(0, 0) = 1.0;
  return ct * linalg::solve(gram, e1);
}

void append_canonical(std::string& out, const DiscreteLti& plant) {
  out += "phi=";
  linalg::append_canonical_bits(out, plant.phi());
  out += "gam=";
  linalg::append_canonical_bits(out, plant.gamma());
  out += "c=";
  linalg::append_canonical_bits(out, plant.c());
  out += "h=";
  linalg::append_canonical_bits(out, Matrix{{plant.h()}});
}

void encode(support::codec::Encoder& enc, const DiscreteLti& plant) {
  linalg::encode(enc, plant.phi());
  linalg::encode(enc, plant.gamma());
  linalg::encode(enc, plant.c());
  enc.f64(plant.h());
}

std::optional<DiscreteLti> decode_lti(support::codec::Decoder& dec) {
  Matrix phi;
  Matrix gamma;
  Matrix c;
  double h = 0.0;
  if (!linalg::decode(dec, phi) || !linalg::decode(dec, gamma) ||
      !linalg::decode(dec, c) || !dec.f64(h))
    return std::nullopt;
  if (!phi.is_square() || gamma.rows() != phi.rows() ||
      c.cols() != phi.rows() || !(h > 0.0) || !phi.all_finite() ||
      !gamma.all_finite() || !c.all_finite())
    return std::nullopt;
  return DiscreteLti(std::move(phi), std::move(gamma), std::move(c), h);
}

Matrix closed_loop(const DiscreteLti& plant, const Matrix& k) {
  TTDIM_EXPECTS(k.rows() == plant.n_inputs() && k.cols() == plant.n_states());
  return plant.phi() - plant.gamma() * k;
}

SwitchedModes switched_modes(const DiscreteLti& plant, const Matrix& kt,
                             const Matrix& ke) {
  const Index n = plant.n_states();
  TTDIM_EXPECTS(plant.n_inputs() == 1);
  TTDIM_EXPECTS(kt.rows() == 1 && kt.cols() == n);
  TTDIM_EXPECTS(ke.rows() == 1 && ke.cols() == n + 1);

  Matrix a_tt(n + 1, n + 1);
  a_tt.set_block(0, 0, closed_loop(plant, kt));
  a_tt.set_block(n, 0, -kt);

  Matrix a_et(n + 1, n + 1);
  a_et.set_block(0, 0, plant.phi());
  a_et.set_block(0, n, plant.gamma());
  a_et.set_block(n, 0, -ke);

  return {a_tt, a_et};
}

}  // namespace ttdim::control
