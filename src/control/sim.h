// Closed-loop simulation and settling-time measurement.
#pragma once

#include <optional>
#include <vector>

#include "control/lti.h"

namespace ttdim::control {

/// One simulated sample of a control loop.
struct Sample {
  double t = 0.0;  ///< seconds since the disturbance
  double y = 0.0;  ///< first plant output
  double u = 0.0;  ///< input applied over [t, t+h)
};

using Trace = std::vector<Sample>;

/// Settling-time threshold: the system has settled at sample k0 when
/// |y[k]| <= abs_tol for every k >= k0 (paper Sec. 3.1 uses 0.02 against a
/// unit disturbance).
struct SettlingSpec {
  double abs_tol = 0.02;
  /// Samples simulated when measuring settling; must comfortably exceed
  /// any settling time of interest.
  int horizon = 4000;
};

/// Append a canonical, byte-exact serialization of a settling spec
/// (tolerance bit pattern + horizon) to `out`. Every simulation entry
/// point in this header is a pure function of its arguments, so a spec's
/// canonical form plus the loop's canonical form fully addresses any
/// settling result — what engine::analysis keys rely on.
void append_canonical(std::string& out, const SettlingSpec& spec);

/// Index of the first sample from which the trace output stays within
/// `abs_tol` to the end; nullopt when the trace never settles (including
/// divergence).
[[nodiscard]] std::optional<int> settling_samples(const Trace& trace,
                                                  double abs_tol);

/// Simulate x+ = a x from x0 for `steps` samples, recording y = (c x)(0)
/// and u = (k_u x) if a gain row is supplied (may be empty).
[[nodiscard]] Trace simulate_autonomous(const Matrix& a, const Matrix& c,
                                        const Matrix& x0, double h, int steps);

/// State of the bi-modal loop carried across mode switches.
struct LoopState {
  Matrix x;             ///< plant state (n x 1)
  double u_prev = 0.0;  ///< input applied during the previous sample
};

/// The bi-modal switched control loop of the paper: mode MT applies
/// u = -kt x with negligible delay, mode ME applies u = -ke [x; u_prev]
/// with one full sample of sensing-to-actuation delay.
class SwitchedLoop {
 public:
  /// `kt` is 1 x n, `ke` is 1 x (n+1).
  SwitchedLoop(DiscreteLti plant, Matrix kt, Matrix ke);

  [[nodiscard]] const DiscreteLti& plant() const noexcept { return plant_; }
  [[nodiscard]] const Matrix& kt() const noexcept { return kt_; }
  [[nodiscard]] const Matrix& ke() const noexcept { return ke_; }

  /// Fresh state immediately after a unit disturbance (y jumps to 1, held
  /// input memory cleared) — paper Sec. 3.1.
  [[nodiscard]] LoopState disturbed_state() const;

  /// Advance one sample in mode MT; returns the applied input.
  double step_tt(LoopState& s) const;
  /// Advance one sample in mode ME; returns the applied input (the held
  /// previous command, per the one-sample delay).
  double step_et(LoopState& s) const;

  [[nodiscard]] double output(const LoopState& s) const;

  /// Simulate: `wait` samples of ME, then `dwell` samples of MT, then ME
  /// until `spec.horizon` samples in total. This is exactly the switching
  /// pattern the strategy of Sec. 3 allows. Returns the full trace.
  [[nodiscard]] Trace simulate_pattern(int wait, int dwell,
                                       const SettlingSpec& spec) const;

  /// Settling time (in samples, from the disturbance) of the pattern
  /// above; nullopt when the loop fails to settle within the horizon.
  ///
  /// Equals settling_samples(simulate_pattern(wait, dwell, spec), abs_tol)
  /// bit-for-bit, but runs allocation-free on flattened dynamics instead of
  /// materializing a Trace — the dwell-table search and the switching-
  /// stability grid issue hundreds of thousands of these calls per solve.
  [[nodiscard]] std::optional<int> settling_of_pattern(
      int wait, int dwell, const SettlingSpec& spec) const;

  /// Simulate an arbitrary mode schedule: modes[k] == true means sample k
  /// runs in MT. Samples beyond the schedule run in ME.
  [[nodiscard]] Trace simulate_schedule(const std::vector<bool>& modes,
                                        int total_samples) const;

 private:
  DiscreteLti plant_;
  Matrix kt_;
  Matrix ke_;
};

}  // namespace ttdim::control
