// Dwell-time analysis of the bi-modal switching strategy (paper Sec. 3).
//
// For every wait time Tw (samples spent in mode ME after a disturbance
// before the TT slot is granted) the analysis precomputes, by exhaustive
// simulation of the switched closed loop:
//   T-dw(Tw): minimum TT dwell meeting the settling requirement J <= J*,
//   T+dw(Tw): dwell beyond which settling no longer improves,
//   T*w:      maximum wait for which the requirement is still satisfiable.
#pragma once

#include <optional>
#include <vector>

#include "control/sim.h"
#include "support/codec.h"

namespace ttdim::switching {

using control::SettlingSpec;
using control::SwitchedLoop;

/// Parameters of the dwell-time analysis.
struct DwellAnalysisSpec {
  int settling_requirement = 0;  ///< J*, in samples; must be > 0
  SettlingSpec settling{};       ///< threshold + simulation horizon
  /// Tw is explored on multiples of this granularity (paper Sec. 3: "we
  /// can choose Tw with a certain granularity to enhance scalability";
  /// granularity > 1 trades conservativeness for table size).
  int tw_granularity = 1;
  /// Hard caps guarding against requirements that can never be met.
  int max_wait = 512;
  int max_dwell = 512;
};

/// Dwell-time tables of one application. Indices of `t_minus` / `t_plus` /
/// `settling_at_plus` are Tw = 0, g, 2g, ... t_star_w for granularity g.
struct DwellTables {
  int t_star_w = -1;             ///< T*w; -1 when even Tw = 0 is infeasible
  std::vector<int> t_minus;      ///< T-dw(Tw)
  std::vector<int> t_plus;       ///< T+dw(Tw)
  std::vector<int> settling_at_minus;  ///< J(Tw, T-dw(Tw)), samples
  std::vector<int> settling_at_plus;   ///< J(Tw, T+dw(Tw)), samples
  int settling_tt = 0;           ///< JT: settling when always in MT
  int settling_et = 0;           ///< JE: settling when never leaving ME
  int tw_granularity = 1;

  [[nodiscard]] bool feasible() const noexcept { return t_star_w >= 0; }
  /// Number of table entries (T*w / granularity + 1).
  [[nodiscard]] int entries() const noexcept {
    return static_cast<int>(t_minus.size());
  }
  /// Table lookup for an arbitrary wait (rounded up to the next multiple
  /// of the granularity, the conservative direction).
  [[nodiscard]] int t_minus_at(int wait) const;
  [[nodiscard]] int t_plus_at(int wait) const;
  /// Largest T-dw entry (used as a mapping-order tiebreak in Sec. 5).
  [[nodiscard]] int max_t_minus() const;
};

/// Append canonical serializations to `out`: the analysis parameters
/// (requirement, settling spec, granularity, caps — the dwell half of an
/// engine::analysis::AppAnalysisKey; compute_dwell_tables is a pure
/// function of the loop and this spec) and assembled tables (for
/// bit-exact cached-vs-fresh comparisons), plus the tables' resident byte
/// size for byte-budgeted caches.
void append_canonical(std::string& out, const DwellAnalysisSpec& spec);
void append_canonical(std::string& out, const DwellTables& tables);
[[nodiscard]] std::size_t byte_cost(const DwellTables& tables);

/// Round-trip binary codec for disk-cached dwell tables. decode returns
/// false on malformed input and never throws.
void encode(support::codec::Encoder& enc, const DwellTables& tables);
[[nodiscard]] bool decode(support::codec::Decoder& dec, DwellTables& tables);

/// The settling map J(Tw, Tdw) used by Fig. 3: settling time in samples for
/// every (wait, dwell) pair in the given ranges; nullopt when the pattern
/// fails to settle within the horizon.
struct SettlingMap {
  int wait_count = 0;
  int dwell_count = 0;
  std::vector<std::optional<int>> j;  ///< row-major [wait][dwell]

  [[nodiscard]] const std::optional<int>& at(int wait, int dwell) const;
};

/// One assembled table row: the dwell bounds and achieved settling times
/// for a single wait value. Rows are pure functions of (loop, wait, spec),
/// which is what lets the oracle layer evaluate candidate waits in
/// parallel and still assemble byte-identical tables.
struct DwellRow {
  int t_minus = 0;            ///< T-dw(Tw)
  int t_plus = 0;             ///< T+dw(Tw)
  int settling_at_minus = 0;  ///< J(Tw, T-dw(Tw))
  int settling_at_plus = 0;   ///< J(Tw, T+dw(Tw))
};

/// Evaluate one candidate wait: nullopt when the settling requirement is
/// unmeetable at this wait (the serial search stops at the first such row).
[[nodiscard]] std::optional<DwellRow> compute_dwell_row(
    const SwitchedLoop& loop, int wait, const DwellAnalysisSpec& spec);

/// Validate the spec and measure the mode-only settling times JT / JE.
/// Shared prologue of the serial and parallel table searches; throws
/// std::invalid_argument exactly like compute_dwell_tables.
struct DwellEndpoints {
  int settling_tt = 0;  ///< JT
  int settling_et = 0;  ///< JE (horizon when ME alone never settles)
};
[[nodiscard]] DwellEndpoints check_dwell_spec(const SwitchedLoop& loop,
                                              const DwellAnalysisSpec& spec);

/// Exhaustively simulate all switching patterns allowed by the strategy
/// and assemble the dwell tables. Throws std::invalid_argument when the
/// requirement is unmeetable even with a dedicated slot (J* < JT) or the
/// spec is malformed.
[[nodiscard]] DwellTables compute_dwell_tables(const SwitchedLoop& loop,
                                               const DwellAnalysisSpec& spec);

/// Settling map over wait in [0, wait_count) and dwell in [0, dwell_count).
[[nodiscard]] SettlingMap compute_settling_map(const SwitchedLoop& loop,
                                               int wait_count, int dwell_count,
                                               const SettlingSpec& settling);

/// Run-length encoded dwell table: the paper notes T-dw / T+dw take only a
/// few distinct values, so run-length pairs store them compactly on an ECU.
struct RunLengthTable {
  struct Run {
    int length = 0;
    int value = 0;
  };
  std::vector<Run> runs;

  [[nodiscard]] static RunLengthTable encode(const std::vector<int>& values);
  [[nodiscard]] std::vector<int> decode() const;
  /// Entries a naive array would need vs. what the encoding stores.
  [[nodiscard]] int encoded_words() const noexcept {
    return 2 * static_cast<int>(runs.size());
  }
  [[nodiscard]] int decoded_length() const;
};

}  // namespace ttdim::switching
