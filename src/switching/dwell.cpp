#include "switching/dwell.h"

#include <stdexcept>

#include "support/check.h"

namespace ttdim::switching {

namespace {

/// Settling times J(wait, dwell) for dwell = 0 .. until the response is
/// certain to have settled inside the TT window (from which point J is
/// constant in dwell). Returns the per-dwell settling times; the last entry
/// is the plateau value.
std::vector<std::optional<int>> settling_versus_dwell(
    const SwitchedLoop& loop, int wait, const DwellAnalysisSpec& spec) {
  std::vector<std::optional<int>> out;
  for (int dwell = 0; dwell <= spec.max_dwell; ++dwell) {
    const std::optional<int> j =
        loop.settling_of_pattern(wait, dwell, spec.settling);
    out.push_back(j);
    // Plateau: the loop settled strictly inside the TT window, so a longer
    // dwell reproduces the same trajectory prefix and the same J.
    if (dwell > 0 && j.has_value() && *j < wait + dwell) break;
  }
  return out;
}

}  // namespace

int DwellTables::t_minus_at(int wait) const {
  TTDIM_EXPECTS(feasible() && wait >= 0 && wait <= t_star_w);
  const int idx = (wait + tw_granularity - 1) / tw_granularity;
  return t_minus[static_cast<size_t>(idx)];
}

int DwellTables::t_plus_at(int wait) const {
  TTDIM_EXPECTS(feasible() && wait >= 0 && wait <= t_star_w);
  const int idx = (wait + tw_granularity - 1) / tw_granularity;
  return t_plus[static_cast<size_t>(idx)];
}

int DwellTables::max_t_minus() const {
  TTDIM_EXPECTS(feasible());
  int m = 0;
  for (int v : t_minus) m = std::max(m, v);
  return m;
}

namespace {

void append_table(std::string& out, const std::vector<int>& values) {
  for (int v : values) {
    out += std::to_string(v);
    out += ',';
  }
  out += ';';
}

}  // namespace

void append_canonical(std::string& out, const DwellAnalysisSpec& spec) {
  out += "j*=";
  out += std::to_string(spec.settling_requirement);
  out += ';';
  control::append_canonical(out, spec.settling);
  out += "g=";
  out += std::to_string(spec.tw_granularity);
  out += ";w<=";
  out += std::to_string(spec.max_wait);
  out += ";d<=";
  out += std::to_string(spec.max_dwell);
  out += ';';
}

void append_canonical(std::string& out, const DwellTables& tables) {
  out += "t*w=";
  out += std::to_string(tables.t_star_w);
  out += ";jt=";
  out += std::to_string(tables.settling_tt);
  out += ";je=";
  out += std::to_string(tables.settling_et);
  out += ";g=";
  out += std::to_string(tables.tw_granularity);
  out += ";-";
  append_table(out, tables.t_minus);
  out += '+';
  append_table(out, tables.t_plus);
  out += "j-";
  append_table(out, tables.settling_at_minus);
  out += "j+";
  append_table(out, tables.settling_at_plus);
}

std::size_t byte_cost(const DwellTables& tables) {
  const std::size_t entries =
      tables.t_minus.size() + tables.t_plus.size() +
      tables.settling_at_minus.size() + tables.settling_at_plus.size();
  return sizeof(DwellTables) + entries * sizeof(int);
}

void encode(support::codec::Encoder& enc, const DwellTables& tables) {
  enc.i32(tables.t_star_w);
  enc.i32(tables.settling_tt);
  enc.i32(tables.settling_et);
  enc.i32(tables.tw_granularity);
  enc.ints(tables.t_minus);
  enc.ints(tables.t_plus);
  enc.ints(tables.settling_at_minus);
  enc.ints(tables.settling_at_plus);
}

bool decode(support::codec::Decoder& dec, DwellTables& tables) {
  tables = DwellTables{};
  return dec.i32(tables.t_star_w) && dec.i32(tables.settling_tt) &&
         dec.i32(tables.settling_et) && dec.i32(tables.tw_granularity) &&
         dec.ints(tables.t_minus) && dec.ints(tables.t_plus) &&
         dec.ints(tables.settling_at_minus) &&
         dec.ints(tables.settling_at_plus);
}

const std::optional<int>& SettlingMap::at(int wait, int dwell) const {
  TTDIM_EXPECTS(wait >= 0 && wait < wait_count);
  TTDIM_EXPECTS(dwell >= 0 && dwell < dwell_count);
  return j[static_cast<size_t>(wait * dwell_count + dwell)];
}

DwellEndpoints check_dwell_spec(const SwitchedLoop& loop,
                                const DwellAnalysisSpec& spec) {
  if (spec.settling_requirement <= 0)
    throw std::invalid_argument("dwell analysis: J* must be positive");
  if (spec.tw_granularity < 1)
    throw std::invalid_argument("dwell analysis: granularity must be >= 1");
  if (spec.settling.horizon <= 2 * spec.settling_requirement)
    throw std::invalid_argument(
        "dwell analysis: settling horizon too short for the requirement");

  // JT: dedicated slot (mode MT throughout). JE: dynamic segment only.
  const std::optional<int> jt =
      loop.settling_of_pattern(0, spec.settling.horizon, spec.settling);
  const std::optional<int> je = loop.settling_of_pattern(0, 0, spec.settling);
  if (!jt.has_value())
    throw std::invalid_argument(
        "dwell analysis: loop does not settle even with a dedicated TT slot");
  if (*jt > spec.settling_requirement)
    throw std::invalid_argument(
        "dwell analysis: requirement unmeetable, J* < JT");
  return {*jt, je.value_or(spec.settling.horizon)};
}

std::optional<DwellRow> compute_dwell_row(const SwitchedLoop& loop, int wait,
                                          const DwellAnalysisSpec& spec) {
  const std::vector<std::optional<int>> by_dwell =
      settling_versus_dwell(loop, wait, spec);
  // Minimum dwell meeting the requirement; dwell 0 is not an option (the
  // strategy always takes the slot for at least one sample once granted).
  std::optional<int> t_minus;
  for (int d = 1; d < static_cast<int>(by_dwell.size()); ++d) {
    const auto& j = by_dwell[static_cast<size_t>(d)];
    if (j.has_value() && *j <= spec.settling_requirement) {
      t_minus = d;
      break;
    }
  }
  if (!t_minus.has_value()) return std::nullopt;

  // Smallest dwell reaching the best achievable settling time. The tail
  // entry of by_dwell is the plateau, so the minimum over the vector is
  // the minimum over all dwells.
  int j_best = spec.settling.horizon;
  for (int d = 1; d < static_cast<int>(by_dwell.size()); ++d) {
    const auto& j = by_dwell[static_cast<size_t>(d)];
    if (j.has_value()) j_best = std::min(j_best, *j);
  }
  int t_plus = *t_minus;
  for (int d = 1; d < static_cast<int>(by_dwell.size()); ++d) {
    const auto& j = by_dwell[static_cast<size_t>(d)];
    if (j.has_value() && *j == j_best) {
      t_plus = d;
      break;
    }
  }

  DwellRow row;
  row.t_minus = *t_minus;
  row.t_plus = t_plus;
  row.settling_at_minus = *by_dwell[static_cast<size_t>(*t_minus)];
  row.settling_at_plus = *by_dwell[static_cast<size_t>(t_plus)];
  return row;
}

DwellTables compute_dwell_tables(const SwitchedLoop& loop,
                                 const DwellAnalysisSpec& spec) {
  const DwellEndpoints endpoints = check_dwell_spec(loop, spec);
  DwellTables tables;
  tables.tw_granularity = spec.tw_granularity;
  tables.settling_tt = endpoints.settling_tt;
  tables.settling_et = endpoints.settling_et;

  for (int wait = 0; wait <= spec.max_wait; wait += spec.tw_granularity) {
    const std::optional<DwellRow> row = compute_dwell_row(loop, wait, spec);
    if (!row.has_value()) break;  // this and larger waits are infeasible
    tables.t_star_w = wait;
    tables.t_minus.push_back(row->t_minus);
    tables.t_plus.push_back(row->t_plus);
    tables.settling_at_minus.push_back(row->settling_at_minus);
    tables.settling_at_plus.push_back(row->settling_at_plus);
  }
  if (tables.t_star_w < 0) return tables;  // infeasible even at Tw = 0

  TTDIM_ENSURES(tables.t_minus.size() == tables.t_plus.size());
  TTDIM_ENSURES(static_cast<int>(tables.t_minus.size()) ==
                tables.t_star_w / spec.tw_granularity + 1);
  return tables;
}

SettlingMap compute_settling_map(const SwitchedLoop& loop, int wait_count,
                                 int dwell_count,
                                 const SettlingSpec& settling) {
  TTDIM_EXPECTS(wait_count > 0 && dwell_count > 0);
  SettlingMap map;
  map.wait_count = wait_count;
  map.dwell_count = dwell_count;
  map.j.reserve(static_cast<size_t>(wait_count * dwell_count));
  for (int w = 0; w < wait_count; ++w)
    for (int d = 0; d < dwell_count; ++d)
      map.j.push_back(loop.settling_of_pattern(w, d, settling));
  return map;
}

RunLengthTable RunLengthTable::encode(const std::vector<int>& values) {
  RunLengthTable t;
  for (int v : values) {
    if (!t.runs.empty() && t.runs.back().value == v) {
      ++t.runs.back().length;
    } else {
      t.runs.push_back({1, v});
    }
  }
  return t;
}

std::vector<int> RunLengthTable::decode() const {
  std::vector<int> out;
  for (const Run& r : runs) {
    TTDIM_EXPECTS(r.length > 0);
    out.insert(out.end(), static_cast<size_t>(r.length), r.value);
  }
  return out;
}

int RunLengthTable::decoded_length() const {
  int n = 0;
  for (const Run& r : runs) n += r.length;
  return n;
}

}  // namespace ttdim::switching
