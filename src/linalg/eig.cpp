#include "linalg/eig.h"

#include <cmath>
#include <stdexcept>

#include "support/check.h"

namespace ttdim::linalg {

namespace {

using Cplx = std::complex<double>;

/// Minimal square complex matrix helper private to this translation unit.
class CMat {
 public:
  explicit CMat(Index n) : n_(n), d_(static_cast<size_t>(n * n)) {}

  [[nodiscard]] Cplx& at(Index r, Index c) {
    return d_[static_cast<size_t>(r * n_ + c)];
  }
  [[nodiscard]] const Cplx& at(Index r, Index c) const {
    return d_[static_cast<size_t>(r * n_ + c)];
  }
  [[nodiscard]] Index n() const { return n_; }

 private:
  Index n_;
  std::vector<Cplx> d_;
};

/// Reduce to upper Hessenberg form by similarity (Gaussian elimination with
/// pivoting — standard and stable enough at these sizes).
void hessenberg(CMat& h) {
  const Index n = h.n();
  for (Index k = 1; k < n - 1; ++k) {
    // Pivot: largest entry in column k-1 below row k-1.
    Index p = k;
    for (Index i = k + 1; i < n; ++i)
      if (std::abs(h.at(i, k - 1)) > std::abs(h.at(p, k - 1))) p = i;
    if (std::abs(h.at(p, k - 1)) == 0.0) continue;
    if (p != k) {
      for (Index c = 0; c < n; ++c) std::swap(h.at(p, c), h.at(k, c));
      for (Index r = 0; r < n; ++r) std::swap(h.at(r, p), h.at(r, k));
    }
    for (Index i = k + 1; i < n; ++i) {
      const Cplx m = h.at(i, k - 1) / h.at(k, k - 1);
      if (m == 0.0) continue;
      for (Index c = k - 1; c < n; ++c) h.at(i, c) -= m * h.at(k, c);
      for (Index r = 0; r < n; ++r) h.at(r, k) += m * h.at(r, i);
    }
  }
}

/// One shifted QR sweep on the active block h[0..m, 0..m] using Givens
/// rotations.
void qr_sweep(CMat& h, Index m, Cplx shift) {
  const Index n = h.n();
  std::vector<Cplx> cs(static_cast<size_t>(m));
  std::vector<Cplx> sn(static_cast<size_t>(m));
  for (Index i = 0; i <= m; ++i) h.at(i, i) -= shift;
  // QR: zero the subdiagonal with Givens rotations.
  for (Index k = 0; k < m; ++k) {
    const Cplx a = h.at(k, k);
    const Cplx b = h.at(k + 1, k);
    const double r = std::hypot(std::abs(a), std::abs(b));
    Cplx c{1.0, 0.0};
    Cplx s{0.0, 0.0};
    if (r > 0.0) {
      c = std::conj(a) / r;
      s = std::conj(b) / r;
    }
    cs[static_cast<size_t>(k)] = c;
    sn[static_cast<size_t>(k)] = s;
    for (Index col = k; col < n; ++col) {
      const Cplx t1 = h.at(k, col);
      const Cplx t2 = h.at(k + 1, col);
      h.at(k, col) = c * t1 + s * t2;
      h.at(k + 1, col) = -std::conj(s) * t1 + std::conj(c) * t2;
    }
  }
  // RQ: apply the conjugate rotations from the right.
  for (Index k = 0; k < m; ++k) {
    const Cplx c = cs[static_cast<size_t>(k)];
    const Cplx s = sn[static_cast<size_t>(k)];
    for (Index row = 0; row <= std::min(k + 2, m); ++row) {
      const Cplx t1 = h.at(row, k);
      const Cplx t2 = h.at(row, k + 1);
      h.at(row, k) = t1 * std::conj(c) + t2 * std::conj(s);
      h.at(row, k + 1) = -t1 * s + t2 * c;
    }
  }
  for (Index i = 0; i <= m; ++i) h.at(i, i) += shift;
}

/// Wilkinson shift for the trailing 2x2 of the active block.
Cplx wilkinson_shift(const CMat& h, Index m) {
  const Cplx a = h.at(m - 1, m - 1);
  const Cplx b = h.at(m - 1, m);
  const Cplx c = h.at(m, m - 1);
  const Cplx d = h.at(m, m);
  const Cplx tr = a + d;
  const Cplx det = a * d - b * c;
  const Cplx disc = std::sqrt(tr * tr - 4.0 * det);
  const Cplx l1 = 0.5 * (tr + disc);
  const Cplx l2 = 0.5 * (tr - disc);
  return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

}  // namespace

std::vector<Cplx> eigenvalues(const Matrix& a) {
  TTDIM_EXPECTS(a.is_square());
  const Index n = a.rows();
  std::vector<Cplx> out;
  out.reserve(static_cast<size_t>(n));
  if (n == 0) return out;
  if (n == 1) return {Cplx{a(0, 0), 0.0}};

  CMat h(n);
  for (Index r = 0; r < n; ++r)
    for (Index c = 0; c < n; ++c) h.at(r, c) = a(r, c);
  hessenberg(h);

  const double scale = std::max(a.max_abs(), 1.0);
  const double eps = 1e-14 * scale;
  Index m = n - 1;  // active block is h[0..m, 0..m]
  int iter = 0;
  const int max_iter_per_eig = 200;
  int since_deflation = 0;
  while (m > 0) {
    // Deflate whenever a subdiagonal entry is negligible.
    bool deflated = false;
    for (Index k = m; k >= 1; --k) {
      if (std::abs(h.at(k, k - 1)) <=
          eps + 1e-13 * (std::abs(h.at(k, k)) + std::abs(h.at(k - 1, k - 1)))) {
        h.at(k, k - 1) = 0.0;
        if (k == m) {
          out.push_back(h.at(m, m));
          --m;
          deflated = true;
          since_deflation = 0;
          break;
        }
      }
    }
    if (deflated) continue;
    if (++iter > max_iter_per_eig * static_cast<int>(n))
      throw std::runtime_error("eigenvalues: QR iteration failed to converge");
    // Exceptional shift every 30 stalled sweeps, standard Wilkinson shift
    // otherwise.
    Cplx shift = wilkinson_shift(h, m);
    if (++since_deflation % 30 == 0)
      shift = Cplx{std::abs(h.at(m, m - 1)) + std::abs(h.at(m, m)), 0.0};
    qr_sweep(h, m, shift);
  }
  out.push_back(h.at(0, 0));
  TTDIM_ENSURES(static_cast<Index>(out.size()) == n);
  // A real matrix has conjugate-pair spectrum; scrub numerically tiny
  // imaginary parts so downstream real-coefficient expansions are clean.
  for (Cplx& v : out)
    if (std::abs(v.imag()) < 1e-9 * std::max(1.0, std::abs(v.real())))
      v = Cplx{v.real(), 0.0};
  return out;
}

double spectral_radius(const Matrix& a) {
  double r = 0.0;
  for (const Cplx& l : eigenvalues(a)) r = std::max(r, std::abs(l));
  return r;
}

bool is_schur_stable(const Matrix& a, double margin) {
  return spectral_radius(a) < 1.0 - margin;
}

SymEig sym_eig(const Matrix& a) {
  TTDIM_EXPECTS(a.is_square());
  TTDIM_EXPECTS(a.is_symmetric(1e-8 * std::max(1.0, a.max_abs())));
  const Index n = a.rows();
  Matrix m = a;
  m.symmetrize();
  Matrix v = Matrix::identity(n);
  for (int sweep = 0; sweep < 128; ++sweep) {
    double off = 0.0;
    for (Index i = 0; i < n; ++i)
      for (Index j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    if (off < 1e-24 * std::max(1.0, m.max_abs() * m.max_abs())) break;
    for (Index p = 0; p < n; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        if (std::abs(m(p, q)) < 1e-18) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * m(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (Index k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (Index k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (Index k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  SymEig out;
  out.values.resize(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) out.values[static_cast<size_t>(i)] = m(i, i);
  out.vectors = std::move(v);
  return out;
}

double min_sym_eigenvalue(const Matrix& a) {
  const SymEig e = sym_eig(a);
  double m = e.values.front();
  for (double v : e.values) m = std::min(m, v);
  return m;
}

std::vector<double> poly_from_roots(const std::vector<Cplx>& roots) {
  std::vector<Cplx> c{Cplx{1.0, 0.0}};
  for (const Cplx& r : roots) {
    std::vector<Cplx> next(c.size() + 1, Cplx{0.0, 0.0});
    for (size_t i = 0; i < c.size(); ++i) {
      next[i] += c[i];
      next[i + 1] -= r * c[i];
    }
    c = std::move(next);
  }
  std::vector<double> out;
  out.reserve(c.size() - 1);
  for (size_t i = 1; i < c.size(); ++i) {
    if (std::abs(c[i].imag()) > 1e-9)
      throw std::domain_error(
          "poly_from_roots: roots are not closed under conjugation");
    out.push_back(c[i].real());
  }
  return out;
}

Matrix polyvalm(const std::vector<double>& monic_coeffs, const Matrix& a) {
  TTDIM_EXPECTS(a.is_square());
  const Index n = a.rows();
  // Horner: p(A) = (...((A + c0 I) A + c1 I) A + ...)
  Matrix p = Matrix::identity(n);
  for (double c : monic_coeffs) {
    p = p * a;
    for (Index i = 0; i < n; ++i) p(i, i) += c;
  }
  return p;
}

}  // namespace ttdim::linalg
