#include "linalg/matrix.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ostream>

#include "support/check.h"

namespace ttdim::linalg {

Matrix::Matrix(Index rows, Index cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.0) {
  TTDIM_EXPECTS(rows >= 0 && cols >= 0);
}

Matrix::Matrix(Index rows, Index cols, double value)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(rows * cols), value) {
  TTDIM_EXPECTS(rows >= 0 && cols >= 0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<Index>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<Index>(rows.begin()->size());
  data_.reserve(static_cast<size_t>(rows_ * cols_));
  for (const auto& r : rows) {
    TTDIM_EXPECTS(static_cast<Index>(r.size()) == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(Index n) {
  Matrix m(n, n);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zero(Index rows, Index cols) { return Matrix(rows, cols); }

Matrix Matrix::column(std::initializer_list<double> values) {
  Matrix m(static_cast<Index>(values.size()), 1);
  Index i = 0;
  for (double v : values) m(i++, 0) = v;
  return m;
}

Matrix Matrix::column(const std::vector<double>& values) {
  Matrix m(static_cast<Index>(values.size()), 1);
  for (Index i = 0; i < m.rows(); ++i) m(i, 0) = values[static_cast<size_t>(i)];
  return m;
}

Matrix Matrix::row(std::initializer_list<double> values) {
  return column(values).transpose();
}

Matrix Matrix::row(const std::vector<double>& values) {
  return column(values).transpose();
}

double& Matrix::operator()(Index r, Index c) {
  TTDIM_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r * cols_ + c)];
}

double Matrix::operator()(Index r, Index c) const {
  TTDIM_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r * cols_ + c)];
}

double& Matrix::operator[](Index i) {
  TTDIM_EXPECTS(is_vector() && i >= 0 && i < size());
  return data_[static_cast<size_t>(i)];
}

double Matrix::operator[](Index i) const {
  TTDIM_EXPECTS(is_vector() && i >= 0 && i < size());
  return data_[static_cast<size_t>(i)];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (Index r = 0; r < rows_; ++r)
    for (Index c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::block(Index r0, Index c0, Index nr, Index nc) const {
  TTDIM_EXPECTS(r0 >= 0 && c0 >= 0 && nr >= 0 && nc >= 0);
  TTDIM_EXPECTS(r0 + nr <= rows_ && c0 + nc <= cols_);
  Matrix b(nr, nc);
  for (Index r = 0; r < nr; ++r)
    for (Index c = 0; c < nc; ++c) b(r, c) = (*this)(r0 + r, c0 + c);
  return b;
}

Matrix Matrix::row_at(Index r) const { return block(r, 0, 1, cols_); }

Matrix Matrix::col_at(Index c) const { return block(0, c, rows_, 1); }

void Matrix::set_block(Index r0, Index c0, const Matrix& m) {
  TTDIM_EXPECTS(r0 >= 0 && c0 >= 0);
  TTDIM_EXPECTS(r0 + m.rows() <= rows_ && c0 + m.cols() <= cols_);
  for (Index r = 0; r < m.rows(); ++r)
    for (Index c = 0; c < m.cols(); ++c) (*this)(r0 + r, c0 + c) = m(r, c);
}

Matrix Matrix::vstack(const Matrix& below) const {
  TTDIM_EXPECTS(cols_ == below.cols());
  Matrix s(rows_ + below.rows(), cols_);
  s.set_block(0, 0, *this);
  s.set_block(rows_, 0, below);
  return s;
}

Matrix Matrix::hstack(const Matrix& right) const {
  TTDIM_EXPECTS(rows_ == right.rows());
  Matrix s(rows_, cols_ + right.cols());
  s.set_block(0, 0, *this);
  s.set_block(0, cols_, right);
  return s;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  TTDIM_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  TTDIM_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::operator/=(double s) {
  TTDIM_EXPECTS(s != 0.0);
  for (double& v : data_) v /= s;
  return *this;
}

Matrix operator*(const Matrix& lhs, const Matrix& rhs) {
  TTDIM_EXPECTS(lhs.cols() == rhs.rows());
  Matrix p(lhs.rows(), rhs.cols());
  for (Index r = 0; r < lhs.rows(); ++r) {
    for (Index k = 0; k < lhs.cols(); ++k) {
      const double a = lhs(r, k);
      if (a == 0.0) continue;
      for (Index c = 0; c < rhs.cols(); ++c) p(r, c) += a * rhs(k, c);
    }
  }
  return p;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::trace() const {
  TTDIM_EXPECTS(is_square());
  double t = 0.0;
  for (Index i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::dot(const Matrix& other) const {
  TTDIM_EXPECTS(is_vector() && other.is_vector() && size() == other.size());
  double s = 0.0;
  for (Index i = 0; i < size(); ++i) s += (*this)[i] * other[i];
  return s;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i)
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  return true;
}

bool Matrix::all_finite() const {
  for (double v : data_)
    if (!std::isfinite(v)) return false;
  return true;
}

bool Matrix::is_symmetric(double tol) const {
  if (!is_square()) return false;
  for (Index r = 0; r < rows_; ++r)
    for (Index c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

void Matrix::symmetrize() {
  TTDIM_EXPECTS(is_square());
  for (Index r = 0; r < rows_; ++r) {
    for (Index c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
  }
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "[";
  for (Index r = 0; r < m.rows(); ++r) {
    if (r > 0) os << "; ";
    for (Index c = 0; c < m.cols(); ++c) {
      if (c > 0) os << ", ";
      os << m(r, c);
    }
  }
  return os << "]";
}

Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix k(a.rows() * b.rows(), a.cols() * b.cols());
  for (Index ar = 0; ar < a.rows(); ++ar)
    for (Index ac = 0; ac < a.cols(); ++ac) {
      const double s = a(ar, ac);
      if (s == 0.0) continue;
      for (Index br = 0; br < b.rows(); ++br)
        for (Index bc = 0; bc < b.cols(); ++bc)
          k(ar * b.rows() + br, ac * b.cols() + bc) = s * b(br, bc);
    }
  return k;
}

Matrix vec(const Matrix& a) {
  Matrix v(a.rows() * a.cols(), 1);
  Index i = 0;
  for (Index c = 0; c < a.cols(); ++c)
    for (Index r = 0; r < a.rows(); ++r) v(i++, 0) = a(r, c);
  return v;
}

Matrix unvec(const Matrix& v, Index rows, Index cols) {
  TTDIM_EXPECTS(v.is_vector() && v.size() == rows * cols);
  Matrix a(rows, cols);
  Index i = 0;
  for (Index c = 0; c < cols; ++c)
    for (Index r = 0; r < rows; ++r) a(r, c) = v[i++];
  return a;
}

void append_canonical_bits(std::string& out, const Matrix& m) {
  out += std::to_string(m.rows());
  out += 'x';
  out += std::to_string(m.cols());
  out += ':';
  char hex[17];
  for (double entry : m.data()) {
    // The bit pattern, not the value: -0.0 vs 0.0 and every NaN payload
    // stay distinguishable, and no decimal round-trip can merge keys.
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(entry), "IEEE-754 double expected");
    std::memcpy(&bits, &entry, sizeof(bits));
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(bits));
    out += hex;
  }
  out += ';';
}

std::size_t byte_cost(const Matrix& m) {
  return sizeof(Matrix) + static_cast<std::size_t>(m.size()) * sizeof(double);
}

void encode(support::codec::Encoder& enc, const Matrix& m) {
  enc.u32(static_cast<std::uint32_t>(m.rows()));
  enc.u32(static_cast<std::uint32_t>(m.cols()));
  for (double entry : m.data()) enc.f64(entry);
}

bool decode(support::codec::Decoder& dec, Matrix& m) {
  m = Matrix{};
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  if (!dec.u32(rows) || !dec.u32(cols)) return false;
  // Plants are at most a few states; 1024 is absurdly generous, and the
  // remaining-bytes check stops a corrupt header from driving a large
  // allocation before the entry checksum would have caught it.
  constexpr std::uint32_t kMaxDim = 1024;
  if (rows > kMaxDim || cols > kMaxDim) return false;
  const std::size_t entries =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  if (entries * sizeof(double) > dec.remaining()) return false;
  Matrix out(static_cast<Index>(rows), static_cast<Index>(cols));
  for (Index r = 0; r < out.rows(); ++r)
    for (Index c = 0; c < out.cols(); ++c)
      if (!dec.f64(out(r, c))) return false;
  m = std::move(out);
  return true;
}

}  // namespace ttdim::linalg
