#include "linalg/lyap.h"

#include <cmath>
#include <stdexcept>

#include "linalg/eig.h"
#include "linalg/solve.h"
#include "support/check.h"

namespace ttdim::linalg {

Matrix dlyap(const Matrix& a, const Matrix& q) {
  TTDIM_EXPECTS(a.is_square() && q.is_square() && a.rows() == q.rows());
  TTDIM_EXPECTS(q.is_symmetric(1e-9));
  const Index n = a.rows();
  const Matrix at = a.transpose();
  const Matrix lhs = kron(at, at) - Matrix::identity(n * n);
  Matrix p;
  try {
    p = unvec(solve(lhs, -vec(q)), n, n);
  } catch (const std::domain_error&) {
    throw std::domain_error(
        "dlyap: singular Lyapunov operator (reciprocal eigenvalue pair)");
  }
  p.symmetrize();
  return p;
}

bool is_positive_definite(const Matrix& p, double tol) {
  TTDIM_EXPECTS(p.is_square());
  if (!p.is_symmetric(1e-8 * std::max(1.0, p.max_abs()))) return false;
  // In-place Cholesky; failure of any pivot means not PD.
  const Index n = p.rows();
  Matrix l = p;
  for (Index k = 0; k < n; ++k) {
    double d = l(k, k);
    for (Index j = 0; j < k; ++j) d -= l(k, j) * l(k, j);
    if (d <= tol * std::max(1.0, p.max_abs())) return false;
    const double s = std::sqrt(d);
    l(k, k) = s;
    for (Index i = k + 1; i < n; ++i) {
      double v = l(i, k);
      for (Index j = 0; j < k; ++j) v -= l(i, j) * l(k, j);
      l(i, k) = v / s;
    }
  }
  return true;
}

bool certifies_decrease(const Matrix& a, const Matrix& p, double tol) {
  Matrix dec = p - a.transpose() * p * a;  // must be positive definite
  dec.symmetrize();
  return is_positive_definite(dec, tol);
}

namespace {

/// Dimension cap of the allocation-free subgradient phase below; larger
/// problems use the Matrix-based loop. The paper's augmented closed loops
/// are at most 4x4.
constexpr Index kFlatN = 6;

/// Jacobi eigensolver on flat storage, arithmetically identical to
/// sym_eig() (same sweep limit, thresholds, rotation order and term
/// order) so the subgradient iterates below match the Matrix path bit
/// for bit.
void flat_sym_eig(const double (&f)[kFlatN][kFlatN], Index n,
                  double (&values)[kFlatN], double (&vectors)[kFlatN][kFlatN]) {
  double m[kFlatN][kFlatN];
  for (Index r = 0; r < n; ++r)
    for (Index c = 0; c < n; ++c) m[r][c] = f[r][c];
  for (Index r = 0; r < n; ++r)
    for (Index c = 0; c < n; ++c) vectors[r][c] = (r == c) ? 1.0 : 0.0;
  for (int sweep = 0; sweep < 128; ++sweep) {
    double off = 0.0;
    for (Index i = 0; i < n; ++i)
      for (Index j = i + 1; j < n; ++j) off += m[i][j] * m[i][j];
    double ma = 0.0;
    for (Index r = 0; r < n; ++r)
      for (Index c = 0; c < n; ++c) ma = std::max(ma, std::abs(m[r][c]));
    if (off < 1e-24 * std::max(1.0, ma * ma)) break;
    for (Index p = 0; p < n; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        if (std::abs(m[p][q]) < 1e-18) continue;
        const double theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (Index k = 0; k < n; ++k) {
          const double mkp = m[k][p];
          const double mkq = m[k][q];
          m[k][p] = c * mkp - s * mkq;
          m[k][q] = s * mkp + c * mkq;
        }
        for (Index k = 0; k < n; ++k) {
          const double mpk = m[p][k];
          const double mqk = m[q][k];
          m[p][k] = c * mpk - s * mqk;
          m[q][k] = s * mpk + c * mqk;
        }
        for (Index k = 0; k < n; ++k) {
          const double vkp = vectors[k][p];
          const double vkq = vectors[k][q];
          vectors[k][p] = c * vkp - s * vkq;
          vectors[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }
  for (Index i = 0; i < n; ++i) values[i] = m[i][i];
}

/// The subgradient feasibility phase of find_common_lyapunov on flat
/// storage: every arithmetic step mirrors the Matrix operator chain of the
/// reference loop (documented there), so `best` is the exact same iterate
/// — only the per-iteration heap traffic is gone. Returns the best iterate
/// found within the budget.
Matrix flat_subgradient_phase(const Matrix& a1m, const Matrix& a2m,
                              const Matrix& p0, double eps) {
  const Index n = a1m.rows();
  TTDIM_EXPECTS(n <= kFlatN);
  double a1[kFlatN][kFlatN], a2[kFlatN][kFlatN];
  double p[kFlatN][kFlatN], best[kFlatN][kFlatN];
  for (Index r = 0; r < n; ++r)
    for (Index c = 0; c < n; ++c) {
      a1[r][c] = a1m(r, c);
      a2[r][c] = a2m(r, c);
      p[r][c] = p0(r, c);
      best[r][c] = p0(r, c);
    }
  double best_violation = 1e18;
  double grad[kFlatN][kFlatN] = {};
  for (int it = 0; it < 40000; ++it) {
    double worst = -1e18;
    for (int m = 0; m < 3; ++m) {
      // f = p (m == 0) or p - a' p a, symmetrized. The products replicate
      // Matrix operator*'s left association and exact-zero-entry skip.
      double f[kFlatN][kFlatN];
      if (m == 0) {
        for (Index r = 0; r < n; ++r)
          for (Index c = 0; c < n; ++c) f[r][c] = p[r][c];
      } else {
        const auto& a = (m == 1) ? a1 : a2;
        double t1[kFlatN][kFlatN];  // a' * p
        for (Index r = 0; r < n; ++r) {
          for (Index c = 0; c < n; ++c) t1[r][c] = 0.0;
          for (Index k = 0; k < n; ++k) {
            const double x = a[k][r];  // at(r, k)
            if (x == 0.0) continue;
            for (Index c = 0; c < n; ++c) t1[r][c] += x * p[k][c];
          }
        }
        for (Index r = 0; r < n; ++r) {
          for (Index c = 0; c < n; ++c) f[r][c] = 0.0;
          for (Index k = 0; k < n; ++k) {
            const double x = t1[r][k];
            if (x == 0.0) continue;
            for (Index c = 0; c < n; ++c) f[r][c] += x * a[k][c];
          }
          for (Index c = 0; c < n; ++c) f[r][c] = p[r][c] - f[r][c];
        }
      }
      for (Index r = 0; r < n; ++r)
        for (Index c = r + 1; c < n; ++c) {
          const double avg = 0.5 * (f[r][c] + f[c][r]);
          f[r][c] = avg;
          f[c][r] = avg;
        }
      double values[kFlatN] = {};
      double vectors[kFlatN][kFlatN] = {};
      flat_sym_eig(f, n, values, vectors);
      Index mi = 0;
      for (Index i = 1; i < n; ++i)
        if (values[i] < values[mi]) mi = i;
      const double violation = eps - values[mi];
      if (violation > worst) {
        worst = violation;
        double v[kFlatN];
        for (Index k = 0; k < n; ++k) v[k] = vectors[k][mi];
        // grad = v v'  (rows with v(r) == 0 stay zero, as in operator*).
        for (Index r = 0; r < n; ++r)
          for (Index c = 0; c < n; ++c)
            grad[r][c] = (v[r] == 0.0) ? 0.0 : 0.0 + v[r] * v[c];
        if (m > 0) {
          const auto& a = (m == 1) ? a1 : a2;
          double av[kFlatN];
          for (Index r = 0; r < n; ++r) {
            av[r] = 0.0;
            for (Index k = 0; k < n; ++k) {
              const double x = a[r][k];
              if (x == 0.0) continue;
              av[r] += x * v[k];
            }
          }
          for (Index r = 0; r < n; ++r)
            for (Index c = 0; c < n; ++c)
              grad[r][c] -= (av[r] == 0.0) ? 0.0 : 0.0 + av[r] * av[c];
        }
      }
    }
    if (worst < best_violation) {
      best_violation = worst;
      for (Index r = 0; r < n; ++r)
        for (Index c = 0; c < n; ++c) best[r][c] = p[r][c];
    }
    if (worst <= 0.0) break;
    double sq = 0.0;
    for (Index r = 0; r < n; ++r)
      for (Index c = 0; c < n; ++c) sq += grad[r][c] * grad[r][c];
    const double nrm = std::sqrt(sq);
    const double g2 = nrm * nrm;
    const double step = 0.5 * worst / std::max(1.0, g2);
    for (Index r = 0; r < n; ++r)
      for (Index c = 0; c < n; ++c) p[r][c] += grad[r][c] * step;
    for (Index r = 0; r < n; ++r)
      for (Index c = r + 1; c < n; ++c) {
        const double avg = 0.5 * (p[r][c] + p[c][r]);
        p[r][c] = avg;
        p[c][r] = avg;
      }
    double scale = 0.0;
    for (Index r = 0; r < n; ++r)
      for (Index c = 0; c < n; ++c) scale = std::max(scale, std::abs(p[r][c]));
    if (scale > 0.0)
      for (Index r = 0; r < n; ++r)
        for (Index c = 0; c < n; ++c) p[r][c] /= scale;
  }
  Matrix out(n, n);
  for (Index r = 0; r < n; ++r)
    for (Index c = 0; c < n; ++c) out(r, c) = best[r][c];
  return out;
}

}  // namespace

CommonLyapunov find_common_lyapunov(const Matrix& a1, const Matrix& a2) {
  TTDIM_EXPECTS(a1.is_square() && a2.is_square() && a1.rows() == a2.rows());
  const Index n = a1.rows();
  // A CQLF requires each mode to be Schur stable on its own.
  if (!is_schur_stable(a1) || !is_schur_stable(a2)) return {};

  const Matrix q = Matrix::identity(n);
  std::vector<Matrix> candidates;
  const Matrix p1 = dlyap(a1, q);
  const Matrix p2 = dlyap(a2, q);
  candidates.push_back(p1);
  candidates.push_back(p2);
  for (double w : {0.5, 0.25, 0.75, 0.1, 0.9})
    candidates.push_back(p1 * w + p2 * (1.0 - w));
  // Blended-operator candidates: solve
  //   t (a1' P a1 - P) + (1-t) (a2' P a2 - P) = -I
  // for a grid of t. The solution moves continuously between the two
  // single-mode Lyapunov solutions and frequently lands inside the CQLF
  // cone when it is non-empty (sufficient search; no full LMI solver).
  const Matrix at1 = a1.transpose();
  const Matrix at2 = a2.transpose();
  const Matrix op1 = kron(at1, at1) - Matrix::identity(n * n);
  const Matrix op2 = kron(at2, at2) - Matrix::identity(n * n);
  for (int i = 1; i < 20; ++i) {
    const double t = i / 20.0;
    try {
      Matrix cand = unvec(solve(op1 * t + op2 * (1.0 - t), -vec(q)), n, n);
      cand.symmetrize();
      candidates.push_back(std::move(cand));
    } catch (const std::domain_error&) {
      // Singular blend: skip this grid point.
    }
  }
  for (const Matrix& cand : candidates) {
    if (!is_positive_definite(cand)) continue;
    if (certifies_decrease(a1, cand) && certifies_decrease(a2, cand))
      return {true, cand};
  }

  // Subgradient feasibility phase. Minimise the worst constraint violation
  //   f(P) = max_i  eps - lambda_min(F_i(P)),
  //   F_0 = P,  F_1 = P - a1' P a1,  F_2 = P - a2' P a2,
  // moving P along the eigenvector subgradient of the active constraint.
  // This finds certificates that sit close to the boundary of the CQLF
  // cone (the paper's KsE/KT pair is such a case). Deterministic; bails
  // out after a fixed iteration budget.
  const double eps = 1e-4;
  Matrix p = dlyap(a2, q);
  p /= p.max_abs();
  if (n <= kFlatN) {
    // Allocation-free replica of the loop below (flat_subgradient_phase is
    // arithmetically identical); the reference Matrix loop remains for
    // larger systems and as executable documentation.
    const Matrix best_flat = flat_subgradient_phase(a1, a2, p, eps);
    if (is_positive_definite(best_flat) && certifies_decrease(a1, best_flat) &&
        certifies_decrease(a2, best_flat))
      return {true, best_flat};
    return {};
  }
  Matrix best = p;
  double best_violation = 1e18;
  for (int it = 0; it < 40000; ++it) {
    double worst = -1e18;
    Matrix grad(n, n);
    for (int m = 0; m < 3; ++m) {
      Matrix f = p;
      if (m > 0) {
        const Matrix& a = (m == 1) ? a1 : a2;
        f = p - a.transpose() * p * a;
      }
      f.symmetrize();
      const SymEig e = sym_eig(f);
      Index mi = 0;
      for (Index i = 1; i < n; ++i)
        if (e.values[static_cast<size_t>(i)] <
            e.values[static_cast<size_t>(mi)])
          mi = i;
      const double violation = eps - e.values[static_cast<size_t>(mi)];
      if (violation > worst) {
        worst = violation;
        const Matrix v = e.vectors.col_at(mi);
        if (m == 0) {
          grad = v * v.transpose();
        } else {
          const Matrix& a = (m == 1) ? a1 : a2;
          const Matrix av = a * v;
          grad = v * v.transpose() - av * av.transpose();
        }
      }
    }
    if (worst < best_violation) {
      best_violation = worst;
      best = p;
    }
    if (worst <= 0.0) break;
    const double g2 = grad.norm() * grad.norm();
    p += grad * (0.5 * worst / std::max(1.0, g2));
    p.symmetrize();
    const double scale = p.max_abs();
    if (scale > 0.0) p /= scale;
  }
  if (is_positive_definite(best) && certifies_decrease(a1, best) &&
      certifies_decrease(a2, best))
    return {true, best};
  return {};
}

void append_canonical(std::string& out, const CommonLyapunov& c) {
  out += c.found ? "cqlf=1:" : "cqlf=0:";
  append_canonical_bits(out, c.p);
}

std::size_t byte_cost(const CommonLyapunov& c) {
  return sizeof(CommonLyapunov) - sizeof(Matrix) + byte_cost(c.p);
}

void encode(support::codec::Encoder& enc, const CommonLyapunov& c) {
  enc.u8(c.found ? 1 : 0);
  encode(enc, c.p);
}

bool decode(support::codec::Decoder& dec, CommonLyapunov& c) {
  c = CommonLyapunov{};
  std::uint8_t found = 0;
  if (!dec.u8(found) || found > 1) return false;
  if (!decode(dec, c.p)) return false;
  c.found = found != 0;
  return true;
}

}  // namespace ttdim::linalg
