#include "linalg/lyap.h"

#include <cmath>
#include <stdexcept>

#include "linalg/eig.h"
#include "linalg/solve.h"
#include "support/check.h"

namespace ttdim::linalg {

Matrix dlyap(const Matrix& a, const Matrix& q) {
  TTDIM_EXPECTS(a.is_square() && q.is_square() && a.rows() == q.rows());
  TTDIM_EXPECTS(q.is_symmetric(1e-9));
  const Index n = a.rows();
  const Matrix at = a.transpose();
  const Matrix lhs = kron(at, at) - Matrix::identity(n * n);
  Matrix p;
  try {
    p = unvec(solve(lhs, -vec(q)), n, n);
  } catch (const std::domain_error&) {
    throw std::domain_error(
        "dlyap: singular Lyapunov operator (reciprocal eigenvalue pair)");
  }
  p.symmetrize();
  return p;
}

bool is_positive_definite(const Matrix& p, double tol) {
  TTDIM_EXPECTS(p.is_square());
  if (!p.is_symmetric(1e-8 * std::max(1.0, p.max_abs()))) return false;
  // In-place Cholesky; failure of any pivot means not PD.
  const Index n = p.rows();
  Matrix l = p;
  for (Index k = 0; k < n; ++k) {
    double d = l(k, k);
    for (Index j = 0; j < k; ++j) d -= l(k, j) * l(k, j);
    if (d <= tol * std::max(1.0, p.max_abs())) return false;
    const double s = std::sqrt(d);
    l(k, k) = s;
    for (Index i = k + 1; i < n; ++i) {
      double v = l(i, k);
      for (Index j = 0; j < k; ++j) v -= l(i, j) * l(k, j);
      l(i, k) = v / s;
    }
  }
  return true;
}

bool certifies_decrease(const Matrix& a, const Matrix& p, double tol) {
  Matrix dec = p - a.transpose() * p * a;  // must be positive definite
  dec.symmetrize();
  return is_positive_definite(dec, tol);
}

CommonLyapunov find_common_lyapunov(const Matrix& a1, const Matrix& a2) {
  TTDIM_EXPECTS(a1.is_square() && a2.is_square() && a1.rows() == a2.rows());
  const Index n = a1.rows();
  // A CQLF requires each mode to be Schur stable on its own.
  if (!is_schur_stable(a1) || !is_schur_stable(a2)) return {};

  const Matrix q = Matrix::identity(n);
  std::vector<Matrix> candidates;
  const Matrix p1 = dlyap(a1, q);
  const Matrix p2 = dlyap(a2, q);
  candidates.push_back(p1);
  candidates.push_back(p2);
  for (double w : {0.5, 0.25, 0.75, 0.1, 0.9})
    candidates.push_back(p1 * w + p2 * (1.0 - w));
  // Blended-operator candidates: solve
  //   t (a1' P a1 - P) + (1-t) (a2' P a2 - P) = -I
  // for a grid of t. The solution moves continuously between the two
  // single-mode Lyapunov solutions and frequently lands inside the CQLF
  // cone when it is non-empty (sufficient search; no full LMI solver).
  const Matrix at1 = a1.transpose();
  const Matrix at2 = a2.transpose();
  const Matrix op1 = kron(at1, at1) - Matrix::identity(n * n);
  const Matrix op2 = kron(at2, at2) - Matrix::identity(n * n);
  for (int i = 1; i < 20; ++i) {
    const double t = i / 20.0;
    try {
      Matrix cand = unvec(solve(op1 * t + op2 * (1.0 - t), -vec(q)), n, n);
      cand.symmetrize();
      candidates.push_back(std::move(cand));
    } catch (const std::domain_error&) {
      // Singular blend: skip this grid point.
    }
  }
  for (const Matrix& cand : candidates) {
    if (!is_positive_definite(cand)) continue;
    if (certifies_decrease(a1, cand) && certifies_decrease(a2, cand))
      return {true, cand};
  }

  // Subgradient feasibility phase. Minimise the worst constraint violation
  //   f(P) = max_i  eps - lambda_min(F_i(P)),
  //   F_0 = P,  F_1 = P - a1' P a1,  F_2 = P - a2' P a2,
  // moving P along the eigenvector subgradient of the active constraint.
  // This finds certificates that sit close to the boundary of the CQLF
  // cone (the paper's KsE/KT pair is such a case). Deterministic; bails
  // out after a fixed iteration budget.
  const double eps = 1e-4;
  Matrix p = dlyap(a2, q);
  p /= p.max_abs();
  Matrix best = p;
  double best_violation = 1e18;
  for (int it = 0; it < 40000; ++it) {
    double worst = -1e18;
    Matrix grad(n, n);
    for (int m = 0; m < 3; ++m) {
      Matrix f = p;
      if (m > 0) {
        const Matrix& a = (m == 1) ? a1 : a2;
        f = p - a.transpose() * p * a;
      }
      f.symmetrize();
      const SymEig e = sym_eig(f);
      Index mi = 0;
      for (Index i = 1; i < n; ++i)
        if (e.values[static_cast<size_t>(i)] <
            e.values[static_cast<size_t>(mi)])
          mi = i;
      const double violation = eps - e.values[static_cast<size_t>(mi)];
      if (violation > worst) {
        worst = violation;
        const Matrix v = e.vectors.col_at(mi);
        if (m == 0) {
          grad = v * v.transpose();
        } else {
          const Matrix& a = (m == 1) ? a1 : a2;
          const Matrix av = a * v;
          grad = v * v.transpose() - av * av.transpose();
        }
      }
    }
    if (worst < best_violation) {
      best_violation = worst;
      best = p;
    }
    if (worst <= 0.0) break;
    const double g2 = grad.norm() * grad.norm();
    p += grad * (0.5 * worst / std::max(1.0, g2));
    p.symmetrize();
    const double scale = p.max_abs();
    if (scale > 0.0) p /= scale;
  }
  if (is_positive_definite(best) && certifies_decrease(a1, best) &&
      certifies_decrease(a2, best))
    return {true, best};
  return {};
}

}  // namespace ttdim::linalg
