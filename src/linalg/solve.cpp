#include "linalg/solve.h"

#include <cmath>
#include <stdexcept>

#include "support/check.h"

namespace ttdim::linalg {

namespace {
constexpr double kSingularTol = 1e-13;
}  // namespace

Lu::Lu(const Matrix& a) : lu_(a), piv_(static_cast<size_t>(a.rows())) {
  TTDIM_EXPECTS(a.is_square());
  const Index n = a.rows();
  const double scale = a.max_abs();
  for (Index i = 0; i < n; ++i) piv_[static_cast<size_t>(i)] = i;
  for (Index k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest |entry| of column k to the
    // diagonal.
    Index p = k;
    for (Index i = k + 1; i < n; ++i)
      if (std::abs(lu_(i, k)) > std::abs(lu_(p, k))) p = i;
    if (p != k) {
      for (Index c = 0; c < n; ++c) std::swap(lu_(p, c), lu_(k, c));
      std::swap(piv_[static_cast<size_t>(p)], piv_[static_cast<size_t>(k)]);
      sign_ = -sign_;
    }
    const double pivot = lu_(k, k);
    if (std::abs(pivot) <= kSingularTol * std::max(scale, 1.0)) {
      singular_ = true;
      continue;
    }
    for (Index i = k + 1; i < n; ++i) {
      lu_(i, k) /= pivot;
      const double l = lu_(i, k);
      if (l == 0.0) continue;
      for (Index c = k + 1; c < n; ++c) lu_(i, c) -= l * lu_(k, c);
    }
  }
}

Matrix Lu::solve(const Matrix& b) const {
  TTDIM_EXPECTS(b.rows() == lu_.rows());
  if (singular_) throw std::domain_error("Lu::solve: singular matrix");
  const Index n = lu_.rows();
  Matrix x(n, b.cols());
  for (Index col = 0; col < b.cols(); ++col) {
    // Forward substitution on permuted b.
    for (Index i = 0; i < n; ++i) {
      double s = b(piv_[static_cast<size_t>(i)], col);
      for (Index j = 0; j < i; ++j) s -= lu_(i, j) * x(j, col);
      x(i, col) = s;
    }
    // Back substitution.
    for (Index i = n - 1; i >= 0; --i) {
      double s = x(i, col);
      for (Index j = i + 1; j < n; ++j) s -= lu_(i, j) * x(j, col);
      x(i, col) = s / lu_(i, i);
    }
  }
  return x;
}

Matrix Lu::inverse() const { return solve(Matrix::identity(lu_.rows())); }

double Lu::determinant() const {
  double d = sign_;
  for (Index i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return singular_ ? 0.0 : d;
}

Matrix solve(const Matrix& a, const Matrix& b) { return Lu(a).solve(b); }

Matrix inverse(const Matrix& a) { return Lu(a).inverse(); }

double determinant(const Matrix& a) { return Lu(a).determinant(); }

Qr qr(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  TTDIM_EXPECTS(m >= n);
  Matrix r = a;
  Matrix q = Matrix::identity(m);
  for (Index k = 0; k < n; ++k) {
    // Householder vector annihilating r(k+1.., k).
    double alpha = 0.0;
    for (Index i = k; i < m; ++i) alpha += r(i, k) * r(i, k);
    alpha = std::sqrt(alpha);
    if (alpha == 0.0) continue;
    if (r(k, k) > 0.0) alpha = -alpha;
    std::vector<double> v(static_cast<size_t>(m), 0.0);
    v[static_cast<size_t>(k)] = r(k, k) - alpha;
    for (Index i = k + 1; i < m; ++i) v[static_cast<size_t>(i)] = r(i, k);
    double vnorm2 = 0.0;
    for (Index i = k; i < m; ++i)
      vnorm2 += v[static_cast<size_t>(i)] * v[static_cast<size_t>(i)];
    if (vnorm2 == 0.0) continue;
    // r <- (I - 2 v v'/v'v) r ; q <- q (I - 2 v v'/v'v)
    for (Index c = 0; c < n; ++c) {
      double s = 0.0;
      for (Index i = k; i < m; ++i) s += v[static_cast<size_t>(i)] * r(i, c);
      s = 2.0 * s / vnorm2;
      for (Index i = k; i < m; ++i) r(i, c) -= s * v[static_cast<size_t>(i)];
    }
    for (Index rr = 0; rr < m; ++rr) {
      double s = 0.0;
      for (Index i = k; i < m; ++i) s += q(rr, i) * v[static_cast<size_t>(i)];
      s = 2.0 * s / vnorm2;
      for (Index i = k; i < m; ++i) q(rr, i) -= s * v[static_cast<size_t>(i)];
    }
  }
  // Clean tiny subdiagonal noise so r is exactly upper-trapezoidal.
  for (Index rr = 1; rr < m; ++rr)
    for (Index c = 0; c < std::min(rr, n); ++c) r(rr, c) = 0.0;
  return {q, r};
}

Index rank(const Matrix& a, double tol) {
  const bool wide = a.cols() > a.rows();
  const Matrix work = wide ? a.transpose() : a;
  const Qr f = qr(work);
  const double scale = std::max(work.max_abs(), 1.0);
  Index rk = 0;
  for (Index i = 0; i < std::min(f.r.rows(), f.r.cols()); ++i)
    if (std::abs(f.r(i, i)) > tol * scale) ++rk;
  return rk;
}

Matrix lstsq(const Matrix& a, const Matrix& b) {
  TTDIM_EXPECTS(a.rows() == b.rows());
  const Qr f = qr(a);
  const Matrix qtb = f.q.transpose() * b;
  const Index n = a.cols();
  Matrix x(n, b.cols());
  for (Index col = 0; col < b.cols(); ++col) {
    for (Index i = n - 1; i >= 0; --i) {
      double s = qtb(i, col);
      for (Index j = i + 1; j < n; ++j) s -= f.r(i, j) * x(j, col);
      if (std::abs(f.r(i, i)) < 1e-13)
        throw std::domain_error("lstsq: rank-deficient matrix");
      x(i, col) = s / f.r(i, i);
    }
  }
  return x;
}

}  // namespace ttdim::linalg
