// Eigenvalue computation for small dense real matrices.
//
// Strategy: reduce to (complex) Hessenberg form with Householder
// reflections, then run a Wilkinson-shifted QR iteration with Givens
// rotations and deflation. Complex arithmetic throughout keeps the
// iteration simple and is perfectly adequate for the <= 5x5 matrices this
// repository works with.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.h"

namespace ttdim::linalg {

/// All eigenvalues of a square real matrix, unordered. Throws
/// std::runtime_error if the QR iteration fails to converge (does not occur
/// for the well-conditioned control matrices handled here).
[[nodiscard]] std::vector<std::complex<double>> eigenvalues(const Matrix& a);

/// max |lambda_i|.
[[nodiscard]] double spectral_radius(const Matrix& a);

/// True when every eigenvalue has |lambda| < 1 - margin, i.e. the
/// discrete-time system x+ = a x is asymptotically (Schur) stable.
[[nodiscard]] bool is_schur_stable(const Matrix& a, double margin = 0.0);

/// Eigendecomposition of a symmetric matrix (cyclic Jacobi).
/// a == vectors * diag(values) * vectors'. Eigenvalues are unordered.
struct SymEig {
  std::vector<double> values;
  Matrix vectors;  ///< orthonormal columns
};
[[nodiscard]] SymEig sym_eig(const Matrix& a);

/// Smallest eigenvalue of a symmetric matrix.
[[nodiscard]] double min_sym_eigenvalue(const Matrix& a);

/// Coefficients c of the monic polynomial with the given roots:
/// p(s) = s^n + c[0] s^{n-1} + ... + c[n-1]. Imaginary parts of the
/// expanded coefficients must cancel (roots in conjugate pairs); enforced to
/// 1e-9.
[[nodiscard]] std::vector<double> poly_from_roots(
    const std::vector<std::complex<double>>& roots);

/// Evaluate the monic matrix polynomial
/// p(A) = A^n + c[0] A^{n-1} + ... + c[n-1] I.
[[nodiscard]] Matrix polyvalm(const std::vector<double>& monic_coeffs,
                              const Matrix& a);

}  // namespace ttdim::linalg
