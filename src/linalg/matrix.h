// Dense dynamically-sized matrix of doubles.
//
// This is the numeric workhorse of the repository. Control plants in the
// paper are at most 4x4 (3 states + 1 held input), so a straightforward
// row-major dense representation is both adequate and easy to audit.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/codec.h"

namespace ttdim::linalg {

/// Index type used throughout the library. Signed, per ES.100/ES.102 advice
/// to avoid unsigned wraparound bugs in subscript arithmetic.
using Index = std::ptrdiff_t;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialised.
  Matrix(Index rows, Index cols);

  /// rows x cols matrix filled with `value`.
  Matrix(Index rows, Index cols, double value);

  /// Construct from nested braces: Matrix{{1,2},{3,4}}. All rows must have
  /// equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(Index n);
  [[nodiscard]] static Matrix zero(Index rows, Index cols);
  /// Column vector from values.
  [[nodiscard]] static Matrix column(std::initializer_list<double> values);
  [[nodiscard]] static Matrix column(const std::vector<double>& values);
  /// Row vector from values.
  [[nodiscard]] static Matrix row(std::initializer_list<double> values);
  [[nodiscard]] static Matrix row(const std::vector<double>& values);

  [[nodiscard]] Index rows() const noexcept { return rows_; }
  [[nodiscard]] Index cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] bool is_square() const noexcept { return rows_ == cols_; }
  /// True for 1-column or 1-row matrices.
  [[nodiscard]] bool is_vector() const noexcept {
    return rows_ == 1 || cols_ == 1;
  }
  /// Number of entries.
  [[nodiscard]] Index size() const noexcept { return rows_ * cols_; }

  [[nodiscard]] double& operator()(Index r, Index c);
  [[nodiscard]] double operator()(Index r, Index c) const;
  /// Linear access for vectors (either orientation).
  [[nodiscard]] double& operator[](Index i);
  [[nodiscard]] double operator[](Index i) const;

  [[nodiscard]] Matrix transpose() const;
  /// Rows [r0, r0+nr) x cols [c0, c0+nc) submatrix copy.
  [[nodiscard]] Matrix block(Index r0, Index c0, Index nr, Index nc) const;
  /// Copy of row r as a 1 x cols matrix.
  [[nodiscard]] Matrix row_at(Index r) const;
  /// Copy of column c as a rows x 1 matrix.
  [[nodiscard]] Matrix col_at(Index c) const;
  /// Writes `m` into this matrix with top-left corner at (r0, c0).
  void set_block(Index r0, Index c0, const Matrix& m);

  /// Stack [this; below] vertically. Column counts must match.
  [[nodiscard]] Matrix vstack(const Matrix& below) const;
  /// Concatenate [this, right] horizontally. Row counts must match.
  [[nodiscard]] Matrix hstack(const Matrix& right) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);
  Matrix& operator/=(double s);

  [[nodiscard]] friend Matrix operator+(Matrix lhs, const Matrix& rhs) {
    lhs += rhs;
    return lhs;
  }
  [[nodiscard]] friend Matrix operator-(Matrix lhs, const Matrix& rhs) {
    lhs -= rhs;
    return lhs;
  }
  [[nodiscard]] friend Matrix operator*(Matrix lhs, double s) {
    lhs *= s;
    return lhs;
  }
  [[nodiscard]] friend Matrix operator*(double s, Matrix rhs) {
    rhs *= s;
    return rhs;
  }
  [[nodiscard]] friend Matrix operator/(Matrix lhs, double s) {
    lhs /= s;
    return lhs;
  }
  [[nodiscard]] friend Matrix operator-(const Matrix& m) { return m * -1.0; }
  friend Matrix operator*(const Matrix& lhs, const Matrix& rhs);

  /// Frobenius norm.
  [[nodiscard]] double norm() const;
  /// Max |entry|.
  [[nodiscard]] double max_abs() const;
  /// Sum of diagonal entries (square only).
  [[nodiscard]] double trace() const;
  /// Dot product; both operands must be vectors of equal length.
  [[nodiscard]] double dot(const Matrix& other) const;

  /// Entry-wise comparison within `tol` (matching shapes required).
  [[nodiscard]] bool approx_equal(const Matrix& other, double tol) const;
  /// True if every entry is finite.
  [[nodiscard]] bool all_finite() const;
  /// True if |a(i,j) - a(j,i)| <= tol for all i, j (square only).
  [[nodiscard]] bool is_symmetric(double tol = 1e-10) const;

  /// Symmetrise in place: a = (a + a')/2.
  void symmetrize();

  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// Append a canonical, byte-exact serialization of `m` to `out`:
/// dimensions plus the IEEE-754 bit pattern of every entry in row-major
/// order, as fixed-width hex. Two matrices serialize identically exactly
/// when they are bit-identical — the property content-addressed cache
/// keys need (decimal formatting would collapse distinct doubles, and
/// "close enough" matrices must not share an analysis result).
void append_canonical_bits(std::string& out, const Matrix& m);

/// Resident size in bytes (object header + heap payload) — byte-budget
/// accounting for caches holding matrices.
[[nodiscard]] std::size_t byte_cost(const Matrix& m);

/// Round-trip binary codec for the disk cache tier: dimensions plus the
/// IEEE-754 bit pattern of every entry (same identity as
/// append_canonical_bits, but decodable). decode returns false — leaving
/// `m` empty — on truncated input or implausible dimensions; it never
/// throws, because disk entries are untrusted.
void encode(support::codec::Encoder& enc, const Matrix& m);
[[nodiscard]] bool decode(support::codec::Decoder& dec, Matrix& m);

/// Kronecker product a (x) b.
[[nodiscard]] Matrix kron(const Matrix& a, const Matrix& b);

/// Column-stacking vectorisation vec(a).
[[nodiscard]] Matrix vec(const Matrix& a);

/// Inverse of vec: reshape a (rows*cols) x 1 vector into rows x cols,
/// column-major.
[[nodiscard]] Matrix unvec(const Matrix& v, Index rows, Index cols);

}  // namespace ttdim::linalg
