// Linear solves and factorisations for small dense systems.
#pragma once

#include "linalg/matrix.h"

namespace ttdim::linalg {

/// LU factorisation with partial pivoting of a square matrix.
/// Throws std::domain_error when the matrix is singular to working
/// precision.
class Lu {
 public:
  explicit Lu(const Matrix& a);

  /// Solve a * x = b for (possibly multi-column) right-hand side b.
  [[nodiscard]] Matrix solve(const Matrix& b) const;
  [[nodiscard]] Matrix inverse() const;
  [[nodiscard]] double determinant() const;
  /// True when |pivot| fell below `tol * max_abs` during elimination.
  [[nodiscard]] bool singular() const noexcept { return singular_; }

 private:
  Matrix lu_;               // packed L (unit diag, below) and U (on/above)
  std::vector<Index> piv_;  // row permutation
  int sign_ = 1;            // permutation parity for the determinant
  bool singular_ = false;
};

/// Convenience: x = a^{-1} b via LU. Throws on singular a.
[[nodiscard]] Matrix solve(const Matrix& a, const Matrix& b);

/// Convenience: a^{-1} via LU. Throws on singular a.
[[nodiscard]] Matrix inverse(const Matrix& a);

[[nodiscard]] double determinant(const Matrix& a);

/// Householder QR factorisation a = q * r, q orthogonal (rows x rows),
/// r upper-trapezoidal (rows x cols). Works for rows >= cols.
struct Qr {
  Matrix q;
  Matrix r;
};
[[nodiscard]] Qr qr(const Matrix& a);

/// Rank of a matrix via QR with column-norm based tolerance.
[[nodiscard]] Index rank(const Matrix& a, double tol = 1e-10);

/// Least-squares solve min ||a x - b|| via QR (a must have full column
/// rank).
[[nodiscard]] Matrix lstsq(const Matrix& a, const Matrix& b);

}  // namespace ttdim::linalg
