#include "engine/scenario_generator.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "support/check.h"
#include "verify/bounds.h"

namespace ttdim::engine {

const char* scenario_kind_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kBurst:
      return "burst";
    case ScenarioKind::kStaggered:
      return "staggered";
    case ScenarioKind::kWorstCaseCoincidence:
      return "coincidence";
    case ScenarioKind::kRandom:
      return "random";
    case ScenarioKind::kCorrelated:
      return "correlated";
    case ScenarioKind::kSystemAdversarial:
      return "system_adversarial";
    case ScenarioKind::kChurn:
      return "churn";
  }
  throw std::logic_error("scenario_kind_name: unhandled kind");
}

ScenarioGenerator::ScenarioGenerator(std::vector<verify::AppTiming> apps,
                                     std::uint64_t seed)
    : apps_(std::move(apps)), rng_(seed) {
  TTDIM_EXPECTS(!apps_.empty());
  for (const verify::AppTiming& app : apps_) app.validate();
}

sched::Scenario ScenarioGenerator::finalize(
    std::vector<std::vector<int>> disturbances) const {
  // Horizon = the latest tick any instance can still occupy the slot,
  // plus one slack tick: an instance arriving at t may wait up to T*w and
  // then dwell up to max T+dw, so its episode needs every tick of
  // [t, t + T*w + max_dwell] simulated. Bounding per instance (its own
  // app's window, its own arrival — jitter included, since the arithmetic
  // runs over the arrivals actually generated) keeps the invariant
  // self-evident and the horizon tight; the earlier global-last +
  // global-max-window form covered every app only through the coupling of
  // two separately computed maxima. The property test in
  // tests/scenario_generator_test.cpp pins this window-fits-horizon
  // invariant for every kind and jitter.
  // 64-bit: with extreme timing parameters (r or dwell entries near
  // INT_MAX) `t + window + 1` overflows int — the horizon is computed
  // wide and rejected loudly when the scenario is unrepresentable,
  // instead of wrapping into undefined behaviour.
  long long horizon = 1;
  for (std::size_t i = 0; i < disturbances.size(); ++i) {
    const verify::AppTiming& app = apps_[i];
    const long long window =
        static_cast<long long>(app.t_star_w) + verify::max_dwell(app);
    for (int t : disturbances[i]) horizon = std::max(horizon, t + window + 1);
  }
  if (horizon > std::numeric_limits<int>::max())
    throw std::invalid_argument(
        "ScenarioGenerator: scenario horizon overflows int (arrival + "
        "T*w + max dwell exceeds the tick range)");
  sched::Scenario scenario;
  scenario.disturbances = std::move(disturbances);
  scenario.horizon = static_cast<int>(horizon);
  return scenario;
}

namespace {

/// Narrow an arrival computed in 64-bit back to the int tick range; the
/// wide arithmetic upstream keeps overflow out of UB territory, this
/// keeps it out of the emitted scenario.
int checked_tick(long long t, const char* what) {
  if (t > std::numeric_limits<int>::max())
    throw std::invalid_argument(std::string("ScenarioGenerator::") + what +
                                ": arrival tick overflows int");
  return static_cast<int>(t);
}

}  // namespace

sched::Scenario ScenarioGenerator::burst(int instances_per_app) {
  TTDIM_EXPECTS(instances_per_app >= 1);
  int max_r = 0;
  for (const verify::AppTiming& app : apps_)
    max_r = std::max(max_r, app.min_interarrival);
  std::vector<std::vector<int>> d(apps_.size());
  for (std::size_t i = 0; i < apps_.size(); ++i)
    for (int k = 0; k < instances_per_app; ++k)
      d[i].push_back(
          checked_tick(static_cast<long long>(k) * max_r, "burst"));
  return finalize(std::move(d));
}

sched::Scenario ScenarioGenerator::staggered(int offset,
                                             int instances_per_app) {
  TTDIM_EXPECTS(offset >= 0);
  TTDIM_EXPECTS(instances_per_app >= 1);
  std::vector<std::vector<int>> d(apps_.size());
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const long long start = static_cast<long long>(i) * offset;
    for (int k = 0; k < instances_per_app; ++k)
      d[i].push_back(checked_tick(
          start + static_cast<long long>(k) * apps_[i].min_interarrival,
          "staggered"));
  }
  return finalize(std::move(d));
}

sched::Scenario ScenarioGenerator::worst_case_coincidence(int victim) {
  TTDIM_EXPECTS(victim >= 0 && victim < app_count());
  const verify::AppTiming& v = apps_[static_cast<std::size_t>(victim)];
  const long long window =
      static_cast<long long>(v.t_star_w) + verify::max_dwell(v);
  // The pending instance of app j arrives at d + 1 - r_j, which must be a
  // valid tick, so the victim's disturbance is pushed past every r_j.
  int d0 = 0;
  for (const verify::AppTiming& app : apps_)
    d0 = std::max(d0, app.min_interarrival - 1);
  // Fail fast: every generated tick lies in [d0 + 1 - r, d0 + window],
  // so an out-of-range upper end is rejected before the loops below
  // materialize up to window / min(r) arrivals — with a huge window and
  // a small r that would be billions of ticks of memory, exhausted long
  // before the per-tick check could throw.
  if (static_cast<long long>(d0) + window > std::numeric_limits<int>::max())
    throw std::invalid_argument(
        "ScenarioGenerator::worst_case_coincidence: critical window "
        "overflows the tick range");
  std::vector<std::vector<int>> d(apps_.size());
  d[static_cast<std::size_t>(victim)].push_back(d0);
  for (std::size_t j = 0; j < apps_.size(); ++j) {
    if (static_cast<int>(j) == victim) continue;
    const int r = apps_[j].min_interarrival;
    // One instance pending just before the victim's arrival, then one per
    // started period inside (d0, d0 + window]: together these realise
    // 1 + ceil(window / r) = verify::max_coinciding_instances. The loop
    // variable is wide: near INT_MAX the `t += r` step would wrap before
    // the bound check.
    for (long long t = d0 + 1 - static_cast<long long>(r); t <= d0 + window;
         t += r)
      d[j].push_back(checked_tick(t, "worst_case_coincidence"));
  }
  sched::Scenario scenario = finalize(std::move(d));
  return scenario;
}

sched::Scenario ScenarioGenerator::random(int instances_per_app, int jitter) {
  TTDIM_EXPECTS(instances_per_app >= 1);
  TTDIM_EXPECTS(jitter >= 0);
  std::vector<std::vector<int>> d(apps_.size());
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const int r = apps_[i].min_interarrival;
    // The documented gap interval is [r, r + jitter]; for large r the
    // upper bound overflows int, so it is computed wide and clamped to
    // the representable range — identical behaviour (and identical PRNG
    // consumption, so seeded replays are unaffected) whenever r + jitter
    // fits in int, a sound [r, INT_MAX] gap otherwise.
    const int hi = static_cast<int>(
        std::min<long long>(static_cast<long long>(r) + jitter,
                            std::numeric_limits<int>::max()));
    std::uniform_int_distribution<int> start_dist(0, std::max(0, r - 1));
    std::uniform_int_distribution<int> gap_dist(r, hi);
    // Arrivals accumulate in 64-bit: instances_per_app gaps of up to
    // INT_MAX each overflow int long before the horizon check could
    // reject them. An arrival past the tick range is rejected loudly.
    long long t = start_dist(rng_);
    for (int k = 0; k < instances_per_app; ++k) {
      if (t > std::numeric_limits<int>::max())
        throw std::invalid_argument(
            "ScenarioGenerator::random: arrival tick overflows int "
            "(reduce instances_per_app, jitter or the inter-arrival rate)");
      d[i].push_back(static_cast<int>(t));
      t += gap_dist(rng_);
    }
  }
  return finalize(std::move(d));
}

sched::Scenario ScenarioGenerator::correlated(int bursts, int spread) {
  TTDIM_EXPECTS(bursts >= 1);
  TTDIM_EXPECTS(spread >= 0);
  int min_r = apps_.front().min_interarrival;
  int max_r = 0;
  for (const verify::AppTiming& app : apps_) {
    min_r = std::min(min_r, app.min_interarrival);
    max_r = std::max(max_r, app.min_interarrival);
  }
  // Epoch gaps use the documented [1, 2 * max r] interval; like random()'s
  // jitter bound the upper end is computed wide and clamped so extreme
  // rates degrade to [1, INT_MAX] instead of overflowing the distribution.
  const int gap_hi = static_cast<int>(
      std::min<long long>(2ll * max_r, std::numeric_limits<int>::max()));
  std::uniform_int_distribution<int> start_dist(0, std::max(0, min_r - 1));
  std::uniform_int_distribution<int> gap_dist(1, gap_hi);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> offset_dist(0, spread);
  std::vector<std::vector<int>> d(apps_.size());
  long long epoch = start_dist(rng_);
  for (int e = 0; e < bursts; ++e) {
    const std::size_t anchor =
        static_cast<std::size_t>(e) % apps_.size();
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      const bool joins = coin(rng_) == 1 || i == anchor;
      if (!joins) continue;
      const long long t = epoch + offset_dist(rng_);
      // The sporadic model forbids arrivals closer than r; offsets can
      // also land a candidate before the previous epoch's arrival, and
      // the same rule (drop, keep the earlier one) restores order.
      if (!d[i].empty() &&
          t < static_cast<long long>(d[i].back()) + apps_[i].min_interarrival)
        continue;
      d[i].push_back(checked_tick(t, "correlated"));
    }
    epoch += gap_dist(rng_);
  }
  return finalize(std::move(d));
}

sched::Scenario ScenarioGenerator::system_adversarial(
    const std::vector<std::vector<int>>& slots,
    const std::vector<int>& victims) {
  TTDIM_EXPECTS(!slots.empty());
  TTDIM_EXPECTS(victims.size() == slots.size());
  std::vector<char> seen(apps_.size(), 0);
  for (std::size_t s = 0; s < slots.size(); ++s) {
    TTDIM_EXPECTS(!slots[s].empty());
    bool victim_in_slot = false;
    for (int j : slots[s]) {
      TTDIM_EXPECTS(j >= 0 && j < app_count());
      TTDIM_EXPECTS(!seen[static_cast<std::size_t>(j)]);  // disjoint slots
      seen[static_cast<std::size_t>(j)] = 1;
      victim_in_slot = victim_in_slot || j == victims[s];
    }
    TTDIM_EXPECTS(victim_in_slot);
  }
  // One common d0 past every mentioned application's r - 1, so each
  // slot's pending instances (arriving at d0 + 1 - r_j) are valid ticks
  // and all victims coincide on the same tick.
  int d0 = 0;
  for (std::size_t s = 0; s < slots.size(); ++s)
    for (int j : slots[s])
      d0 = std::max(d0, apps_[static_cast<std::size_t>(j)].min_interarrival - 1);
  std::vector<std::vector<int>> d(apps_.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const verify::AppTiming& v =
        apps_[static_cast<std::size_t>(victims[s])];
    const long long window =
        static_cast<long long>(v.t_star_w) + verify::max_dwell(v);
    // Same fail-fast as worst_case_coincidence: an overflowing window
    // would materialize up to window / min(r) arrivals before any
    // per-tick check could throw.
    if (static_cast<long long>(d0) + window >
        std::numeric_limits<int>::max())
      throw std::invalid_argument(
          "ScenarioGenerator::system_adversarial: critical window "
          "overflows the tick range");
    d[static_cast<std::size_t>(victims[s])].push_back(d0);
    for (int j : slots[s]) {
      if (j == victims[s]) continue;
      const int r = apps_[static_cast<std::size_t>(j)].min_interarrival;
      for (long long t = d0 + 1 - static_cast<long long>(r);
           t <= d0 + window; t += r)
        d[static_cast<std::size_t>(j)].push_back(
            checked_tick(t, "system_adversarial"));
    }
  }
  return finalize(std::move(d));
}

sched::Scenario ScenarioGenerator::system_adversarial(
    const std::vector<std::vector<int>>& slots) {
  std::vector<int> victims;
  victims.reserve(slots.size());
  for (const std::vector<int>& slot : slots) {
    TTDIM_EXPECTS(!slot.empty());
    std::uniform_int_distribution<int> pick(
        0, static_cast<int>(slot.size()) - 1);
    victims.push_back(slot[static_cast<std::size_t>(pick(rng_))]);
  }
  return system_adversarial(slots, victims);
}

sched::Scenario ScenarioGenerator::churn(int episodes,
                                         int instances_per_episode) {
  TTDIM_EXPECTS(episodes >= 1);
  TTDIM_EXPECTS(instances_per_episode >= 1);
  std::vector<std::vector<int>> d(apps_.size());
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const int r = apps_[i].min_interarrival;
    const auto clamped = [](long long v) {
      return static_cast<int>(
          std::min<long long>(v, std::numeric_limits<int>::max()));
    };
    // Active gaps in [r, 2r], departure pauses adding [2r, 6r] on top of
    // the trailing active gap; bounds clamp like random()'s jitter so
    // extreme rates stay well-defined.
    std::uniform_int_distribution<int> start_dist(0, std::max(0, r - 1));
    std::uniform_int_distribution<int> gap_dist(r, clamped(2ll * r));
    std::uniform_int_distribution<int> pause_dist(clamped(2ll * r),
                                                  clamped(6ll * r));
    long long t = start_dist(rng_);
    for (int e = 0; e < episodes; ++e) {
      for (int k = 0; k < instances_per_episode; ++k) {
        d[i].push_back(checked_tick(t, "churn"));
        t += gap_dist(rng_);
      }
      t += pause_dist(rng_);
    }
  }
  return finalize(std::move(d));
}

ChurnTrace ScenarioGenerator::churn_trace(int episodes) {
  TTDIM_EXPECTS(episodes >= 1);
  ChurnTrace trace;
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const verify::AppTiming& app = apps_[i];
    const int r0 = app.min_interarrival;
    const auto clamped = [](long long v) {
      return static_cast<int>(
          std::min<long long>(v, std::numeric_limits<int>::max()));
    };
    // Validity floor: AppTiming::validate() requires w + T+dw[w] < r for
    // every wait, so any rate >= floor keeps the re-rated timing valid.
    int floor_r = app.t_star_w + 1;
    for (std::size_t w = 0; w < app.t_plus.size(); ++w)
      floor_r = std::max(floor_r, static_cast<int>(w) + app.t_plus[w] + 1);
    std::uniform_int_distribution<int> start_dist(0, std::max(0, r0 - 1));
    std::uniform_int_distribution<int> coin(0, 1);
    std::uniform_int_distribution<int> rate_dist(
        floor_r, std::max(floor_r, clamped(2ll * r0)));
    const auto emit = [&](long long tick, ChurnEventKind kind, int rate) {
      trace.events.push_back(ChurnEvent{checked_tick(tick, "churn_trace"),
                                        kind, static_cast<int>(i), rate});
    };
    int r = r0;
    long long t = start_dist(rng_);
    emit(t, ChurnEventKind::kAdd, r0);
    for (int e = 1; e < episodes; ++e) {
      std::uniform_int_distribution<int> span_dist(clamped(2ll * r),
                                                   clamped(4ll * r));
      // Spans and pauses are >= 2 (r >= 1), so each application's own
      // events sit on strictly increasing ticks.
      t += span_dist(rng_);
      if (coin(rng_) == 1) {
        r = rate_dist(rng_);
        emit(t, ChurnEventKind::kRerate, r);
      } else {
        emit(t, ChurnEventKind::kRemove, 0);
        std::uniform_int_distribution<int> pause_dist(clamped(2ll * r),
                                                      clamped(6ll * r));
        t += pause_dist(rng_);
        emit(t, ChurnEventKind::kAdd, r);
      }
    }
  }
  // (tick, app) is a total order: per-app ticks strictly increase, ties
  // across apps break on the index.
  std::sort(trace.events.begin(), trace.events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              if (a.tick != b.tick) return a.tick < b.tick;
              return a.app < b.app;
            });
  return trace;
}

const char* churn_event_kind_name(ChurnEventKind kind) {
  switch (kind) {
    case ChurnEventKind::kAdd:
      return "add";
    case ChurnEventKind::kRemove:
      return "remove";
    case ChurnEventKind::kRerate:
      return "rerate";
  }
  throw std::logic_error("churn_event_kind_name: unhandled kind");
}

sched::Scenario ScenarioGenerator::make(ScenarioKind kind,
                                        int instances_per_app) {
  switch (kind) {
    case ScenarioKind::kBurst:
      return burst(instances_per_app);
    case ScenarioKind::kStaggered: {
      int min_r = apps_.front().min_interarrival;
      for (const verify::AppTiming& app : apps_)
        min_r = std::min(min_r, app.min_interarrival);
      return staggered(min_r, instances_per_app);
    }
    case ScenarioKind::kWorstCaseCoincidence: {
      std::uniform_int_distribution<int> pick(0, app_count() - 1);
      return worst_case_coincidence(pick(rng_));
    }
    case ScenarioKind::kRandom: {
      int max_r = 0;
      for (const verify::AppTiming& app : apps_)
        max_r = std::max(max_r, app.min_interarrival);
      return random(instances_per_app, max_r);
    }
    case ScenarioKind::kCorrelated: {
      int min_r = apps_.front().min_interarrival;
      for (const verify::AppTiming& app : apps_)
        min_r = std::min(min_r, app.min_interarrival);
      return correlated(instances_per_app, std::max(0, min_r - 1));
    }
    case ScenarioKind::kSystemAdversarial: {
      // Random disjoint partition: slot count uniform in [1, n], one slot
      // draw per application (in index order), empty slots dropped.
      std::uniform_int_distribution<int> count_pick(1, app_count());
      const int slot_count = count_pick(rng_);
      std::uniform_int_distribution<int> slot_pick(0, slot_count - 1);
      std::vector<std::vector<int>> slots(
          static_cast<std::size_t>(slot_count));
      for (int i = 0; i < app_count(); ++i)
        slots[static_cast<std::size_t>(slot_pick(rng_))].push_back(i);
      slots.erase(std::remove_if(slots.begin(), slots.end(),
                                 [](const std::vector<int>& s) {
                                   return s.empty();
                                 }),
                  slots.end());
      return system_adversarial(slots);
    }
    case ScenarioKind::kChurn:
      return churn(instances_per_app, 2);
  }
  // Unreachable when every kind is handled above; thrown (rather than
  // TTDIM_CHECK(false)) so -Wreturn-type can see the function never falls
  // through regardless of optimization level.
  throw std::logic_error("ScenarioGenerator::make: unhandled kind");
}

}  // namespace ttdim::engine
