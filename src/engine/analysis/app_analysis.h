// The per-application analysis pipeline, extracted from core::solve:
// switching-stability check + dwell-table search, fronted by the
// content-addressed AnalysisCache. One analyze_app call either answers
// from the cache (~microseconds) or computes, inserts and returns the
// fresh result (~hundreds of milliseconds for case-study plants). The
// returned result is byte-identical either way — both computations are
// pure functions of the key — which is what keeps solve fingerprints
// byte-identical cache-on/cache-off.
#pragma once

#include <memory>

#include "engine/analysis/analysis_cache.h"
#include "engine/analysis/analysis_key.h"

namespace ttdim::engine::cache {
class DiskCache;
}  // namespace ttdim::engine::cache

namespace ttdim::engine::analysis {

/// One analysis call's outcome: the (possibly shared) immutable result
/// plus per-call accounting for SolveStats.
struct AppAnalysisOutcome {
  std::shared_ptr<const AppAnalysisResult> result;
  bool cache_hit = false;
  double stability_ms = 0.0;  ///< cold compute cost; 0.0 on a hit
  double dwell_ms = 0.0;      ///< cold compute cost; 0.0 on a hit
};

/// Analyse one application: stability verdict, then (unless the pair is
/// unstable under spec.stop_on_unstable) the dwell tables, evaluated
/// through engine::oracle::compute_dwell_tables_parallel with
/// `dwell_threads` workers (results independent of the thread count).
/// `cache` may be nullptr (always computes). Exceptions thrown by the
/// dwell search (malformed spec, requirement below JT) propagate and
/// nothing is cached — failure paths re-prove, like the verdict cache's
/// unsafe probes.
///
/// `disk`, when non-null (and `cache` is too), is the persistent second
/// tier: a memory miss consults the disk "analysis" space, and a decoded
/// entry is promoted into `cache` and reported as a hit (a restarted
/// process pointed at a warm directory reports zero analysis misses);
/// fresh computes are written through. A malformed disk entry is a cold
/// miss. Results stay byte-identical disk tier on/off — disk entries are
/// exact encodings of previously computed results for the same key.
[[nodiscard]] AppAnalysisOutcome analyze_app(const control::DiscreteLti& plant,
                                             const linalg::Matrix& kt,
                                             const linalg::Matrix& ke,
                                             const AppAnalysisSpec& spec,
                                             AnalysisCache* cache,
                                             int dwell_threads = 1,
                                             cache::DiskCache* disk = nullptr);

}  // namespace ttdim::engine::analysis
