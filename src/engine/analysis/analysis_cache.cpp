#include "engine/analysis/analysis_cache.h"

#include "support/check.h"

namespace ttdim::engine::analysis {

std::size_t AppAnalysisResult::byte_cost() const {
  return control::byte_cost(stability) + switching::byte_cost(tables) +
         sizeof(bool);
}

void AppAnalysisResult::append_canonical(std::string& out) const {
  control::append_canonical(out, stability);
  if (tables_computed) {
    out += "tables:";
    switching::append_canonical(out, tables);
  } else {
    out += "tables:none;";
  }
}

AnalysisCache::AnalysisCache(std::size_t byte_budget)
    : byte_budget_(byte_budget) {
  TTDIM_EXPECTS(byte_budget >= 1);
}

std::size_t AnalysisCache::cost_of(const AppAnalysisKey& key,
                                   const AppAnalysisResult& result) {
  // Result payload + key string + fixed bookkeeping overhead per entry.
  return result.byte_cost() + key.canonical.size() + 128;
}

std::shared_ptr<const AppAnalysisResult> AnalysisCache::lookup(
    const AppAnalysisKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void AnalysisCache::insert(const AppAnalysisKey& key,
                           AppAnalysisResult result) {
  const std::size_t cost = cost_of(key, result);
  if (cost > byte_budget_) return;  // would evict everything for one entry
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(key) != index_.end()) return;  // concurrent-miss duplicate
  lru_.emplace_front(
      key, std::make_shared<const AppAnalysisResult>(std::move(result)));
  index_.emplace(key, lru_.begin());
  bytes_ += cost;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= cost_of(victim.first, *victim.second);
    index_.erase(victim.first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

AnalysisCacheStats AnalysisCache::stats() const {
  AnalysisCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  out.entries = lru_.size();
  out.bytes = bytes_;
  out.byte_budget = byte_budget_;
  return out;
}

void AnalysisCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace ttdim::engine::analysis
