#include "engine/analysis/analysis_cache.h"

namespace ttdim::engine::analysis {

std::size_t AppAnalysisResult::byte_cost() const {
  return control::byte_cost(stability) + switching::byte_cost(tables) +
         sizeof(bool);
}

void AppAnalysisResult::append_canonical(std::string& out) const {
  control::append_canonical(out, stability);
  if (tables_computed) {
    out += "tables:";
    switching::append_canonical(out, tables);
  } else {
    out += "tables:none;";
  }
}

void encode(support::codec::Encoder& enc, const AppAnalysisResult& result) {
  control::encode(enc, result.stability);
  enc.u8(result.tables_computed ? 1 : 0);
  if (result.tables_computed) switching::encode(enc, result.tables);
}

bool decode(support::codec::Decoder& dec, AppAnalysisResult& result) {
  result = AppAnalysisResult{};
  if (!control::decode(dec, result.stability)) return false;
  std::uint8_t computed = 0;
  if (!dec.u8(computed) || computed > 1) return false;
  result.tables_computed = computed != 0;
  if (result.tables_computed && !switching::decode(dec, result.tables))
    return false;
  return true;
}

AnalysisCache::AnalysisCache(std::size_t byte_budget)
    : cache_(byte_budget, &AnalysisCache::cost_of) {}

std::size_t AnalysisCache::cost_of(const AppAnalysisKey& key,
                                   const AppAnalysisResult& result) {
  // Result payload + key string + fixed bookkeeping overhead per entry.
  return result.byte_cost() + key.canonical.size() + 128;
}

std::shared_ptr<const AppAnalysisResult> AnalysisCache::lookup(
    const AppAnalysisKey& key) {
  return cache_.lookup(key);
}

void AnalysisCache::insert(const AppAnalysisKey& key,
                           AppAnalysisResult result) {
  cache_.insert(key, std::move(result));
}

AnalysisCacheStats AnalysisCache::stats() const {
  const engine::cache::LruStats lru = cache_.stats();
  AnalysisCacheStats out;
  out.hits = lru.hits;
  out.misses = lru.misses;
  out.insertions = lru.insertions;
  out.evictions = lru.evictions;
  out.entries = lru.entries;
  out.bytes = lru.cost;
  out.byte_budget = lru.budget;
  return out;
}

void AnalysisCache::clear() { cache_.clear(); }

}  // namespace ttdim::engine::analysis
