#include "engine/analysis/app_analysis.h"

#include <chrono>
#include <utility>

#include "control/design.h"
#include "engine/cache/disk_cache.h"
#include "engine/oracle/dwell_search.h"
#include "engine/oracle/solve_stats.h"

namespace ttdim::engine::analysis {

namespace {

using Clock = std::chrono::steady_clock;
using oracle::ms_since;

constexpr const char* kDiskSpace = "analysis";

}  // namespace

AppAnalysisOutcome analyze_app(const control::DiscreteLti& plant,
                               const linalg::Matrix& kt,
                               const linalg::Matrix& ke,
                               const AppAnalysisSpec& spec,
                               AnalysisCache* cache, int dwell_threads,
                               cache::DiskCache* disk) {
  AppAnalysisOutcome out;
  AppAnalysisKey key;
  if (cache != nullptr) {
    key = AppAnalysisKey::of(plant, kt, ke, spec);
    if (auto cached = cache->lookup(key)) {
      out.result = std::move(cached);
      out.cache_hit = true;
      return out;
    }
    if (disk != nullptr) {
      if (const auto blob = disk->get(kDiskSpace, key.canonical)) {
        support::codec::Decoder dec(*blob);
        AppAnalysisResult stored;
        if (decode(dec, stored) && dec.done()) {
          cache->insert(key, stored);
          out.result =
              std::make_shared<const AppAnalysisResult>(std::move(stored));
          out.cache_hit = true;
          return out;
        }
        // Undecodable payload (e.g. written by a build whose codec
        // differs without a format bump): fall through to a cold
        // compute; the entry ages out via the trim.
      }
    }
  }

  AppAnalysisResult result;
  const auto t_stability = Clock::now();
  result.stability = control::check_switching_stability(
      plant, kt, ke, spec.stability_settling);
  out.stability_ms = ms_since(t_stability);

  result.tables_computed =
      !(spec.stop_on_unstable && !result.stability.switching_stable());
  if (result.tables_computed) {
    const control::SwitchedLoop loop(plant, kt, ke);
    const auto t_dwell = Clock::now();
    result.tables =
        oracle::compute_dwell_tables_parallel(loop, spec.dwell, dwell_threads);
    out.dwell_ms = ms_since(t_dwell);
  }

  if (cache != nullptr) {
    cache->insert(key, result);
    if (disk != nullptr) {
      std::string encoded;
      support::codec::Encoder enc(encoded);
      encode(enc, result);
      disk->put(kDiskSpace, key.canonical, encoded);
    }
  }
  out.result = std::make_shared<const AppAnalysisResult>(std::move(result));
  return out;
}

}  // namespace ttdim::engine::analysis
