#include "engine/analysis/app_analysis.h"

#include <chrono>
#include <utility>

#include "control/design.h"
#include "engine/oracle/dwell_search.h"
#include "engine/oracle/solve_stats.h"

namespace ttdim::engine::analysis {

namespace {

using Clock = std::chrono::steady_clock;
using oracle::ms_since;

}  // namespace

AppAnalysisOutcome analyze_app(const control::DiscreteLti& plant,
                               const linalg::Matrix& kt,
                               const linalg::Matrix& ke,
                               const AppAnalysisSpec& spec,
                               AnalysisCache* cache, int dwell_threads) {
  AppAnalysisOutcome out;
  AppAnalysisKey key;
  if (cache != nullptr) {
    key = AppAnalysisKey::of(plant, kt, ke, spec);
    if (auto cached = cache->lookup(key)) {
      out.result = std::move(cached);
      out.cache_hit = true;
      return out;
    }
  }

  AppAnalysisResult result;
  const auto t_stability = Clock::now();
  result.stability = control::check_switching_stability(
      plant, kt, ke, spec.stability_settling);
  out.stability_ms = ms_since(t_stability);

  result.tables_computed =
      !(spec.stop_on_unstable && !result.stability.switching_stable());
  if (result.tables_computed) {
    const control::SwitchedLoop loop(plant, kt, ke);
    const auto t_dwell = Clock::now();
    result.tables =
        oracle::compute_dwell_tables_parallel(loop, spec.dwell, dwell_threads);
    out.dwell_ms = ms_since(t_dwell);
  }

  if (cache != nullptr) cache->insert(key, result);
  out.result = std::make_shared<const AppAnalysisResult>(std::move(result));
  return out;
}

}  // namespace ttdim::engine::analysis
