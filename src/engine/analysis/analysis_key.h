// Content-addressed identity of one application's analysis phase: the
// canonical, byte-exact serialization of everything the stability check
// and the dwell-table search read — discretized plant matrices, the
// fast/slow gain pair, the sampling period, and the settling / dwell
// parameters. Both computations are pure functions of these inputs
// (control/design.h, switching/dwell.h), so the key fully addresses an
// AppAnalysisResult: equal keys imply bit-identical results, and a 1-ulp
// plant perturbation yields a different key. App names and disturbance
// inter-arrival times are deliberately excluded — neither influences the
// analysis, so renamed or re-rated apps sharing one plant/gain tuple
// share one cache entry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "control/lti.h"
#include "control/sim.h"
#include "switching/dwell.h"

namespace ttdim::engine::analysis {

/// Parameters of the per-application analysis beyond the plant and gains.
struct AppAnalysisSpec {
  /// Requirement, settling spec, granularity and caps of the dwell-table
  /// search (switching::compute_dwell_tables).
  switching::DwellAnalysisSpec dwell;
  /// Grid spec of the switching-stability degradation test — the
  /// `settling` argument of control::check_switching_stability.
  control::SettlingSpec stability_settling{};
  /// Mirror of SolveOptions::require_switching_stability: when true the
  /// analysis stops at a non-switching-stable pair and never computes
  /// dwell tables. Key-relevant — it decides whether a cached result
  /// carries tables, exactly like the verifier's state budget is part of
  /// SlotConfigKey because it can turn a result into a throw.
  bool stop_on_unstable = true;
};

/// Value key for the analysis cache. As with SlotConfigKey, `canonical`
/// is the full serialization and equality never trusts the hash alone:
/// an analysis cache must not hand a colliding entry's certificate to a
/// different plant.
struct AppAnalysisKey {
  std::string canonical;
  std::uint64_t hash = 0;

  [[nodiscard]] static AppAnalysisKey of(const control::DiscreteLti& plant,
                                         const linalg::Matrix& kt,
                                         const linalg::Matrix& ke,
                                         const AppAnalysisSpec& spec);

  friend bool operator==(const AppAnalysisKey& a, const AppAnalysisKey& b) {
    return a.hash == b.hash && a.canonical == b.canonical;
  }
  friend bool operator!=(const AppAnalysisKey& a, const AppAnalysisKey& b) {
    return !(a == b);
  }
};

struct AppAnalysisKeyHash {
  [[nodiscard]] std::size_t operator()(const AppAnalysisKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash);
  }
};

}  // namespace ttdim::engine::analysis
