#include "engine/analysis/analysis_key.h"

namespace ttdim::engine::analysis {

AppAnalysisKey AppAnalysisKey::of(const control::DiscreteLti& plant,
                                  const linalg::Matrix& kt,
                                  const linalg::Matrix& ke,
                                  const AppAnalysisSpec& spec) {
  AppAnalysisKey key;
  key.canonical.reserve(512);
  control::append_canonical(key.canonical, plant);
  key.canonical += "kt=";
  linalg::append_canonical_bits(key.canonical, kt);
  key.canonical += "ke=";
  linalg::append_canonical_bits(key.canonical, ke);
  switching::append_canonical(key.canonical, spec.dwell);
  key.canonical += "stab:";
  control::append_canonical(key.canonical, spec.stability_settling);
  key.canonical += spec.stop_on_unstable ? "stop=1" : "stop=0";

  // FNV-1a, as in SlotConfigKey: equality re-checks the canonical string,
  // so the hash only has to spread buckets.
  std::uint64_t h = 1469598103934665603ull;
  for (char c : key.canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  key.hash = h;
  return key;
}

}  // namespace ttdim::engine::analysis
