// Thread-safe, byte-budgeted LRU cache of immutable per-application
// analysis results, keyed by the content-addressed AppAnalysisKey. This
// is the analysis twin of the oracle layer's VerdictCache/SnapshotCache:
// one cache can be private to a solve, or shared across a whole
// BatchRunner batch / serve process via SolveOptions::analysis_cache —
// a batch of scenarios that perturb arrival patterns but reuse the same
// plants then pays the stability + dwell cost once instead of per job.
//
// Entries are handed out as shared_ptr<const ...> so an eviction never
// invalidates a reader, and results are deterministic functions of their
// key, so concurrent misses that both compute and insert are benign (the
// second insert is a no-op on an interchangeable value). Built on the
// unified LRU core (engine/cache/lru_cache.h) with a byte-cost hook.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "control/design.h"
#include "engine/analysis/analysis_key.h"
#include "engine/cache/lru_cache.h"
#include "switching/dwell.h"

namespace ttdim::engine::analysis {

/// Immutable artefacts of one application's analysis phase: the
/// switching-stability verdict (with its CQLF certificate) and the
/// assembled dwell tables.
struct AppAnalysisResult {
  control::SwitchingStability stability;
  /// Valid only when tables_computed; empty when the analysis stopped at
  /// a non-switching-stable pair under AppAnalysisSpec::stop_on_unstable.
  switching::DwellTables tables;
  bool tables_computed = false;

  /// Resident size in bytes, for the cache's byte budget.
  [[nodiscard]] std::size_t byte_cost() const;
  /// Canonical byte-exact serialization — lets tests pin cached results
  /// bit-identical to freshly computed ones.
  void append_canonical(std::string& out) const;
};

/// Round-trip binary codec for the disk tier (engine/cache/disk_cache.h).
/// decode returns false on malformed input and never throws.
void encode(support::codec::Encoder& enc, const AppAnalysisResult& result);
[[nodiscard]] bool decode(support::codec::Decoder& dec,
                          AppAnalysisResult& result);

/// Monotonic counters (see engine::cache::LruStats for the lock-free
/// snapshot semantics).
struct AnalysisCacheStats {
  long hits = 0;
  long misses = 0;
  long insertions = 0;
  long evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t byte_budget = 0;
};

class AnalysisCache {
 public:
  /// Default byte budget: results are kilobytes (dwell tables + a small
  /// certificate), so this keeps tens of thousands of distinct
  /// plant/gain/spec tuples resident — far beyond any realistic batch.
  static constexpr std::size_t kDefaultByteBudget = 64u << 20;

  explicit AnalysisCache(std::size_t byte_budget = kDefaultByteBudget);

  /// Returns the result and refreshes its recency; nullptr on miss.
  [[nodiscard]] std::shared_ptr<const AppAnalysisResult> lookup(
      const AppAnalysisKey& key);

  /// Inserts (no-op when the key is already present — results for one
  /// key are interchangeable), evicting least-recently-used entries
  /// until the byte budget holds. A result larger than the whole budget
  /// is dropped rather than inserted.
  void insert(const AppAnalysisKey& key, AppAnalysisResult result);

  [[nodiscard]] AnalysisCacheStats stats() const;
  void clear();

 private:
  static std::size_t cost_of(const AppAnalysisKey& key,
                             const AppAnalysisResult& result);

  engine::cache::LruCache<AppAnalysisKey, AppAnalysisResult, AppAnalysisKeyHash>
      cache_;
};

}  // namespace ttdim::engine::analysis
