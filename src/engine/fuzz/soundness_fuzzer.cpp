#include "engine/fuzz/soundness_fuzzer.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <random>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "casestudy/apps.h"
#include "core/dimensioning.h"
#include "core/session.h"
#include "engine/analysis/analysis_cache.h"
#include "engine/cache/disk_cache.h"
#include "engine/cache/solution_cache.h"
#include "engine/fingerprint.h"
#include "engine/oracle/incremental_oracle.h"
#include "engine/oracle/snapshot_cache.h"
#include "engine/oracle/verdict_cache.h"
#include "engine/scenario_generator.h"
#include "mapping/first_fit.h"
#include "support/check.h"

namespace ttdim::engine::fuzz {

namespace {

using Population = std::vector<verify::AppTiming>;
using ClaimFn = std::function<bool(const Population&)>;

/// splitmix64: the per-iteration seed derivation. Each iteration's PRNG is
/// a pure function of (campaign seed, iteration index), so a wall-clock
/// budget that stops the campaign early yields a strict prefix of the
/// unbudgeted trajectory — never a different one.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

int pick(std::mt19937_64& rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

/// Random per-wait timing tables. The sporadic model requires every TT
/// episode to finish before the next disturbance (w + T+dw(w) < r), so r
/// is drawn above that floor; keeping it close to the floor is what makes
/// roughly half the generated pairs unsafe — both oracle answers stay
/// well-exercised.
verify::AppTiming random_app(std::mt19937_64& rng, int index) {
  verify::AppTiming app;
  app.name = "F" + std::to_string(index);
  app.t_star_w = pick(rng, 0, 3);
  const std::size_t waits = static_cast<std::size_t>(app.t_star_w) + 1;
  app.t_minus.resize(waits);
  app.t_plus.resize(waits);
  int floor = 0;
  for (std::size_t w = 0; w < waits; ++w) {
    app.t_minus[w] = 1 + pick(rng, 0, 2);
    app.t_plus[w] = app.t_minus[w] + pick(rng, 0, 2);
    floor = std::max(floor, static_cast<int>(w) + app.t_plus[w]);
  }
  app.min_interarrival = floor + 1 + pick(rng, 0, 9);
  app.validate();
  return app;
}

struct SimOutcome {
  bool violated = false;
  int violator = -1;
  int tick = -1;
};

/// Simulate, treating the scheduler's mid-run stream rejection as
/// violation evidence: a generator-well-formed scenario (sorted, spaced
/// >= r) is only ever rejected when an earlier deadline miss left the
/// re-disturbed application stuck in its episode. Encoded as violator -2
/// (the Artifact convention). Any other rejection is a harness bug and
/// propagates.
SimOutcome simulate_checked(const Population& apps,
                            const sched::Scenario& scenario,
                            verify::SlotPolicy policy) {
  try {
    const sched::ScheduleResult out =
        sched::simulate_slot(apps, scenario, policy);
    return {out.deadline_violated, out.violator, out.violation_tick};
  } catch (const std::invalid_argument& e) {
    if (std::string(e.what()).find("still being handled") !=
        std::string::npos)
      return {true, -2, -1};
    throw;
  }
}

/// Fresh verifier run with the state budget turned into a skip signal
/// (nullopt) instead of an exception — budget exhaustion is counted, never
/// silently conflated with a verdict.
std::optional<verify::SlotVerdict> guarded_verify(
    const Population& pop, verify::DiscreteVerifier::Options opt,
    bool want_witness) {
  opt.want_witness = want_witness;
  opt.depth_first = false;
  try {
    return verify::DiscreteVerifier(pop).verify(opt);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

/// The bounded-disturbance verifier option is an under-approximation by
/// design (the paper's Sec. 5 accelerator): a "safe" claim made under
/// max_disturbances_per_app = k covers exactly the streams with at most k
/// instances per application. Cross-checking such a claim against an
/// unclipped generated stream would "refute" it with behaviour the claim
/// never spoke about, so every simulated scenario is clipped to the bound
/// first (truncation keeps streams well-formed: sorted, spaced, inside
/// the horizon). Unbounded claims (k < 0) are checked against the full
/// streams.
sched::Scenario clip_to_bound(sched::Scenario scenario, int bound) {
  if (bound < 0) return scenario;
  for (std::vector<int>& row : scenario.disturbances)
    if (row.size() > static_cast<std::size_t>(bound))
      row.resize(static_cast<std::size_t>(bound));
  return scenario;
}

void note_scenario(FuzzReport* report, const std::string& kind) {
  if (report == nullptr) return;
  ++report->scenarios_simulated;
  ++report->scenario_kind_counts[kind];
}

/// One confirmed disagreement, carrying everything an Artifact needs.
struct Finding {
  std::string what;   ///< category, becomes the artifact description
  std::string kind;   ///< scenario provenance (kind name / witness / ...)
  bool claimed_safe = false;
  Population pop;
  sched::Scenario scenario;
  int violator = -1;
  int tick = -1;
};

/// The oracle-vs-verifier-vs-simulator cross-check for one population.
///
/// Compares the claim (whatever oracle tier or injected hook produced it)
/// against a fresh breadth-first proof, then grounds whichever side of the
/// agreement is falsifiable in the runtime scheduler: safe populations are
/// simulated against every generator kind plus the hyperperiod sweep (no
/// deadline may be missed), unsafe ones must reproduce their violation
/// when the verifier witness is replayed with forced grants. Returns the
/// disagreement, or nullopt when everything agrees (or a state budget cut
/// the check short — counted by the caller via skipped_budget).
///
/// The same predicate drives shrinking: a candidate population "still
/// fails" exactly when this returns a finding, so the minimal artifact is
/// re-validated end to end at every shrink step (report == nullptr there,
/// to keep the coverage accounting to first discoveries).
std::optional<Finding> find_disagreement(
    const Population& pop, const ClaimFn& claim_fn,
    const verify::DiscreteVerifier::Options& vopt, std::uint64_t scan_seed,
    FuzzReport* report) {
  bool claim = false;
  try {
    claim = claim_fn(pop);
  } catch (const std::runtime_error&) {
    if (report != nullptr) ++report->skipped_budget;
    return std::nullopt;
  }
  const std::optional<verify::SlotVerdict> fresh =
      guarded_verify(pop, vopt, false);
  if (!fresh) {
    if (report != nullptr) ++report->skipped_budget;
    return std::nullopt;
  }

  if (claim != fresh->safe) {
    Finding f;
    f.claimed_safe = claim;
    f.pop = pop;
    if (!fresh->safe) {
      f.what = "claim-safe-but-verifier-unsafe";
      const std::optional<verify::SlotVerdict> wit =
          guarded_verify(pop, vopt, true);
      if (!wit) {
        if (report != nullptr) ++report->skipped_budget;
        return std::nullopt;
      }
      f.kind = "witness";
      f.scenario = witness_scenario(*wit, pop.size());
      note_scenario(report, "witness");
      const SimOutcome out = simulate_checked(pop, f.scenario, vopt.policy);
      f.violator = out.violated ? out.violator : wit->violator;
      f.tick = out.violated ? out.tick : -1;
    } else {
      f.what = "claim-unsafe-but-verifier-safe";
      f.kind = "hyperperiod";
      f.scenario = hyperperiod_scenario(pop);
      note_scenario(report, "hyperperiod");
    }
    return f;
  }

  if (fresh->safe) {
    // Both sides say safe: no sporadic scenario whatsoever may miss a
    // deadline. Scan every generator kind plus the max-rate sweep.
    ScenarioGenerator gen(pop, scan_seed);
    for (const ScenarioKind kind : kAllScenarioKinds) {
      const sched::Scenario sc =
          clip_to_bound(gen.make(kind, 2), vopt.max_disturbances_per_app);
      note_scenario(report, scenario_kind_name(kind));
      const SimOutcome out = simulate_checked(pop, sc, vopt.policy);
      if (out.violated)
        return Finding{"verifier-safe-but-simulation-violates",
                       scenario_kind_name(kind),
                       true,
                       pop,
                       sc,
                       out.violator,
                       out.tick};
    }
    const sched::Scenario sweep =
        clip_to_bound(hyperperiod_scenario(pop), vopt.max_disturbances_per_app);
    note_scenario(report, "hyperperiod");
    const SimOutcome out = simulate_checked(pop, sweep, vopt.policy);
    if (out.violated)
      return Finding{"verifier-safe-but-simulation-violates", "hyperperiod",
                     true,           pop,
                     sweep,          out.violator,
                     out.tick};
    return std::nullopt;
  }

  // Both sides say unsafe: the structured witness must reproduce the
  // violation on the runtime scheduler (same disturbances, same grants).
  const std::optional<verify::SlotVerdict> wit =
      guarded_verify(pop, vopt, true);
  if (!wit) {
    if (report != nullptr) ++report->skipped_budget;
    return std::nullopt;
  }
  const sched::Scenario sc = witness_scenario(*wit, pop.size());
  note_scenario(report, "witness");
  const SimOutcome out = simulate_checked(pop, sc, vopt.policy);
  if (!out.violated)
    return Finding{"witness-does-not-replay", "witness", false, pop,
                   sc,                        wit->violator, -1};
  return std::nullopt;
}

/// Greedy counterexample minimization. Population level first: drop one
/// application at a time while *a* disagreement persists (the category may
/// shift — the smaller case wins either way, since find_disagreement
/// rebuilds the evidence scenario for every candidate). Then scenario
/// level, for simulator-violation evidence without forced grants: truncate
/// arrivals after the violation, drop surviving arrivals one at a time,
/// clamp the horizon just past the miss. Witness scenarios are left alone
/// (their forced grants are tick-indexed, and BFS witnesses are already
/// shortest).
Finding shrink_finding(Finding f, const ClaimFn& claim_fn,
                       const verify::DiscreteVerifier::Options& vopt,
                       std::uint64_t scan_seed) {
  bool improved = true;
  while (improved && f.pop.size() > 1) {
    improved = false;
    for (std::size_t i = 0; i < f.pop.size(); ++i) {
      Population cand = f.pop;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (std::optional<Finding> smaller =
              find_disagreement(cand, claim_fn, vopt, scan_seed, nullptr)) {
        f = std::move(*smaller);
        improved = true;
        break;
      }
    }
  }

  if (f.tick < 0 || !f.scenario.forced_grants.empty()) return f;
  const auto still_violates =
      [&](const sched::Scenario& sc) -> std::optional<SimOutcome> {
    const SimOutcome out = simulate_checked(f.pop, sc, vopt.policy);
    if (!out.violated) return std::nullopt;
    return out;
  };
  {
    sched::Scenario cand = f.scenario;
    for (std::vector<int>& row : cand.disturbances)
      row.erase(std::remove_if(row.begin(), row.end(),
                               [&](int t) { return t > f.tick; }),
                row.end());
    if (const auto out = still_violates(cand)) {
      f.scenario = std::move(cand);
      f.violator = out->violator;
      f.tick = out->tick;
    }
  }
  improved = true;
  while (improved) {
    improved = false;
    for (std::size_t a = 0; a < f.scenario.disturbances.size() && !improved;
         ++a) {
      for (std::size_t j = 0; j < f.scenario.disturbances[a].size(); ++j) {
        sched::Scenario cand = f.scenario;
        cand.disturbances[a].erase(cand.disturbances[a].begin() +
                                   static_cast<std::ptrdiff_t>(j));
        if (const auto out = still_violates(cand)) {
          f.scenario = std::move(cand);
          f.violator = out->violator;
          f.tick = out->tick;
          improved = true;
          break;
        }
      }
    }
  }
  if (f.tick >= 0) {
    sched::Scenario cand = f.scenario;
    cand.horizon = f.tick + 2;
    for (std::vector<int>& row : cand.disturbances)
      row.erase(std::remove_if(row.begin(), row.end(),
                               [&](int t) { return t >= cand.horizon; }),
                row.end());
    if (const auto out = still_violates(cand)) {
      f.scenario = std::move(cand);
      f.violator = out->violator;
      f.tick = out->tick;
    }
  }
  return f;
}

void record_finding(const Finding& f, const FuzzConfig& config,
                    long iteration,
                    const verify::DiscreteVerifier::Options& vopt,
                    FuzzReport& report) {
  ++report.disagreements;
  std::ostringstream line;
  line << "iteration " << iteration << ": " << f.what << " ("
       << f.pop.size() << " apps, kind " << f.kind << ", violator "
       << f.violator << ", tick " << f.tick << ")";
  if (!config.artifacts_dir.empty()) {
    Artifact a;
    a.description = f.what;
    a.seed = config.seed;
    a.iteration = iteration;
    a.scenario_kind = f.kind;
    a.policy = vopt.policy;
    a.max_disturbances_per_app = vopt.max_disturbances_per_app;
    a.max_states = vopt.max_states;
    a.claimed_safe = f.claimed_safe;
    a.apps = f.pop;
    a.scenario = f.scenario;
    a.expect_violator = f.violator;
    a.expect_violation_tick = f.tick;
    const std::string path = save_artifact(a, config.artifacts_dir);
    ++report.artifacts_written;
    report.artifact_paths.push_back(path);
    line << " -> " << path;
  }
  report.disagreement_summaries.push_back(line.str());
}

/// Caches shared across the whole campaign ("batch job" sharing): the
/// fourth oracle configuration and the solve cross-checks reuse these, so
/// cross-iteration subsumption and prefix reuse are genuinely exercised.
///
/// Concurrency contract: the campaign loop is serial, but the solve
/// cross-check's parallel variants fan analysis work out across the
/// shared Executor pool with these same caches attached — every member
/// is an internally-synchronized type on the annotated support::Mutex
/// (the clang -Wthread-safety lane proves their locking), so this struct
/// needs no lock of its own and carries no GUARDED_BY state.
struct FamilyCaches {
  std::shared_ptr<oracle::VerdictCache> verdicts =
      std::make_shared<oracle::VerdictCache>();
  std::shared_ptr<oracle::SnapshotCache> snapshots =
      std::make_shared<oracle::SnapshotCache>();
  std::shared_ptr<analysis::AnalysisCache> analysis =
      std::make_shared<analysis::AnalysisCache>();
  /// Whole-solve result memoization for the solve cross-check's fourth
  /// variant (its hit must fingerprint-match a from-scratch solve).
  std::shared_ptr<cache::SolutionCache> solutions =
      std::make_shared<cache::SolutionCache>();
  /// Persistent tier; null unless the campaign configured a directory.
  std::shared_ptr<cache::DiskCache> disk;
};

void aggregate_tiers(const oracle::IncrementalAdmissionOracle& o,
                     FuzzReport& report) {
  report.probes += o.calls();
  report.exact_hits += o.exact_hits();
  report.subsumption_hits += o.subsumption_hits();
  report.subsumption_cuts += o.subsumption_cuts();
  report.prefix_hits += o.prefix_hits();
  report.fresh_proofs += o.misses() - o.prefix_hits();
  report.disk_hits += o.disk_hits();
}

void run_iteration(long it, const FuzzConfig& config, FamilyCaches& family,
                   FuzzReport& report) {
  std::mt19937_64 rng(splitmix64(
      config.seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(it + 1)));
  const int max_apps = std::clamp(config.max_apps, 2, 8);
  const int n = pick(rng, 2, max_apps);
  Population apps;
  apps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) apps.push_back(random_app(rng, i));

  verify::DiscreteVerifier::Options vopt;
  vopt.policy = pick(rng, 0, 1) == 0 ? verify::SlotPolicy::kPaper
                                     : verify::SlotPolicy::kSlackAware;
  vopt.max_disturbances_per_app = pick(rng, 0, 1) == 0 ? -1 : pick(rng, 1, 3);
  vopt.max_states = 2'000'000;
  ++report.systems;

  const std::uint64_t scan_seed = splitmix64(
      config.seed ^ (0xD1B54A32D192ED03ull * static_cast<std::uint64_t>(it + 1)));

  // The mapping-level SolveOptions matrix: the same population walked under
  // every admission-oracle configuration. Tier answers are identical by
  // construction, so the slot assignments must match byte for byte.
  std::vector<std::unique_ptr<oracle::IncrementalAdmissionOracle>> oracles;
  oracles.push_back(std::make_unique<oracle::IncrementalAdmissionOracle>(
      vopt, nullptr, nullptr, false));
  oracles.push_back(std::make_unique<oracle::IncrementalAdmissionOracle>(
      vopt, std::make_shared<oracle::VerdictCache>(), nullptr, false));
  oracles.push_back(std::make_unique<oracle::IncrementalAdmissionOracle>(
      vopt, std::make_shared<oracle::VerdictCache>(),
      std::make_shared<oracle::SnapshotCache>(), true));
  oracles.push_back(std::make_unique<oracle::IncrementalAdmissionOracle>(
      vopt, family.verdicts, family.snapshots, true, family.disk));
  const std::size_t family_idx = oracles.size() - 1;
  // Disk-backed configuration: fresh memory caches over the campaign
  // directory, walked after the family config has written this walk's
  // proofs through — every probe it can answer from disk is a persisted
  // verdict cross-checked against the live trajectory via the assignment
  // comparison below.
  if (family.disk != nullptr)
    oracles.push_back(std::make_unique<oracle::IncrementalAdmissionOracle>(
        vopt, std::make_shared<oracle::VerdictCache>(),
        std::make_shared<oracle::SnapshotCache>(), true, family.disk));
  // Parallel-verifier configuration: private exact cache only, so every
  // miss of this walk is a fresh proof on the Executor-parallel driver
  // (proof_threads = 2). Its verdicts are contractually identical to
  // serial ones, so its slot assignment must match the reference byte
  // for byte — every admission of the walk cross-checks the parallel
  // BFS against the serial trajectory.
  verify::DiscreteVerifier::Options pvopt = vopt;
  pvopt.proof_threads = 2;
  oracles.push_back(std::make_unique<oracle::IncrementalAdmissionOracle>(
      pvopt, std::make_shared<oracle::VerdictCache>(), nullptr, false));

  const std::vector<int> order = mapping::paper_sort_order(apps);
  std::vector<mapping::SlotAssignment> assignments;
  std::vector<Population> rejected;
  bool aborted = false;
  for (std::size_t c = 0; c < oracles.size() && !aborted; ++c) {
    oracle::IncrementalAdmissionOracle& oc = *oracles[c];
    const bool record = c == family_idx;
    const mapping::SlotOracle probe = [&, record](const Population& pop) {
      bool safe = oc.admit(pop);
      if (config.inject_unsound && !safe && pop.size() >= 2) safe = true;
      if (record && !safe && rejected.size() < 4) rejected.push_back(pop);
      return safe;
    };
    try {
      assignments.push_back(mapping::first_fit(apps, order, probe));
    } catch (const std::runtime_error&) {
      aborted = true;  // state budget; caches may legitimately diverge here
    }
  }
  if (aborted) {
    ++report.skipped_budget;
    for (const auto& o : oracles) aggregate_tiers(*o, report);
    return;
  }

  for (std::size_t c = 1; c < assignments.size(); ++c) {
    if (assignments[c].slots != assignments[0].slots) {
      ++report.disagreements;
      std::ostringstream line;
      line << "iteration " << it
           << ": cross-config assignment mismatch (oracle configuration "
           << c << " vs reference)";
      report.disagreement_summaries.push_back(line.str());
    }
  }

  // Claims for all post-walk checks come from the family-shared oracle —
  // its caches hold the walk's proofs, so these probes deterministically
  // land in the exact / subsumption tiers.
  oracle::IncrementalAdmissionOracle& shared_oracle = *oracles[family_idx];
  const ClaimFn claim_fn = [&](const Population& pop) {
    bool safe = shared_oracle.admit(pop);
    if (config.inject_unsound && !safe && pop.size() >= 2) safe = true;
    return safe;
  };

  std::vector<Population> slot_pops;
  for (const std::vector<int>& members : assignments[0].slots) {
    Population pop;
    for (const int idx : members)
      pop.push_back(apps[static_cast<std::size_t>(idx)]);
    slot_pops.push_back(std::move(pop));
  }

  // Safe side: every admitted slot population, against fresh proof and
  // full scenario scan.
  for (const Population& pop : slot_pops) {
    if (std::optional<Finding> f =
            find_disagreement(pop, claim_fn, vopt, scan_seed, &report))
      record_finding(shrink_finding(std::move(*f), claim_fn, vopt, scan_seed),
                     config, it, vopt, report);
  }

  // Unsafe side: rejected walk probes must re-prove unsafe and their
  // witness must replay to a violation (capped — the cap only limits how
  // many rejections are re-grounded per iteration, and rejections recur
  // every iteration).
  std::size_t checked = 0;
  for (const Population& pop : rejected) {
    if (checked++ >= 2) break;
    if (std::optional<Finding> f =
            find_disagreement(pop, claim_fn, vopt, scan_seed, &report))
      record_finding(shrink_finding(std::move(*f), claim_fn, vopt, scan_seed),
                     config, it, vopt, report);
  }

  // Parallel-verifier differential, at verdict level: re-prove the
  // walk's populations under proof_threads = 2 and hold the parallel
  // driver to its full contract — identical `safe` always, identical
  // states_explored when both sides completed a safe proof (the
  // level-synchronous dedup makes the safe count the reachable-set size,
  // order-independent). Budget exhaustion on either side skips the pair:
  // throw parity is only promised for proofs that are safe when
  // completed, which an exhausted run never reveals.
  verify::DiscreteVerifier::Options par_vopt = vopt;
  par_vopt.proof_threads = 2;
  const auto check_parallel = [&](const Population& pop) {
    const std::optional<verify::SlotVerdict> serial =
        guarded_verify(pop, vopt, false);
    const std::optional<verify::SlotVerdict> parallel =
        guarded_verify(pop, par_vopt, false);
    if (!serial || !parallel) {
      ++report.skipped_budget;
      return;
    }
    ++report.parallel_checks;
    const bool mismatch =
        serial->safe != parallel->safe ||
        (serial->safe && serial->states_explored != parallel->states_explored);
    if (!mismatch) return;
    ++report.disagreements;
    std::ostringstream line;
    line << "iteration " << it << ": serial-vs-parallel verifier mismatch ("
         << (serial->safe ? "safe" : "unsafe") << "/"
         << serial->states_explored << " states vs "
         << (parallel->safe ? "safe" : "unsafe") << "/"
         << parallel->states_explored << " states)";
    report.disagreement_summaries.push_back(line.str());
  };
  for (const Population& pop : slot_pops) check_parallel(pop);
  if (!rejected.empty()) check_parallel(rejected.front());

  // Antitone probes. A strict sub-population of an admitted slot must
  // admit (tier-2 safe hit on the shared caches) and must re-prove safe —
  // an unsafe fresh proof here means admission antitonicity is broken in
  // the verifier itself, which no claim-vs-proof comparison would catch.
  for (const Population& pop : slot_pops) {
    if (pop.size() < 2) continue;
    const Population sub(pop.begin() + 1, pop.end());
    try {
      const bool sub_claim = claim_fn(sub);
      const std::optional<verify::SlotVerdict> sub_fresh =
          guarded_verify(sub, vopt, false);
      if (sub_fresh && !sub_fresh->safe) {
        Finding f;
        f.what = "antitone-violation";
        f.claimed_safe = true;  // by inclusion in the admitted population
        f.pop = sub;
        if (const std::optional<verify::SlotVerdict> wit =
                guarded_verify(sub, vopt, true)) {
          f.kind = "witness";
          f.scenario = witness_scenario(*wit, sub.size());
          note_scenario(&report, "witness");
          const SimOutcome out =
              simulate_checked(sub, f.scenario, vopt.policy);
          f.violator = out.violated ? out.violator : wit->violator;
          f.tick = out.violated ? out.tick : -1;
        } else {
          f.kind = "hyperperiod";
          f.scenario = hyperperiod_scenario(sub);
        }
        record_finding(f, config, it, vopt, report);
      } else if (!sub_claim) {
        if (std::optional<Finding> f =
                find_disagreement(sub, claim_fn, vopt, scan_seed, &report))
          record_finding(
              shrink_finding(std::move(*f), claim_fn, vopt, scan_seed),
              config, it, vopt, report);
      }
    } catch (const std::runtime_error&) {
      ++report.skipped_budget;
    }
  }

  // A strict super-multiset of a rejected probe must reject (tier-2 cut:
  // appending a duplicate member is always a strict multiset extension).
  if (!rejected.empty()) {
    Population sup = rejected.front();
    sup.push_back(sup.front());
    try {
      if (claim_fn(sup)) {
        if (std::optional<Finding> f =
                find_disagreement(sup, claim_fn, vopt, scan_seed, &report))
          record_finding(
              shrink_finding(std::move(*f), claim_fn, vopt, scan_seed),
              config, it, vopt, report);
      }
    } catch (const std::runtime_error&) {
      ++report.skipped_budget;
    }
  }

  for (const auto& o : oracles) aggregate_tiers(*o, report);
}

/// Every solve_every-th iteration: the full pipeline on perturbed
/// case-study specs, solved under toggled SolveOptions. Fingerprints (or
/// thrown requirement errors) must agree byte for byte, and every proposed
/// slot is then co-simulated (control loops included) against a burst
/// scenario. Perturbing r keeps the shared AnalysisCache warm — the
/// analysis key excludes the arrival pattern — while still reshaping the
/// mapping problem.
void run_solve_check(long it, const FuzzConfig& config, FamilyCaches& family,
                     FuzzReport& report) {
  std::mt19937_64 rng(splitmix64(
      config.seed ^ (0xA24BAED4963EE407ull * static_cast<std::uint64_t>(it + 3))));
  const std::vector<casestudy::App> pool = casestudy::all_apps();
  const int k = pick(rng, 2, 3);
  std::vector<int> idx(pool.size());
  std::iota(idx.begin(), idx.end(), 0);
  for (int j = 0; j < k; ++j)
    std::swap(idx[static_cast<std::size_t>(j)],
              idx[static_cast<std::size_t>(
                  pick(rng, j, static_cast<int>(idx.size()) - 1))]);

  std::vector<core::AppSpec> specs;
  for (int j = 0; j < k; ++j) {
    const casestudy::App& app = pool[static_cast<std::size_t>(idx[j])];
    // Loosening-only perturbation keeps the requirements meetable.
    specs.push_back(core::AppSpec{
        app.name, app.plant, app.kt, app.ke,
        app.min_interarrival + pick(rng, 0, 20),
        app.settling_requirement + pick(rng, 0, 10)});
  }

  core::SolveOptions base;
  base.max_disturbances_per_app = 1;
  base.analysis_cache = family.analysis;

  std::vector<std::pair<const char*, core::SolveOptions>> variants;
  {
    core::SolveOptions o = base;
    o.memoize_admission = false;
    o.incremental_admission = false;
    o.subsumption_admission = false;
    variants.emplace_back("reference", o);
  }
  variants.emplace_back("tiers-private", base);
  {
    core::SolveOptions o = base;
    o.verdict_cache = family.verdicts;
    o.snapshot_cache = family.snapshots;
    o.analysis_threads = 0;
    // Fresh admission proofs on the parallel BFS driver (explicit 2, not
    // 0: hardware concurrency may resolve to 1 on small CI boxes, which
    // would silently drop the parallel path from the fingerprint check).
    o.proof_threads = 2;
    o.disk_cache = family.disk;  // null = tier off, same as elsewhere
    variants.emplace_back("tiers-shared-parallel", o);
  }
  {
    // Whole-solve result tier: the first run with these specs stores, a
    // recurring spec tuple is served from the memoized Solution — either
    // way the fingerprint must equal the reference's.
    core::SolveOptions o = base;
    o.solution_cache = family.solutions;
    o.disk_cache = family.disk;
    variants.emplace_back("solution-cache", o);
  }

  ++report.solve_checks;
  std::vector<std::string> outcomes;
  std::optional<core::Solution> solution;
  for (const auto& [name, opts] : variants) {
    try {
      core::Solution sol = core::solve(specs, opts);
      outcomes.push_back(engine::fingerprint(sol));
      if (!solution) solution = std::move(sol);
    } catch (const std::invalid_argument& e) {
      outcomes.push_back(std::string("error: ") + e.what());
    }
  }
  for (std::size_t c = 1; c < outcomes.size(); ++c) {
    if (outcomes[c] != outcomes[0]) {
      ++report.disagreements;
      std::ostringstream line;
      line << "solve check at iteration " << it
           << ": fingerprint mismatch (reference vs " << variants[c].first
           << ")";
      report.disagreement_summaries.push_back(line.str());
    }
  }

  if (!solution) return;
  verify::DiscreteVerifier::Options vopt;
  vopt.max_disturbances_per_app = base.max_disturbances_per_app;
  vopt.max_states = 2'000'000;
  for (std::size_t s = 0; s < solution->proposed.slots.size(); ++s) {
    std::vector<core::AppSolution> members;
    Population timings;
    for (const int i : solution->proposed.slots[s]) {
      members.push_back(solution->apps[static_cast<std::size_t>(i)]);
      timings.push_back(solution->apps[static_cast<std::size_t>(i)].timing);
    }
    ScenarioGenerator gen(
        timings, splitmix64(config.seed ^
                            (0x94D049BB133111EBull *
                             static_cast<std::uint64_t>(it + 1)) ^
                            static_cast<std::uint64_t>(s)));
    const sched::Scenario sc =
        clip_to_bound(gen.burst(2), base.max_disturbances_per_app);
    note_scenario(&report, "burst");
    const core::CoSimResult cosim =
        core::cosimulate(members, sc, casestudy::kSettlingTol);
    if (cosim.schedule.deadline_violated) {
      Finding f;
      f.what = "solve-admitted-slot-violates-in-cosimulation";
      f.kind = "burst";
      f.claimed_safe = true;
      f.pop = timings;
      f.scenario = sc;
      f.violator = cosim.schedule.violator;
      f.tick = cosim.schedule.violation_tick;
      record_finding(f, config, it, vopt, report);
    }
  }
}

/// Name-level slot memberships, in slot/member order: the index-free view
/// that survives redimension's removal renumbering (shared idiom with
/// tests/redimension_test.cpp).
std::vector<std::vector<std::string>> slot_names_of(
    const core::Solution& solution) {
  std::vector<std::vector<std::string>> names;
  for (const std::vector<int>& slot : solution.proposed.slots) {
    std::vector<std::string> members;
    for (const int m : slot)
      members.push_back(solution.apps[static_cast<std::size_t>(m)].spec.name);
    names.push_back(std::move(members));
  }
  return names;
}

void note_churn_disagreement(long it, const std::string& what,
                             FuzzReport& report) {
  ++report.disagreements;
  std::ostringstream line;
  line << "churn check at iteration " << it << ": " << what;
  report.disagreement_summaries.push_back(line.str());
}

/// Every solve_every-th iteration, alongside run_solve_check: the online
/// re-dimensioning differential. A DimensioningSession solves a perturbed
/// case-study population, then walks a generated ChurnTrace one event per
/// delta. After every applied delta the standing solution must (a) pass a
/// fresh admission proof per proposed slot — redimension's contract is
/// "exactly the proofs a cold solve would run", so a session that drifted
/// from its own oracle shows up here; (b) for removal-only deltas, be
/// proof-free (zero oracle traffic — antitone admission) and name-level
/// byte-identical on the remaining slots; (c) keep the bookkeeping
/// invariant removals + refits + new_slots = events. The walk ends with a
/// from-scratch core::solve of the final population: it must succeed, and
/// its per-application analysis artefacts must equal the session's
/// (analysis is a pure function of the spec, however it was reached).
void run_churn_check(long it, const FuzzConfig& config, FamilyCaches& family,
                     FuzzReport& report) {
  std::mt19937_64 rng(splitmix64(
      config.seed ^
      (0xD6E8FEB86659FD93ull * static_cast<std::uint64_t>(it + 5))));
  const std::vector<casestudy::App> pool = casestudy::all_apps();
  const int k = pick(rng, 2, 3);
  std::vector<int> idx(pool.size());
  std::iota(idx.begin(), idx.end(), 0);
  for (int j = 0; j < k; ++j)
    std::swap(idx[static_cast<std::size_t>(j)],
              idx[static_cast<std::size_t>(
                  pick(rng, j, static_cast<int>(idx.size()) - 1))]);

  std::vector<core::AppSpec> specs;
  for (int j = 0; j < k; ++j) {
    const casestudy::App& app = pool[static_cast<std::size_t>(idx[j])];
    // Loosening-only perturbation keeps the requirements meetable (the
    // run_solve_check idiom).
    specs.push_back(core::AppSpec{
        app.name, app.plant, app.kt, app.ke,
        app.min_interarrival + pick(rng, 0, 20),
        app.settling_requirement + pick(rng, 0, 10)});
  }

  core::SolveOptions opts;
  opts.max_disturbances_per_app = 1;
  opts.analysis_cache = family.analysis;
  opts.verdict_cache = family.verdicts;
  opts.snapshot_cache = family.snapshots;
  opts.disk_cache = family.disk;
  core::DimensioningSession session(opts);
  core::Solution standing;
  try {
    standing = session.solve(specs);
  } catch (const std::invalid_argument&) {
    // The loosening perturbation can push an application's tolerable
    // wait past its (also loosened) rate — an infeasible population,
    // not a harness finding. run_solve_check records the same outcome
    // as a consistent "error:" across its variants.
    return;
  }
  ++report.redimension_checks;

  verify::DiscreteVerifier::Options vopt;
  vopt.max_disturbances_per_app = opts.max_disturbances_per_app;
  vopt.policy = opts.policy;
  vopt.max_states = 2'000'000;

  Population timings;
  for (const core::AppSolution& app : standing.apps)
    timings.push_back(app.timing);
  ScenarioGenerator gen(
      timings,
      splitmix64(config.seed ^
                 (0x2545F4914F6CDD1Dull * static_cast<std::uint64_t>(it + 7))));
  const ChurnTrace trace = gen.churn_trace(pick(rng, 2, 3));

  // The initial solve already registered every application, so each
  // application's first kAdd (its trace registration) is skipped; from
  // then on the trace lifecycle (remove -> add -> rerate...) maps one to
  // one onto single-event deltas. A removal that would empty the
  // population is skipped together with its paired re-add, keeping the
  // walk aligned with the trace lifecycle.
  std::vector<bool> seen_first_add(specs.size(), false);
  std::vector<bool> skip_next_add(specs.size(), false);
  int active = k;
  for (const ChurnEvent& event : trace.events) {
    const std::size_t a = static_cast<std::size_t>(event.app);
    core::Delta delta;
    switch (event.kind) {
      case ChurnEventKind::kAdd: {
        if (!seen_first_add[a]) {
          seen_first_add[a] = true;
          continue;
        }
        if (skip_next_add[a]) {
          skip_next_add[a] = false;
          continue;
        }
        core::AppSpec spec = specs[a];
        spec.min_interarrival = event.min_interarrival;
        delta.add.push_back(std::move(spec));
        ++active;
        break;
      }
      case ChurnEventKind::kRemove: {
        if (active <= 1) {  // a delta must not empty the population
          skip_next_add[a] = true;
          continue;
        }
        delta.remove.push_back(specs[a].name);
        --active;
        break;
      }
      case ChurnEventKind::kRerate: {
        core::AppSpec spec = specs[a];
        spec.min_interarrival = event.min_interarrival;
        delta.rerate.push_back(std::move(spec));
        break;
      }
    }

    const std::vector<std::vector<std::string>> before =
        slot_names_of(standing);
    core::Solution next;
    try {
      next = session.redimension(delta);
    } catch (const std::exception& e) {
      note_churn_disagreement(
          it,
          std::string("redimension threw on a well-formed ") +
              churn_event_kind_name(event.kind) + " delta: " + e.what(),
          report);
      return;
    }
    ++report.redimension_events;

    const oracle::SolveStats& stats = next.stats;
    if (stats.redimension_removals + stats.redimension_refits +
            stats.redimension_new_slots !=
        stats.redimension_events)
      note_churn_disagreement(it, "redimension counters do not balance",
                              report);

    if (event.kind == ChurnEventKind::kRemove) {
      // Removal-only deltas are proof-free and byte-identical on the
      // remaining slots.
      if (stats.oracle_calls != 0 || stats.verifier_states != 0)
        note_churn_disagreement(
            it, "removal-only delta generated oracle traffic", report);
      std::vector<std::vector<std::string>> expected = before;
      for (std::vector<std::string>& slot : expected)
        slot.erase(std::remove(slot.begin(), slot.end(), specs[a].name),
                   slot.end());
      expected.erase(
          std::remove_if(expected.begin(), expected.end(),
                         [](const std::vector<std::string>& slot) {
                           return slot.empty();
                         }),
          expected.end());
      if (slot_names_of(next) != expected)
        note_churn_disagreement(
            it, "removal-only delta changed the remaining slots", report);
    }

    // Fresh admission proof per proposed slot: the standing assignment
    // must always be one a cold verifier accepts.
    for (std::size_t s = 0; s < next.proposed.slots.size(); ++s) {
      Population population;
      for (const int m : next.proposed.slots[s])
        population.push_back(next.apps[static_cast<std::size_t>(m)].timing);
      const std::optional<verify::SlotVerdict> fresh =
          guarded_verify(population, vopt, false);
      if (!fresh) {
        ++report.skipped_budget;
        continue;
      }
      if (!fresh->safe)
        note_churn_disagreement(
            it,
            "standing slot " + std::to_string(s) +
                " fails its fresh admission proof after a " +
                churn_event_kind_name(event.kind) + " delta",
            report);
    }

    standing = std::move(next);
  }

  // From-scratch cross-check of the final population: the churned specs
  // must still solve, and analysis purity means the fresh solve's
  // per-application artefacts equal the session's, whatever path the
  // session took to get here. (The assignments may differ — the standing
  // one is history-dependent by design — so they are not compared.)
  try {
    const core::Solution fresh = core::solve(session.specs(), opts);
    for (const core::AppSolution& app : fresh.apps) {
      const core::AppSolution* mine = nullptr;
      for (const core::AppSolution& candidate : standing.apps)
        if (candidate.spec.name == app.spec.name) mine = &candidate;
      if (mine == nullptr ||
          mine->timing.t_star_w != app.timing.t_star_w ||
          mine->timing.t_minus != app.timing.t_minus ||
          mine->timing.t_plus != app.timing.t_plus ||
          mine->timing.min_interarrival != app.timing.min_interarrival) {
        note_churn_disagreement(
            it,
            "from-scratch solve analysis differs for " + app.spec.name,
            report);
      }
    }
  } catch (const std::invalid_argument& e) {
    note_churn_disagreement(
        it,
        std::string("from-scratch solve of the churned population threw: ") +
            e.what(),
        report);
  }
}

}  // namespace

sched::Scenario witness_scenario(const verify::SlotVerdict& verdict,
                                 std::size_t napps) {
  TTDIM_EXPECTS(!verdict.witness_ticks.empty());
  sched::Scenario sc;
  sc.horizon = static_cast<int>(verdict.witness_ticks.size()) + 2;
  sc.disturbances.assign(napps, {});
  sc.forced_grants.assign(static_cast<std::size_t>(sc.horizon), -1);
  for (std::size_t t = 0; t < verdict.witness_ticks.size(); ++t) {
    const verify::WitnessTick& tick = verdict.witness_ticks[t];
    for (const int app : tick.disturbed)
      sc.disturbances[static_cast<std::size_t>(app)].push_back(
          static_cast<int>(t));
    sc.forced_grants[t] = tick.granted;
  }
  return sc;
}

sched::Scenario hyperperiod_scenario(
    const std::vector<verify::AppTiming>& apps) {
  TTDIM_EXPECTS(!apps.empty());
  long long span = 1;
  for (const verify::AppTiming& app : apps) {
    const long long r = app.min_interarrival;
    span = span / std::gcd(span, r) * r;
    if (span > 4096) {
      span = 4096;
      break;
    }
  }
  sched::Scenario sc;
  sc.disturbances.assign(apps.size(), {});
  long long horizon = 1;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const verify::AppTiming& app = apps[i];
    const long long window =
        app.t_star_w +
        *std::max_element(app.t_plus.begin(), app.t_plus.end());
    for (long long t = 0; t < span; t += app.min_interarrival) {
      sc.disturbances[i].push_back(static_cast<int>(t));
      horizon = std::max(horizon, t + window + 2);
    }
  }
  TTDIM_CHECK(horizon <= std::numeric_limits<int>::max());
  sc.horizon = static_cast<int>(horizon);
  return sc;
}

std::vector<std::string> FuzzReport::missing_coverage() const {
  std::vector<std::string> missing;
  const std::pair<const char*, long> tiers[] = {
      {"exact", exact_hits},
      {"subsumption_safe", subsumption_hits},
      {"subsumption_cut", subsumption_cuts},
      {"prefix", prefix_hits},
      {"fresh", fresh_proofs},
  };
  for (const auto& [name, count] : tiers)
    if (count == 0) missing.push_back(std::string("tier:") + name);
  if (disk_enabled && disk_hits == 0) missing.push_back("tier:disk");
  if (parallel_checks == 0) missing.push_back("config:parallel");
  if (redimension_expected && redimension_checks == 0)
    missing.push_back("config:redimension");
  std::vector<std::string> kinds;
  for (const ScenarioKind kind : kAllScenarioKinds)
    kinds.emplace_back(scenario_kind_name(kind));
  kinds.emplace_back("hyperperiod");
  for (const std::string& kind : kinds) {
    const auto found = scenario_kind_counts.find(kind);
    if (found == scenario_kind_counts.end() || found->second == 0)
      missing.push_back("kind:" + kind);
  }
  return missing;
}

std::string FuzzReport::to_string() const {
  std::ostringstream out;
  out << "ttdim-fuzz report\n";
  out << "seed " << seed << "\n";
  out << "iterations " << iterations << "\n";
  out << "systems " << systems << "\n";
  out << "skipped_budget " << skipped_budget << "\n";
  out << "solve_checks " << solve_checks << "\n";
  out << "probes " << probes << "\n";
  out << "scenarios_simulated " << scenarios_simulated << "\n";
  out << "tier exact " << exact_hits << "\n";
  out << "tier subsumption_safe " << subsumption_hits << "\n";
  out << "tier subsumption_cut " << subsumption_cuts << "\n";
  out << "tier prefix " << prefix_hits << "\n";
  out << "tier fresh " << fresh_proofs << "\n";
  if (disk_enabled) out << "tier disk " << disk_hits << "\n";
  out << "parallel_checks " << parallel_checks << "\n";
  out << "redimension_checks " << redimension_checks << "\n";
  out << "redimension_events " << redimension_events << "\n";
  for (const auto& [kind, count] : scenario_kind_counts)
    out << "kind " << kind << " " << count << "\n";
  out << "disagreements " << disagreements << "\n";
  for (const std::string& line : disagreement_summaries)
    out << "disagreement " << line << "\n";
  for (const std::string& path : artifact_paths)
    out << "artifact " << path << "\n";
  for (const std::string& entry : missing_coverage())
    out << "missing " << entry << "\n";
  return out.str();
}

FuzzReport run_soundness_fuzz(const FuzzConfig& config) {
  TTDIM_EXPECTS(config.iterations >= 0);
  FuzzReport report;
  report.seed = config.seed;
  FamilyCaches family;
  if (!config.disk_cache_dir.empty()) {
    family.disk = std::make_shared<cache::DiskCache>(config.disk_cache_dir);
    report.disk_enabled = true;
  }
  report.redimension_expected = config.solve_every > 0;
  const auto start = std::chrono::steady_clock::now();
  for (long it = 0; it < config.iterations; ++it) {
    if (config.max_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= config.max_seconds) break;
    }
    ++report.iterations;
    run_iteration(it, config, family, report);
    if (config.solve_every > 0 && (it + 1) % config.solve_every == 0) {
      run_solve_check(it, config, family, report);
      run_churn_check(it, config, family, report);
    }
  }
  return report;
}

ReplayResult replay(const Artifact& artifact) {
  return replay(artifact, nullptr);
}

ReplayResult replay(const Artifact& artifact,
                    const std::shared_ptr<engine::cache::DiskCache>& disk) {
  ReplayResult result;
  verify::DiscreteVerifier::Options opt;
  opt.policy = artifact.policy;
  opt.max_disturbances_per_app = artifact.max_disturbances_per_app;
  opt.max_states = artifact.max_states;
  const std::optional<verify::SlotVerdict> fresh =
      guarded_verify(artifact.apps, opt, false);
  if (!fresh) {
    result.message = "state budget exhausted re-verifying the claim";
    return result;
  }
  if (disk != nullptr) {
    // Disk-backed oracle cross-check: an entry a prior process persisted
    // for this population must agree with the fresh proof above; a miss
    // writes the proof (warming the directory for a following campaign).
    const oracle::IncrementalAdmissionOracle via_disk(
        opt, std::make_shared<oracle::VerdictCache>(),
        std::make_shared<oracle::SnapshotCache>(), true, disk);
    try {
      if (via_disk.admit(artifact.apps) != fresh->safe) {
        result.message =
            std::string("disk-tier verdict mismatch: fresh verifier says ") +
            (fresh->safe ? "safe" : "unsafe") +
            ", disk-backed oracle disagrees";
        return result;
      }
    } catch (const std::runtime_error&) {
      // State budget through the oracle path: inconclusive, not a failure.
    }
  }
  if (fresh->safe != artifact.claimed_safe) {
    result.message = std::string("claim mismatch: artifact claims ") +
                     (artifact.claimed_safe ? "safe" : "unsafe") +
                     ", fresh verifier says " +
                     (fresh->safe ? "safe" : "unsafe");
    return result;
  }
  SimOutcome out;
  try {
    out = simulate_checked(artifact.apps, artifact.scenario, artifact.policy);
  } catch (const std::exception& e) {
    result.message = std::string("scenario rejected: ") + e.what();
    return result;
  }
  const bool expect_violation =
      artifact.expect_violator != -1 || artifact.expect_violation_tick != -1;
  if (out.violated != expect_violation) {
    result.message = out.violated
                         ? "unexpected deadline violation (app " +
                               std::to_string(out.violator) + " at tick " +
                               std::to_string(out.tick) + ")"
                         : "expected deadline violation did not occur";
    return result;
  }
  if (out.violated) {
    if (artifact.expect_violator != -1 &&
        out.violator != artifact.expect_violator) {
      result.message = "violator mismatch: expected " +
                       std::to_string(artifact.expect_violator) + ", got " +
                       std::to_string(out.violator);
      return result;
    }
    if (artifact.expect_violation_tick >= 0 &&
        out.tick != artifact.expect_violation_tick) {
      result.message = "violation tick mismatch: expected " +
                       std::to_string(artifact.expect_violation_tick) +
                       ", got " + std::to_string(out.tick);
      return result;
    }
    if (artifact.claimed_safe) {
      result.message = "claimed safe but the scenario misses a deadline";
      return result;
    }
  }
  result.ok = true;
  result.message = "ok";
  return result;
}

namespace {

verify::AppTiming uniform_app(const std::string& name, int t_star,
                              int t_minus, int t_plus, int r) {
  verify::AppTiming app;
  app.name = name;
  app.t_star_w = t_star;
  app.t_minus.assign(static_cast<std::size_t>(t_star) + 1, t_minus);
  app.t_plus.assign(static_cast<std::size_t>(t_star) + 1, t_plus);
  app.min_interarrival = r;
  app.validate();
  return app;
}

}  // namespace

std::vector<std::string> mint_seed_corpus(const std::string& dir) {
  std::vector<std::string> written;
  const auto finish = [&](Artifact artifact) {
    const ReplayResult check = replay(artifact);
    if (!check.ok)
      throw std::logic_error("mint_seed_corpus: '" + artifact.description +
                             "' does not replay green: " + check.message);
    written.push_back(save_artifact(artifact, dir));
  };
  const auto base = [](const std::string& description,
                       const std::string& kind, bool safe,
                       Population apps) {
    Artifact a;
    a.description = description;
    a.scenario_kind = kind;
    a.claimed_safe = safe;
    a.max_states = 2'000'000;
    a.apps = std::move(apps);
    return a;
  };
  verify::DiscreteVerifier::Options opt;
  opt.max_states = 2'000'000;

  // 1-2. A safe uniform pair (claim pinned by a fresh proof at mint time)
  // under the canonical burst and the adversarial coincidence patterns.
  {
    const Population apps{uniform_app("A", 3, 1, 2, 12),
                          uniform_app("B", 3, 1, 2, 12)};
    TTDIM_CHECK(guarded_verify(apps, opt, false)->safe);
    ScenarioGenerator gen(apps, 7);
    Artifact burst = base("seed corpus: safe uniform pair, burst", "burst",
                          true, apps);
    burst.scenario = gen.burst(2);
    finish(std::move(burst));
    Artifact coincidence =
        base("seed corpus: safe uniform pair, worst-case coincidence",
             "coincidence", true, apps);
    coincidence.scenario = gen.worst_case_coincidence(0);
    finish(std::move(coincidence));
  }

  // 3. An unsafe pair (two zero-wait-tolerance apps colliding) whose
  // verifier witness replays the violation with forced grants.
  {
    const Population apps{uniform_app("U0", 0, 2, 2, 4),
                          uniform_app("U1", 0, 2, 2, 4)};
    const std::optional<verify::SlotVerdict> wit =
        guarded_verify(apps, opt, true);
    TTDIM_CHECK(wit.has_value() && !wit->safe);
    Artifact witness =
        base("seed corpus: unsafe zero-tolerance pair, witness replay",
             "witness", false, apps);
    witness.scenario = witness_scenario(*wit, apps.size());
    const SimOutcome out =
        simulate_checked(apps, witness.scenario, witness.policy);
    TTDIM_CHECK(out.violated);
    witness.expect_violator = out.violator;
    witness.expect_violation_tick = out.tick;
    finish(std::move(witness));
  }

  // 4-8. A mixed skew trio (safe — pinned by a fresh proof) under every
  // remaining scenario kind, so the checked-in corpus alone touches all
  // provenance kinds.
  {
    const Population apps{uniform_app("M0", 2, 1, 2, 10),
                          uniform_app("M1", 3, 1, 3, 12),
                          uniform_app("M2", 1, 1, 1, 8)};
    TTDIM_CHECK(guarded_verify(apps, opt, false)->safe);
    ScenarioGenerator gen(apps, 21);
    const std::pair<const char*, sched::Scenario> entries[] = {
        {"staggered", gen.staggered(3, 2)},
        {"random", gen.random(2, 5)},
        {"correlated", gen.correlated(3, 4)},
        {"system_adversarial",
         gen.system_adversarial({{0, 1}, {2}}, {0, 2})},
        {"churn", gen.churn(2, 2)},
        {"hyperperiod", hyperperiod_scenario(apps)},
    };
    for (const auto& [kind, scenario] : entries) {
      Artifact a = base(std::string("seed corpus: safe skew trio, ") + kind,
                        kind, true, apps);
      a.scenario = scenario;
      finish(std::move(a));
    }
  }
  return written;
}

}  // namespace ttdim::engine::fuzz
