// The soundness fuzzer: a deterministic, seed-driven differential harness
// that cross-checks every tier of the admission oracle against fresh
// DiscreteVerifier proofs and against simulated deadline behaviour
// (sched::simulate_slot / core::cosimulate), in the spirit of
// coverage-guided differential testing and the paper's Fig. 8/9
// simulator cross-validation.
//
// Per iteration it:
//   1. generates a random application population (timing-level) and picks
//      verdict-affecting verifier options (policy, disturbance bound);
//   2. runs the first-fit mapping under the admission-oracle
//      configuration matrix (reference / exact-only / full-private /
//      full-shared — the SolveOptions-toggle matrix at mapping level —
//      plus a fresh-memory configuration over the persistent disk tier
//      when a cache directory is configured, and a parallel-verifier
//      configuration whose fresh proofs run with proof_threads = 2) and
//      requires identical slot assignments; admitted and rejected
//      populations are additionally re-proved serial-vs-parallel at
//      verdict level (same `safe`; same states_explored when safe);
//   3. re-verifies every admitted slot population with a fresh BFS and
//      simulates it against every ScenarioGenerator kind plus a max-rate
//      hyperperiod sweep — an admitted population must never miss a
//      deadline; rejected populations must reproduce their violation when
//      the verifier witness is replayed on the runtime scheduler;
//   4. probes sub-populations of admitted slots and super-populations of
//      rejected ones through the shared oracle (the antitone property,
//      and the deterministic way to exercise the exact/subsumption tiers
//      every iteration);
//   5. every solve_every-th iteration, runs the full core::solve pipeline
//      on perturbed case-study specs under toggled SolveOptions and
//      requires byte-identical fingerprints, then co-simulates the
//      proposed slots; on the same cadence it walks a generated
//      ChurnTrace through a DimensioningSession (core/session.h),
//      cross-checking every redimensioned standing solution against
//      fresh admission proofs (removal-only deltas additionally against
//      proof-freeness and name-level byte-identity) and the final
//      population against a from-scratch solve.
//
// Any disagreement is greedily shrunk (drop applications, truncate
// arrivals, clamp the horizon) to a minimal counterexample and serialized
// as a replayable Artifact. The whole run is a pure function of
// (seed, iterations, flags): same seed, byte-identical trajectory and
// report (wall-clock budgets only ever cut the iteration sequence short).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/fuzz/artifact.h"

namespace ttdim::engine::cache {
class DiskCache;
}  // namespace ttdim::engine::cache

namespace ttdim::engine::fuzz {

struct FuzzConfig {
  std::uint64_t seed = 1;
  /// System families to generate. The trajectory is a pure function of
  /// (seed, iteration index), so a longer run strictly extends a shorter
  /// one.
  long iterations = 50;
  /// Wall-clock budget in seconds, checked between iterations; 0 = none.
  /// Stopping early truncates the trajectory but never alters it.
  double max_seconds = 0.0;
  /// Population size is uniform in [2, max_apps] (clamped to [2, 8]).
  int max_apps = 5;
  /// Every Nth iteration additionally runs the full core::solve
  /// cross-check on perturbed case-study specs; 0 disables (the
  /// timing-level loop alone still covers all oracle tiers).
  long solve_every = 0;
  /// Where shrunk counterexamples are serialized; empty = don't write.
  std::string artifacts_dir;
  /// Directory for a campaign-shared persistent DiskCache; empty = no disk
  /// tier. When set, the family-shared oracle configuration writes every
  /// proof through to disk and a fifth, fresh-memory oracle configuration
  /// re-answers the whole walk from the disk tier — its slot assignments
  /// must match the reference byte for byte, and every disk-served verdict
  /// is thereby cross-checked against a live proof trajectory. Report
  /// determinism holds for a fresh (empty) directory; a pre-warmed
  /// directory shifts tier counts but never assignments.
  std::string disk_cache_dir;
  /// Test-only hook (the acceptance path of the harness itself): flips
  /// every unsafe admission answer of populations with >= 2 members to
  /// "safe" *outside* the oracle, emulating an unsound verdict tier. The
  /// harness must catch it, shrink it, and emit a red-replaying artifact
  /// — asserted by tests/fuzz_harness_test.cpp and `ttdim_fuzz
  /// --self-check`.
  bool inject_unsound = false;
};

struct FuzzReport {
  std::uint64_t seed = 0;
  long iterations = 0;
  long systems = 0;
  /// Systems abandoned because a verifier run exhausted its state budget
  /// (counted, never silently dropped).
  long skipped_budget = 0;
  long solve_checks = 0;
  long probes = 0;                ///< admission queries posed to oracles
  long scenarios_simulated = 0;

  // Oracle-tier verdict accounting, aggregated over every oracle
  // instance the run created (the per-run analogue of SolveStats'
  // four-tier split). The nightly job fails loudly when any tier stayed
  // at zero — see missing_coverage().
  long exact_hits = 0;
  long subsumption_hits = 0;
  long subsumption_cuts = 0;
  long prefix_hits = 0;
  long fresh_proofs = 0;
  /// Exact hits answered from the persistent tier (a subset of
  /// exact_hits). Only meaningful — and only reported / coverage-checked —
  /// when the campaign ran with a disk cache directory.
  long disk_hits = 0;
  bool disk_enabled = false;
  /// Serial-vs-parallel verifier differentials performed: populations of
  /// the walk re-proved under proof_threads = 2 and compared against the
  /// serial verdict (same `safe` always; same states_explored when both
  /// completed safe). Zero is a coverage gap ("config:parallel") — the
  /// parallel driver must never silently drop out of the campaign.
  long parallel_checks = 0;
  /// Churn differential walks performed (on the solve_every cadence): a
  /// DimensioningSession's standing solution is driven through a
  /// generated ChurnTrace and after every applied delta (a) each
  /// proposed slot must pass a fresh admission proof, (b) removal-only
  /// deltas must be proof-free and name-level byte-identical on the
  /// remaining slots, and (c) the final population must re-solve from
  /// scratch with per-application analysis artefacts identical to the
  /// session's. Zero while expected is a coverage gap
  /// ("config:redimension") — like parallel_checks, the redimension path
  /// must never silently drop out of the campaign.
  long redimension_checks = 0;
  /// Deltas applied across all churn walks (each walk applies one delta
  /// per usable trace event).
  long redimension_events = 0;
  /// Whether the campaign configuration put churn walks on the schedule
  /// (solve_every > 0) — only then is their absence a coverage gap.
  bool redimension_expected = false;

  /// Simulated scenarios by kind name (the seven ScenarioGenerator kinds
  /// plus "hyperperiod" and "witness").
  std::map<std::string, long> scenario_kind_counts;

  long disagreements = 0;
  long artifacts_written = 0;
  std::vector<std::string> artifact_paths;
  /// One line per disagreement, shrunk form included.
  std::vector<std::string> disagreement_summaries;

  /// Silent-coverage-gap guard: every oracle tier and every scenario
  /// kind that was never exercised, as "tier:<name>" / "kind:<name>"
  /// entries. Empty = full coverage.
  [[nodiscard]] std::vector<std::string> missing_coverage() const;

  /// Canonical multi-line report. Byte-deterministic given (seed,
  /// iterations): contains no wall times, no paths other than the
  /// configured artifact directory.
  [[nodiscard]] std::string to_string() const;
};

/// Run the fuzz campaign. Throws only on harness-internal errors (e.g. an
/// unwritable artifacts_dir); disagreements are reported, not thrown.
[[nodiscard]] FuzzReport run_soundness_fuzz(const FuzzConfig& config);

/// Replay verdict of one artifact: fresh-verify the population under the
/// recorded options and re-simulate the recorded scenario, then compare
/// both against the recorded claim and expectation. `ok == false` means
/// the artifact disagrees with the current code — either a checked-in
/// regression resurfaced or a just-shrunk counterexample (which is
/// expected to replay red until the bug it found is fixed).
struct ReplayResult {
  bool ok = false;
  std::string message;  ///< human-readable verdict, one line
};
[[nodiscard]] ReplayResult replay(const Artifact& artifact);

/// Replay with a disk-backed oracle cross-check: in addition to the plain
/// replay() verdict, the population is admitted through a fresh-memory
/// oracle layered over `disk` and the answer must match the fresh proof.
/// On a disk miss this *writes* the proof, so replaying the seed corpus
/// against a directory both validates any pre-existing entries and warms
/// the directory for a following campaign. A null `disk` is plain replay().
[[nodiscard]] ReplayResult replay(
    const Artifact& artifact,
    const std::shared_ptr<engine::cache::DiskCache>& disk);

/// Translate a structured verifier witness into a runtime scenario with
/// forced grants (the construction of tests/replay_test.cpp, shared so
/// the harness and the tests cannot drift).
[[nodiscard]] sched::Scenario witness_scenario(
    const verify::SlotVerdict& verdict, std::size_t napps);

/// Max-rate periodic cross-check scenario: every application arrives at
/// its minimum inter-arrival rate from tick 0 over (a 4096-tick cap of)
/// the population's hyperperiod lcm(r_i), each final episode fully
/// simulated. The densest sustained load the sporadic model admits.
[[nodiscard]] sched::Scenario hyperperiod_scenario(
    const std::vector<verify::AppTiming>& apps);

/// Write the hand-picked seed corpus (boundary systems, a witness replay,
/// a case-study-derived slot) into `dir`, self-validating each entry via
/// replay(). Returns the written paths. Regenerate with
/// `ttdim_fuzz --mint-corpus tests/corpus` after intentional format or
/// semantics changes.
std::vector<std::string> mint_seed_corpus(const std::string& dir);

}  // namespace ttdim::engine::fuzz
