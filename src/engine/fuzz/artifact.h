// Replayable soundness artifacts: the corpus format of the fuzz harness
// (engine/fuzz/soundness_fuzzer.h). An artifact freezes one admission
// claim — a slot population, the verifier options the claim was made
// under, the claimed verdict — together with a concrete disturbance
// scenario (optionally carrying forced grants when derived from a
// verifier witness) and the expected simulated outcome. Replaying an
// artifact re-derives the fresh verdict and re-simulates the scenario, so
// every counterexample the fuzzer ever shrinks becomes a permanent
// regression in tests/corpus/ (fuzz_corpus_test), and a disagreement that
// resurfaces replays red.
//
// The serialization is a line-based deterministic text format (no floats,
// no locale dependence): two artifacts are the same case exactly when
// their bytes match, and the content-hash filename makes dedup automatic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/slot_scheduler.h"
#include "verify/app_timing.h"
#include "verify/discrete.h"

namespace ttdim::engine::fuzz {

struct Artifact {
  static constexpr int kFormatVersion = 1;

  /// Free-text one-liner shown by repro tooling (no newlines).
  std::string description;
  /// Provenance: the fuzzer run's seed and the iteration that found the
  /// case (-1 when hand-written or minted).
  std::uint64_t seed = 0;
  long iteration = -1;
  /// Scenario provenance: a ScenarioGenerator kind name, "witness" (the
  /// scenario replays a verifier counterexample, forced grants included)
  /// or "hyperperiod" (max-rate periodic cross-check).
  std::string scenario_kind;

  // The verdict-affecting verifier options of the claim (the same fields
  // SlotConfigKey canonicalizes).
  verify::SlotPolicy policy = verify::SlotPolicy::kPaper;
  int max_disturbances_per_app = -1;
  long max_states = 2'000'000;

  /// The admission claim under test: what the oracle layer answered when
  /// the artifact was recorded. Replay asserts the fresh verifier still
  /// agrees — a checked-in artifact whose claim has gone stale is exactly
  /// a soundness regression.
  bool claimed_safe = false;

  std::vector<verify::AppTiming> apps;
  sched::Scenario scenario;

  /// Expected simulated outcome: the violating application and tick, or
  /// -1/-1 when the scenario must complete without a deadline miss. A
  /// violator of -2 encodes "the runtime rejects the stream mid-run" —
  /// the simulator's re-disturbance guard fires because an earlier miss
  /// left the violator stuck, which is violation evidence too.
  int expect_violator = -1;
  int expect_violation_tick = -1;

  /// Canonical text form; parse(serialize()) round-trips byte-exactly
  /// (pinned by tests/fuzz_harness_test.cpp).
  [[nodiscard]] std::string serialize() const;
  /// Strict parser: throws std::invalid_argument on any malformed input
  /// (unknown header, arity mismatch, apps failing AppTiming::validate).
  [[nodiscard]] static Artifact parse(const std::string& text);
};

/// Load one artifact file. Throws std::invalid_argument (parse errors)
/// or std::runtime_error (unreadable file).
[[nodiscard]] Artifact load_artifact(const std::string& path);

/// Serialize into `dir` under the content-hash name
/// "cex_<16 hex digits>.ttfz" (FNV-1a of the canonical bytes — identical
/// cases dedup to one file). Creates `dir` if missing; returns the path.
std::string save_artifact(const Artifact& artifact, const std::string& dir);

/// Sorted paths of every *.ttfz in `dir` (empty when the directory does
/// not exist).
[[nodiscard]] std::vector<std::string> list_artifacts(const std::string& dir);

}  // namespace ttdim::engine::fuzz
