#include "engine/fuzz/artifact.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "engine/oracle/slot_config_key.h"
#include "support/check.h"

namespace ttdim::engine::fuzz {

namespace {

const char* policy_name(verify::SlotPolicy policy) {
  return policy == verify::SlotPolicy::kPaper ? "paper" : "slack";
}

verify::SlotPolicy parse_policy(const std::string& word) {
  if (word == "paper") return verify::SlotPolicy::kPaper;
  if (word == "slack") return verify::SlotPolicy::kSlackAware;
  throw std::invalid_argument("Artifact: unknown policy '" + word + "'");
}

/// Pull the next whitespace-separated token and require it to equal
/// `expected` — the parser is strict so a truncated or reordered artifact
/// fails loudly instead of replaying a different case.
void expect_word(std::istream& in, const char* expected) {
  std::string word;
  if (!(in >> word) || word != expected)
    throw std::invalid_argument(std::string("Artifact: expected '") +
                                expected + "', got '" + word + "'");
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  T value{};
  if (!(in >> value))
    throw std::invalid_argument(std::string("Artifact: malformed ") + what);
  return value;
}

}  // namespace

std::string Artifact::serialize() const {
  TTDIM_EXPECTS(!apps.empty());
  TTDIM_EXPECTS(scenario.disturbances.size() == apps.size());
  TTDIM_EXPECTS(description.find('\n') == std::string::npos);
  std::ostringstream out;
  out << "ttdim-fuzz-artifact v" << kFormatVersion << "\n";
  out << "description " << description << "\n";
  out << "seed " << seed << "\n";
  out << "iteration " << iteration << "\n";
  out << "kind " << (scenario_kind.empty() ? "unknown" : scenario_kind)
      << "\n";
  out << "policy " << policy_name(policy) << "\n";
  out << "max_disturbances " << max_disturbances_per_app << "\n";
  out << "max_states " << max_states << "\n";
  out << "claimed_safe " << (claimed_safe ? 1 : 0) << "\n";
  out << "apps " << apps.size() << "\n";
  for (const verify::AppTiming& app : apps) {
    out << "app " << app.t_star_w << " " << app.min_interarrival << " "
        << (app.name.empty() ? "A" : app.name) << "\n";
    out << "tminus";
    for (int v : app.t_minus) out << " " << v;
    out << "\n";
    out << "tplus";
    for (int v : app.t_plus) out << " " << v;
    out << "\n";
  }
  out << "scenario " << scenario.horizon << " "
      << scenario.forced_grants.size() << "\n";
  for (std::size_t i = 0; i < scenario.disturbances.size(); ++i) {
    out << "arrivals " << i << " " << scenario.disturbances[i].size();
    for (int t : scenario.disturbances[i]) out << " " << t;
    out << "\n";
  }
  if (!scenario.forced_grants.empty()) {
    out << "forced";
    for (int g : scenario.forced_grants) out << " " << g;
    out << "\n";
  }
  out << "expect " << expect_violator << " " << expect_violation_tick
      << "\n";
  out << "end\n";
  return out.str();
}

Artifact Artifact::parse(const std::string& text) {
  std::istringstream in(text);
  Artifact a;
  expect_word(in, "ttdim-fuzz-artifact");
  std::string version;
  if (!(in >> version) || version != "v1")
    throw std::invalid_argument("Artifact: unsupported format version '" +
                                version + "'");
  expect_word(in, "description");
  std::getline(in >> std::ws, a.description);
  expect_word(in, "seed");
  a.seed = read_value<std::uint64_t>(in, "seed");
  expect_word(in, "iteration");
  a.iteration = read_value<long>(in, "iteration");
  expect_word(in, "kind");
  a.scenario_kind = read_value<std::string>(in, "kind");
  expect_word(in, "policy");
  a.policy = parse_policy(read_value<std::string>(in, "policy"));
  expect_word(in, "max_disturbances");
  a.max_disturbances_per_app = read_value<int>(in, "max_disturbances");
  expect_word(in, "max_states");
  a.max_states = read_value<long>(in, "max_states");
  expect_word(in, "claimed_safe");
  a.claimed_safe = read_value<int>(in, "claimed_safe") != 0;
  expect_word(in, "apps");
  const std::size_t napps = read_value<std::size_t>(in, "app count");
  if (napps == 0 || napps > 64)
    throw std::invalid_argument("Artifact: implausible app count");
  a.apps.resize(napps);
  for (verify::AppTiming& app : a.apps) {
    expect_word(in, "app");
    app.t_star_w = read_value<int>(in, "t_star_w");
    app.min_interarrival = read_value<int>(in, "min_interarrival");
    app.name = read_value<std::string>(in, "name");
    if (app.t_star_w < 0 || app.t_star_w > 1'000'000)
      throw std::invalid_argument("Artifact: implausible T*w");
    const std::size_t want = static_cast<std::size_t>(app.t_star_w) + 1;
    expect_word(in, "tminus");
    app.t_minus.resize(want);
    for (int& v : app.t_minus) v = read_value<int>(in, "t_minus entry");
    expect_word(in, "tplus");
    app.t_plus.resize(want);
    for (int& v : app.t_plus) v = read_value<int>(in, "t_plus entry");
    app.validate();
  }
  expect_word(in, "scenario");
  a.scenario.horizon = read_value<int>(in, "horizon");
  const std::size_t nforced = read_value<std::size_t>(in, "forced count");
  a.scenario.disturbances.assign(napps, {});
  for (std::size_t i = 0; i < napps; ++i) {
    expect_word(in, "arrivals");
    const std::size_t index = read_value<std::size_t>(in, "arrival index");
    if (index != i)
      throw std::invalid_argument("Artifact: arrival rows out of order");
    const std::size_t count = read_value<std::size_t>(in, "arrival count");
    if (count > 1'000'000)
      throw std::invalid_argument("Artifact: implausible arrival count");
    a.scenario.disturbances[i].resize(count);
    for (int& t : a.scenario.disturbances[i])
      t = read_value<int>(in, "arrival tick");
  }
  if (nforced > 0) {
    if (nforced != static_cast<std::size_t>(a.scenario.horizon))
      throw std::invalid_argument(
          "Artifact: forced grants must cover the horizon");
    expect_word(in, "forced");
    a.scenario.forced_grants.resize(nforced);
    for (int& g : a.scenario.forced_grants)
      g = read_value<int>(in, "forced grant");
  }
  expect_word(in, "expect");
  a.expect_violator = read_value<int>(in, "expected violator");
  a.expect_violation_tick = read_value<int>(in, "expected tick");
  expect_word(in, "end");
  return a;
}

Artifact load_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("load_artifact: cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return Artifact::parse(text.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

std::string save_artifact(const Artifact& artifact, const std::string& dir) {
  const std::string bytes = artifact.serialize();
  std::filesystem::create_directories(dir);
  std::ostringstream name;
  name << "cex_" << std::hex << std::setw(16) << std::setfill('0')
       << oracle::fnv1a(bytes) << ".ttfz";
  const std::filesystem::path path = std::filesystem::path(dir) / name.str();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << bytes) || !out.flush())
    throw std::runtime_error("save_artifact: cannot write " + path.string());
  return path.string();
}

std::vector<std::string> list_artifacts(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".ttfz")
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace ttdim::engine::fuzz
