// ttdim_fuzz: driver for the deterministic soundness fuzzer
// (engine/fuzz/soundness_fuzzer.h).
//
//   ttdim_fuzz [--seed N] [--iterations N] [--max-seconds S] [--max-apps N]
//              [--solve-every N] [--artifacts-out DIR] [--report-out FILE]
//              [--disk-cache DIR] [--require-full-coverage]
//              [--inject-unsound]
//   ttdim_fuzz [--disk-cache DIR] --replay FILE | --replay-dir DIR
//   ttdim_fuzz --mint-corpus DIR
//   ttdim_fuzz --self-check
//
// Exit codes: 0 clean, 1 disagreements / red replays / missing coverage,
// 2 usage or harness error. The report on stdout is byte-deterministic
// given (seed, iterations); wall-clock budgets only truncate the
// trajectory (--max-seconds), they never reorder it.
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/cache/disk_cache.h"
#include "engine/fuzz/artifact.h"
#include "engine/fuzz/soundness_fuzzer.h"

namespace fuzz = ttdim::engine::fuzz;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --seed N                 campaign seed (default 1)\n"
      << "  --iterations N           system families to generate "
         "(default 50)\n"
      << "  --max-seconds S          wall budget, checked between "
         "iterations\n"
      << "  --max-apps N             population size cap, 2..8 (default 5)\n"
      << "  --solve-every N          full core::solve cross-check every "
         "N iterations\n"
      << "  --artifacts-out DIR      serialize shrunk counterexamples\n"
      << "  --disk-cache DIR         persistent cache directory: campaigns "
         "add a disk-backed\n"
      << "                           oracle configuration, replays "
         "cross-check disk verdicts\n"
      << "                           against fresh proofs\n"
      << "  --report-out FILE        also write the report to FILE\n"
      << "  --require-full-coverage  fail if any oracle tier or scenario "
         "kind stayed unexercised\n"
      << "  --inject-unsound         test hook: flip unsafe admissions to "
         "safe\n"
      << "  --replay FILE            replay one artifact\n"
      << "  --replay-dir DIR         replay every *.ttfz in DIR\n"
      << "  --mint-corpus DIR        regenerate the seed corpus into DIR\n"
      << "  --self-check             verify the harness catches an "
         "injected unsound verdict\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::FuzzConfig config;
  bool require_full_coverage = false;
  bool self_check = false;
  std::string replay_file;
  std::string replay_dir;
  std::string mint_dir;
  std::string report_out;

  const auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": " << argv[i] << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--seed")
        config.seed = std::stoull(value(i));
      else if (arg == "--iterations")
        config.iterations = std::stol(value(i));
      else if (arg == "--max-seconds")
        config.max_seconds = std::stod(value(i));
      else if (arg == "--max-apps")
        config.max_apps = std::stoi(value(i));
      else if (arg == "--solve-every")
        config.solve_every = std::stol(value(i));
      else if (arg == "--artifacts-out")
        config.artifacts_dir = value(i);
      else if (arg == "--disk-cache")
        config.disk_cache_dir = value(i);
      else if (arg == "--report-out")
        report_out = value(i);
      else if (arg == "--require-full-coverage")
        require_full_coverage = true;
      else if (arg == "--inject-unsound")
        config.inject_unsound = true;
      else if (arg == "--replay")
        replay_file = value(i);
      else if (arg == "--replay-dir")
        replay_dir = value(i);
      else if (arg == "--mint-corpus")
        mint_dir = value(i);
      else if (arg == "--self-check")
        self_check = true;
      else
        return usage(argv[0]);
    } catch (const std::exception&) {
      std::cerr << argv[0] << ": bad value for " << arg << "\n";
      return 2;
    }
  }

  try {
    if (!mint_dir.empty()) {
      for (const std::string& path : fuzz::mint_seed_corpus(mint_dir))
        std::cout << "minted " << path << "\n";
      return 0;
    }

    if (!replay_file.empty() || !replay_dir.empty()) {
      std::vector<std::string> paths;
      if (!replay_file.empty()) paths.push_back(replay_file);
      if (!replay_dir.empty())
        for (const std::string& path : fuzz::list_artifacts(replay_dir))
          paths.push_back(path);
      if (paths.empty()) {
        std::cerr << argv[0] << ": no artifacts to replay\n";
        return 2;
      }
      std::shared_ptr<ttdim::engine::cache::DiskCache> disk;
      if (!config.disk_cache_dir.empty())
        disk = std::make_shared<ttdim::engine::cache::DiskCache>(
            config.disk_cache_dir);
      int red = 0;
      for (const std::string& path : paths) {
        const fuzz::ReplayResult verdict =
            fuzz::replay(fuzz::load_artifact(path), disk);
        std::cout << (verdict.ok ? "green " : "RED   ") << path << ": "
                  << verdict.message << "\n";
        if (!verdict.ok) ++red;
      }
      return red > 0 ? 1 : 0;
    }

    if (self_check) {
      config.inject_unsound = true;
      if (config.artifacts_dir.empty())
        config.artifacts_dir = "fuzz-selfcheck-artifacts";
      const fuzz::FuzzReport report = fuzz::run_soundness_fuzz(config);
      std::cout << report.to_string();
      bool red_artifact = false;
      for (const std::string& path : report.artifact_paths)
        if (!fuzz::replay(fuzz::load_artifact(path)).ok) {
          red_artifact = true;
          break;
        }
      if (report.disagreements > 0 && report.artifacts_written > 0 &&
          red_artifact) {
        std::cout << "self-check: injected unsound verdict was caught, "
                     "shrunk and replays red\n";
        return 0;
      }
      std::cerr << "self-check FAILED: injected unsound verdict was not "
                   "detected\n";
      return 1;
    }

    const fuzz::FuzzReport report = fuzz::run_soundness_fuzz(config);
    const std::string text = report.to_string();
    std::cout << text;
    if (!report_out.empty()) {
      std::ofstream out(report_out, std::ios::trunc);
      if (!out || !(out << text))
        throw std::runtime_error("cannot write " + report_out);
    }
    int rc = 0;
    if (report.disagreements > 0) {
      std::cerr << "FAIL: " << report.disagreements << " disagreement(s)\n";
      rc = 1;
    }
    if (require_full_coverage) {
      const std::vector<std::string> missing = report.missing_coverage();
      if (!missing.empty()) {
        std::cerr << "FAIL: coverage gaps:";
        for (const std::string& entry : missing) std::cerr << " " << entry;
        std::cerr << "\n";
        rc = 1;
      }
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 2;
  }
}
