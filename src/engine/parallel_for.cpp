#include "engine/parallel_for.h"

#include <algorithm>
#include <thread>

#include "engine/executor.h"
#include "support/check.h"

namespace ttdim::engine {

int resolve_threads(int threads) {
  TTDIM_EXPECTS(threads >= 0);
  if (threads != 0) return threads;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

// No lock lives at this layer: the façade owns no state, and the shared
// pool underneath is the annotated Executor (its mutex discipline is
// compile-time-checked via support/thread_annotations.h). fn's contract —
// write only state owned by index i — is what keeps this layer lock-free.
void parallel_for_index(int threads, int n,
                        const std::function<void(int)>& fn) {
  TTDIM_EXPECTS(n >= 0);
  if (n == 0) return;
  const int workers = std::min(resolve_threads(threads), n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  Executor::global().run(workers, n, fn);
}

}  // namespace ttdim::engine
