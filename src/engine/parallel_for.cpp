#include "engine/parallel_for.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.h"

namespace ttdim::engine {

int resolve_threads(int threads) {
  TTDIM_EXPECTS(threads >= 0);
  if (threads != 0) return threads;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

void parallel_for_index(int threads, int n,
                        const std::function<void(int)>& fn) {
  TTDIM_EXPECTS(n >= 0);
  if (n == 0) return;
  const int workers = std::min(resolve_threads(threads), n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto drain = [&] {
    for (;;) {
      const int i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers) - 1);
  try {
    for (int w = 1; w < workers; ++w) pool.emplace_back(drain);
  } catch (...) {
    // Thread spawn failed (resource exhaustion): drain with what we have,
    // join, and surface the error instead of terminating on ~thread.
    drain();
    for (std::thread& t : pool) t.join();
    throw;
  }
  drain();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ttdim::engine
