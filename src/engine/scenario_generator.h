// Seeded, reproducible disturbance-scenario generation for the verified
// slot protocol. The paper's experiments (Figs. 8-9) hand-pick a few
// scenarios; scaling the evaluation to "as many scenarios as you can
// imagine" needs a generator that (a) is deterministic under a seed so
// failures replay, (b) only emits scenarios simulate_slot accepts (sorted
// arrivals, spacing >= r, inside the horizon), and (c) can construct the
// adversarial extreme cases the admission analysis reasons about —
// in particular the coincidence pattern that attains
// verify::max_coinciding_instances.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "sched/slot_scheduler.h"
#include "verify/app_timing.h"

namespace ttdim::engine {

enum class ScenarioKind {
  kBurst,      ///< every application disturbed at the same tick, repeatedly
  kStaggered,  ///< application i first disturbed at i * offset
  kWorstCaseCoincidence,  ///< maximal interference on one victim app
  kRandom,     ///< random arrivals with spacing in [r, r + jitter]
};

class ScenarioGenerator {
 public:
  /// `apps` must each pass AppTiming::validate(); the generator keeps a
  /// copy so scenarios stay well-formed even if the caller's vector moves.
  ScenarioGenerator(std::vector<verify::AppTiming> apps, std::uint64_t seed);

  /// All applications disturbed together at tick 0, then again every
  /// max(r_i) ticks, `instances_per_app` times. The canonical contention
  /// pattern of the paper's Fig. 8 discussion.
  [[nodiscard]] sched::Scenario burst(int instances_per_app = 1);

  /// Application i's first disturbance at i * offset, repeated at its own
  /// min inter-arrival `instances_per_app` times. offset = 0 aligns the
  /// first arrivals only (unlike burst, repeats use each app's own r).
  [[nodiscard]] sched::Scenario staggered(int offset,
                                          int instances_per_app = 1);

  /// Adversarial pattern that attains verify::max_coinciding_instances
  /// against `victim`: the victim is disturbed at tick d, and every other
  /// application j contributes one instance pending just before d (at
  /// d + 1 - r_j) plus one per started period inside the victim's critical
  /// window (d, d + T*w + max T+dw].
  [[nodiscard]] sched::Scenario worst_case_coincidence(int victim);

  /// Random arrivals: per application, a random start in [0, r) then
  /// `instances_per_app` arrivals with gaps uniform in [r, r + jitter]
  /// (upper bound clamped to INT_MAX when r + jitter would overflow).
  /// Consumes PRNG state: consecutive calls differ, reseeding replays.
  /// All generators do their arrival/horizon arithmetic in 64-bit and
  /// throw std::invalid_argument when a tick or the horizon would
  /// overflow int, instead of wrapping into undefined behaviour —
  /// exercised by the extreme-value property test in
  /// tests/scenario_generator_test.cpp.
  [[nodiscard]] sched::Scenario random(int instances_per_app, int jitter);

  /// Dispatch by kind (kRandom uses instances_per_app and a jitter of the
  /// largest r; kStaggered uses the smallest r as offset; coincidence
  /// picks a PRNG-chosen victim). Convenience for fuzz-style loops. The
  /// documented jitter/offset choices are pinned against the direct
  /// calls by tests (make(kRandom) == random(n, largest r) under the
  /// same PRNG state, likewise kStaggered/smallest r).
  [[nodiscard]] sched::Scenario make(ScenarioKind kind,
                                     int instances_per_app = 1);

  [[nodiscard]] int app_count() const {
    return static_cast<int>(apps_.size());
  }

 private:
  /// Seals a disturbance table into a Scenario whose horizon covers every
  /// instance's full episode: each arrival t needs [t, t + T*w + max
  /// T+dw] simulated (its own app's window), plus one slack tick.
  [[nodiscard]] sched::Scenario finalize(
      std::vector<std::vector<int>> disturbances) const;

  std::vector<verify::AppTiming> apps_;
  std::mt19937_64 rng_;
};

}  // namespace ttdim::engine
