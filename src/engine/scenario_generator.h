// Seeded, reproducible disturbance-scenario generation for the verified
// slot protocol. The paper's experiments (Figs. 8-9) hand-pick a few
// scenarios; scaling the evaluation to "as many scenarios as you can
// imagine" needs a generator that (a) is deterministic under a seed so
// failures replay, (b) only emits scenarios simulate_slot accepts (sorted
// arrivals, spacing >= r, inside the horizon), and (c) can construct the
// adversarial extreme cases the admission analysis reasons about —
// in particular the coincidence pattern that attains
// verify::max_coinciding_instances.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "sched/slot_scheduler.h"
#include "verify/app_timing.h"

namespace ttdim::engine {

enum class ScenarioKind {
  kBurst,      ///< every application disturbed at the same tick, repeatedly
  kStaggered,  ///< application i first disturbed at i * offset
  kWorstCaseCoincidence,  ///< maximal interference on one victim app
  kRandom,     ///< random arrivals with spacing in [r, r + jitter]
  kCorrelated,         ///< bursty epochs with per-app participation coins
  kSystemAdversarial,  ///< per-slot worst-case coincidence, victims aligned
  kChurn,              ///< arrival/departure streams: active episodes
};

/// Every kind, in declaration order. Fuzz loops and coverage accounting
/// iterate this instead of hand-maintaining per-site lists that silently
/// go stale when a kind is added.
inline constexpr ScenarioKind kAllScenarioKinds[] = {
    ScenarioKind::kBurst,         ScenarioKind::kStaggered,
    ScenarioKind::kWorstCaseCoincidence, ScenarioKind::kRandom,
    ScenarioKind::kCorrelated,    ScenarioKind::kSystemAdversarial,
    ScenarioKind::kChurn,
};

/// Stable lower-case identifier ("burst" .. "churn") for reports and
/// replayable corpus artifacts.
[[nodiscard]] const char* scenario_kind_name(ScenarioKind kind);

/// Registration-level churn event: what happens to an application's
/// *membership* in the system, as opposed to the disturbance arrivals
/// the scheduler scenarios describe.
enum class ChurnEventKind {
  kAdd,     ///< application (re-)registers with rate min_interarrival
  kRemove,  ///< application departs
  kRerate,  ///< application stays but changes its rate in place
};

/// Stable lower-case identifier ("add" / "remove" / "rerate").
[[nodiscard]] const char* churn_event_kind_name(ChurnEventKind kind);

struct ChurnEvent {
  int tick = 0;
  ChurnEventKind kind = ChurnEventKind::kAdd;
  int app = 0;  ///< index into the generator's application vector
  /// The application's min inter-arrival as of this event (kAdd carries
  /// the registration rate, kRerate the new rate, kRemove zero). Always
  /// >= the app's timing-validity floor max_w(w + T+dw[w]) + 1, so a
  /// re-rated AppTiming still passes validate().
  int min_interarrival = 0;
};

/// Replayable event-stream view of the churn kind's arrival/departure
/// episodes: the same seed that drives churn() scheduler scenarios can
/// drive redimension benches and fuzz campaigns through an ordered
/// add/remove/re-rate trace. Events are sorted by (tick, app); each
/// application's own events are strictly increasing in tick and form a
/// well-formed lifecycle (first event kAdd; kRemove/kRerate only while
/// registered; kAdd again only after kRemove).
struct ChurnTrace {
  std::vector<ChurnEvent> events;
};

class ScenarioGenerator {
 public:
  /// `apps` must each pass AppTiming::validate(); the generator keeps a
  /// copy so scenarios stay well-formed even if the caller's vector moves.
  ScenarioGenerator(std::vector<verify::AppTiming> apps, std::uint64_t seed);

  /// All applications disturbed together at tick 0, then again every
  /// max(r_i) ticks, `instances_per_app` times. The canonical contention
  /// pattern of the paper's Fig. 8 discussion.
  [[nodiscard]] sched::Scenario burst(int instances_per_app = 1);

  /// Application i's first disturbance at i * offset, repeated at its own
  /// min inter-arrival `instances_per_app` times. offset = 0 aligns the
  /// first arrivals only (unlike burst, repeats use each app's own r).
  [[nodiscard]] sched::Scenario staggered(int offset,
                                          int instances_per_app = 1);

  /// Adversarial pattern that attains verify::max_coinciding_instances
  /// against `victim`: the victim is disturbed at tick d, and every other
  /// application j contributes one instance pending just before d (at
  /// d + 1 - r_j) plus one per started period inside the victim's critical
  /// window (d, d + T*w + max T+dw].
  [[nodiscard]] sched::Scenario worst_case_coincidence(int victim);

  /// Random arrivals: per application, a random start in [0, r) then
  /// `instances_per_app` arrivals with gaps uniform in [r, r + jitter]
  /// (upper bound clamped to INT_MAX when r + jitter would overflow).
  /// Consumes PRNG state: consecutive calls differ, reseeding replays.
  /// All generators do their arrival/horizon arithmetic in 64-bit and
  /// throw std::invalid_argument when a tick or the horizon would
  /// overflow int, instead of wrapping into undefined behaviour —
  /// exercised by the extreme-value property test in
  /// tests/scenario_generator_test.cpp.
  [[nodiscard]] sched::Scenario random(int instances_per_app, int jitter);

  /// Correlated/bursty arrivals: `bursts` correlated epochs, the first at
  /// a random tick in [0, min r), consecutive epochs separated by a gap
  /// uniform in [1, 2 * max r]. At each epoch every application draws a
  /// fair participation coin (the epoch's anchor application, index
  /// epoch mod n, joins regardless, so no epoch is empty) and joining
  /// applications arrive at epoch + a uniform offset in [0, spread].
  /// Candidates closer than r to the application's previous arrival are
  /// dropped — the sporadic model forbids them, and dropping (rather than
  /// shifting) preserves the correlation structure. PRNG consumption per
  /// epoch and application: one coin, then one offset if joining.
  /// Arithmetic is 64-bit with the same overflow behaviour as random().
  [[nodiscard]] sched::Scenario correlated(int bursts, int spread);

  /// Multi-slot system-level adversarial coincidence: `slots` partitions a
  /// subset of the applications into disjoint index groups (one per TT
  /// slot), and victims[s] names the victim inside slots[s]. Every slot
  /// simultaneously experiences its worst_case_coincidence pattern — all
  /// victims are disturbed at one common tick d0 (pushed past every
  /// mentioned application's r so pending instances stay representable),
  /// and each slot's other members contribute one instance pending just
  /// before d0 plus one per started period inside their victim's critical
  /// window, attaining verify::max_coinciding_instances per slot (pinned
  /// by tests). Applications not mentioned in `slots` get no arrivals.
  [[nodiscard]] sched::Scenario system_adversarial(
      const std::vector<std::vector<int>>& slots,
      const std::vector<int>& victims);

  /// As above with a PRNG-chosen victim per slot (one draw per slot, in
  /// slot order).
  [[nodiscard]] sched::Scenario system_adversarial(
      const std::vector<std::vector<int>>& slots);

  /// Arrival/departure churn stream: per application, `episodes` active
  /// episodes of `instances_per_episode` arrivals at gaps uniform in
  /// [r, 2r], separated by departure pauses that add a further uniform
  /// [2r, 6r] on top of the trailing active gap (the application leaves
  /// the system, then re-registers). First arrival uniform in [0, r).
  /// PRNG consumption per application: one start, then one gap per
  /// instance and one pause per episode. Gap bounds are computed wide and
  /// clamped like random()'s; arrivals accumulate in 64-bit and overflow
  /// throws std::invalid_argument. This is the long-horizon workload the
  /// future redimension(Solution, delta) API will be benchmarked against.
  [[nodiscard]] sched::Scenario churn(int episodes, int instances_per_episode);

  /// The registration-level view of churn()'s episode structure: per
  /// application, a kAdd at a uniform start in [0, r), then `episodes - 1`
  /// episode boundaries. Each boundary first advances time by an active
  /// span uniform in [2r, 4r] of the current rate, then draws a fair
  /// coin: re-rate in place (kRerate with a new rate uniform in
  /// [validity floor, max(floor, 2 * original r)], where the floor is
  /// max_w(w + T+dw[w]) + 1 so the re-rated timing stays valid), or
  /// depart and return (kRemove, then kAdd at the current rate after a
  /// pause uniform in [2r, 6r]). PRNG consumption per application: one
  /// start, then one span + one coin + one (rate | pause) per boundary —
  /// deterministic under the seed like every generator here. Bounds are
  /// computed wide and clamped like churn()'s; ticks accumulate in
  /// 64-bit and overflow throws std::invalid_argument. Events are
  /// returned sorted by (tick, app) — a total order, since one
  /// application never emits two events on the same tick.
  [[nodiscard]] ChurnTrace churn_trace(int episodes);

  /// Dispatch by kind (kRandom uses instances_per_app and a jitter of the
  /// largest r; kStaggered uses the smallest r as offset; coincidence
  /// picks a PRNG-chosen victim; kCorrelated uses instances_per_app
  /// epochs and a spread of the smallest r - 1; kSystemAdversarial draws
  /// a random partition — slot count uniform in [1, n], then one slot
  /// draw per application, empty slots dropped — and a random victim per
  /// slot; kChurn uses instances_per_app episodes of 2 arrivals).
  /// Convenience for fuzz-style loops. The documented parameter choices
  /// are pinned against the direct calls by tests (make(kRandom) ==
  /// random(n, largest r) under the same PRNG state, likewise
  /// kStaggered/smallest r, kCorrelated and kChurn).
  [[nodiscard]] sched::Scenario make(ScenarioKind kind,
                                     int instances_per_app = 1);

  [[nodiscard]] int app_count() const {
    return static_cast<int>(apps_.size());
  }

 private:
  /// Seals a disturbance table into a Scenario whose horizon covers every
  /// instance's full episode: each arrival t needs [t, t + T*w + max
  /// T+dw] simulated (its own app's window), plus one slack tick.
  [[nodiscard]] sched::Scenario finalize(
      std::vector<std::vector<int>> disturbances) const;

  std::vector<verify::AppTiming> apps_;
  std::mt19937_64 rng_;
};

}  // namespace ttdim::engine
