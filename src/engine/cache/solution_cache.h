// Whole-solve result cache: core::SolveKey (the canonical full-spec
// input serialization) -> complete core::Solution. This is the serving
// tier the ROADMAP's daemon arc calls for — a request whose specs and
// result-affecting options match a previous solve is answered without
// running any pipeline phase — and the memory half of the restart-warm
// path: core::solve layers it over the DiskCache "solution" space, so a
// fresh process answers repeat requests from disk on the first call.
//
// One more LruCache instantiation, same sharing idiom as the other
// caches: private per solve when constructed ad hoc, or shared across a
// batch/serve process via SolveOptions::solution_cache. Stored Solutions
// carry zeroed SolveStats (stats are per-request measurement, not
// result); solve() stamps fresh ones onto every hit.
#pragma once

#include <cstddef>
#include <memory>

#include "core/dimensioning.h"
#include "engine/cache/lru_cache.h"

namespace ttdim::engine::cache {

class SolutionCache {
 public:
  /// Solutions are tens of kilobytes (dwell tables + per-sample
  /// timings); 64 MiB keeps thousands of distinct workloads resident.
  static constexpr std::size_t kDefaultByteBudget = 64u << 20;

  explicit SolutionCache(std::size_t byte_budget = kDefaultByteBudget);

  /// Returns the cached solution and refreshes its recency; nullptr on
  /// miss.
  [[nodiscard]] std::shared_ptr<const core::Solution> lookup(
      const core::SolveKey& key);

  /// Inserts (no-op when present — solutions for one key are
  /// interchangeable), evicting LRU entries until the byte budget holds.
  void insert(const core::SolveKey& key, core::Solution solution);

  [[nodiscard]] LruStats stats() const;
  void clear();

 private:
  static std::size_t cost_of(const core::SolveKey& key,
                             const core::Solution& solution);

  LruCache<core::SolveKey, core::Solution, core::SolveKeyHash> cache_;
};

}  // namespace ttdim::engine::cache
