// Content-addressed, size-capped, crash-safe on-disk cache — the
// persistent second tier under the in-memory LruCache wrappers
// (AnalysisCache, VerdictCache, the whole-solve SolutionCache), in the
// dist-clang file_cache idiom: hash-named entry files, write-to-temp +
// atomic rename-into-place, LRU trimming by mtime.
//
// Keys and values are opaque byte strings: the key is the same canonical
// serialization the memory tiers already use (AppAnalysisKey::canonical,
// SlotConfigKey::canonical, SolveKey::canonical) and the value is a
// support::codec round-trip encoding of the cached result. One entry is
// one file named `<space>/<fnv1a(key) as 16 hex>.entry`, where `space`
// is a short namespace string ("analysis", "verdict", "solution") that
// keeps differently-typed payloads from colliding. The full key is
// stored inside the entry and compared on read, so a hash collision
// degrades to a miss, never to a wrong value.
//
// Entry file layout (little-endian):
//   "TTDC"                       4-byte magic
//   u32  kFormatVersion
//   u64  key length
//   u64  value length
//   key bytes, value bytes
//   u64  fnv1a(key ++ value)     checksum
//
// Failure model: this cache may be shared by concurrent processes (CI
// runs restoring the same actions/cache directory, fleet peers on NFS)
// and may be killed at any instant. Every failure — truncated or
// corrupted or version-mismatched entry, unwritable directory, a file
// vanishing mid-scan — is a miss or a silent no-op, NEVER an error that
// escapes to the solver. Writers stage entries as uniquely-named temp
// files in the destination directory and publish with
// std::filesystem::rename (atomic on POSIX), so readers only ever see
// absent or complete entries; an abandoned temp file is invisible to
// get() and swept by the next trim.
//
// Trimming: a put() that pushes the resident estimate past the byte
// budget rescans the directory and deletes oldest-mtime entries until
// the budget holds (get() refreshes mtime on hit, making this LRU).
// Bumping kFormatVersion orphans every old entry at once — they read as
// version mismatches (misses) and age out via the trim.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/thread_annotations.h"

namespace ttdim::engine::cache {

/// Monotonic counters + resident-size snapshot. Counters are lock-free
/// atomics, so a snapshot taken under concurrent use is approximate in
/// the same benign way LruStats is.
struct DiskCacheStats {
  long hits = 0;
  long misses = 0;    ///< absent entries (corrupt ones count separately)
  long corrupt = 0;   ///< truncated / checksum / version / magic failures
  long writes = 0;    ///< entries published via rename
  long trims = 0;     ///< budget-enforcement sweeps
  std::size_t bytes = 0;  ///< resident-size estimate (exact after a trim)
  std::size_t byte_budget = 0;
};

class DiskCache {
 public:
  /// Bump when the entry layout or any cached value's codec changes;
  /// CI's actions/cache key embeds this so incompatible caches are never
  /// restored (.github/workflows/ci.yml keeps "v<kFormatVersion>" in its
  /// key — update both together).
  static constexpr std::uint32_t kFormatVersion = 1;
  /// Entries are kilobytes; 256 MiB holds far more history than any CI
  /// run or daemon accumulates between trims.
  static constexpr std::size_t kDefaultByteBudget = 256u << 20;
  /// Conventional directory name used by tools that take a cache dir
  /// (examples/warm_start, ttdim_fuzz --disk-cache); listed in .gitignore.
  static constexpr const char* kDefaultDirName = ".ttdim-cache";

  /// Opens (creating if needed) `directory` and initialises the
  /// resident-size estimate from the entries already present. A
  /// directory that cannot be created leaves the cache permanently
  /// empty-and-unwritable rather than failing.
  explicit DiskCache(std::string directory,
                     std::size_t byte_budget = kDefaultByteBudget);

  DiskCache(const DiskCache&) = delete;
  DiskCache& operator=(const DiskCache&) = delete;

  /// Returns the stored value, or nullopt on miss. Any malformed entry
  /// (truncated, corrupted, wrong version, hash-collided key) is a miss
  /// and counts in stats().corrupt. A hit refreshes the entry's mtime.
  [[nodiscard]] std::optional<std::string> get(std::string_view space,
                                               std::string_view key);

  /// Stores value under (space, key). No-op when the entry already
  /// exists (content addressing: values for one key are interchangeable)
  /// or the single entry exceeds the whole budget. May trigger a trim.
  void put(std::string_view space, std::string_view key,
           std::string_view value);

  [[nodiscard]] DiskCacheStats stats() const;
  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

  /// Enforce the byte budget now (also sweeps stale temp files). Called
  /// automatically by put(); public for tests and shutdown hooks. The
  /// EXCLUDES makes the non-reentrancy contract checkable: trim takes
  /// the sweep mutex itself, so nothing holding it may call back in.
  void trim() EXCLUDES(trim_mutex_);

 private:
  [[nodiscard]] std::string entry_path(std::string_view space,
                                       std::string_view key) const;

  std::string directory_;
  std::size_t byte_budget_;
  std::atomic<std::size_t> bytes_{0};
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> corrupt_{0};
  std::atomic<long> writes_{0};
  std::atomic<long> trims_{0};
  std::atomic<std::uint64_t> tmp_seq_{0};
  /// Serializes budget-enforcement sweeps (the directory itself is the
  /// guarded state — shared with other processes, so every individual
  /// filesystem operation stays failure-tolerant regardless).
  support::Mutex trim_mutex_;
};

}  // namespace ttdim::engine::cache
