#include "engine/cache/disk_cache.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace ttdim::engine::cache {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'T', 'T', 'D', 'C'};
// Header: magic + version + key length + value length.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
constexpr std::size_t kChecksumBytes = 8;
// Temp files older than this are considered abandoned by a crashed
// writer and swept during trim. Live writers publish within
// milliseconds, so ten minutes is conservative even under CI load.
constexpr auto kStaleTmpAge = std::chrono::minutes(10);

std::uint64_t fnv1a(std::string_view s, std::uint64_t h = 1469598103934665603ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

bool is_entry_file(const fs::path& p) { return p.extension() == ".entry"; }

bool is_tmp_file(const fs::path& p) {
  return p.filename().string().rfind("tmp_", 0) == 0;
}

}  // namespace

DiskCache::DiskCache(std::string directory, std::size_t byte_budget)
    : directory_(std::move(directory)),
      byte_budget_(byte_budget == 0 ? 1 : byte_budget) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  // Initialise the resident estimate from whatever a prior process left
  // behind; errors (permission, racing deletion) just leave it at 0 and
  // the next trim corrects the picture.
  std::size_t total = 0;
  for (fs::recursive_directory_iterator it(directory_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec) || !is_entry_file(it->path())) continue;
    total += static_cast<std::size_t>(it->file_size(ec));
  }
  bytes_.store(total, std::memory_order_relaxed);
}

std::string DiskCache::entry_path(std::string_view space,
                                  std::string_view key) const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fnv1a(key)));
  std::string path = directory_;
  path += '/';
  path.append(space.data(), space.size());
  path += '/';
  path += hex;
  path += ".entry";
  return path;
}

std::optional<std::string> DiskCache::get(std::string_view space,
                                          std::string_view key) {
  const std::string path = entry_path(space, key);
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
      corrupt_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    blob = std::move(buf).str();
  }

  // Structurally broken entries (truncated, flipped bytes, bad magic)
  // are deleted so the next fresh result can take the path — the cache
  // self-heals instead of serving cold misses forever. A clean version
  // mismatch is different: it is a well-formed entry from another
  // format era (a mixed-version directory), left to age out via trim.
  const auto reject = [&](bool remove_entry) -> std::optional<std::string> {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    if (remove_entry) {
      std::error_code rec;
      fs::remove(path, rec);
    }
    return std::nullopt;
  };
  if (blob.size() < kHeaderBytes + kChecksumBytes) return reject(true);
  if (std::string_view(blob.data(), 4) != std::string_view(kMagic, 4))
    return reject(true);
  if (get_u32(blob.data() + 4) != kFormatVersion) return reject(false);
  const std::uint64_t key_len = get_u64(blob.data() + 8);
  const std::uint64_t value_len = get_u64(blob.data() + 16);
  const std::uint64_t payload = key_len + value_len;
  if (payload < key_len ||  // overflow
      blob.size() != kHeaderBytes + payload + kChecksumBytes)
    return reject(true);
  const std::string_view stored(blob.data() + kHeaderBytes,
                                static_cast<std::size_t>(payload));
  if (get_u64(blob.data() + kHeaderBytes + payload) != fnv1a(stored))
    return reject(true);
  // Hash collision between distinct keys: not our entry, report a miss.
  if (stored.substr(0, static_cast<std::size_t>(key_len)) != key) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  hits_.fetch_add(1, std::memory_order_relaxed);
  // Refresh recency so the mtime trim is LRU; failure is harmless (the
  // entry just keeps its old age).
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  return std::string(stored.substr(static_cast<std::size_t>(key_len)));
}

void DiskCache::put(std::string_view space, std::string_view key,
                    std::string_view value) {
  const std::string path = entry_path(space, key);
  std::error_code ec;
  if (fs::exists(path, ec)) return;  // content-addressed: already stored

  std::string blob;
  blob.reserve(kHeaderBytes + key.size() + value.size() + kChecksumBytes);
  blob.append(kMagic, 4);
  put_u32(blob, kFormatVersion);
  put_u64(blob, key.size());
  put_u64(blob, value.size());
  blob.append(key.data(), key.size());
  blob.append(value.data(), value.size());
  put_u64(blob, fnv1a(std::string_view(blob.data() + kHeaderBytes,
                                       key.size() + value.size())));
  if (blob.size() > byte_budget_) return;  // can never fit

  fs::create_directories(fs::path(path).parent_path(), ec);
  // Unique temp name in the destination directory so the final rename
  // cannot cross filesystems and concurrent writers never collide.
  std::string tmp = fs::path(path).parent_path().string();
  tmp += "/tmp_";
  tmp += fs::path(path).stem().string();
  tmp += '_';
  tmp += std::to_string(static_cast<long>(::getpid()));
  tmp += '_';
  tmp +=
      std::to_string(tmp_seq_.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      bytes_.fetch_add(blob.size(), std::memory_order_relaxed) + blob.size();
  if (now > byte_budget_) trim();
}

void DiskCache::trim() {
  support::MutexLock lock(trim_mutex_);

  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::size_t size = 0;
  };
  std::vector<Entry> entries;
  std::size_t total = 0;
  const auto tmp_cutoff = fs::file_time_type::clock::now() - kStaleTmpAge;

  std::error_code ec;
  for (fs::recursive_directory_iterator it(directory_, ec), end;
       !ec && it != end; it.increment(ec)) {
    std::error_code fec;
    if (!it->is_regular_file(fec)) continue;
    const fs::path& p = it->path();
    if (is_tmp_file(p)) {
      // Sweep temp files abandoned by a crashed writer; a live writer's
      // temp file is newer than the cutoff and survives.
      const auto mtime = fs::last_write_time(p, fec);
      if (!fec && mtime < tmp_cutoff) fs::remove(p, fec);
      continue;
    }
    if (!is_entry_file(p)) continue;
    Entry e;
    e.path = p;
    e.mtime = fs::last_write_time(p, fec);
    if (fec) continue;
    e.size = static_cast<std::size_t>(fs::file_size(p, fec));
    if (fec) continue;
    total += e.size;
    entries.push_back(std::move(e));
  }

  if (total > byte_budget_) {
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
    for (const Entry& e : entries) {
      if (total <= byte_budget_) break;
      std::error_code rec;
      fs::remove(e.path, rec);
      // A concurrent process may have removed it first — the bytes are
      // gone either way.
      total -= std::min(total, e.size);
    }
    trims_.fetch_add(1, std::memory_order_relaxed);
  }
  bytes_.store(total, std::memory_order_relaxed);
}

DiskCacheStats DiskCache::stats() const {
  DiskCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.corrupt = corrupt_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.trims = trims_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.byte_budget = byte_budget_;
  return s;
}

}  // namespace ttdim::engine::cache
