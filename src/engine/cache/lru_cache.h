// The one keyed, budgeted, thread-safe LRU that every engine cache is
// built on. VerdictCache (count-budgeted), SnapshotCache and
// AnalysisCache (byte-budgeted) each hand-rolled this structure —
// mutex + recency list + key index, splice-on-hit, back-eviction,
// lock-free atomic counter snapshots — as three diverging copies; this
// template is the single implementation they now share (and the one the
// serve-layer whole-solve result cache plugs into).
//
// Accounting is structural, not re-derived: each entry is charged its
// cost exactly once at insert time and refunds exactly the charged cost
// at eviction, so the ledger cannot drift even if a cost function were
// unstable (the hand-rolled byte caches recomputed the victim's cost at
// eviction time and silently depended on the recomputation matching the
// charge). The duplicate-insert path — concurrent misses of one key both
// computing and inserting an interchangeable value — is a no-op counted
// zero times: `insertions - evictions == entries` holds at every quiet
// point, which tests/lru_cache_test.cpp pins under a TSan-checked
// concurrent same-key hammer. (Audit note, PR 5: the hand-rolled
// VerdictCache already honoured the counted-once contract — its
// suspected insertions_/size_ drift is unreachable because every mutation
// is serialized on the one mutex — but the invariant was only upheld by
// each copy separately re-implementing it; here it is upheld once.)
//
// Values are handed out as shared_ptr<const V>: an eviction never
// invalidates a reader, and entries are immutable once inserted.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "support/check.h"
#include "support/thread_annotations.h"

namespace ttdim::engine::cache {

/// Monotonic cache counters. Each field is read from its own atomic, so
/// a snapshot taken while other threads hit the cache (SolveStats
/// aggregation over a batch sharing one cache, bench reporting loops) is
/// tear-free per counter without taking the cache lock; the fields of
/// one snapshot may straddle in-flight operations.
struct LruStats {
  long hits = 0;
  long misses = 0;
  long insertions = 0;
  long evictions = 0;
  std::size_t entries = 0;
  std::size_t cost = 0;    ///< sum of charged entry costs
  std::size_t budget = 0;  ///< entry count when cost_fn is null, bytes otherwise
};

template <typename Key, typename Value, typename KeyHash = std::hash<Key>>
class LruCache {
 public:
  /// Resident cost of one entry, charged at insert and refunded at
  /// eviction. nullptr charges every entry 1, making `budget` an entry
  /// count; a byte-cost function makes it a byte budget.
  using CostFn = std::size_t (*)(const Key&, const Value&);
  /// Called for every entry leaving the cache through eviction or
  /// clear(), while the cache mutex is held — so an attached secondary
  /// index (engine/oracle/subsumption_index.h hangs off VerdictCache this
  /// way) observes departures exactly once and in order. The hook must
  /// not call back into this cache (the mutex is not recursive); lock
  /// ordering is cache mutex -> anything the hook takes. The under-lock
  /// obligation is typed, not just documented: every hook invocation
  /// goes through fire_evict_hook_locked(), whose REQUIRES(mutex_) the
  /// thread-safety analysis enforces on all call paths.
  using EvictHook = std::function<void(const Key&, const Value&)>;

  explicit LruCache(std::size_t budget, CostFn cost_fn = nullptr,
                    EvictHook on_evict = {})
      : budget_(budget), cost_fn_(cost_fn), on_evict_(std::move(on_evict)) {
    TTDIM_EXPECTS(budget >= 1);
  }

  /// Returns the value and refreshes its recency; nullptr on miss.
  [[nodiscard]] std::shared_ptr<const Value> lookup(const Key& key) {
    support::MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }

  /// Refreshes the entry's recency without counting a hit or a miss —
  /// for secondary-index users (the subsumption tier) whose answers are
  /// *derived* from an entry rather than served by it: the entry must
  /// stay off the eviction tail, but the store's hit rate should keep
  /// reflecting only traffic it answered itself. No-op when absent.
  void touch(const Key& key) {
    support::MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    lru_.splice(lru_.begin(), lru_, it->second);
  }

  /// Inserts, evicting least-recently-used entries until the budget
  /// holds (the newest entry itself is never evicted). Returns false
  /// without touching any counter when the key is already present —
  /// values for one key are interchangeable, so the concurrent-miss
  /// duplicate is dropped (recency is deliberately NOT refreshed: the
  /// hand-rolled caches behaved this way, and a racing duplicate insert
  /// carries no new recency information) — or when the entry alone
  /// exceeds the whole budget (inserting it would evict everything else
  /// for a value that can never be joined by another).
  bool insert(const Key& key, Value value) {
    auto holder = std::make_shared<const Value>(std::move(value));
    const std::size_t cost = cost_fn_ ? cost_fn_(key, *holder) : 1;
    if (cost > budget_) return false;
    support::MutexLock lock(mutex_);
    if (index_.find(key) != index_.end()) return false;
    lru_.push_front(Entry{key, std::move(holder), cost});
    index_.emplace(key, lru_.begin());
    spent_ += cost;
    insertions_.fetch_add(1, std::memory_order_relaxed);
    while (spent_ > budget_ && lru_.size() > 1) evict_tail_locked();
    entries_.store(lru_.size(), std::memory_order_relaxed);
    cost_.store(spent_, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] LruStats stats() const {
    LruStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.insertions = insertions_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.entries = entries_.load(std::memory_order_relaxed);
    out.cost = cost_.load(std::memory_order_relaxed);
    out.budget = budget_;
    return out;
  }

  /// Drops every entry (firing the evict hook for each, so attached
  /// indexes stay consistent) and resets all counters to zero; cleared
  /// entries are not counted as evictions. Destruction does NOT fire the
  /// hook — whatever the hook maintains is torn down with the owner.
  void clear() {
    support::MutexLock lock(mutex_);
    for (const Entry& entry : lru_) fire_evict_hook_locked(entry);
    lru_.clear();
    index_.clear();
    spent_ = 0;
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    insertions_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    entries_.store(0, std::memory_order_relaxed);
    cost_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
    std::size_t cost;
  };

  /// The one typed gate to the departure hook: REQUIRES(mutex_) is the
  /// eviction-hook-fired-under-lock contract the secondary indexes rely
  /// on, enforced by the analysis instead of by comments.
  void fire_evict_hook_locked(const Entry& entry) REQUIRES(mutex_) {
    if (on_evict_) on_evict_(entry.key, *entry.value);
  }

  /// Evict the least-recently-used entry, refunding exactly the charged
  /// cost (never recomputed) and notifying the hook under the lock.
  void evict_tail_locked() REQUIRES(mutex_) {
    const Entry& victim = lru_.back();
    spent_ -= victim.cost;
    fire_evict_hook_locked(victim);
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  mutable support::Mutex mutex_;
  std::size_t budget_;
  CostFn cost_fn_;
  EvictHook on_evict_;
  std::size_t spent_ GUARDED_BY(mutex_) = 0;
  /// front = most recently used
  std::list<Entry> lru_ GUARDED_BY(mutex_);
  std::unordered_map<Key, typename std::list<Entry>::iterator, KeyHash> index_
      GUARDED_BY(mutex_);
  // Counters live outside the mutex so stats() is a lock-free atomic
  // snapshot even while batch jobs hammer the cache (the map and LRU
  // list stay mutex-guarded).
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> insertions_{0};
  std::atomic<long> evictions_{0};
  std::atomic<std::size_t> entries_{0};
  std::atomic<std::size_t> cost_{0};
};

}  // namespace ttdim::engine::cache
