#include "engine/cache/solution_cache.h"

namespace ttdim::engine::cache {

SolutionCache::SolutionCache(std::size_t byte_budget)
    : cache_(byte_budget, &SolutionCache::cost_of) {}

std::size_t SolutionCache::cost_of(const core::SolveKey& key,
                                   const core::Solution& solution) {
  // The encoded form tracks the resident payload closely (same vectors,
  // same matrices) and is cheap to produce next to a solve; + fixed
  // bookkeeping overhead per entry.
  std::string encoded;
  support::codec::Encoder enc(encoded);
  core::encode_solution(enc, solution);
  return encoded.size() + key.canonical.size() + 256;
}

std::shared_ptr<const core::Solution> SolutionCache::lookup(
    const core::SolveKey& key) {
  return cache_.lookup(key);
}

void SolutionCache::insert(const core::SolveKey& key,
                           core::Solution solution) {
  cache_.insert(key, std::move(solution));
}

LruStats SolutionCache::stats() const { return cache_.stats(); }

void SolutionCache::clear() { cache_.clear(); }

}  // namespace ttdim::engine::cache
