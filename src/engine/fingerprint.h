// Canonical text form of a dimensioning result, for determinism checks
// and golden regression tests: two Solutions are "the same" exactly when
// their fingerprints are byte-identical. Everything that downstream
// deployment consumes is covered (timing tables via the ECU interchange
// format, JT/JE, stability verdict, all three slot assignments); floats
// never appear, so the string is stable across platforms.
#pragma once

#include <string>

#include "core/dimensioning.h"

namespace ttdim::engine {

[[nodiscard]] std::string fingerprint(const core::Solution& solution);

}  // namespace ttdim::engine
