// Parallel batch dimensioning: run many independent end-to-end
// dimensioning problems (core::solve) concurrently on the process-wide
// work-stealing Executor pool. Parallelism comes only from the
// embarrassing independence between systems, so results are
// bit-identical to the serial loop — workers steal the next unclaimed
// job index from the batch's cursor, and every result is written to its
// job's slot, preserving input order regardless of completion order.
// Because the pool is shared, a solve's own analysis fan-out
// (SolveOptions::analysis_threads) rides the same threads instead of
// spawning more on top of the batch's.
//
// Concurrency contract: BatchRunner itself is immutable after
// construction and holds no lock — every index writes only its own
// outcome slot, and all shared mutable state lives behind the annotated
// Executor pool and cache mutexes (support/thread_annotations.h), whose
// discipline the clang -Wthread-safety lane checks at compile time.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/dimensioning.h"

namespace ttdim::engine {

/// One independent dimensioning problem.
struct BatchJob {
  std::vector<core::AppSpec> specs;
  core::SolveOptions options;
};

/// Result slot for one job: either a full solution or the solve error
/// (e.g. an unmeetable requirement) — a failing job must not poison the
/// rest of the batch.
struct BatchOutcome {
  std::optional<core::Solution> solution;
  std::string error;

  [[nodiscard]] bool ok() const { return solution.has_value(); }
};

/// A whole batch's outcomes plus the aggregate accounting: the total
/// failed-job count (every !ok() slot — a multi-failure batch reports
/// all of them, not just the first) and the element-wise sum of the
/// successful jobs' SolveStats.
struct BatchReport {
  std::vector<BatchOutcome> outcomes;
  int failed = 0;
  oracle::SolveStats stats;

  /// One-line human-readable form for benches and logs, built on
  /// SolveStats::summary().
  [[nodiscard]] std::string summary() const;
};

class BatchRunner {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency(); threads == 1
  /// runs everything on the calling thread (the determinism baseline).
  explicit BatchRunner(int threads = 0);

  [[nodiscard]] int thread_count() const { return threads_; }

  /// Dimension every job; outcome i corresponds to jobs[i].
  [[nodiscard]] std::vector<BatchOutcome> solve_all(
      const std::vector<BatchJob>& jobs) const;

  /// solve_all plus the aggregate report (failed count, summed stats).
  [[nodiscard]] BatchReport run(const std::vector<BatchJob>& jobs) const;

  /// The underlying deterministic parallel-for on the shared Executor
  /// pool: fn(i) for i in [0, n), each index claimed exactly once. fn
  /// runs concurrently on up to thread_count() threads and must only
  /// write state owned by index i. The lowest-index exception escaping
  /// fn is rethrown on the calling thread after all indices ran.
  void for_each_index(int n, const std::function<void(int)>& fn) const;

 private:
  int threads_;
};

}  // namespace ttdim::engine
