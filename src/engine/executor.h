// Persistent work-stealing executor: one lazily-started worker pool
// shared by every parallel construct in the process. BatchRunner batches
// and core::solve's intra-solve analysis fan-out all submit here, so
// nested parallelism shares one bounded set of threads instead of each
// layer spawning its own (the per-batch std::thread spawning this
// replaces oversubscribed as soon as per-job cost dropped toward spawn
// overhead).
//
// Scheduling model: each run() is a job with its own atomic index cursor
// — the per-job task queue. The submitting thread always works its own
// job; idle pool workers steal indices from whatever job has work left
// and room under its parallelism cap. Every index runs exactly once and
// writes only state it owns, so results are independent of the thread
// count and of which thread ran which index — the same determinism
// contract the old parallel_for had.
//
// Blocking nests safely: a worker that submits a nested job drains that
// job's own cursor before waiting, so it degenerates to the serial loop
// when no sibling is free — never a deadlock, never an extra thread.
//
// The pool's locking discipline is machine-checked: the implementation's
// job table, worker handles and stop flag are GUARDED_BY the pool mutex
// (an annotated support::Mutex, support/thread_annotations.h) and every
// `_locked` helper carries REQUIRES — the clang -Wthread-safety CI lane
// proves the discipline on every path, beyond the schedules TSan sees.
#pragma once

#include <functional>

namespace ttdim::engine {

class Executor {
 public:
  /// `max_threads` caps how many pool workers may ever be spawned
  /// (spawning is lazy: a run() only grows the pool toward its own
  /// parallelism request, never toward the cap for its own sake).
  explicit Executor(int max_threads = kDefaultMaxThreads);

  /// Joins all workers. Must not race with in-flight run() calls.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide pool (lazily constructed, joined at exit).
  [[nodiscard]] static Executor& global();

  /// Run fn(i) for i in [0, n), each index exactly once; fn must only
  /// write state owned by index i. At most `parallelism` threads
  /// (including the calling thread, which always participates) execute
  /// the job concurrently. Blocks until every index has run. Exceptions
  /// escaping fn are collected per index and the lowest-index one is
  /// rethrown — deterministically, unlike first-to-fail — after all
  /// indices ran. parallelism <= 1 runs the plain serial loop on the
  /// calling thread (fail-fast: the first exception propagates
  /// immediately and later indices never run).
  void run(int parallelism, int n, const std::function<void(int)>& fn);

  /// Number of contiguous chunks run_chunks() splits [0, n) into: enough
  /// for the pool to balance (up to 4x the parallelism, so an early
  /// finisher can steal), never so many that chunks fall under
  /// `min_grain` items, at least one when n > 0. Pure — callers size
  /// per-chunk result buffers with it before submitting.
  [[nodiscard]] static int chunk_count(int parallelism, long n,
                                       long min_grain);

  /// Splits [0, n) into chunk_count(parallelism, n, min_grain)
  /// contiguous ranges and runs fn(chunk, lo, hi) for each under run()'s
  /// scheduling (same ownership, blocking and exception contract, with
  /// the chunk index as the job index). The level-submit helper of the
  /// verifier's parallel BFS and of any other frontier-shaped fan-out.
  void run_chunks(int parallelism, long n, long min_grain,
                  const std::function<void(int, long, long)>& fn);

  /// Pool workers spawned so far (excludes calling threads).
  [[nodiscard]] int worker_count() const;

  /// Default pool cap: far above any sane parallelism request, so
  /// explicit thread counts (tests pinning 8 threads on a 1-core box)
  /// still get real concurrency, while runaway requests stay bounded.
  static constexpr int kDefaultMaxThreads = 256;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace ttdim::engine
