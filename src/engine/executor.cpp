#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <system_error>
#include <thread>
#include <vector>

#include "support/check.h"
#include "support/thread_annotations.h"

namespace ttdim::engine {

namespace {

/// One run() call: the per-job task queue is the atomic index cursor —
/// claiming an index IS dequeuing a task, and a foreign thread claiming
/// from another job's cursor IS stealing. Everything here is either
/// atomic, written pre-publication, or owned per index; the mutable
/// pool-side state (how many threads are attached to the job) lives in
/// Impl::jobs under the pool mutex, where the thread-safety analysis can
/// see its guard.
struct Job {
  int n = 0;
  int parallelism = 1;  ///< attached-thread cap, including the caller
  const std::function<void(int)>* fn = nullptr;
  std::atomic<int> cursor{0};  ///< next unclaimed index
  std::atomic<int> done{0};    ///< indices finished executing
  /// Slot i written only by the thread that ran index i; reads are
  /// ordered after every write by the acquire load of done == n.
  std::vector<std::exception_ptr> errors;
  std::atomic<bool> failed{false};
  support::Mutex m;  ///< pairs with `complete` (the predicate is atomic)
  support::CondVar complete;
};

void finish_index(Job& job) {
  // The release increment publishes this index's writes (fn state and
  // errors[i]); the caller's acquire load of done == n in run() then
  // orders every slot read after every slot write — the join-equivalent
  // of the old per-batch std::thread::join.
  if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
    { support::MutexLock lock(job.m); }
    job.complete.NotifyAll();
  }
}

void drain(Job& job) {
  for (;;) {
    const int i = job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    try {
      (*job.fn)(i);
    } catch (...) {
      job.errors[static_cast<std::size_t>(i)] = std::current_exception();
      job.failed.store(true, std::memory_order_relaxed);
    }
    finish_index(job);
  }
}

}  // namespace

struct Executor::Impl {
  explicit Impl(int cap) : max_threads(cap) {}

  /// One live job plus its pool-side bookkeeping: `attached` counts the
  /// threads currently draining the job (including the submitter). It
  /// lives here — not in Job — precisely so GUARDED_BY names its real
  /// guard: the pool mutex, which every reader and writer already holds.
  struct ActiveJob {
    std::shared_ptr<Job> job;
    int attached = 0;
  };

  const int max_threads;
  support::Mutex mu;
  support::CondVar work;
  /// Active jobs in submission order (outer batches stay ahead of their
  /// own nested fan-outs).
  std::vector<ActiveJob> jobs GUARDED_BY(mu);
  std::vector<std::thread> workers GUARDED_BY(mu);
  bool stop GUARDED_BY(mu) = false;

  /// Claim the oldest job with unclaimed work and room under its cap,
  /// attaching the calling thread to it; nullptr when nothing is ready.
  std::shared_ptr<Job> claim_locked() REQUIRES(mu) {
    for (ActiveJob& entry : jobs)
      if (entry.job->cursor.load(std::memory_order_relaxed) < entry.job->n &&
          entry.attached < entry.job->parallelism) {
        ++entry.attached;
        return entry.job;
      }
    return nullptr;
  }

  /// Detach the calling thread from `job`. The submitter may already
  /// have retired the job's entry (it only does so once done == n and
  /// every stolen index has finished), in which case there is nothing
  /// left to account.
  void release_locked(const Job& job) REQUIRES(mu) {
    for (ActiveJob& entry : jobs)
      if (entry.job.get() == &job) {
        --entry.attached;
        return;
      }
  }

  /// Grow the pool toward `wanted` workers (never beyond max_threads).
  /// A spawn failure is not fatal: the submitting thread always drains
  /// its own job, so fewer workers only means less overlap.
  void ensure_workers_locked(int wanted) REQUIRES(mu) {
    const int target = std::min(wanted, max_threads);
    while (static_cast<int>(workers.size()) < target) {
      try {
        workers.emplace_back([this] { worker_loop(); });
      } catch (const std::system_error&) {
        break;
      }
    }
  }

  void worker_loop() {
    support::MutexLock lock(mu);
    for (;;) {
      const std::shared_ptr<Job> job = claim_locked();
      if (!job) {
        if (stop) return;
        work.Wait(mu);
        continue;
      }
      lock.Unlock();
      drain(*job);
      lock.Lock();
      release_locked(*job);
    }
  }
};

Executor::Executor(int max_threads) : impl_(new Impl(max_threads)) {
  TTDIM_EXPECTS(max_threads >= 0);
}

Executor::~Executor() {
  // Swap the worker handles out under the lock, join outside it: a
  // worker needs the pool mutex to observe `stop` and exit, so joining
  // while holding it would deadlock (and the analysis would flag the
  // unlocked `workers` walk the old code did).
  std::vector<std::thread> retired;
  {
    support::MutexLock lock(impl_->mu);
    impl_->stop = true;
    retired.swap(impl_->workers);
  }
  impl_->work.NotifyAll();
  for (std::thread& t : retired) t.join();
  delete impl_;
}

Executor& Executor::global() {
  static Executor instance;
  return instance;
}

void Executor::run(int parallelism, int n, const std::function<void(int)>& fn) {
  TTDIM_EXPECTS(parallelism >= 1);
  TTDIM_EXPECTS(n >= 0);
  if (n == 0) return;
  const int attached_cap = std::min(parallelism, n);
  if (attached_cap <= 1) {
    // Serial contract: fail fast, later indices never run.
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  const auto job = std::make_shared<Job>();
  job->n = n;
  job->parallelism = attached_cap;
  job->fn = &fn;
  job->errors.resize(static_cast<std::size_t>(n));
  {
    support::MutexLock lock(impl_->mu);
    impl_->jobs.push_back({job, 1});  // the caller attaches as worker 0
    impl_->ensure_workers_locked(attached_cap - 1);
  }
  impl_->work.NotifyAll();

  drain(*job);  // the caller is always worker 0 of its own job
  {
    support::MutexLock lock(job->m);
    job->complete.Wait(job->m, [&] {
      return job->done.load(std::memory_order_acquire) >= n;
    });
  }
  {
    support::MutexLock lock(impl_->mu);
    auto& jobs = impl_->jobs;
    jobs.erase(std::find_if(
        jobs.begin(), jobs.end(),
        [&](const Impl::ActiveJob& entry) { return entry.job == job; }));
  }

  if (job->failed.load(std::memory_order_relaxed))
    for (const std::exception_ptr& error : job->errors)
      if (error) std::rethrow_exception(error);
}

int Executor::chunk_count(int parallelism, long n, long min_grain) {
  TTDIM_EXPECTS(parallelism >= 1);
  TTDIM_EXPECTS(n >= 0);
  if (n == 0) return 0;
  const long by_grain = n / std::max<long>(1, min_grain);
  const long cap = std::min<long>(4L * parallelism, n);
  return static_cast<int>(std::clamp(by_grain, 1L, cap));
}

void Executor::run_chunks(int parallelism, long n, long min_grain,
                          const std::function<void(int, long, long)>& fn) {
  const int chunks = chunk_count(parallelism, n, min_grain);
  if (chunks == 0) return;
  run(parallelism, chunks, [&](int chunk) {
    // Even split without overflow-prone multiplication tricks: the first
    // `n % chunks` chunks take one extra item.
    const long base = n / chunks;
    const long extra = n % chunks;
    const long lo = chunk * base + std::min<long>(chunk, extra);
    const long hi = lo + base + (chunk < extra ? 1 : 0);
    fn(chunk, lo, hi);
  });
}

int Executor::worker_count() const {
  support::MutexLock lock(impl_->mu);
  return static_cast<int>(impl_->workers.size());
}

}  // namespace ttdim::engine

