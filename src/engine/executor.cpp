#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

#include "support/check.h"

namespace ttdim::engine {

namespace {

/// One run() call: the per-job task queue is the atomic index cursor —
/// claiming an index IS dequeuing a task, and a foreign thread claiming
/// from another job's cursor IS stealing.
struct Job {
  int n = 0;
  int parallelism = 1;  ///< attached-thread cap, including the caller
  const std::function<void(int)>* fn = nullptr;
  std::atomic<int> cursor{0};  ///< next unclaimed index
  std::atomic<int> done{0};    ///< indices finished executing
  int active = 0;              ///< attached threads; guarded by the pool mutex
  /// Slot i written only by the thread that ran index i; reads are
  /// ordered after every write by the acquire load of done == n.
  std::vector<std::exception_ptr> errors;
  std::atomic<bool> failed{false};
  std::mutex m;
  std::condition_variable complete;
};

void finish_index(Job& job) {
  // The release increment publishes this index's writes (fn state and
  // errors[i]); the caller's acquire load of done == n in run() then
  // orders every slot read after every slot write — the join-equivalent
  // of the old per-batch std::thread::join.
  if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
    { std::lock_guard<std::mutex> lock(job.m); }
    job.complete.notify_all();
  }
}

void drain(Job& job) {
  for (;;) {
    const int i = job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    try {
      (*job.fn)(i);
    } catch (...) {
      job.errors[static_cast<std::size_t>(i)] = std::current_exception();
      job.failed.store(true, std::memory_order_relaxed);
    }
    finish_index(job);
  }
}

}  // namespace

struct Executor::Impl {
  explicit Impl(int cap) : max_threads(cap) {}

  const int max_threads;
  std::mutex mu;
  std::condition_variable work;
  std::vector<std::shared_ptr<Job>> jobs;  ///< active, submission order
  std::vector<std::thread> workers;
  bool stop = false;

  /// Oldest job with unclaimed work and room under its cap — submission
  /// order keeps outer batches ahead of their own nested fan-outs.
  std::shared_ptr<Job> pick_locked() {
    for (const std::shared_ptr<Job>& job : jobs)
      if (job->cursor.load(std::memory_order_relaxed) < job->n &&
          job->active < job->parallelism)
        return job;
    return nullptr;
  }

  /// Grow the pool toward `wanted` workers (never beyond max_threads).
  /// A spawn failure is not fatal: the submitting thread always drains
  /// its own job, so fewer workers only means less overlap.
  void ensure_workers_locked(int wanted) {
    const int target = std::min(wanted, max_threads);
    while (static_cast<int>(workers.size()) < target) {
      try {
        workers.emplace_back([this] { worker_loop(); });
      } catch (const std::system_error&) {
        break;
      }
    }
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      const std::shared_ptr<Job> job = pick_locked();
      if (!job) {
        if (stop) return;
        work.wait(lock);
        continue;
      }
      ++job->active;
      lock.unlock();
      drain(*job);
      lock.lock();
      --job->active;
    }
  }
};

Executor::Executor(int max_threads) : impl_(new Impl(max_threads)) {
  TTDIM_EXPECTS(max_threads >= 0);
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

Executor& Executor::global() {
  static Executor instance;
  return instance;
}

void Executor::run(int parallelism, int n, const std::function<void(int)>& fn) {
  TTDIM_EXPECTS(parallelism >= 1);
  TTDIM_EXPECTS(n >= 0);
  if (n == 0) return;
  const int attached_cap = std::min(parallelism, n);
  if (attached_cap <= 1) {
    // Serial contract: fail fast, later indices never run.
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  const auto job = std::make_shared<Job>();
  job->n = n;
  job->parallelism = attached_cap;
  job->fn = &fn;
  job->errors.resize(static_cast<std::size_t>(n));
  job->active = 1;  // the caller
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->jobs.push_back(job);
    impl_->ensure_workers_locked(attached_cap - 1);
  }
  impl_->work.notify_all();

  drain(*job);  // the caller is always worker 0 of its own job
  {
    std::unique_lock<std::mutex> lock(job->m);
    job->complete.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) >= n;
    });
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    --job->active;
    auto& jobs = impl_->jobs;
    jobs.erase(std::find(jobs.begin(), jobs.end(), job));
  }

  if (job->failed.load(std::memory_order_relaxed))
    for (const std::exception_ptr& error : job->errors)
      if (error) std::rethrow_exception(error);
}

int Executor::worker_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return static_cast<int>(impl_->workers.size());
}

}  // namespace ttdim::engine
