// Deterministic parallel-for, shared by BatchRunner (jobs across a
// batch) and the oracle layer's dwell search (candidate waits inside one
// solve). Since the executor rewrite this is a thin façade over the
// process-wide work-stealing Executor pool (engine/executor.h): every
// index runs exactly once and writes only state it owns, so results are
// independent of the thread count — and nested parallel_for calls share
// one bounded worker pool instead of multiplying threads.
#pragma once

#include <functional>

namespace ttdim::engine {

/// Resolve a thread-count request: 0 picks hardware_concurrency (at least
/// 1); positive values pass through. Negative counts are a logic error.
[[nodiscard]] int resolve_threads(int threads);

/// fn(i) for i in [0, n), each index claimed exactly once. fn runs
/// concurrently on up to `threads` threads of the shared Executor pool
/// (the calling thread is always worker 0) and must only write state
/// owned by index i. threads <= 1 runs the plain serial loop on the
/// calling thread (fail-fast: the first exception propagates immediately).
/// In the concurrent case exceptions are collected per index and the
/// lowest-index one is rethrown on the calling thread after all indices
/// ran — deterministic, unlike the first-to-fail rethrow this replaces.
void parallel_for_index(int threads, int n,
                        const std::function<void(int)>& fn);

}  // namespace ttdim::engine
