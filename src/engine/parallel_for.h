// Deterministic self-scheduling parallel-for, shared by BatchRunner (jobs
// across a batch) and the oracle layer's dwell search (candidate waits
// inside one solve). Workers claim the next unclaimed index from an atomic
// cursor; every index runs exactly once and writes only state it owns, so
// results are independent of the thread count.
#pragma once

#include <functional>

namespace ttdim::engine {

/// Resolve a thread-count request: 0 picks hardware_concurrency (at least
/// 1); positive values pass through. Negative counts are a logic error.
[[nodiscard]] int resolve_threads(int threads);

/// fn(i) for i in [0, n), each index claimed exactly once. fn runs
/// concurrently on up to `threads` threads (the calling thread is worker
/// 0) and must only write state owned by index i. threads <= 1 runs the
/// plain serial loop on the calling thread. The first exception escaping
/// fn is rethrown on the calling thread after all workers drain.
void parallel_for_index(int threads, int n,
                        const std::function<void(int)>& fn);

}  // namespace ttdim::engine
