#include "engine/oracle/verdict_cache.h"

#include <utility>

namespace ttdim::engine::oracle {

VerdictCache::VerdictCache(std::size_t capacity)
    : cache_(capacity, nullptr,
             [this](const SlotConfigKey& key, const verify::SlotVerdict&) {
               // Lock order: cache mutex (held here) -> index mutex.
               subsumption_.erase_safe(key);
             }) {}

std::optional<verify::SlotVerdict> VerdictCache::lookup(
    const SlotConfigKey& key) {
  if (std::shared_ptr<const verify::SlotVerdict> hit = cache_.lookup(key))
    return *hit;
  return std::nullopt;
}

void VerdictCache::insert(const SlotConfigKey& key,
                          verify::SlotVerdict verdict) {
  cache_.insert(key, std::move(verdict));
}

void VerdictCache::touch(const SlotConfigKey& key) { cache_.touch(key); }

CacheStats VerdictCache::stats() const {
  const cache::LruStats lru = cache_.stats();
  CacheStats out;
  out.hits = lru.hits;
  out.misses = lru.misses;
  out.insertions = lru.insertions;
  out.evictions = lru.evictions;
  out.size = lru.entries;
  out.capacity = lru.budget;
  return out;
}

void VerdictCache::clear() {
  cache_.clear();  // per-entry hooks erase the mirrored safe populations
  subsumption_.clear();  // then drop the unsafe side (and counters) too
}

}  // namespace ttdim::engine::oracle
