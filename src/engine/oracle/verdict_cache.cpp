#include "engine/oracle/verdict_cache.h"

#include "support/check.h"

namespace ttdim::engine::oracle {

VerdictCache::VerdictCache(std::size_t capacity) : capacity_(capacity) {
  TTDIM_EXPECTS(capacity >= 1);
}

std::optional<verify::SlotVerdict> VerdictCache::lookup(
    const SlotConfigKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void VerdictCache::insert(const SlotConfigKey& key,
                          verify::SlotVerdict verdict) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(key) != index_.end()) return;  // concurrent-miss duplicate
  lru_.emplace_front(key, std::move(verdict));
  index_.emplace(key, lru_.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  size_.store(lru_.size(), std::memory_order_relaxed);
}

CacheStats VerdictCache::stats() const {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.size = size_.load(std::memory_order_relaxed);
  out.capacity = capacity_;
  return out;
}

void VerdictCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  size_.store(0, std::memory_order_relaxed);
}

}  // namespace ttdim::engine::oracle
