#include "engine/oracle/verdict_cache.h"

#include "support/check.h"

namespace ttdim::engine::oracle {

VerdictCache::VerdictCache(std::size_t capacity) : capacity_(capacity) {
  TTDIM_EXPECTS(capacity >= 1);
  stats_.capacity = capacity;
}

std::optional<verify::SlotVerdict> VerdictCache::lookup(
    const SlotConfigKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void VerdictCache::insert(const SlotConfigKey& key,
                          verify::SlotVerdict verdict) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(key) != index_.end()) return;  // concurrent-miss duplicate
  lru_.emplace_front(key, std::move(verdict));
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

CacheStats VerdictCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats out = stats_;
  out.size = lru_.size();
  return out;
}

void VerdictCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = CacheStats{};
  stats_.capacity = capacity_;
}

}  // namespace ttdim::engine::oracle
