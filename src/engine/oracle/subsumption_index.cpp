#include "engine/oracle/subsumption_index.h"

#include <algorithm>

#include "support/check.h"

namespace ttdim::engine::oracle {

namespace {

std::uint64_t signature_of(const std::vector<std::string>& tokens) {
  std::uint64_t sig = 0;
  for (const std::string& token : tokens)
    sig |= std::uint64_t{1} << (fnv1a(token) & 63u);
  return sig;
}

/// Multiset inclusion over sorted token vectors. std::includes on sorted
/// ranges is multiset-aware: a token occurring twice in `small` must
/// occur at least twice in `big`.
bool contains(const std::vector<std::string>& big,
              const std::vector<std::string>& small) {
  return small.size() <= big.size() &&
         std::includes(big.begin(), big.end(), small.begin(), small.end());
}

/// The soundness guards every note shares: subsumption records only
/// canonical (set) keys — an ordered prefix key describes member order a
/// multiset cannot represent — and the key's options suffix must be the
/// group the tokens claim, or entries could be compared across verifier
/// options / state budgets.
void check_note(const SlotConfigKey& key, const SlotPopulationTokens& tokens) {
  TTDIM_EXPECTS(key.canonical.compare(0, 4, "ord:") != 0);
  TTDIM_EXPECTS(key.options_suffix() == tokens.options);
}

}  // namespace

SubsumptionIndex::SubsumptionIndex(std::size_t unsafe_capacity)
    : unsafe_lru_(unsafe_capacity, nullptr,
                  [this](const SlotConfigKey& key, const std::string& options) {
                    // Fires inside note_unsafe/clear, which hold mutex_
                    // (unsafe_lru_ is GUARDED_BY it, so no other path can
                    // trigger this hook). The assertion hands that hold to
                    // the analysis across the type-erased hook boundary;
                    // erase_unsafe_locked's REQUIRES does the rest.
                    mutex_.AssertHeld();
                    erase_unsafe_locked(key, options);
                  }) {}

std::optional<SubsumptionIndex::ProbeAnswer> SubsumptionIndex::probe(
    const SlotPopulationTokens& probe) const {
  probes_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t sig = signature_of(probe.apps);
  support::MutexLock lock(mutex_);
  const auto group_it = groups_.find(probe.options);
  if (group_it == groups_.end()) return std::nullopt;
  const Group& group = group_it->second;
  // Safe side: the probe must fit inside a recorded safe population —
  // its member bits inside the entry's signature, then the exact check.
  // Recency of the match is the caller's job (see ProbeAnswer): the
  // backing verdict lives in the VerdictCache, which must not be called
  // into from under this mutex.
  for (const auto& [key, pop] : group.safe) {
    if ((sig & ~pop.signature) == 0 && contains(pop.apps, probe.apps)) {
      safe_hits_.fetch_add(1, std::memory_order_relaxed);
      return ProbeAnswer{true, key};
    }
  }
  // Unsafe side: a recorded unsafe population must fit inside the probe.
  for (const auto& [key, pop] : group.unsafe) {
    if ((pop.signature & ~sig) == 0 && contains(probe.apps, pop.apps)) {
      unsafe_hits_.fetch_add(1, std::memory_order_relaxed);
      // Refresh the matched population's recency so hot refutations
      // survive the unsafe-side bound.
      (void)unsafe_lru_.lookup(key);
      return ProbeAnswer{false, key};
    }
  }
  return std::nullopt;
}

void SubsumptionIndex::note_safe(const SlotConfigKey& key,
                                 const SlotPopulationTokens& tokens) {
  check_note(key, tokens);
  support::MutexLock lock(mutex_);
  Group& group = groups_[tokens.options];
  const auto [it, inserted] = group.safe.emplace(
      key, Population{tokens.apps, signature_of(tokens.apps)});
  (void)it;
  if (inserted) safe_entries_.fetch_add(1, std::memory_order_relaxed);
}

void SubsumptionIndex::erase_safe(const SlotConfigKey& key) {
  support::MutexLock lock(mutex_);
  const auto group_it = groups_.find(std::string(key.options_suffix()));
  if (group_it == groups_.end()) return;
  Group& group = group_it->second;
  if (group.safe.erase(key) > 0)
    safe_entries_.fetch_sub(1, std::memory_order_relaxed);
  if (group.safe.empty() && group.unsafe.empty()) groups_.erase(group_it);
}

void SubsumptionIndex::note_unsafe(const SlotConfigKey& key,
                                   const SlotPopulationTokens& tokens) {
  check_note(key, tokens);
  support::MutexLock lock(mutex_);
  // The LRU insert may evict the oldest unsafe population first; its
  // hook prunes that entry from groups_ under this same lock.
  if (!unsafe_lru_.insert(key, std::string(tokens.options))) return;
  groups_[tokens.options].unsafe.emplace(
      key, Population{tokens.apps, signature_of(tokens.apps)});
}

void SubsumptionIndex::erase_unsafe_locked(const SlotConfigKey& key,
                                           const std::string& options) {
  const auto group_it = groups_.find(options);
  if (group_it == groups_.end()) return;
  Group& group = group_it->second;
  group.unsafe.erase(key);
  if (group.safe.empty() && group.unsafe.empty()) groups_.erase(group_it);
}

SubsumptionStats SubsumptionIndex::stats() const {
  SubsumptionStats out;
  out.probes = probes_.load(std::memory_order_relaxed);
  out.safe_hits = safe_hits_.load(std::memory_order_relaxed);
  out.unsafe_hits = unsafe_hits_.load(std::memory_order_relaxed);
  out.safe_entries = safe_entries_.load(std::memory_order_relaxed);
  // The unsafe-side snapshot takes the index lock — unsafe_lru_ is
  // guarded so the eviction-hook protocol stays provable — which only
  // orders this read behind in-flight probes (microsecond scans); the
  // plain counters above stay lock-free.
  support::MutexLock lock(mutex_);
  const cache::LruStats lru = unsafe_lru_.stats();
  out.unsafe_entries = lru.entries;
  out.unsafe_evictions = lru.evictions;
  return out;
}

void SubsumptionIndex::clear() {
  support::MutexLock lock(mutex_);
  groups_.clear();
  unsafe_lru_.clear();  // per-entry hooks find nothing left to prune
  probes_.store(0, std::memory_order_relaxed);
  safe_hits_.store(0, std::memory_order_relaxed);
  unsafe_hits_.store(0, std::memory_order_relaxed);
  safe_entries_.store(0, std::memory_order_relaxed);
}

}  // namespace ttdim::engine::oracle
