#include "engine/oracle/slot_config_key.h"

#include <algorithm>

#include "support/check.h"

namespace ttdim::engine::oracle {

namespace {

void append_int(std::string& out, int v) {
  out += std::to_string(v);
  out += ',';
}

std::string serialize_app(const verify::AppTiming& app) {
  std::string s;
  s.reserve(8 * (app.t_minus.size() + app.t_plus.size()) + 16);
  append_int(s, app.t_star_w);
  append_int(s, app.min_interarrival);
  s += '-';
  for (int v : app.t_minus) append_int(s, v);
  s += '+';
  for (int v : app.t_plus) append_int(s, v);
  return s;
}

}  // namespace

namespace {

std::string options_suffix_of(const verify::DiscreteVerifier::Options& options) {
  std::string s = "p=";
  s += std::to_string(static_cast<int>(options.policy));
  s += ";d=";
  s += std::to_string(options.max_disturbances_per_app);
  s += ";s=";
  s += std::to_string(options.max_states);
  return s;
}

SlotConfigKey assemble(const std::vector<std::string>& parts, const char* tag,
                       const std::string& options_suffix) {
  SlotConfigKey key;
  std::size_t total = 8 + options_suffix.size();
  for (const std::string& p : parts) total += p.size() + 1;
  key.canonical.reserve(total);
  key.canonical += tag;
  for (const std::string& p : parts) {
    key.canonical += p;
    key.canonical += ';';
  }
  key.canonical += options_suffix;
  key.hash = fnv1a(key.canonical);
  return key;
}

}  // namespace

SlotPopulationTokens SlotConfigKey::tokens_of(
    const std::vector<verify::AppTiming>& apps,
    const verify::DiscreteVerifier::Options& options) {
  SlotPopulationTokens tokens;
  tokens.apps.reserve(apps.size());
  for (const verify::AppTiming& app : apps)
    tokens.apps.push_back(serialize_app(app));
  std::sort(tokens.apps.begin(), tokens.apps.end());
  tokens.options = options_suffix_of(options);
  return tokens;
}

SlotConfigKey SlotConfigKey::of(const SlotPopulationTokens& tokens) {
  return assemble(tokens.apps, "", tokens.options);
}

SlotConfigKey SlotConfigKey::of(
    const std::vector<verify::AppTiming>& apps,
    const verify::DiscreteVerifier::Options& options) {
  return of(tokens_of(apps, options));
}

SlotConfigKey SlotConfigKey::prefix_of(
    const std::vector<verify::AppTiming>& apps, std::size_t prefix_len,
    const verify::DiscreteVerifier::Options& options) {
  TTDIM_EXPECTS(prefix_len >= 1 && prefix_len <= apps.size());
  std::vector<std::string> parts;
  parts.reserve(prefix_len);
  for (std::size_t i = 0; i < prefix_len; ++i)
    parts.push_back(serialize_app(apps[i]));
  // No sort: byte positions in the snapshot follow member order.
  return assemble(parts, "ord:", options_suffix_of(options));
}

std::string_view SlotConfigKey::options_suffix() const {
  // App tokens are digits and [,;+-], the ordered tag is "ord:"; the
  // first '=' therefore belongs to the "p=" that opens the suffix.
  const std::size_t at = canonical.find("p=");
  TTDIM_EXPECTS(at != std::string::npos);
  return std::string_view(canonical).substr(at);
}

}  // namespace ttdim::engine::oracle
