#include "engine/oracle/slot_config_key.h"

#include <algorithm>

#include "support/check.h"

namespace ttdim::engine::oracle {

namespace {

void append_int(std::string& out, int v) {
  out += std::to_string(v);
  out += ',';
}

std::string serialize_app(const verify::AppTiming& app) {
  std::string s;
  s.reserve(8 * (app.t_minus.size() + app.t_plus.size()) + 16);
  append_int(s, app.t_star_w);
  append_int(s, app.min_interarrival);
  s += '-';
  for (int v : app.t_minus) append_int(s, v);
  s += '+';
  for (int v : app.t_plus) append_int(s, v);
  return s;
}

}  // namespace

namespace {

SlotConfigKey assemble(std::vector<std::string> parts, const char* tag,
                       const verify::DiscreteVerifier::Options& options) {
  SlotConfigKey key;
  std::size_t total = 24;
  for (const std::string& p : parts) total += p.size() + 1;
  key.canonical.reserve(total);
  key.canonical += tag;
  for (const std::string& p : parts) {
    key.canonical += p;
    key.canonical += ';';
  }
  key.canonical += "p=";
  key.canonical += std::to_string(static_cast<int>(options.policy));
  key.canonical += ";d=";
  key.canonical += std::to_string(options.max_disturbances_per_app);
  key.canonical += ";s=";
  key.canonical += std::to_string(options.max_states);

  // FNV-1a; equality re-checks the canonical string, so the hash only has
  // to spread buckets.
  std::uint64_t h = 1469598103934665603ull;
  for (char c : key.canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  key.hash = h;
  return key;
}

}  // namespace

SlotConfigKey SlotConfigKey::of(
    const std::vector<verify::AppTiming>& apps,
    const verify::DiscreteVerifier::Options& options) {
  std::vector<std::string> parts;
  parts.reserve(apps.size());
  for (const verify::AppTiming& app : apps) parts.push_back(serialize_app(app));
  std::sort(parts.begin(), parts.end());
  return assemble(std::move(parts), "", options);
}

SlotConfigKey SlotConfigKey::prefix_of(
    const std::vector<verify::AppTiming>& apps, std::size_t prefix_len,
    const verify::DiscreteVerifier::Options& options) {
  TTDIM_EXPECTS(prefix_len >= 1 && prefix_len <= apps.size());
  std::vector<std::string> parts;
  parts.reserve(prefix_len);
  for (std::size_t i = 0; i < prefix_len; ++i)
    parts.push_back(serialize_app(apps[i]));
  // No sort: byte positions in the snapshot follow member order.
  return assemble(std::move(parts), "ord:", options);
}

}  // namespace ttdim::engine::oracle
