#include "engine/oracle/admission_oracle.h"

#include <utility>

namespace ttdim::engine::oracle {

MemoizedAdmissionOracle::MemoizedAdmissionOracle(
    verify::DiscreteVerifier::Options options,
    std::shared_ptr<VerdictCache> cache)
    : options_(options), cache_(std::move(cache)) {}

verify::SlotVerdict MemoizedAdmissionOracle::verify(
    const std::vector<verify::AppTiming>& slot_apps) const {
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (cache_ == nullptr || options_.want_witness) {
    const verify::DiscreteVerifier verifier(slot_apps);
    verify::SlotVerdict verdict = verifier.verify(options_);
    states_.fetch_add(verdict.states_explored, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return verdict;
  }

  const SlotConfigKey key = SlotConfigKey::of(slot_apps, options_);
  if (std::optional<verify::SlotVerdict> cached = cache_->lookup(key)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return *std::move(cached);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  const verify::DiscreteVerifier verifier(slot_apps);
  verify::SlotVerdict verdict = verifier.verify(options_);
  states_.fetch_add(verdict.states_explored, std::memory_order_relaxed);
  // Only safe verdicts are cached: they are exhaustive, so every field
  // (safe, states_explored = |reachable set|, empty witness, violator -1)
  // is invariant under member permutation and traversal order — exactly
  // the invariance the canonical key assumes. An unsafe verdict stops at
  // the first violation found, so its violator indexes the query order
  // and its state count depends on it; those re-prove fresh (they are the
  // cheap case: the search stops early).
  if (verdict.safe) cache_->insert(key, verdict);
  return verdict;
}

bool MemoizedAdmissionOracle::admit(
    const std::vector<verify::AppTiming>& slot_apps) const {
  return verify(slot_apps).safe;
}

mapping::SlotOracle MemoizedAdmissionOracle::slot_oracle() const {
  return [this](const std::vector<verify::AppTiming>& slot_apps) {
    return admit(slot_apps);
  };
}

}  // namespace ttdim::engine::oracle
