// Lightweight per-solve instrumentation, threaded from core::solve up
// through BatchRunner to benches and (eventually) the serve API. Wall
// times are measurement, not result: they are deliberately excluded from
// engine::fingerprint so instrumented and uninstrumented solves stay
// byte-identical.
#pragma once

#include <chrono>
#include <string>

namespace ttdim::engine::oracle {

/// Milliseconds elapsed since `start` — the phase-timing helper shared
/// by every layer that stamps SolveStats fields.
[[nodiscard]] inline double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct SolveStats {
  // Time per phase, milliseconds. stability_ms and dwell_ms are the
  // *cold* analysis cost: they sum the per-application compute durations
  // of analysis-cache misses only (hits cost microseconds and report
  // zero), so with analysis_threads > 1 they are aggregate busy time
  // (can exceed total_ms); they equal the cold phase wall time in the
  // default serial configuration. analysis_ms is the wall time of the
  // whole per-app phase, warm or cold — the warm/cold split is
  // analysis_ms vs (stability_ms + dwell_ms). mapping_ms, baseline_ms
  // and total_ms are always wall time.
  double analysis_ms = 0.0;   ///< per-app phase wall time (cache incl.)
  double stability_ms = 0.0;  ///< switching-stability checks (misses only)
  double dwell_ms = 0.0;      ///< dwell-table searches (misses only)
  double mapping_ms = 0.0;    ///< proposed first-fit incl. admission proofs
  double baseline_ms = 0.0;   ///< both baseline mappings
  double total_ms = 0.0;

  // Admission-oracle counters (proposed mapping only; the baselines use
  // the closed-form [9] analysis, not the verifier). The four tiers of
  // the incremental oracle report as: cache_hits (tier 1, exact
  // verdict), subsumption_hits/subsumption_cuts (tier 2, answered by
  // multiset inclusion against proven populations — no verifier run, so
  // they count in neither cache_hits nor cache_misses), prefix_hits
  // (tier 3, extended a cached reachable-set snapshot), and the
  // remainder of cache_misses (tier 4, proved from scratch):
  // oracle_calls = cache_hits + subsumption_hits + subsumption_cuts +
  // cache_misses.
  long oracle_calls = 0;      ///< admission queries posed by the walk
  long cache_hits = 0;        ///< answered from the VerdictCache
  long subsumption_hits = 0;  ///< safe by inclusion in a safe population
  long subsumption_cuts = 0;  ///< unsafe by including an unsafe population
  long cache_misses = 0;      ///< required a DiscreteVerifier run
  long verifier_states = 0;   ///< states explored by verifier runs
  long prefix_hits = 0;       ///< runs seeded from a prefix snapshot
  long states_reused = 0;     ///< states seeded instead of re-derived
  long states_extended = 0;   ///< states explored beyond the seeds
  long parallel_proofs = 0;   ///< fresh proofs on the parallel BFS driver

  // Analysis-cache counters (engine/analysis): per-app stability/dwell
  // results answered from the content-addressed AnalysisCache vs
  // computed fresh. Evictions are the cache-wide delta observed across
  // this solve — approximate when the cache is shared with concurrent
  // jobs, exact otherwise.
  long analysis_hits = 0;
  long analysis_misses = 0;
  long analysis_evictions = 0;

  // Disk-tier counters (engine/cache/disk_cache.h): the delta of the
  // shared DiskCache's monotonic counters observed across this solve —
  // approximate when the directory is shared with concurrent jobs,
  // exact otherwise. disk_hits spans all three spaces (analysis,
  // verdict, solution); a disk analysis/verdict hit ALSO counts in the
  // corresponding memory-tier hit counter above, because the disk tier
  // answers by populating the memory tier.
  long disk_hits = 0;
  long disk_misses = 0;
  long disk_writes = 0;
  long disk_trims = 0;

  // Whole-solve result cache (engine/cache/solution_cache.h): 1/0 per
  // solve — a hit short-circuits the entire pipeline, so every other
  // counter in this struct is zero on a solution hit.
  long solution_hits = 0;
  long solution_misses = 0;

  // Online re-dimensioning (core::DimensioningSession::redimension):
  // zero on a fresh solve. events counts the delta entries applied;
  // removals are proof-free (antitone admission); refits are re-rates
  // kept in place plus re-rates/additions first-fit into an existing
  // slot; conflicts are re-rates whose current slot rejected the new
  // timing (the fallback re-placement then counts as a refit or a new
  // slot); new_slots are dedicated slots opened when no existing slot
  // admitted. removals + refits + new_slots = events.
  long redimension_events = 0;
  long redimension_removals = 0;
  long redimension_refits = 0;
  long redimension_conflicts = 0;
  long redimension_new_slots = 0;

  int analysis_threads = 1;   ///< thread budget of the per-app phase
  int proof_threads = 1;      ///< thread budget per admission proof

  /// One-line human-readable form for benches and logs.
  [[nodiscard]] std::string summary() const;
};

/// Element-wise sum of the counters and times (thread counts keep the
/// maximum) — BatchRunner-level aggregation.
[[nodiscard]] SolveStats operator+(const SolveStats& a, const SolveStats& b);

}  // namespace ttdim::engine::oracle
