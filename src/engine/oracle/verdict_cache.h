// Thread-safe memoization of admission verdicts, keyed by SlotConfigKey.
// One cache can be private to a solve, shared across the probes of a
// first-fit walk, or shared across a whole BatchRunner batch / serve
// process — the further it is shared, the more re-proofs it absorbs.
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "engine/oracle/slot_config_key.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {

/// Monotonic cache counters. Each field is read from its own atomic, so a
/// snapshot taken while other threads hit the cache (SolveStats
/// aggregation over a batch sharing one cache, bench reporting loops) is
/// tear-free per counter without taking the cache lock; the fields of one
/// snapshot may straddle in-flight operations (hits + misses can briefly
/// disagree with a concurrently counted lookup total by the operations
/// still inside the lock).
struct CacheStats {
  long hits = 0;
  long misses = 0;
  long insertions = 0;
  long evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

/// Bounded LRU map SlotConfigKey -> SlotVerdict. All operations are
/// serialized on an internal mutex: verdicts are milliseconds-to-seconds
/// expensive, so lock contention is never the bottleneck. Concurrent
/// misses of the same key may both verify and insert; the second insert
/// is a no-op (verdicts for one key are interchangeable), counted once.
class VerdictCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit VerdictCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the cached verdict and refreshes its recency; counts a hit
  /// or a miss.
  [[nodiscard]] std::optional<verify::SlotVerdict> lookup(
      const SlotConfigKey& key);

  /// Inserts (no-op when the key is already present), evicting the least
  /// recently used entry when full.
  void insert(const SlotConfigKey& key, verify::SlotVerdict verdict);

  [[nodiscard]] CacheStats stats() const;
  void clear();

 private:
  using Entry = std::pair<SlotConfigKey, verify::SlotVerdict>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<SlotConfigKey, std::list<Entry>::iterator,
                     SlotConfigKeyHash>
      index_;
  // Counters live outside the mutex so stats() is a lock-free atomic
  // snapshot even while batch jobs hammer the cache (the map and LRU list
  // stay mutex-guarded).
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> insertions_{0};
  std::atomic<long> evictions_{0};
  std::atomic<std::size_t> size_{0};
};

}  // namespace ttdim::engine::oracle
