// Thread-safe memoization of admission verdicts, keyed by SlotConfigKey.
// One cache can be private to a solve, shared across the probes of a
// first-fit walk, or shared across a whole BatchRunner batch / serve
// process — the further it is shared, the more re-proofs it absorbs.
//
// Built on the unified LRU core (engine/cache/lru_cache.h), count-
// budgeted: verdicts are tiny (safe ones carry no witness), so entries —
// not bytes — are the natural budget. The cache owns the cross-config
// SubsumptionIndex (engine/oracle/subsumption_index.h): sharing the
// verdict store shares the inclusion index with it, and the LRU's
// eviction hook erases each evicted safe population from the index so
// the two can never drift apart.
#pragma once

#include <cstddef>
#include <optional>

#include "engine/cache/lru_cache.h"
#include "engine/oracle/slot_config_key.h"
#include "engine/oracle/subsumption_index.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {

/// Monotonic cache counters; see engine::cache::LruStats for the
/// lock-free snapshot semantics (kept as a distinct struct so call sites
/// read `capacity`, the count budget, under its historical name).
struct CacheStats {
  long hits = 0;
  long misses = 0;
  long insertions = 0;
  long evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

/// Bounded LRU map SlotConfigKey -> SlotVerdict. Concurrent misses of
/// the same key may both verify and insert; the second insert is a no-op
/// (verdicts for one key are interchangeable), counted once —
/// `insertions - evictions == size` at every quiet point (pinned by
/// tests/lru_cache_test.cpp and tests/oracle_cache_test.cpp).
class VerdictCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit VerdictCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the cached verdict and refreshes its recency; counts a hit
  /// or a miss.
  [[nodiscard]] std::optional<verify::SlotVerdict> lookup(
      const SlotConfigKey& key);

  /// Inserts (no-op when the key is already present), evicting the least
  /// recently used entry when full. An evicted key is also erased from
  /// the subsumption index.
  void insert(const SlotConfigKey& key, verify::SlotVerdict verdict);

  /// Recency refresh without hit/miss accounting — the subsumption
  /// tier's way of keeping a population that answers inclusion probes
  /// off the eviction tail (those probes carry different keys, so the
  /// entry would otherwise age out first while its stats stay honest).
  void touch(const SlotConfigKey& key);

  /// The cross-config inclusion index over this store's populations.
  /// The oracle notes each safe population here immediately before
  /// inserting its verdict (and unsafe populations directly — they have
  /// no verdict entry to mirror).
  [[nodiscard]] SubsumptionIndex& subsumption() noexcept {
    return subsumption_;
  }
  [[nodiscard]] const SubsumptionIndex& subsumption() const noexcept {
    return subsumption_;
  }

  [[nodiscard]] CacheStats stats() const;
  /// Drops every verdict AND the whole subsumption index (both sides).
  void clear();

 private:
  // Declared before cache_: the eviction hook references the index, so
  // the index must outlive the cache member.
  SubsumptionIndex subsumption_;
  cache::LruCache<SlotConfigKey, verify::SlotVerdict, SlotConfigKeyHash>
      cache_;
};

}  // namespace ttdim::engine::oracle
