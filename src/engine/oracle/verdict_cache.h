// Thread-safe memoization of admission verdicts, keyed by SlotConfigKey.
// One cache can be private to a solve, shared across the probes of a
// first-fit walk, or shared across a whole BatchRunner batch / serve
// process — the further it is shared, the more re-proofs it absorbs.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "engine/oracle/slot_config_key.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {

/// Monotonic cache counters (snapshot; taken under the cache lock).
struct CacheStats {
  long hits = 0;
  long misses = 0;
  long insertions = 0;
  long evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

/// Bounded LRU map SlotConfigKey -> SlotVerdict. All operations are
/// serialized on an internal mutex: verdicts are milliseconds-to-seconds
/// expensive, so lock contention is never the bottleneck. Concurrent
/// misses of the same key may both verify and insert; the second insert
/// is a no-op (verdicts for one key are interchangeable), counted once.
class VerdictCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit VerdictCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the cached verdict and refreshes its recency; counts a hit
  /// or a miss.
  [[nodiscard]] std::optional<verify::SlotVerdict> lookup(
      const SlotConfigKey& key);

  /// Inserts (no-op when the key is already present), evicting the least
  /// recently used entry when full.
  void insert(const SlotConfigKey& key, verify::SlotVerdict verdict);

  [[nodiscard]] CacheStats stats() const;
  void clear();

 private:
  using Entry = std::pair<SlotConfigKey, verify::SlotVerdict>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<SlotConfigKey, std::list<Entry>::iterator,
                     SlotConfigKeyHash>
      index_;
  CacheStats stats_;
};

}  // namespace ttdim::engine::oracle
