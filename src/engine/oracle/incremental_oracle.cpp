#include "engine/oracle/incremental_oracle.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "engine/cache/disk_cache.h"
#include "support/codec.h"

namespace ttdim::engine::oracle {

namespace {

constexpr const char* kDiskSpace = "verdict";

// Disk payload: a 1-byte tag, then for safe verdicts the full structure
// (a disk hit must be indistinguishable from the proof that was stored).
// Unsafe verdicts store the tag alone: their details (violator, state
// count) depend on the query that found them — the same reason the
// memory VerdictCache never holds them — so only the admission boolean,
// which IS invariant, persists.
std::string encode_disk_verdict(const verify::SlotVerdict& verdict) {
  std::string out;
  support::codec::Encoder enc(out);
  if (verdict.safe) {
    enc.u8(1);
    verify::encode(enc, verdict);
  } else {
    enc.u8(0);
  }
  return out;
}

std::optional<verify::SlotVerdict> decode_disk_verdict(
    const std::string& blob) {
  support::codec::Decoder dec(blob);
  std::uint8_t tag = 0;
  if (!dec.u8(tag) || tag > 1) return std::nullopt;
  verify::SlotVerdict verdict;
  if (tag == 1) {
    if (!verify::decode(dec, verdict) || !dec.done() || !verdict.safe)
      return std::nullopt;
  } else {
    if (!dec.done()) return std::nullopt;
    verdict.safe = false;
  }
  return verdict;
}

}  // namespace

IncrementalAdmissionOracle::IncrementalAdmissionOracle(
    verify::DiscreteVerifier::Options options,
    std::shared_ptr<VerdictCache> verdicts,
    std::shared_ptr<SnapshotCache> snapshots, bool subsumption,
    std::shared_ptr<cache::DiskCache> disk)
    : options_(options),
      verdicts_(std::move(verdicts)),
      snapshots_(std::move(snapshots)),
      subsumption_(subsumption && verdicts_ != nullptr),
      // The disk tier re-enters answers through the memory verdict store
      // (insert + subsumption notes), so it requires one.
      disk_(verdicts_ != nullptr ? std::move(disk) : nullptr) {}

verify::SlotVerdict IncrementalAdmissionOracle::verify(
    const std::vector<verify::AppTiming>& slot_apps) const {
  calls_.fetch_add(1, std::memory_order_relaxed);
  // Witness and depth-first queries bypass every tier: witnesses need
  // parenthood the seeded search cannot reconstruct, and depth-first
  // traversal invalidates the FIFO discovery log the snapshots are built
  // from. Both re-prove fresh (they are rare, diagnostic queries).
  const bool bypass = options_.want_witness || options_.depth_first;
  if (bypass || (verdicts_ == nullptr && snapshots_ == nullptr)) {
    const verify::DiscreteVerifier verifier(slot_apps);
    // Witnesses and DF are serial-only verifier features; the cacheless
    // fresh-proof path keeps the configured thread budget.
    verify::DiscreteVerifier::Options fresh = options_;
    if (bypass) fresh.proof_threads = 1;
    if (fresh.proof_threads > 1)
      parallel_proofs_.fetch_add(1, std::memory_order_relaxed);
    verify::SlotVerdict verdict = verifier.verify(fresh);
    states_.fetch_add(verdict.states_explored, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return verdict;
  }

  // ---- Tier 1: exact hit on the canonical (order-independent) key. ------
  // The decomposition is computed once: the tokens are the subsumption
  // tier's inclusion domain, and their concatenation is the cache key.
  const SlotPopulationTokens tokens =
      SlotConfigKey::tokens_of(slot_apps, options_);
  const SlotConfigKey key = SlotConfigKey::of(tokens);
  if (verdicts_ != nullptr) {
    if (std::optional<verify::SlotVerdict> cached = verdicts_->lookup(key)) {
      exact_hits_.fetch_add(1, std::memory_order_relaxed);
      return *std::move(cached);
    }
  }

  // ---- Tier 1.5: persistent exact hit. ----------------------------------
  // A prior process proved this exact population: decode its verdict and
  // re-enter it through the memory tiers exactly as the original proof
  // did — note-then-insert for safe, note only for unsafe — so the rest
  // of this solve behaves as if the proof had happened here. A malformed
  // payload falls through to a cold proof (the entry ages out via trim).
  if (disk_ != nullptr) {
    if (const auto blob = disk_->get(kDiskSpace, key.canonical)) {
      if (std::optional<verify::SlotVerdict> stored =
              decode_disk_verdict(*blob)) {
        disk_hits_.fetch_add(1, std::memory_order_relaxed);
        exact_hits_.fetch_add(1, std::memory_order_relaxed);
        if (stored->safe) {
          if (subsumption_) verdicts_->subsumption().note_safe(key, tokens);
          verdicts_->insert(key, *stored);
        } else if (subsumption_) {
          verdicts_->subsumption().note_unsafe(key, tokens);
        }
        return *std::move(stored);
      }
    }
  }

  // ---- Tier 2: cross-config subsumption. --------------------------------
  // A never-seen probe included in a proven-safe population (or including
  // a proven-unsafe one) is answered by antitonicity without any search.
  // The synthesized verdict carries only the admission boolean (the
  // probe's own reachable set was never explored, so states_explored
  // stays 0); it is never cached — the index entry that answered it is
  // strictly stronger — and the walk consumes only `safe`.
  if (subsumption_) {
    if (std::optional<SubsumptionIndex::ProbeAnswer> included =
            verdicts_->subsumption().probe(tokens)) {
      (included->safe ? subsumption_hits_ : subsumption_cuts_)
          .fetch_add(1, std::memory_order_relaxed);
      // A safe match is backed by a cached verdict whose LRU recency
      // would otherwise never be touched (the probes it answers carry
      // different keys): refresh it here, outside both locks, so the
      // populations answering the most inclusion probes are the last
      // ones evicted — mirroring the unsafe side's internal refresh.
      // touch(), not lookup(): the store's hit rate keeps reflecting
      // only the exact-hit traffic it served itself.
      if (included->safe) verdicts_->touch(included->source);
      verify::SlotVerdict verdict;
      verdict.safe = included->safe;
      return verdict;
    }
  }

  // ---- Tier 3: longest cached ordered prefix. ---------------------------
  // A snapshot of the *whole* ordered population is itself an exact
  // answer: it only exists for a completed safe proof, whose verdict is
  // fully determined by the record count (safe, states = |reachable set|,
  // no witness) — no search needed, e.g. when only the snapshot cache is
  // shared across solves. Shorter prefixes seed the search instead.
  std::shared_ptr<const verify::ExplorationState> seed;
  if (snapshots_ != nullptr) {
    for (std::size_t len = slot_apps.size(); len >= 1; --len) {
      seed = snapshots_->lookup(
          SlotConfigKey::prefix_of(slot_apps, len, options_));
      if (seed == nullptr) continue;
      if (len == slot_apps.size()) {
        exact_hits_.fetch_add(1, std::memory_order_relaxed);
        verify::SlotVerdict verdict;
        verdict.safe = true;
        verdict.states_explored = static_cast<long>(seed->state_count());
        // Note-then-insert: the verdict store's eviction hook erases
        // noted populations, so noting first means the hook can never
        // run for a key the index has not seen yet.
        if (subsumption_) verdicts_->subsumption().note_safe(key, tokens);
        if (verdicts_ != nullptr) verdicts_->insert(key, verdict);
        // A full-population snapshot answer is a real proof's verdict
        // (count of its reachable set), so it persists like one.
        if (disk_ != nullptr)
          disk_->put(kDiskSpace, key.canonical, encode_disk_verdict(verdict));
        return verdict;
      }
      break;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  const verify::DiscreteVerifier verifier(slot_apps);

  // A breadth-first search seeded with the whole prefix reachable set is
  // the fastest way to *prove* the extension safe, but the slowest way to
  // *refute* it: a violation that lies a few ticks beyond one seed hides
  // behind the full breadth of all of them. Unsafe extensions are instead
  // caught by a bounded depth-first dive from the initial state — it
  // plunges into the simultaneous-disturbance branches and meets typical
  // violations within a few hundred states. Budget-exhaustion means
  // "probably safe": fall through to the seeded proof. The dive explores
  // reachable states only, so an unsafe answer is exact; its verdict
  // details (violator, state count) differ from a from-scratch BFS, which
  // is fine for verdicts that are never cached.
  if (seed != nullptr) {
    verify::DiscreteVerifier::Options refute = options_;
    refute.depth_first = true;
    refute.proof_threads = 1;  // DF dives are serial-only
    refute.max_states =
        std::min(options_.max_states,
                 std::max<long>(1024, static_cast<long>(seed->state_count())));
    try {
      verify::SlotVerdict dive = verifier.verify(refute);
      states_.fetch_add(dive.states_explored, std::memory_order_relaxed);
      if (!dive.safe) {
        // The dive's refutation is exact (it explores reachable states
        // only), so the population is genuinely unsafe: record it for
        // the subsumption tier — its supersets are unsafe too.
        if (subsumption_) verdicts_->subsumption().note_unsafe(key, tokens);
        if (disk_ != nullptr)
          disk_->put(kDiskSpace, key.canonical, encode_disk_verdict(dive));
        return dive;
      }
      // Safe within the dive budget: the reachable set is small, but the
      // snapshot still needs the FIFO discovery log — fall through to the
      // (equally small) seeded proof. Verdicts agree byte-for-byte: both
      // count exactly the reachable set.
    } catch (const std::runtime_error&) {
      // Budget exhausted — inconclusive (the dive's states are not
      // reported: the verdict object never materialized).
    }
  }

  // ---- Tier 4 (or seeded tier 3): run the verifier. ---------------------
  // A fresh full proof with a thread budget runs the Executor-parallel
  // driver; seeded extensions stay serial (their FIFO discovery order is
  // what the snapshot format records). Parallel proofs cannot capture a
  // snapshot — the contract guarantees identical verdicts, not identical
  // discovery order — so a parallel proof trades the tier-3 seed of
  // *future* extensions for this proof's wall time.
  const bool parallel = options_.proof_threads > 1 && seed == nullptr;
  verify::ExplorationState captured;
  verify::ExplorationState* capture =
      (snapshots_ != nullptr && !parallel) ? &captured : nullptr;
  verify::DiscreteVerifier::Options run = options_;
  if (!parallel) run.proof_threads = 1;
  if (parallel) parallel_proofs_.fetch_add(1, std::memory_order_relaxed);
  verify::SlotVerdict verdict = verifier.verify(run, seed.get(), capture);
  states_.fetch_add(verdict.states_explored, std::memory_order_relaxed);
  if (seed != nullptr) {
    const long reused = static_cast<long>(seed->state_count());
    prefix_hits_.fetch_add(1, std::memory_order_relaxed);
    states_reused_.fetch_add(reused, std::memory_order_relaxed);
    states_extended_.fetch_add(verdict.states_explored - reused,
                               std::memory_order_relaxed);
  }

  if (verdict.safe) {
    // Only safe verdicts are cached: they are exhaustive, so every field
    // is invariant under member permutation and traversal origin (a
    // seeded run counts exactly the same reachable set). An unsafe
    // verdict stops at the first violation found, so its violator and
    // state count depend on the query/seed; those re-prove fresh (they
    // are the cheap case: the search stops early). Snapshots likewise
    // exist only for completed — safe — explorations. The population
    // itself is noted either way: the subsumption tier needs only the
    // admission boolean, which IS invariant.
    if (subsumption_) verdicts_->subsumption().note_safe(key, tokens);
    if (verdicts_ != nullptr) verdicts_->insert(key, verdict);
    if (capture != nullptr)
      snapshots_->insert(
          SlotConfigKey::prefix_of(slot_apps, slot_apps.size(), options_),
          std::move(captured));
  } else if (subsumption_) {
    verdicts_->subsumption().note_unsafe(key, tokens);
  }
  if (disk_ != nullptr)
    disk_->put(kDiskSpace, key.canonical, encode_disk_verdict(verdict));
  return verdict;
}

bool IncrementalAdmissionOracle::admit(
    const std::vector<verify::AppTiming>& slot_apps) const {
  return verify(slot_apps).safe;
}

mapping::SlotOracle IncrementalAdmissionOracle::slot_oracle() const {
  return [this](const std::vector<verify::AppTiming>& slot_apps) {
    return admit(slot_apps);
  };
}

}  // namespace ttdim::engine::oracle
