// The memoized admission oracle: every admission query is canonicalized
// to a SlotConfigKey and answered from the VerdictCache when possible;
// only cache misses pay for a reachability proof. Thread-safe: concurrent
// queries (parallel dwell search, batch jobs sharing one cache) only
// contend on the cache mutex and on the atomic counters.
//
// This is the two-tier (exact-hit or fresh-proof) reference layer;
// core::solve routes probes through the four-tier
// IncrementalAdmissionOracle (incremental_oracle.h), which keeps this
// exact-hit tier first and adds cross-config subsumption and
// prefix-snapshot extension between it and the fresh proof.
//
// Concurrency contract (machine-checked downstream): this type holds no
// mutex of its own — options_ is immutable after construction, the
// counters are individually atomic, and all locking lives inside the
// annotated VerdictCache/LruCache layer (support/thread_annotations.h),
// which the clang -Wthread-safety lane proves.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "engine/oracle/slot_config_key.h"
#include "engine/oracle/verdict_cache.h"
#include "mapping/first_fit.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {

class MemoizedAdmissionOracle {
 public:
  /// `cache` may be nullptr to disable memoization (every query verifies
  /// fresh — the reference behaviour the cached path is tested against),
  /// or shared between oracles/solves to reuse verdicts across them.
  MemoizedAdmissionOracle(verify::DiscreteVerifier::Options options,
                          std::shared_ptr<VerdictCache> cache);

  /// Full verdict for one slot population. Only *safe* verdicts are ever
  /// served from (or inserted into) the cache — a safe proof is
  /// exhaustive, so all its fields are independent of member order and
  /// traversal order, matching the canonical key. Unsafe verdicts (whose
  /// violator index and state count depend on the query order) and
  /// witness queries (options.want_witness) always verify fresh.
  [[nodiscard]] verify::SlotVerdict verify(
      const std::vector<verify::AppTiming>& slot_apps) const;

  /// Admission answer (verdict.safe).
  [[nodiscard]] bool admit(
      const std::vector<verify::AppTiming>& slot_apps) const;

  /// Adapter for the mapping walks. The returned closure references this
  /// oracle; it must not outlive it.
  [[nodiscard]] mapping::SlotOracle slot_oracle() const;

  [[nodiscard]] const std::shared_ptr<VerdictCache>& cache() const noexcept {
    return cache_;
  }
  [[nodiscard]] const verify::DiscreteVerifier::Options& options()
      const noexcept {
    return options_;
  }

  // Counters for this oracle instance (a shared cache aggregates across
  // instances; these stay per-solve).
  [[nodiscard]] long calls() const noexcept { return calls_.load(); }
  [[nodiscard]] long hits() const noexcept { return hits_.load(); }
  [[nodiscard]] long misses() const noexcept { return misses_.load(); }
  /// States explored by fresh verifier runs issued through this oracle.
  [[nodiscard]] long states_explored() const noexcept {
    return states_.load();
  }

 private:
  verify::DiscreteVerifier::Options options_;
  std::shared_ptr<VerdictCache> cache_;
  mutable std::atomic<long> calls_{0};
  mutable std::atomic<long> hits_{0};
  mutable std::atomic<long> misses_{0};
  mutable std::atomic<long> states_{0};
};

}  // namespace ttdim::engine::oracle
