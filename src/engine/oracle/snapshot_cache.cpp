#include "engine/oracle/snapshot_cache.h"

#include "support/check.h"

namespace ttdim::engine::oracle {

SnapshotCache::SnapshotCache(std::size_t byte_budget)
    : byte_budget_(byte_budget) {
  TTDIM_EXPECTS(byte_budget >= 1);
}

std::size_t SnapshotCache::cost_of(const SlotConfigKey& key,
                                   const verify::ExplorationState& snapshot) {
  // Records + key string + fixed bookkeeping overhead per entry.
  return snapshot.packed.capacity() + key.canonical.size() + 128;
}

std::shared_ptr<const verify::ExplorationState> SnapshotCache::lookup(
    const SlotConfigKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void SnapshotCache::insert(const SlotConfigKey& key,
                           verify::ExplorationState snapshot) {
  const std::size_t cost = cost_of(key, snapshot);
  if (cost > byte_budget_) return;  // would evict everything for one entry
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(key) != index_.end()) return;  // concurrent-miss duplicate
  lru_.emplace_front(
      key, std::make_shared<const verify::ExplorationState>(std::move(snapshot)));
  index_.emplace(key, lru_.begin());
  bytes_ += cost;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= cost_of(victim.first, *victim.second);
    index_.erase(victim.first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

SnapshotCacheStats SnapshotCache::stats() const {
  SnapshotCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  out.entries = lru_.size();
  out.bytes = bytes_;
  out.byte_budget = byte_budget_;
  return out;
}

void SnapshotCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace ttdim::engine::oracle
