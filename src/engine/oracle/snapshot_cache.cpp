#include "engine/oracle/snapshot_cache.h"

namespace ttdim::engine::oracle {

SnapshotCache::SnapshotCache(std::size_t byte_budget)
    : cache_(byte_budget, &SnapshotCache::cost_of) {}

std::size_t SnapshotCache::cost_of(const SlotConfigKey& key,
                                   const verify::ExplorationState& snapshot) {
  // Records + key string + fixed bookkeeping overhead per entry.
  return snapshot.packed.capacity() + key.canonical.size() + 128;
}

std::shared_ptr<const verify::ExplorationState> SnapshotCache::lookup(
    const SlotConfigKey& key) {
  return cache_.lookup(key);
}

void SnapshotCache::insert(const SlotConfigKey& key,
                           verify::ExplorationState snapshot) {
  cache_.insert(key, std::move(snapshot));
}

SnapshotCacheStats SnapshotCache::stats() const {
  const cache::LruStats lru = cache_.stats();
  SnapshotCacheStats out;
  out.hits = lru.hits;
  out.misses = lru.misses;
  out.insertions = lru.insertions;
  out.evictions = lru.evictions;
  out.entries = lru.entries;
  out.bytes = lru.cost;
  out.byte_budget = lru.budget;
  return out;
}

void SnapshotCache::clear() { cache_.clear(); }

}  // namespace ttdim::engine::oracle
