// Cross-config subsumption tier of the admission oracle: the admission
// check is *antitone* in the slot population — adding an application can
// only add interference (while steady and undisturbed it is invisible to
// every transition rule, so each behaviour of the smaller system embeds
// into the larger one; see the seeding soundness argument in
// verify/discrete.h) — so
//
//   probe ⊆ cached-safe population    =>  probe is safe,
//   probe ⊇ cached-unsafe population  =>  probe is unsafe,
//
// with ⊆ the multiset inclusion over per-application timing tokens
// (SlotPopulationTokens), valid ONLY under byte-identical verifier
// options: policy and disturbance bound shape the transition system, and
// the state budget bounds which proofs complete at all, so entries are
// grouped by the options suffix and never compared across groups.
//
// Budget fine print: a safe answer never outruns the budget (the subset's
// reachable set embeds injectively into the superset's, so its fresh
// proof completes within the same budget with the same verdict). An
// unsafe answer can cover a probe whose fresh BFS would have exhausted
// the budget before meeting the violation — the tier then answers
// "unsafe" where the reference path would throw. That strictly extends
// the solvable set and never flips a completed verdict; with the default
// 2e8-state budget the case never arises in practice.
//
// Consistency: the safe side mirrors the unified verdict store — the
// oracle notes a safe population immediately before inserting its
// verdict, and VerdictCache's LRU eviction hook (engine/cache/lru_cache.h)
// erases it again — so safe entries never outlive their verdicts beyond
// the note/insert race window. The unsafe side has no backing store
// (unsafe verdicts are never cached: their details are query-dependent);
// it bounds itself with its own LruCache of populations whose eviction
// hook prunes the inclusion groups.
//
// Thread-safe; every operation serializes on one internal mutex (probes
// are linear scans of one options group with a 64-bit signature
// prefilter — microseconds against proofs costing milliseconds to
// seconds). Lock ordering: VerdictCache mutex -> index mutex -> internal
// unsafe-LRU mutex; nothing here ever calls back into the verdict store.
// The ordering and every guarded field are spelled out in thread-safety
// annotations (support/thread_annotations.h), so the clang lane proves
// the discipline instead of trusting this comment.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/cache/lru_cache.h"
#include "engine/oracle/slot_config_key.h"
#include "support/thread_annotations.h"

namespace ttdim::engine::oracle {

/// Monotonic counters (each individually atomic; see LruStats for the
/// snapshot semantics).
struct SubsumptionStats {
  long probes = 0;
  long safe_hits = 0;    ///< probe ⊆ a recorded safe population
  long unsafe_hits = 0;  ///< probe ⊇ a recorded unsafe population
  std::size_t safe_entries = 0;
  std::size_t unsafe_entries = 0;
  long unsafe_evictions = 0;
};

class SubsumptionIndex {
 public:
  /// Bound on recorded unsafe populations (the safe side is bounded by
  /// the verdict store it mirrors). Matches VerdictCache::kDefaultCapacity.
  static constexpr std::size_t kDefaultUnsafeCapacity = 4096;

  explicit SubsumptionIndex(
      std::size_t unsafe_capacity = kDefaultUnsafeCapacity);

  /// A positive inclusion answer: the admission verdict plus the key of
  /// the recorded population that subsumed the probe. The source key is
  /// how recency flows back to the bounding store: unsafe matches are
  /// refreshed internally (the unsafe LRU is ours), but a safe match's
  /// lifetime is owned by the mirroring VerdictCache, which this index
  /// must never call into (lock order: cache mutex -> index mutex) — so
  /// the caller, outside both locks, calls `verdicts->touch(source)`
  /// to keep hot safe populations off the eviction tail.
  struct ProbeAnswer {
    bool safe = false;
    SlotConfigKey source;
  };

  /// Inclusion query. nullopt when no recorded population subsumes the
  /// probe. Only consults entries whose options suffix equals
  /// `probe.options` byte-for-byte.
  [[nodiscard]] std::optional<ProbeAnswer> probe(
      const SlotPopulationTokens& probe) const;

  /// Record a proven-safe population. Idempotent per key. Call *before*
  /// inserting the verdict into the mirroring VerdictCache, so the
  /// store's eviction hook can never fire for a key not yet noted.
  void note_safe(const SlotConfigKey& key, const SlotPopulationTokens& tokens);

  /// Drop the safe record for `key` (the verdict store's eviction hook
  /// target); no-op when absent.
  void erase_safe(const SlotConfigKey& key);

  /// Record a proven-unsafe population in the self-bounded unsafe store.
  /// Idempotent per key; the least recently matched population is evicted
  /// past the capacity.
  void note_unsafe(const SlotConfigKey& key,
                   const SlotPopulationTokens& tokens);

  [[nodiscard]] SubsumptionStats stats() const;
  void clear();

 private:
  /// One recorded population: its sorted tokens plus a 64-bit member
  /// signature (bit h(token) mod 64 set per member) — a cheap
  /// no-false-negative inclusion prefilter.
  struct Population {
    std::vector<std::string> apps;
    std::uint64_t signature = 0;
  };
  /// Populations comparable to each other: byte-identical options suffix.
  struct Group {
    std::unordered_map<SlotConfigKey, Population, SlotConfigKeyHash> safe;
    std::unordered_map<SlotConfigKey, Population, SlotConfigKeyHash> unsafe;
  };

  void erase_unsafe_locked(const SlotConfigKey& key, const std::string& options)
      REQUIRES(mutex_);

  mutable support::Mutex mutex_;
  std::unordered_map<std::string, Group> groups_ GUARDED_BY(mutex_);
  /// Recency + bound for the unsafe side, on the unified LRU template;
  /// the value is the owning group's options suffix so the eviction hook
  /// can find and prune the inclusion entry. GUARDED_BY(mutex_) even
  /// though the LRU is internally thread-safe: every touch happens with
  /// mutex_ held, which is exactly what lets the eviction hook mutate
  /// groups_ without re-locking (it asserts, then relies on, that hold —
  /// see the constructor). mutable: probe() refreshes the recency of
  /// matched entries.
  mutable cache::LruCache<SlotConfigKey, std::string, SlotConfigKeyHash>
      unsafe_lru_ GUARDED_BY(mutex_);
  // mutable: probe() is logically read-only but counts itself.
  mutable std::atomic<long> probes_{0};
  mutable std::atomic<long> safe_hits_{0};
  mutable std::atomic<long> unsafe_hits_{0};
  std::atomic<std::size_t> safe_entries_{0};
};

}  // namespace ttdim::engine::oracle
