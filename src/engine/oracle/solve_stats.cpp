#include "engine/oracle/solve_stats.h"

#include <algorithm>
#include <cstdio>

namespace ttdim::engine::oracle {

std::string SolveStats::summary() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "total %.1f ms (analysis %.1f [cold: stability %.1f, dwell %.1f], "
      "mapping %.1f, baseline %.1f) | analysis cache %ld hits, %ld misses, "
      "%ld evictions | oracle %ld calls, %ld hits, %ld misses, %ld states | "
      "subsumption %ld hits, %ld cuts | prefix %ld hits, %ld reused, "
      "%ld extended | parallel %ld proofs @%d threads | disk %ld hits, "
      "%ld misses, %ld writes, %ld trims | solution %ld hits, %ld misses | "
      "redim %ld events: %ld removals, %ld refits, %ld conflicts, "
      "%ld new slots",
      total_ms, analysis_ms, stability_ms, dwell_ms, mapping_ms, baseline_ms,
      analysis_hits, analysis_misses, analysis_evictions, oracle_calls,
      cache_hits, cache_misses, verifier_states, subsumption_hits,
      subsumption_cuts, prefix_hits, states_reused, states_extended,
      parallel_proofs, proof_threads, disk_hits, disk_misses, disk_writes,
      disk_trims, solution_hits, solution_misses, redimension_events,
      redimension_removals, redimension_refits, redimension_conflicts,
      redimension_new_slots);
  return buf;
}

SolveStats operator+(const SolveStats& a, const SolveStats& b) {
  SolveStats out;
  out.analysis_ms = a.analysis_ms + b.analysis_ms;
  out.stability_ms = a.stability_ms + b.stability_ms;
  out.dwell_ms = a.dwell_ms + b.dwell_ms;
  out.mapping_ms = a.mapping_ms + b.mapping_ms;
  out.baseline_ms = a.baseline_ms + b.baseline_ms;
  out.total_ms = a.total_ms + b.total_ms;
  out.oracle_calls = a.oracle_calls + b.oracle_calls;
  out.cache_hits = a.cache_hits + b.cache_hits;
  out.subsumption_hits = a.subsumption_hits + b.subsumption_hits;
  out.subsumption_cuts = a.subsumption_cuts + b.subsumption_cuts;
  out.cache_misses = a.cache_misses + b.cache_misses;
  out.verifier_states = a.verifier_states + b.verifier_states;
  out.prefix_hits = a.prefix_hits + b.prefix_hits;
  out.states_reused = a.states_reused + b.states_reused;
  out.states_extended = a.states_extended + b.states_extended;
  out.parallel_proofs = a.parallel_proofs + b.parallel_proofs;
  out.analysis_hits = a.analysis_hits + b.analysis_hits;
  out.analysis_misses = a.analysis_misses + b.analysis_misses;
  out.analysis_evictions = a.analysis_evictions + b.analysis_evictions;
  out.disk_hits = a.disk_hits + b.disk_hits;
  out.disk_misses = a.disk_misses + b.disk_misses;
  out.disk_writes = a.disk_writes + b.disk_writes;
  out.disk_trims = a.disk_trims + b.disk_trims;
  out.solution_hits = a.solution_hits + b.solution_hits;
  out.solution_misses = a.solution_misses + b.solution_misses;
  out.redimension_events = a.redimension_events + b.redimension_events;
  out.redimension_removals = a.redimension_removals + b.redimension_removals;
  out.redimension_refits = a.redimension_refits + b.redimension_refits;
  out.redimension_conflicts =
      a.redimension_conflicts + b.redimension_conflicts;
  out.redimension_new_slots =
      a.redimension_new_slots + b.redimension_new_slots;
  out.analysis_threads = std::max(a.analysis_threads, b.analysis_threads);
  out.proof_threads = std::max(a.proof_threads, b.proof_threads);
  return out;
}

}  // namespace ttdim::engine::oracle
