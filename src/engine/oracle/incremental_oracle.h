// The incremental admission oracle: the four-tier layer between the
// mapping walks (mapping::first_fit / best_fit, core::solve) and
// verify::DiscreteVerifier.
//
//   tier 1  exact hit      — the canonical SlotConfigKey is already in the
//                            VerdictCache (the PR-2 memoized layer);
//   tier 2  subsumption    — a never-seen probe is answered by multiset
//                            inclusion against the populations the verdict
//                            store has proved: admission is antitone, so a
//                            sub-population of a safe one is safe and a
//                            super-population of an unsafe one is unsafe
//                            (subsumption_index.h details the argument and
//                            its byte-identical-options guard);
//   tier 3  prefix hit     — the probe's ordered prefix {slot} has a
//                            reachable-set snapshot in the SnapshotCache,
//                            and the verifier extends that snapshot with
//                            the appended candidate instead of re-proving
//                            the prefix from scratch;
//   tier 4  fresh proof    — full BFS from the initial state.
//
// Tiers 3 and 4 capture the snapshot of every *safe* proof, so a slot's
// population — which is exactly the prefix of every later probe against
// that slot — is explored at most once per cache lifetime. Admission
// answers are identical across tiers by construction (discrete.h details
// the prefix soundness argument); safe verdicts of tiers 1/3/4 are
// byte-identical, unsafe ones agree on `safe` but may differ in the
// violation found, which is why only safe verdicts enter the
// VerdictCache. Tier-2 answers are admission booleans synthesized from
// inclusion — their verdict carries no state count — so they are never
// cached and never re-noted; every population the index holds was proved
// by a real verifier run.
//
// Thread-safe like the memoized layer: concurrent queries contend only on
// the cache mutexes and the atomic counters. Those mutexes are the
// annotated support::Mutex (support/thread_annotations.h) throughout the
// cache layer, so the locking discipline this oracle leans on — including
// the note-then-insert protocol's eviction-hook obligations — is proven
// by the clang -Wthread-safety lane, not just exercised by TSan.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "engine/oracle/slot_config_key.h"
#include "engine/oracle/snapshot_cache.h"
#include "engine/oracle/verdict_cache.h"
#include "mapping/first_fit.h"
#include "verify/discrete.h"

namespace ttdim::engine::cache {
class DiskCache;
}  // namespace ttdim::engine::cache

namespace ttdim::engine::oracle {

class IncrementalAdmissionOracle {
 public:
  /// Either cache may be nullptr to disable its tier: (nullptr, nullptr)
  /// verifies every query fresh (the reference behaviour), (cache,
  /// nullptr) reproduces the PR-2 memoized oracle exactly, and a shared
  /// SnapshotCache extends prefix reuse across solves (batch jobs, a
  /// serve process). `subsumption` gates tier 2 — it lives in the
  /// verdict store's SubsumptionIndex, so it needs `verdicts` non-null
  /// and is shared exactly as far as the verdict cache is; disabled (or
  /// with no verdict store) the oracle reproduces the PR-3 three-tier
  /// behaviour, including never touching the index.
  ///
  /// `disk`, when non-null (and `verdicts` is too), adds a persistent
  /// tier between the exact hit and subsumption: a memory miss consults
  /// the disk "verdict" space, and a decoded entry re-enters the memory
  /// tiers exactly as the original proof did (safe verdicts are inserted
  /// and noted, unsafe ones only noted — the memory cache's safe-only
  /// invariant holds) before being returned as an exact hit. Every real
  /// proof is written through (safe verdicts in full, unsafe ones as a
  /// bare marker, since their details are query-order-dependent);
  /// tier-2 synthesized answers are not — the population that answered
  /// them is already stored. Results stay byte-identical tier on/off.
  ///
  /// `options.proof_threads > 1` routes fresh full proofs (tier 4 with
  /// no prefix seed, and the cacheless reference path) to the verifier's
  /// Executor-parallel driver; prefix-seeded extensions and witness /
  /// depth-first diagnostics always run serial, since their discovery
  /// order is part of their contract. Parallel proofs capture no
  /// snapshot, so the tier-3 seed of future extensions is traded for
  /// this proof's wall time. Admission answers — and cached verdicts —
  /// are identical either way (verify/discrete.h pins the contract).
  IncrementalAdmissionOracle(verify::DiscreteVerifier::Options options,
                             std::shared_ptr<VerdictCache> verdicts,
                             std::shared_ptr<SnapshotCache> snapshots,
                             bool subsumption = true,
                             std::shared_ptr<cache::DiskCache> disk = nullptr);

  /// Full verdict for one slot population. Witness queries
  /// (options.want_witness) and depth-first traversals bypass both caches
  /// and verify fresh, exactly like the memoized layer.
  [[nodiscard]] verify::SlotVerdict verify(
      const std::vector<verify::AppTiming>& slot_apps) const;

  /// Admission answer (verdict.safe).
  [[nodiscard]] bool admit(
      const std::vector<verify::AppTiming>& slot_apps) const;

  /// Adapter for the mapping walks. The returned closure references this
  /// oracle; it must not outlive it.
  [[nodiscard]] mapping::SlotOracle slot_oracle() const;

  [[nodiscard]] const std::shared_ptr<VerdictCache>& verdict_cache()
      const noexcept {
    return verdicts_;
  }
  [[nodiscard]] const std::shared_ptr<SnapshotCache>& snapshot_cache()
      const noexcept {
    return snapshots_;
  }
  [[nodiscard]] const verify::DiscreteVerifier::Options& options()
      const noexcept {
    return options_;
  }

  // Counters for this oracle instance (shared caches aggregate their own
  // stats across instances; these stay per-solve).
  [[nodiscard]] long calls() const noexcept { return calls_.load(); }
  /// Tier-1 answers served from the VerdictCache. Disk-tier answers
  /// count here too (they re-enter through the same exact-key door), so
  /// the identity calls = exact + subsumption hits/cuts + misses holds
  /// with the disk tier on; disk_hits() splits them out.
  [[nodiscard]] long exact_hits() const noexcept { return exact_hits_.load(); }
  /// The subset of exact_hits answered from the disk tier.
  [[nodiscard]] long disk_hits() const noexcept { return disk_hits_.load(); }
  /// Tier-2 safe answers: probe included in a proven-safe population.
  [[nodiscard]] long subsumption_hits() const noexcept {
    return subsumption_hits_.load();
  }
  /// Tier-2 unsafe answers: probe includes a proven-unsafe population
  /// (a refutation shortcut — no dive, no search).
  [[nodiscard]] long subsumption_cuts() const noexcept {
    return subsumption_cuts_.load();
  }
  /// Queries that had to run the verifier (tiers 3 and 4).
  [[nodiscard]] long misses() const noexcept { return misses_.load(); }
  /// Tier-3 runs: verifier extended a cached prefix snapshot.
  [[nodiscard]] long prefix_hits() const noexcept {
    return prefix_hits_.load();
  }
  /// Fresh proofs run on the Executor-parallel BFS driver
  /// (options().proof_threads > 1 and no prefix seed; seeded
  /// extensions and witness/DF diagnostics always run serial).
  [[nodiscard]] long parallel_proofs() const noexcept {
    return parallel_proofs_.load();
  }
  /// States explored by verifier runs issued through this oracle.
  [[nodiscard]] long states_explored() const noexcept {
    return states_.load();
  }
  /// States seeded from prefix snapshots instead of being re-derived.
  [[nodiscard]] long states_reused() const noexcept {
    return states_reused_.load();
  }
  /// States a prefix-seeded run explored beyond its seeds.
  [[nodiscard]] long states_extended() const noexcept {
    return states_extended_.load();
  }

 private:
  verify::DiscreteVerifier::Options options_;
  std::shared_ptr<VerdictCache> verdicts_;
  std::shared_ptr<SnapshotCache> snapshots_;
  bool subsumption_;
  std::shared_ptr<cache::DiskCache> disk_;
  mutable std::atomic<long> calls_{0};
  mutable std::atomic<long> exact_hits_{0};
  mutable std::atomic<long> disk_hits_{0};
  mutable std::atomic<long> subsumption_hits_{0};
  mutable std::atomic<long> subsumption_cuts_{0};
  mutable std::atomic<long> misses_{0};
  mutable std::atomic<long> prefix_hits_{0};
  mutable std::atomic<long> parallel_proofs_{0};
  mutable std::atomic<long> states_{0};
  mutable std::atomic<long> states_reused_{0};
  mutable std::atomic<long> states_extended_{0};
};

}  // namespace ttdim::engine::oracle
