// The incremental admission oracle: the three-tier layer between the
// mapping walks (mapping::first_fit / best_fit, core::solve) and
// verify::DiscreteVerifier.
//
//   tier 1  exact hit      — the canonical SlotConfigKey is already in the
//                            VerdictCache (the PR-2 memoized layer);
//   tier 2  prefix hit     — the probe's ordered prefix {slot} has a
//                            reachable-set snapshot in the SnapshotCache,
//                            and the verifier extends that snapshot with
//                            the appended candidate instead of re-proving
//                            the prefix from scratch;
//   tier 3  fresh proof    — full BFS from the initial state.
//
// Tiers 2 and 3 capture the snapshot of every *safe* proof, so a slot's
// population — which is exactly the prefix of every later probe against
// that slot — is explored at most once per cache lifetime. Admission
// answers are identical across tiers by construction (discrete.h details
// the soundness argument); safe verdicts are byte-identical, unsafe ones
// agree on `safe` but may differ in the violation found, which is why
// only safe verdicts enter the VerdictCache.
//
// Thread-safe like the memoized layer: concurrent queries contend only on
// the cache mutexes and the atomic counters.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "engine/oracle/slot_config_key.h"
#include "engine/oracle/snapshot_cache.h"
#include "engine/oracle/verdict_cache.h"
#include "mapping/first_fit.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {

class IncrementalAdmissionOracle {
 public:
  /// Either cache may be nullptr to disable its tier: (nullptr, nullptr)
  /// verifies every query fresh (the reference behaviour), (cache,
  /// nullptr) reproduces the PR-2 memoized oracle exactly, and a shared
  /// SnapshotCache extends prefix reuse across solves (batch jobs, a
  /// serve process).
  IncrementalAdmissionOracle(verify::DiscreteVerifier::Options options,
                             std::shared_ptr<VerdictCache> verdicts,
                             std::shared_ptr<SnapshotCache> snapshots);

  /// Full verdict for one slot population. Witness queries
  /// (options.want_witness) and depth-first traversals bypass both caches
  /// and verify fresh, exactly like the memoized layer.
  [[nodiscard]] verify::SlotVerdict verify(
      const std::vector<verify::AppTiming>& slot_apps) const;

  /// Admission answer (verdict.safe).
  [[nodiscard]] bool admit(
      const std::vector<verify::AppTiming>& slot_apps) const;

  /// Adapter for the mapping walks. The returned closure references this
  /// oracle; it must not outlive it.
  [[nodiscard]] mapping::SlotOracle slot_oracle() const;

  [[nodiscard]] const std::shared_ptr<VerdictCache>& verdict_cache()
      const noexcept {
    return verdicts_;
  }
  [[nodiscard]] const std::shared_ptr<SnapshotCache>& snapshot_cache()
      const noexcept {
    return snapshots_;
  }
  [[nodiscard]] const verify::DiscreteVerifier::Options& options()
      const noexcept {
    return options_;
  }

  // Counters for this oracle instance (shared caches aggregate their own
  // stats across instances; these stay per-solve).
  [[nodiscard]] long calls() const noexcept { return calls_.load(); }
  /// Tier-1 answers served from the VerdictCache.
  [[nodiscard]] long exact_hits() const noexcept { return exact_hits_.load(); }
  /// Queries that had to run the verifier (tiers 2 and 3).
  [[nodiscard]] long misses() const noexcept { return misses_.load(); }
  /// Tier-2 runs: verifier extended a cached prefix snapshot.
  [[nodiscard]] long prefix_hits() const noexcept {
    return prefix_hits_.load();
  }
  /// States explored by verifier runs issued through this oracle.
  [[nodiscard]] long states_explored() const noexcept {
    return states_.load();
  }
  /// States seeded from prefix snapshots instead of being re-derived.
  [[nodiscard]] long states_reused() const noexcept {
    return states_reused_.load();
  }
  /// States a prefix-seeded run explored beyond its seeds.
  [[nodiscard]] long states_extended() const noexcept {
    return states_extended_.load();
  }

 private:
  verify::DiscreteVerifier::Options options_;
  std::shared_ptr<VerdictCache> verdicts_;
  std::shared_ptr<SnapshotCache> snapshots_;
  mutable std::atomic<long> calls_{0};
  mutable std::atomic<long> exact_hits_{0};
  mutable std::atomic<long> misses_{0};
  mutable std::atomic<long> prefix_hits_{0};
  mutable std::atomic<long> states_{0};
  mutable std::atomic<long> states_reused_{0};
  mutable std::atomic<long> states_extended_{0};
};

}  // namespace ttdim::engine::oracle
