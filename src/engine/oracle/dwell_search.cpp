#include "engine/oracle/dwell_search.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <vector>

#include "engine/parallel_for.h"
#include "support/check.h"

namespace ttdim::engine::oracle {

using switching::DwellRow;
using switching::DwellTables;

switching::DwellTables compute_dwell_tables_parallel(
    const switching::SwitchedLoop& loop,
    const switching::DwellAnalysisSpec& spec, int threads) {
  const int workers = engine::resolve_threads(threads);
  if (workers <= 1) return switching::compute_dwell_tables(loop, spec);

  const switching::DwellEndpoints endpoints =
      switching::check_dwell_spec(loop, spec);
  DwellTables tables;
  tables.tw_granularity = spec.tw_granularity;
  tables.settling_tt = endpoints.settling_tt;
  tables.settling_et = endpoints.settling_et;

  // Wait candidates in serial-search order. Rows are proven in chunks of
  // 2x the worker count: enough to keep every worker busy, small enough
  // that the speculation past the serial search's stopping row stays
  // bounded.
  std::vector<int> waits;
  for (int wait = 0; wait <= spec.max_wait; wait += spec.tw_granularity)
    waits.push_back(wait);
  const int chunk = 2 * workers;

  bool stopped = false;
  for (size_t base = 0; base < waits.size() && !stopped; base += chunk) {
    const int count = static_cast<int>(
        std::min(waits.size() - base, static_cast<size_t>(chunk)));
    std::vector<std::optional<DwellRow>> rows(static_cast<size_t>(count));
    std::vector<std::exception_ptr> errors(static_cast<size_t>(count));
    engine::parallel_for_index(workers, count, [&](int i) {
      // Rows past the serial search's stopping point are speculative and
      // get discarded below; an exception there (e.g. a wait so large the
      // simulation horizon precondition fails) must not surface, because
      // the serial search never evaluates those waits.
      try {
        rows[static_cast<size_t>(i)] = switching::compute_dwell_row(
            loop, waits[base + static_cast<size_t>(i)], spec);
      } catch (...) {
        errors[static_cast<size_t>(i)] = std::current_exception();
      }
    });
    for (int i = 0; i < count; ++i) {
      // In wait order, the first event decides: an error the serial
      // search would also have reached rethrows; an infeasible row stops.
      if (errors[static_cast<size_t>(i)])
        std::rethrow_exception(errors[static_cast<size_t>(i)]);
      const std::optional<DwellRow>& row = rows[static_cast<size_t>(i)];
      if (!row.has_value()) {  // first infeasible wait: serial search stops
        stopped = true;
        break;
      }
      tables.t_star_w = waits[base + static_cast<size_t>(i)];
      tables.t_minus.push_back(row->t_minus);
      tables.t_plus.push_back(row->t_plus);
      tables.settling_at_minus.push_back(row->settling_at_minus);
      tables.settling_at_plus.push_back(row->settling_at_plus);
    }
  }
  if (tables.t_star_w < 0) return tables;  // infeasible even at Tw = 0

  TTDIM_ENSURES(tables.t_minus.size() == tables.t_plus.size());
  TTDIM_ENSURES(static_cast<int>(tables.t_minus.size()) ==
                tables.t_star_w / spec.tw_granularity + 1);
  return tables;
}

}  // namespace ttdim::engine::oracle
