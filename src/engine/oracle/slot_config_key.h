// Canonical identity of an admission query: the set of applications posed
// to verify::DiscreteVerifier plus the verifier options that influence the
// verdict. The key is order-independent — first-fit probes the same slot
// population in whatever order the walk produced it, and a slot's
// admissibility does not depend on member order — and name-independent,
// because the verdict is a function of the timing parameters only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "verify/app_timing.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {

/// FNV-1a over a byte string — the one hash primitive of the oracle
/// layer: SlotConfigKey spreads buckets with it (equality re-checks the
/// canonical bytes) and the SubsumptionIndex derives its per-member
/// signature bits from it. Shared so the constants can never diverge.
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Canonical decomposition of a (set) key: the sorted per-app timing
/// tokens and the verdict-affecting options suffix, i.e. exactly the two
/// halves the canonical serialization concatenates. This is the domain
/// of the subsumption tier (engine/oracle/subsumption_index.h): two
/// populations are subsumption-comparable only under byte-identical
/// `options` (policy, disturbance bound AND state budget — a verdict
/// proven under one budget says nothing about another), and within that
/// group the admission check is antitone in the multiset `apps` — any
/// sub-multiset of a safe population is safe, any super-multiset of an
/// unsafe one is unsafe. Each token serializes one application's full
/// timing abstraction (T*w, r, T-dw[], T+dw[] — names excluded), so
/// multiset inclusion over tokens is inclusion over timing-identical
/// application populations.
struct SlotPopulationTokens {
  std::vector<std::string> apps;  ///< sorted per-app serializations
  std::string options;            ///< "p=<policy>;d=<dist>;s=<budget>"
};

/// Value key for the verdict cache. `canonical` is the full normalized
/// serialization (equality never trusts the hash alone: an admission
/// cache must not return a colliding entry's verdict).
struct SlotConfigKey {
  std::string canonical;
  std::uint64_t hash = 0;

  /// Build the canonical key: per-app timing serializations (T*w, r,
  /// T-dw[], T+dw[] — names excluded) sorted lexicographically, followed
  /// by the verdict-affecting options: policy, disturbance bound and the
  /// state budget (a smaller budget can turn a completed proof into a
  /// budget-exhausted throw, so sharing verdicts across budgets would
  /// make memoization observable). Witness/traversal options are
  /// excluded — the memoized oracle caches only exhaustive safe verdicts
  /// and bypasses the cache for witness queries. proof_threads is
  /// likewise excluded: serial and parallel proofs are contractually
  /// interchangeable (identical verdicts, identical safe state counts —
  /// verify/discrete.h), so they share cache entries.
  [[nodiscard]] static SlotConfigKey of(
      const std::vector<verify::AppTiming>& apps,
      const verify::DiscreteVerifier::Options& options);

  /// The canonical decomposition `of` concatenates: sorted per-app
  /// tokens + options suffix. `of(tokens_of(apps, o))` is byte-identical
  /// to `of(apps, o)` (pinned by tests/subsumption_test.cpp), so a
  /// caller that needs both the inclusion domain and the cache key
  /// serializes each application once.
  [[nodiscard]] static SlotPopulationTokens tokens_of(
      const std::vector<verify::AppTiming>& apps,
      const verify::DiscreteVerifier::Options& options);

  /// Reassemble the canonical key from its decomposition.
  [[nodiscard]] static SlotConfigKey of(const SlotPopulationTokens& tokens);

  /// The options suffix ("p=..;d=..;s=..") of this key — the grouping
  /// domain of the subsumption index. Works for canonical and ordered
  /// keys alike: app tokens and the "ord:" tag draw from [0-9,;+-:], so
  /// '=' first appears in the suffix.
  [[nodiscard]] std::string_view options_suffix() const;

  /// Key of the *ordered* prefix apps[0 .. prefix_len): the identity of a
  /// reachable-set snapshot (engine/oracle/snapshot_cache.h). Unlike the
  /// canonical set key above, member order is preserved — a snapshot's
  /// packed records assign byte positions by app index, so it is only
  /// reusable by a probe whose first prefix_len members match in order.
  /// First-fit probes are built as "slot members in insertion order +
  /// candidate appended", which keeps these prefixes stable across the
  /// whole walk (and across solves sharing a snapshot cache). A distinct
  /// tag keeps ordered keys from ever colliding with canonical ones.
  [[nodiscard]] static SlotConfigKey prefix_of(
      const std::vector<verify::AppTiming>& apps, std::size_t prefix_len,
      const verify::DiscreteVerifier::Options& options);

  friend bool operator==(const SlotConfigKey& a, const SlotConfigKey& b) {
    return a.hash == b.hash && a.canonical == b.canonical;
  }
  friend bool operator!=(const SlotConfigKey& a, const SlotConfigKey& b) {
    return !(a == b);
  }
};

struct SlotConfigKeyHash {
  [[nodiscard]] std::size_t operator()(const SlotConfigKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash);
  }
};

}  // namespace ttdim::engine::oracle
