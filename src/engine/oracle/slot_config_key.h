// Canonical identity of an admission query: the set of applications posed
// to verify::DiscreteVerifier plus the verifier options that influence the
// verdict. The key is order-independent — first-fit probes the same slot
// population in whatever order the walk produced it, and a slot's
// admissibility does not depend on member order — and name-independent,
// because the verdict is a function of the timing parameters only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/app_timing.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {

/// Value key for the verdict cache. `canonical` is the full normalized
/// serialization (equality never trusts the hash alone: an admission
/// cache must not return a colliding entry's verdict).
struct SlotConfigKey {
  std::string canonical;
  std::uint64_t hash = 0;

  /// Build the canonical key: per-app timing serializations (T*w, r,
  /// T-dw[], T+dw[] — names excluded) sorted lexicographically, followed
  /// by the verdict-affecting options: policy, disturbance bound and the
  /// state budget (a smaller budget can turn a completed proof into a
  /// budget-exhausted throw, so sharing verdicts across budgets would
  /// make memoization observable). Witness/traversal options are
  /// excluded — the memoized oracle caches only exhaustive safe verdicts
  /// and bypasses the cache for witness queries.
  [[nodiscard]] static SlotConfigKey of(
      const std::vector<verify::AppTiming>& apps,
      const verify::DiscreteVerifier::Options& options);

  /// Key of the *ordered* prefix apps[0 .. prefix_len): the identity of a
  /// reachable-set snapshot (engine/oracle/snapshot_cache.h). Unlike the
  /// canonical set key above, member order is preserved — a snapshot's
  /// packed records assign byte positions by app index, so it is only
  /// reusable by a probe whose first prefix_len members match in order.
  /// First-fit probes are built as "slot members in insertion order +
  /// candidate appended", which keeps these prefixes stable across the
  /// whole walk (and across solves sharing a snapshot cache). A distinct
  /// tag keeps ordered keys from ever colliding with canonical ones.
  [[nodiscard]] static SlotConfigKey prefix_of(
      const std::vector<verify::AppTiming>& apps, std::size_t prefix_len,
      const verify::DiscreteVerifier::Options& options);

  friend bool operator==(const SlotConfigKey& a, const SlotConfigKey& b) {
    return a.hash == b.hash && a.canonical == b.canonical;
  }
  friend bool operator!=(const SlotConfigKey& a, const SlotConfigKey& b) {
    return !(a == b);
  }
};

struct SlotConfigKeyHash {
  [[nodiscard]] std::size_t operator()(const SlotConfigKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash);
  }
};

}  // namespace ttdim::engine::oracle
