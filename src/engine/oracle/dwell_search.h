// Parallel dwell-table search: evaluates independent candidate wait values
// concurrently (each row is a pure function of the loop and the wait) and
// assembles tables byte-identical to switching::compute_dwell_tables —
// the serial search's early stop at the first infeasible wait is
// reproduced by speculating rows in bounded chunks and truncating at the
// first infeasible row in wait order.
#pragma once

#include "switching/dwell.h"

namespace ttdim::engine::oracle {

/// Byte-identical to switching::compute_dwell_tables(loop, spec) for every
/// input, including thrown exceptions. `threads` <= 1 delegates to the
/// serial search outright; 0 uses the hardware concurrency.
[[nodiscard]] switching::DwellTables compute_dwell_tables_parallel(
    const switching::SwitchedLoop& loop,
    const switching::DwellAnalysisSpec& spec, int threads);

}  // namespace ttdim::engine::oracle
