// Thread-safe LRU cache of completed reachable-set snapshots
// (verify::ExplorationState), keyed by the *ordered* prefix key
// SlotConfigKey::prefix_of. This is the middle tier of the incremental
// admission oracle: when a first-fit probe {slot + candidate} misses the
// exact-verdict cache, the snapshot of the {slot} prefix seeds the
// verifier instead of re-proving the prefix from scratch.
//
// Snapshots are byte-heavy (3 bytes x apps x reachable states — the big
// case-study probe is ~17 MB), so the cache is bounded by a byte budget
// rather than an entry count, and entries are handed out as
// shared_ptr<const ...> so an eviction never invalidates a reader.
// Built on the unified LRU core (engine/cache/lru_cache.h) with a
// byte-cost hook.
#pragma once

#include <cstddef>
#include <memory>

#include "engine/cache/lru_cache.h"
#include "engine/oracle/slot_config_key.h"
#include "verify/discrete.h"

namespace ttdim::engine::oracle {

/// Monotonic counters (see engine::cache::LruStats for the lock-free
/// snapshot semantics).
struct SnapshotCacheStats {
  long hits = 0;
  long misses = 0;
  long insertions = 0;
  long evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t byte_budget = 0;
};

class SnapshotCache {
 public:
  /// Default byte budget: generous enough to keep every prefix of a
  /// handful of concurrent case-study-sized walks resident.
  static constexpr std::size_t kDefaultByteBudget = 256u << 20;

  explicit SnapshotCache(std::size_t byte_budget = kDefaultByteBudget);

  /// Returns the snapshot and refreshes its recency; nullptr on miss.
  [[nodiscard]] std::shared_ptr<const verify::ExplorationState> lookup(
      const SlotConfigKey& key);

  /// Inserts (no-op when the key is already present — snapshots for one
  /// key are interchangeable), evicting least-recently-used entries until
  /// the byte budget holds. A snapshot larger than the whole budget is
  /// dropped rather than inserted.
  void insert(const SlotConfigKey& key, verify::ExplorationState snapshot);

  [[nodiscard]] SnapshotCacheStats stats() const;
  void clear();

 private:
  static std::size_t cost_of(const SlotConfigKey& key,
                             const verify::ExplorationState& snapshot);

  cache::LruCache<SlotConfigKey, verify::ExplorationState, SlotConfigKeyHash>
      cache_;
};

}  // namespace ttdim::engine::oracle
