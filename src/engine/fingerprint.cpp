#include "engine/fingerprint.h"

#include <sstream>

#include "verify/table_io.h"

namespace ttdim::engine {

namespace {

void write_assignment(std::ostream& os, const char* label,
                      const mapping::SlotAssignment& assignment) {
  os << label << ' ' << assignment.slot_count() << '\n';
  for (const std::vector<int>& slot : assignment.slots) {
    os << " ";
    for (int app : slot) os << ' ' << app;
    os << '\n';
  }
}

}  // namespace

std::string fingerprint(const core::Solution& solution) {
  std::ostringstream os;
  for (const core::AppSolution& app : solution.apps) {
    verify::write_timing(os, app.timing);
    os << "jt " << app.tables.settling_tt << " je " << app.tables.settling_et
       << '\n';
    os << "stable tt " << app.stability.tt_stable << " et "
       << app.stability.et_stable << " cqlf " << app.stability.common_lyapunov
       << " degfree " << app.stability.degradation_free << '\n';
  }
  write_assignment(os, "proposed", solution.proposed);
  write_assignment(os, "baseline_np", solution.baseline_np);
  write_assignment(os, "baseline_delayed", solution.baseline_delayed);
  return os.str();
}

}  // namespace ttdim::engine
