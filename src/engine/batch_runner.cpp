#include "engine/batch_runner.h"

#include "engine/parallel_for.h"
#include "support/check.h"

namespace ttdim::engine {

BatchRunner::BatchRunner(int threads) : threads_(resolve_threads(threads)) {}

void BatchRunner::for_each_index(int n,
                                 const std::function<void(int)>& fn) const {
  parallel_for_index(threads_, n, fn);
}

std::vector<BatchOutcome> BatchRunner::solve_all(
    const std::vector<BatchJob>& jobs) const {
  std::vector<BatchOutcome> outcomes(jobs.size());
  for_each_index(static_cast<int>(jobs.size()), [&](int i) {
    const std::size_t k = static_cast<std::size_t>(i);
    try {
      outcomes[k].solution = core::solve(jobs[k].specs, jobs[k].options);
    } catch (const std::exception& e) {
      outcomes[k].error = e.what();
    }
  });
  return outcomes;
}

}  // namespace ttdim::engine
