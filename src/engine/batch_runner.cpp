#include "engine/batch_runner.h"

#include "engine/parallel_for.h"
#include "support/check.h"

namespace ttdim::engine {

std::string BatchReport::summary() const {
  return std::to_string(outcomes.size()) + " jobs, " + std::to_string(failed) +
         " failed | " + stats.summary();
}

BatchRunner::BatchRunner(int threads) : threads_(resolve_threads(threads)) {}

void BatchRunner::for_each_index(int n,
                                 const std::function<void(int)>& fn) const {
  parallel_for_index(threads_, n, fn);
}

BatchReport BatchRunner::run(const std::vector<BatchJob>& jobs) const {
  BatchReport report;
  report.outcomes.resize(jobs.size());
  for_each_index(static_cast<int>(jobs.size()), [&](int i) {
    const std::size_t k = static_cast<std::size_t>(i);
    try {
      report.outcomes[k].solution = core::solve(jobs[k].specs, jobs[k].options);
    } catch (const std::exception& e) {
      report.outcomes[k].error = e.what();
    }
  });
  for (const BatchOutcome& outcome : report.outcomes) {
    if (outcome.ok())
      report.stats = report.stats + outcome.solution->stats;
    else
      ++report.failed;
  }
  return report;
}

std::vector<BatchOutcome> BatchRunner::solve_all(
    const std::vector<BatchJob>& jobs) const {
  return run(jobs).outcomes;
}

}  // namespace ttdim::engine
