#include "verify/ta_model.h"

#include <algorithm>

#include "support/check.h"

namespace ttdim::verify {

namespace {

using ta::Automaton;
using ta::ClockCond;
using ta::Edge;
using ta::LocKind;
using ta::Location;
using ta::Rel;
using ta::VarStore;

/// Variable layout of the slot system model. All buffer manipulation
/// happens in atomic updates, so the layout is private to the builder.
struct Layout {
  int napps = 0;
  int wt0 = 0;     ///< WT[i] = wt0 + i
  int dtm0 = 0;    ///< DT-[i]
  int dtp0 = 0;    ///< DT+[i]
  int dist0 = 0;   ///< remaining disturbance budget (bounded mode) per app
  int run = 0;     ///< slot occupied flag
  int occ = 0;     ///< occupant id
  int reqid = 0;   ///< id carried by a reqTT! handshake
  int inbuf0 = 0;  ///< per app: 1 once the request reached the sorted buffer
  int len0 = 0;    ///< buffer0 length
  int buf00 = 0;   ///< buffer0 entries
  int len = 0;     ///< buffer length
  int buf0 = 0;    ///< buffer entries

  [[nodiscard]] int wt(int i) const { return wt0 + i; }
  [[nodiscard]] int dtm(int i) const { return dtm0 + i; }
  [[nodiscard]] int dtp(int i) const { return dtp0 + i; }
  [[nodiscard]] int dist(int i) const { return dist0 + i; }
  [[nodiscard]] int inbuf(int i) const { return inbuf0 + i; }
  [[nodiscard]] int b0(int i) const { return buf00 + i; }
  [[nodiscard]] int b(int i) const { return buf0 + i; }
};

/// App automaton location indices (paper Fig. 5).
enum AppLoc : int {
  kLocSteady = 0,
  kLocWait = 1,
  kLocTt = 2,
  kLocSafe = 3,
  kLocError = 4
};

/// Scheduler automaton location indices (paper Fig. 7; U* are the
/// committed per-sample sequence).
enum SchedLoc : int {
  kLocW = 0,   // waiting for the next sample, invariant x <= 1
  kLocU1 = 1,  // transfer buffer0 -> buffer (Policy/Sort, Fig. 6)
  kLocU2 = 2,  // occupant bookkeeping: evict / preempt / stay
  kLocU3 = 3,  // grant
  kLocU4 = 4   // close the sample: reset x
};

}  // namespace

ta::ZoneChecker::Goal SlotSystemModel::error_reachable_goal() const {
  const std::vector<int> automata = app_automata;
  const std::vector<int> errors = error_locations;
  return [automata, errors](const std::vector<int>& locations,
                            const VarStore&) {
    for (size_t i = 0; i < automata.size(); ++i)
      if (locations[static_cast<size_t>(automata[i])] == errors[i])
        return true;
    return false;
  };
}

std::unique_ptr<SlotSystemModel> build_slot_system_model(
    const std::vector<AppTiming>& apps, int max_disturbances_per_app) {
  TTDIM_EXPECTS(!apps.empty());
  for (const AppTiming& a : apps) a.validate();
  const int napps = static_cast<int>(apps.size());

  auto model = std::make_unique<SlotSystemModel>();
  ta::Network& net = model->network;

  // ---- Clocks. -----------------------------------------------------------
  int max_dwell = 0;
  for (const AppTiming& a : apps)
    for (int v : a.t_plus) max_dwell = std::max(max_dwell, v);
  const int x = net.add_clock("x", 1);
  const int ct = net.add_clock("cT", max_dwell);
  std::vector<int> time(static_cast<size_t>(napps));
  for (int i = 0; i < napps; ++i)
    time[static_cast<size_t>(i)] = net.add_clock(
        "time_" + apps[static_cast<size_t>(i)].name,
        apps[static_cast<size_t>(i)].min_interarrival);

  // ---- Variables. --------------------------------------------------------
  Layout lay;
  lay.napps = napps;
  lay.wt0 = net.add_var("WT_0", 0);
  for (int i = 1; i < napps; ++i) net.add_var("WT_" + std::to_string(i), 0);
  lay.dtm0 = net.add_var("DTm_0", 0);
  for (int i = 1; i < napps; ++i) net.add_var("DTm_" + std::to_string(i), 0);
  lay.dtp0 = net.add_var("DTp_0", 0);
  for (int i = 1; i < napps; ++i) net.add_var("DTp_" + std::to_string(i), 0);
  const int budget =
      max_disturbances_per_app < 0 ? -1 : max_disturbances_per_app;
  lay.dist0 = net.add_var("budget_0", budget);
  for (int i = 1; i < napps; ++i)
    net.add_var("budget_" + std::to_string(i), budget);
  lay.run = net.add_var("run", 0);
  lay.occ = net.add_var("occ", 0);
  lay.reqid = net.add_var("reqid", 0);
  lay.inbuf0 = net.add_var("inbuf_0", 0);
  for (int i = 1; i < napps; ++i) net.add_var("inbuf_" + std::to_string(i), 0);
  lay.len0 = net.add_var("len0", 0);
  lay.buf00 = net.add_var("buffer0_0", -1);
  for (int i = 1; i < napps; ++i)
    net.add_var("buffer0_" + std::to_string(i), -1);
  lay.len = net.add_var("len", 0);
  lay.buf0 = net.add_var("buffer_0", -1);
  for (int i = 1; i < napps; ++i)
    net.add_var("buffer_" + std::to_string(i), -1);

  // ---- Channels. ----------------------------------------------------------
  const int req_tt = net.add_channel("reqTT");
  std::vector<int> get_tt(static_cast<size_t>(napps));
  std::vector<int> leave_tt(static_cast<size_t>(napps));
  for (int i = 0; i < napps; ++i) {
    get_tt[static_cast<size_t>(i)] =
        net.add_channel("getTT_" + apps[static_cast<size_t>(i)].name);
    leave_tt[static_cast<size_t>(i)] =
        net.add_channel("leaveTT_" + apps[static_cast<size_t>(i)].name);
  }

  // ---- Application automata (Fig. 5). -------------------------------------
  for (int i = 0; i < napps; ++i) {
    const AppTiming& app = apps[static_cast<size_t>(i)];
    Automaton a;
    a.name = app.name;
    a.locations.resize(5);
    a.locations[kLocSteady] = {"Steady", LocKind::Normal, {}};
    a.locations[kLocWait] = {"ET_Wait", LocKind::Normal, {}};
    a.locations[kLocTt] = {"TT", LocKind::Normal, {}};
    a.locations[kLocSafe] = {"ET_SAFE",
                             LocKind::Normal,
                             {{time[static_cast<size_t>(i)], Rel::Le,
                               app.min_interarrival, nullptr}}};
    a.locations[kLocError] = {"Error", LocKind::Normal, {}};

    // Steady -> ET_Wait on a disturbance: announce the id over reqTT!.
    Edge disturb;
    disturb.from = kLocSteady;
    disturb.to = kLocWait;
    disturb.sync = {req_tt, true};
    disturb.label = app.name + ".disturb";
    disturb.clock_resets = {time[static_cast<size_t>(i)]};
    const int dist_i = lay.dist(i);
    const int reqid_var = lay.reqid;
    disturb.data_guard = [dist_i](const VarStore& vars) {
      return vars[dist_i] != 0;  // budget left (or unbounded == -1)
    };
    disturb.update = [dist_i, reqid_var, i](VarStore& vars) {
      if (vars[dist_i] > 0) --vars[dist_i];
      vars[reqid_var] = i;
    };
    a.edges.push_back(std::move(disturb));

    // ET_Wait -> Error once the clock passes T*w. The wait budget starts
    // when the scheduler transfers the request into the sorted buffer (the
    // clock is reset there and WT counts from there; a request sent
    // mid-sample is seen at the next tick, exactly like the discrete
    // verifier's semantics).
    Edge error;
    error.from = kLocWait;
    error.to = kLocError;
    error.clock_guards.push_back(
        {time[static_cast<size_t>(i)], Rel::Gt, app.t_star_w, nullptr});
    {
      const int inbuf_i = lay.inbuf(i);
      error.data_guard = [inbuf_i](const VarStore& vars) {
        return vars[inbuf_i] == 1;
      };
    }
    error.label = app.name + ".error";
    a.edges.push_back(std::move(error));

    // ET_Wait -> TT on grant; look up the dwell window from WT (paper
    // Fig. 5: "DT-[id]=minTT(), DT+[id]=maxTT()").
    Edge grant;
    grant.from = kLocWait;
    grant.to = kLocTt;
    grant.sync = {get_tt[static_cast<size_t>(i)], false};
    grant.label = app.name + ".grant";
    {
      const int wt_i = lay.wt(i);
      const int dtm_i = lay.dtm(i);
      const int dtp_i = lay.dtp(i);
      const std::vector<int> tmin = app.t_minus;
      const std::vector<int> tplus = app.t_plus;
      grant.update = [wt_i, dtm_i, dtp_i, tmin, tplus](VarStore& vars) {
        const int w = std::clamp<int>(vars[wt_i], 0,
                                      static_cast<int>(tmin.size()) - 1);
        vars[dtm_i] = tmin[static_cast<size_t>(w)];
        vars[dtp_i] = tplus[static_cast<size_t>(w)];
      };
    }
    a.edges.push_back(std::move(grant));

    // TT -> ET_SAFE when preempted / evicted by the scheduler.
    Edge leave;
    leave.from = kLocTt;
    leave.to = kLocSafe;
    leave.sync = {leave_tt[static_cast<size_t>(i)], false};
    leave.label = app.name + ".leave";
    a.edges.push_back(std::move(leave));

    // ET_SAFE -> Steady once the minimum inter-arrival time has elapsed.
    Edge calm;
    calm.from = kLocSafe;
    calm.to = kLocSteady;
    calm.clock_guards.push_back({time[static_cast<size_t>(i)], Rel::Eq,
                                 app.min_interarrival, nullptr});
    calm.label = app.name + ".steady";
    a.edges.push_back(std::move(calm));

    model->app_automata.push_back(net.add_automaton(std::move(a)));
    model->error_locations.push_back(kLocError);
  }

  // ---- Scheduler automaton (Fig. 7, with Fig. 6 folded into updates). ----
  Automaton sched;
  sched.name = "scheduler";
  sched.locations.resize(5);
  sched.locations[kLocW] = {"W", LocKind::Normal, {{x, Rel::Le, 1, nullptr}}};
  sched.locations[kLocU1] = {"U1_transfer", LocKind::Committed, {}};
  sched.locations[kLocU2] = {"U2_slot", LocKind::Committed, {}};
  sched.locations[kLocU3] = {"U3_grant", LocKind::Committed, {}};
  sched.locations[kLocU4] = {"U4_done", LocKind::Committed, {}};

  // Asynchronous request registration (any time within the sample).
  Edge reg;
  reg.from = kLocW;
  reg.to = kLocW;
  reg.sync = {req_tt, false};
  reg.label = "sched.register";
  {
    const Layout l = lay;
    reg.update = [l](VarStore& vars) {
      TTDIM_CHECK(vars[l.len0] < l.napps);
      vars[l.b0(vars[l.len0])] = vars[l.reqid];
      ++vars[l.len0];
    };
  }
  sched.edges.push_back(std::move(reg));

  // Sample boundary: x == 1 starts the committed sequence; WT++ for the
  // applications already in the sorted buffer (paper: upd_WT()).
  Edge tick;
  tick.from = kLocW;
  tick.to = kLocU1;
  tick.clock_guards.push_back({x, Rel::Eq, 1, nullptr});
  tick.label = "sched.tick";
  {
    const Layout l = lay;
    std::vector<int> tstar(static_cast<size_t>(napps));
    for (int i = 0; i < napps; ++i)
      tstar[static_cast<size_t>(i)] = apps[static_cast<size_t>(i)].t_star_w;
    tick.update = [l, tstar](VarStore& vars) {
      for (int k = 0; k < vars[l.len]; ++k) {
        const int id = vars[l.b(k)];
        // Cap at T*w + 1: beyond that the app automaton's Error transition
        // is enabled and dwell lookups are clamped anyway.
        vars[l.wt(id)] =
            std::min(vars[l.wt(id)] + 1, tstar[static_cast<size_t>(id)] + 1);
      }
    };
  }
  sched.edges.push_back(std::move(tick));

  // U1: transfer one buffer0 entry at a time into the EDF-sorted buffer,
  // resetting that application's clock and WT (paper Fig. 6). One edge per
  // application id so the (static) clock reset can name the right clock.
  for (int i = 0; i < napps; ++i) {
    Edge move;
    move.from = kLocU1;
    move.to = kLocU1;
    move.label = "sched.transfer_" + apps[static_cast<size_t>(i)].name;
    move.clock_resets = {time[static_cast<size_t>(i)]};
    const Layout l = lay;
    std::vector<int> tstar(static_cast<size_t>(napps));
    for (int k = 0; k < napps; ++k)
      tstar[static_cast<size_t>(k)] = apps[static_cast<size_t>(k)].t_star_w;
    move.data_guard = [l, i](const VarStore& vars) {
      return vars[l.len0] > 0 && vars[l.b0(0)] == i;
    };
    move.update = [l, tstar, i](VarStore& vars) {
      vars[l.inbuf(i)] = 1;
      // Pop the head of buffer0.
      for (int k = 1; k < vars[l.len0]; ++k) vars[l.b0(k - 1)] = vars[l.b0(k)];
      vars[l.b0(vars[l.len0] - 1)] = -1;
      --vars[l.len0];
      vars[l.wt(i)] = 0;
      // Sorted insert by remaining deadline T*w - WT (FIFO among equals).
      const int remaining_new = tstar[static_cast<size_t>(i)];
      int pos = 0;
      while (pos < vars[l.len]) {
        const int other = vars[l.b(pos)];
        const int remaining_other =
            tstar[static_cast<size_t>(other)] - vars[l.wt(other)];
        if (remaining_other > remaining_new) break;
        ++pos;
      }
      for (int k = vars[l.len]; k > pos; --k) vars[l.b(k)] = vars[l.b(k - 1)];
      vars[l.b(pos)] = i;
      ++vars[l.len];
    };
    sched.edges.push_back(std::move(move));
  }
  Edge transfer_done;
  transfer_done.from = kLocU1;
  transfer_done.to = kLocU2;
  transfer_done.label = "sched.transfer_done";
  {
    const Layout l = lay;
    transfer_done.data_guard = [l](const VarStore& vars) {
      return vars[l.len0] == 0;
    };
  }
  sched.edges.push_back(std::move(transfer_done));

  // U2: occupant bookkeeping. One evict / preempt / stay family per id so
  // clock bounds can reference that id's DT-/DT+ variables.
  {
    const Layout l = lay;
    // Idle slot: straight to grant.
    Edge idle;
    idle.from = kLocU2;
    idle.to = kLocU3;
    idle.label = "sched.idle";
    idle.data_guard = [l](const VarStore& vars) { return vars[l.run] == 0; };
    sched.edges.push_back(std::move(idle));
  }
  for (int i = 0; i < napps; ++i) {
    const Layout l = lay;
    const auto occ_is_i = [l, i](const VarStore& vars) {
      return vars[l.run] == 1 && vars[l.occ] == i;
    };
    const auto dtm_bound = [l, i](const VarStore& vars) {
      return vars[l.dtm(i)];
    };
    const auto dtp_bound = [l, i](const VarStore& vars) {
      return vars[l.dtp(i)];
    };

    Edge evict;
    evict.from = kLocU2;
    evict.to = kLocU3;
    evict.sync = {leave_tt[static_cast<size_t>(i)], true};
    evict.label = "sched.evict_" + apps[static_cast<size_t>(i)].name;
    evict.data_guard = occ_is_i;
    evict.clock_guards.push_back({ct, Rel::Eq, 0, dtp_bound});
    evict.update = [l](VarStore& vars) { vars[l.run] = 0; };
    sched.edges.push_back(std::move(evict));

    Edge preempt;
    preempt.from = kLocU2;
    preempt.to = kLocU3;
    preempt.sync = {leave_tt[static_cast<size_t>(i)], true};
    preempt.label = "sched.preempt_" + apps[static_cast<size_t>(i)].name;
    preempt.data_guard = [l, occ_is_i](const VarStore& vars) {
      return occ_is_i(vars) && vars[l.len] > 0;
    };
    preempt.clock_guards.push_back({ct, Rel::Ge, 0, dtm_bound});
    preempt.clock_guards.push_back({ct, Rel::Lt, 0, dtp_bound});
    preempt.update = [l](VarStore& vars) { vars[l.run] = 0; };
    sched.edges.push_back(std::move(preempt));

    // Stay: below the non-preemptive window's end, or no waiter.
    Edge stay_young;
    stay_young.from = kLocU2;
    stay_young.to = kLocU4;
    stay_young.label = "sched.stay_" + apps[static_cast<size_t>(i)].name;
    stay_young.data_guard = occ_is_i;
    stay_young.clock_guards.push_back({ct, Rel::Lt, 0, dtm_bound});
    sched.edges.push_back(std::move(stay_young));

    Edge stay_alone;
    stay_alone.from = kLocU2;
    stay_alone.to = kLocU4;
    stay_alone.label = "sched.hold_" + apps[static_cast<size_t>(i)].name;
    stay_alone.data_guard = [l, occ_is_i](const VarStore& vars) {
      return occ_is_i(vars) && vars[l.len] == 0;
    };
    stay_alone.clock_guards.push_back({ct, Rel::Ge, 0, dtm_bound});
    stay_alone.clock_guards.push_back({ct, Rel::Lt, 0, dtp_bound});
    sched.edges.push_back(std::move(stay_alone));
  }

  // U3: grant the buffer head (if any), else fall through.
  for (int i = 0; i < napps; ++i) {
    const Layout l = lay;
    Edge grant;
    grant.from = kLocU3;
    grant.to = kLocU4;
    grant.sync = {get_tt[static_cast<size_t>(i)], true};
    grant.label = "sched.grant_" + apps[static_cast<size_t>(i)].name;
    grant.clock_resets = {ct};
    grant.data_guard = [l, i](const VarStore& vars) {
      return vars[l.run] == 0 && vars[l.len] > 0 && vars[l.b(0)] == i;
    };
    grant.update = [l, i](VarStore& vars) {
      for (int k = 1; k < vars[l.len]; ++k) vars[l.b(k - 1)] = vars[l.b(k)];
      vars[l.b(vars[l.len] - 1)] = -1;
      --vars[l.len];
      vars[l.run] = 1;
      vars[l.occ] = i;
      vars[l.inbuf(i)] = 0;
    };
    sched.edges.push_back(std::move(grant));
  }
  {
    const Layout l = lay;
    Edge no_grant;
    no_grant.from = kLocU3;
    no_grant.to = kLocU4;
    no_grant.label = "sched.no_grant";
    no_grant.data_guard = [l](const VarStore& vars) {
      return vars[l.run] == 1 || vars[l.len] == 0;
    };
    sched.edges.push_back(std::move(no_grant));
  }

  // U4: close the sample.
  Edge close;
  close.from = kLocU4;
  close.to = kLocW;
  close.clock_resets = {x};
  close.label = "sched.close";
  sched.edges.push_back(std::move(close));

  net.add_automaton(std::move(sched));
  return model;
}

ZoneVerifier::ZoneVerifier(std::vector<AppTiming> apps)
    : apps_(std::move(apps)) {
  TTDIM_EXPECTS(!apps_.empty());
}

SlotVerdict ZoneVerifier::verify(const Options& options) const {
  const std::unique_ptr<SlotSystemModel> model =
      build_slot_system_model(apps_, options.max_disturbances_per_app);
  ta::ZoneChecker checker(model->network);
  ta::ZoneChecker::Options zopt;
  zopt.max_states = options.max_states;
  zopt.want_trace = true;
  const ta::ReachResult result =
      checker.reachable(model->error_reachable_goal(), zopt);
  SlotVerdict verdict;
  verdict.safe = !result.reachable;
  verdict.states_explored = result.states_explored;
  for (const ta::TraceStep& step : result.trace)
    verdict.witness.push_back(step.action);
  return verdict;
}

}  // namespace ttdim::verify
