#include "verify/table_io.h"

#include <sstream>
#include <stdexcept>

#include "switching/dwell.h"

namespace ttdim::verify {

namespace {

void write_rle(std::ostream& os, const char* tag,
               const std::vector<int>& values) {
  os << tag;
  for (const switching::RunLengthTable::Run& run : switching::RunLengthTable::encode(values).runs)
    os << " " << run.length << " " << run.value;
  os << "\n";
}

std::vector<int> read_rle(std::istringstream& line, const std::string& tag) {
  switching::RunLengthTable table;
  int length = 0;
  int value = 0;
  while (line >> length) {
    if (!(line >> value))
      throw std::invalid_argument("table_io: dangling run length in " + tag);
    if (length <= 0)
      throw std::invalid_argument("table_io: non-positive run length in " +
                                  tag);
    table.runs.push_back({length, value});
  }
  return table.decode();
}

std::string expect_line(std::istream& is, const std::string& keyword) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string head;
    ss >> head;
    if (head != keyword)
      throw std::invalid_argument("table_io: expected '" + keyword +
                                  "', got '" + head + "'");
    std::string rest;
    std::getline(ss, rest);
    return rest;
  }
  throw std::invalid_argument("table_io: unexpected end of input, wanted '" +
                              keyword + "'");
}

}  // namespace

void write_timing(std::ostream& os, const AppTiming& timing) {
  timing.validate();
  os << "app " << timing.name << "\n";
  os << "r " << timing.min_interarrival << "\n";
  os << "tstar " << timing.t_star_w << "\n";
  write_rle(os, "tminus", timing.t_minus);
  write_rle(os, "tplus", timing.t_plus);
  os << "end\n";
}

std::string timing_to_string(const AppTiming& timing) {
  std::ostringstream os;
  write_timing(os, timing);
  return os.str();
}

AppTiming read_timing(std::istream& is) {
  AppTiming t;
  {
    std::istringstream ss(expect_line(is, "app"));
    ss >> t.name;
    if (t.name.empty())
      throw std::invalid_argument("table_io: empty application name");
  }
  {
    std::istringstream ss(expect_line(is, "r"));
    if (!(ss >> t.min_interarrival))
      throw std::invalid_argument("table_io: malformed r");
  }
  {
    std::istringstream ss(expect_line(is, "tstar"));
    if (!(ss >> t.t_star_w))
      throw std::invalid_argument("table_io: malformed tstar");
  }
  {
    std::istringstream ss(expect_line(is, "tminus"));
    t.t_minus = read_rle(ss, "tminus");
  }
  {
    std::istringstream ss(expect_line(is, "tplus"));
    t.t_plus = read_rle(ss, "tplus");
  }
  static_cast<void>(expect_line(is, "end"));
  t.validate();
  return t;
}

AppTiming timing_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_timing(is);
}

void write_timings(std::ostream& os,
                   const std::vector<AppTiming>& timings) {
  for (const AppTiming& t : timings) write_timing(os, t);
}

std::vector<AppTiming> read_timings(std::istream& is) {
  std::vector<AppTiming> out;
  while (true) {
    // Peek for another block.
    std::streampos pos = is.tellg();
    std::string line;
    bool more = false;
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      more = true;
      break;
    }
    if (!more) break;
    is.clear();
    is.seekg(pos);
    out.push_back(read_timing(is));
  }
  return out;
}

}  // namespace ttdim::verify
