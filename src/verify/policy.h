// Slot arbitration policies.
//
// kPaper is the strategy verified in the paper: an occupant past its
// minimum dwell T-dw is preempted the moment anyone waits.
//
// kSlackAware implements the paper's concluding remark ("in certain cases,
// delaying the preemption might improve the performance of the current
// occupant ... without degrading the performance of the waiting
// applications"): preemption is postponed while every waiter provably
// still makes its deadline, letting the occupant run closer to T+dw and
// improve its settling time. The postponement test is conservative —
// waiters are assumed to need their worst-case minimum dwell at grant —
// so safety is preserved by construction and re-checked by the verifier
// (DiscreteVerifier supports both policies; see tests/policy_test.cpp).
#pragma once

#include <vector>

#include "verify/app_timing.h"

namespace ttdim::verify {

enum class SlotPolicy {
  kPaper,       ///< preempt at T-dw whenever someone waits
  kSlackAware,  ///< postpone preemption while all waiters keep slack
};

/// One waiting application as seen by the postponement test.
struct WaiterView {
  int app = 0;      ///< index into the timing vector
  int waited = 0;   ///< samples waited so far (WT)
};

/// Conservative test: if the occupant stays one more sample, can every
/// waiter still be granted by its T*w assuming each earlier (EDF-ordered)
/// grant occupies the slot for its worst-case minimum dwell?
///
/// Soundness requires covering applications that have not requested yet:
/// a later arrival with a tighter deadline jumps the EDF queue ahead of a
/// current waiter, so every idle application (`occupant` excluded) is
/// added as a *potential* waiter with zero elapsed wait. All (real and
/// potential) waiters are examined in EDF order (ascending remaining
/// deadline); the projected wait of the k-th entry is
///   WT_k + 1 (postponement) + sum of max-T-dw of the k-1 earlier entries,
/// and all projections must stay within the respective T*w. Re-evaluated
/// every sample, this bounds each postponement step inductively.
[[nodiscard]] bool preemption_postponable(
    const std::vector<AppTiming>& apps,
    const std::vector<WaiterView>& waiters, int occupant);

}  // namespace ttdim::verify
