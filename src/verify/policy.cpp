#include "verify/policy.h"

#include <algorithm>

#include "support/check.h"

namespace ttdim::verify {

bool preemption_postponable(const std::vector<AppTiming>& apps,
                            const std::vector<WaiterView>& waiters,
                            int occupant) {
  if (waiters.empty()) return true;
  std::vector<WaiterView> ordered = waiters;
  // Potential arrivals: every application that is neither waiting nor the
  // occupant could request next sample with its full budget and jump the
  // EDF queue; budget their dwell ahead of slower current waiters.
  std::vector<bool> present(apps.size(), false);
  for (const WaiterView& w : waiters)
    present[static_cast<size_t>(w.app)] = true;
  for (size_t i = 0; i < apps.size(); ++i)
    if (!present[i] && static_cast<int>(i) != occupant)
      ordered.push_back({static_cast<int>(i), 0});
  // Every entry must tolerate the worst-case EDF service order: all
  // entries with a strictly earlier remaining deadline go first, and —
  // because equal deadlines are tie-broken nondeterministically — so does
  // every equal-deadline peer. Each earlier grant occupies the slot for at
  // least its minimum dwell; bound it by the table maximum (the wait at
  // grant is not known exactly under postponement).
  const auto remaining = [&](const WaiterView& w) {
    return apps[static_cast<size_t>(w.app)].t_star_w - w.waited;
  };
  const auto max_t_minus = [&](const WaiterView& w) {
    int m = 0;
    for (int v : apps[static_cast<size_t>(w.app)].t_minus)
      m = std::max(m, v);
    return m;
  };
  for (const WaiterView& w : ordered) {
    int queue_delay = 0;
    for (const WaiterView& v : ordered) {
      if (&v == &w) continue;
      if (remaining(v) <= remaining(w)) queue_delay += max_t_minus(v);
    }
    const AppTiming& t = apps[static_cast<size_t>(w.app)];
    if (w.waited + 1 + queue_delay > t.t_star_w) return false;
  }
  return true;
}

}  // namespace ttdim::verify
