// Dedup machinery of the discrete-time verifier's BFS: packed state keys,
// the word-at-a-time key hash, the open-addressing VisitedSet, and the
// striped (sharded-by-hash) variant the Executor-parallel proof driver
// deduplicates through.
//
// Everything here used to live in discrete.cpp's anonymous namespace; it
// is a header so (a) the serial and parallel drivers share one growth /
// load-factor policy, and (b) the striped set's GUARDED_BY/REQUIRES
// contracts are visible to the configure-time thread-safety probes
// (tests/compile_fail/striped_unguarded_fails.cpp must NOT compile under
// clang -Wthread-safety). The types are verifier internals — nothing
// outside src/verify/ and the compile probes should include this.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "support/check.h"
#include "support/thread_annotations.h"

namespace ttdim::verify::detail {

constexpr std::size_t round8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

/// Fixed-capacity dedup key: three bytes per application (mode and
/// disturbance budget share a byte), zero-padded to the capacity so
/// hashing reads whole 8-byte words without touching the heap. Two
/// capacities are instantiated: 16 bytes covers up to 5 applications (the
/// hot mapping-walk probes — halving the key keeps the visited table and
/// queue cache-resident far longer), 48 bytes covers the full packed cap
/// of DiscreteVerifier::kMaxApps.
template <std::size_t Cap>
struct SmallKey {
  static_assert(Cap % 8 == 0, "hashing reads whole 8-byte words");
  std::array<std::uint8_t, Cap> bytes{};
  std::uint8_t len = 0;  ///< 0 marks an empty visited-table slot

  /// Small capacities hash the whole (zero-padded) array: the trip count
  /// becomes a compile-time constant and padded words mix in nothing but
  /// zeros. Larger capacities hash only the occupied words.
  static constexpr std::size_t kFixedHashSpan = Cap <= 16 ? Cap : 0;

  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return bytes.data();
  }
  [[nodiscard]] std::uint8_t* data() noexcept { return bytes.data(); }
  [[nodiscard]] bool empty() const noexcept { return len == 0; }

  friend bool operator==(const SmallKey& a, const SmallKey& b) {
    // Fixed-size compare inlines to a couple of word compares; the
    // padding beyond len is zero on both sides, so it never flips the
    // answer for keys of equal length (all keys of one run share len).
    return a.len == b.len &&
           std::memcmp(a.bytes.data(), b.bytes.data(), Cap) == 0;
  }
  friend bool operator!=(const SmallKey& a, const SmallKey& b) {
    return !(a == b);
  }
};

/// Heap-backed key for populations beyond the packed cap (> kMaxApps
/// applications): same 3-bytes-per-app layout, storage rounded up to whole
/// words and zero-padded so the shared hash loop applies unchanged. This
/// is the compatibility fallback — per-state allocation is acceptable
/// because the disturbance branching dominates long before key traffic
/// does at such sizes.
struct HeapKey {
  std::vector<std::uint8_t> bytes;  ///< size == round8(len), zero-padded
  std::uint16_t len = 0;

  static constexpr std::size_t kFixedHashSpan = 0;  ///< length-bounded hashing

  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return bytes.data();
  }
  [[nodiscard]] std::uint8_t* data() noexcept { return bytes.data(); }
  [[nodiscard]] bool empty() const noexcept { return len == 0; }

  friend bool operator==(const HeapKey& a, const HeapKey& b) {
    return a.len == b.len && a.bytes == b.bytes;
  }
  friend bool operator!=(const HeapKey& a, const HeapKey& b) {
    return !(a == b);
  }
};

/// Word-at-a-time mix (splitmix-style) over the zero-padded key, bounded
/// by the words the key actually occupies — all keys of one run share a
/// length, so the trailing zero padding inside the last word is
/// collision-neutral and the loop trip count is minimal.
template <typename Key>
struct KeyHash {
  std::size_t operator()(const Key& k) const noexcept {
    std::uint64_t h = 0x9E3779B97F4A7C15ull ^ k.len;
    const std::uint8_t* data = k.data();
    const std::size_t words = Key::kFixedHashSpan != 0
                                  ? Key::kFixedHashSpan  // constant trip count
                                  : round8(k.len);
    for (std::size_t off = 0; off < words; off += 8) {
      std::uint64_t w;
      std::memcpy(&w, data + off, 8);
      h = (h ^ w) * 0xFF51AFD7ED558CCDull;
      h ^= h >> 29;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Open-addressing visited set: linear probing over flat key slots
/// (emptiness is the key's own len == 0 marker, so a slot carries no
/// metadata beyond the key bytes — at 17 bytes per 5-app slot the table
/// stays several times smaller than a node-based set and the BFS's tens
/// of millions of membership-or-insert probes stay in cache accordingly).
///
/// Growth policy (shared by the serial and the striped parallel paths):
/// capacity is always a power of two sized once, up front, to the 0.75
/// load-factor bound — reserve()/ensure_room() round the expected key
/// count up to the bound, so the hot probe loop (insert_hashed) carries
/// no growth check at all. Callers either use the checked insert()
/// convenience, or batch: hash a block of candidates, ensure_room(block),
/// prefetch() every home slot, then insert_hashed() in order — the
/// prefetches overlap the probe loop's dependent loads, hiding the
/// memory latency that dominates once the table outgrows the cache.
template <typename Key>
class VisitedSet {
 public:
  /// Default sizing matches the BFS workloads (a few hundred thousand
  /// states); the striped set passes a smaller initial capacity since it
  /// splits one logical table 64 ways.
  explicit VisitedSet(std::size_t initial_capacity = std::size_t{1} << 16) {
    rehash(initial_capacity);
  }

  [[nodiscard]] static std::size_t hash_of(const Key& k) noexcept {
    return KeyHash<Key>{}(k);
  }

  /// Pre-sizes for `n` expected keys: rounds the capacity up (power-of-two
  /// doubling) until `n` keys fit under the 0.75 load-factor bound. This
  /// is the one place the growth decision lives — insert_hashed() never
  /// re-checks it.
  void reserve(std::size_t n) {
    std::size_t capacity = mask_ + 1;
    while (capacity - capacity / 4 < n) capacity *= 2;
    if (capacity > mask_ + 1) rehash(capacity);
  }

  /// Guarantees the next `n` insert_hashed() calls stay under the load
  /// bound without any per-insert growth check.
  void ensure_room(std::size_t n) {
    if (size_ + n > grow_at_) reserve(size_ + n);
  }

  /// Pulls the home slot of `hash` toward the cache ahead of its
  /// insert_hashed() probe. Only valid between an ensure_room() covering
  /// the pending block and the inserts themselves (a rehash in between
  /// would re-home every slot).
  void prefetch(std::size_t hash) const {
    __builtin_prefetch(&slots_[hash & mask_]);
  }

  /// True when the key was newly inserted (i.e. not seen before). The
  /// caller guarantees room via a preceding ensure_room()/reserve() —
  /// the probe loop itself never grows the table.
  bool insert_hashed(std::size_t hash, const Key& k) {
    std::size_t i = hash & mask_;
    for (;;) {
      Key& s = slots_[i];
      if (s.empty()) {
        s = k;
        ++size_;
        return true;
      }
      if (s == k) return false;
      i = (i + 1) & mask_;
    }
  }

  /// Checked single-key convenience (seeding, cold paths).
  bool insert(const Key& k) {
    ensure_room(1);
    return insert_hashed(hash_of(k), k);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  void rehash(std::size_t capacity) {
    std::vector<Key> old = std::move(slots_);
    slots_.assign(capacity, Key{});
    mask_ = capacity - 1;
    grow_at_ = capacity - capacity / 4;  // load factor 0.75
    for (Key& k : old) {
      if (k.empty()) continue;
      std::size_t i = KeyHash<Key>{}(k)&mask_;
      while (!slots_[i].empty()) i = (i + 1) & mask_;
      slots_[i] = std::move(k);
    }
  }

  std::vector<Key> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t grow_at_ = 0;
};

constexpr std::size_t log2_floor(std::size_t n) {
  std::size_t b = 0;
  while (n > 1) {
    n >>= 1;
    ++b;
  }
  return b;
}

/// The parallel proof driver's visited set: one VisitedSet per stripe,
/// sharded by the TOP bits of the key hash (the per-stripe tables index
/// by the low bits, so the two selections never alias). Per-thread
/// frontier chunks batch their candidate keys by stripe and take each
/// stripe lock once per flush — with 64 stripes and a handful of worker
/// threads, lock contention is negligible next to the expansion work.
///
/// The locking discipline is machine-checked: each stripe's table is
/// GUARDED_BY its mutex and the batched helpers carry REQUIRES, so the
/// clang -Wthread-safety lane proves every access path — the negative
/// configure probe (striped_unguarded_fails.cpp) proves the proof is
/// alive by failing to compile an unguarded stripe access.
template <typename Key, std::size_t kStripes = 64>
class StripedVisitedSet {
  static_assert(kStripes >= 2 && (kStripes & (kStripes - 1)) == 0,
                "stripe count must be a power of two");

 public:
  struct Stripe {
    support::Mutex mu;
    VisitedSet<Key> set GUARDED_BY(mu) =
        VisitedSet<Key>(std::size_t{1} << 10);
  };

  static constexpr std::size_t kNumStripes = kStripes;
  static constexpr std::size_t kStripeBits = log2_floor(kStripes);

  /// Stripe selector: top hash bits, disjoint from the in-table index
  /// bits (hash & mask), so shard skew never correlates with probe
  /// clustering.
  [[nodiscard]] static constexpr std::size_t stripe_index(
      std::size_t hash) noexcept {
    return hash >> (sizeof(std::size_t) * 8 - kStripeBits);
  }

  [[nodiscard]] Stripe& stripe_of(std::size_t hash) noexcept {
    return stripes_[stripe_index(hash)];
  }
  [[nodiscard]] Stripe& stripe_at(std::size_t index) noexcept {
    return stripes_[index];
  }

  /// Batched-flush protocol, under one lock acquisition per stripe:
  /// reserve_in_stripe(count) once, then insert_in_stripe() for each
  /// candidate — the growth check runs once per flush, not once per
  /// probe, exactly like the serial ensure_room()/insert_hashed() pair.
  void reserve_in_stripe(Stripe& stripe, std::size_t n) REQUIRES(stripe.mu) {
    stripe.set.ensure_room(n);
  }

  /// True when newly inserted. Requires a preceding reserve_in_stripe()
  /// covering the flush (same contract as VisitedSet::insert_hashed).
  bool insert_in_stripe(Stripe& stripe, std::size_t hash, const Key& k)
      REQUIRES(stripe.mu) {
    return stripe.set.insert_hashed(hash, k);
  }

  /// Checked single-key convenience (seeding the initial state).
  bool insert(std::size_t hash, const Key& k) {
    Stripe& stripe = stripe_of(hash);
    support::MutexLock lock(stripe.mu);
    stripe.set.ensure_room(1);
    return stripe.set.insert_hashed(hash, k);
  }

  /// Total keys across stripes (quiescent callers only — the per-stripe
  /// locks are taken one at a time, so a concurrent insert can be missed).
  [[nodiscard]] std::size_t size() {
    std::size_t total = 0;
    for (Stripe& stripe : stripes_) {
      support::MutexLock lock(stripe.mu);
      total += stripe.set.size();
    }
    return total;
  }

 private:
  std::array<Stripe, kStripes> stripes_;
};

}  // namespace ttdim::verify::detail
