#include "verify/app_timing.h"

#include <algorithm>
#include <stdexcept>

namespace ttdim::verify {

void AppTiming::validate() const {
  if (t_star_w < 0)
    throw std::invalid_argument("AppTiming " + name + ": negative T*w");
  const size_t want = static_cast<size_t>(t_star_w) + 1;
  if (t_minus.size() != want || t_plus.size() != want)
    throw std::invalid_argument("AppTiming " + name +
                                ": dwell tables must have T*w + 1 entries");
  for (size_t i = 0; i < want; ++i) {
    if (t_minus[i] < 1)
      throw std::invalid_argument("AppTiming " + name +
                                  ": T-dw entries must be >= 1");
    if (t_minus[i] > t_plus[i])
      throw std::invalid_argument("AppTiming " + name + ": T-dw > T+dw");
  }
  if (min_interarrival <= t_star_w)
    throw std::invalid_argument(
        "AppTiming " + name +
        ": min inter-arrival r must exceed the maximum wait T*w");
  // The sporadic model of the paper has J <= J* < r, and a TT episode ends
  // by Tw + T+dw(Tw) <= J: the slot episode must be over (and the loop
  // back in steady state) before the next disturbance may arrive.
  for (size_t w = 0; w < want; ++w) {
    if (static_cast<int>(w) + t_plus[w] >= min_interarrival)
      throw std::invalid_argument(
          "AppTiming " + name +
          ": wait + T+dw must stay below the min inter-arrival r");
  }
}

int max_dwell(const AppTiming& timing) {
  int m = 0;
  for (int v : timing.t_plus) m = std::max(m, v);
  return m;
}

AppTiming make_app_timing(const std::string& name,
                          const switching::DwellTables& tables,
                          int min_interarrival) {
  if (!tables.feasible())
    throw std::invalid_argument("make_app_timing(" + name +
                                "): infeasible dwell tables");
  AppTiming t;
  t.name = name;
  t.t_star_w = tables.t_star_w;
  t.min_interarrival = min_interarrival;
  t.t_minus.reserve(static_cast<size_t>(tables.t_star_w) + 1);
  t.t_plus.reserve(static_cast<size_t>(tables.t_star_w) + 1);
  for (int wait = 0; wait <= tables.t_star_w; ++wait) {
    t.t_minus.push_back(tables.t_minus_at(wait));
    t.t_plus.push_back(tables.t_plus_at(wait));
  }
  t.validate();
  return t;
}

void encode(support::codec::Encoder& enc, const AppTiming& timing) {
  enc.str(timing.name);
  enc.i32(timing.t_star_w);
  enc.ints(timing.t_minus);
  enc.ints(timing.t_plus);
  enc.i32(timing.min_interarrival);
}

bool decode(support::codec::Decoder& dec, AppTiming& timing) {
  timing = AppTiming{};
  return dec.str(timing.name) && dec.i32(timing.t_star_w) &&
         dec.ints(timing.t_minus) && dec.ints(timing.t_plus) &&
         dec.i32(timing.min_interarrival);
}

}  // namespace ttdim::verify
