#include "verify/bounds.h"

#include <algorithm>

#include "support/check.h"

namespace ttdim::verify {

int max_coinciding_instances(const AppTiming& victim, const AppTiming& other) {
  victim.validate();
  other.validate();
  // Window during which interference can push the victim towards T*w.
  const int window = victim.t_star_w + max_dwell(victim);
  // One pending instance plus one per started period of `other`.
  return 1 + (window + other.min_interarrival - 1) / other.min_interarrival;
}

int suggested_instance_budget(const std::vector<AppTiming>& apps) {
  TTDIM_EXPECTS(!apps.empty());
  int budget = 1;
  for (const AppTiming& victim : apps)
    for (const AppTiming& other : apps) {
      if (&victim == &other) continue;
      budget = std::max(budget, max_coinciding_instances(victim, other));
    }
  return budget;
}

}  // namespace ttdim::verify
