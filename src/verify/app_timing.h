// Timing abstraction of one application, as consumed by the verification
// layer (paper Sec. 4): the control dynamics are fully summarised by the
// dwell tables T-dw[.], T+dw[.], the maximum wait T*w and the minimum
// disturbance inter-arrival time r.
#pragma once

#include <string>
#include <vector>

#include "switching/dwell.h"

namespace ttdim::verify {

/// Per-application timing parameters (all in samples).
struct AppTiming {
  std::string name;
  int t_star_w = 0;            ///< maximum tolerable wait T*w
  std::vector<int> t_minus;    ///< T-dw indexed by wait 0..T*w
  std::vector<int> t_plus;     ///< T+dw indexed by wait 0..T*w
  int min_interarrival = 0;    ///< r

  /// Throws std::invalid_argument when the tables are malformed
  /// (wrong arity, non-positive dwells, T-dw > T+dw, r too small).
  void validate() const;
};

/// Largest T+dw entry: the longest slot episode the application can
/// consume. Both the coincidence bound (verify/bounds.cpp) and the
/// adversarial scenario construction (engine/scenario_generator.cpp)
/// define the critical window as T*w + max_dwell and must stay in sync.
[[nodiscard]] int max_dwell(const AppTiming& timing);

/// Expand dwell tables (possibly computed on a coarser Tw granularity)
/// into a per-sample AppTiming. Lookups between grid points round up to
/// the conservative entry, mirroring DwellTables::t_minus_at.
[[nodiscard]] AppTiming make_app_timing(const std::string& name,
                                        const switching::DwellTables& tables,
                                        int min_interarrival);

/// Round-trip binary codec for disk-cached solutions. decode returns
/// false on malformed input and never throws (it does NOT run validate()
/// — structural well-formedness only; callers revalidate if they care).
void encode(support::codec::Encoder& enc, const AppTiming& timing);
[[nodiscard]] bool decode(support::codec::Decoder& dec, AppTiming& timing);

}  // namespace ttdim::verify
