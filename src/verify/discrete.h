// Exact discrete-time verifier for one shared TT slot.
//
// The system the paper verifies is sampled: disturbances are *seen* at
// sampling ticks, all scheduler decisions happen at ticks, and with integer
// minimum inter-arrival times the continuous-time sporadic model projects
// exactly onto ticks (DESIGN.md Sec. 4). The reachability question "can any
// application still be waiting when its clock passes T*w" is therefore
// decidable by breadth-first search over a finite discrete state space.
// This is the workhorse verifier; ta_model.h builds the paper's
// UPPAAL-style network of timed automata for the same question and the two
// are cross-checked in tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/app_timing.h"
#include "verify/policy.h"

namespace ttdim::verify {

/// One sample of a structured counterexample: which applications'
/// disturbances were seen at this tick and which application the slot was
/// granted to (-1: none). Feeding these into sched::simulate_slot (as the
/// scenario's disturbances + forced grants) replays the violation on the
/// runtime scheduler — tested in tests/sched_verify_replay_test.cpp.
struct WitnessTick {
  std::vector<int> disturbed;
  int granted = -1;
};

[[nodiscard]] inline bool operator==(const WitnessTick& a,
                                     const WitnessTick& b) {
  return a.disturbed == b.disturbed && a.granted == b.granted;
}
[[nodiscard]] inline bool operator!=(const WitnessTick& a,
                                     const WitnessTick& b) {
  return !(a == b);
}

/// Verdict of a slot-sharing verification.
struct SlotVerdict {
  bool safe = false;
  long states_explored = 0;
  /// Human-readable witness of the requirement violation (empty when safe
  /// or when witnesses were not requested).
  std::vector<std::string> witness;
  /// Structured counterpart of `witness`: one entry per tick, oldest
  /// first (the violation happens on the tick after the last entry).
  std::vector<WitnessTick> witness_ticks;
  /// App index that overshot its T*w (valid when !safe and witnesses were
  /// requested).
  int violator = -1;
};

/// Full structural equality — used by the memoized oracle layer's tests to
/// assert that a cached verdict is indistinguishable from a fresh one.
[[nodiscard]] inline bool operator==(const SlotVerdict& a,
                                     const SlotVerdict& b) {
  return a.safe == b.safe && a.states_explored == b.states_explored &&
         a.witness == b.witness && a.witness_ticks == b.witness_ticks &&
         a.violator == b.violator;
}
[[nodiscard]] inline bool operator!=(const SlotVerdict& a,
                                     const SlotVerdict& b) {
  return !(a == b);
}

/// Round-trip binary codec for disk-cached verdicts (full structure
/// including witness text and ticks, so a disk hit is indistinguishable
/// from the verdict that was stored). decode returns false on malformed
/// input and never throws.
void encode(support::codec::Encoder& enc, const SlotVerdict& verdict);
[[nodiscard]] bool decode(support::codec::Decoder& dec, SlotVerdict& verdict);

/// Snapshot of a *completed* safe exploration: every reachable pre-tick
/// state, packed 3 bytes per application, one record per state in BFS
/// discovery order (the first record is always the all-steady initial
/// state). A completed proof has an empty frontier, so the snapshot *is*
/// the frontier of any extension: when applications are appended, every
/// recorded state may spawn successors that involve the new applications,
/// and the extension BFS re-enqueues all of them (see
/// DiscreteVerifier::verify below for the soundness argument).
struct ExplorationState {
  /// Number of applications the records describe (record stride is
  /// 3 * napps bytes).
  std::size_t napps = 0;
  /// Concatenated records, discovery order.
  std::vector<std::uint8_t> packed;

  [[nodiscard]] std::size_t state_count() const noexcept {
    return napps == 0 ? 0 : packed.size() / (3 * napps);
  }
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return packed.size();
  }
};

/// Exhaustive discrete-time verifier for a set of applications sharing one
/// TT slot under the paper's strategy: EDF-like arbitration on deadline
/// T*w - Tw, non-preemptive until T-dw(Tw), preemptable in
/// [T-dw, T+dw), evicted at T+dw.
class DiscreteVerifier {
 public:
  /// Cap on applications for the allocation-free packed state
  /// representation (fixed 3-bytes-per-app keys). Larger populations fall
  /// back to a heap-backed state encoding — same search, same verdicts,
  /// slower per state — so oversized generated scenarios solve instead of
  /// throwing.
  static constexpr std::size_t kMaxApps = 16;
  /// Absolute cap: beyond this the 2^napps disturbance branching is
  /// intractable under any representation and the constructor refuses.
  static constexpr std::size_t kMaxAppsUnpacked = 62;

  /// State-representation override for tests: kAuto picks the packed
  /// encoding sized to the population (heap beyond kMaxApps); kUnpacked
  /// forces the heap fallback. Verdicts are identical by construction —
  /// the equality is pinned by tests/discrete_large_test.cpp — so this
  /// never enters the oracle layer's cache keys.
  enum class StateBackend { kAuto, kUnpacked };

  struct Options {
    /// Cap on disturbance instances per application; < 0 explores the full
    /// sporadic behaviour (paper Sec. 5 "comments on verification time"
    /// uses the bounded variant to accelerate).
    int max_disturbances_per_app = -1;
    long max_states = 200'000'000;
    bool want_witness = false;
    /// Arbitration policy under verification: the paper's
    /// preempt-at-T-dw, or the slack-aware postponement extension
    /// (paper Sec. 6 future work; see verify/policy.h).
    SlotPolicy policy = SlotPolicy::kPaper;
    /// Depth-first exploration reaches requirement violations much faster
    /// (it dives into the simultaneous-disturbance branches); breadth-first
    /// (default) yields shortest witnesses and is the sensible choice when
    /// the verdict is expected to be "safe". The verdict itself is
    /// identical either way.
    bool depth_first = false;
    /// Testing hook, see StateBackend.
    StateBackend backend = StateBackend::kAuto;
    /// Thread budget for this proof. <= 1 (default) runs the serial
    /// driver, whose discovery order — and therefore fingerprints,
    /// snapshots and witnesses — is byte-identical across releases.
    /// > 1 runs the level-synchronous parallel BFS on the process-wide
    /// engine::Executor: per-level frontier chunks, striped visited set.
    /// Contract: identical verdicts at any thread count, and identical
    /// states_explored for completed safe proofs (level-synchronous
    /// exact dedup makes the reachable set order-independent); unsafe
    /// proofs agree on `safe` but may differ in violator and
    /// states_explored, exactly like depth-first vs breadth-first.
    /// max_states is enforced through a shared atomic budget with the
    /// serial charging rule, so budget exhaustion of a safe proof fires
    /// iff serial fires it. Parallel proofs are fresh-only: prefix
    /// seeding, snapshot capture, witnesses and depth-first all require
    /// the serial driver (precondition failure otherwise — see verify).
    /// Never part of oracle cache keys: the contract makes serial and
    /// parallel verdicts interchangeable.
    int proof_threads = 1;

    Options() {}
  };

  explicit DiscreteVerifier(std::vector<AppTiming> apps);

  /// Runs the reachability analysis. Throws std::runtime_error when the
  /// state budget is exhausted.
  [[nodiscard]] SlotVerdict verify(const Options& options = {}) const;

  /// Reachability analysis with prefix reuse (the incremental admission
  /// oracle's workhorse, engine/oracle/incremental_oracle.h).
  ///
  /// `extend_from`, when non-null, must be the snapshot of a *safe*
  /// exploration of apps()[0 .. extend_from->napps) under the same
  /// options; the search then seeds its visited set and queue with every
  /// recorded state (appended applications all steady) instead of just
  /// the initial state.
  ///
  /// Soundness ("appending is conservative"): an appended application's
  /// state dimensions are disjoint from the prefix's, and while it stays
  /// steady it is invisible to every transition rule — it elapses nothing
  /// in phase 1, joins no waiter scan, and competes in no grant. The
  /// prefix system therefore embeds exactly into the extended one via
  /// "appended apps remain steady", so (a) every seeded state is genuinely
  /// reachable in the extended system (no spurious counterexamples), and
  /// (b) the seeded closure equals the from-scratch reachable set because
  /// the true initial state is the first seed. Safe verdicts are
  /// byte-identical to from-scratch runs (states_explored counts exactly
  /// the reachable set either way); unsafe verdicts agree on `safe` but
  /// may report a different violation (the search meets the error from a
  /// different direction), which is why the oracle layer never caches
  /// them. The invariants are asserted at seeding time.
  ///
  /// `capture`, when non-null, receives the snapshot of this run's
  /// reachable set if (and only if) the verdict is safe.
  ///
  /// Both features require the default breadth-first traversal and no
  /// witness recording; violations are precondition failures.
  [[nodiscard]] SlotVerdict verify(const Options& options,
                                   const ExplorationState* extend_from,
                                   ExplorationState* capture) const;

  [[nodiscard]] const std::vector<AppTiming>& apps() const noexcept {
    return apps_;
  }

 private:
  std::vector<AppTiming> apps_;
};

}  // namespace ttdim::verify
