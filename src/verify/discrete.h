// Exact discrete-time verifier for one shared TT slot.
//
// The system the paper verifies is sampled: disturbances are *seen* at
// sampling ticks, all scheduler decisions happen at ticks, and with integer
// minimum inter-arrival times the continuous-time sporadic model projects
// exactly onto ticks (DESIGN.md Sec. 4). The reachability question "can any
// application still be waiting when its clock passes T*w" is therefore
// decidable by breadth-first search over a finite discrete state space.
// This is the workhorse verifier; ta_model.h builds the paper's
// UPPAAL-style network of timed automata for the same question and the two
// are cross-checked in tests.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "verify/app_timing.h"
#include "verify/policy.h"

namespace ttdim::verify {

/// One sample of a structured counterexample: which applications'
/// disturbances were seen at this tick and which application the slot was
/// granted to (-1: none). Feeding these into sched::simulate_slot (as the
/// scenario's disturbances + forced grants) replays the violation on the
/// runtime scheduler — tested in tests/sched_verify_replay_test.cpp.
struct WitnessTick {
  std::vector<int> disturbed;
  int granted = -1;
};

[[nodiscard]] inline bool operator==(const WitnessTick& a,
                                     const WitnessTick& b) {
  return a.disturbed == b.disturbed && a.granted == b.granted;
}
[[nodiscard]] inline bool operator!=(const WitnessTick& a,
                                     const WitnessTick& b) {
  return !(a == b);
}

/// Verdict of a slot-sharing verification.
struct SlotVerdict {
  bool safe = false;
  long states_explored = 0;
  /// Human-readable witness of the requirement violation (empty when safe
  /// or when witnesses were not requested).
  std::vector<std::string> witness;
  /// Structured counterpart of `witness`: one entry per tick, oldest
  /// first (the violation happens on the tick after the last entry).
  std::vector<WitnessTick> witness_ticks;
  /// App index that overshot its T*w (valid when !safe and witnesses were
  /// requested).
  int violator = -1;
};

/// Full structural equality — used by the memoized oracle layer's tests to
/// assert that a cached verdict is indistinguishable from a fresh one.
[[nodiscard]] inline bool operator==(const SlotVerdict& a,
                                     const SlotVerdict& b) {
  return a.safe == b.safe && a.states_explored == b.states_explored &&
         a.witness == b.witness && a.witness_ticks == b.witness_ticks &&
         a.violator == b.violator;
}
[[nodiscard]] inline bool operator!=(const SlotVerdict& a,
                                     const SlotVerdict& b) {
  return !(a == b);
}

/// Exhaustive discrete-time verifier for a set of applications sharing one
/// TT slot under the paper's strategy: EDF-like arbitration on deadline
/// T*w - Tw, non-preemptive until T-dw(Tw), preemptable in
/// [T-dw, T+dw), evicted at T+dw.
class DiscreteVerifier {
 public:
  /// Hard cap on applications sharing one slot: the BFS packs a state into
  /// a fixed 3-bytes-per-app key (no heap traffic on the hot path), and
  /// exploring 2^napps disturbance subsets per state is intractable far
  /// below this bound anyway.
  static constexpr std::size_t kMaxApps = 16;

  struct Options {
    /// Cap on disturbance instances per application; < 0 explores the full
    /// sporadic behaviour (paper Sec. 5 "comments on verification time"
    /// uses the bounded variant to accelerate).
    int max_disturbances_per_app = -1;
    long max_states = 200'000'000;
    bool want_witness = false;
    /// Arbitration policy under verification: the paper's
    /// preempt-at-T-dw, or the slack-aware postponement extension
    /// (paper Sec. 6 future work; see verify/policy.h).
    SlotPolicy policy = SlotPolicy::kPaper;
    /// Depth-first exploration reaches requirement violations much faster
    /// (it dives into the simultaneous-disturbance branches); breadth-first
    /// (default) yields shortest witnesses and is the sensible choice when
    /// the verdict is expected to be "safe". The verdict itself is
    /// identical either way.
    bool depth_first = false;

    Options() {}
  };

  explicit DiscreteVerifier(std::vector<AppTiming> apps);

  /// Runs the reachability analysis. Throws std::runtime_error when the
  /// state budget is exhausted.
  [[nodiscard]] SlotVerdict verify(const Options& options = {}) const;

  [[nodiscard]] const std::vector<AppTiming>& apps() const noexcept {
    return apps_;
  }

 private:
  std::vector<AppTiming> apps_;
};

}  // namespace ttdim::verify
