// Disturbance-instance bounds (paper Sec. 5, "comments on verification
// time"): "for each application, we can calculate the maximum number of
// disturbance instances in other applications that can coincide with its
// disturbance", which lets the model checker explore a bounded number of
// instances without losing soundness for the deadline property.
#pragma once

#include <vector>

#include "verify/app_timing.h"

namespace ttdim::verify {

/// For application i, the number of instances of application j that can
/// interfere while i is in flight: i's critical window spans its wait
/// budget plus its largest dwell (the slot time it may consume), and j can
/// contribute one instance per started min-interarrival period plus the
/// one already pending.
[[nodiscard]] int max_coinciding_instances(const AppTiming& victim,
                                           const AppTiming& other);

/// A per-system budget that is safe to hand to the verifiers'
/// `max_disturbances_per_app`: the largest pairwise coincidence count over
/// all victim/other pairs (at least 1).
[[nodiscard]] int suggested_instance_budget(const std::vector<AppTiming>& apps);

}  // namespace ttdim::verify
