#include "verify/discrete.h"

#include <algorithm>
#include <array>
#include <bitset>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "support/check.h"

namespace ttdim::verify {

namespace {

/// Application mode within the slot-sharing protocol.
enum Loc : uint8_t { kSteady = 0, kWait = 1, kTt = 2, kSafe = 3 };

/// Packed per-application state: mode, samples since the disturbance was
/// seen, wait at grant time (TT only), disturbance count (bounded mode).
struct AppState {
  uint8_t loc = kSteady;
  uint8_t elapsed = 0;
  uint8_t wt_grant = 0;
  uint8_t dist_count = 0;
};

constexpr size_t round8(size_t n) { return (n + 7) & ~size_t{7}; }

/// Fixed-capacity dedup key: three bytes per application (mode and
/// disturbance budget share a byte), zero-padded to the capacity so
/// hashing reads whole 8-byte words without touching the heap. Two
/// capacities are instantiated: 16 bytes covers up to 5 applications (the
/// hot mapping-walk probes — halving the key keeps the visited table and
/// queue cache-resident far longer), 48 bytes covers the full packed cap
/// of DiscreteVerifier::kMaxApps.
template <size_t Cap>
struct SmallKey {
  static_assert(Cap % 8 == 0, "hashing reads whole 8-byte words");
  std::array<uint8_t, Cap> bytes{};
  uint8_t len = 0;  ///< 0 marks an empty visited-table slot

  /// Small capacities hash the whole (zero-padded) array: the trip count
  /// becomes a compile-time constant and padded words mix in nothing but
  /// zeros. Larger capacities hash only the occupied words.
  static constexpr size_t kFixedHashSpan = Cap <= 16 ? Cap : 0;

  [[nodiscard]] const uint8_t* data() const noexcept { return bytes.data(); }
  [[nodiscard]] uint8_t* data() noexcept { return bytes.data(); }
  [[nodiscard]] bool empty() const noexcept { return len == 0; }

  friend bool operator==(const SmallKey& a, const SmallKey& b) {
    // Fixed-size compare inlines to a couple of word compares; the
    // padding beyond len is zero on both sides, so it never flips the
    // answer for keys of equal length (all keys of one run share len).
    return a.len == b.len &&
           std::memcmp(a.bytes.data(), b.bytes.data(), Cap) == 0;
  }
  friend bool operator!=(const SmallKey& a, const SmallKey& b) {
    return !(a == b);
  }
};

/// Heap-backed key for populations beyond the packed cap (> kMaxApps
/// applications): same 3-bytes-per-app layout, storage rounded up to whole
/// words and zero-padded so the shared hash loop applies unchanged. This
/// is the compatibility fallback — per-state allocation is acceptable
/// because the disturbance branching dominates long before key traffic
/// does at such sizes.
struct HeapKey {
  std::vector<uint8_t> bytes;  ///< size == round8(len), zero-padded
  uint16_t len = 0;

  static constexpr size_t kFixedHashSpan = 0;  ///< length-bounded hashing

  [[nodiscard]] const uint8_t* data() const noexcept { return bytes.data(); }
  [[nodiscard]] uint8_t* data() noexcept { return bytes.data(); }
  [[nodiscard]] bool empty() const noexcept { return len == 0; }

  friend bool operator==(const HeapKey& a, const HeapKey& b) {
    return a.len == b.len && a.bytes == b.bytes;
  }
  friend bool operator!=(const HeapKey& a, const HeapKey& b) {
    return !(a == b);
  }
};

/// Word-at-a-time mix (splitmix-style) over the zero-padded key, bounded
/// by the words the key actually occupies — all keys of one run share a
/// length, so the trailing zero padding inside the last word is
/// collision-neutral and the loop trip count is minimal.
template <typename Key>
struct KeyHash {
  size_t operator()(const Key& k) const noexcept {
    uint64_t h = 0x9E3779B97F4A7C15ull ^ k.len;
    const uint8_t* data = k.data();
    const size_t words = Key::kFixedHashSpan != 0
                             ? Key::kFixedHashSpan  // constant trip count
                             : round8(k.len);
    for (size_t off = 0; off < words; off += 8) {
      uint64_t w;
      std::memcpy(&w, data + off, 8);
      h = (h ^ w) * 0xFF51AFD7ED558CCDull;
      h ^= h >> 29;
    }
    return static_cast<size_t>(h);
  }
};

/// Open-addressing visited set: linear probing over flat key slots
/// (emptiness is the key's own len == 0 marker, so a slot carries no
/// metadata beyond the key bytes — at 17 bytes per 5-app slot the table
/// stays several times smaller than a node-based set and the BFS's tens
/// of millions of membership-or-insert probes stay in cache accordingly).
template <typename Key>
class VisitedSet {
 public:
  VisitedSet() { rehash(size_t{1} << 16); }

  /// Pre-sizes for `n` expected keys (used when seeding from a prefix
  /// snapshot whose cardinality is a known lower bound).
  void reserve(size_t n) {
    size_t capacity = mask_ + 1;
    while (capacity - capacity / 4 < n) capacity *= 2;
    if (capacity > mask_ + 1) rehash(capacity);
  }

  /// True when the key was newly inserted (i.e. not seen before).
  bool insert(const Key& k) {
    size_t i = KeyHash<Key>{}(k)&mask_;
    for (;;) {
      Key& s = slots_[i];
      if (s.empty()) {
        s = k;
        if (++size_ > grow_at_) rehash(2 * (mask_ + 1));
        return true;
      }
      if (s == k) return false;
      i = (i + 1) & mask_;
    }
  }

 private:
  void rehash(size_t capacity) {
    std::vector<Key> old = std::move(slots_);
    slots_.assign(capacity, Key{});
    mask_ = capacity - 1;
    grow_at_ = capacity - capacity / 4;  // load factor 0.75
    for (Key& k : old) {
      if (k.empty()) continue;
      size_t i = KeyHash<Key>{}(k)&mask_;
      while (!slots_[i].empty()) i = (i + 1) & mask_;
      slots_[i] = std::move(k);
    }
  }

  std::vector<Key> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  size_t grow_at_ = 0;
};

/// State-representation policy: the search below is written once against
/// this shape and instantiated per key capacity.
template <size_t KeyCap>
struct PackedShape {
  using Key = SmallKey<KeyCap>;
  using State = std::array<AppState, DiscreteVerifier::kMaxApps>;
  /// Most applications this key capacity can pack (3 bytes per app).
  static constexpr size_t kKeyApps = KeyCap / 3;
  static State blank(size_t) { return State{}; }
  static Key make_key(size_t len) {
    Key k;
    k.len = static_cast<uint8_t>(len);
    return k;
  }
};

struct HeapShape {
  using Key = HeapKey;
  using State = std::vector<AppState>;
  static constexpr size_t kKeyApps = DiscreteVerifier::kMaxAppsUnpacked;
  static State blank(size_t napps) { return State(napps); }
  static Key make_key(size_t len) {
    Key k;
    k.len = static_cast<uint16_t>(len);
    k.bytes.assign(round8(len), 0);
    return k;
  }
};

template <typename Shape>
typename Shape::Key encode(const typename Shape::State& s, size_t napps) {
  TTDIM_EXPECTS(napps <= Shape::kKeyApps);  // dispatch picked this shape
  typename Shape::Key key = Shape::make_key(3 * napps);
  uint8_t* b = key.data();
  for (size_t i = 0; i < napps; ++i) {
    const AppState& a = s[i];
    b[3 * i] = static_cast<uint8_t>(a.loc | (a.dist_count << 2));
    b[3 * i + 1] = a.elapsed;
    b[3 * i + 2] = a.wt_grant;
  }
  return key;
}

template <typename Shape>
void decode(const typename Shape::Key& key, size_t napps,
            typename Shape::State& s) {
  TTDIM_EXPECTS(napps <= Shape::kKeyApps);
  const uint8_t* b = key.data();
  for (size_t i = 0; i < napps; ++i) {
    const uint8_t packed = b[3 * i];
    s[i].loc = packed & 0x03;
    s[i].dist_count = packed >> 2;
    s[i].elapsed = b[3 * i + 1];
    s[i].wt_grant = b[3 * i + 2];
  }
}

/// Enumerating 2^k disturbance subsets from one state is pointless beyond
/// this width — a single expansion would dwarf any realistic state budget.
constexpr size_t kMaxSteadyBranching = 26;

template <typename Shape>
SlotVerdict run_search(const std::vector<AppTiming>& apps,
                       const DiscreteVerifier::Options& options,
                       const ExplorationState* extend_from,
                       ExplorationState* capture) {
  using Key = typename Shape::Key;
  using State = typename Shape::State;

  const size_t napps = apps.size();
  TTDIM_EXPECTS(napps >= 1 && napps <= Shape::kKeyApps);
  const bool bounded = options.max_disturbances_per_app >= 0;
  // The packed key stores the budget in 6 bits.
  TTDIM_EXPECTS(options.max_disturbances_per_app <= 62);
  // Prefix extension and snapshot capture rely on the FIFO queue doubling
  // as the discovery-order log; witnesses would need parenthood for seeds.
  if (extend_from != nullptr || capture != nullptr) {
    TTDIM_EXPECTS(!options.depth_first);
    TTDIM_EXPECTS(!options.want_witness);
  }

  SlotVerdict verdict;
  VisitedSet<Key> visited;
  // FIFO via a head cursor: in breadth-first mode the vector is never
  // popped, so after a completed (safe) search it holds every reachable
  // state in discovery order — exactly the snapshot `capture` wants.
  std::vector<Key> queue;
  size_t head = 0;
  // Parenthood for witness reconstruction: predecessor key, description,
  // and the structured tick content.
  struct Parenthood {
    Key from;
    std::string action;
    WitnessTick tick;
  };
  std::unordered_map<Key, Parenthood, KeyHash<Key>> parent;

  // Number of seeded states; the first `seed_count` pops are exactly the
  // seeds (FIFO), which is what licenses the subset restriction below.
  size_t seed_count = 0;
  size_t prefix_napps = 0;
  const Key init_key = encode<Shape>(Shape::blank(napps), napps);
  if (extend_from != nullptr) {
    const ExplorationState& base = *extend_from;
    // Soundness invariants of "appending is conservative" (discrete.h):
    // a strict prefix of this population, at least one record, whole
    // records only, and the prefix run's own initial state leading the
    // discovery order (the true initial state must be among the seeds).
    TTDIM_EXPECTS(base.napps >= 1 && base.napps < napps);
    const size_t stride = 3 * base.napps;
    TTDIM_EXPECTS(!base.packed.empty() && base.packed.size() % stride == 0);
    for (size_t i = 0; i < stride; ++i) TTDIM_EXPECTS(base.packed[i] == 0);
    prefix_napps = base.napps;
    seed_count = base.packed.size() / stride;
    visited.reserve(seed_count);
    queue.reserve(seed_count);
    for (size_t r = 0; r < seed_count; ++r) {
      Key k = Shape::make_key(3 * napps);
      std::memcpy(k.data(), base.packed.data() + r * stride, stride);
      // Appended applications start steady == all-zero record bytes, so
      // zero-extension *is* the embedding of the prefix state.
      TTDIM_CHECK(visited.insert(k));  // prefix snapshot holds no duplicates
      queue.push_back(std::move(k));
    }
  } else {
    visited.insert(init_key);
    queue.push_back(init_key);
  }

  auto emit = [&](const State& next, const Key& from,
                  const std::string& action, WitnessTick tick) {
    Key key = encode<Shape>(next, napps);
    if (!visited.insert(key)) return;
    if (options.want_witness)
      parent.emplace(key, Parenthood{from, action, std::move(tick)});
    queue.push_back(std::move(key));
  };

  auto build_witness = [&](const Key& leaf_key,
                           const std::string& final_action) {
    std::vector<std::string> steps{final_action};
    Key cur = leaf_key;
    while (cur != init_key) {
      const auto it = parent.find(cur);
      if (it == parent.end()) break;
      steps.push_back(it->second.action);
      verdict.witness_ticks.push_back(it->second.tick);
      cur = it->second.from;
    }
    steps.push_back("all applications steady");
    std::reverse(steps.begin(), steps.end());
    std::reverse(verdict.witness_ticks.begin(), verdict.witness_ticks.end());
    return steps;
  };

  State base = Shape::blank(napps);
  State s = Shape::blank(napps);
  State granted = Shape::blank(napps);
  std::vector<size_t> steady;
  std::vector<size_t> candidates;

  while (head < queue.size()) {
    Key cur_key;
    if (options.depth_first) {
      cur_key = std::move(queue.back());
      queue.pop_back();
    } else {
      cur_key = queue[head];  // the vector doubles as the discovery log
      ++head;
    }
    // True while this pop re-expands a seeded prefix state (seeds occupy
    // the front of the FIFO queue, so the pop index identifies them).
    const bool seed_pop = !options.depth_first && head <= seed_count &&
                          extend_from != nullptr;
    ++verdict.states_explored;
    if (verdict.states_explored > options.max_states)
      throw std::runtime_error("DiscreteVerifier: state budget exhausted");

    decode<Shape>(cur_key, napps, base);

    // ---- Phase 1: one sample elapses. -----------------------------------
    std::string phase1_action;
    bool error_now = false;
    for (size_t i = 0; i < napps; ++i) {
      AppState& a = base[i];
      switch (a.loc) {
        case kSteady:
          break;
        case kWait:
          ++a.elapsed;
          // Clock passed T*w while still waiting: the application automaton
          // reaches Error (paper Fig. 5).
          if (a.elapsed > apps[i].t_star_w) {
            error_now = true;
            verdict.violator = static_cast<int>(i);
            phase1_action = apps[i].name + " exceeded T*w=" +
                            std::to_string(apps[i].t_star_w) +
                            " while waiting";
          }
          break;
        case kTt:
          ++a.elapsed;
          break;
        case kSafe:
          ++a.elapsed;
          if (a.elapsed >= apps[i].min_interarrival) {
            a.loc = kSteady;
            a.elapsed = 0;
            a.wt_grant = 0;
          }
          break;
      }
    }
    if (error_now) {
      // A seeded state cannot reach Error in phase 1: the prefix proof
      // already expanded it without one, and appended (steady) apps never
      // wait. Anything else would mean the snapshot belongs to different
      // timings than this prefix.
      TTDIM_CHECK(!seed_pop);
      verdict.safe = false;
      if (options.want_witness)
        verdict.witness = build_witness(cur_key, phase1_action);
      return verdict;
    }

    // ---- Subset-invariant occupant facts. -------------------------------
    // A disturbance subset only moves kSteady apps to kWait, so the slot
    // occupant, its continuous time in the slot and its dwell-row bounds
    // are identical across all subsets of this pop — hoisted out of the
    // expansion loop (phase 3 below consumes them).
    int occupant0 = -1;
    for (size_t i = 0; i < napps; ++i)
      if (base[i].loc == kTt) {
        TTDIM_CHECK(occupant0 < 0);  // single-slot invariant
        occupant0 = static_cast<int>(i);
      }
    int occ_ct = 0, occ_dtm = 0, occ_dtp = 0;
    if (occupant0 >= 0) {
      const AppState& o = base[static_cast<size_t>(occupant0)];
      occ_ct = o.elapsed - o.wt_grant;
      occ_dtm = apps[static_cast<size_t>(occupant0)].t_minus[o.wt_grant];
      occ_dtp = apps[static_cast<size_t>(occupant0)].t_plus[o.wt_grant];
      TTDIM_CHECK(occ_ct >= 0 && occ_ct <= occ_dtp);
    }
    size_t base_waiters = 0;
    for (size_t i = 0; i < napps; ++i)
      if (base[i].loc == kWait) ++base_waiters;

    // ---- Phase 2: nondeterministic disturbance arrivals. ----------------
    steady.clear();
    for (size_t i = 0; i < napps; ++i) {
      if (base[i].loc != kSteady) continue;
      if (bounded &&
          base[i].dist_count >=
              static_cast<uint8_t>(options.max_disturbances_per_app))
        continue;
      steady.push_back(i);
    }
    if (steady.size() > kMaxSteadyBranching)
      throw std::runtime_error(
          "DiscreteVerifier: disturbance branching too wide (" +
          std::to_string(steady.size()) +
          " simultaneously disturbable applications)");

    // Subsets that disturb no appended application map a seeded state to
    // another seeded state (the prefix is closed under its own
    // transitions), so re-expanding a seed only needs the branches that
    // involve an appended app. Skipping the rest emits nothing new by
    // construction — the skipped successors are already in the visited
    // set — and leaves the discovery order of genuinely new states
    // untouched.
    size_t appended_mask = 0;
    if (seed_pop)
      for (size_t b = 0; b < steady.size(); ++b)
        if (steady[b] >= prefix_napps) appended_mask |= size_t{1} << b;

    // Witness bookkeeping (action strings, tick contents) is only
    // materialized when requested: it costs a handful of heap allocations
    // per successor, which dominates the safe-verdict hot path otherwise.
    const bool record = options.want_witness;
    const size_t subsets = size_t{1} << steady.size();
    for (size_t mask = 0; mask < subsets; ++mask) {
      if (seed_pop && (mask & appended_mask) == 0) continue;
      s = base;
      std::string action;
      if (record) action = "tick";
      WitnessTick tick;
      for (size_t b = 0; b < steady.size(); ++b) {
        if (!(mask & (size_t{1} << b))) continue;
        AppState& a = s[steady[b]];
        a.loc = kWait;
        a.elapsed = 0;
        if (bounded) ++a.dist_count;
        if (record) {
          action += " disturb(" + apps[steady[b]].name + ")";
          tick.disturbed.push_back(static_cast<int>(steady[b]));
        }
      }

      // ---- Phase 3: slot occupant bookkeeping. --------------------------
      int occupant = occupant0;
      // Waiters in s = waiters surviving phase 1 + the just-disturbed.
      const bool any_waiter =
          base_waiters + std::bitset<64>(mask).count() > 0;
      auto leave_slot = [&](size_t i, const char* why) {
        AppState& a = s[i];
        if (a.elapsed >= apps[i].min_interarrival) {
          a.loc = kSteady;
          a.elapsed = 0;
        } else {
          a.loc = kSafe;
        }
        a.wt_grant = 0;
        if (record)
          action += std::string(" ") + why + "(" + apps[i].name + ")";
      };
      if (occupant >= 0) {
        if (occ_ct == occ_dtp) {
          leave_slot(static_cast<size_t>(occupant), "evict");
          occupant = -1;
        } else if (occ_ct >= occ_dtm && any_waiter) {
          bool preempt = true;
          if (options.policy == SlotPolicy::kSlackAware) {
            std::vector<WaiterView> waiters;
            for (size_t i = 0; i < napps; ++i)
              if (s[i].loc == kWait)
                waiters.push_back({static_cast<int>(i), s[i].elapsed});
            preempt = !preemption_postponable(apps, waiters, occupant);
          }
          if (preempt) {
            leave_slot(static_cast<size_t>(occupant), "preempt");
            occupant = -1;
          }
        }
      }

      // ---- Phase 4: grant (EDF on remaining deadline, ties explored). ---
      if (occupant < 0) {
        int best_remaining = INT32_MAX;
        candidates.clear();
        for (size_t i = 0; i < napps; ++i) {
          if (s[i].loc != kWait) continue;
          const int remaining = apps[i].t_star_w - s[i].elapsed;
          TTDIM_CHECK(remaining >= 0);
          if (remaining < best_remaining) {
            best_remaining = remaining;
            candidates.clear();
            candidates.push_back(i);
          } else if (remaining == best_remaining) {
            candidates.push_back(i);
          }
        }
        if (!candidates.empty()) {
          for (size_t c : candidates) {
            granted = s;
            granted[c].loc = kTt;
            granted[c].wt_grant = granted[c].elapsed;
            if (record) {
              WitnessTick grant_tick = tick;
              grant_tick.granted = static_cast<int>(c);
              emit(granted, cur_key,
                   action + " grant(" + apps[c].name +
                       ",Tw=" + std::to_string(granted[c].elapsed) + ")",
                   std::move(grant_tick));
            } else {
              emit(granted, cur_key, action, {});
            }
          }
          continue;  // grant branches cover this subset
        }
      }
      emit(s, cur_key, action, std::move(tick));
    }
  }

  verdict.safe = true;
  if (capture != nullptr) {
    // Safe == exhausted queue == the FIFO log is the full reachable set.
    capture->napps = napps;
    capture->packed.clear();
    capture->packed.reserve(queue.size() * 3 * napps);
    for (const Key& k : queue)
      capture->packed.insert(capture->packed.end(), k.data(),
                             k.data() + 3 * napps);
  }
  return verdict;
}

}  // namespace

DiscreteVerifier::DiscreteVerifier(std::vector<AppTiming> apps)
    : apps_(std::move(apps)) {
  TTDIM_EXPECTS(!apps_.empty());
  if (apps_.size() > kMaxAppsUnpacked)
    throw std::invalid_argument(
        "DiscreteVerifier: " + std::to_string(apps_.size()) +
        " applications in one slot exceeds the supported maximum of " +
        std::to_string(kMaxAppsUnpacked) +
        " (the search explores 2^napps disturbance subsets per state and "
        "is intractable long before this bound)");
  for (const AppTiming& a : apps_) {
    a.validate();
    // Every representation stores counters in bytes.
    TTDIM_EXPECTS(a.min_interarrival < 250);
    TTDIM_EXPECTS(a.t_star_w + a.t_plus[static_cast<size_t>(a.t_star_w)] <
                  250);
  }
}

SlotVerdict DiscreteVerifier::verify(const Options& options) const {
  return verify(options, nullptr, nullptr);
}

SlotVerdict DiscreteVerifier::verify(const Options& options,
                                     const ExplorationState* extend_from,
                                     ExplorationState* capture) const {
  const size_t napps = apps_.size();
  if (options.backend == StateBackend::kUnpacked || napps > kMaxApps)
    return run_search<HeapShape>(apps_, options, extend_from, capture);
  if (3 * napps <= 16)
    return run_search<PackedShape<16>>(apps_, options, extend_from, capture);
  return run_search<PackedShape<48>>(apps_, options, extend_from, capture);
}

void encode(support::codec::Encoder& enc, const SlotVerdict& verdict) {
  enc.u8(verdict.safe ? 1 : 0);
  enc.i64(verdict.states_explored);
  enc.u32(static_cast<std::uint32_t>(verdict.witness.size()));
  for (const std::string& line : verdict.witness) enc.str(line);
  enc.u32(static_cast<std::uint32_t>(verdict.witness_ticks.size()));
  for (const WitnessTick& tick : verdict.witness_ticks) {
    enc.ints(tick.disturbed);
    enc.i32(tick.granted);
  }
  enc.i32(verdict.violator);
}

bool decode(support::codec::Decoder& dec, SlotVerdict& verdict) {
  verdict = SlotVerdict{};
  std::uint8_t safe = 0;
  if (!dec.u8(safe) || safe > 1) return false;
  verdict.safe = safe != 0;
  std::int64_t states = 0;
  if (!dec.i64(states)) return false;
  verdict.states_explored = static_cast<long>(states);
  std::uint32_t nwitness = 0;
  if (!dec.u32(nwitness) || nwitness > dec.remaining() / 4) return false;
  verdict.witness.resize(nwitness);
  for (std::string& line : verdict.witness)
    if (!dec.str(line)) return false;
  std::uint32_t nticks = 0;
  if (!dec.u32(nticks) || nticks > dec.remaining() / 8) return false;
  verdict.witness_ticks.resize(nticks);
  for (WitnessTick& tick : verdict.witness_ticks)
    if (!dec.ints(tick.disturbed) || !dec.i32(tick.granted)) return false;
  return dec.i32(verdict.violator);
}

}  // namespace ttdim::verify
