#include "verify/discrete.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "support/check.h"

namespace ttdim::verify {

namespace {

/// Application mode within the slot-sharing protocol.
enum Loc : uint8_t { kSteady = 0, kWait = 1, kTt = 2, kSafe = 3 };

/// Packed per-application state: mode, samples since the disturbance was
/// seen, wait at grant time (TT only), disturbance count (bounded mode).
struct AppState {
  uint8_t loc = kSteady;
  uint8_t elapsed = 0;
  uint8_t wt_grant = 0;
  uint8_t dist_count = 0;
};

/// Stack-allocated state vector: the BFS copies states for every
/// disturbance subset and grant branch, so heap-backed storage here is the
/// difference between ~10 and ~100+ bytes of allocator traffic per emitted
/// successor.
using State = std::array<AppState, DiscreteVerifier::kMaxApps>;

/// Dedup key: three bytes per application (mode and disturbance budget
/// share a byte), zero-padded to the fixed capacity so hashing and
/// equality never touch the heap. The BFS stores millions of these.
struct Key {
  std::array<uint8_t, 3 * DiscreteVerifier::kMaxApps> bytes{};
  uint8_t len = 0;

  friend bool operator==(const Key& a, const Key& b) {
    return a.len == b.len &&
           std::memcmp(a.bytes.data(), b.bytes.data(), a.len) == 0;
  }
  friend bool operator!=(const Key& a, const Key& b) { return !(a == b); }
};

/// Word-at-a-time mix over the zero-padded key (splitmix-style). The
/// trailing zero padding is identical for all keys of one run, so hashing
/// the full fixed capacity is both branch-free and collision-neutral.
struct KeyHash {
  // The word loop below reads the byte array in full 8-byte strides.
  static_assert(sizeof(Key{}.bytes) % 8 == 0,
                "3 * kMaxApps must be a multiple of 8 or the last memcpy "
                "would read into the len field and padding");

  size_t operator()(const Key& k) const noexcept {
    uint64_t h = 0x9E3779B97F4A7C15ull ^ k.len;
    for (size_t off = 0; off < k.bytes.size(); off += 8) {
      uint64_t w;
      std::memcpy(&w, k.bytes.data() + off, 8);
      h = (h ^ w) * 0xFF51AFD7ED558CCDull;
      h ^= h >> 29;
    }
    return static_cast<size_t>(h);
  }
};

/// Open-addressing visited set: linear probing over flat (hash, key) slots.
/// The BFS performs tens of millions of membership-or-insert operations;
/// node-based std::unordered_set spends more time in the allocator and on
/// pointer chases than the whole rest of the search.
class VisitedSet {
 public:
  VisitedSet() { rehash(1u << 16); }

  /// True when the key was newly inserted (i.e. not seen before).
  bool insert(const Key& k) {
    const uint64_t h = KeyHash{}(k) | 1;  // 0 marks an empty slot
    size_t i = static_cast<size_t>(h) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.hash == 0) {
        s.hash = h;
        s.key = k;
        if (++size_ > grow_at_) rehash(2 * (mask_ + 1));
        return true;
      }
      if (s.hash == h && s.key == k) return false;
      i = (i + 1) & mask_;
    }
  }

 private:
  struct Slot {
    uint64_t hash = 0;
    Key key;
  };

  void rehash(size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    grow_at_ = capacity - capacity / 4;  // load factor 0.75
    for (const Slot& s : old) {
      if (s.hash == 0) continue;
      size_t i = static_cast<size_t>(s.hash) & mask_;
      while (slots_[i].hash != 0) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  size_t grow_at_ = 0;
};

Key encode(const State& s, size_t napps) {
  Key key;
  key.len = static_cast<uint8_t>(3 * napps);
  for (size_t i = 0; i < napps; ++i) {
    const AppState& a = s[i];
    key.bytes[3 * i] = static_cast<uint8_t>(a.loc | (a.dist_count << 2));
    key.bytes[3 * i + 1] = a.elapsed;
    key.bytes[3 * i + 2] = a.wt_grant;
  }
  return key;
}

State decode(const Key& key, size_t napps) {
  State s{};
  for (size_t i = 0; i < napps; ++i) {
    const uint8_t packed = key.bytes[3 * i];
    s[i].loc = packed & 0x03;
    s[i].dist_count = packed >> 2;
    s[i].elapsed = key.bytes[3 * i + 1];
    s[i].wt_grant = key.bytes[3 * i + 2];
  }
  return s;
}

}  // namespace

DiscreteVerifier::DiscreteVerifier(std::vector<AppTiming> apps)
    : apps_(std::move(apps)) {
  TTDIM_EXPECTS(!apps_.empty());
  if (apps_.size() > kMaxApps)
    throw std::invalid_argument(
        "DiscreteVerifier: " + std::to_string(apps_.size()) +
        " applications in one slot exceeds the supported maximum of " +
        std::to_string(kMaxApps) +
        " (the search explores 2^napps disturbance subsets per state and "
        "is intractable long before this bound)");
  for (const AppTiming& a : apps_) {
    a.validate();
    // The packed representation stores counters in bytes.
    TTDIM_EXPECTS(a.min_interarrival < 250);
    TTDIM_EXPECTS(a.t_star_w + a.t_plus[static_cast<size_t>(a.t_star_w)] <
                  250);
  }
}

SlotVerdict DiscreteVerifier::verify(const Options& options) const {
  const size_t napps = apps_.size();
  const bool bounded = options.max_disturbances_per_app >= 0;
  // The packed key stores the budget in 6 bits.
  TTDIM_EXPECTS(options.max_disturbances_per_app <= 62);

  SlotVerdict verdict;
  VisitedSet visited;
  std::deque<Key> queue;
  // Parenthood for witness reconstruction: predecessor key, description,
  // and the structured tick content.
  struct Parenthood {
    Key from;
    std::string action;
    WitnessTick tick;
  };
  std::unordered_map<Key, Parenthood, KeyHash> parent;

  const State initial{};
  const Key init_key = encode(initial, napps);
  visited.insert(init_key);
  queue.push_back(init_key);

  auto emit = [&](const State& next, const Key& from,
                  const std::string& action, WitnessTick tick) {
    const Key key = encode(next, napps);
    if (!visited.insert(key)) return;
    if (options.want_witness)
      parent.emplace(key, Parenthood{from, action, std::move(tick)});
    queue.push_back(key);
  };

  auto build_witness = [&](const Key& leaf_key,
                           const std::string& final_action) {
    std::vector<std::string> steps{final_action};
    Key cur = leaf_key;
    while (cur != init_key) {
      const auto it = parent.find(cur);
      if (it == parent.end()) break;
      steps.push_back(it->second.action);
      verdict.witness_ticks.push_back(it->second.tick);
      cur = it->second.from;
    }
    steps.push_back("all applications steady");
    std::reverse(steps.begin(), steps.end());
    std::reverse(verdict.witness_ticks.begin(), verdict.witness_ticks.end());
    return steps;
  };

  while (!queue.empty()) {
    Key cur_key;
    if (options.depth_first) {
      cur_key = queue.back();
      queue.pop_back();
    } else {
      cur_key = queue.front();
      queue.pop_front();
    }
    ++verdict.states_explored;
    if (verdict.states_explored > options.max_states)
      throw std::runtime_error("DiscreteVerifier: state budget exhausted");

    State base = decode(cur_key, napps);

    // ---- Phase 1: one sample elapses. -----------------------------------
    std::string phase1_action;
    bool error_now = false;
    for (size_t i = 0; i < napps; ++i) {
      AppState& a = base[i];
      switch (a.loc) {
        case kSteady:
          break;
        case kWait:
          ++a.elapsed;
          // Clock passed T*w while still waiting: the application automaton
          // reaches Error (paper Fig. 5).
          if (a.elapsed > apps_[i].t_star_w) {
            error_now = true;
            verdict.violator = static_cast<int>(i);
            phase1_action = apps_[i].name + " exceeded T*w=" +
                            std::to_string(apps_[i].t_star_w) +
                            " while waiting";
          }
          break;
        case kTt:
          ++a.elapsed;
          break;
        case kSafe:
          ++a.elapsed;
          if (a.elapsed >= apps_[i].min_interarrival) {
            a.loc = kSteady;
            a.elapsed = 0;
            a.wt_grant = 0;
          }
          break;
      }
    }
    if (error_now) {
      verdict.safe = false;
      if (options.want_witness)
        verdict.witness = build_witness(cur_key, phase1_action);
      return verdict;
    }

    // ---- Phase 2: nondeterministic disturbance arrivals. ----------------
    std::vector<size_t> steady;
    for (size_t i = 0; i < napps; ++i) {
      if (base[i].loc != kSteady) continue;
      if (bounded &&
          base[i].dist_count >=
              static_cast<uint8_t>(options.max_disturbances_per_app))
        continue;
      steady.push_back(i);
    }

    // Witness bookkeeping (action strings, tick contents) is only
    // materialized when requested: it costs a handful of heap allocations
    // per successor, which dominates the safe-verdict hot path otherwise.
    const bool record = options.want_witness;
    const size_t subsets = size_t{1} << steady.size();
    for (size_t mask = 0; mask < subsets; ++mask) {
      State s = base;
      std::string action;
      if (record) action = "tick";
      WitnessTick tick;
      for (size_t b = 0; b < steady.size(); ++b) {
        if (!(mask & (size_t{1} << b))) continue;
        AppState& a = s[steady[b]];
        a.loc = kWait;
        a.elapsed = 0;
        if (bounded) ++a.dist_count;
        if (record) {
          action += " disturb(" + apps_[steady[b]].name + ")";
          tick.disturbed.push_back(static_cast<int>(steady[b]));
        }
      }

      // ---- Phase 3: slot occupant bookkeeping. --------------------------
      int occupant = -1;
      for (size_t i = 0; i < napps; ++i)
        if (s[i].loc == kTt) {
          TTDIM_CHECK(occupant < 0);  // single-slot invariant
          occupant = static_cast<int>(i);
        }
      auto any_waiter = [&]() {
        for (size_t i = 0; i < napps; ++i)
          if (s[i].loc == kWait) return true;
        return false;
      };
      auto leave_slot = [&](size_t i, const char* why) {
        AppState& a = s[i];
        if (a.elapsed >= apps_[i].min_interarrival) {
          a.loc = kSteady;
          a.elapsed = 0;
        } else {
          a.loc = kSafe;
        }
        a.wt_grant = 0;
        if (record)
          action += std::string(" ") + why + "(" + apps_[i].name + ")";
      };
      if (occupant >= 0) {
        const AppState& o = s[static_cast<size_t>(occupant)];
        const int ct = o.elapsed - o.wt_grant;
        const int dtm =
            apps_[static_cast<size_t>(occupant)].t_minus[o.wt_grant];
        const int dtp =
            apps_[static_cast<size_t>(occupant)].t_plus[o.wt_grant];
        TTDIM_CHECK(ct >= 0 && ct <= dtp);
        if (ct == dtp) {
          leave_slot(static_cast<size_t>(occupant), "evict");
          occupant = -1;
        } else if (ct >= dtm && any_waiter()) {
          bool preempt = true;
          if (options.policy == SlotPolicy::kSlackAware) {
            std::vector<WaiterView> waiters;
            for (size_t i = 0; i < napps; ++i)
              if (s[i].loc == kWait)
                waiters.push_back({static_cast<int>(i), s[i].elapsed});
            preempt = !preemption_postponable(apps_, waiters, occupant);
          }
          if (preempt) {
            leave_slot(static_cast<size_t>(occupant), "preempt");
            occupant = -1;
          }
        }
      }

      // ---- Phase 4: grant (EDF on remaining deadline, ties explored). ---
      if (occupant < 0) {
        int best_remaining = INT32_MAX;
        std::vector<size_t> candidates;
        for (size_t i = 0; i < napps; ++i) {
          if (s[i].loc != kWait) continue;
          const int remaining = apps_[i].t_star_w - s[i].elapsed;
          TTDIM_CHECK(remaining >= 0);
          if (remaining < best_remaining) {
            best_remaining = remaining;
            candidates.assign(1, i);
          } else if (remaining == best_remaining) {
            candidates.push_back(i);
          }
        }
        if (!candidates.empty()) {
          for (size_t c : candidates) {
            State granted = s;
            granted[c].loc = kTt;
            granted[c].wt_grant = granted[c].elapsed;
            if (record) {
              WitnessTick grant_tick = tick;
              grant_tick.granted = static_cast<int>(c);
              emit(granted, cur_key,
                   action + " grant(" + apps_[c].name +
                       ",Tw=" + std::to_string(granted[c].elapsed) + ")",
                   std::move(grant_tick));
            } else {
              emit(granted, cur_key, action, {});
            }
          }
          continue;  // grant branches cover this subset
        }
      }
      emit(s, cur_key, action, std::move(tick));
    }
  }

  verdict.safe = true;
  return verdict;
}

}  // namespace ttdim::verify
