#include "verify/discrete.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bitset>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <vector>

// The parallel proof driver fans frontier chunks out on the process-wide
// work-stealing pool. This is the one place src/verify/ reaches into
// src/engine/ (cpp-only; the header stays engine-free).
#include "engine/executor.h"
#include "support/check.h"
#include "verify/visited_set.h"

namespace ttdim::verify {

namespace {

using detail::HeapKey;
using detail::KeyHash;
using detail::SmallKey;
using detail::VisitedSet;
using detail::round8;

/// Application mode within the slot-sharing protocol.
enum Loc : uint8_t { kSteady = 0, kWait = 1, kTt = 2, kSafe = 3 };

/// Packed per-application state: mode, samples since the disturbance was
/// seen, wait at grant time (TT only), disturbance count (bounded mode).
struct AppState {
  uint8_t loc = kSteady;
  uint8_t elapsed = 0;
  uint8_t wt_grant = 0;
  uint8_t dist_count = 0;
};

/// State-representation policy: the search below is written once against
/// this shape and instantiated per key capacity.
template <size_t KeyCap>
struct PackedShape {
  using Key = SmallKey<KeyCap>;
  using State = std::array<AppState, DiscreteVerifier::kMaxApps>;
  /// Most applications this key capacity can pack (3 bytes per app).
  static constexpr size_t kKeyApps = KeyCap / 3;
  static State blank(size_t) { return State{}; }
  static Key make_key(size_t len) {
    Key k;
    k.len = static_cast<uint8_t>(len);
    return k;
  }
};

struct HeapShape {
  using Key = HeapKey;
  using State = std::vector<AppState>;
  static constexpr size_t kKeyApps = DiscreteVerifier::kMaxAppsUnpacked;
  static State blank(size_t napps) { return State(napps); }
  static Key make_key(size_t len) {
    Key k;
    k.len = static_cast<uint16_t>(len);
    k.bytes.assign(round8(len), 0);
    return k;
  }
};

template <typename Shape>
typename Shape::Key encode(const typename Shape::State& s, size_t napps) {
  TTDIM_EXPECTS(napps <= Shape::kKeyApps);  // dispatch picked this shape
  typename Shape::Key key = Shape::make_key(3 * napps);
  uint8_t* b = key.data();
  for (size_t i = 0; i < napps; ++i) {
    const AppState& a = s[i];
    b[3 * i] = static_cast<uint8_t>(a.loc | (a.dist_count << 2));
    b[3 * i + 1] = a.elapsed;
    b[3 * i + 2] = a.wt_grant;
  }
  return key;
}

template <typename Shape>
void decode(const typename Shape::Key& key, size_t napps,
            typename Shape::State& s) {
  TTDIM_EXPECTS(napps <= Shape::kKeyApps);
  const uint8_t* b = key.data();
  for (size_t i = 0; i < napps; ++i) {
    const uint8_t packed = b[3 * i];
    s[i].loc = packed & 0x03;
    s[i].dist_count = packed >> 2;
    s[i].elapsed = b[3 * i + 1];
    s[i].wt_grant = b[3 * i + 2];
  }
}

/// Enumerating 2^k disturbance subsets from one state is pointless beyond
/// this width — a single expansion would dwarf any realistic state budget.
constexpr size_t kMaxSteadyBranching = 26;

/// Successor probes buffered per flush into the visited set. Large enough
/// to amortize ensure_room() and give the prefetches time to land, small
/// enough to stay cache-resident.
constexpr size_t kProbeBlock = 512;

/// Minimum frontier states per parallel chunk — below this the chunking
/// overhead beats the win.
constexpr long kParallelGrain = 8;

inline size_t ctz(size_t bits) {
  return static_cast<size_t>(__builtin_ctzll(bits));
}

/// A hashed-up-front candidate successor awaiting its visited-set probe.
template <typename Key>
struct Probe {
  size_t hash;
  Key key;
};

/// One-state-to-all-successors generator, shared verbatim by the serial
/// and the parallel drivers (which is what makes their reachable sets —
/// and hence verdicts and states_explored — provably identical).
///
/// Two interior paths:
///  - expand_fast(): the kPaper no-witness hot path. Works directly on
///    the packed key bytes — encode the post-elapse base once, then each
///    disturbance subset is a word-level copy of that 16/48-byte
///    encoding plus popcount-many byte patches, and grants patch two
///    more bytes. No AppState walk, no re-encode, no per-successor
///    dispatch: the inner loops are straight-line copies and table
///    lookups the compiler auto-vectorizes.
///  - expand_generic(): the reference path (witness recording, and the
///    kSlackAware policy whose preemption test needs full waiter views).
///
/// Emission order is identical across both paths and matches the
/// original one-state-at-a-time code exactly: subsets in ascending mask
/// order, grant ties in ascending app index. Everything downstream
/// (discovery order, fingerprints, snapshots, DFS traversal) depends on
/// that order, so it is part of this class's contract.
template <typename Shape>
class Expander {
 public:
  using Key = typename Shape::Key;
  using State = typename Shape::State;

  Expander(const std::vector<AppTiming>& apps,
           const DiscreteVerifier::Options& options)
      : apps_(apps),
        options_(options),
        napps_(apps.size()),
        bounded_(options.max_disturbances_per_app >= 0),
        base_(Shape::blank(napps_)),
        s_(Shape::blank(napps_)),
        granted_(Shape::blank(napps_)) {}

  struct Violation {
    int violator = -1;
    std::string action;  ///< only materialized when Record
  };

  /// Expands `cur_key`. Returns false when the elapse phase reaches the
  /// Error location (violation filled); otherwise feeds every successor
  /// key to `sink` — sink(Key&&) normally, or sink(Key&&, action, tick)
  /// when Record — and returns true. `seed_pop`/`prefix_napps` carry the
  /// prefix-extension subset restriction (see run_search).
  template <bool Record, typename Sink>
  bool expand(const Key& cur_key, bool seed_pop, size_t prefix_napps,
              Violation& violation, Sink&& sink) {
    decode<Shape>(cur_key, napps_, base_);

    // ---- Phase 1: one sample elapses. -----------------------------------
    bool error_now = false;
    for (size_t i = 0; i < napps_; ++i) {
      AppState& a = base_[i];
      switch (a.loc) {
        case kSteady:
          break;
        case kWait:
          ++a.elapsed;
          // Clock passed T*w while still waiting: the application automaton
          // reaches Error (paper Fig. 5).
          if (a.elapsed > apps_[i].t_star_w) {
            error_now = true;
            violation.violator = static_cast<int>(i);
            if (Record)
              violation.action = apps_[i].name + " exceeded T*w=" +
                                 std::to_string(apps_[i].t_star_w) +
                                 " while waiting";
          }
          break;
        case kTt:
          ++a.elapsed;
          break;
        case kSafe:
          ++a.elapsed;
          if (a.elapsed >= apps_[i].min_interarrival) {
            a.loc = kSteady;
            a.elapsed = 0;
            a.wt_grant = 0;
          }
          break;
      }
    }
    if (error_now) {
      // A seeded state cannot reach Error in phase 1: the prefix proof
      // already expanded it without one, and appended (steady) apps never
      // wait. Anything else would mean the snapshot belongs to different
      // timings than this prefix.
      TTDIM_CHECK(!seed_pop);
      return false;
    }

    // ---- Subset-invariant occupant facts. -------------------------------
    // A disturbance subset only moves kSteady apps to kWait, so the slot
    // occupant, its continuous time in the slot and its dwell-row bounds
    // are identical across all subsets of this pop — hoisted out of the
    // expansion loop (phase 3 consumes them).
    occupant0_ = -1;
    for (size_t i = 0; i < napps_; ++i)
      if (base_[i].loc == kTt) {
        TTDIM_CHECK(occupant0_ < 0);  // single-slot invariant
        occupant0_ = static_cast<int>(i);
      }
    occ_ct_ = occ_dtm_ = occ_dtp_ = 0;
    if (occupant0_ >= 0) {
      const AppState& o = base_[static_cast<size_t>(occupant0_)];
      occ_ct_ = o.elapsed - o.wt_grant;
      occ_dtm_ = apps_[static_cast<size_t>(occupant0_)].t_minus[o.wt_grant];
      occ_dtp_ = apps_[static_cast<size_t>(occupant0_)].t_plus[o.wt_grant];
      TTDIM_CHECK(occ_ct_ >= 0 && occ_ct_ <= occ_dtp_);
    }
    base_waiters_ = 0;
    for (size_t i = 0; i < napps_; ++i)
      if (base_[i].loc == kWait) ++base_waiters_;

    // ---- Phase 2 setup: which apps can be disturbed. --------------------
    steady_.clear();
    for (size_t i = 0; i < napps_; ++i) {
      if (base_[i].loc != kSteady) continue;
      if (bounded_ &&
          base_[i].dist_count >=
              static_cast<uint8_t>(options_.max_disturbances_per_app))
        continue;
      steady_.push_back(i);
    }
    if (steady_.size() > kMaxSteadyBranching)
      throw std::runtime_error(
          "DiscreteVerifier: disturbance branching too wide (" +
          std::to_string(steady_.size()) +
          " simultaneously disturbable applications)");

    // Subsets that disturb no appended application map a seeded state to
    // another seeded state (the prefix is closed under its own
    // transitions), so re-expanding a seed only needs the branches that
    // involve an appended app. Skipping the rest emits nothing new by
    // construction — the skipped successors are already in the visited
    // set — and leaves the discovery order of genuinely new states
    // untouched.
    size_t appended_mask = 0;
    if (seed_pop)
      for (size_t b = 0; b < steady_.size(); ++b)
        if (steady_[b] >= prefix_napps) appended_mask |= size_t{1} << b;

    if constexpr (Record) {
      expand_generic<true>(appended_mask, seed_pop, sink);
    } else if (options_.policy == SlotPolicy::kSlackAware) {
      expand_generic<false>(appended_mask, seed_pop, sink);
    } else {
      expand_fast(appended_mask, seed_pop, sink);
    }
    return true;
  }

 private:
  // Phases 2–4 over full AppState copies: the reference expansion, kept
  // for witness recording (action strings, tick contents — a handful of
  // heap allocations per successor) and for the slack-aware policy.
  template <bool Record, typename Sink>
  void expand_generic(size_t appended_mask, bool seed_pop, Sink&& sink) {
    const size_t subsets = size_t{1} << steady_.size();
    for (size_t mask = 0; mask < subsets; ++mask) {
      if (seed_pop && (mask & appended_mask) == 0) continue;
      s_ = base_;
      std::string action;
      if (Record) action = "tick";
      WitnessTick tick;
      for (size_t b = 0; b < steady_.size(); ++b) {
        if (!(mask & (size_t{1} << b))) continue;
        AppState& a = s_[steady_[b]];
        a.loc = kWait;
        a.elapsed = 0;
        if (bounded_) ++a.dist_count;
        if (Record) {
          action += " disturb(" + apps_[steady_[b]].name + ")";
          tick.disturbed.push_back(static_cast<int>(steady_[b]));
        }
      }

      // ---- Phase 3: slot occupant bookkeeping. --------------------------
      int occupant = occupant0_;
      // Waiters in s = waiters surviving phase 1 + the just-disturbed.
      const bool any_waiter =
          base_waiters_ + std::bitset<64>(mask).count() > 0;
      auto leave_slot = [&](size_t i, const char* why) {
        AppState& a = s_[i];
        if (a.elapsed >= apps_[i].min_interarrival) {
          a.loc = kSteady;
          a.elapsed = 0;
        } else {
          a.loc = kSafe;
        }
        a.wt_grant = 0;
        if (Record)
          action += std::string(" ") + why + "(" + apps_[i].name + ")";
      };
      if (occupant >= 0) {
        if (occ_ct_ == occ_dtp_) {
          leave_slot(static_cast<size_t>(occupant), "evict");
          occupant = -1;
        } else if (occ_ct_ >= occ_dtm_ && any_waiter) {
          bool preempt = true;
          if (options_.policy == SlotPolicy::kSlackAware) {
            waiters_.clear();
            for (size_t i = 0; i < napps_; ++i)
              if (s_[i].loc == kWait)
                waiters_.push_back({static_cast<int>(i), s_[i].elapsed});
            preempt = !preemption_postponable(apps_, waiters_, occupant);
          }
          if (preempt) {
            leave_slot(static_cast<size_t>(occupant), "preempt");
            occupant = -1;
          }
        }
      }

      // ---- Phase 4: grant (EDF on remaining deadline, ties explored). ---
      if (occupant < 0) {
        int best_remaining = INT32_MAX;
        candidates_.clear();
        for (size_t i = 0; i < napps_; ++i) {
          if (s_[i].loc != kWait) continue;
          const int remaining = apps_[i].t_star_w - s_[i].elapsed;
          TTDIM_CHECK(remaining >= 0);
          if (remaining < best_remaining) {
            best_remaining = remaining;
            candidates_.clear();
            candidates_.push_back(i);
          } else if (remaining == best_remaining) {
            candidates_.push_back(i);
          }
        }
        if (!candidates_.empty()) {
          for (size_t c : candidates_) {
            granted_ = s_;
            granted_[c].loc = kTt;
            granted_[c].wt_grant = granted_[c].elapsed;
            if constexpr (Record) {
              WitnessTick grant_tick = tick;
              grant_tick.granted = static_cast<int>(c);
              sink(encode<Shape>(granted_, napps_),
                   action + " grant(" + apps_[c].name +
                       ",Tw=" + std::to_string(granted_[c].elapsed) + ")",
                   std::move(grant_tick));
            } else {
              sink(encode<Shape>(granted_, napps_));
            }
          }
          continue;  // grant branches cover this subset
        }
      }
      if constexpr (Record) {
        sink(encode<Shape>(s_, napps_), action, std::move(tick));
      } else {
        sink(encode<Shape>(s_, napps_));
      }
    }
  }

  // Phases 2–4 straight over the packed key bytes (kPaper, no witness).
  template <typename Sink>
  void expand_fast(size_t appended_mask, bool seed_pop, Sink&& sink) {
    base_key_ = encode<Shape>(base_, napps_);

    // Hoisted per-pop constants. Base waiters are gathered in ascending
    // app index with their remaining deadlines; a freshly disturbed app's
    // remaining deadline is its full T*w (elapsed resets to 0).
    bw_idx_.clear();
    bw_rem_.clear();
    int base_best = INT32_MAX;
    for (size_t i = 0; i < napps_; ++i) {
      if (base_[i].loc != kWait) continue;
      const int remaining = apps_[i].t_star_w - base_[i].elapsed;
      TTDIM_CHECK(remaining >= 0);
      bw_idx_.push_back(i);
      bw_rem_.push_back(remaining);
      base_best = std::min(base_best, remaining);
    }
    dist_rem_.clear();
    disturb_b0_.clear();  // disturbed mode byte: kWait + bumped budget
    for (size_t b = 0; b < steady_.size(); ++b) {
      const size_t i = steady_[b];
      dist_rem_.push_back(apps_[i].t_star_w);
      const uint8_t dist =
          static_cast<uint8_t>(base_[i].dist_count + (bounded_ ? 1 : 0));
      disturb_b0_.push_back(static_cast<uint8_t>(kWait | (dist << 2)));
    }

    // The occupant's fate is subset-invariant except through "is any
    // waiter present": eviction always fires, preemption fires iff a
    // waiter exists (kPaper never postpones). Its leave bytes are a
    // constant triple.
    bool evict = false;
    bool preempt_on_waiter = false;
    uint8_t leave_b0 = 0;
    uint8_t leave_b1 = 0;
    if (occupant0_ >= 0) {
      const size_t o = static_cast<size_t>(occupant0_);
      evict = occ_ct_ == occ_dtp_;
      preempt_on_waiter = !evict && occ_ct_ >= occ_dtm_;
      const AppState& ost = base_[o];
      if (ost.elapsed >= apps_[o].min_interarrival) {
        leave_b0 = static_cast<uint8_t>(kSteady | (ost.dist_count << 2));
        leave_b1 = 0;
      } else {
        leave_b0 = static_cast<uint8_t>(kSafe | (ost.dist_count << 2));
        leave_b1 = ost.elapsed;
      }
    }

    const size_t subsets = size_t{1} << steady_.size();
    for (size_t mask = 0; mask < subsets; ++mask) {
      if (seed_pop && (mask & appended_mask) == 0) continue;
      out_key_ = base_key_;  // word-level copy of the packed encoding
      uint8_t* b = out_key_.data();
      for (size_t bits = mask; bits != 0; bits &= bits - 1) {
        const size_t bi = ctz(bits);
        const size_t app = steady_[bi];
        b[3 * app] = disturb_b0_[bi];
        b[3 * app + 1] = 0;  // wt_grant byte is already 0 for steady apps
      }

      const bool any_waiter = !bw_idx_.empty() || mask != 0;
      bool slot_free = occupant0_ < 0;
      if (!slot_free && (evict || (preempt_on_waiter && any_waiter))) {
        uint8_t* ob = b + 3 * static_cast<size_t>(occupant0_);
        ob[0] = leave_b0;
        ob[1] = leave_b1;
        ob[2] = 0;
        slot_free = true;
      }

      if (slot_free) {
        int best = base_best;
        for (size_t bits = mask; bits != 0; bits &= bits - 1)
          best = std::min(best, dist_rem_[ctz(bits)]);
        if (best != INT32_MAX) {
          // Tie candidates in ascending app index — the exact order the
          // reference scan produces — by merging the two sorted waiter
          // streams (base waiters and this subset's fresh waiters are
          // disjoint).
          size_t wi = 0;
          size_t bits = mask;
          while (wi < bw_idx_.size() || bits != 0) {
            const size_t app_w = wi < bw_idx_.size() ? bw_idx_[wi] : SIZE_MAX;
            const size_t bi = bits != 0 ? ctz(bits) : 0;
            const size_t app_d = bits != 0 ? steady_[bi] : SIZE_MAX;
            size_t app;
            int remaining;
            if (app_w < app_d) {
              app = app_w;
              remaining = bw_rem_[wi];
              ++wi;
            } else {
              app = app_d;
              remaining = dist_rem_[bi];
              bits &= bits - 1;
            }
            if (remaining != best) continue;
            grant_key_ = out_key_;
            uint8_t* gb = grant_key_.data() + 3 * app;
            gb[0] = static_cast<uint8_t>((gb[0] & ~0x03) | kTt);
            gb[2] = gb[1];  // wt_grant := elapsed at grant time
            sink(std::move(grant_key_));
          }
          continue;  // grant branches cover this subset
        }
      }
      sink(Key(out_key_));
    }
  }

  const std::vector<AppTiming>& apps_;
  const DiscreteVerifier::Options& options_;
  const size_t napps_;
  const bool bounded_;

  // Post-elapse facts of the state being expanded.
  State base_;
  int occupant0_ = -1;
  int occ_ct_ = 0;
  int occ_dtm_ = 0;
  int occ_dtp_ = 0;
  size_t base_waiters_ = 0;
  std::vector<size_t> steady_;

  // Generic-path scratch.
  State s_;
  State granted_;
  std::vector<size_t> candidates_;
  std::vector<WaiterView> waiters_;

  // Fast-path scratch.
  Key base_key_;
  Key out_key_;
  Key grant_key_;
  std::vector<size_t> bw_idx_;
  std::vector<int> bw_rem_;
  std::vector<int> dist_rem_;
  std::vector<uint8_t> disturb_b0_;
};

template <typename Shape>
SlotVerdict run_search(const std::vector<AppTiming>& apps,
                       const DiscreteVerifier::Options& options,
                       const ExplorationState* extend_from,
                       ExplorationState* capture) {
  using Key = typename Shape::Key;

  const size_t napps = apps.size();
  TTDIM_EXPECTS(napps >= 1 && napps <= Shape::kKeyApps);
  // The packed key stores the budget in 6 bits.
  TTDIM_EXPECTS(options.max_disturbances_per_app <= 62);
  // Prefix extension and snapshot capture rely on the FIFO queue doubling
  // as the discovery-order log; witnesses would need parenthood for seeds.
  if (extend_from != nullptr || capture != nullptr) {
    TTDIM_EXPECTS(!options.depth_first);
    TTDIM_EXPECTS(!options.want_witness);
  }

  SlotVerdict verdict;
  VisitedSet<Key> visited;
  // FIFO via a head cursor: in breadth-first mode the vector is never
  // popped, so after a completed (safe) search it holds every reachable
  // state in discovery order — exactly the snapshot `capture` wants.
  std::vector<Key> queue;
  size_t head = 0;
  // Parenthood for witness reconstruction: predecessor key, description,
  // and the structured tick content.
  struct Parenthood {
    Key from;
    std::string action;
    WitnessTick tick;
  };
  std::unordered_map<Key, Parenthood, KeyHash<Key>> parent;

  // Number of seeded states; the first `seed_count` pops are exactly the
  // seeds (FIFO), which is what licenses the subset restriction below.
  size_t seed_count = 0;
  size_t prefix_napps = 0;
  const Key init_key = encode<Shape>(Shape::blank(napps), napps);
  if (extend_from != nullptr) {
    const ExplorationState& base = *extend_from;
    // Soundness invariants of "appending is conservative" (discrete.h):
    // a strict prefix of this population, at least one record, whole
    // records only, and the prefix run's own initial state leading the
    // discovery order (the true initial state must be among the seeds).
    TTDIM_EXPECTS(base.napps >= 1 && base.napps < napps);
    const size_t stride = 3 * base.napps;
    TTDIM_EXPECTS(!base.packed.empty() && base.packed.size() % stride == 0);
    for (size_t i = 0; i < stride; ++i) TTDIM_EXPECTS(base.packed[i] == 0);
    prefix_napps = base.napps;
    seed_count = base.packed.size() / stride;
    visited.reserve(seed_count);
    queue.reserve(seed_count);
    for (size_t r = 0; r < seed_count; ++r) {
      Key k = Shape::make_key(3 * napps);
      std::memcpy(k.data(), base.packed.data() + r * stride, stride);
      // Appended applications start steady == all-zero record bytes, so
      // zero-extension *is* the embedding of the prefix state.
      TTDIM_CHECK(visited.insert(k));  // prefix snapshot holds no duplicates
      queue.push_back(std::move(k));
    }
  } else {
    visited.insert(init_key);
    queue.push_back(init_key);
  }

  auto build_witness = [&](const Key& leaf_key,
                           const std::string& final_action) {
    std::vector<std::string> steps{final_action};
    Key cur = leaf_key;
    while (cur != init_key) {
      const auto it = parent.find(cur);
      if (it == parent.end()) break;
      steps.push_back(it->second.action);
      verdict.witness_ticks.push_back(it->second.tick);
      cur = it->second.from;
    }
    steps.push_back("all applications steady");
    std::reverse(steps.begin(), steps.end());
    std::reverse(verdict.witness_ticks.begin(), verdict.witness_ticks.end());
    return steps;
  };

  Expander<Shape> expander(apps, options);
  Key cur_key;

  // Non-witness successors route through a probe block: hashed at
  // emission, flushed in batches — ensure_room() once per flush, software
  // prefetch of every home slot, then the inserts in emission order.
  // Order in == order out, so discovery order (and with it fingerprints,
  // snapshots and the DFS stack) is byte-identical to unbatched probing;
  // only the memory latency of the probes changes.
  std::vector<Probe<Key>> block;
  block.reserve(kProbeBlock);
  auto flush = [&]() {
    visited.ensure_room(block.size());
    for (const Probe<Key>& p : block) visited.prefetch(p.hash);
    for (Probe<Key>& p : block)
      if (visited.insert_hashed(p.hash, p.key))
        queue.push_back(std::move(p.key));
    block.clear();
  };
  auto sink = [&](Key&& key) {
    const size_t hash = VisitedSet<Key>::hash_of(key);
    block.push_back(Probe<Key>{hash, std::move(key)});
    if (block.size() >= kProbeBlock) flush();
  };
  // The witness path keeps per-emission inserts: parenthood must be
  // recorded exactly for the keys that are genuinely new.
  auto record_sink = [&](Key&& key, const std::string& action,
                         WitnessTick&& tick) {
    if (!visited.insert(key)) return;
    parent.emplace(key, Parenthood{cur_key, action, std::move(tick)});
    queue.push_back(std::move(key));
  };

  while (head < queue.size()) {
    if (options.depth_first) {
      cur_key = std::move(queue.back());
      queue.pop_back();
    } else {
      cur_key = queue[head];  // the vector doubles as the discovery log
      ++head;
    }
    // True while this pop re-expands a seeded prefix state (seeds occupy
    // the front of the FIFO queue, so the pop index identifies them).
    const bool seed_pop = !options.depth_first && head <= seed_count &&
                          extend_from != nullptr;
    ++verdict.states_explored;
    if (verdict.states_explored > options.max_states)
      throw std::runtime_error("DiscreteVerifier: state budget exhausted");

    typename Expander<Shape>::Violation violation;
    const bool ok =
        options.want_witness
            ? expander.template expand<true>(cur_key, seed_pop, prefix_napps,
                                             violation, record_sink)
            : expander.template expand<false>(cur_key, seed_pop, prefix_napps,
                                              violation, sink);
    if (!ok) {
      verdict.safe = false;
      verdict.violator = violation.violator;
      if (options.want_witness)
        verdict.witness = build_witness(cur_key, violation.action);
      return verdict;
    }
    // Successors must be visible before the next pop (the DFS stack pops
    // them immediately; the BFS loop condition reads queue.size()).
    if (!block.empty()) flush();
  }

  verdict.safe = true;
  if (capture != nullptr) {
    // Safe == exhausted queue == the FIFO log is the full reachable set.
    capture->napps = napps;
    capture->packed.clear();
    capture->packed.reserve(queue.size() * 3 * napps);
    for (const Key& k : queue)
      capture->packed.insert(capture->packed.end(), k.data(),
                             k.data() + 3 * napps);
  }
  return verdict;
}

/// Level-synchronous parallel BFS: each level's frontier is split into
/// contiguous chunks on the process-wide Executor; every chunk expands
/// its states through the same Expander the serial driver uses and
/// deduplicates through the striped visited set (per-stripe probe
/// buckets, one lock + one ensure_room per stripe per flush). Because
/// dedup is exact and the expansion relation is deterministic, the set
/// of states discovered per level — and hence the whole reachable set —
/// is identical to serial at any thread count; only the order within a
/// level varies. A completed safe proof therefore reports exactly the
/// serial states_explored.
///
/// max_states is enforced through a shared atomic budget charged once
/// per expanded state (the same charging rule as the serial pop
/// counter), so budget exhaustion fires iff the serial run would have
/// fired it. A discovered violation wins over a concurrent budget trip:
/// reporting unsafe is always the sounder answer, and it keeps the one
/// corner where the two events race inside a single level (only
/// possible when the budget lands mid-level of an unsafe proof)
/// conservative.
template <typename Shape>
SlotVerdict run_parallel(const std::vector<AppTiming>& apps,
                         const DiscreteVerifier::Options& options) {
  using Key = typename Shape::Key;
  using Striped = detail::StripedVisitedSet<Key>;

  const size_t napps = apps.size();
  TTDIM_EXPECTS(napps >= 1 && napps <= Shape::kKeyApps);
  TTDIM_EXPECTS(options.max_disturbances_per_app <= 62);

  Striped visited;
  std::vector<Key> frontier;
  {
    const Key init_key = encode<Shape>(Shape::blank(napps), napps);
    TTDIM_CHECK(visited.insert(VisitedSet<Key>::hash_of(init_key), init_key));
    frontier.push_back(init_key);
  }

  std::atomic<long> expanded{0};
  std::atomic<bool> over_budget{false};
  std::atomic<bool> error_found{false};
  std::atomic<int> violator{-1};

  engine::Executor& executor = engine::Executor::global();
  while (!frontier.empty()) {
    const long level_size = static_cast<long>(frontier.size());
    const int chunks = engine::Executor::chunk_count(
        options.proof_threads, level_size, kParallelGrain);
    std::vector<std::vector<Key>> next(static_cast<size_t>(chunks));
    executor.run_chunks(
        options.proof_threads, level_size, kParallelGrain,
        [&](int chunk, long lo, long hi) {
          Expander<Shape> expander(apps, options);
          std::vector<Key>& out = next[static_cast<size_t>(chunk)];
          std::array<std::vector<Probe<Key>>, Striped::kNumStripes> buckets;
          size_t pending = 0;
          auto flush = [&]() {
            for (size_t si = 0; si < Striped::kNumStripes; ++si) {
              std::vector<Probe<Key>>& bucket = buckets[si];
              if (bucket.empty()) continue;
              typename Striped::Stripe& stripe = visited.stripe_at(si);
              support::MutexLock lock(stripe.mu);
              visited.reserve_in_stripe(stripe, bucket.size());
              for (Probe<Key>& p : bucket)
                if (visited.insert_in_stripe(stripe, p.hash, p.key))
                  out.push_back(std::move(p.key));
              bucket.clear();
            }
            pending = 0;
          };
          auto sink = [&](Key&& key) {
            const size_t hash = VisitedSet<Key>::hash_of(key);
            buckets[Striped::stripe_index(hash)].push_back(
                Probe<Key>{hash, std::move(key)});
            if (++pending >= kProbeBlock) flush();
          };
          typename Expander<Shape>::Violation violation;
          for (long i = lo; i < hi; ++i) {
            if (error_found.load(std::memory_order_relaxed) ||
                over_budget.load(std::memory_order_relaxed))
              return;  // another chunk already decided the proof's fate
            const long count =
                expanded.fetch_add(1, std::memory_order_relaxed) + 1;
            if (count > options.max_states) {
              over_budget.store(true, std::memory_order_relaxed);
              return;
            }
            if (!expander.template expand<false>(
                    frontier[static_cast<size_t>(i)], /*seed_pop=*/false,
                    /*prefix_napps=*/0, violation, sink)) {
              int expected = -1;
              violator.compare_exchange_strong(expected, violation.violator,
                                               std::memory_order_relaxed);
              error_found.store(true, std::memory_order_relaxed);
              return;
            }
          }
          if (pending > 0) flush();
        });
    // run_chunks is a barrier (the Executor joins every chunk), so plain
    // loads below observe everything the workers wrote.
    if (error_found.load()) {
      SlotVerdict verdict;
      verdict.safe = false;
      verdict.violator = violator.load();
      verdict.states_explored = expanded.load();
      return verdict;
    }
    if (over_budget.load())
      throw std::runtime_error("DiscreteVerifier: state budget exhausted");

    size_t total = 0;
    for (const std::vector<Key>& v : next) total += v.size();
    frontier.clear();
    frontier.reserve(total);
    for (std::vector<Key>& v : next)
      for (Key& k : v) frontier.push_back(std::move(k));
  }

  SlotVerdict verdict;
  verdict.safe = true;
  verdict.states_explored = expanded.load();
  return verdict;
}

}  // namespace

DiscreteVerifier::DiscreteVerifier(std::vector<AppTiming> apps)
    : apps_(std::move(apps)) {
  TTDIM_EXPECTS(!apps_.empty());
  if (apps_.size() > kMaxAppsUnpacked)
    throw std::invalid_argument(
        "DiscreteVerifier: " + std::to_string(apps_.size()) +
        " applications in one slot exceeds the supported maximum of " +
        std::to_string(kMaxAppsUnpacked) +
        " (the search explores 2^napps disturbance subsets per state and "
        "is intractable long before this bound)");
  for (const AppTiming& a : apps_) {
    a.validate();
    // Every representation stores counters in bytes.
    TTDIM_EXPECTS(a.min_interarrival < 250);
    TTDIM_EXPECTS(a.t_star_w + a.t_plus[static_cast<size_t>(a.t_star_w)] <
                  250);
  }
}

SlotVerdict DiscreteVerifier::verify(const Options& options) const {
  return verify(options, nullptr, nullptr);
}

SlotVerdict DiscreteVerifier::verify(const Options& options,
                                     const ExplorationState* extend_from,
                                     ExplorationState* capture) const {
  const size_t napps = apps_.size();
  if (options.proof_threads > 1) {
    // The parallel driver proves fresh, non-diagnostic queries only:
    // witnesses need parenthood, depth-first is inherently a stack walk,
    // and snapshot capture / prefix seeding rely on the serial FIFO
    // discovery log (header contract; callers must drop to serial for
    // those).
    TTDIM_EXPECTS(extend_from == nullptr && capture == nullptr);
    TTDIM_EXPECTS(!options.want_witness && !options.depth_first);
    if (options.backend == StateBackend::kUnpacked || napps > kMaxApps)
      return run_parallel<HeapShape>(apps_, options);
    if (3 * napps <= 16) return run_parallel<PackedShape<16>>(apps_, options);
    return run_parallel<PackedShape<48>>(apps_, options);
  }
  if (options.backend == StateBackend::kUnpacked || napps > kMaxApps)
    return run_search<HeapShape>(apps_, options, extend_from, capture);
  if (3 * napps <= 16)
    return run_search<PackedShape<16>>(apps_, options, extend_from, capture);
  return run_search<PackedShape<48>>(apps_, options, extend_from, capture);
}

void encode(support::codec::Encoder& enc, const SlotVerdict& verdict) {
  enc.u8(verdict.safe ? 1 : 0);
  enc.i64(verdict.states_explored);
  enc.u32(static_cast<std::uint32_t>(verdict.witness.size()));
  for (const std::string& line : verdict.witness) enc.str(line);
  enc.u32(static_cast<std::uint32_t>(verdict.witness_ticks.size()));
  for (const WitnessTick& tick : verdict.witness_ticks) {
    enc.ints(tick.disturbed);
    enc.i32(tick.granted);
  }
  enc.i32(verdict.violator);
}

bool decode(support::codec::Decoder& dec, SlotVerdict& verdict) {
  verdict = SlotVerdict{};
  std::uint8_t safe = 0;
  if (!dec.u8(safe) || safe > 1) return false;
  verdict.safe = safe != 0;
  std::int64_t states = 0;
  if (!dec.i64(states)) return false;
  verdict.states_explored = static_cast<long>(states);
  std::uint32_t nwitness = 0;
  if (!dec.u32(nwitness) || nwitness > dec.remaining() / 4) return false;
  verdict.witness.resize(nwitness);
  for (std::string& line : verdict.witness)
    if (!dec.str(line)) return false;
  std::uint32_t nticks = 0;
  if (!dec.u32(nticks) || nticks > dec.remaining() / 8) return false;
  verdict.witness_ticks.resize(nticks);
  for (WitnessTick& tick : verdict.witness_ticks)
    if (!dec.ints(tick.disturbed) || !dec.i32(tick.granted)) return false;
  return dec.i32(verdict.violator);
}

}  // namespace ttdim::verify
