// Network-of-timed-automata model of the slot-sharing protocol, mirroring
// the paper's Sec. 4 UPPAAL model: one application automaton per app
// (Fig. 5), a scheduler automaton performing the per-sample committed
// sequence (Fig. 7), with the Policy/Sort buffer manipulation (Fig. 6)
// folded into atomic variable updates (the nested automata exist in the
// paper only because UPPAAL's update language cannot loop over a buffer in
// one shot; the semantics is identical because the paper's Policy/Sort run
// in committed locations with no time passing).
#pragma once

#include <memory>

#include "ta/network.h"
#include "verify/discrete.h"

namespace ttdim::verify {

/// The constructed network plus the handles needed to pose the
/// reachability query.
struct SlotSystemModel {
  ta::Network network;
  std::vector<int> error_locations;  ///< per app automaton index -> Error loc
  std::vector<int> app_automata;     ///< automaton index of each application

  /// Goal predicate: some application reached Error.
  [[nodiscard]] ta::ZoneChecker::Goal error_reachable_goal() const;
};

/// Build the timed-automata model for a set of applications sharing one TT
/// slot. `max_disturbances_per_app < 0` models the unbounded sporadic
/// disturbance process; >= 0 bounds instances per application (paper
/// Sec. 5, verification-time acceleration).
[[nodiscard]] std::unique_ptr<SlotSystemModel> build_slot_system_model(
    const std::vector<AppTiming>& apps, int max_disturbances_per_app = -1);

/// Convenience facade with the same interface shape as DiscreteVerifier,
/// running the zone-based checker on the TA model.
class ZoneVerifier {
 public:
  struct Options {
    int max_disturbances_per_app = -1;
    long max_states = 50'000'000;

    Options() {}
  };

  explicit ZoneVerifier(std::vector<AppTiming> apps);

  [[nodiscard]] SlotVerdict verify(const Options& options = {}) const;

 private:
  std::vector<AppTiming> apps_;
};

}  // namespace ttdim::verify
