// Serialisation of the deployed timing tables.
//
// The dwell tables are computed offline (this library) and burned into the
// ECU image; this header defines the interchange format: a line-oriented
// text form that is trivially diffable in code review and parseable by the
// target build. Round-trip fidelity is tested in tests/verify_test.cpp.
//
// Format (one application per block):
//   app <name>
//   r <int>
//   tstar <int>
//   tminus <run-length pairs: count value ...>
//   tplus  <run-length pairs: count value ...>
//   end
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "verify/app_timing.h"

namespace ttdim::verify {

/// Serialise timing tables (run-length encoded, the ECU storage format the
/// paper's Sec. 5 alludes to).
void write_timing(std::ostream& os, const AppTiming& timing);
[[nodiscard]] std::string timing_to_string(const AppTiming& timing);

/// Parse one application block. Throws std::invalid_argument on malformed
/// input; the parsed tables are re-validated.
[[nodiscard]] AppTiming read_timing(std::istream& is);
[[nodiscard]] AppTiming timing_from_string(const std::string& text);

/// Whole-system convenience wrappers.
void write_timings(std::ostream& os,
                   const std::vector<AppTiming>& timings);
[[nodiscard]] std::vector<AppTiming> read_timings(std::istream& is);

}  // namespace ttdim::verify
