// The conservative switching scheme of Masrur et al. [9] (DATE 2012) that
// the paper compares against in Sec. 5.
//
// Under [9] an application requests the TT slot on a disturbance and, once
// granted, holds the slot non-preemptively until the disturbance is
// completely rejected. Two arbitration strategies are analysed:
//   1. plain non-preemptive deadline-monotonic arbitration;
//   2. the same, but lower-priority applications delay their slot requests
//      to sample boundaries so they can never block a higher-priority
//      request for more than one sample.
// Admission is by closed-form busy-period schedulability analysis rather
// than model checking — which is exactly the conservatism the paper's
// model-checking approach removes.
//
// The DAC paper only summarises [9]; the analysis below reconstructs it
// with standard non-preemptive response-time machinery (see EXPERIMENTS.md
// for the resulting partition vs. the paper's).
#pragma once

#include <vector>

#include "verify/app_timing.h"

namespace ttdim::sched {

using verify::AppTiming;

/// Timing abstraction of one application under the baseline strategy.
struct BaselineApp {
  std::string name;
  int hold = 0;             ///< H: samples the slot is held once granted (JT)
  int wait_budget = 0;      ///< D: max wait tolerable (T*w)
  int min_interarrival = 0; ///< r
};

/// Derive the baseline abstraction from the switching-strategy timing
/// tables: the conservative scheme holds the slot until the disturbance is
/// fully rejected (the dedicated-slot settling time JT) and tolerates the
/// same maximum wait T*w.
[[nodiscard]] BaselineApp make_baseline_app(const AppTiming& timing,
                                            int settling_tt);

enum class BaselineStrategy {
  kNonPreemptiveDm,   ///< strategy 1 of [9]
  kDelayedRequests,   ///< strategy 2 of [9]
};

/// Result of the busy-period analysis for one slot.
struct BaselineAnalysis {
  bool schedulable = false;
  /// Worst-case wait (samples) per application, in the order given.
  std::vector<int> worst_wait;
};

/// Non-preemptive deadline-monotonic schedulability of `apps` sharing one
/// TT slot under the given strategy. Priorities: smaller wait budget first
/// (ties: order of appearance). An application i is admitted when its
/// worst-case wait
///   w_i = B_i + sum_{j in hp(i)} ceil((w_i + 1) / r_j) * H_j
/// (B_i: largest lower-priority hold for strategy 1, one sample for
/// strategy 2) plus the one-sample request-registration delay stays within
/// its budget: w_i <= D_i - 1.
[[nodiscard]] BaselineAnalysis analyze_baseline_slot(
    const std::vector<BaselineApp>& apps, BaselineStrategy strategy);

}  // namespace ttdim::sched
