// Whole-system runtime: simulate every TT slot of a slot assignment in
// parallel (slots are independent resources; each runs the verified
// single-slot protocol).
#pragma once

#include "mapping/first_fit.h"
#include "sched/slot_scheduler.h"

namespace ttdim::sched {

/// Result of simulating all slots of an assignment.
struct SystemScheduleResult {
  std::vector<ScheduleResult> per_slot;  ///< one per assignment slot
  bool deadline_violated = false;

  [[nodiscard]] int slot_count() const noexcept {
    return static_cast<int>(per_slot.size());
  }
};

/// Simulate the full assignment against a system-wide scenario (indices of
/// `scenario.disturbances` refer to `apps`, the same vector the assignment
/// indexes into). Forced grants are not supported at the system level.
[[nodiscard]] SystemScheduleResult simulate_system(
    const std::vector<AppTiming>& apps,
    const mapping::SlotAssignment& assignment, const Scenario& scenario);

}  // namespace ttdim::sched
