#include "sched/baseline.h"

#include <algorithm>
#include <numeric>

#include "support/check.h"

namespace ttdim::sched {

BaselineApp make_baseline_app(const AppTiming& timing, int settling_tt) {
  TTDIM_EXPECTS(settling_tt > 0);
  timing.validate();
  return {timing.name, settling_tt, timing.t_star_w, timing.min_interarrival};
}

BaselineAnalysis analyze_baseline_slot(const std::vector<BaselineApp>& apps,
                                       BaselineStrategy strategy) {
  TTDIM_EXPECTS(!apps.empty());
  for (const BaselineApp& a : apps) {
    TTDIM_EXPECTS(a.hold > 0 && a.wait_budget >= 0 && a.min_interarrival > 0);
  }
  const size_t n = apps.size();
  // Deadline-monotonic priority order: smaller budget first, stable.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return apps[a].wait_budget < apps[b].wait_budget;
  });

  BaselineAnalysis out;
  out.worst_wait.assign(n, 0);
  out.schedulable = true;
  for (size_t rank = 0; rank < n; ++rank) {
    const size_t i = order[rank];
    // Blocking from lower-priority holds.
    int blocking = 0;
    if (strategy == BaselineStrategy::kNonPreemptiveDm) {
      for (size_t lr = rank + 1; lr < n; ++lr)
        blocking = std::max(blocking, apps[order[lr]].hold);
    } else {
      // Delayed requests: a lower-priority request is deferred to the next
      // sample boundary, so it can occupy the slot for at most the one
      // sample that already started.
      if (rank + 1 < n) blocking = 1;
    }
    // Fixed-point busy-period iteration.
    int w = blocking;
    for (int iter = 0; iter < 10'000; ++iter) {
      long interference = 0;
      for (size_t hr = 0; hr < rank; ++hr) {
        const BaselineApp& hp = apps[order[hr]];
        interference +=
            static_cast<long>((w + 1 + hp.min_interarrival - 1) /
                              hp.min_interarrival) *
            hp.hold;
      }
      const long w_next = blocking + interference;
      if (w_next == w) break;
      w = static_cast<int>(std::min<long>(w_next, 1'000'000));
      if (w >= 1'000'000) break;  // divergent: clearly unschedulable
    }
    out.worst_wait[i] = w;
    // One extra sample pays for asynchronous request registration.
    if (w > apps[i].wait_budget - 1) out.schedulable = false;
  }
  return out;
}

}  // namespace ttdim::sched
