#include "sched/slot_scheduler.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "support/check.h"

namespace ttdim::sched {

namespace {

enum class Mode { Steady, Wait, Tt, Safe };

struct RuntimeApp {
  Mode mode = Mode::Steady;
  int elapsed = 0;   ///< samples since the disturbance was seen
  int wt_grant = 0;  ///< wait at grant (Tt only)
  size_t next_disturbance = 0;
};

}  // namespace

std::string ScheduleResult::describe_events(
    const std::vector<AppTiming>& apps) const {
  std::ostringstream os;
  for (const SlotEvent& e : events) {
    os << "t=" << e.tick << " ";
    switch (e.kind) {
      case SlotEvent::Kind::Grant:
        os << "grant " << apps[static_cast<size_t>(e.app)].name
           << " (Tw=" << e.wait << ")";
        break;
      case SlotEvent::Kind::Preempt:
        os << "preempt " << apps[static_cast<size_t>(e.app)].name;
        break;
      case SlotEvent::Kind::Evict:
        os << "evict " << apps[static_cast<size_t>(e.app)].name;
        break;
    }
    os << "\n";
  }
  return os.str();
}

ScheduleResult simulate_slot(const std::vector<AppTiming>& apps,
                             const Scenario& scenario, SlotPolicy policy) {
  TTDIM_EXPECTS(!apps.empty());
  TTDIM_EXPECTS(scenario.disturbances.size() == apps.size());
  TTDIM_EXPECTS(scenario.horizon > 0);
  const size_t napps = apps.size();
  for (size_t i = 0; i < napps; ++i) {
    apps[i].validate();
    const auto& d = scenario.disturbances[i];
    for (size_t k = 0; k < d.size(); ++k) {
      if (d[k] < 0 || d[k] >= scenario.horizon)
        throw std::invalid_argument("scenario: disturbance outside horizon");
      if (k > 0 && d[k] - d[k - 1] < apps[i].min_interarrival)
        throw std::invalid_argument(
            "scenario: disturbances of " + apps[i].name +
            " violate the minimum inter-arrival time");
    }
  }

  ScheduleResult result;
  result.occupant.assign(static_cast<size_t>(scenario.horizon), -1);
  result.tt_mask.assign(napps,
                        std::vector<bool>(static_cast<size_t>(scenario.horizon),
                                          false));
  std::vector<RuntimeApp> state(napps);

  for (int tick = 0; tick < scenario.horizon; ++tick) {
    // Phase 1: one sample elapses for every non-steady application.
    for (size_t i = 0; i < napps; ++i) {
      RuntimeApp& a = state[i];
      if (a.mode == Mode::Steady) continue;
      ++a.elapsed;
      if (a.mode == Mode::Wait && a.elapsed > apps[i].t_star_w &&
          !result.deadline_violated) {
        result.deadline_violated = true;
        result.violator = static_cast<int>(i);
        result.violation_tick = tick;
      }
      if (a.mode == Mode::Safe && a.elapsed >= apps[i].min_interarrival) {
        a.mode = Mode::Steady;
        a.elapsed = 0;
      }
    }

    // Phase 2: disturbances seen this tick.
    for (size_t i = 0; i < napps; ++i) {
      RuntimeApp& a = state[i];
      const auto& d = scenario.disturbances[i];
      if (a.next_disturbance < d.size() &&
          d[a.next_disturbance] == tick) {
        if (a.mode != Mode::Steady)
          throw std::invalid_argument(
              "scenario: disturbance of " + apps[i].name +
              " while the previous one is still being handled");
        a.mode = Mode::Wait;
        a.elapsed = 0;
        ++a.next_disturbance;
      }
    }

    // Phase 3: occupant bookkeeping.
    int occupant = -1;
    for (size_t i = 0; i < napps; ++i)
      if (state[i].mode == Mode::Tt) occupant = static_cast<int>(i);
    const auto any_waiter = [&]() {
      for (size_t i = 0; i < napps; ++i)
        if (state[i].mode == Mode::Wait) return true;
      return false;
    };
    if (occupant >= 0) {
      RuntimeApp& o = state[static_cast<size_t>(occupant)];
      const int ct = o.elapsed - o.wt_grant;
      const auto& t = apps[static_cast<size_t>(occupant)];
      // The simulator keeps running after a deadline violation (the plots
      // need the tail), so a grant may arrive with wt_grant > T*w, past
      // the end of the dwell tables; use the T*w row for such occupants.
      const size_t wt_row =
          static_cast<size_t>(std::min(o.wt_grant, t.t_star_w));
      const int dtm = t.t_minus[wt_row];
      const int dtp = t.t_plus[wt_row];
      const bool evict = ct == dtp;
      bool preempt = !evict && ct >= dtm && any_waiter();
      if (preempt && policy == SlotPolicy::kSlackAware) {
        std::vector<verify::WaiterView> waiters;
        for (size_t i = 0; i < napps; ++i)
          if (state[i].mode == Mode::Wait)
            waiters.push_back({static_cast<int>(i), state[i].elapsed});
        preempt = !verify::preemption_postponable(apps, waiters, occupant);
      }
      if (evict || preempt) {
        o.mode = o.elapsed >= t.min_interarrival ? Mode::Steady : Mode::Safe;
        if (o.mode == Mode::Steady) o.elapsed = 0;
        result.events.push_back({tick,
                                 evict ? SlotEvent::Kind::Evict
                                       : SlotEvent::Kind::Preempt,
                                 occupant, 0});
        occupant = -1;
      }
    }

    // Phase 4: grant by smallest remaining deadline, ties to the lowest
    // application index (or the forced choice when the scenario replays a
    // verifier counterexample).
    if (occupant >= 0 &&
        tick < static_cast<int>(scenario.forced_grants.size()) &&
        scenario.forced_grants[static_cast<size_t>(tick)] >= 0)
      throw std::invalid_argument(
          "scenario: forced grant at tick " + std::to_string(tick) +
          " but the slot is still occupied");
    if (occupant < 0) {
      int best = -1;
      int best_remaining = INT32_MAX;
      for (size_t i = 0; i < napps; ++i) {
        if (state[i].mode != Mode::Wait) continue;
        const int remaining = apps[i].t_star_w - state[i].elapsed;
        if (remaining < best_remaining) {
          best_remaining = remaining;
          best = static_cast<int>(i);
        }
      }
      if (tick < static_cast<int>(scenario.forced_grants.size()) &&
          scenario.forced_grants[static_cast<size_t>(tick)] >= 0) {
        const int forced = scenario.forced_grants[static_cast<size_t>(tick)];
        if (forced >= static_cast<int>(napps) ||
            state[static_cast<size_t>(forced)].mode != Mode::Wait)
          throw std::invalid_argument(
              "scenario: forced grant at tick " + std::to_string(tick) +
              " names an application that is not waiting");
        best = forced;
      }
      if (best >= 0) {
        RuntimeApp& a = state[static_cast<size_t>(best)];
        a.mode = Mode::Tt;
        a.wt_grant = a.elapsed;
        result.events.push_back(
            {tick, SlotEvent::Kind::Grant, best, a.elapsed});
        occupant = best;
      }
    }

    result.occupant[static_cast<size_t>(tick)] = occupant;
    if (occupant >= 0)
      result.tt_mask[static_cast<size_t>(occupant)]
                    [static_cast<size_t>(tick)] = true;
  }
  return result;
}

}  // namespace ttdim::sched
