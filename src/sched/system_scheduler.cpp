#include "sched/system_scheduler.h"

#include <stdexcept>

#include "support/check.h"

namespace ttdim::sched {

SystemScheduleResult simulate_system(const std::vector<AppTiming>& apps,
                                     const mapping::SlotAssignment& assignment,
                                     const Scenario& scenario) {
  TTDIM_EXPECTS(scenario.disturbances.size() == apps.size());
  if (!scenario.forced_grants.empty())
    throw std::invalid_argument(
        "simulate_system: forced grants are single-slot only");
  // Every app must appear in exactly one slot.
  std::vector<int> owner(apps.size(), -1);
  for (size_t s = 0; s < assignment.slots.size(); ++s) {
    for (int i : assignment.slots[s]) {
      TTDIM_EXPECTS(i >= 0 && i < static_cast<int>(apps.size()));
      TTDIM_EXPECTS(owner[static_cast<size_t>(i)] < 0);
      owner[static_cast<size_t>(i)] = static_cast<int>(s);
    }
  }
  for (int o : owner) TTDIM_EXPECTS(o >= 0);

  SystemScheduleResult result;
  for (const std::vector<int>& slot : assignment.slots) {
    std::vector<AppTiming> members;
    Scenario sub;
    sub.horizon = scenario.horizon;
    for (int i : slot) {
      members.push_back(apps[static_cast<size_t>(i)]);
      sub.disturbances.push_back(scenario.disturbances[static_cast<size_t>(i)]);
    }
    ScheduleResult r = simulate_slot(members, sub);
    result.deadline_violated |= r.deadline_violated;
    result.per_slot.push_back(std::move(r));
  }
  return result;
}

}  // namespace ttdim::sched
