// Runtime slot scheduler: the deterministic on-line counterpart of the
// verified protocol (paper Sec. 4). Simulating it against a concrete
// disturbance scenario produces the slot occupancy timeline used for the
// response plots of Figs. 8 and 9.
#pragma once

#include <string>
#include <vector>

#include "verify/app_timing.h"
#include "verify/policy.h"

namespace ttdim::sched {

using verify::AppTiming;
using verify::SlotPolicy;

/// Concrete disturbance scenario: for each application the ticks at which
/// a disturbance is seen by the scheduler (sorted, spaced >= r).
struct Scenario {
  std::vector<std::vector<int>> disturbances;  ///< per app
  int horizon = 0;                             ///< simulated samples
  /// Optional grant overrides, one entry per tick (-1: default EDF
  /// choice). Used to replay verifier counterexamples whose grants picked
  /// a different EDF tie-break than the runtime default. A forced app must
  /// be waiting at that tick or the simulation throws.
  std::vector<int> forced_grants;
};

/// Slot-side events of one run.
struct SlotEvent {
  enum class Kind { Grant, Preempt, Evict };
  int tick = 0;
  Kind kind = Kind::Grant;
  int app = 0;
  int wait = 0;  ///< Tw at grant (Grant only)
};

/// Outcome of a deterministic slot simulation.
struct ScheduleResult {
  std::vector<int> occupant;  ///< per tick: app index or -1 (idle)
  std::vector<SlotEvent> events;
  /// Per app, per tick: true when the app transmits in the TT slot. This
  /// is the mode mask consumed by control::SwitchedLoop::simulate_schedule.
  std::vector<std::vector<bool>> tt_mask;
  bool deadline_violated = false;
  int violator = -1;        ///< app index when violated
  int violation_tick = -1;

  [[nodiscard]] std::string describe_events(
      const std::vector<AppTiming>& apps) const;
};

/// Deterministic simulation of the EDF-like policy: waiters served by
/// smallest remaining deadline T*w - Tw (ties: lowest app index), occupant
/// non-preemptable before T-dw, preemptable in [T-dw, T+dw), evicted at
/// T+dw. Under SlotPolicy::kSlackAware, preemption is additionally
/// postponed while every waiter keeps provable slack (verify/policy.h).
/// Throws std::invalid_argument on malformed scenarios (unsorted or closer
/// than r).
[[nodiscard]] ScheduleResult simulate_slot(
    const std::vector<AppTiming>& apps, const Scenario& scenario,
    SlotPolicy policy = SlotPolicy::kPaper);

}  // namespace ttdim::sched
