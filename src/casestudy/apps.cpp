#include "casestudy/apps.h"

namespace ttdim::casestudy {

DiscreteLti dc_motor_position_plant() {
  const Matrix phi{{1.0, 0.0182, 0.0068},
                   {0.0, 0.7664, 0.5186},
                   {0.0, -0.3260, 0.1011}};
  const Matrix gamma{{0.0015}, {0.1944}, {0.2717}};
  const Matrix c{{1.0, 0.0, 0.0}};
  return DiscreteLti(phi, gamma, c, kSamplingPeriod);
}

App c1() {
  return {
      "C1",
      dc_motor_position_plant(),
      Matrix{{30.0, 1.2626, 1.1071}},                 // Eq. (7)
      Matrix{{13.8921, 0.5773, 0.8672, 1.0866}},      // Eq. (8), KsE
      25,                                             // r
      18,                                             // J*
  };
}

App c2() {
  const Matrix phi{{1.0, 0.0117, 0.0001},
                   {0.0, 0.3059, 0.0018},
                   {0.0, -0.0021, -1.2228e-5}};
  const Matrix gamma{{0.2966}, {24.8672}, {0.0797}};
  const Matrix c{{1.0, 0.0, 0.0}};
  return {
      "C2",
      DiscreteLti(phi, gamma, c, kSamplingPeriod),
      Matrix{{0.1198, -0.0130, -2.9588}},
      Matrix{{0.0864, -0.0128, -1.6833, 0.4059}},
      100,
      25,
  };
}

App c3() {
  const Matrix phi{{0.9900, 0.0065}, {-0.0974, 0.0177}};
  const Matrix gamma{{2.8097}, {319.7919}};
  const Matrix c{{1.0, 0.0}};
  return {
      "C3",
      DiscreteLti(phi, gamma, c, kSamplingPeriod),
      Matrix{{0.0500, -0.0002}},
      Matrix{{0.0336, 0.0004, 0.4453}},
      50,
      20,
  };
}

App c4() {
  const Matrix phi{{0.8187, 0.0178}, {-0.0004, 0.9608}};
  const Matrix gamma{{0.0004}, {0.0392}};
  const Matrix c{{1.0, 0.0}};
  return {
      "C4",
      DiscreteLti(phi, gamma, c, kSamplingPeriod),
      Matrix{{100.0000, 15.6226}},
      Matrix{{-77.8275, 24.3161, 1.0265}},
      40,
      19,
  };
}

App c5() {
  const Matrix phi{{0.8187, 0.0156}, {-0.0031, 0.7408}};
  const Matrix gamma{{0.0034}, {0.3456}};
  const Matrix c{{1.0, 0.0}};
  return {
      "C5",
      DiscreteLti(phi, gamma, c, kSamplingPeriod),
      Matrix{{10.0000, 1.0524}},
      Matrix{{-2.4223, 0.7014, 0.2950}},
      25,
      18,
  };
}

App c6() {
  // Table 1 prints phi = -0.999; with the printed KT = 15000 that closed
  // loop is -1.2989 (unstable) and JT could not be the reported 11
  // samples. With phi = +0.999 the closed loop is 0.6991 and settles in
  // exactly 11 samples (0.6991^11 ~ 0.02), matching JT in Table 1, and the
  // ME mode matches JE ~ 41. We therefore read the minus sign as a
  // typesetting artefact (see EXPERIMENTS.md, "data corrections").
  const Matrix phi{{0.999}};
  const Matrix gamma{{1.999e-5}};
  const Matrix c{{1.0}};
  return {
      "C6",
      DiscreteLti(phi, gamma, c, kSamplingPeriod),
      Matrix{{15000.0}},
      Matrix{{8125.6, 0.8659}},
      100,
      20,
  };
}

std::vector<App> all_apps() { return {c1(), c2(), c3(), c4(), c5(), c6()}; }

Matrix ke_stable() {
  return Matrix{{13.8921, 0.5773, 0.8672, 1.0866}};  // Eq. (8)
}

Matrix ke_unstable() {
  return Matrix{{2.9120, -0.6141, -1.0399, 0.1741}};  // Eq. (9)
}

}  // namespace ttdim::casestudy
