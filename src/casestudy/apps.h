// The six control applications of the paper's case study (Table 1) plus
// the motivational controller pair of Sec. 3.1.
//
// All data below is transcribed verbatim from the paper:
//  - C1 [Thomas/Poongodi WCE'09] and C2 [CTMS] : DC motor position control
//  - C3 [Chang RTSS'14], C4 [CTMS], C5 [Schneider CODES+ISSS'11] : DC motor
//    speed control
//  - C6 [CTMS] : cruise control
// Sampling period h = 0.02 s everywhere; timing quantities (r, J*) are in
// samples.
#pragma once

#include <string>
#include <vector>

#include "control/lti.h"

namespace ttdim::casestudy {

using control::DiscreteLti;
using control::Matrix;

/// One application of the case study: plant, the two gains and the timing
/// requirements of Table 1.
struct App {
  std::string name;
  DiscreteLti plant;
  Matrix kt;           ///< fast gain for mode MT (1 x n)
  Matrix ke;           ///< slow gain for mode ME on [x; u_prev] (1 x n+1)
  int min_interarrival;  ///< r, minimum disturbance inter-arrival (samples)
  int settling_requirement;  ///< J*, required settling time (samples)
};

/// Sampling period shared by all applications (seconds).
inline constexpr double kSamplingPeriod = 0.02;

/// Settling threshold on |y| (paper Sec. 3.1), against a unit disturbance.
inline constexpr double kSettlingTol = 0.02;

/// DC-motor position plant of Eq. (6) (used by C1 and Sec. 3.1).
[[nodiscard]] DiscreteLti dc_motor_position_plant();

[[nodiscard]] App c1();
[[nodiscard]] App c2();
[[nodiscard]] App c3();
[[nodiscard]] App c4();
[[nodiscard]] App c5();
[[nodiscard]] App c6();

/// All six, in paper order C1..C6.
[[nodiscard]] std::vector<App> all_apps();

/// The switching-stable ME gain of Sec. 3.1 (Eq. (8)) — same as c1().ke.
[[nodiscard]] Matrix ke_stable();
/// The non-switching-stable ME gain of Sec. 3.1 (Eq. (9)).
[[nodiscard]] Matrix ke_unstable();

}  // namespace ttdim::casestudy
