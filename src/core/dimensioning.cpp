#include "core/dimensioning.h"

#include <algorithm>
#include <stdexcept>

#include "support/check.h"

namespace ttdim::core {

double Solution::saving_vs_baseline() const {
  const int baseline = std::min(baseline_np.slot_count(),
                                baseline_delayed.slot_count());
  if (baseline <= 0) return 0.0;
  return 1.0 - static_cast<double>(proposed.slot_count()) / baseline;
}

Solution solve(const std::vector<AppSpec>& specs, const SolveOptions& options) {
  TTDIM_EXPECTS(!specs.empty());
  Solution solution;
  solution.apps.reserve(specs.size());

  // ---- Per-application analysis. -----------------------------------------
  for (const AppSpec& spec : specs) {
    AppSolution app{spec, {}, {}, {}};
    app.stability =
        control::check_switching_stability(spec.plant, spec.kt, spec.ke);
    if (options.require_switching_stability &&
        !app.stability.switching_stable())
      throw std::invalid_argument(
          "solve: gain pair of " + spec.name +
          " is not switching stable (set require_switching_stability = "
          "false to override)");

    const control::SwitchedLoop loop(spec.plant, spec.kt, spec.ke);
    switching::DwellAnalysisSpec dwell_spec;
    dwell_spec.settling_requirement = spec.settling_requirement;
    dwell_spec.settling = options.settling;
    dwell_spec.tw_granularity = options.tw_granularity;
    app.tables = switching::compute_dwell_tables(loop, dwell_spec);
    if (!app.tables.feasible())
      throw std::invalid_argument("solve: requirement of " + spec.name +
                                  " infeasible even with zero wait");
    app.timing = verify::make_app_timing(spec.name, app.tables,
                                         spec.min_interarrival);
    solution.apps.push_back(std::move(app));
  }

  // ---- Proposed mapping: first-fit + model checking. ----------------------
  std::vector<verify::AppTiming> timings;
  timings.reserve(solution.apps.size());
  for (const AppSolution& a : solution.apps) timings.push_back(a.timing);

  const std::vector<int> order = mapping::paper_sort_order(timings);
  const mapping::SlotOracle proposed_oracle =
      [&options](const std::vector<verify::AppTiming>& slot_apps) {
        const verify::DiscreteVerifier verifier(slot_apps);
        verify::DiscreteVerifier::Options vopt;
        vopt.max_disturbances_per_app = options.max_disturbances_per_app;
        vopt.policy = options.policy;
        return verifier.verify(vopt).safe;
      };
  solution.proposed = mapping::first_fit(timings, order, proposed_oracle);

  // ---- Baseline mappings ([9]). -------------------------------------------
  std::vector<sched::BaselineApp> baseline_apps;
  baseline_apps.reserve(solution.apps.size());
  for (const AppSolution& a : solution.apps)
    baseline_apps.push_back(
        sched::make_baseline_app(a.timing, a.tables.settling_tt));

  const auto baseline_oracle = [&](sched::BaselineStrategy strategy) {
    return [&baseline_apps, &timings, strategy](
               const std::vector<verify::AppTiming>& slot_apps) {
      std::vector<sched::BaselineApp> members;
      for (const verify::AppTiming& t : slot_apps) {
        const auto it = std::find_if(
            timings.begin(), timings.end(),
            [&t](const verify::AppTiming& x) { return x.name == t.name; });
        TTDIM_CHECK(it != timings.end());
        members.push_back(
            baseline_apps[static_cast<size_t>(it - timings.begin())]);
      }
      return sched::analyze_baseline_slot(members, strategy).schedulable;
    };
  };
  solution.baseline_np = mapping::first_fit(
      timings, order, baseline_oracle(sched::BaselineStrategy::kNonPreemptiveDm));
  solution.baseline_delayed = mapping::first_fit(
      timings, order, baseline_oracle(sched::BaselineStrategy::kDelayedRequests));
  return solution;
}

CoSimResult cosimulate(const std::vector<AppSolution>& apps,
                       const sched::Scenario& scenario, double settling_tol) {
  TTDIM_EXPECTS(!apps.empty());
  TTDIM_EXPECTS(scenario.disturbances.size() == apps.size());
  std::vector<verify::AppTiming> timings;
  timings.reserve(apps.size());
  for (const AppSolution& a : apps) timings.push_back(a.timing);

  CoSimResult out;
  out.schedule = sched::simulate_slot(timings, scenario);

  for (size_t i = 0; i < apps.size(); ++i) {
    const auto& disturbances = scenario.disturbances[i];
    if (disturbances.empty()) {
      out.traces.emplace_back();
      out.settling.emplace_back();
      continue;
    }
    // The paper's plots track the response to the (single) disturbance of
    // each application; later disturbances would just repeat the pattern.
    const int d0 = disturbances.front();
    const int len = scenario.horizon - d0;
    std::vector<bool> modes(static_cast<size_t>(len), false);
    for (int k = 0; k < len; ++k)
      modes[static_cast<size_t>(k)] =
          out.schedule.tt_mask[i][static_cast<size_t>(d0 + k)];
    const control::SwitchedLoop loop(apps[i].spec.plant, apps[i].spec.kt,
                                     apps[i].spec.ke);
    control::Trace trace = loop.simulate_schedule(modes, len);
    out.settling.push_back(control::settling_samples(trace, settling_tol));
    out.traces.push_back(std::move(trace));
  }
  return out;
}

}  // namespace ttdim::core
