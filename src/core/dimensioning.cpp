#include "core/dimensioning.h"

#include <algorithm>
#include <optional>

#include "core/session.h"
#include "engine/oracle/slot_config_key.h"
#include "support/check.h"

namespace ttdim::core {

namespace {

void encode_assignment(support::codec::Encoder& enc,
                       const mapping::SlotAssignment& assignment) {
  enc.u32(static_cast<std::uint32_t>(assignment.slots.size()));
  for (const std::vector<int>& slot : assignment.slots) enc.ints(slot);
}

bool decode_assignment(support::codec::Decoder& dec,
                       mapping::SlotAssignment& assignment) {
  assignment.slots.clear();
  std::uint32_t nslots = 0;
  if (!dec.u32(nslots) || nslots > dec.remaining() / 4) return false;
  assignment.slots.resize(nslots);
  for (std::vector<int>& slot : assignment.slots)
    if (!dec.ints(slot)) return false;
  return true;
}

}  // namespace

SolveKey SolveKey::of(const std::vector<AppSpec>& specs,
                      const SolveOptions& options) {
  SolveKey key;
  for (const AppSpec& spec : specs) {
    // Length-prefixed name: no designer-chosen string can collide with
    // the delimiters of the serialization around it.
    key.canonical += "app:";
    key.canonical += std::to_string(spec.name.size());
    key.canonical += ':';
    key.canonical += spec.name;
    key.canonical += ';';
    control::append_canonical(key.canonical, spec.plant);
    key.canonical += "kt=";
    linalg::append_canonical_bits(key.canonical, spec.kt);
    key.canonical += "ke=";
    linalg::append_canonical_bits(key.canonical, spec.ke);
    key.canonical += "r=";
    key.canonical += std::to_string(spec.min_interarrival);
    key.canonical += ";j*=";
    key.canonical += std::to_string(spec.settling_requirement);
    key.canonical += ';';
  }
  // Result-affecting options only. The memoize/cache/thread knobs are
  // excluded on purpose: they never change the result (pinned by the
  // fingerprint-equality tests), so warm and cold configurations share
  // entries.
  key.canonical += "opt:";
  control::append_canonical(key.canonical, options.settling);
  key.canonical += "g=";
  key.canonical += std::to_string(options.tw_granularity);
  key.canonical += ";d=";
  key.canonical += std::to_string(options.max_disturbances_per_app);
  key.canonical += ";s=";
  key.canonical += options.require_switching_stability ? '1' : '0';
  key.canonical += ";p=";
  key.canonical += std::to_string(static_cast<int>(options.policy));
  key.canonical += ';';
  key.hash = engine::oracle::fnv1a(key.canonical);
  return key;
}

void encode_solution(support::codec::Encoder& enc, const Solution& solution) {
  enc.u32(static_cast<std::uint32_t>(solution.apps.size()));
  for (const AppSolution& app : solution.apps) {
    enc.str(app.spec.name);
    control::encode(enc, app.spec.plant);
    linalg::encode(enc, app.spec.kt);
    linalg::encode(enc, app.spec.ke);
    enc.i32(app.spec.min_interarrival);
    enc.i32(app.spec.settling_requirement);
    switching::encode(enc, app.tables);
    verify::encode(enc, app.timing);
    control::encode(enc, app.stability);
  }
  encode_assignment(enc, solution.proposed);
  encode_assignment(enc, solution.baseline_np);
  encode_assignment(enc, solution.baseline_delayed);
}

bool decode_solution(support::codec::Decoder& dec, Solution& solution) {
  solution = Solution{};
  std::uint32_t napps = 0;
  if (!dec.u32(napps) || napps > dec.remaining()) return false;
  solution.apps.reserve(napps);
  for (std::uint32_t i = 0; i < napps; ++i) {
    std::string name;
    if (!dec.str(name)) return false;
    std::optional<control::DiscreteLti> plant = control::decode_lti(dec);
    if (!plant) return false;
    AppSpec spec{std::move(name), *std::move(plant), {}, {}, 0, 0};
    if (!linalg::decode(dec, spec.kt) || !linalg::decode(dec, spec.ke) ||
        !dec.i32(spec.min_interarrival) || !dec.i32(spec.settling_requirement))
      return false;
    AppSolution app{std::move(spec), {}, {}, {}};
    if (!switching::decode(dec, app.tables) ||
        !verify::decode(dec, app.timing) ||
        !control::decode(dec, app.stability))
      return false;
    solution.apps.push_back(std::move(app));
  }
  return decode_assignment(dec, solution.proposed) &&
         decode_assignment(dec, solution.baseline_np) &&
         decode_assignment(dec, solution.baseline_delayed);
}

double Solution::saving_vs_baseline() const {
  const int baseline = std::min(baseline_np.slot_count(),
                                baseline_delayed.slot_count());
  if (baseline <= 0) return 0.0;
  return 1.0 - static_cast<double>(proposed.slot_count()) / baseline;
}

Solution solve(const std::vector<AppSpec>& specs, const SolveOptions& options) {
  // One pass of a throwaway session: the session ctor materializes the
  // same private caches this function used to build per call, so the
  // result is byte-identical to the pre-session monolith (pinned by the
  // golden/fingerprint tests). Long-lived callers that want warm
  // re-dimensioning hold a DimensioningSession instead.
  DimensioningSession session(options);
  return session.solve(specs);
}

CoSimResult cosimulate(const std::vector<AppSolution>& apps,
                       const sched::Scenario& scenario, double settling_tol) {
  TTDIM_EXPECTS(!apps.empty());
  TTDIM_EXPECTS(scenario.disturbances.size() == apps.size());
  std::vector<verify::AppTiming> timings;
  timings.reserve(apps.size());
  for (const AppSolution& a : apps) timings.push_back(a.timing);

  CoSimResult out;
  out.schedule = sched::simulate_slot(timings, scenario);

  for (size_t i = 0; i < apps.size(); ++i) {
    const auto& disturbances = scenario.disturbances[i];
    if (disturbances.empty()) {
      out.traces.emplace_back();
      out.settling.emplace_back();
      continue;
    }
    // The paper's plots track the response to the (single) disturbance of
    // each application; later disturbances would just repeat the pattern.
    const int d0 = disturbances.front();
    const int len = scenario.horizon - d0;
    std::vector<bool> modes(static_cast<size_t>(len), false);
    for (int k = 0; k < len; ++k)
      modes[static_cast<size_t>(k)] =
          out.schedule.tt_mask[i][static_cast<size_t>(d0 + k)];
    const control::SwitchedLoop loop(apps[i].spec.plant, apps[i].spec.kt,
                                     apps[i].spec.ke);
    control::Trace trace = loop.simulate_schedule(modes, len);
    out.settling.push_back(control::settling_samples(trace, settling_tol));
    out.traces.push_back(std::move(trace));
  }
  return out;
}

}  // namespace ttdim::core
